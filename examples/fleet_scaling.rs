//! Fleet scaling: how many devices can one edge box serve before latency
//! degrades? Sweeps the fleet size for LEIME and the benchmarks and prints
//! the largest fleet each system supports under a latency budget —
//! the operational question behind the paper's Fig. 11.
//!
//! ```sh
//! cargo run --release -p leime --example fleet_scaling
//! ```

use leime::{systems, ModelKind, Scenario};

const LATENCY_BUDGET_S: f64 = 1.0;

fn main() -> Result<(), leime::LeimeError> {
    println!(
        "latency budget: {LATENCY_BUDGET_S} s mean TCT | model: ResNet-34 | 2 tasks/s per camera\n"
    );
    println!(
        "{:>8}  {:>12}  {:>14}  {:>10}  {:>10}",
        "devices", "LEIME", "Neurosurgeon", "Edgent", "DDNN"
    );

    let mut max_supported = vec![0usize; 4];
    for n in [1usize, 2, 4, 8, 16, 24, 32, 48] {
        let base = Scenario::raspberry_pi_cluster(ModelKind::ResNet34, n, 2.0);
        let mut cells = Vec::new();
        for (i, spec) in systems::all().iter().enumerate() {
            let (_, r) = spec.run_slotted(&base, 80, 3)?;
            if r.mean_tct_s() <= LATENCY_BUDGET_S {
                max_supported[i] = max_supported[i].max(n);
            }
            cells.push(format!("{:.2}s", r.mean_tct_s()));
        }
        println!(
            "{:>8}  {:>12}  {:>14}  {:>10}  {:>10}",
            n, cells[0], cells[1], cells[2], cells[3]
        );
    }

    println!("\nlargest fleet within budget:");
    for (spec, &n) in systems::all().iter().zip(&max_supported) {
        println!("  {:>12}: {} devices", spec.name, n);
    }
    Ok(())
}
