//! Smart-camera fleet: the workload the paper's introduction motivates —
//! face/object recognition from heterogeneous cameras whose traffic surges
//! during rush hours.
//!
//! Four Pi-class fixed cameras and two Nano-class PTZ cameras share one
//! edge box. The arrival rate follows a day-cycle trace (quiet → rush →
//! quiet), and we watch LEIME keep the completion time flat through the
//! surge while a static policy degrades.
//!
//! ```sh
//! cargo run --release -p leime --example smart_camera
//! ```

use leime::{ControllerKind, ExitStrategy, ModelKind, Scenario, WorkloadKind};
use leime_offload::DeviceParams;
use leime_simnet::{SimTime, TimeTrace};

fn main() -> Result<(), leime::LeimeError> {
    // Rush-hour trace: 2 tasks/s baseline, surging to 12 tasks/s.
    let trace = TimeTrace::from_points(vec![
        (SimTime::ZERO, 2.0),
        (SimTime::from_secs(100.0), 12.0), // morning rush
        (SimTime::from_secs(200.0), 3.0),
        (SimTime::from_secs(300.0), 10.0), // evening rush
        (SimTime::from_secs(400.0), 2.0),
    ])
    .expect("trace points are increasing");

    let mut scenario = Scenario::raspberry_pi_cluster(ModelKind::InceptionV3, 4, 2.0);
    scenario.devices.push(DeviceParams::jetson_nano(2.0));
    scenario.devices.push(DeviceParams::jetson_nano(2.0));
    scenario.workload = WorkloadKind::RateTrace { trace, max: 1000 };

    let deployment = scenario.deploy(ExitStrategy::Leime)?;
    let (f, s, t) = deployment.combo.to_one_based();
    println!("fleet: 4x Pi cameras + 2x Nano cameras, ME-Inception v3");
    println!("LEIME exits: {f}, {s}, {t}\n");

    println!("{:>10}  {:>14}  {:>14}", "window", "LEIME", "device-only");
    let leime_run = scenario.run_slotted(&deployment, 500, 7)?;
    scenario.controller = ControllerKind::DeviceOnly;
    let static_run = scenario.run_slotted(&deployment, 500, 7)?;

    let window = SimTime::from_secs(100.0);
    let leime_w = leime_run.series().windowed_mean(window);
    let static_w = static_run.series().windowed_mean(window);
    for (lw, sw) in leime_w.iter().zip(&static_w) {
        println!(
            "{:>9.0}s  {:>12.1}ms  {:>12.1}ms",
            lw.0.as_secs(),
            lw.1 * 1e3,
            sw.1 * 1e3
        );
    }
    println!(
        "\noverall: LEIME {:.1} ms vs device-only {:.1} ms ({:.2}x), \
         offloading {:.0}% of tasks on average",
        leime_run.mean_tct_ms(),
        static_run.mean_tct_ms(),
        leime_run.speedup_vs(&static_run),
        leime_run.mean_offload_ratio() * 100.0
    );
    Ok(())
}
