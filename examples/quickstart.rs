//! Quickstart: deploy LEIME for one model on a small fleet and compare it
//! against the paper's three benchmark systems.
//!
//! ```sh
//! cargo run --release -p leime --example quickstart
//! ```

use leime::{systems, ExitStrategy, ModelKind, Scenario};

fn main() -> Result<(), leime::LeimeError> {
    // Two Raspberry-Pi-class devices, each launching ~5 recognition tasks
    // per second against ME-SqueezeNet-1.0, behind 10 Mbps WiFi, with the
    // default i7-class edge and V100-class cloud.
    let scenario = Scenario::raspberry_pi_cluster(ModelKind::SqueezeNet, 2, 5.0);

    // Model level: the branch-and-bound exit setting (§III-C).
    let deployment = scenario.deploy(ExitStrategy::Leime)?;
    let (first, second, third) = deployment.combo.to_one_based();
    println!("LEIME exit setting: exits {first}, {second}, {third}");
    println!(
        "block FLOPs [μ1, μ2, μ3] = [{:.1}M, {:.1}M, {:.1}M]",
        deployment.mu[0] / 1e6,
        deployment.mu[1] / 1e6,
        deployment.mu[2] / 1e6
    );
    println!(
        "exit probabilities [σ1, σ2, σ3] = [{:.2}, {:.2}, {:.2}]",
        deployment.sigma[0], deployment.sigma[1], deployment.sigma[2]
    );
    if let Some(stats) = deployment.search_stats {
        println!(
            "search cost: {} evaluations in {} rounds (exhaustive would be {})",
            stats.total_evals(),
            stats.rounds,
            (scenario.chain().num_layers() - 1) * (scenario.chain().num_layers() - 2) / 2
        );
    }

    // Computation level: run 300 slots of the slotted system with the
    // Lyapunov offloading controller.
    let report = scenario.run_slotted(&deployment, 300, 42)?;
    println!(
        "\nLEIME: {} tasks, mean TCT {:.1} ms (p95 {:.1} ms), mean offload ratio {:.2}",
        report.tasks(),
        report.mean_tct_ms(),
        report.p95_tct_s() * 1e3,
        report.mean_offload_ratio()
    );
    let tiers = report.tiers();
    println!(
        "exits: {} on device, {} at edge, {} at cloud",
        tiers.first, tiers.second, tiers.third
    );

    // Compare against the paper's benchmarks (same scenario).
    println!("\nBenchmarks:");
    for spec in [systems::neurosurgeon(), systems::edgent(), systems::ddnn()] {
        let (_, r) = spec.run_slotted(&scenario, 300, 42)?;
        println!(
            "  {:>12}: mean TCT {:.1} ms  (LEIME speedup {:.2}x)",
            spec.name,
            r.mean_tct_ms(),
            report.speedup_vs(&r)
        );
    }
    Ok(())
}
