//! Live runtime: the full pipeline end to end, for real — train the exit
//! classifiers (calibration), pick the exits with branch-and-bound, then
//! run the multi-threaded device/edge/cloud prototype where every
//! classification is an actual MLP forward pass and every transfer moves
//! real bytes over crossbeam channels with emulated link delays.
//!
//! ```sh
//! cargo run --release -p leime --example live_runtime
//! ```

use leime::runtime::{run_live, RuntimeConfig};
use leime::ModelKind;
use leime_dnn::{ExitSpec, ModelProfile};
use leime_exitcfg::{branch_and_bound, CostModel, EnvParams};
use leime_inference::{calibrate, CalibrationConfig, EarlyExitPipeline};
use leime_workload::{CascadeParams, FeatureCascade, SyntheticDataset};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let model = ModelKind::SqueezeNet;
    let chain = model.build(10);
    let cascade = FeatureCascade::new(10, CascadeParams::for_architecture(model.name()), 99);
    let dataset = SyntheticDataset::cifar_like();
    let mut rng = StdRng::seed_from_u64(99);

    // 1) Calibration: train one classifier per candidate exit and measure
    //    confidence thresholds + exit rates on held-out data.
    println!(
        "calibrating {} ({} candidate exits)…",
        model,
        chain.num_layers()
    );
    let cal = calibrate(
        &chain,
        &cascade,
        &dataset,
        CalibrationConfig::default(),
        &mut rng,
    );
    println!(
        "final-exit accuracy: {:.1} % | first-exit cumulative rate: {:.2}",
        cal.final_accuracy() * 100.0,
        cal.exit_rates().rate(0)?
    );

    // 2) Exit setting with the *measured* exit rates.
    let profile = ModelProfile::from_chain(&chain, ExitSpec::default())?;
    let cost = CostModel::new_offload_aware(&profile, cal.exit_rates(), EnvParams::raspberry_pi())?;
    let (combo, expected_tct, _) = branch_and_bound(&cost)?;
    let (f, s, t) = combo.to_one_based();
    println!(
        "chosen exits: {f}, {s}, {t} (expected TCT {:.1} ms)\n",
        expected_tct * 1e3
    );

    // 3) Live execution: 3 device threads, 1 edge, 1 cloud.
    let pipeline = EarlyExitPipeline::from_calibration(&cal, combo);
    let config = RuntimeConfig {
        num_devices: 3,
        tasks_per_device: 100,
        offload_ratio: 0.3,
        bandwidth_bps: 10e6,
        latency_s: 0.02,
        time_scale: 0.002, // shrink emulated delays 500x
        input_bytes: chain.input_bytes() as usize,
        intermediate_bytes: chain.intermediate_bytes(combo.first)? as usize,
        seed: 7,
        adaptive: true, // back off offloading when the edge queue grows
        edge_fault_rate: 0.0,
    };
    println!("running live: 3 devices x 100 tasks…");
    let report = run_live(&pipeline, &cascade, &dataset, config)?;

    println!(
        "completed {} tasks | accuracy {:.1} % | mean wall TCT {:.2} ms (at 1/500 time scale)",
        report.completed,
        report.accuracy() * 100.0,
        report.mean_tct_s * 1e3
    );
    println!(
        "exits: {} device / {} edge / {} cloud",
        report.tiers.first, report.tiers.second, report.tiers.third
    );
    Ok(())
}
