use crate::CalibrationResult;
use leime_dnn::ExitCombo;
use leime_invariant as invariant;
use leime_tensor::nn::Mlp;
use leime_workload::{FeatureCascade, Sample};
use rand::rngs::StdRng;
use serde::{Deserialize, Serialize};

/// Which tier a task exited at.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ExitDecision {
    /// Exited at the First-exit (device).
    Device,
    /// Exited at the Second-exit (edge).
    Edge,
    /// Reached the Third-exit (cloud).
    Cloud,
}

impl ExitDecision {
    /// Tier index: 0 device, 1 edge, 2 cloud.
    pub fn tier(self) -> usize {
        match self {
            ExitDecision::Device => 0,
            ExitDecision::Edge => 1,
            ExitDecision::Cloud => 2,
        }
    }
}

/// Early-exit inference for a deployed ME-DNN: the three chosen exits with
/// their trained classifiers and calibrated thresholds.
///
/// This is what the live runtime executes — the device evaluates the
/// First-exit classifier on real tensors; if confidence falls short the
/// (simulated) intermediate data moves to the edge, and so on.
#[derive(Debug, Clone)]
pub struct EarlyExitPipeline {
    combo: ExitCombo,
    classifiers: [Mlp; 3],
    thresholds: [f64; 3],
    depths: [f64; 3],
}

impl EarlyExitPipeline {
    /// Assembles a pipeline from a calibration result and a chosen combo.
    ///
    /// # Panics
    ///
    /// Panics if the combo indexes outside the calibrated exits.
    pub fn from_calibration(cal: &CalibrationResult, combo: ExitCombo) -> Self {
        let pick = |i: usize| cal.classifiers()[i].clone();
        EarlyExitPipeline {
            combo,
            classifiers: [pick(combo.first), pick(combo.second), pick(combo.third)],
            thresholds: [
                cal.thresholds()[combo.first],
                cal.thresholds()[combo.second],
                0.0,
            ],
            depths: [
                cal.depth_fractions()[combo.first],
                cal.depth_fractions()[combo.second],
                cal.depth_fractions()[combo.third],
            ],
        }
    }

    /// The deployed exit combo.
    pub fn combo(&self) -> ExitCombo {
        self.combo
    }

    /// Evaluates the exit classifier at tier `idx` (0 = First, 1 = Second,
    /// 2 = Third) on fresh cascade features for `sample`.
    fn eval_exit(
        &self,
        idx: usize,
        cascade: &FeatureCascade,
        sample: Sample,
        rng: &mut StdRng,
    ) -> (usize, f64, bool) {
        let features = cascade.features(sample, self.depths[idx], rng);
        let (pred, conf) = self.classifiers[idx]
            .predict(&features)
            .unwrap_or_else(|e| {
                invariant::violation(
                    "inference.pipeline",
                    &format!("exit classifier predict: {e}"),
                )
            });
        (pred, f64::from(conf), pred == sample.class)
    }

    /// Runs only the First-exit (device tier). Returns
    /// [`ExitDecision::Device`] when the task exits here, or
    /// [`ExitDecision::Edge`] meaning "continue to the edge".
    pub fn infer_first(
        &self,
        cascade: &FeatureCascade,
        sample: Sample,
        rng: &mut StdRng,
    ) -> (ExitDecision, usize, f64, bool) {
        let (pred, conf, correct) = self.eval_exit(0, cascade, sample, rng);
        let tier = if conf >= self.thresholds[0] {
            ExitDecision::Device
        } else {
            ExitDecision::Edge
        };
        (tier, pred, conf, correct)
    }

    /// Runs only the Second-exit (edge tier). Returns
    /// [`ExitDecision::Edge`] when the task exits here, or
    /// [`ExitDecision::Cloud`] meaning "continue to the cloud".
    pub fn infer_second(
        &self,
        cascade: &FeatureCascade,
        sample: Sample,
        rng: &mut StdRng,
    ) -> (ExitDecision, usize, f64, bool) {
        let (pred, conf, correct) = self.eval_exit(1, cascade, sample, rng);
        let tier = if conf >= self.thresholds[1] {
            ExitDecision::Edge
        } else {
            ExitDecision::Cloud
        };
        (tier, pred, conf, correct)
    }

    /// Runs the unconditional Third-exit (cloud tier); returns the
    /// prediction and its correctness.
    pub fn infer_third(
        &self,
        cascade: &FeatureCascade,
        sample: Sample,
        rng: &mut StdRng,
    ) -> (usize, bool) {
        let (pred, _conf, correct) = self.eval_exit(2, cascade, sample, rng);
        (pred, correct)
    }

    /// Runs one task through the pipeline: evaluates the exits in order on
    /// cascade features, stopping at the first confident one.
    ///
    /// Returns the exit tier, the predicted class, the confidence at the
    /// exiting classifier, and whether the prediction was correct.
    pub fn infer(
        &self,
        cascade: &FeatureCascade,
        sample: Sample,
        rng: &mut StdRng,
    ) -> (ExitDecision, usize, f64, bool) {
        let tiers = [
            ExitDecision::Device,
            ExitDecision::Edge,
            ExitDecision::Cloud,
        ];
        for (i, &tier) in tiers.iter().enumerate() {
            let features = cascade.features(sample, self.depths[i], rng);
            let (pred, conf) = self.classifiers[i].predict(&features).unwrap_or_else(|e| {
                invariant::violation(
                    "inference.pipeline",
                    &format!("exit classifier predict: {e}"),
                )
            });
            let conf = f64::from(conf);
            if conf >= self.thresholds[i] || tier == ExitDecision::Cloud {
                return (tier, pred, conf, pred == sample.class);
            }
        }
        unreachable!("the cloud tier always exits")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{calibrate, CalibrationConfig, TrainConfig};
    use leime_dnn::zoo;
    use leime_workload::{CascadeParams, ComplexityDist, SyntheticDataset};
    use rand::SeedableRng;

    fn pipeline() -> (EarlyExitPipeline, FeatureCascade) {
        let chain = zoo::squeezenet_1_0(64, 10);
        let cascade = FeatureCascade::new(10, CascadeParams::default(), 21);
        let ds = SyntheticDataset::cifar_like();
        let mut rng = StdRng::seed_from_u64(21);
        let cal = calibrate(
            &chain,
            &cascade,
            &ds,
            CalibrationConfig {
                train_samples: 192,
                val_samples: 192,
                train: TrainConfig {
                    epochs: 6,
                    ..TrainConfig::default()
                },
                accuracy_target_ratio: 0.95,
            },
            &mut rng,
        );
        let m = chain.num_layers();
        let combo = ExitCombo::new(1, m / 2, m - 1, m).unwrap();
        (EarlyExitPipeline::from_calibration(&cal, combo), cascade)
    }

    #[test]
    fn easy_samples_mostly_exit_on_device() {
        let (pipe, cascade) = pipeline();
        let ds = SyntheticDataset::new(10, ComplexityDist::Fixed { value: 0.02 });
        let mut rng = StdRng::seed_from_u64(1);
        let mut device_exits = 0usize;
        let n = 200;
        for _ in 0..n {
            let s = ds.draw(&mut rng);
            let (tier, _, _, _) = pipe.infer(&cascade, s, &mut rng);
            if tier == ExitDecision::Device {
                device_exits += 1;
            }
        }
        assert!(
            device_exits > n / 2,
            "only {device_exits}/{n} easy samples exited on device"
        );
    }

    #[test]
    fn hard_samples_travel_deeper() {
        let (pipe, cascade) = pipeline();
        let ds = SyntheticDataset::new(10, ComplexityDist::Fixed { value: 0.95 });
        let mut rng = StdRng::seed_from_u64(2);
        let mut cloud_or_edge = 0usize;
        let n = 200;
        for _ in 0..n {
            let s = ds.draw(&mut rng);
            let (tier, _, _, _) = pipe.infer(&cascade, s, &mut rng);
            if tier != ExitDecision::Device {
                cloud_or_edge += 1;
            }
        }
        assert!(
            cloud_or_edge > n / 2,
            "only {cloud_or_edge}/{n} hard samples travelled past the device"
        );
    }

    #[test]
    fn every_inference_terminates_with_valid_output() {
        let (pipe, cascade) = pipeline();
        let ds = SyntheticDataset::cifar_like();
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..100 {
            let s = ds.draw(&mut rng);
            let (tier, pred, conf, _) = pipe.infer(&cascade, s, &mut rng);
            assert!(tier.tier() <= 2);
            assert!(pred < 10);
            assert!(conf > 0.0 && conf <= 1.0);
        }
    }
}
