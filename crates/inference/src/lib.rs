//! # leime-inference
//!
//! Exit-classifier training, confidence-threshold calibration, and
//! early-exit inference for the LEIME reproduction.
//!
//! The paper attaches a classifier (pool + 2×FC + softmax) at every
//! candidate exit, sets a confidence threshold per exit "to make the task
//! exit early efficiently while guaranteeing inference accuracy"
//! (§III-B2), and derives the per-exit exit rates `σ_exit_i` from those
//! thresholds. This crate does exactly that, for real:
//!
//! 1. [`train_exit_classifier`] trains one softmax classifier per candidate
//!    exit on features drawn from the
//!    [`FeatureCascade`](leime_workload::FeatureCascade) at that exit's
//!    depth (SGD + momentum on a genuine MLP, see `leime-tensor`),
//! 2. [`calibrate`] picks each exit's confidence threshold as the loosest
//!    one that keeps the accuracy of *exited* samples at the target, then
//!    measures cumulative exit rates and per-combo ME-DNN accuracy on a
//!    held-out set — the quantities behind the paper's Fig. 6 and the
//!    `σ` inputs of the exit-setting and offloading algorithms,
//! 3. [`EarlyExitPipeline`] performs early-exit inference for individual
//!    samples (used by the live runtime in the `leime` core crate).

mod calibration;
mod pipeline;
mod train;

pub use calibration::{calibrate, CalibrationConfig, CalibrationResult, CalibrationSummary};
pub use pipeline::{EarlyExitPipeline, ExitDecision};
pub use train::{train_exit_classifier, TrainConfig};
