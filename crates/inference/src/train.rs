use leime_invariant as invariant;
use leime_tensor::nn::{Mlp, MlpConfig, Sgd};
use leime_workload::{FeatureCascade, Sample};
use rand::rngs::StdRng;
use serde::{Deserialize, Serialize};

/// Hyper-parameters for training one exit classifier.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TrainConfig {
    /// Hidden width of the classifier MLP (the paper's exit is pool + two
    /// FC layers; after pooling that is a one-hidden-layer MLP).
    pub hidden_dim: usize,
    /// Number of SGD epochs over the training set.
    pub epochs: usize,
    /// Mini-batch size.
    pub batch_size: usize,
    /// SGD learning rate.
    pub lr: f32,
    /// SGD momentum.
    pub momentum: f32,
}

impl Default for TrainConfig {
    fn default() -> Self {
        TrainConfig {
            hidden_dim: 32,
            epochs: 12,
            batch_size: 64,
            lr: 0.05,
            momentum: 0.9,
        }
    }
}

/// Trains one exit classifier at `depth_fraction` on features emitted by
/// the cascade for `train_samples`.
///
/// Feature generation is part of training: each epoch re-samples the noise
/// (the cascade is stochastic), which doubles as data augmentation and
/// matches how a CNN trunk would present slightly different activations
/// across augmented views.
///
/// # Panics
///
/// Panics if `train_samples` is empty or `depth_fraction` is outside
/// `(0, 1]`.
pub fn train_exit_classifier(
    cascade: &FeatureCascade,
    train_samples: &[Sample],
    depth_fraction: f64,
    config: TrainConfig,
    rng: &mut StdRng,
) -> Mlp {
    assert!(!train_samples.is_empty(), "no training samples");
    let mlp_config = MlpConfig {
        input_dim: cascade.params().feature_dim,
        hidden_dim: config.hidden_dim,
        num_classes: cascade.num_classes(),
    };
    let mut mlp = Mlp::new(mlp_config, rng);
    let mut opt = Sgd::new(Mlp::NUM_PARAMS, config.lr, config.momentum);

    for _epoch in 0..config.epochs {
        for chunk in train_samples.chunks(config.batch_size) {
            let (x, y) = cascade.batch_features(chunk, depth_fraction, rng);
            mlp.train_step(&x, &y, &mut opt).unwrap_or_else(|e| {
                invariant::violation("inference.train", &format!("train step: {e}"))
            });
        }
    }
    mlp
}

#[cfg(test)]
mod tests {
    use super::*;
    use leime_workload::{CascadeParams, ComplexityDist, SyntheticDataset};
    use rand::SeedableRng;

    #[test]
    fn deep_classifier_beats_shallow_on_hard_samples() {
        let mut rng = StdRng::seed_from_u64(11);
        let cascade = FeatureCascade::new(4, CascadeParams::default(), 3);
        let ds = SyntheticDataset::new(4, ComplexityDist::Fixed { value: 0.8 });
        let train = ds.draw_batch(400, &mut rng);
        let val = ds.draw_batch(400, &mut rng);
        let cfg = TrainConfig::default();

        let shallow = train_exit_classifier(&cascade, &train, 0.15, cfg, &mut rng);
        let deep = train_exit_classifier(&cascade, &train, 1.0, cfg, &mut rng);

        let (xv_s, yv) = cascade.batch_features(&val, 0.15, &mut rng);
        let (xv_d, _) = cascade.batch_features(&val, 1.0, &mut rng);
        let acc_s = shallow.accuracy(&xv_s, &yv).unwrap();
        let acc_d = deep.accuracy(&xv_d, &yv).unwrap();
        assert!(
            acc_d > acc_s + 0.15,
            "deep {acc_d} should beat shallow {acc_s} on hard samples"
        );
    }

    #[test]
    fn shallow_classifier_handles_easy_samples() {
        let mut rng = StdRng::seed_from_u64(12);
        let cascade = FeatureCascade::new(4, CascadeParams::default(), 3);
        let ds = SyntheticDataset::new(4, ComplexityDist::Fixed { value: 0.05 });
        let train = ds.draw_batch(400, &mut rng);
        let val = ds.draw_batch(400, &mut rng);
        let mlp = train_exit_classifier(&cascade, &train, 0.3, TrainConfig::default(), &mut rng);
        let (xv, yv) = cascade.batch_features(&val, 0.3, &mut rng);
        let acc = mlp.accuracy(&xv, &yv).unwrap();
        assert!(acc > 0.8, "easy samples at matching depth: acc {acc}");
    }

    #[test]
    fn training_is_deterministic_per_seed() {
        let cascade = FeatureCascade::new(3, CascadeParams::default(), 5);
        let ds = SyntheticDataset::new(3, ComplexityDist::Uniform);
        let run = |seed: u64| {
            let mut rng = StdRng::seed_from_u64(seed);
            let train = ds.draw_batch(100, &mut rng);
            let m = train_exit_classifier(
                &cascade,
                &train,
                0.5,
                TrainConfig {
                    epochs: 2,
                    ..TrainConfig::default()
                },
                &mut rng,
            );
            let mut vrng = StdRng::seed_from_u64(99);
            let val = ds.draw_batch(50, &mut vrng);
            let (x, y) = cascade.batch_features(&val, 0.5, &mut vrng);
            (m.accuracy(&x, &y).unwrap() * 1e6) as i64
        };
        assert_eq!(run(7), run(7));
    }

    #[test]
    #[should_panic(expected = "no training samples")]
    fn rejects_empty_training_set() {
        let cascade = FeatureCascade::new(3, CascadeParams::default(), 5);
        let mut rng = StdRng::seed_from_u64(0);
        train_exit_classifier(&cascade, &[], 0.5, TrainConfig::default(), &mut rng);
    }
}
