use crate::{train_exit_classifier, TrainConfig};
use leime_dnn::{DnnChain, ExitCombo, ExitRates};
use leime_invariant as invariant;
use leime_tensor::nn::Mlp;
use leime_tensor::{Shape, Tensor};
use leime_workload::{FeatureCascade, Sample, SyntheticDataset};
use rand::rngs::StdRng;
use serde::{Deserialize, Serialize};

/// Configuration of a full calibration run.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CalibrationConfig {
    /// Training-set size per exit classifier.
    pub train_samples: usize,
    /// Held-out set size for threshold search and rate/accuracy
    /// measurement.
    pub val_samples: usize,
    /// Per-classifier training hyper-parameters.
    pub train: TrainConfig,
    /// Exited-sample accuracy must reach this fraction of the final exit's
    /// accuracy for the threshold to be accepted (the paper "strictly sets
    /// the threshold … while guaranteeing inference accuracy").
    pub accuracy_target_ratio: f64,
}

impl Default for CalibrationConfig {
    fn default() -> Self {
        CalibrationConfig {
            train_samples: 512,
            val_samples: 512,
            train: TrainConfig::default(),
            accuracy_target_ratio: 0.98,
        }
    }
}

/// The output of a calibration run: trained exit classifiers, confidence
/// thresholds, measured cumulative exit rates, and the held-out
/// confidence/correctness matrices from which any exit combo's ME-DNN
/// accuracy can be computed (Fig. 6).
#[derive(Debug, Clone)]
pub struct CalibrationResult {
    depth_fractions: Vec<f64>,
    thresholds: Vec<f64>,
    classifiers: Vec<Mlp>,
    /// `conf[i][s]`: max softmax probability of val sample `s` at exit `i`.
    conf: Vec<Vec<f32>>,
    /// `correct[i][s]`: whether exit `i` classifies val sample `s` right.
    correct: Vec<Vec<bool>>,
    exit_rates: ExitRates,
    final_accuracy: f64,
}

impl CalibrationResult {
    /// Cumulative measured exit rates, directly usable by the exit-setting
    /// cost model.
    pub fn exit_rates(&self) -> &ExitRates {
        &self.exit_rates
    }

    /// Per-exit confidence thresholds (the last exit's threshold is 0:
    /// everything exits there).
    pub fn thresholds(&self) -> &[f64] {
        &self.thresholds
    }

    /// Per-exit depth fractions (cumulative-FLOPs share of the chain).
    pub fn depth_fractions(&self) -> &[f64] {
        &self.depth_fractions
    }

    /// The trained exit classifiers, one per candidate exit.
    pub fn classifiers(&self) -> &[Mlp] {
        &self.classifiers
    }

    /// Held-out accuracy of the *final* exit alone — the stand-in for the
    /// original single-exit DNN's accuracy.
    pub fn final_accuracy(&self) -> f64 {
        self.final_accuracy
    }

    /// Held-out accuracy of exit `i`'s classifier over *all* samples
    /// (no thresholding).
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn exit_accuracy(&self, i: usize) -> f64 {
        let c = &self.correct[i];
        c.iter().filter(|&&x| x).count() as f64 / c.len() as f64
    }

    /// ME-DNN accuracy under early-exit inference with the given combo:
    /// each held-out sample exits at the first combo exit whose confidence
    /// clears its threshold (the Third-exit is unconditional).
    ///
    /// # Panics
    ///
    /// Panics if the combo indexes outside the calibrated exits.
    pub fn combo_accuracy(&self, combo: ExitCombo) -> f64 {
        let n = self.conf[0].len();
        let exits = [combo.first, combo.second, combo.third];
        let mut correct = 0usize;
        for s in 0..n {
            let mut used = combo.third;
            for &e in &exits[..2] {
                if f64::from(self.conf[e][s]) >= self.thresholds[e] {
                    used = e;
                    break;
                }
            }
            if self.correct[used][s] {
                correct += 1;
            }
        }
        correct as f64 / n as f64
    }

    /// Accuracy *loss* of the combo versus the original DNN (positive =
    /// worse than the single-exit network, negative = the ME-DNN is more
    /// accurate — the "overthinking" win of Fig. 6).
    pub fn combo_accuracy_loss(&self, combo: ExitCombo) -> f64 {
        self.final_accuracy - self.combo_accuracy(combo)
    }

    /// Average accuracy loss over every valid `(first, second)` combo —
    /// the per-model summary number the paper reports for Fig. 6.
    pub fn mean_accuracy_loss(&self) -> f64 {
        let m = self.classifiers.len();
        let mut total = 0.0;
        let mut count = 0usize;
        for first in 0..m - 2 {
            for second in first + 1..m - 1 {
                // Enumerated combos satisfy first < second < m-1, so
                // construction cannot fail; skip keeps the loop total.
                let Ok(combo) = ExitCombo::new(first, second, m - 1, m) else {
                    continue;
                };
                total += self.combo_accuracy_loss(combo);
                count += 1;
            }
        }
        total / count as f64
    }
}

/// A serialisable digest of a calibration run — everything a deployment
/// pipeline needs to persist (the trained weights stay in
/// [`CalibrationResult`]; this is the metadata a fleet controller ships
/// around).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CalibrationSummary {
    /// Per-exit cumulative exit rates.
    pub exit_rates: Vec<f64>,
    /// Per-exit confidence thresholds.
    pub thresholds: Vec<f64>,
    /// Per-exit raw (unthresholded) held-out accuracy.
    pub exit_accuracy: Vec<f64>,
    /// Per-exit cumulative-FLOPs depth fractions.
    pub depth_fractions: Vec<f64>,
    /// Held-out accuracy of the final exit (the original DNN's stand-in).
    pub final_accuracy: f64,
}

impl CalibrationResult {
    /// Extracts the serialisable summary.
    pub fn summary(&self) -> CalibrationSummary {
        let m = self.classifiers.len();
        CalibrationSummary {
            exit_rates: self.exit_rates.as_slice().to_vec(),
            thresholds: self.thresholds.clone(),
            exit_accuracy: (0..m).map(|i| self.exit_accuracy(i)).collect(),
            depth_fractions: self.depth_fractions.clone(),
            final_accuracy: self.final_accuracy,
        }
    }
}

/// Runs the full calibration pipeline for a chain:
///
/// 1. trains one exit classifier per candidate exit at that exit's
///    cumulative-FLOPs depth fraction,
/// 2. measures held-out confidences and correctness,
/// 3. selects each exit's confidence threshold as the *loosest* one whose
///    exited-sample accuracy still reaches
///    `accuracy_target_ratio × final_accuracy`,
/// 4. derives cumulative exit rates.
///
/// # Panics
///
/// Panics if the chain and cascade disagree on the class count, or the
/// config requests zero samples.
pub fn calibrate(
    chain: &DnnChain,
    cascade: &FeatureCascade,
    dataset: &SyntheticDataset,
    config: CalibrationConfig,
    rng: &mut StdRng,
) -> CalibrationResult {
    assert_eq!(
        chain.num_classes(),
        cascade.num_classes(),
        "chain and cascade class counts differ"
    );
    assert!(
        config.train_samples > 0 && config.val_samples > 0,
        "calibration needs samples"
    );
    let m = chain.num_layers();
    let prefix = chain.flops_prefix();
    let total = chain.total_flops();
    let depth_fractions: Vec<f64> = (0..m).map(|i| prefix[i + 1] / total).collect();

    let train_set = dataset.draw_batch(config.train_samples, rng);
    let val_set: Vec<Sample> = dataset.draw_batch(config.val_samples, rng);

    let mut classifiers = Vec::with_capacity(m);
    let mut conf = Vec::with_capacity(m);
    let mut correct = Vec::with_capacity(m);

    for &delta in &depth_fractions {
        let mlp = train_exit_classifier(cascade, &train_set, delta, config.train, rng);
        let (mut conf_i, mut correct_i) = (
            Vec::with_capacity(val_set.len()),
            Vec::with_capacity(val_set.len()),
        );
        for &s in &val_set {
            let f = cascade.features(s, delta, rng);
            let row = f.reshape(Shape::d2(1, f.len())).unwrap_or_else(|e| {
                invariant::violation("inference.calibrate", &format!("feature reshape: {e}"))
            });
            let probs: Tensor = mlp.forward(&row).unwrap_or_else(|e| {
                invariant::violation("inference.calibrate", &format!("classifier forward: {e}"))
            });
            let (pred, c) = probs.argmax().unwrap_or_else(|| {
                invariant::violation("inference.calibrate", "softmax row is empty")
            });
            conf_i.push(c);
            correct_i.push(pred == s.class);
        }
        classifiers.push(mlp);
        conf.push(conf_i);
        correct.push(correct_i);
    }

    let final_accuracy =
        correct[m - 1].iter().filter(|&&x| x).count() as f64 / correct[m - 1].len() as f64;
    let target = config.accuracy_target_ratio * final_accuracy;

    // Threshold search per exit: sort val confidences descending; take the
    // longest prefix whose accuracy still clears the target; the threshold
    // is that prefix's lowest confidence.
    let mut thresholds = vec![0.0f64; m];
    for i in 0..m - 1 {
        let mut order: Vec<usize> = (0..val_set.len()).collect();
        order.sort_by(|&a, &b| conf[i][b].total_cmp(&conf[i][a]));
        let mut best: Option<f64> = None;
        let mut hits = 0usize;
        for (taken, &s) in order.iter().enumerate() {
            if correct[i][s] {
                hits += 1;
            }
            let acc = hits as f64 / (taken + 1) as f64;
            if acc >= target {
                best = Some(f64::from(conf[i][s]));
            }
        }
        // No prefix qualifies -> threshold above 1: the exit never fires.
        thresholds[i] = best.unwrap_or(1.01);
    }
    thresholds[m - 1] = 0.0;

    // Cumulative exit rates over the held-out set.
    let n = val_set.len();
    let mut rates = Vec::with_capacity(m);
    let mut exited = vec![false; n];
    for i in 0..m {
        for (s, e) in exited.iter_mut().enumerate() {
            if !*e && f64::from(conf[i][s]) >= thresholds[i] {
                *e = true;
            }
        }
        rates.push(exited.iter().filter(|&&x| x).count() as f64 / n as f64);
    }
    rates[m - 1] = 1.0;
    let exit_rates = ExitRates::new(rates).unwrap_or_else(|e| {
        invariant::violation("inference.calibrate", &format!("measured exit rates: {e}"))
    });

    CalibrationResult {
        depth_fractions,
        thresholds,
        classifiers,
        conf,
        correct,
        exit_rates,
        final_accuracy,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use leime_dnn::zoo;
    use leime_workload::CascadeParams;
    use rand::SeedableRng;

    fn small_config() -> CalibrationConfig {
        CalibrationConfig {
            train_samples: 192,
            val_samples: 256,
            train: TrainConfig {
                epochs: 6,
                ..TrainConfig::default()
            },
            accuracy_target_ratio: 0.95,
        }
    }

    fn run(seed: u64) -> CalibrationResult {
        let chain = zoo::squeezenet_1_0(64, 10);
        let cascade =
            FeatureCascade::new(10, CascadeParams::for_architecture("squeezenet_1_0"), seed);
        let ds = SyntheticDataset::cifar_like();
        let mut rng = StdRng::seed_from_u64(seed);
        calibrate(&chain, &cascade, &ds, small_config(), &mut rng)
    }

    #[test]
    fn rates_are_monotone_and_terminal() {
        let r = run(1);
        let rates = r.exit_rates().as_slice();
        for w in rates.windows(2) {
            assert!(w[1] >= w[0] - 1e-12);
        }
        assert!((rates[rates.len() - 1] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn deeper_exits_are_more_accurate_on_average() {
        let r = run(2);
        let m = r.classifiers().len();
        // Final exit beats the first exit on raw accuracy (hard samples
        // need depth; easy ones are fine anywhere).
        assert!(
            r.exit_accuracy(m - 1) > r.exit_accuracy(0),
            "final {} vs first {}",
            r.exit_accuracy(m - 1),
            r.exit_accuracy(0)
        );
        assert!(r.final_accuracy() > 0.5, "training failed entirely");
    }

    #[test]
    fn combo_accuracy_close_to_final() {
        // The paper's Fig. 6 headline: average accuracy loss is small
        // (≈0.4–1.6 percentage points across models).
        let r = run(3);
        let loss = r.mean_accuracy_loss();
        assert!(
            loss < 0.06,
            "mean accuracy loss {loss} too large for thresholded exits"
        );
    }

    #[test]
    fn thresholded_exits_fire_for_easy_data() {
        let r = run(4);
        // A CIFAR-like (easy-skewed) dataset must show meaningful early
        // exit mass before the final exit.
        let m = r.exit_rates().len();
        let penultimate = r.exit_rates().rate(m - 2).unwrap();
        assert!(
            penultimate > 0.2,
            "almost nothing exits early: {penultimate}"
        );
    }

    #[test]
    fn combo_accuracy_is_a_probability() {
        let r = run(5);
        let m = r.classifiers().len();
        let combo = ExitCombo::new(0, m / 2, m - 1, m).unwrap();
        let acc = r.combo_accuracy(combo);
        assert!((0.0..=1.0).contains(&acc));
        let loss = r.combo_accuracy_loss(combo);
        assert!((-1.0..=1.0).contains(&loss));
    }

    #[test]
    fn summary_is_consistent_with_result() {
        let r = run(7);
        let s = r.summary();
        let m = r.classifiers().len();
        assert_eq!(s.exit_rates.len(), m);
        assert_eq!(s.thresholds, r.thresholds());
        assert_eq!(s.depth_fractions, r.depth_fractions());
        assert_eq!(s.final_accuracy, r.final_accuracy());
        for i in 0..m {
            assert_eq!(s.exit_accuracy[i], r.exit_accuracy(i));
        }
        // It round-trips structurally (clone + eq; wire format is covered
        // by the core crate's JSON tests).
        assert_eq!(s.clone(), s);
    }

    #[test]
    fn depth_fractions_are_monotone() {
        let r = run(6);
        let d = r.depth_fractions();
        for w in d.windows(2) {
            assert!(w[1] > w[0]);
        }
        assert!((d[d.len() - 1] - 1.0).abs() < 1e-12);
    }
}
