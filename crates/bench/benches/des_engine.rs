//! Criterion bench: simulation-engine throughput — event-queue operations,
//! slotted-system slots per second, and end-to-end DES tasks per second.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use leime::{ExitStrategy, ModelKind, Scenario};
use leime_simnet::{EventQueue, SimTime};
use std::hint::black_box;

fn bench_event_queue(c: &mut Criterion) {
    let mut group = c.benchmark_group("event_queue");
    for n in [1_000usize, 100_000] {
        group.bench_with_input(BenchmarkId::new("push_pop", n), &n, |b, &n| {
            b.iter(|| {
                let mut q = EventQueue::new();
                for i in 0..n {
                    q.schedule_at(SimTime::from_secs(((i * 2_654_435_761) % n) as f64), i);
                }
                while let Some(e) = q.pop() {
                    black_box(e);
                }
            });
        });
    }
    group.finish();
}

fn bench_slotted(c: &mut Criterion) {
    let mut group = c.benchmark_group("slotted_system");
    group.sample_size(20);
    for n_dev in [2usize, 10] {
        let base = Scenario::raspberry_pi_cluster(ModelKind::SqueezeNet, n_dev, 5.0);
        let dep = base.deploy(ExitStrategy::Leime).unwrap();
        group.bench_with_input(BenchmarkId::new("100_slots", n_dev), &n_dev, |b, _| {
            b.iter(|| black_box(base.run_slotted(&dep, 100, 1).unwrap()));
        });
    }
    group.finish();
}

fn bench_des(c: &mut Criterion) {
    let mut group = c.benchmark_group("task_des");
    group.sample_size(20);
    let base = Scenario::raspberry_pi_cluster(ModelKind::SqueezeNet, 2, 5.0);
    let dep = base.deploy(ExitStrategy::Leime).unwrap();
    group.bench_function("60s_horizon", |b| {
        b.iter(|| black_box(base.run_des(&dep, 60.0, 1).unwrap()));
    });
    group.finish();
}

criterion_group!(benches, bench_event_queue, bench_slotted, bench_des);
criterion_main!(benches);
