//! Criterion bench: the decentralized balance solver vs the centralized
//! golden-section solver — the per-slot decision cost ablation
//! (DESIGN.md §5; the paper motivates decentralisation by the cost of
//! centralized solving at scale).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use leime_offload::solver::{balance_solve, golden_section_solve};
use leime_offload::{DeviceParams, SharedParams, SlotCost};
use std::hint::black_box;

fn shared() -> SharedParams {
    SharedParams {
        slot_len_s: 1.0,
        v: 1e4,
        mu1: 2e8,
        mu2: 5e8,
        sigma1: 0.4,
        d0_bytes: 12_288.0,
        d1_bytes: 30_000.0,
        edge_flops: 12e9,
    }
}

fn bench_solvers(c: &mut Criterion) {
    let mut group = c.benchmark_group("offload_solver");
    let states = [(0.0, 0.0), (10.0, 0.0), (0.0, 10.0), (25.0, 25.0)];
    for (i, &(q, h)) in states.iter().enumerate() {
        let cost = SlotCost::new(shared(), DeviceParams::raspberry_pi(10.0), q, h, 0.25);
        group.bench_with_input(BenchmarkId::new("balance", i), &i, |b, _| {
            b.iter(|| black_box(balance_solve(&cost)));
        });
        group.bench_with_input(BenchmarkId::new("golden_section", i), &i, |b, _| {
            b.iter(|| black_box(golden_section_solve(&cost)));
        });
    }
    group.finish();
}

/// Full fleet decision: N devices deciding per slot (the scaling argument
/// for decentralisation — each device solves its own 1-D problem).
fn bench_fleet_decisions(c: &mut Criterion) {
    let mut group = c.benchmark_group("fleet_decision");
    for n in [10usize, 100, 1000] {
        group.bench_with_input(BenchmarkId::new("balance_all", n), &n, |b, &n| {
            let costs: Vec<SlotCost> = (0..n)
                .map(|i| {
                    SlotCost::new(
                        shared(),
                        DeviceParams::raspberry_pi(5.0 + (i % 7) as f64),
                        (i % 13) as f64,
                        (i % 5) as f64,
                        1.0 / n as f64,
                    )
                })
                .collect();
            b.iter(|| {
                for cost in &costs {
                    black_box(balance_solve(cost));
                }
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_solvers, bench_fleet_decisions);
criterion_main!(benches);
