//! Criterion bench: the tensor substrate — matmul, conv2d and exit-MLP
//! forward/train throughput underpinning the calibration pipeline.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use leime_tensor::nn::{Mlp, MlpConfig, Sgd};
use leime_tensor::ops::{conv2d, softmax_rows, Conv2dParams};
use leime_tensor::{Shape, Tensor};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::hint::black_box;

fn bench_matmul(c: &mut Criterion) {
    let mut group = c.benchmark_group("matmul");
    let mut rng = StdRng::seed_from_u64(0);
    for n in [32usize, 128, 256] {
        let a = Tensor::randn(Shape::d2(n, n), &mut rng);
        let b = Tensor::randn(Shape::d2(n, n), &mut rng);
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |bench, _| {
            bench.iter(|| black_box(a.matmul(&b).unwrap()));
        });
    }
    group.finish();
}

fn bench_conv2d(c: &mut Criterion) {
    let mut group = c.benchmark_group("conv2d");
    let mut rng = StdRng::seed_from_u64(1);
    for (cin, cout, hw) in [(3usize, 16usize, 32usize), (16, 32, 16)] {
        let input = Tensor::randn(Shape::d3(cin, hw, hw), &mut rng);
        let weight = Tensor::randn(Shape::d4(cout, cin, 3, 3), &mut rng);
        let bias = Tensor::zeros(Shape::d1(cout));
        let id = format!("{cin}x{hw}x{hw}->{cout}");
        group.bench_with_input(BenchmarkId::from_parameter(id), &cin, |bench, _| {
            bench.iter(|| {
                black_box(conv2d(&input, &weight, &bias, Conv2dParams::same3x3()).unwrap())
            });
        });
    }
    group.finish();
}

fn bench_mlp(c: &mut Criterion) {
    let mut group = c.benchmark_group("exit_classifier");
    let mut rng = StdRng::seed_from_u64(2);
    let cfg = MlpConfig {
        input_dim: 32,
        hidden_dim: 32,
        num_classes: 10,
    };
    let mlp = Mlp::new(cfg, &mut rng);
    let x = Tensor::randn(Shape::d2(64, 32), &mut rng);
    let y: Vec<usize> = (0..64).map(|i| i % 10).collect();
    group.bench_function("forward_batch64", |b| {
        b.iter(|| black_box(mlp.forward(&x).unwrap()));
    });
    group.bench_function("train_step_batch64", |b| {
        let mut m = mlp.clone();
        let mut opt = Sgd::new(Mlp::NUM_PARAMS, 0.05, 0.9);
        b.iter(|| black_box(m.train_step(&x, &y, &mut opt).unwrap()));
    });
    group.bench_function("softmax_rows_64x10", |b| {
        let logits = Tensor::randn(Shape::d2(64, 10), &mut rng);
        b.iter(|| black_box(softmax_rows(&logits).unwrap()));
    });
    group.finish();
}

criterion_group!(benches, bench_matmul, bench_conv2d, bench_mlp);
criterion_main!(benches);
