//! Criterion bench: branch-and-bound exit setting vs exhaustive search
//! across chain lengths — the Theorem 2 ablation (DESIGN.md §5).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use leime_dnn::{DnnChain, ExitRates, ExitSpec, Layer, LayerKind, ModelProfile};
use leime_exitcfg::{branch_and_bound, exhaustive, CostModel, EnvParams};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::hint::black_box;

fn profile_of(m: usize, seed: u64) -> (ModelProfile, ExitRates) {
    let mut rng = StdRng::seed_from_u64(seed);
    let layers: Vec<Layer> = (0..m)
        .map(|i| Layer {
            name: format!("l{i}"),
            kind: LayerKind::Conv,
            flops: 10f64.powf(rng.gen_range(7.0..9.5)),
            out_channels: rng.gen_range(16..512),
            out_h: (64 >> (i * 6 / m)).max(1),
            out_w: (64 >> (i * 6 / m)).max(1),
        })
        .collect();
    let chain = DnnChain::new("bench", 3, 64, 64, 10, layers).unwrap();
    let profile = ModelProfile::from_chain(&chain, ExitSpec::default()).unwrap();
    let mut rates: Vec<f64> = (0..m).map(|_| rng.gen_range(0.0..1.0)).collect();
    rates.sort_by(|a, b| a.partial_cmp(b).unwrap());
    rates[m - 1] = 1.0;
    (profile, ExitRates::new(rates).unwrap())
}

fn bench_exit_setting(c: &mut Criterion) {
    let mut group = c.benchmark_group("exit_setting");
    for m in [16usize, 64, 256] {
        let (profile, rates) = profile_of(m, 42);
        let env = EnvParams::raspberry_pi();
        group.bench_with_input(BenchmarkId::new("branch_and_bound", m), &m, |b, _| {
            let cost = CostModel::new(&profile, &rates, env).unwrap();
            b.iter(|| black_box(branch_and_bound(&cost).unwrap()));
        });
        group.bench_with_input(BenchmarkId::new("exhaustive", m), &m, |b, _| {
            let cost = CostModel::new(&profile, &rates, env).unwrap();
            b.iter(|| black_box(exhaustive(&cost).unwrap()));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_exit_setting);
criterion_main!(benches);
