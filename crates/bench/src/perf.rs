//! History and gate logic for the benchmark artifacts
//! (`BENCH_par.json` and `BENCH_kernels.json`, schema `leime-bench/1`).
//!
//! The artifact is a *history*: `{"runs": [...]}` with one record per
//! invocation, keyed by git revision and a monotonically increasing run
//! id, so perf drift across commits stays visible. Three layouts are
//! accepted on read (the golden tests in this module pin all three):
//!
//! 1. the current history document (`runs` array),
//! 2. a pre-history file whose whole body was one run record — migrated
//!    in place to a single-entry history on the next write,
//! 3. anything else — warned about and treated as a fresh history (the
//!    artifact is regenerable, so corruption must not block a benchmark
//!    run).
//!
//! The `--gate` baseline is the **rolling median** of the last
//! [`GATE_WINDOW`] comparable runs (same device and slot counts), not
//! the all-time best: a single lucky run on a quiet machine would
//! otherwise ratchet the floor up permanently and fail every honest run
//! after it. The median of a short trailing window tracks what the
//! current code on the current hardware actually does.

use serde_json::Value;

/// Trailing window for the gate's rolling-median baseline.
pub const GATE_WINDOW: usize = 3;

/// Parses the `perf_baseline` history from file text. `Ok` is the runs
/// list (empty for a fresh file); `Err` carries a warning for the
/// caller to print — the history restarts either way.
pub fn history_from_text(text: &str) -> Result<Vec<Value>, String> {
    history_from_text_for(text, "sequential")
}

/// Like [`history_from_text`], for any bench artifact: `record_key`
/// names the field whose presence marks the pre-history layout where
/// the whole document was one run record (`"sequential"` for
/// `perf_baseline`, `"kernels"` for `hot_kernels`).
pub fn history_from_text_for(text: &str, record_key: &str) -> Result<Vec<Value>, String> {
    let Ok(Value::Object(mut doc)) = serde_json::from_str::<Value>(text) else {
        return Err("not a JSON object — starting a fresh history".to_string());
    };
    if let Some(Value::Array(runs)) = doc.remove("runs") {
        return Ok(runs);
    }
    // Pre-history layout: the whole file was one run record.
    if doc.get(record_key).is_some() {
        doc.remove("schema");
        doc.remove("bench");
        doc.insert("run".to_string(), serde_json::json!(1));
        return Ok(vec![Value::Object(doc)]);
    }
    Err("unrecognized layout — starting a fresh history".to_string())
}

/// Reads the `perf_baseline` history from `path`. See
/// [`load_history_for`].
pub fn load_history(path: &std::path::Path) -> Vec<Value> {
    load_history_for(path, "sequential")
}

/// Reads a bench history from `path`: the current `runs` list, a
/// migrated pre-history single record, or empty for a missing file. A
/// corrupt history warns on stderr and restarts rather than blocking
/// the run.
pub fn load_history_for(path: &std::path::Path, record_key: &str) -> Vec<Value> {
    let Ok(text) = std::fs::read_to_string(path) else {
        return Vec::new();
    };
    history_from_text_for(&text, record_key).unwrap_or_else(|warning| {
        eprintln!("WARN: {}: {warning}", path.display());
        Vec::new()
    })
}

/// Wraps a `perf_baseline` history back into the archived document
/// layout.
pub fn history_doc(runs: Vec<Value>) -> Value {
    history_doc_for("perf_baseline", runs)
}

/// Wraps a bench history back into the archived document layout.
pub fn history_doc_for(bench: &str, runs: Vec<Value>) -> Value {
    serde_json::json!({
        "schema": "leime-bench/1",
        "bench": bench,
        "runs": runs,
    })
}

/// A run's peak slots/s — sequential and parallel figures both count;
/// the gate tracks peak throughput, whichever mode produced it.
pub fn peak_slots_per_sec(run: &Value) -> Option<f64> {
    let candidates = std::iter::once(run["sequential"]["slots_per_sec"].as_f64()).chain(
        run["parallel"]
            .as_array()
            .into_iter()
            .flatten()
            .map(|p| p["slots_per_sec"].as_f64()),
    );
    candidates.flatten().fold(None, |best: Option<f64>, sps| {
        Some(best.map_or(sps, |b| b.max(sps)))
    })
}

/// The gate baseline: median peak slots/s over the last [`GATE_WINDOW`]
/// runs with the same device and slot counts, with the git revisions
/// that contributed. `None` when no comparable history exists (fresh
/// clones and parameter changes must not wedge CI).
pub fn rolling_median_baseline(
    history: &[Value],
    devices: usize,
    slots: usize,
) -> Option<(String, f64)> {
    let comparable: Vec<&Value> = history
        .iter()
        .filter(|run| {
            run["devices"].as_u64() == Some(devices as u64)
                && run["slots"].as_u64() == Some(slots as u64)
        })
        .collect();
    windowed_median(&comparable, peak_slots_per_sec)
}

/// A `BENCH_fleet.json` run's peak device-slots/s across its sweep rows
/// (the fleet bench's throughput unit: one device advancing one slot —
/// comparable across devices × edges grid cells).
pub fn fleet_peak_device_slots_per_sec(run: &Value) -> Option<f64> {
    run["sweep"]
        .as_array()
        .into_iter()
        .flatten()
        .filter_map(|row| row["device_slots_per_sec"].as_f64())
        .fold(None, |best: Option<f64>, dsps| {
            Some(best.map_or(dsps, |b| b.max(dsps)))
        })
}

/// The fleet gate baseline: median peak device-slots/s over the last
/// [`GATE_WINDOW`] `ext_fleet` runs with the same sweep envelope
/// (devices *and* edges *and* slots — the edge dimension changes where
/// time goes, so cross-shape comparisons would be meaningless).
pub fn fleet_rolling_median_baseline(
    history: &[Value],
    devices: usize,
    edges: usize,
    slots: usize,
) -> Option<(String, f64)> {
    let comparable: Vec<&Value> = history
        .iter()
        .filter(|run| {
            run["devices"].as_u64() == Some(devices as u64)
                && run["edges"].as_u64() == Some(edges as u64)
                && run["slots"].as_u64() == Some(slots as u64)
        })
        .collect();
    windowed_median(&comparable, fleet_peak_device_slots_per_sec)
}

/// Median peak over the trailing [`GATE_WINDOW`] of `comparable`, with
/// the contributing git revisions (sorted by peak, ascending).
fn windowed_median(
    comparable: &[&Value],
    peak: impl Fn(&Value) -> Option<f64>,
) -> Option<(String, f64)> {
    let window = &comparable[comparable.len().saturating_sub(GATE_WINDOW)..];
    let mut peaks: Vec<(f64, &str)> = window
        .iter()
        .filter_map(|run| peak(run).map(|p| (p, run["git_rev"].as_str().unwrap_or("unknown"))))
        .collect();
    if peaks.is_empty() {
        return None;
    }
    peaks.sort_by(|a, b| a.0.total_cmp(&b.0));
    let revs = peaks
        .iter()
        .map(|(_, rev)| *rev)
        .collect::<Vec<_>>()
        .join(",");
    // Median: middle element, or the mean of the middle pair for an
    // even-sized window.
    let median = if peaks.len() % 2 == 1 {
        peaks[peaks.len() / 2].0
    } else {
        let hi = peaks.len() / 2;
        (peaks[hi - 1].0 + peaks[hi].0) / 2.0
    };
    Some((revs, median))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run_record(devices: u64, slots: u64, rev: &str, seq: f64, par: &[f64]) -> Value {
        serde_json::json!({
            "run": 1,
            "git_rev": rev,
            "devices": devices,
            "slots": slots,
            "sequential": {"slots_per_sec": seq},
            "parallel": par.iter().map(|&p| serde_json::json!({"slots_per_sec": p}))
                .collect::<Vec<_>>(),
        })
    }

    /// Golden: the three accepted `BENCH_par.json` layouts. The
    /// pre-history migration is byte-level behavior other tooling
    /// depends on (run ids restart at 1, envelope keys dropped), so the
    /// exact output object is pinned.
    #[test]
    fn history_migration_golden() {
        // Current layout: runs pass through untouched.
        let current = r#"{"schema":"leime-bench/1","bench":"perf_baseline",
            "runs":[{"run":1,"git_rev":"abc"},{"run":2,"git_rev":"def"}]}"#;
        let runs = history_from_text(current).unwrap();
        assert_eq!(runs.len(), 2);
        assert_eq!(runs[1]["git_rev"].as_str(), Some("def"));

        // Pre-history layout: one record as the whole document becomes
        // run 1 with the envelope keys stripped.
        let pre = r#"{"schema":"leime-bench/1","bench":"perf_baseline",
            "git_rev":"a1b2c3","devices":64,"slots":200,
            "sequential":{"wall_ms":24.3,"slots_per_sec":8221.8},
            "parallel":[],"best_speedup":1.0}"#;
        let migrated = history_from_text(pre).unwrap();
        assert_eq!(migrated.len(), 1);
        // NB: the vendored serde_json compares objects in insertion
        // order, so the pinned record lists "run" last — the migration
        // appends it after stripping the envelope.
        let expected = serde_json::json!({
            "git_rev": "a1b2c3",
            "devices": 64,
            "slots": 200,
            "sequential": {"wall_ms": 24.3, "slots_per_sec": 8221.8},
            "parallel": [],
            "best_speedup": 1.0,
            "run": 1,
        });
        assert_eq!(migrated[0], expected, "pre-history migration drifted");

        // Re-wrapping round-trips through the current layout.
        let doc = history_doc(migrated);
        let reread = history_from_text(&doc.to_string()).unwrap();
        assert_eq!(reread[0], expected);

        // Corrupt layouts warn and restart.
        assert!(history_from_text("[]").is_err());
        assert!(history_from_text(r#"{"schema":"x"}"#).is_err());
        assert!(history_from_text("not json").is_err());
    }

    /// Golden: the committed single-record `BENCH_kernels.json` layout
    /// (shipped by the PR that introduced the kernel bench) migrates to
    /// a run-1 history exactly like the perf_baseline pre-history did.
    #[test]
    fn kernels_history_migration_golden() {
        let pre = r#"{"schema":"leime-bench/1","bench":"hot_kernels",
            "git_rev":"40c8d1b",
            "kernels":[{"name":"queue_update","ns_per_op":10.5,"ops":2000000}]}"#;
        let migrated = history_from_text_for(pre, "kernels").unwrap();
        assert_eq!(migrated.len(), 1);
        let expected = serde_json::json!({
            "git_rev": "40c8d1b",
            "kernels": [{"name": "queue_update", "ns_per_op": 10.5, "ops": 2000000}],
            "run": 1,
        });
        assert_eq!(migrated[0], expected, "kernels migration drifted");

        // Round-trips through the history envelope, keeping the bench
        // tag, and appended runs extend the list.
        let mut runs = migrated;
        runs.push(serde_json::json!({"git_rev": "fff", "kernels": [], "run": 2}));
        let doc = history_doc_for("hot_kernels", runs);
        assert_eq!(doc["bench"].as_str(), Some("hot_kernels"));
        let reread = history_from_text_for(&doc.to_string(), "kernels").unwrap();
        assert_eq!(reread.len(), 2);
        assert_eq!(reread[0], expected);
        assert_eq!(reread[1]["run"].as_u64(), Some(2));

        // A perf_baseline-shaped document is NOT a kernels record.
        assert!(history_from_text_for(r#"{"sequential":{}}"#, "kernels").is_err());
    }

    #[test]
    fn peak_covers_sequential_and_parallel() {
        let run = run_record(64, 200, "abc", 100.0, &[250.0, 180.0]);
        assert_eq!(peak_slots_per_sec(&run), Some(250.0));
        let seq_only = run_record(64, 200, "abc", 300.0, &[]);
        assert_eq!(peak_slots_per_sec(&seq_only), Some(300.0));
        assert_eq!(peak_slots_per_sec(&serde_json::json!({})), None);
    }

    /// The gate baseline is the median of the last three comparable
    /// runs — an old outlier ages out of the window instead of pinning
    /// the floor forever.
    #[test]
    fn gate_baseline_is_rolling_median_of_last_three() {
        let history = vec![
            run_record(64, 200, "r1", 9_000.0, &[]),
            // Lucky outlier — must NOT set the floor once three newer
            // comparable runs exist.
            run_record(64, 200, "r2", 50_000.0, &[]),
            run_record(64, 200, "r3", 10_000.0, &[]),
            // Different parameters: never comparable.
            run_record(8, 200, "r4", 99_000.0, &[]),
            run_record(64, 100, "r5", 99_000.0, &[]),
            run_record(64, 200, "r6", 11_000.0, &[12_000.0]),
            run_record(64, 200, "r7", 10_500.0, &[]),
        ];
        let (revs, median) = rolling_median_baseline(&history, 64, 200).unwrap();
        // Window = {r3: 10000, r6: 12000, r7: 10500} → median 10500.
        assert_eq!(median, 10_500.0);
        assert_eq!(revs, "r3,r7,r6");

        // Shorter histories: median of what exists (even window →
        // mean of the middle pair).
        let two = &history[..2];
        let (_, m2) = rolling_median_baseline(two, 64, 200).unwrap();
        assert_eq!(m2, (9_000.0 + 50_000.0) / 2.0);

        // No comparable runs at all → no gate.
        assert!(rolling_median_baseline(&history, 1, 1).is_none());
    }

    /// Histories shorter than [`GATE_WINDOW`] must still gate: the
    /// median of whatever comparable runs exist stands in. Only a
    /// zero-run history skips (a first run has nothing to regress
    /// against).
    #[test]
    fn short_histories_still_gate() {
        // 0 runs: skip.
        assert!(rolling_median_baseline(&[], 64, 200).is_none());

        // 1 run: that run IS the baseline.
        let one = vec![run_record(64, 200, "r1", 9_000.0, &[])];
        let (revs, median) = rolling_median_baseline(&one, 64, 200).unwrap();
        assert_eq!(revs, "r1");
        assert_eq!(median, 9_000.0);

        // 2 runs: mean of the pair (peak of r2 is its parallel figure's
        // better, 11_000 sequential here).
        let two = vec![
            run_record(64, 200, "r1", 9_000.0, &[]),
            run_record(64, 200, "r2", 11_000.0, &[10_000.0]),
        ];
        let (revs, median) = rolling_median_baseline(&two, 64, 200).unwrap();
        assert_eq!(revs, "r1,r2");
        assert_eq!(median, 10_000.0);

        // A lone comparable run whose record carries no parsable peak
        // cannot gate either.
        let unparsable = vec![serde_json::json!({
            "run": 1, "git_rev": "rx", "devices": 64, "slots": 200,
        })];
        assert!(rolling_median_baseline(&unparsable, 64, 200).is_none());
    }

    fn fleet_record(devices: u64, edges: u64, slots: u64, rev: &str, dsps: &[f64]) -> Value {
        serde_json::json!({
            "run": 1,
            "git_rev": rev,
            "devices": devices,
            "edges": edges,
            "slots": slots,
            "sweep": dsps.iter().map(|&d| serde_json::json!({
                "devices": devices, "edges": edges, "slots": slots,
                "device_slots_per_sec": d,
            })).collect::<Vec<_>>(),
        })
    }

    /// The fleet peak is the best device-slots/s over the sweep rows;
    /// records with no sweep (or no parsable rows) yield no peak.
    #[test]
    fn fleet_peak_covers_the_sweep() {
        let run = fleet_record(1_000_000, 16, 10, "abc", &[8.0e5, 1.8e6, 1.2e6]);
        assert_eq!(fleet_peak_device_slots_per_sec(&run), Some(1.8e6));
        assert_eq!(
            fleet_peak_device_slots_per_sec(&serde_json::json!({})),
            None
        );
        assert_eq!(
            fleet_peak_device_slots_per_sec(&serde_json::json!({"sweep": []})),
            None
        );
    }

    /// The fleet gate matches on the full sweep envelope — devices,
    /// edges *and* slots — and medians the trailing window exactly like
    /// the `perf_baseline` gate.
    #[test]
    fn fleet_gate_baseline_requires_matching_envelope() {
        let history = vec![
            fleet_record(1_000_000, 16, 10, "r1", &[1.0e6]),
            // Different edge count: never comparable.
            fleet_record(1_000_000, 4, 10, "r2", &[9.9e6]),
            // Different devices / slots: never comparable.
            fleet_record(100_000, 16, 10, "r3", &[9.9e6]),
            fleet_record(1_000_000, 16, 20, "r4", &[9.9e6]),
            fleet_record(1_000_000, 16, 10, "r5", &[1.4e6]),
            fleet_record(1_000_000, 16, 10, "r6", &[1.2e6]),
            fleet_record(1_000_000, 16, 10, "r7", &[1.3e6]),
        ];
        let (revs, median) = fleet_rolling_median_baseline(&history, 1_000_000, 16, 10).unwrap();
        // Window = {r5: 1.4e6, r6: 1.2e6, r7: 1.3e6} → median 1.3e6.
        assert_eq!(median, 1.3e6);
        assert_eq!(revs, "r6,r7,r5");
        // Single comparable run gates; empty history does not.
        let (_, one) = fleet_rolling_median_baseline(&history[..1], 1_000_000, 16, 10).unwrap();
        assert_eq!(one, 1.0e6);
        assert!(fleet_rolling_median_baseline(&[], 1_000_000, 16, 10).is_none());
        // The "sweep" record key marks the fleet pre-history layout for
        // `history_from_text_for`, mirroring the kernels migration.
        let pre = r#"{"schema":"leime-bench/1","bench":"ext_fleet",
            "git_rev":"abc","devices":100,"edges":2,"slots":10,"sweep":[]}"#;
        let migrated = history_from_text_for(pre, "sweep").unwrap();
        assert_eq!(migrated.len(), 1);
        assert_eq!(migrated[0]["run"].as_u64(), Some(1));
    }
}
