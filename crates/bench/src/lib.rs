//! # leime-bench
//!
//! Experiment harness regenerating every table and figure of the LEIME
//! paper's evaluation (see DESIGN.md §4 for the experiment index and
//! EXPERIMENTS.md for paper-vs-measured results).
//!
//! Each figure has its own binary (`cargo run --release -p leime-bench
//! --bin fig7_network`); this library holds the shared testbed presets and
//! table-printing helpers.

use std::path::PathBuf;

pub mod perf;

use leime::{ModelKind, Scenario};
use leime_offload::DeviceParams;
use leime_telemetry::Registry;

/// The paper's testbed fleet: 4 Raspberry Pi 3B+ and 2 Jetson Nano behind
/// WiFi, an i7-3770 edge, a V100 cloud (§IV-A, Fig. 5).
pub fn paper_testbed(model: ModelKind, arrival_mean: f64) -> Scenario {
    let mut s = Scenario::raspberry_pi_cluster(model, 4, arrival_mean);
    s.devices.push(DeviceParams::jetson_nano(arrival_mean));
    s.devices.push(DeviceParams::jetson_nano(arrival_mean));
    s
}

/// A single-device scenario (the per-device measurements of Figs. 7–9).
pub fn single_device(model: ModelKind, nano: bool, arrival_mean: f64) -> Scenario {
    if nano {
        Scenario::jetson_nano_cluster(model, 1, arrival_mean)
    } else {
        Scenario::raspberry_pi_cluster(model, 1, arrival_mean)
    }
}

/// Parses a `--json <path>` flag from the process arguments, if present.
///
/// Every experiment binary accepts this flag; when given, the binary dumps
/// its telemetry registry snapshot (schema `leime-telemetry/1`) to `path`
/// after printing its tables.
///
/// Exits with status 2 (a usage error, not a panic) if `--json` is passed
/// without a following path.
pub fn json_out_path() -> Option<PathBuf> {
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        if arg == "--json" {
            let Some(path) = args.next() else {
                eprintln!("--json requires a <path> argument");
                std::process::exit(2);
            };
            return Some(PathBuf::from(path));
        }
    }
    None
}

/// Serialises `registry`'s snapshot as pretty-printed JSON to `path`.
///
/// Exits with status 1 if serialisation or the file write fails: the
/// experiment's whole purpose is producing this artefact, so failure
/// must be loud — but it is an I/O failure, not a bug, so no panic.
pub fn write_telemetry(registry: &Registry, path: &std::path::Path) {
    let snapshot = registry.snapshot();
    let json = match serde_json::to_string_pretty(&snapshot) {
        Ok(j) => j,
        Err(e) => {
            eprintln!("telemetry snapshot failed to serialise: {e}");
            std::process::exit(1);
        }
    };
    if let Err(e) = std::fs::write(path, &json) {
        eprintln!("write {}: {e}", path.display());
        std::process::exit(1);
    }
    eprintln!("telemetry written to {}", path.display());
}

/// Renders an aligned text table: a header row plus data rows.
///
/// # Panics
///
/// Panics if any row's width differs from the header's.
pub fn render_table(header: &[String], rows: &[Vec<String>]) -> String {
    for row in rows {
        assert_eq!(row.len(), header.len(), "ragged table row");
    }
    let mut widths: Vec<usize> = header.iter().map(|h| h.len()).collect();
    for row in rows {
        for (w, cell) in widths.iter_mut().zip(row) {
            *w = (*w).max(cell.len());
        }
    }
    let fmt_row = |cells: &[String]| -> String {
        cells
            .iter()
            .zip(&widths)
            .map(|(c, w)| format!("{c:>w$}", w = w))
            .collect::<Vec<_>>()
            .join("  ")
    };
    let mut out = String::new();
    out.push_str(&fmt_row(header));
    out.push('\n');
    out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (widths.len() - 1)));
    out.push('\n');
    for row in rows {
        out.push_str(&fmt_row(row));
        out.push('\n');
    }
    out
}

/// Shorthand for building a header row from string literals.
pub fn header(cols: &[&str]) -> Vec<String> {
    cols.iter().map(|s| s.to_string()).collect()
}

/// Formats seconds as adaptive ms/s text.
pub fn fmt_time(seconds: f64) -> String {
    if !seconds.is_finite() {
        "inf".to_string()
    } else if seconds < 1.0 {
        format!("{:.1}ms", seconds * 1e3)
    } else {
        format!("{seconds:.3}s")
    }
}

/// Formats a speedup multiplier.
pub fn fmt_speedup(x: f64) -> String {
    if x.is_finite() {
        format!("{x:.2}x")
    } else {
        "inf".to_string()
    }
}

/// Renders a unicode sparkline for a value series (8 block heights),
/// scaled to the series' own min–max range; flat series render mid-blocks.
///
/// ```
/// let s = leime_bench::sparkline(&[0.0, 1.0, 2.0, 3.0]);
/// assert_eq!(s.chars().count(), 4);
/// ```
// The `hi - lo < EPSILON` width test is a flat-series check, not equality.
#[allow(clippy::float_equality_without_abs)]
pub fn sparkline(values: &[f64]) -> String {
    const BLOCKS: [char; 8] = ['▁', '▂', '▃', '▄', '▅', '▆', '▇', '█'];
    if values.is_empty() {
        return String::new();
    }
    let finite: Vec<f64> = values.iter().copied().filter(|v| v.is_finite()).collect();
    let lo = finite.iter().copied().fold(f64::INFINITY, f64::min);
    let hi = finite.iter().copied().fold(f64::NEG_INFINITY, f64::max);
    values
        .iter()
        .map(|&v| {
            if !v.is_finite() {
                '?'
            } else if hi - lo < f64::EPSILON {
                BLOCKS[3]
            } else {
                let idx = ((v - lo) / (hi - lo) * 7.0).round() as usize;
                BLOCKS[idx.min(7)]
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sparkline_shape() {
        let s = sparkline(&[1.0, 2.0, 3.0, 2.0, 1.0]);
        let chars: Vec<char> = s.chars().collect();
        assert_eq!(chars.len(), 5);
        assert_eq!(chars[0], '▁');
        assert_eq!(chars[2], '█');
        assert_eq!(chars[0], chars[4]);
    }

    #[test]
    fn sparkline_flat_and_empty() {
        assert_eq!(sparkline(&[]), "");
        let flat = sparkline(&[5.0, 5.0, 5.0]);
        assert!(flat.chars().all(|c| c == '▄'));
        assert!(sparkline(&[1.0, f64::INFINITY]).contains('?'));
    }

    #[test]
    fn table_alignment() {
        let t = render_table(
            &header(&["a", "long-col"]),
            &[vec!["1".into(), "2".into()], vec!["333".into(), "4".into()]],
        );
        let lines: Vec<&str> = t.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].contains("long-col"));
        assert!(lines[2].ends_with("2"));
    }

    #[test]
    #[should_panic(expected = "ragged")]
    fn table_rejects_ragged_rows() {
        render_table(&header(&["a"]), &[vec!["1".into(), "2".into()]]);
    }

    #[test]
    fn time_formatting() {
        assert_eq!(fmt_time(0.0123), "12.3ms");
        assert_eq!(fmt_time(2.5), "2.500s");
        assert_eq!(fmt_time(f64::INFINITY), "inf");
        assert_eq!(fmt_speedup(4.417), "4.42x");
    }

    #[test]
    fn testbed_has_six_devices() {
        let s = paper_testbed(ModelKind::InceptionV3, 5.0);
        assert_eq!(s.devices.len(), 6);
        assert!(s.devices[4].flops > s.devices[0].flops);
        assert!(s.validate().is_ok());
    }
}
