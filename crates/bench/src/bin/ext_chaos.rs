//! Extension experiment — fault injection and graceful degradation: a
//! seeded `leime-chaos` schedule (≈30 % link-blackout duty plus
//! shared-medium bandwidth collapses) hits the fleet for the first
//! `FAULT_WINDOW_S` seconds of the run, then clears so the tail measures
//! recovery. LEIME with the timeout → retry → local-fallback ladder is
//! compared against the fault-free run and against a fully-local
//! baseline under the same faults.

use leime::{
    invariant, ControllerKind, ExitStrategy, ModelKind, RunReport, Scenario, SlottedSystem,
};
use leime_bench::{fmt_time, render_table};
use leime_telemetry::Registry;

const SLOTS: usize = 300;
const SEED: u64 = 17;
const CHAOS_SEED: u64 = 42;
const DEVICES: usize = 3;
const FAULT_WINDOW_S: f64 = 120.0;
/// Post-fault backlog envelope (first-block task equivalents) the queues
/// must drain back into once the schedule clears — Eq. 10–11 stability.
/// Sized ~2x the fault-free steady-state backlog (≈56 at this load);
/// the unstable fully-local baseline ends an order of magnitude above it.
const DRAIN_ENVELOPE: f64 = 100.0;

struct Arm {
    name: &'static str,
    report: RunReport,
    backlog: f64,
}

fn run_arm(name: &'static str, scenario: &Scenario, registry: &Registry) -> Arm {
    let dep = scenario.deploy(ExitStrategy::Leime).unwrap();
    let mut sys = SlottedSystem::new(scenario.clone(), dep).unwrap();
    sys.attach_registry(registry, &format!("chaos.{name}"));
    let report = sys.run(SLOTS, SEED).unwrap();
    let backlog = sys.queues().iter().map(|qp| qp.q() + qp.h()).sum::<f64>();
    Arm {
        name,
        report,
        backlog,
    }
}

fn main() {
    println!("== Extension: fault injection & graceful degradation ==");
    println!(
        "({DEVICES} Pi-class devices, link flaps at 30% duty + bandwidth collapses \
         for the first {FAULT_WINDOW_S:.0} s of {SLOTS} slots, chaos seed {CHAOS_SEED})\n"
    );

    let json_path = leime_bench::json_out_path();
    let registry = Registry::new();

    let faulted =
        Scenario::chaos_testbed(ModelKind::SqueezeNet, DEVICES, CHAOS_SEED, FAULT_WINDOW_S);
    let mut clean = faulted.clone();
    clean.chaos = None;
    let mut local = faulted.clone();
    local.controller = ControllerKind::DeviceOnly;

    let arms = [
        run_arm("clean", &clean, &registry),
        run_arm("graceful", &faulted, &registry),
        run_arm("d_only", &local, &registry),
    ];
    let clean_mean = arms[0].report.mean_tct_s();

    let mut rows = Vec::new();
    for arm in &arms {
        let r = &arm.report;
        let f = r.fault_stats();
        rows.push(vec![
            arm.name.to_string(),
            fmt_time(r.mean_tct_s()),
            fmt_time(r.mean_tct_after(FAULT_WINDOW_S)),
            format!("{:.3}", r.completion_rate()),
            format!("{}", f.fault_slots),
            format!("{}/{}/{}", f.timeouts, f.fallbacks, f.recoveries),
            format!("{:.1}", arm.backlog),
        ]);
    }
    let h: Vec<String> = [
        "arm",
        "mean_TCT",
        "tail_TCT",
        "completion",
        "fault_slots",
        "to/fb/rec",
        "end_backlog",
    ]
    .iter()
    .map(|s| s.to_string())
    .collect();
    println!("{}", render_table(&h, &rows));

    // Recovery guard: once the schedule clears, the LEIME arms' queues
    // must drain back into the envelope (Eq. 10–11 stability after
    // faults). The fully-local baseline is exempt — the testbed load
    // exceeds standalone device capacity by design, so its backlog grows
    // without bound whether or not faults are injected.
    for arm in &arms[..2] {
        invariant::check_drained(
            &format!("ext_chaos.{}", arm.name),
            arm.backlog,
            DRAIN_ENVELOPE,
        );
    }

    let graceful = &arms[1].report;
    let local = &arms[2].report;
    let tail = graceful.mean_tct_after(FAULT_WINDOW_S);
    println!(
        "\nReading: under faults the graceful controller completes \
         {:.1}% of arriving work vs {:.1}% fully-local, and its post-fault \
         mean TCT ({}) recovers to within {:.1}% of the fault-free mean ({}).",
        graceful.completion_rate() * 100.0,
        local.completion_rate() * 100.0,
        fmt_time(tail),
        (tail / clean_mean - 1.0).abs() * 100.0,
        fmt_time(clean_mean),
    );
    if let Some(path) = json_path {
        leime_bench::write_telemetry(&registry, &path);
    }
}
