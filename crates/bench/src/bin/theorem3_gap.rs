//! Theorem 3 — the Lyapunov optimality gap: the time-average TCT under
//! the drift-plus-penalty controller approaches the offline optimum at
//! rate `B/V`, trading queue backlog for delay.
//!
//! Sweeps `V` and reports the mean TCT and the mean queue backlogs; the
//! offline reference is the best fixed offloading ratio chosen in
//! hindsight for the same workload.

use leime::{ControllerKind, ExitStrategy, ModelKind, Scenario};
use leime_bench::{fmt_time, header, render_table};

const SLOTS: usize = 400;
const SEED: u64 = 12;

fn main() {
    println!("== Theorem 3: V sweep (ME-Inception v3, Raspberry Pi, rate 8/slot) ==\n");
    let mut base = Scenario::raspberry_pi_cluster(ModelKind::InceptionV3, 2, 8.0);
    let dep = base.deploy(ExitStrategy::Leime).unwrap();

    // Offline reference: best fixed ratio in hindsight.
    let mut best_fixed = f64::INFINITY;
    let mut best_ratio = 0.0;
    for i in 0..=20 {
        let ratio = i as f64 / 20.0;
        base.controller = ControllerKind::Fixed(ratio);
        let r = base.run_slotted(&dep, SLOTS, SEED).unwrap();
        if r.mean_tct_s() < best_fixed {
            best_fixed = r.mean_tct_s();
            best_ratio = ratio;
        }
    }
    println!(
        "offline reference: best fixed ratio x = {best_ratio:.2} with mean TCT {}\n",
        fmt_time(best_fixed)
    );

    let mut rows = Vec::new();
    for v in [1.0, 10.0, 100.0, 1e3, 1e4, 1e5, 1e6] {
        base.controller = ControllerKind::Lyapunov;
        base.v = v;
        let r = base.run_slotted(&dep, SLOTS, SEED).unwrap();
        rows.push(vec![
            format!("{v:.0}"),
            fmt_time(r.mean_tct_s()),
            format!("{:.3}", r.mean_tct_s() / best_fixed),
            format!("{:.2}", r.mean_queue_q()),
            format!("{:.2}", r.mean_queue_h()),
            format!("{:.3}", r.mean_offload_ratio()),
        ]);
    }
    println!(
        "{}",
        render_table(
            &header(&["V", "mean_TCT", "vs_offline", "mean_Q", "mean_H", "mean_x"]),
            &rows
        )
    );
    println!(
        "\nTheorem 3 predicts the `vs_offline` column approaches 1 as V grows \
         (gap shrinking like B/V), with queue backlog as the price."
    );
}
