//! Perf baseline for the deterministic parallel fleet runner.
//!
//! Times the 64-device reference scenario sequentially and under
//! `leime-par` sharding, verifies the outputs are byte-identical (the
//! DESIGN.md §11 contract — a perf number from a diverging run would be
//! meaningless), and appends the run to `BENCH_par.json` (schema
//! `leime-bench/1`) for CI to archive.
//!
//! The artifact is a *history*: `{"runs": [...]}` with one record per
//! invocation, keyed by git revision and a monotonically increasing run
//! id, so perf drift across commits stays visible. A pre-history
//! single-record file is migrated in place on the next run.
//!
//! ```text
//! cargo run --release -p leime-bench --bin perf_baseline -- --workers 1,2,4
//! ```
//!
//! Flags: `--workers <list>` (comma-separated counts, default `1,2,4`),
//! `--devices <n>` (default 64), `--slots <n>` (default 200),
//! `--json <path>` (default `BENCH_par.json`), `--gate` (regression
//! gate, see below).
//!
//! The ≥1.5× speedup expectation at 4 workers is a *soft* check: on a
//! constrained CI box it logs a warning rather than failing, so the
//! artifact still lands and the regression shows up in the history.
//!
//! `--gate` turns the *history* into a hard check: the run's best
//! slots/s is compared against the **rolling median** of the last
//! [`perf::GATE_WINDOW`] comparable prior records (same device and slot
//! counts — see `leime_bench::perf`), and a drop of more than
//! [`GATE_REGRESSION_PCT`]% exits non-zero — after appending the run,
//! so the regression is archived either way. A median baseline means a
//! single lucky run cannot ratchet the floor up permanently. With no
//! comparable history the gate skips with a notice instead of failing,
//! so fresh clones and parameter changes don't wedge CI.

use std::num::NonZeroUsize;
use std::path::PathBuf;

use leime::{ControllerKind, ExitStrategy, ModelKind, RunReport, Scenario};
use leime_bench::perf::{self, history_doc, load_history, rolling_median_baseline};
use leime_bench::{fmt_speedup, fmt_time, header, render_table};
use leime_telemetry::{Clock, WallClock};

const SEED: u64 = 7;
/// Expected parallel speedup at 4 workers on the reference scenario
/// (soft: logged, not enforced — CI runners vary).
const SOFT_SPEEDUP_FLOOR: f64 = 1.5;
/// `--gate` tolerance: fail when best slots/s drops more than this far
/// below the rolling-median baseline of the comparable history.
const GATE_REGRESSION_PCT: f64 = 10.0;

struct Args {
    workers: Vec<usize>,
    devices: usize,
    slots: usize,
    json: PathBuf,
    gate: bool,
}

fn parse_args() -> Args {
    let mut args = Args {
        workers: vec![1, 2, 4],
        devices: 64,
        slots: 200,
        json: PathBuf::from("BENCH_par.json"),
        gate: false,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |what: &str| -> String {
            it.next().unwrap_or_else(|| {
                eprintln!("{flag} requires a {what} argument");
                std::process::exit(2);
            })
        };
        match flag.as_str() {
            "--workers" => {
                args.workers = value("comma-separated list")
                    .split(',')
                    .map(|w| {
                        w.trim().parse().unwrap_or_else(|_| {
                            eprintln!("bad worker count {w:?}");
                            std::process::exit(2);
                        })
                    })
                    .collect();
            }
            "--devices" => args.devices = parse_or_die(&value("number")),
            "--slots" => args.slots = parse_or_die(&value("number")),
            "--json" => args.json = PathBuf::from(value("path")),
            "--gate" => args.gate = true,
            other => {
                eprintln!("unknown flag {other}");
                std::process::exit(2);
            }
        }
    }
    if args.workers.is_empty() || args.workers.contains(&0) {
        eprintln!("--workers needs at least one non-zero count");
        std::process::exit(2);
    }
    args
}

fn parse_or_die(s: &str) -> usize {
    s.parse().unwrap_or_else(|_| {
        eprintln!("bad numeric argument {s:?}");
        std::process::exit(2);
    })
}

/// Best-effort git revision for the archived record.
fn git_rev() -> String {
    std::process::Command::new("git")
        .args(["rev-parse", "--short", "HEAD"])
        .output()
        .ok()
        .filter(|o| o.status.success())
        .and_then(|o| String::from_utf8(o.stdout).ok())
        .map(|s| s.trim().to_string())
        .unwrap_or_else(|| "unknown".to_string())
}

/// One timed run; the clock is the telemetry crate's [`WallClock`] (the
/// workspace's only sanctioned wall-time source, rule L3).
fn timed_run(
    scenario: &Scenario,
    deployment: &leime::Deployment,
    slots: usize,
    workers: usize,
) -> (RunReport, f64) {
    let clock = WallClock::new();
    let report = scenario
        .run_slotted_workers(
            deployment,
            slots,
            SEED,
            NonZeroUsize::new(workers).expect("validated non-zero"),
        )
        .expect("reference scenario must run");
    (report, clock.now())
}

fn main() {
    let args = parse_args();
    let mut scenario = Scenario::raspberry_pi_cluster(ModelKind::InceptionV3, args.devices, 5.0);
    scenario.controller = ControllerKind::Lyapunov;
    let deployment = scenario
        .deploy(ExitStrategy::Leime)
        .expect("reference deployment");

    println!(
        "== perf_baseline: {} devices, {} slots, seed {SEED} ==\n",
        args.devices, args.slots
    );

    // Warm-up (page in code, spin up allocator arenas), then the timed
    // sequential reference.
    let _ = timed_run(&scenario, &deployment, args.slots.min(20), 1);
    let (seq_report, seq_s) = timed_run(&scenario, &deployment, args.slots, 1);
    let seq_json = serde_json::to_string(&seq_report).expect("report serializes");

    let mut rows = Vec::new();
    let mut runs = Vec::new();
    rows.push(vec![
        "1 (reference)".to_string(),
        fmt_time(seq_s),
        format!("{:.1}", args.slots as f64 / seq_s),
        fmt_speedup(1.0),
        "yes".to_string(),
    ]);
    let mut best_speedup = 1.0f64;
    for &w in &args.workers {
        if w == 1 {
            continue;
        }
        let (report, par_s) = timed_run(&scenario, &deployment, args.slots, w);
        let identical = serde_json::to_string(&report).expect("report serializes") == seq_json;
        if !identical {
            // A diverging parallel run is a correctness bug, not a perf
            // data point; fail loudly.
            eprintln!("FATAL: run with {w} workers diverged from sequential output");
            std::process::exit(1);
        }
        let speedup = seq_s / par_s;
        best_speedup = best_speedup.max(speedup);
        rows.push(vec![
            w.to_string(),
            fmt_time(par_s),
            format!("{:.1}", args.slots as f64 / par_s),
            fmt_speedup(speedup),
            "yes".to_string(),
        ]);
        runs.push(serde_json::json!({
            "workers": w,
            "wall_ms": par_s * 1e3,
            "slots_per_sec": args.slots as f64 / par_s,
            "speedup": speedup,
            "identical_to_sequential": true,
        }));
    }
    println!(
        "{}",
        render_table(
            &header(&["workers", "wall", "slots/s", "speedup", "identical"]),
            &rows
        )
    );

    if args.workers.iter().any(|&w| w >= 4) && best_speedup < SOFT_SPEEDUP_FLOOR {
        eprintln!(
            "WARN: best speedup {best_speedup:.2}x below the {SOFT_SPEEDUP_FLOOR}x expectation \
             (constrained runner?) — recorded, not failed"
        );
    }

    let mut history = load_history(&args.json);
    // Snapshot the rolling-median baseline before this run joins the
    // history; the gate verdict comes after the write so the regression
    // is archived either way.
    let baseline = rolling_median_baseline(&history, args.devices, args.slots);
    let current_best = (args.slots as f64 / seq_s).max(
        runs.iter()
            .filter_map(|r| r["slots_per_sec"].as_f64())
            .fold(0.0, f64::max),
    );
    let record = serde_json::json!({
        "run": history.len() + 1,
        "git_rev": git_rev(),
        "devices": args.devices,
        "slots": args.slots,
        "seed": SEED,
        "sequential": {
            "wall_ms": seq_s * 1e3,
            "slots_per_sec": args.slots as f64 / seq_s,
        },
        "parallel": runs,
        "best_speedup": best_speedup,
        "soft_speedup_floor": SOFT_SPEEDUP_FLOOR,
    });
    history.push(record);
    let doc = history_doc(history);
    let pretty = serde_json::to_string_pretty(&doc).expect("record serializes");
    if let Err(e) = std::fs::write(&args.json, pretty + "\n") {
        eprintln!("write {}: {e}", args.json.display());
        std::process::exit(1);
    }
    println!(
        "baseline appended to {} ({} run(s) on record)",
        args.json.display(),
        doc["runs"].as_array().map_or(0, Vec::len)
    );

    if args.gate {
        match baseline {
            // Only a genuinely empty comparable history skips: a first
            // run has nothing to regress against. One or two runs still
            // gate — the available median stands in for the full
            // GATE_WINDOW (pinned by `short_histories_still_gate`).
            None => println!(
                "gate: skipped — no comparable history for {} devices / {} slots \
                 (the gate binds from the next run)",
                args.devices, args.slots
            ),
            Some((revs, median)) => {
                let window = revs.split(',').count();
                let floor = median * (1.0 - GATE_REGRESSION_PCT / 100.0);
                if current_best < floor {
                    eprintln!(
                        "gate: FAIL — best {current_best:.1} slots/s is more than \
                         {GATE_REGRESSION_PCT}% below the rolling median {median:.1} \
                         of the last {window} of {} comparable run(s) (git {revs}); \
                         the run is archived in {} for triage",
                        perf::GATE_WINDOW,
                        args.json.display()
                    );
                    std::process::exit(1);
                }
                println!(
                    "gate: ok — best {current_best:.1} slots/s vs rolling median \
                     {median:.1} over {window} run(s) (git {revs}, floor {floor:.1})"
                );
            }
        }
    }
}
