//! Fig. 9 / Test Case 3 — system stability under dynamic task arrival
//! rates: windowed average TCT over time for LEIME and the three
//! benchmarks, on a Raspberry Pi (upper) and a Jetson Nano (lower), while
//! the arrival rate steps between low and high phases.
//!
//! Paper-reported: LEIME shows the smallest average TCT and best
//! stability on both devices; DDNN explodes on the Pi; Neurosurgeon
//! fluctuates the most.

use leime::{systems, ModelKind, WorkloadKind};
use leime_bench::{fmt_time, render_table, single_device, sparkline};
use leime_simnet::{SimTime, TimeTrace};
use leime_telemetry::Registry;

const SLOTS: usize = 400;
const WINDOW_S: f64 = 50.0;
const SEED: u64 = 9;

fn run_device(nano: bool, registry: &Registry) {
    // Both devices share one registry, so metric names carry a device tag
    // (`pi.leime.tct_s` vs `nano.leime.tct_s`).
    let (device, tag) = if nano {
        ("Jetson Nano", "nano")
    } else {
        ("Raspberry Pi", "pi")
    };
    println!("== Fig. 9: TCT over time under dynamic arrival rates ({device}) ==\n");

    // Arrival rate steps 2 -> 10 -> 2 -> 10 ... every 50 slots.
    let trace = TimeTrace::square_wave(
        2.0,
        10.0,
        SimTime::from_secs(50.0),
        SimTime::from_secs(SLOTS as f64),
    );

    let specs = systems::all();
    let mut columns: Vec<Vec<(f64, f64)>> = Vec::new();
    let mut means = Vec::new();
    let mut stds = Vec::new();
    for spec in &specs {
        let mut base = single_device(ModelKind::InceptionV3, nano, 2.0);
        base.workload = WorkloadKind::RateTrace {
            trace: trace.clone(),
            max: 1000,
        };
        base.controller = spec.controller;
        let deployment = base.deploy(spec.strategy).unwrap();
        let prefix = format!("{tag}.{}", spec.name.to_lowercase());
        let r = base
            .run_slotted_with_registry(&deployment, SLOTS, SEED, registry, &prefix)
            .unwrap();
        let windows = r
            .series()
            .windowed_mean(SimTime::from_secs(WINDOW_S))
            .into_iter()
            .map(|(t, v)| (t.as_secs(), v))
            .collect::<Vec<_>>();
        // Stability metric: std-dev across windows.
        let mean = windows.iter().map(|w| w.1).sum::<f64>() / windows.len().max(1) as f64;
        let var =
            windows.iter().map(|w| (w.1 - mean).powi(2)).sum::<f64>() / windows.len().max(1) as f64;
        means.push(mean);
        stds.push(var.sqrt());
        columns.push(windows);
    }

    let mut h = vec!["t_end".to_string()];
    h.extend(specs.iter().map(|s| s.name.to_string()));
    let n_windows = columns.iter().map(Vec::len).min().unwrap_or(0);
    let mut rows = Vec::new();
    for w in 0..n_windows {
        let mut row = vec![format!("{:.0}s", columns[0][w].0)];
        for col in &columns {
            row.push(fmt_time(col[w].1));
        }
        rows.push(row);
    }
    println!("{}", render_table(&h, &rows));
    for (((spec, mean), std), col) in specs.iter().zip(&means).zip(&stds).zip(&columns) {
        let series: Vec<f64> = col.iter().map(|w| w.1).collect();
        println!(
            "{:>14}: overall mean {} | window std {} | {}",
            spec.name,
            fmt_time(*mean),
            fmt_time(*std),
            sparkline(&series)
        );
    }
    println!();
}

fn main() {
    let json_path = leime_bench::json_out_path();
    let registry = Registry::new();
    run_device(false, &registry);
    run_device(true, &registry);
    println!(
        "Paper reference: LEIME has the smallest mean TCT and best stability \
         on both devices; the benchmarks degrade or fluctuate when the rate \
         steps up."
    );
    if let Some(path) = json_path {
        leime_bench::write_telemetry(&registry, &path);
    }
}
