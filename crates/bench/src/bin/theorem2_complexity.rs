//! Theorem 2 — empirical validation of the exit-setting search's
//! `O(m ln m)` average complexity: counts cost evaluations on synthetic
//! chains of growing length and compares against `m·ln(m)` and `m²`
//! reference curves.

use leime_bench::{header, render_table};
use leime_dnn::{DnnChain, ExitRates, ExitSpec, Layer, LayerKind, ModelProfile};
use leime_exitcfg::{branch_and_bound, CostModel, EnvParams};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Random chain with log-uniform layer costs and shrinking activations.
fn random_profile(m: usize, rng: &mut StdRng) -> ModelProfile {
    let layers: Vec<Layer> = (0..m)
        .map(|i| Layer {
            name: format!("l{i}"),
            kind: LayerKind::Conv,
            flops: 10f64.powf(rng.gen_range(7.0..9.5)),
            out_channels: rng.gen_range(16..512),
            out_h: (64 >> (i * 6 / m)).max(1),
            out_w: (64 >> (i * 6 / m)).max(1),
        })
        .collect();
    let chain = DnnChain::new("synthetic", 3, 64, 64, 10, layers).unwrap();
    ModelProfile::from_chain(&chain, ExitSpec::default()).unwrap()
}

fn random_rates(m: usize, rng: &mut StdRng) -> ExitRates {
    let mut v: Vec<f64> = (0..m).map(|_| rng.gen_range(0.0..1.0)).collect();
    v.sort_by(|a, b| a.partial_cmp(b).unwrap());
    v[m - 1] = 1.0;
    ExitRates::new(v).unwrap()
}

fn main() {
    println!("== Theorem 2: average search cost vs chain length ==\n");
    let mut rng = StdRng::seed_from_u64(2);
    let trials = 50;
    let mut rows = Vec::new();
    for m in [8usize, 16, 32, 64, 128, 256, 512] {
        let mut total = 0u64;
        for _ in 0..trials {
            let profile = random_profile(m, &mut rng);
            let rates = random_rates(m, &mut rng);
            let env = EnvParams::raspberry_pi()
                .with_edge_link(10f64.powf(rng.gen_range(6.0..8.0)), rng.gen_range(0.0..0.2));
            let cost = CostModel::new(&profile, &rates, env).unwrap();
            let (_, _, stats) = branch_and_bound(&cost).unwrap();
            total += stats.total_evals();
        }
        let avg = total as f64 / trials as f64;
        let mlnm = m as f64 * (m as f64).ln();
        let m2 = (m * m) as f64 / 2.0;
        rows.push(vec![
            m.to_string(),
            format!("{avg:.1}"),
            format!("{mlnm:.1}"),
            format!("{m2:.0}"),
            format!("{:.3}", avg / mlnm),
            format!("{:.4}", avg / m2),
        ]);
    }
    println!(
        "{}",
        render_table(
            &header(&[
                "m",
                "avg_evals",
                "m*ln(m)",
                "m^2/2",
                "evals/mlnm",
                "evals/m2"
            ]),
            &rows
        )
    );
    println!(
        "\nIf Theorem 2 holds, `evals/mlnm` stays roughly constant while \
         `evals/m2` shrinks toward 0 as m grows."
    );
}
