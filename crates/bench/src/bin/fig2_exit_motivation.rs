//! Fig. 2 — the effect of system computing capability and DNN type on the
//! optimal exit settings (§II-B1 motivation).
//!
//! (a) normalized latency vs First-exit position on Raspberry Pi vs Jetson
//!     Nano (ME-Inception v3),
//! (b) normalized latency vs Second-exit position under light vs heavy
//!     edge load,
//! (c)(d) optimal First/Second exits per DNN type.
//!
//! Uses the paper-faithful cost model (Eq. 1–4, first block on device) —
//! these are pre-LEIME motivation measurements without offloading.

use leime::ModelKind;
use leime_bench::{fmt_time, header, render_table};
use leime_dnn::{ExitCombo, ExitSpec, ModelProfile};
use leime_exitcfg::{branch_and_bound, CostModel, EnvParams};
use leime_workload::ExitRateModel;

fn main() {
    let chain = ModelKind::InceptionV3.build(10);
    let rates = ExitRateModel::cifar_like().rates_for_chain(&chain);
    let profile = ModelProfile::from_chain(&chain, ExitSpec::default()).unwrap();
    let m = profile.num_layers();

    // ---- (a) First-exit sweep on Pi vs Nano (Second-exit fixed optimal).
    println!("== Fig. 2(a): normalized latency vs First-exit (ME-Inception v3) ==\n");
    let mut rows = Vec::new();
    let envs = [
        ("raspberry_pi", EnvParams::raspberry_pi()),
        ("jetson_nano", EnvParams::jetson_nano()),
    ];
    let mut optima = Vec::new();
    for (name, env) in envs {
        let cost = CostModel::new(&profile, &rates, env).unwrap();
        // For each candidate First-exit, use the best Second-exit.
        let latency_for_first = |first: usize| -> f64 {
            (first + 1..m - 1)
                .map(|second| {
                    cost.total(ExitCombo::new(first, second, m - 1, m).unwrap())
                        .unwrap()
                })
                .fold(f64::INFINITY, f64::min)
        };
        let lats: Vec<f64> = (0..m - 2).map(latency_for_first).collect();
        let best = lats.iter().copied().fold(f64::INFINITY, f64::min);
        let argbest = lats
            .iter()
            .position(|&l| l == best)
            .expect("non-empty sweep");
        optima.push((name, argbest + 1));
        for (i, &l) in lats.iter().enumerate() {
            if rows.len() <= i {
                rows.push(vec![format!("exit-{}", i + 1)]);
            }
            rows[i].push(format!("{:.3}", l / best));
        }
    }
    println!(
        "{}",
        render_table(&header(&["first_exit", "pi_norm", "nano_norm"]), &rows)
    );
    for (name, exit) in &optima {
        println!("optimal First-exit on {name}: exit-{exit}");
    }

    // ---- (b) Second-exit sweep under light vs heavy edge load.
    println!("\n== Fig. 2(b): normalized latency vs Second-exit (edge load) ==\n");
    let mut rows = Vec::new();
    let mut optima = Vec::new();
    for (name, scale) in [("light_edge", 20.0f64), ("heavy_edge", 0.05)] {
        let env = EnvParams::raspberry_pi().with_edge_scale(scale);
        let cost = CostModel::new(&profile, &rates, env).unwrap();
        let latency_for_second = |second: usize| -> f64 {
            (0..second)
                .map(|first| {
                    cost.total(ExitCombo::new(first, second, m - 1, m).unwrap())
                        .unwrap()
                })
                .fold(f64::INFINITY, f64::min)
        };
        let lats: Vec<f64> = (1..m - 1).map(latency_for_second).collect();
        let best = lats.iter().copied().fold(f64::INFINITY, f64::min);
        let argbest = lats.iter().position(|&l| l == best).unwrap();
        optima.push((name, argbest + 2));
        for (i, &l) in lats.iter().enumerate() {
            if rows.len() <= i {
                rows.push(vec![format!("exit-{}", i + 2)]);
            }
            rows[i].push(format!("{:.3}", l / best));
        }
    }
    println!(
        "{}",
        render_table(&header(&["second_exit", "light_norm", "heavy_norm"]), &rows)
    );
    for (name, exit) in &optima {
        println!("optimal Second-exit with {name}: exit-{exit}");
    }

    // ---- (c)(d) Optimal exits per DNN type.
    println!("\n== Fig. 2(c)(d): optimal exits per DNN type (Raspberry Pi env) ==\n");
    let mut rows = Vec::new();
    for model in ModelKind::ALL {
        let chain = model.build(10);
        let rates = ExitRateModel::cifar_like().rates_for_chain(&chain);
        let profile = ModelProfile::from_chain(&chain, ExitSpec::default()).unwrap();
        let cost = CostModel::new(&profile, &rates, EnvParams::raspberry_pi()).unwrap();
        let (combo, t, _) = branch_and_bound(&cost).unwrap();
        let (f, s, th) = combo.to_one_based();
        rows.push(vec![
            model.name().to_string(),
            chain.num_layers().to_string(),
            format!("exit-{f}"),
            format!("exit-{s}"),
            format!("exit-{th}"),
            fmt_time(t),
        ]);
    }
    println!(
        "{}",
        render_table(
            &header(&["model", "m", "first", "second", "third", "T(E)"]),
            &rows
        )
    );
}
