//! Extension experiment — the accuracy/latency Pareto front: for each
//! model, calibrate real exit classifiers, then print the menu of
//! non-dominated exit combinations (no other combo is both faster and at
//! least as accurate). The paper fixes the accuracy guarantee via
//! thresholds and optimises latency; this shows the whole trade-off
//! surface those thresholds sit on.

use leime::{Deployment, ModelKind};
use leime_bench::{fmt_time, header, render_table};
use leime_dnn::ExitSpec;
use leime_exitcfg::EnvParams;
use leime_inference::{calibrate, CalibrationConfig, TrainConfig};
use leime_workload::{CascadeParams, FeatureCascade, SyntheticDataset};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    println!("== Extension: accuracy/latency Pareto fronts (Raspberry Pi env) ==\n");
    let config = CalibrationConfig {
        train_samples: 384,
        val_samples: 512,
        train: TrainConfig {
            epochs: 8,
            ..TrainConfig::default()
        },
        accuracy_target_ratio: 0.99,
    };
    for model in ModelKind::ALL {
        let chain = model.build(10);
        let cascade = FeatureCascade::new(10, CascadeParams::for_architecture(model.name()), 91);
        let dataset = SyntheticDataset::cifar_like();
        let mut rng = StdRng::seed_from_u64(91);
        let cal = calibrate(&chain, &cascade, &dataset, config, &mut rng);
        let front =
            Deployment::pareto_front(&chain, ExitSpec::default(), &cal, EnvParams::raspberry_pi())
                .unwrap();

        println!(
            "-- {} ({} non-dominated of {} combos) --",
            model.name(),
            front.len(),
            {
                let m = chain.num_layers();
                (m - 1) * (m - 2) / 2
            }
        );
        let rows: Vec<Vec<String>> = front
            .iter()
            .map(|&(combo, tct, loss)| {
                let (f, s, t) = combo.to_one_based();
                vec![
                    format!("{f},{s},{t}"),
                    fmt_time(tct),
                    format!("{:+.2}%", loss * 100.0),
                ]
            })
            .collect();
        println!(
            "{}",
            render_table(&header(&["exits", "expected_TCT", "accuracy_loss"]), &rows)
        );
        println!();
    }
    println!(
        "Reading: negative accuracy losses (gains) appear on the fronts of \
         overthinking-prone models; the operator slides along the front \
         instead of accepting a single fixed guarantee."
    );
}
