//! Extension experiment — online serving with SLA classes and admission
//! control: sweeps offered load (as a multiple of the serving testbed's
//! nominal rate) with the `leime-serving` admission controller enabled
//! and disabled, and reports the per-class deadline-hit-rate and
//! completion-time quantiles (p50/p99/p999). A flash-crowd-over-brownout
//! composition arm exercises the same stack under `leime-chaos` faults.
//!
//! Writes `BENCH_serving.json` (schema `leime-bench/1`) and hard-fails
//! if admission control does not beat the no-admission baseline on
//! latency-critical hit-rate under overload (the PR's acceptance bar).

use leime::{invariant, ModelKind};
use leime_bench::{fmt_time, render_table};
use leime_serving::{
    flash_brownout_testbed, serving_testbed, ServingReport, ServingSystem, SlaClass,
};
use leime_telemetry::Registry;

const SLOTS: usize = 120;
const SEED: u64 = 3;
const CHAOS_SEED: u64 = 42;
const DEVICES: usize = 4;
/// Load multipliers: 0.6 underload, 1.0 nominal (~75% of fleet
/// capacity), 2.0 and 3.0 true overload where admission must shed.
const LOADS: [f64; 4] = [0.6, 1.0, 2.0, 3.0];
/// Loads at or above this are the overload regime the acceptance check
/// (admission beats no-admission on latency-critical hit-rate) runs on.
const OVERLOAD: f64 = 2.0;
const OUT_PATH: &str = "BENCH_serving.json";

struct Arm {
    load: f64,
    admission: bool,
    report: ServingReport,
}

fn run_arm(load: f64, admission: bool, registry: Option<(&Registry, &str)>) -> Arm {
    let (scenario, mut config) = serving_testbed(ModelKind::SqueezeNet, DEVICES, load);
    config.admission.enabled = admission;
    let mut sys = ServingSystem::new(scenario, config).unwrap();
    if let Some((reg, prefix)) = registry {
        sys.attach_registry(reg, prefix);
    }
    let report = sys.run(SLOTS, SEED).unwrap();
    Arm {
        load,
        admission,
        report,
    }
}

fn table_row(name: &str, arm: &Arm) -> Vec<String> {
    let r = &arm.report;
    let lc = r.class(SlaClass::LatencyCritical);
    let hit = |c: SlaClass| {
        format!(
            "{:.3}",
            invariant::check_unit_interval("ext_serving.hit_rate", r.class(c).hit_rate())
        )
    };
    let q = |v: Option<f64>| v.map_or("-".to_string(), fmt_time);
    vec![
        name.to_string(),
        format!("{:.1}", arm.load),
        if arm.admission { "on" } else { "off" }.to_string(),
        format!("{}", r.offered_total()),
        format!(
            "{:.1}%",
            100.0 * r.shed_total() as f64 / r.offered_total().max(1) as f64
        ),
        hit(SlaClass::LatencyCritical),
        hit(SlaClass::Standard),
        hit(SlaClass::BestEffort),
        q(lc.p50()),
        q(lc.p99()),
        q(lc.p999()),
        format!(
            "{:.0}",
            invariant::check_nonneg("ext_serving.backlog", r.final_backlog)
        ),
    ]
}

fn class_json(r: &ServingReport) -> serde_json::Value {
    let per = |c: SlaClass| {
        let s = r.class(c);
        serde_json::json!({
            "deadline_s": s.deadline_s,
            "offered": s.offered,
            "admitted": s.admitted,
            "shed": s.shed,
            "hit_rate": s.hit_rate(),
            "admitted_hit_rate": s.admitted_hit_rate(),
            "p50_s": s.p50(),
            "p99_s": s.p99(),
            "p999_s": s.p999(),
        })
    };
    let mut classes = serde_json::Map::new();
    for c in SlaClass::ALL {
        classes.insert(c.name().to_string(), per(c));
    }
    serde_json::Value::Object(classes)
}

fn arm_json(arm: &Arm) -> serde_json::Value {
    let r = &arm.report;
    serde_json::json!({
        "load": arm.load,
        "admission": arm.admission,
        "offered": r.offered_total(),
        "admitted": r.admitted_total(),
        "shed": r.shed_total(),
        "hard_requests": r.hard_requests,
        "fault_slots": r.fault_slots,
        "mean_offload_x": r.mean_offload_ratio(),
        "final_backlog": r.final_backlog,
        "classes": class_json(r),
    })
}

fn main() {
    println!("== Extension: online serving — load vs deadline-hit-rate ==");
    println!(
        "({DEVICES} Pi-class devices on a scarce 2.5 GFLOPS edge, \
         {SLOTS} slots, seed {SEED}; hit-rate counts shed requests as \
         misses; latency-critical / standard / best-effort deadlines \
         are the serving defaults)\n"
    );

    let json_path = leime_bench::json_out_path();
    let registry = Registry::new();

    let mut arms = Vec::new();
    for &load in &LOADS {
        for admission in [true, false] {
            // Telemetry follows the headline overload arm.
            let tap = (load == OVERLOAD && admission).then_some((&registry, "serving.load2x"));
            arms.push(run_arm(load, admission, tap));
        }
    }

    let rows: Vec<Vec<String>> = arms.iter().map(|a| table_row("sweep", a)).collect();
    let h: Vec<String> = [
        "arm", "load", "adm", "offered", "shed", "lc_hit", "std_hit", "be_hit", "lc_p50", "lc_p99",
        "lc_p999", "backlog",
    ]
    .iter()
    .map(|s| s.to_string())
    .collect();
    println!("{}", render_table(&h, &rows));

    // The golden composition: a 3x flash crowd breaking over an edge
    // brownout, admission on — the stack's worst plausible hour.
    let (scenario, config) =
        flash_brownout_testbed(ModelKind::SqueezeNet, DEVICES, CHAOS_SEED, 1.0);
    let mut sys = ServingSystem::new(scenario, config).unwrap();
    let flash_report = sys.run(SLOTS, SEED).unwrap();
    let flash = Arm {
        load: 1.0,
        admission: true,
        report: flash_report,
    };
    println!(
        "{}",
        render_table(&h, &[table_row("flash+brownout", &flash)])
    );

    // Acceptance: under overload, shedding must buy latency-critical
    // hit-rate relative to admitting everything.
    let lc_hit = |load: f64, admission: bool| {
        arms.iter()
            .find(|a| a.load == load && a.admission == admission)
            .map(|a| a.report.class(SlaClass::LatencyCritical).hit_rate())
            .unwrap_or(0.0)
    };
    for &load in LOADS.iter().filter(|&&l| l >= OVERLOAD) {
        let (on, off) = (lc_hit(load, true), lc_hit(load, false));
        if on <= off {
            eprintln!(
                "FATAL: at {load}x load, admission control's latency-critical \
                 hit-rate {on:.3} does not beat the no-admission baseline {off:.3}"
            );
            std::process::exit(1);
        }
    }

    let (on2, off2) = (lc_hit(OVERLOAD, true), lc_hit(OVERLOAD, false));
    println!(
        "Reading: at {OVERLOAD}x overload the admission controller sheds \
         best-effort traffic to keep latency-critical deadline-hit-rate at \
         {:.1}% (vs {:.1}% with admission off, where backlog growth drags \
         every class past its deadline); under the flash-crowd-over-brownout \
         composition it still holds {:.1}% on latency-critical with \
         {} fault device-slots.",
        on2 * 100.0,
        off2 * 100.0,
        flash.report.class(SlaClass::LatencyCritical).hit_rate() * 100.0,
        flash.report.fault_slots,
    );

    let record = serde_json::json!({
        "schema": "leime-bench/1",
        "bench": "ext_serving",
        "devices": DEVICES,
        "slots": SLOTS,
        "seed": SEED,
        "chaos_seed": CHAOS_SEED,
        "sweep": arms.iter().map(arm_json).collect::<Vec<_>>(),
        "flash_brownout": arm_json(&flash),
        "headline": {
            "overload": OVERLOAD,
            "lc_hit_with_admission": on2,
            "lc_hit_without_admission": off2,
        },
    });
    let text = match serde_json::to_string_pretty(&record) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("BENCH_serving record failed to serialise: {e}");
            std::process::exit(1);
        }
    };
    if let Err(e) = std::fs::write(OUT_PATH, text + "\n") {
        eprintln!("write {OUT_PATH}: {e}");
        std::process::exit(1);
    }
    eprintln!("bench record written to {OUT_PATH}");

    if let Some(path) = json_path {
        leime_bench::write_telemetry(&registry, &path);
    }
}
