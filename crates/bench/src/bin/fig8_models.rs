//! Fig. 8 / Test Case 2 — performance under different DNN models
//! (SqueezeNet-1.0, VGG-16, Inception v3, ResNet-34) on a Raspberry Pi
//! and a Jetson Nano.
//!
//! Paper-reported: LEIME achieves 1.6×–13.2× speedup on the Pi and
//! 1.1×–10.3× on the Nano; Neurosurgeon tracks LEIME's shape (same
//! partition, no early exit); Edgent and DDNN fluctuate across models.

use leime::{systems, ModelKind};
use leime_bench::{fmt_speedup, fmt_time, header, render_table, single_device};

const SLOTS: usize = 150;
const SEED: u64 = 8;

fn run_device(nano: bool) {
    let device = if nano { "Jetson Nano" } else { "Raspberry Pi" };
    println!("== Fig. 8: average TCT per model on {device} ==\n");
    let specs = systems::all();
    let mut rows = Vec::new();
    let mut speedups: Vec<f64> = Vec::new();
    // Load scaled to device capability (the paper drives both devices at
    // rates each can sustain; a Pi at the Nano's rate only measures queue
    // explosion for the no-offload baselines).
    let arrival = if nano { 4.0 } else { 1.0 };
    for model in ModelKind::ALL {
        let base = single_device(model, nano, arrival);
        let mut row = vec![model.name().to_string()];
        let mut leime_tct = 0.0;
        for (i, spec) in specs.iter().enumerate() {
            let (_, r) = spec.run_slotted(&base, SLOTS, SEED).unwrap();
            if i == 0 {
                leime_tct = r.mean_tct_s();
            } else {
                speedups.push(r.mean_tct_s() / leime_tct);
            }
            row.push(fmt_time(r.mean_tct_s()));
        }
        rows.push(row);
    }
    let mut h = header(&["model"]);
    h.extend(specs.iter().map(|s| s.name.to_string()));
    println!("{}", render_table(&h, &rows));
    let min = speedups.iter().copied().fold(f64::INFINITY, f64::min);
    let max = speedups.iter().copied().fold(f64::NEG_INFINITY, f64::max);
    println!(
        "LEIME speedup range on {device}: {} – {}\n",
        fmt_speedup(min),
        fmt_speedup(max)
    );
}

fn main() {
    run_device(false);
    run_device(true);
    println!(
        "Paper reference: 1.6x–13.2x on the Raspberry Pi, 1.1x–10.3x on the \
         Jetson Nano."
    );
}
