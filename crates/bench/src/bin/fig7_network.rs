//! Fig. 7 / Test Case 2 — overall system performance under varying
//! networks: average TCT of LEIME vs Neurosurgeon, Edgent and DDNN on a
//! Raspberry Pi running ME-Inception v3, sweeping (left) bandwidth and
//! (right) propagation delay.
//!
//! Paper-reported average speedups: 4.4× / 6.5× / 18.7× over
//! Neurosurgeon / Edgent / DDNN across bandwidths, and 4.2× / 5.7× /
//! 14.5× across propagation delays; LEIME's edge grows as the network
//! degrades.

use leime::{systems, ModelKind};
use leime_bench::{fmt_speedup, fmt_time, render_table, single_device};

const SLOTS: usize = 150;
const SEED: u64 = 7;

fn main() {
    let specs = systems::all();

    // ---- Left: bandwidth sweep.
    println!("== Fig. 7 (left): average TCT vs bandwidth (ME-Inception v3, Pi) ==\n");
    let mut rows = Vec::new();
    let mut sums = [0.0f64; 3];
    let bws = [1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0, 128.0];
    for &bw in &bws {
        let mut base = single_device(ModelKind::InceptionV3, false, 1.0);
        base.devices[0].bandwidth_bps = bw * 1e6;
        let mut row = vec![format!("{bw}Mbps")];
        let mut leime_tct = 0.0;
        for (i, spec) in specs.iter().enumerate() {
            let (_, r) = spec.run_slotted(&base, SLOTS, SEED).unwrap();
            if i == 0 {
                leime_tct = r.mean_tct_s();
            } else {
                sums[i - 1] += r.mean_tct_s() / leime_tct;
            }
            row.push(fmt_time(r.mean_tct_s()));
        }
        rows.push(row);
    }
    let mut h = vec!["bandwidth".to_string()];
    h.extend(specs.iter().map(|s| s.name.to_string()));
    println!("{}", render_table(&h, &rows));
    for (i, spec) in specs.iter().skip(1).enumerate() {
        println!(
            "mean speedup of LEIME vs {}: {}",
            spec.name,
            fmt_speedup(sums[i] / bws.len() as f64)
        );
    }

    // ---- Right: propagation-delay sweep.
    println!("\n== Fig. 7 (right): average TCT vs propagation delay ==\n");
    let mut rows = Vec::new();
    let mut sums = [0.0f64; 3];
    let lats = [10.0, 25.0, 50.0, 100.0, 150.0, 200.0];
    for &lat in &lats {
        let mut base = single_device(ModelKind::InceptionV3, false, 1.0);
        base.devices[0].latency_s = lat / 1e3;
        let mut row = vec![format!("{lat}ms")];
        let mut leime_tct = 0.0;
        for (i, spec) in specs.iter().enumerate() {
            let (_, r) = spec.run_slotted(&base, SLOTS, SEED).unwrap();
            if i == 0 {
                leime_tct = r.mean_tct_s();
            } else {
                sums[i - 1] += r.mean_tct_s() / leime_tct;
            }
            row.push(fmt_time(r.mean_tct_s()));
        }
        rows.push(row);
    }
    let mut h = vec!["prop_delay".to_string()];
    h.extend(specs.iter().map(|s| s.name.to_string()));
    println!("{}", render_table(&h, &rows));
    for (i, spec) in specs.iter().skip(1).enumerate() {
        println!(
            "mean speedup of LEIME vs {}: {}",
            spec.name,
            fmt_speedup(sums[i] / lats.len() as f64)
        );
    }
    println!(
        "\nPaper reference: 4.4x/6.5x/18.7x (bandwidth sweep) and \
         4.2x/5.7x/14.5x (delay sweep) vs Neurosurgeon/Edgent/DDNN."
    );
}
