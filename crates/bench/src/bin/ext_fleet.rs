//! Fleet-scale throughput sweep: devices × edges up to a million-device
//! multi-edge run (ISSUE 10 / EXPERIMENTS.md `ext_fleet`).
//!
//! Each sweep cell builds a [`leime_fleet::FleetSystem`] over the
//! reference SqueezeNet/Raspberry-Pi scenario, runs a fixed slot horizon
//! under `leime-par` sharding and reports wall-clock, slots/s and
//! device-slots/s (the scale-comparable unit: one device advancing one
//! slot). The smallest cell is additionally run at one worker and must
//! be byte-identical to the sharded run — a perf number from a diverging
//! fleet would be meaningless (DESIGN.md §16).
//!
//! ```text
//! cargo run --release -p leime-bench --bin ext_fleet -- \
//!     --devices 10000,100000,1000000 --edges 1,4,16
//! ```
//!
//! Flags: `--devices <list>` (default `10000,100000,1000000`),
//! `--edges <list>` (default `1,4,16`), `--slots <n>` (default 10),
//! `--workers <n>` (default 4), `--rebalance <n>` (boundary cadence in
//! slots, default 5), `--json <path>` (default `BENCH_fleet.json`),
//! `--gate`.
//!
//! The artifact is a history (`{"runs": [...]}`, schema `leime-bench/1`)
//! keyed by git revision, like `BENCH_par.json`. `--gate` compares the
//! run's peak device-slots/s against the rolling median of the last
//! [`perf::GATE_WINDOW`] comparable records (same devices × edges ×
//! slots envelope) and fails on a drop of more than
//! [`GATE_REGRESSION_PCT`]% — after appending, so regressions are
//! archived either way. With no comparable history the gate skips with
//! a notice (fresh clones and sweep changes must not wedge CI).

use std::num::NonZeroUsize;
use std::path::PathBuf;

use leime::{ControllerKind, ExitStrategy, ModelKind, Scenario, DEFAULT_EPOCH_LEN};
use leime_bench::perf::{self, fleet_rolling_median_baseline, history_doc_for, load_history_for};
use leime_bench::{fmt_time, header, render_table};
use leime_fleet::{FleetConfig, FleetReport, FleetSystem};
use leime_telemetry::{Clock, WallClock};

const SEED: u64 = 13;
/// `--gate` tolerance: fail when peak device-slots/s drops more than
/// this far below the rolling-median baseline of the comparable history.
const GATE_REGRESSION_PCT: f64 = 10.0;

struct Args {
    devices: Vec<usize>,
    edges: Vec<usize>,
    slots: usize,
    workers: usize,
    rebalance: usize,
    json: PathBuf,
    gate: bool,
}

fn parse_args() -> Args {
    let mut args = Args {
        devices: vec![10_000, 100_000, 1_000_000],
        edges: vec![1, 4, 16],
        slots: 10,
        workers: 4,
        rebalance: 5,
        json: PathBuf::from("BENCH_fleet.json"),
        gate: false,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |what: &str| -> String {
            it.next().unwrap_or_else(|| {
                eprintln!("{flag} requires a {what} argument");
                std::process::exit(2);
            })
        };
        match flag.as_str() {
            "--devices" => args.devices = parse_list_or_die(&value("comma-separated list")),
            "--edges" => args.edges = parse_list_or_die(&value("comma-separated list")),
            "--slots" => args.slots = parse_or_die(&value("number")),
            "--workers" => args.workers = parse_or_die(&value("number")),
            "--rebalance" => args.rebalance = parse_or_die(&value("number")),
            "--json" => args.json = PathBuf::from(value("path")),
            "--gate" => args.gate = true,
            other => {
                eprintln!("unknown flag {other}");
                std::process::exit(2);
            }
        }
    }
    if args.devices.is_empty() || args.edges.is_empty() || args.edges.contains(&0) {
        eprintln!("--devices and --edges need at least one non-zero entry");
        std::process::exit(2);
    }
    if args.workers == 0 || args.slots == 0 {
        eprintln!("--workers and --slots must be non-zero");
        std::process::exit(2);
    }
    args
}

fn parse_or_die(s: &str) -> usize {
    s.parse().unwrap_or_else(|_| {
        eprintln!("bad numeric argument {s:?}");
        std::process::exit(2);
    })
}

fn parse_list_or_die(s: &str) -> Vec<usize> {
    s.split(',').map(|v| parse_or_die(v.trim())).collect()
}

/// Best-effort git revision for the archived record.
fn git_rev() -> String {
    std::process::Command::new("git")
        .args(["rev-parse", "--short", "HEAD"])
        .output()
        .ok()
        .filter(|o| o.status.success())
        .and_then(|o| String::from_utf8(o.stdout).ok())
        .map(|s| s.trim().to_string())
        .unwrap_or_else(|| "unknown".to_string())
}

fn build_fleet(devices: usize, edges: usize, rebalance: usize) -> FleetSystem {
    let mut scenario = Scenario::raspberry_pi_cluster(ModelKind::SqueezeNet, devices, 5.0);
    scenario.controller = ControllerKind::Lyapunov;
    let deployment = scenario
        .deploy(ExitStrategy::Leime)
        .expect("reference deployment");
    FleetSystem::new(
        scenario,
        deployment,
        FleetConfig::regional(edges, rebalance),
    )
    .expect("fleet builds")
}

/// One timed fleet run; the clock is the telemetry crate's [`WallClock`]
/// (the workspace's only sanctioned wall-time source, rule L3).
fn timed_run(
    devices: usize,
    edges: usize,
    rebalance: usize,
    slots: usize,
    workers: usize,
) -> (FleetReport, f64) {
    let mut fleet = build_fleet(devices, edges, rebalance);
    let clock = WallClock::new();
    let report = fleet
        .run_with_workers_epochs(
            slots,
            SEED,
            NonZeroUsize::new(workers).expect("validated non-zero"),
            DEFAULT_EPOCH_LEN,
        )
        .expect("fleet runs");
    (report, clock.now())
}

fn main() {
    let args = parse_args();
    println!(
        "== ext_fleet: devices {:?} × edges {:?}, {} slots, {} workers, seed {SEED} ==\n",
        args.devices, args.edges, args.slots, args.workers
    );

    // §16 sanity on the smallest cell: the sharded run must reproduce
    // the one-worker bytes before any timing is trusted.
    let (&min_devices, &min_edges) = (
        args.devices.iter().min().expect("non-empty"),
        args.edges.iter().min().expect("non-empty"),
    );
    let (seq_report, _) = timed_run(min_devices, min_edges, args.rebalance, args.slots, 1);
    let (par_report, _) = timed_run(
        min_devices,
        min_edges,
        args.rebalance,
        args.slots,
        args.workers,
    );
    let identical = serde_json::to_string(&seq_report).expect("report serializes")
        == serde_json::to_string(&par_report).expect("report serializes");
    if !identical {
        eprintln!(
            "FATAL: {min_devices}-device × {min_edges}-edge fleet diverged between 1 and {} \
             workers",
            args.workers
        );
        std::process::exit(1);
    }

    let mut rows = Vec::new();
    let mut sweep = Vec::new();
    let total_clock = WallClock::new();
    for &devices in &args.devices {
        for &edges in &args.edges {
            let (report, wall_s) =
                timed_run(devices, edges, args.rebalance, args.slots, args.workers);
            let slots_per_sec = args.slots as f64 / wall_s;
            let device_slots_per_sec = (devices * args.slots) as f64 / wall_s;
            rows.push(vec![
                devices.to_string(),
                edges.to_string(),
                fmt_time(wall_s),
                format!("{slots_per_sec:.1}"),
                format!("{device_slots_per_sec:.0}"),
                report.migrations.len().to_string(),
            ]);
            sweep.push(serde_json::json!({
                "devices": devices,
                "edges": edges,
                "slots": args.slots,
                "wall_ms": wall_s * 1e3,
                "slots_per_sec": slots_per_sec,
                "device_slots_per_sec": device_slots_per_sec,
                "migrations": report.migrations.len(),
                "tasks": report.tasks(),
            }));
        }
    }
    let total_s = total_clock.now();
    println!(
        "{}",
        render_table(
            &header(&[
                "devices",
                "edges",
                "wall",
                "slots/s",
                "device-slots/s",
                "migrations"
            ]),
            &rows
        )
    );
    println!("sweep total: {}\n", fmt_time(total_s));

    // The gate envelope is the sweep's largest cell — the scale point
    // the ISSUE pins ("a 1M-device run completing in minutes").
    let (&max_devices, &max_edges) = (
        args.devices.iter().max().expect("non-empty"),
        args.edges.iter().max().expect("non-empty"),
    );
    let mut history = load_history_for(&args.json, "sweep");
    // Snapshot the baseline before this run joins the history; the gate
    // verdict comes after the write so regressions are archived.
    let baseline = fleet_rolling_median_baseline(&history, max_devices, max_edges, args.slots);
    let current_peak = sweep
        .iter()
        .filter_map(|row| row["device_slots_per_sec"].as_f64())
        .fold(0.0, f64::max);
    let record = serde_json::json!({
        "run": history.len() + 1,
        "git_rev": git_rev(),
        "seed": SEED,
        "devices": max_devices,
        "edges": max_edges,
        "slots": args.slots,
        "workers": args.workers,
        "rebalance_interval": args.rebalance,
        "sweep_wall_ms": total_s * 1e3,
        "sweep": sweep,
    });
    history.push(record);
    let doc = history_doc_for("ext_fleet", history);
    let pretty = serde_json::to_string_pretty(&doc).expect("record serializes");
    if let Err(e) = std::fs::write(&args.json, pretty + "\n") {
        eprintln!("write {}: {e}", args.json.display());
        std::process::exit(1);
    }
    println!(
        "fleet history appended to {} ({} run(s) on record)",
        args.json.display(),
        doc["runs"].as_array().map_or(0, Vec::len)
    );

    if args.gate {
        match baseline {
            None => println!(
                "gate: skipped — no comparable history for {max_devices} devices × \
                 {max_edges} edges / {} slots (the gate binds from the next run)",
                args.slots
            ),
            Some((revs, median)) => {
                let window = revs.split(',').count();
                let floor = median * (1.0 - GATE_REGRESSION_PCT / 100.0);
                if current_peak < floor {
                    eprintln!(
                        "gate: FAIL — peak {current_peak:.0} device-slots/s is more than \
                         {GATE_REGRESSION_PCT}% below the rolling median {median:.0} \
                         of the last {window} of {} comparable run(s) (git {revs}); \
                         the run is archived in {} for triage",
                        perf::GATE_WINDOW,
                        args.json.display()
                    );
                    std::process::exit(1);
                }
                println!(
                    "gate: ok — peak {current_peak:.0} device-slots/s vs rolling median \
                     {median:.0} over {window} run(s) (git {revs}, floor {floor:.0})"
                );
            }
        }
    }
}
