//! Microbenchmarks for the slotted hot path's three inner kernels
//! (DESIGN.md §14): the Eq. 10–11 queue update, the per-device-slot
//! offloading decision (scalar and lane-batched solver), and the
//! batched telemetry flush. Reports ns/op and *appends* a git-keyed run
//! record to the `BENCH_kernels.json` history (schema `leime-bench/1`,
//! same envelope as `BENCH_par.json`) so kernel-level drift stays
//! visible between commits without running the full `perf_baseline`
//! scenario. A pre-history single-record file migrates in place on the
//! next write.
//!
//! ```text
//! cargo run --release -p leime-bench --bin hot_kernels
//! ```
//!
//! Flags: `--json <path>` (default `BENCH_kernels.json`).
//!
//! Each kernel runs long enough to dominate timer noise (tens of
//! milliseconds) and folds its outputs into a sink the optimiser cannot
//! remove. Numbers are single-core and machine-specific: compare runs
//! from the same box, not across boxes.

use std::hint::black_box;
use std::path::PathBuf;

use leime_bench::perf::{history_doc_for, load_history_for};
use leime_bench::{header, render_table};
use leime_offload::{
    ControllerTelemetry, DecisionBatch, DeviceParams, LyapunovController, OffloadController,
    QueuePair, SharedParams, SlotObservation,
};
use leime_telemetry::{Clock, Registry, VirtualClock, WallClock};

/// A fleet-sized batch: matches the reference scenario's device count so
/// the lane-batched decision kernel sees realistic occupancy.
const BATCH: usize = 64;

struct KernelResult {
    name: &'static str,
    ops: u64,
    ns_per_op: f64,
}

/// Times `op` over `ops` iterations (the closure must consume its index
/// and return a value folded into the sink).
fn time_kernel(name: &'static str, ops: u64, mut op: impl FnMut(u64) -> f64) -> KernelResult {
    // One untimed pass warms caches and the branch predictor.
    black_box(op(0));
    let clock = WallClock::new();
    let mut sink = 0.0;
    for i in 0..ops {
        sink += op(i);
    }
    let elapsed = clock.now();
    black_box(sink);
    KernelResult {
        name,
        ops,
        ns_per_op: elapsed * 1e9 / ops as f64,
    }
}

/// Reference-scenario-shaped parameters (an InceptionV3-like partition
/// on a Raspberry-Pi-class device; values only need to be plausible and
/// fixed, not calibrated — the benchmark tracks drift, not truth).
fn params() -> (SharedParams, DeviceParams) {
    let shared = SharedParams {
        slot_len_s: 1.0,
        v: 1.0e4,
        mu1: 8.0e8,
        mu2: 1.2e9,
        sigma1: 0.6,
        d0_bytes: 268_203.0,
        d1_bytes: 1.0e5,
        edge_flops: 1.0e11,
    };
    let dev = DeviceParams::raspberry_pi(5.0);
    shared.validate().expect("benchmark shared params");
    dev.validate().expect("benchmark device params");
    (shared, dev)
}

/// A deterministic spread of queue states (drained through loaded) so
/// the decision kernels cannot ride a single memoised solve.
fn obs_for(i: u64) -> SlotObservation {
    SlotObservation {
        q: (i % 17) as f64 * 0.7,
        h: (i % 11) as f64 * 0.4,
        p_share: 1.0 / BATCH as f64,
    }
}

fn git_rev() -> String {
    std::process::Command::new("git")
        .args(["rev-parse", "--short", "HEAD"])
        .output()
        .ok()
        .filter(|o| o.status.success())
        .and_then(|o| String::from_utf8(o.stdout).ok())
        .map(|s| s.trim().to_string())
        .unwrap_or_else(|| "unknown".to_string())
}

fn json_path() -> PathBuf {
    leime_bench::json_out_path().unwrap_or_else(|| PathBuf::from("BENCH_kernels.json"))
}

fn main() {
    let (shared, dev) = params();
    let ctrl = LyapunovController::new();
    let mut results = Vec::new();

    // Kernel 1: the Eq. 10–11 queue update (QueuePair::step).
    let mut queue = QueuePair::new();
    results.push(time_kernel("queue_update", 2_000_000, |i| {
        let a = (i % 7) as f64 * 0.5;
        queue.step(a, a * 0.3, 2.0, 1.5);
        queue.q() + queue.h()
    }));

    // Kernel 2: one scalar offloading decision (golden-section solve).
    results.push(time_kernel("decision_scalar", 20_000, |i| {
        ctrl.decide(shared, dev, obs_for(i))
    }));

    // Kernel 3: the lane-batched decision path (`decide_batch` over a
    // fleet-sized slice) — ns per *decision*, directly comparable to
    // `decision_scalar`.
    let shareds = vec![shared; BATCH];
    let devs = vec![dev; BATCH];
    let mut obs = vec![obs_for(0); BATCH];
    let mut xs = vec![0.0f64; BATCH];
    let batch_ops = 20_000u64;
    let mut batched = time_kernel("decision_batched", batch_ops / BATCH as u64, |r| {
        for (j, o) in obs.iter_mut().enumerate() {
            *o = obs_for(r * BATCH as u64 + j as u64);
        }
        ctrl.decide_batch(&shareds, &devs, &obs, &mut xs);
        xs.iter().sum()
    });
    batched.ns_per_op /= BATCH as f64;
    batched.ops *= BATCH as u64;
    results.push(batched);

    // Kernel 4: telemetry replay — buffer a fleet's decisions in a
    // `DecisionBatch` and flush once, as the slotted driver does per
    // slot; ns per recorded decision.
    let registry = Registry::new();
    let tel = ControllerTelemetry::attach(&registry, "bench", VirtualClock::new());
    let mut batch = DecisionBatch::new();
    let mut flush = time_kernel("telemetry_flush", 10_000, |r| {
        for j in 0..BATCH as u64 {
            let o = obs_for(r * BATCH as u64 + j);
            batch.record_decision(r as f64, &o, 0.5, 1.0);
        }
        tel.flush_batch(&mut batch);
        r as f64
    });
    flush.ns_per_op /= BATCH as f64;
    flush.ops *= BATCH as u64;
    results.push(flush);

    let rows: Vec<Vec<String>> = results
        .iter()
        .map(|r| {
            vec![
                r.name.to_string(),
                format!("{:.1}", r.ns_per_op),
                r.ops.to_string(),
            ]
        })
        .collect();
    println!("== hot_kernels: slotted inner-loop ns/op ==\n");
    println!(
        "{}",
        render_table(&header(&["kernel", "ns/op", "ops"]), &rows)
    );

    let path = json_path();
    let mut history = load_history_for(&path, "kernels");
    history.push(serde_json::json!({
        "run": history.len() + 1,
        "git_rev": git_rev(),
        "kernels": results.iter().map(|r| serde_json::json!({
            "name": r.name,
            "ns_per_op": r.ns_per_op,
            "ops": r.ops,
        })).collect::<Vec<_>>(),
    }));
    let doc = history_doc_for("hot_kernels", history);
    let pretty = serde_json::to_string_pretty(&doc).expect("results serialize");
    if let Err(e) = std::fs::write(&path, pretty + "\n") {
        eprintln!("write {}: {e}", path.display());
        std::process::exit(1);
    }
    println!("kernel timings written to {}", path.display());
}
