//! Fig. 3 — the TCT under different fixed task-offloading ratios as the
//! environment varies (§II-B2 motivation): the optimal ratio shifts with
//! (a) task arrival interval, (b) First-exit exit rate, (c) bandwidth and
//! (d) propagation delay.
//!
//! Uses the trained ME-Inception v3 with exits fixed at 1, 14 and 16, as
//! the paper does.

use leime::{ControllerKind, Deployment, ExitStrategy, ModelKind, Scenario};
use leime_bench::{fmt_time, render_table};
use leime_dnn::ExitCombo;

const SLOTS: usize = 150;
const SEED: u64 = 3;

/// Builds the paper's fixed ME-Inception v3 deployment (exits 1, 14, 16).
///
/// Granularity note: the paper's "exit-1" sits after Inception v3's first
/// logical stage; at our chain granularity (5 stem convolutions + 11
/// modules) that is the stem boundary, position 5 — a single stem
/// convolution would make the device block vanishingly small and pin the
/// optimal offloading ratio at 0, which contradicts the interior optima
/// the paper's Fig. 3 reports.
fn fixed_deployment(scenario: &Scenario) -> Deployment {
    let chain = scenario.chain();
    let m = chain.num_layers();
    let combo = ExitCombo::new(4, 13, m - 1, m).unwrap();
    let rates = scenario.candidate_rates();
    let me = leime_dnn::MultiExitDnn::new(chain, scenario.exit_spec);
    let partition = me.partition(combo).unwrap();
    Deployment {
        strategy: ExitStrategy::Mean, // placeholder label: fixed manual combo
        combo,
        mu: partition.block_flops(),
        d: partition.data_sizes(),
        sigma: me.combo_rates(combo, &rates).unwrap(),
        early_exit: true,
        search_stats: None,
    }
}

fn sweep(base: &Scenario, label: &str) -> (Vec<String>, f64) {
    let dep = fixed_deployment(base);
    let mut row = vec![label.to_string()];
    let mut best = (0.0, f64::INFINITY);
    for i in 0..=10 {
        let ratio = i as f64 / 10.0;
        let mut s = base.clone();
        s.controller = ControllerKind::Fixed(ratio);
        let r = s.run_slotted(&dep, SLOTS, SEED).unwrap();
        let t = r.mean_tct_s();
        if t < best.1 {
            best = (ratio, t);
        }
        row.push(fmt_time(t));
    }
    row.push(format!("{:.1}", best.0));
    (row, best.0)
}

fn ratio_header() -> Vec<String> {
    let mut h = vec!["setting".to_string()];
    for i in 0..=10 {
        h.push(format!("x={:.1}", i as f64 / 10.0));
    }
    h.push("best_x".to_string());
    h
}

fn main() {
    // ---- (a) Task arrival interval (inverse rate).
    println!("== Fig. 3(a): TCT vs offloading ratio under varying arrival rate ==\n");
    let mut rows = Vec::new();
    for arrival in [1.0, 2.0, 5.0, 10.0, 20.0] {
        let base = Scenario::raspberry_pi_cluster(ModelKind::InceptionV3, 1, arrival);
        rows.push(sweep(&base, &format!("{arrival}/slot")).0);
    }
    println!("{}", render_table(&ratio_header(), &rows));

    // ---- (b) First-exit exit rate (dataset complexity).
    println!("\n== Fig. 3(b): TCT vs offloading ratio under varying First-exit rate ==\n");
    let mut rows = Vec::new();
    for target in [0.1, 0.3, 0.5, 0.7, 0.9] {
        let mut base = Scenario::raspberry_pi_cluster(ModelKind::InceptionV3, 1, 5.0);
        // Fit the exit-rate curve so the First-exit (exit-1) hits `target`.
        let chain = base.chain();
        let depth1 = chain.flops_prefix()[1] / chain.total_flops();
        base.exit_rates = leime_workload::ExitRateModel::with_sigma_at(depth1, target, 0.18);
        rows.push(sweep(&base, &format!("sigma1={target}")).0);
    }
    println!("{}", render_table(&ratio_header(), &rows));

    // ---- (c) Bandwidth.
    println!("\n== Fig. 3(c): TCT vs offloading ratio under varying bandwidth ==\n");
    let mut rows = Vec::new();
    for bw_mbps in [2.0, 8.0, 32.0, 128.0] {
        let mut base = Scenario::raspberry_pi_cluster(ModelKind::InceptionV3, 1, 5.0);
        base.devices[0].bandwidth_bps = bw_mbps * 1e6;
        rows.push(sweep(&base, &format!("{bw_mbps}Mbps")).0);
    }
    println!("{}", render_table(&ratio_header(), &rows));

    // ---- (d) Propagation delay.
    println!("\n== Fig. 3(d): TCT vs offloading ratio under varying propagation delay ==\n");
    let mut rows = Vec::new();
    for lat_ms in [10.0, 50.0, 100.0, 200.0] {
        let mut base = Scenario::raspberry_pi_cluster(ModelKind::InceptionV3, 1, 5.0);
        base.devices[0].latency_s = lat_ms / 1e3;
        rows.push(sweep(&base, &format!("{lat_ms}ms")).0);
    }
    println!("{}", render_table(&ratio_header(), &rows));

    println!(
        "\nConclusion check (paper §II-B2): the optimal offloading ratio shifts \
         across every swept factor above."
    );
}
