//! Fig. 11 / Test Case 5 — the effect of the number of connected devices
//! on average TCT (simulation, Inception v3 and ResNet-34 parameters,
//! homogeneous devices, fixed edge capability).
//!
//! Paper-reported: LEIME's TCT grows almost linearly with the device
//! count; it achieves the lowest TCT and supports the most devices, since
//! its exit settings also relieve edge load as the fleet grows.

use leime::{systems, ModelKind, Scenario};
use leime_bench::{fmt_time, render_table};
use leime_telemetry::Registry;

const SLOTS: usize = 100;
const SEED: u64 = 11;

fn run_model(model: ModelKind, registry: &Registry) {
    println!(
        "== Fig. 11: average TCT vs number of devices ({}) ==\n",
        model.name()
    );
    let specs = systems::all();
    let mut rows = Vec::new();
    for n in [1usize, 2, 5, 10, 20, 35, 50] {
        let mut base = Scenario::raspberry_pi_cluster(model, n, 2.0);
        let mut row = vec![n.to_string()];
        for spec in &specs {
            // Every (model, fleet size, system) run gets its own metric
            // prefix, e.g. `inception_v3.n20.leime.tct_s`.
            base.controller = spec.controller;
            let deployment = base.deploy(spec.strategy).unwrap();
            let prefix = format!("{}.n{n}.{}", model.name(), spec.name.to_lowercase());
            let r = base
                .run_slotted_with_registry(&deployment, SLOTS, SEED, registry, &prefix)
                .unwrap();
            row.push(fmt_time(r.mean_tct_s()));
        }
        rows.push(row);
    }
    let mut h = vec!["devices".to_string()];
    h.extend(specs.iter().map(|s| s.name.to_string()));
    println!("{}", render_table(&h, &rows));
    println!();
}

fn main() {
    let json_path = leime_bench::json_out_path();
    let registry = Registry::new();
    run_model(ModelKind::InceptionV3, &registry);
    run_model(ModelKind::ResNet34, &registry);
    println!(
        "Paper reference: LEIME grows ~linearly with the fleet size and \
         stays lowest; benchmarks saturate or explode earlier."
    );
    if let Some(path) = json_path {
        leime_bench::write_telemetry(&registry, &path);
    }
}
