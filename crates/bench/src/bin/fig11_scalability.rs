//! Fig. 11 / Test Case 5 — the effect of the number of connected devices
//! on average TCT (simulation, Inception v3 and ResNet-34 parameters,
//! homogeneous devices, fixed edge capability).
//!
//! Paper-reported: LEIME's TCT grows almost linearly with the device
//! count; it achieves the lowest TCT and supports the most devices, since
//! its exit settings also relieve edge load as the fleet grows.
//!
//! Runs route through the `leime-fleet` front-end with a single edge —
//! the same code path the `ext_fleet` scale sweep uses — so the two
//! benches cannot drift apart. A 1-edge fleet is byte-identical to the
//! bare `SlottedSystem` run (`integration_fleet`'s equivalence anchor),
//! and the `--json` telemetry export gains the edge dimension: metrics
//! land under `{model}.n{n}.{system}.edge0.*`.

use std::num::NonZeroUsize;

use leime::{systems, ExitStrategy, ModelKind, Scenario, DEFAULT_EPOCH_LEN};
use leime_bench::{fmt_time, render_table};
use leime_fleet::{FleetConfig, FleetSystem};
use leime_telemetry::Registry;

const SLOTS: usize = 100;
const SEED: u64 = 11;

fn run_fleet_cell(
    base: &Scenario,
    strategy: ExitStrategy,
    registry: &Registry,
    prefix: &str,
) -> f64 {
    let deployment = base.deploy(strategy).unwrap();
    let mut fleet = FleetSystem::new(base.clone(), deployment, FleetConfig::single_edge()).unwrap();
    let report = fleet
        .run_with_registry(
            SLOTS,
            SEED,
            NonZeroUsize::MIN,
            DEFAULT_EPOCH_LEN,
            registry,
            prefix,
        )
        .unwrap();
    report.mean_tct_s()
}

fn run_model(model: ModelKind, registry: &Registry) {
    println!(
        "== Fig. 11: average TCT vs number of devices ({}) ==\n",
        model.name()
    );
    let specs = systems::all();
    let mut rows = Vec::new();
    for n in [1usize, 2, 5, 10, 20, 35, 50] {
        let mut base = Scenario::raspberry_pi_cluster(model, n, 2.0);
        let mut row = vec![n.to_string()];
        for spec in &specs {
            // Every (model, fleet size, system) run gets its own metric
            // prefix; the fleet front-end appends the edge dimension,
            // e.g. `inception_v3.n20.leime.edge0.tct_s`.
            base.controller = spec.controller;
            let prefix = format!("{}.n{n}.{}", model.name(), spec.name.to_lowercase());
            let mean_tct = run_fleet_cell(&base, spec.strategy, registry, &prefix);
            row.push(fmt_time(mean_tct));
        }
        rows.push(row);
    }
    let mut h = vec!["devices".to_string()];
    h.extend(specs.iter().map(|s| s.name.to_string()));
    println!("{}", render_table(&h, &rows));
    println!();
}

fn main() {
    let json_path = leime_bench::json_out_path();
    let registry = Registry::new();
    run_model(ModelKind::InceptionV3, &registry);
    run_model(ModelKind::ResNet34, &registry);
    println!(
        "Paper reference: LEIME grows ~linearly with the fleet size and \
         stays lowest; benchmarks saturate or explode earlier."
    );
    if let Some(path) = json_path {
        leime_bench::write_telemetry(&registry, &path);
    }
}
