//! Extension experiment — multi-tier hierarchies: how much does a deeper
//! compute hierarchy buy? Places k exits with the DP of
//! `leime_exitcfg::multi_tier` for 2/3/4/5-tier hierarchies that all share
//! the same endpoints (the Pi device and the V100 cloud), inserting
//! intermediate tiers between them.

use leime::ModelKind;
use leime_bench::{fmt_time, header, render_table};
use leime_dnn::{ExitSpec, ModelProfile};
use leime_exitcfg::{multi_tier_exits, tiers_from_env, EnvParams, TierEnv};
use leime_workload::ExitRateModel;

fn main() {
    println!("== Extension: exit placement over deeper hierarchies ==\n");
    let env = EnvParams::raspberry_pi();
    let base = tiers_from_env(env);
    let gateway = TierEnv {
        flops: 4e9,
        uplink_bandwidth_bps: 40e6,
        uplink_latency_s: 0.005,
    };
    let regional = TierEnv {
        flops: 400e9,
        uplink_bandwidth_bps: 1e9,
        uplink_latency_s: 0.02,
    };

    // A direct device->cloud deployment still crosses the WiFi hop: its
    // uplink is the WiFi bottleneck plus both hops' latency.
    let direct_cloud = TierEnv {
        flops: base[2].flops,
        uplink_bandwidth_bps: base[1]
            .uplink_bandwidth_bps
            .min(base[2].uplink_bandwidth_bps),
        uplink_latency_s: base[1].uplink_latency_s + base[2].uplink_latency_s,
    };
    let hierarchies: Vec<(&str, Vec<TierEnv>)> = vec![
        ("device+cloud", vec![base[0], direct_cloud]),
        ("device+edge+cloud (paper)", base.to_vec()),
        (
            "device+gw+edge+cloud",
            vec![base[0], gateway, base[1], base[2]],
        ),
        (
            "device+gw+edge+regional+cloud",
            vec![base[0], gateway, base[1], regional, base[2]],
        ),
    ];

    for model in ModelKind::ALL {
        println!("-- {} --", model.name());
        let chain = model.build(10);
        let profile = ModelProfile::from_chain(&chain, ExitSpec::default()).unwrap();
        let rates = ExitRateModel::cifar_like().rates_for_chain(&chain);
        let mut rows = Vec::new();
        for (name, tiers) in &hierarchies {
            let (exits, t) = multi_tier_exits(&profile, &rates, tiers).unwrap();
            let exits_1based: Vec<String> = exits.iter().map(|e| (e + 1).to_string()).collect();
            rows.push(vec![
                name.to_string(),
                tiers.len().to_string(),
                exits_1based.join(","),
                fmt_time(t),
            ]);
        }
        println!(
            "{}",
            render_table(
                &header(&["hierarchy", "tiers", "exits", "expected_TCT"]),
                &rows
            )
        );
        println!();
    }
    println!(
        "Reading: the paper's 3-tier setting is the special case k=3; extra \
         tiers trade more exit opportunities against more hops."
    );
}
