//! Fig. 10 / Test Case 4 — algorithm ablations.
//!
//! (a) Exit setting: LEIME's branch-and-bound vs min-computation,
//!     min-transmission and average-division placements, with LEIME's
//!     offloading algorithm fixed for all (paper: LEIME best overall, with
//!     larger gains on the large models).
//! (b) Offloading: LEIME's online algorithm vs device-only, edge-only and
//!     capability-based policies on a Jetson Nano (paper: 1.1×/1.2× at
//!     arrival rates 5/20, rising to 1.8× at rate 100).

use leime::{ControllerKind, ExitStrategy, ModelKind, Scenario};
use leime_bench::{fmt_speedup, fmt_time, header, render_table};

const SLOTS: usize = 150;
const SEED: u64 = 10;

fn main() {
    // ---- (a) Exit-setting ablation.
    println!("== Fig. 10(a): exit-setting ablation (LEIME offloading fixed) ==\n");
    let strategies = [
        ExitStrategy::Leime,
        ExitStrategy::MinComp,
        ExitStrategy::MinTran,
        ExitStrategy::Mean,
    ];
    let mut rows = Vec::new();
    for model in ModelKind::ALL {
        let base = Scenario::raspberry_pi_cluster(model, 4, 1.0);
        let mut row = vec![model.name().to_string()];
        let mut leime_tct = 0.0;
        for (i, strategy) in strategies.iter().enumerate() {
            let dep = base.deploy(*strategy).unwrap();
            let r = base.run_slotted(&dep, SLOTS, SEED).unwrap();
            if i == 0 {
                leime_tct = r.mean_tct_s();
            }
            row.push(fmt_time(r.mean_tct_s()));
            if i > 0 {
                row.push(fmt_speedup(r.mean_tct_s() / leime_tct));
            }
        }
        rows.push(row);
    }
    println!(
        "{}",
        render_table(
            &header(&[
                "model", "LEIME", "min_comp", "speedup", "min_tran", "speedup", "mean", "speedup",
            ]),
            &rows
        )
    );

    // ---- (b) Offloading ablation on a Jetson Nano.
    println!("\n== Fig. 10(b): offloading ablation (Jetson Nano, ME-Inception v3) ==\n");
    let controllers = [
        ("LEIME", ControllerKind::Lyapunov),
        ("D-only", ControllerKind::DeviceOnly),
        ("E-only", ControllerKind::EdgeOnly),
        ("cap_based", ControllerKind::CapabilityBased),
    ];
    let mut rows = Vec::new();
    for arrival in [5.0, 20.0, 100.0] {
        let mut row = vec![format!("rate {arrival}")];
        let mut leime_tct = 0.0;
        let mut baseline_sum = 0.0;
        for (i, (_, kind)) in controllers.iter().enumerate() {
            let mut base = Scenario::jetson_nano_cluster(ModelKind::InceptionV3, 1, arrival);
            // 80 Mbps WiFi: our d_0 is a raw f32 tensor (~67 KB at 75 px),
            // ~20x a compressed CIFAR image, so rate-100 offloading needs
            // headroom the paper's 3 KB JPEGs never did.
            base.devices[0].bandwidth_bps = 80e6;
            base.controller = *kind;
            let dep = base.deploy(ExitStrategy::Leime).unwrap();
            let r = base.run_slotted(&dep, SLOTS, SEED).unwrap();
            if i == 0 {
                leime_tct = r.mean_tct_s();
            } else {
                baseline_sum += r.mean_tct_s();
            }
            row.push(fmt_time(r.mean_tct_s()));
        }
        row.push(fmt_speedup(baseline_sum / 3.0 / leime_tct));
        rows.push(row);
    }
    println!(
        "{}",
        render_table(
            &header(&[
                "arrival",
                "LEIME",
                "D-only",
                "E-only",
                "cap_based",
                "mean_speedup",
            ]),
            &rows
        )
    );
    println!(
        "\nPaper reference: LEIME improves 1.1x/1.2x at rates 5/20 and 1.8x \
         at rate 100 over the baselines on average."
    );
}
