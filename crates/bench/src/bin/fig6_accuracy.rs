//! Fig. 6 / Test Case 1 — ME-DNN accuracy loss: for each of the four
//! models, train every candidate exit classifier (calibration pipeline),
//! then evaluate the accuracy loss of *every* (First, Second) exit
//! combination against the original single-exit network.
//!
//! Paper-reported average losses: ME-Inception v3 1.62 %, ME-ResNet-34
//! 0.55 %, ME-SqueezeNet-1.0 0.44 %, ME-VGG-16 1.14 %; some combinations
//! show *negative* loss (overthinking avoidance).

use leime::ModelKind;
use leime_bench::{header, render_table};
use leime_dnn::ExitCombo;
use leime_inference::{calibrate, CalibrationConfig, TrainConfig};
use leime_workload::{CascadeParams, FeatureCascade, SyntheticDataset};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let config = CalibrationConfig {
        train_samples: 512,
        val_samples: 768,
        train: TrainConfig {
            epochs: 10,
            ..TrainConfig::default()
        },
        accuracy_target_ratio: 0.995,
    };

    println!("== Fig. 6: ME-DNN accuracy loss over all exit combinations ==\n");
    let mut rows = Vec::new();
    for model in ModelKind::ALL {
        let chain = model.build(10);
        let cascade = FeatureCascade::new(10, CascadeParams::for_architecture(model.name()), 61);
        let dataset = SyntheticDataset::cifar_like();
        let mut rng = StdRng::seed_from_u64(61);
        let cal = calibrate(&chain, &cascade, &dataset, config, &mut rng);

        let m = chain.num_layers();
        let mut losses = Vec::new();
        for first in 0..m - 2 {
            for second in first + 1..m - 1 {
                let combo = ExitCombo::new(first, second, m - 1, m).unwrap();
                losses.push(cal.combo_accuracy_loss(combo));
            }
        }
        let mean = losses.iter().sum::<f64>() / losses.len() as f64;
        let min = losses.iter().copied().fold(f64::INFINITY, f64::min);
        let max = losses.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        let negative = losses.iter().filter(|&&l| l < 0.0).count();
        rows.push(vec![
            model.name().to_string(),
            format!("{:.1}%", cal.final_accuracy() * 100.0),
            format!("{:.2}%", mean * 100.0),
            format!("{:.2}%", min * 100.0),
            format!("{:.2}%", max * 100.0),
            format!(
                "{}/{} ({:.0}%)",
                negative,
                losses.len(),
                100.0 * negative as f64 / losses.len() as f64
            ),
        ]);
    }
    println!(
        "{}",
        render_table(
            &header(&[
                "model",
                "orig_acc",
                "mean_loss",
                "best(min)",
                "worst(max)",
                "combos_with_gain",
            ]),
            &rows
        )
    );
    println!(
        "\nPaper reference: mean losses 1.62% (inception), 0.55% (resnet34), \
         0.44% (squeezenet), 1.14% (vgg16); negative losses occur for \
         overthinking-prone architectures."
    );
}
