//! Extension experiment — the "wild" network: bandwidth collapses and
//! bursty arrivals at the same time (the §II-A environment the paper
//! motivates but only evaluates one factor at a time). LEIME's online
//! controller vs the static policies under compound dynamics.

use leime::{systems, ControllerKind, ExitStrategy, ModelKind, Scenario, WorkloadKind};
use leime_bench::{fmt_time, render_table};
use leime_simnet::{SimTime, TimeTrace};
use leime_telemetry::Registry;

const SLOTS: usize = 400;
const SEED: u64 = 31;

fn wild_scenario() -> Scenario {
    let mut s = Scenario::raspberry_pi_cluster(ModelKind::InceptionV3, 3, 2.0);
    // WiFi quality cycles between nominal and 20 % (interference bursts).
    s.bandwidth_scale = Some(TimeTrace::square_wave(
        1.0,
        0.2,
        SimTime::from_secs(60.0),
        SimTime::from_secs(SLOTS as f64),
    ));
    // Arrivals burst to 6x with ~10% duty cycle.
    s.workload = WorkloadKind::Bursty {
        burst_factor: 6.0,
        p_enter: 0.03,
        p_leave: 0.25,
        max: 1000,
    };
    s
}

fn main() {
    println!("== Extension: compound wild-edge dynamics ==");
    println!("(bandwidth square wave 100%/20% every 60 s + 6x MMPP arrival bursts)\n");

    let json_path = leime_bench::json_out_path();
    let registry = Registry::new();

    let base = wild_scenario();
    let mut rows = Vec::new();
    let specs = systems::all();
    for spec in &specs {
        let (_, r) = spec
            .run_slotted_with_registry(&base, SLOTS, SEED, &registry)
            .unwrap();
        rows.push(vec![
            spec.name.to_string(),
            fmt_time(r.mean_tct_s()),
            fmt_time(r.p95_tct_s()),
            format!("{:.2}", r.mean_offload_ratio()),
            format!("{:.1}", r.mean_queue_q()),
        ]);
    }
    let h: Vec<String> = ["system", "mean_TCT", "p95_TCT", "mean_x", "mean_Q"]
        .iter()
        .map(|s| s.to_string())
        .collect();
    println!("{}", render_table(&h, &rows));

    // Offloading-policy ablation under the same dynamics.
    println!("\n-- controller ablation (LEIME exits fixed) --\n");
    let mut rows = Vec::new();
    for (name, kind) in [
        ("lyapunov", ControllerKind::Lyapunov),
        ("d_only", ControllerKind::DeviceOnly),
        ("e_only", ControllerKind::EdgeOnly),
        ("cap_based", ControllerKind::CapabilityBased),
        ("fixed_0.5", ControllerKind::Fixed(0.5)),
    ] {
        let mut s = base.clone();
        s.controller = kind;
        let dep = s.deploy(ExitStrategy::Leime).unwrap();
        let prefix = format!("ablation.{name}");
        let r = s
            .run_slotted_with_registry(&dep, SLOTS, SEED, &registry, &prefix)
            .unwrap();
        rows.push(vec![
            name.to_string(),
            fmt_time(r.mean_tct_s()),
            fmt_time(r.p95_tct_s()),
            format!("{:.2}", r.mean_offload_ratio()),
        ]);
    }
    let h: Vec<String> = ["controller", "mean_TCT", "p95_TCT", "mean_x"]
        .iter()
        .map(|s| s.to_string())
        .collect();
    println!("{}", render_table(&h, &rows));
    println!(
        "\nReading: under compound dynamics the online controller matches the \
         best static policy chosen in hindsight -- without knowing the \
         dynamics -- while the exit-placement benchmarks collapse outright."
    );
    if let Some(path) = json_path {
        leime_bench::write_telemetry(&registry, &path);
    }
}
