//! Offline shim for the subset of `serde_json` this workspace uses:
//! [`to_string`], [`to_string_pretty`], [`from_str`], [`to_value`], the
//! [`Value`]/[`Map`] tree (re-exported from the shimmed `serde`) and a
//! reduced [`json!`] macro.
//!
//! See `crates/shims/README.md` for why these shims exist. JSON emitted
//! here matches upstream conventions: compact form has no whitespace,
//! pretty form indents by two spaces, non-finite floats serialize as
//! `null`, floats print via Rust's shortest round-trip formatting.

pub use serde::{Map, Number, Value};

/// Serialization/deserialization error (a message, like `serde_json::Error`
/// for the workspace's `format!("{e}")` purposes).
pub type Error = serde::DeError;

/// Converts any serializable value into a [`Value`] tree.
pub fn to_value<T: serde::Serialize + ?Sized>(value: &T) -> Value {
    value.to_value()
}

/// Serializes to compact JSON text.
///
/// # Errors
///
/// Infallible for the shim's value tree; the `Result` mirrors upstream.
pub fn to_string<T: serde::Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&value.to_value(), &mut out, None, 0);
    Ok(out)
}

/// Serializes to pretty JSON text (two-space indent).
///
/// # Errors
///
/// Infallible for the shim's value tree; the `Result` mirrors upstream.
pub fn to_string_pretty<T: serde::Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&value.to_value(), &mut out, Some("  "), 0);
    Ok(out)
}

/// Parses JSON text into any deserializable type.
///
/// # Errors
///
/// Returns [`Error`] on malformed JSON or a shape mismatch.
pub fn from_str<T: serde::Deserialize>(s: &str) -> Result<T, Error> {
    let value = parse_value(s)?;
    T::from_value(&value)
}

// ---- Writer lives in the serde shim (`serde::write_json`) so `Value`
// can implement `Display` there without violating the orphan rule.

use serde::write_json as write_value;

// ---- Parser (recursive descent over bytes).

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

fn parse_value(s: &str) -> Result<Value, Error> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error::custom(format!(
            "trailing characters at byte {}",
            p.pos
        )));
    }
    Ok(v)
}

impl<'a> Parser<'a> {
    fn err(&self, msg: &str) -> Error {
        Error::custom(format!("{msg} at byte {}", self.pos))
    }

    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&mut self) -> Option<u8> {
        self.skip_ws();
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected `{}`", b as char)))
        }
    }

    fn eat_literal(&mut self, lit: &str) -> bool {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            true
        } else {
            false
        }
    }

    fn value(&mut self) -> Result<Value, Error> {
        match self
            .peek()
            .ok_or_else(|| self.err("unexpected end of input"))?
        {
            b'{' => self.object(),
            b'[' => self.array(),
            b'"' => self.string().map(Value::String),
            b't' => {
                if self.eat_literal("true") {
                    Ok(Value::Bool(true))
                } else {
                    Err(self.err("invalid literal"))
                }
            }
            b'f' => {
                if self.eat_literal("false") {
                    Ok(Value::Bool(false))
                } else {
                    Err(self.err("invalid literal"))
                }
            }
            b'n' => {
                if self.eat_literal("null") {
                    Ok(Value::Null)
                } else {
                    Err(self.err("invalid literal"))
                }
            }
            b'-' | b'0'..=b'9' => self.number(),
            other => Err(self.err(&format!("unexpected character `{}`", other as char))),
        }
    }

    fn object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut map = Map::new();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(map));
        }
        loop {
            if self.peek() != Some(b'"') {
                return Err(self.err("expected object key"));
            }
            let key = self.string()?;
            self.expect(b':')?;
            let val = self.value()?;
            map.insert(key, val);
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(map));
                }
                _ => return Err(self.err("expected `,` or `}`")),
            }
        }
    }

    fn array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            items.push(self.value()?);
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(self.err("expected `,` or `]`")),
            }
        }
    }

    fn string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let b = *self
                .bytes
                .get(self.pos)
                .ok_or_else(|| self.err("unterminated string"))?;
            match b {
                b'"' => {
                    self.pos += 1;
                    return Ok(out);
                }
                b'\\' => {
                    self.pos += 1;
                    let esc = *self
                        .bytes
                        .get(self.pos)
                        .ok_or_else(|| self.err("unterminated escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{08}'),
                        b'f' => out.push('\u{0C}'),
                        b'u' => {
                            let cp = self.hex4()?;
                            // Surrogate pair handling for completeness.
                            let c = if (0xD800..0xDC00).contains(&cp) {
                                if !self.eat_literal("\\u") {
                                    return Err(self.err("unpaired surrogate"));
                                }
                                let lo = self.hex4()?;
                                let combined =
                                    0x10000 + ((cp - 0xD800) << 10) + (lo.wrapping_sub(0xDC00));
                                char::from_u32(combined).ok_or_else(|| self.err("bad surrogate"))?
                            } else {
                                char::from_u32(cp).ok_or_else(|| self.err("bad codepoint"))?
                            };
                            out.push(c);
                        }
                        _ => return Err(self.err("invalid escape")),
                    }
                }
                _ => {
                    // Consume one UTF-8 character (input came from &str, so
                    // boundaries are valid).
                    let start = self.pos;
                    let mut end = start + 1;
                    while end < self.bytes.len() && (self.bytes[end] & 0xC0) == 0x80 {
                        end += 1;
                    }
                    out.push_str(core::str::from_utf8(&self.bytes[start..end]).unwrap());
                    self.pos = end;
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, Error> {
        let slice = self
            .bytes
            .get(self.pos..self.pos + 4)
            .ok_or_else(|| self.err("truncated \\u escape"))?;
        let s = core::str::from_utf8(slice).map_err(|_| self.err("bad \\u escape"))?;
        let v = u32::from_str_radix(s, 16).map_err(|_| self.err("bad \\u escape"))?;
        self.pos += 4;
        Ok(v)
    }

    fn number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.bytes.get(self.pos) == Some(&b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(&b) = self.bytes.get(self.pos) {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = core::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        if !is_float {
            if text.starts_with('-') {
                if let Ok(i) = text.parse::<i64>() {
                    return Ok(Value::Number(Number::NegInt(i)));
                }
            } else if let Ok(u) = text.parse::<u64>() {
                return Ok(Value::Number(Number::PosInt(u)));
            }
        }
        text.parse::<f64>()
            .map(|f| Value::Number(Number::Float(f)))
            .map_err(|_| self.err(&format!("invalid number `{text}`")))
    }
}

/// Builds a [`Value`] in place — a reduced version of `serde_json::json!`
/// covering literals/expressions, arrays and objects with literal keys.
#[macro_export]
macro_rules! json {
    (null) => { $crate::Value::Null };
    ([ $($tt:tt)* ]) => {{
        let mut __items: ::std::vec::Vec<$crate::Value> = ::std::vec::Vec::new();
        $crate::json_internal!(@array __items $($tt)*);
        $crate::Value::Array(__items)
    }};
    ({ $($tt:tt)* }) => {{
        let mut __map = $crate::Map::new();
        $crate::json_internal!(@object __map $($tt)*);
        $crate::Value::Object(__map)
    }};
    ($other:expr) => { $crate::to_value(&$other) };
}

/// Implementation detail of [`json!`].
#[doc(hidden)]
#[macro_export]
macro_rules! json_internal {
    (@object $m:ident) => {};
    (@object $m:ident $key:literal : { $($inner:tt)* } $(, $($rest:tt)*)?) => {
        $m.insert($key.to_string(), $crate::json!({ $($inner)* }));
        $( $crate::json_internal!(@object $m $($rest)*); )?
    };
    (@object $m:ident $key:literal : [ $($inner:tt)* ] $(, $($rest:tt)*)?) => {
        $m.insert($key.to_string(), $crate::json!([ $($inner)* ]));
        $( $crate::json_internal!(@object $m $($rest)*); )?
    };
    (@object $m:ident $key:literal : $value:expr $(, $($rest:tt)*)?) => {
        $m.insert($key.to_string(), $crate::json!($value));
        $( $crate::json_internal!(@object $m $($rest)*); )?
    };
    (@array $a:ident) => {};
    (@array $a:ident { $($inner:tt)* } $(, $($rest:tt)*)?) => {
        $a.push($crate::json!({ $($inner)* }));
        $( $crate::json_internal!(@array $a $($rest)*); )?
    };
    (@array $a:ident [ $($inner:tt)* ] $(, $($rest:tt)*)?) => {
        $a.push($crate::json!([ $($inner)* ]));
        $( $crate::json_internal!(@array $a $($rest)*); )?
    };
    (@array $a:ident $value:expr $(, $($rest:tt)*)?) => {
        $a.push($crate::json!($value));
        $( $crate::json_internal!(@array $a $($rest)*); )?
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_scalars_and_nesting() {
        let v = json!({
            "a": 1u64,
            "b": -2i64,
            "pi": 3.5f64,
            "s": "x\"y\\z\n",
            "flag": true,
            "nothing": null,
            "arr": [1u64, 2u64],
            "nested": { "k": 0.125f64 }
        });
        let text = to_string(&v).unwrap();
        let back: Value = from_str(&text).unwrap();
        assert_eq!(v, back);
        let pretty = to_string_pretty(&v).unwrap();
        let back2: Value = from_str(&pretty).unwrap();
        assert_eq!(v, back2);
    }

    #[test]
    fn floats_round_trip_exactly() {
        for &x in &[0.1f64, 1.0, 1e300, 5e12, 1.2345678901234567e-8, -0.0] {
            let text = to_string(&x).unwrap();
            let back: f64 = from_str(&text).unwrap();
            assert_eq!(x.to_bits(), back.to_bits(), "{x} -> {text} -> {back}");
        }
    }

    #[test]
    fn nonfinite_floats_become_null() {
        assert_eq!(to_string(&f64::NAN).unwrap(), "null");
        let v: Option<f64> = from_str("null").unwrap();
        assert_eq!(v, None);
    }

    #[test]
    fn rejects_malformed_input() {
        assert!(from_str::<Value>("{").is_err());
        assert!(from_str::<Value>("[1,]").is_err());
        assert!(from_str::<Value>("{\"a\" 1}").is_err());
        assert!(from_str::<Value>("tru").is_err());
        assert!(from_str::<Value>("1 2").is_err());
    }

    #[test]
    fn object_mutation_api() {
        let mut v = json!({"keep": 1u64, "drop": 2u64});
        v.as_object_mut().unwrap().remove("drop");
        assert_eq!(v.to_string(), "{\"keep\":1}");
        assert!(v.get("drop").is_none());
        assert_eq!(v["keep"].as_u64(), Some(1));
    }
}
