//! Offline shim for the slice of `crossbeam` this workspace uses: the
//! unbounded MPMC channel (`channel::unbounded`, `Sender` with `len()`,
//! `Receiver` with blocking `recv` that errors once every sender is
//! dropped). Built on `std::sync::{Mutex, Condvar}`; see
//! `crates/shims/README.md`.

/// Multi-producer multi-consumer channels.
pub mod channel {
    use std::collections::VecDeque;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::{Arc, Condvar, Mutex};

    struct Inner<T> {
        queue: Mutex<VecDeque<T>>,
        ready: Condvar,
        senders: AtomicUsize,
    }

    /// Error returned by [`Receiver::recv`] when the channel is empty and
    /// all senders have been dropped.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct RecvError;

    impl core::fmt::Display for RecvError {
        fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
            f.write_str("receiving on an empty and disconnected channel")
        }
    }

    impl std::error::Error for RecvError {}

    /// Error returned by [`Sender::send`] when every receiver is gone.
    /// The shim channel never disconnects senders, so this is only a type
    /// placeholder for API compatibility.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    /// The sending half of an unbounded channel.
    pub struct Sender<T> {
        inner: Arc<Inner<T>>,
    }

    /// The receiving half of an unbounded channel.
    pub struct Receiver<T> {
        inner: Arc<Inner<T>>,
    }

    /// Creates an unbounded channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let inner = Arc::new(Inner {
            queue: Mutex::new(VecDeque::new()),
            ready: Condvar::new(),
            senders: AtomicUsize::new(1),
        });
        (
            Sender {
                inner: Arc::clone(&inner),
            },
            Receiver { inner },
        )
    }

    impl<T> Sender<T> {
        /// Enqueues a message; never blocks.
        ///
        /// # Errors
        ///
        /// Infallible in the shim (receivers are not tracked); mirrors the
        /// upstream signature.
        pub fn send(&self, msg: T) -> Result<(), SendError<T>> {
            let mut q = self.inner.queue.lock().unwrap_or_else(|e| e.into_inner());
            q.push_back(msg);
            drop(q);
            self.inner.ready.notify_one();
            Ok(())
        }

        /// Number of messages currently queued.
        pub fn len(&self) -> usize {
            self.inner
                .queue
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .len()
        }

        /// Whether the queue is currently empty.
        pub fn is_empty(&self) -> bool {
            self.len() == 0
        }
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            self.inner.senders.fetch_add(1, Ordering::SeqCst);
            Sender {
                inner: Arc::clone(&self.inner),
            }
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            if self.inner.senders.fetch_sub(1, Ordering::SeqCst) == 1 {
                // Last sender gone: wake blocked receivers so they observe
                // the disconnect.
                self.inner.ready.notify_all();
            }
        }
    }

    impl<T> Receiver<T> {
        /// Blocks until a message arrives or the channel disconnects.
        ///
        /// # Errors
        ///
        /// [`RecvError`] once the queue is empty and all senders dropped.
        pub fn recv(&self) -> Result<T, RecvError> {
            let mut q = self.inner.queue.lock().unwrap_or_else(|e| e.into_inner());
            loop {
                if let Some(msg) = q.pop_front() {
                    return Ok(msg);
                }
                if self.inner.senders.load(Ordering::SeqCst) == 0 {
                    return Err(RecvError);
                }
                q = self.inner.ready.wait(q).unwrap_or_else(|e| e.into_inner());
            }
        }

        /// Number of messages currently queued.
        pub fn len(&self) -> usize {
            self.inner
                .queue
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .len()
        }

        /// Whether the queue is currently empty.
        pub fn is_empty(&self) -> bool {
            self.len() == 0
        }
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            Receiver {
                inner: Arc::clone(&self.inner),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::channel;

    #[test]
    fn delivers_in_order_and_disconnects() {
        let (tx, rx) = channel::unbounded();
        for i in 0..10 {
            tx.send(i).unwrap();
        }
        assert_eq!(tx.len(), 10);
        drop(tx);
        for i in 0..10 {
            assert_eq!(rx.recv(), Ok(i));
        }
        assert_eq!(rx.recv(), Err(channel::RecvError));
    }

    #[test]
    fn blocking_recv_across_threads() {
        let (tx, rx) = channel::unbounded();
        let tx2 = tx.clone();
        let handle = std::thread::spawn(move || {
            std::thread::sleep(std::time::Duration::from_millis(20));
            tx2.send(42u32).unwrap();
        });
        drop(tx);
        assert_eq!(rx.recv(), Ok(42));
        handle.join().unwrap();
        assert!(rx.recv().is_err());
    }
}
