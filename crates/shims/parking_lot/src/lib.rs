//! Offline shim for the slice of `parking_lot` this workspace uses: a
//! `Mutex` whose `lock()` returns the guard directly (no poisoning
//! `Result`). Backed by `std::sync::Mutex`; see `crates/shims/README.md`.

use std::sync::{Mutex as StdMutex, MutexGuard as StdMutexGuard};

/// A mutual-exclusion lock with `parking_lot`'s panic-free locking API.
#[derive(Debug, Default)]
pub struct Mutex<T> {
    inner: StdMutex<T>,
}

/// Guard returned by [`Mutex::lock`]; releases the lock on drop.
pub struct MutexGuard<'a, T> {
    guard: StdMutexGuard<'a, T>,
}

impl<T> Mutex<T> {
    /// Wraps `value` in a new mutex.
    pub const fn new(value: T) -> Self {
        Mutex {
            inner: StdMutex::new(value),
        }
    }

    /// Blocks until the lock is acquired. Poisoning from a panicking
    /// holder is ignored, matching `parking_lot` semantics.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard {
            guard: self.inner.lock().unwrap_or_else(|e| e.into_inner()),
        }
    }

    /// Consumes the mutex and returns the protected value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T> core::ops::Deref for MutexGuard<'_, T> {
    type Target = T;

    fn deref(&self) -> &T {
        &self.guard
    }
}

impl<T> core::ops::DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.guard
    }
}

#[cfg(test)]
mod tests {
    use super::Mutex;

    #[test]
    fn lock_and_into_inner() {
        let m = Mutex::new(1u32);
        *m.lock() += 41;
        assert_eq!(m.into_inner(), 42);
    }

    #[test]
    fn contended_increments() {
        let m = std::sync::Arc::new(Mutex::new(0u64));
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let m = std::sync::Arc::clone(&m);
                std::thread::spawn(move || {
                    for _ in 0..1000 {
                        *m.lock() += 1;
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(*m.lock(), 4000);
    }
}
