//! Offline shim for the subset of `criterion` this workspace's benches
//! use. Keeps the `criterion_group!`/`criterion_main!` harness API so
//! `cargo bench` compiles and runs, but replaces the statistical engine
//! with a simple calibrated timing loop printing one line per benchmark.
//! See `crates/shims/README.md`.

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Entry point handed to benchmark functions.
#[derive(Debug, Default)]
pub struct Criterion {}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup {
        BenchmarkGroup { name: name.into() }
    }
}

/// A named collection of benchmarks.
pub struct BenchmarkGroup {
    name: String,
}

impl BenchmarkGroup {
    /// Accepted for API compatibility; the shim's timing loop is
    /// self-calibrating and ignores the sample count.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Runs a benchmark identified by a plain name.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let mut b = Bencher::default();
        f(&mut b);
        b.report(&self.name, &id.0);
        self
    }

    /// Runs a benchmark parameterized by `input`.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut b = Bencher::default();
        f(&mut b, input);
        b.report(&self.name, &id.0);
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// A benchmark identifier (`function/parameter`).
pub struct BenchmarkId(String);

impl BenchmarkId {
    /// An id made of a function name and a parameter value.
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId(format!("{}/{}", function_name.into(), parameter))
    }

    /// An id that is just a parameter value.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId(format!("{parameter}"))
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId(s.to_string())
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId(s)
    }
}

/// Times closures handed to it by a benchmark body.
#[derive(Debug, Default)]
pub struct Bencher {
    measured: Option<(u64, Duration)>,
}

impl Bencher {
    /// Runs `f` repeatedly and records iterations and elapsed time.
    /// Budget: enough iterations to fill ~50ms, capped to keep whole
    /// suites fast without a statistics pass.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // Warm-up + rate estimate.
        let start = Instant::now();
        std::hint::black_box(f());
        let once = start.elapsed().max(Duration::from_nanos(1));
        let target = Duration::from_millis(50);
        let iters = (target.as_nanos() / once.as_nanos()).clamp(1, 100_000) as u64;
        let start = Instant::now();
        for _ in 0..iters {
            std::hint::black_box(f());
        }
        self.measured = Some((iters, start.elapsed()));
    }

    fn report(&self, group: &str, id: &str) {
        match self.measured {
            Some((iters, total)) => {
                let per_iter = total.as_nanos() as f64 / iters as f64;
                let (value, unit) = if per_iter >= 1e9 {
                    (per_iter / 1e9, "s")
                } else if per_iter >= 1e6 {
                    (per_iter / 1e6, "ms")
                } else if per_iter >= 1e3 {
                    (per_iter / 1e3, "µs")
                } else {
                    (per_iter, "ns")
                };
                println!("{group}/{id}: {value:.2} {unit}/iter ({iters} iterations)");
            }
            None => println!("{group}/{id}: no measurement (b.iter not called)"),
        }
    }
}

/// Declares a group runner calling each benchmark function in turn.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_bench(c: &mut Criterion) {
        let mut group = c.benchmark_group("shim");
        group.sample_size(10);
        group.bench_function("sum", |b| b.iter(|| (0..100u64).sum::<u64>()));
        group.bench_with_input(BenchmarkId::new("scaled", 4), &4u64, |b, &n| {
            b.iter(|| (0..n).product::<u64>())
        });
        group.bench_with_input(BenchmarkId::from_parameter(7), &7u64, |b, &n| {
            b.iter(|| n * 2)
        });
        group.finish();
    }

    criterion_group!(benches, sample_bench);

    #[test]
    fn harness_runs() {
        benches();
    }
}
