//! The JSON-shaped value tree shared by the `serde` and `serde_json`
//! shims.

/// A JSON number, distinguishing integer and float representations so
/// `u64` counters round-trip exactly.
#[derive(Debug, Clone, Copy)]
pub enum Number {
    /// A non-negative integer.
    PosInt(u64),
    /// A negative integer.
    NegInt(i64),
    /// A floating-point number.
    Float(f64),
}

impl Number {
    /// The number as `f64` (lossy for huge integers).
    pub fn as_f64(&self) -> f64 {
        match *self {
            Number::PosInt(n) => n as f64,
            Number::NegInt(n) => n as f64,
            Number::Float(x) => x,
        }
    }
}

impl PartialEq for Number {
    fn eq(&self, other: &Self) -> bool {
        match (*self, *other) {
            (Number::PosInt(a), Number::PosInt(b)) => a == b,
            (Number::NegInt(a), Number::NegInt(b)) => a == b,
            (Number::Float(a), Number::Float(b)) => a == b,
            // Cross-representation integer equality (1 parsed vs 1.0 built).
            _ => self.as_f64() == other.as_f64(),
        }
    }
}

/// An insertion-ordered string-keyed map of [`Value`]s, mirroring
/// `serde_json::Map`.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Map {
    entries: Vec<(String, Value)>,
}

impl Map {
    /// An empty map.
    pub fn new() -> Self {
        Map::default()
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the map has no entries.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Inserts `value` under `key`, replacing and returning any previous
    /// value for the key.
    pub fn insert(&mut self, key: String, value: Value) -> Option<Value> {
        for (k, v) in &mut self.entries {
            if *k == key {
                return Some(core::mem::replace(v, value));
            }
        }
        self.entries.push((key, value));
        None
    }

    /// Removes and returns the value under `key`, if present.
    pub fn remove(&mut self, key: &str) -> Option<Value> {
        let idx = self.entries.iter().position(|(k, _)| k == key)?;
        Some(self.entries.remove(idx).1)
    }

    /// Looks up a value by key.
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.entries.iter().find(|(k, _)| k == key).map(|(_, v)| v)
    }

    /// Iterates entries in insertion order.
    pub fn iter(&self) -> impl Iterator<Item = (&String, &Value)> {
        self.entries.iter().map(|(k, v)| (k, v))
    }
}

/// A JSON value tree, mirroring `serde_json::Value`.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A number.
    Number(Number),
    /// A string.
    String(String),
    /// An ordered array.
    Array(Vec<Value>),
    /// A key-value object.
    Object(Map),
}

impl Value {
    /// A short name of the variant for error messages.
    pub fn kind(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::Number(_) => "number",
            Value::String(_) => "string",
            Value::Array(_) => "array",
            Value::Object(_) => "object",
        }
    }

    /// Whether this is `null`.
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// The object form, if any.
    pub fn as_object(&self) -> Option<&Map> {
        match self {
            Value::Object(m) => Some(m),
            _ => None,
        }
    }

    /// The mutable object form, if any.
    pub fn as_object_mut(&mut self) -> Option<&mut Map> {
        match self {
            Value::Object(m) => Some(m),
            _ => None,
        }
    }

    /// The array form, if any.
    pub fn as_array(&self) -> Option<&Vec<Value>> {
        match self {
            Value::Array(a) => Some(a),
            _ => None,
        }
    }

    /// The string form, if any.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    /// The boolean form, if any.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The number as `f64`, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Number(n) => Some(n.as_f64()),
            _ => None,
        }
    }

    /// The number as `u64`, if this is a non-negative integer.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Number(Number::PosInt(n)) => Some(*n),
            _ => None,
        }
    }

    /// The number as `i64`, if integral.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Number(Number::PosInt(n)) => i64::try_from(*n).ok(),
            Value::Number(Number::NegInt(n)) => Some(*n),
            _ => None,
        }
    }

    /// Object member lookup (`None` for non-objects and missing keys).
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.as_object().and_then(|m| m.get(key))
    }
}

impl core::ops::Index<&str> for Value {
    type Output = Value;

    fn index(&self, key: &str) -> &Value {
        static NULL: Value = Value::Null;
        self.get(key).unwrap_or(&NULL)
    }
}

impl core::fmt::Display for Value {
    /// Compact JSON text, matching `serde_json::to_string`.
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        let mut out = String::new();
        write_json(self, &mut out, None, 0);
        f.write_str(&out)
    }
}

/// Renders `v` as JSON into `out` — compact when `indent` is `None`,
/// pretty otherwise. Shared with the `serde_json` shim (the orphan rule
/// requires `Display` — and therefore the writer — to live here).
#[doc(hidden)]
pub fn write_json(v: &Value, out: &mut String, indent: Option<&str>, depth: usize) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::Number(n) => write_number(*n, out),
        Value::String(s) => write_string(s, out),
        Value::Array(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_json(item, out, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push(']');
        }
        Value::Object(m) => {
            if m.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (k, val)) in m.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_string(k, out);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_json(val, out, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push('}');
        }
    }
}

fn newline_indent(out: &mut String, indent: Option<&str>, depth: usize) {
    if let Some(pad) = indent {
        out.push('\n');
        for _ in 0..depth {
            out.push_str(pad);
        }
    }
}

fn write_number(n: Number, out: &mut String) {
    match n {
        Number::PosInt(u) => out.push_str(&u.to_string()),
        Number::NegInt(i) => out.push_str(&i.to_string()),
        Number::Float(f) if !f.is_finite() => out.push_str("null"),
        // `{:?}` prints the shortest text that round-trips, with a decimal
        // point or exponent, so the value re-parses as a float.
        Number::Float(f) => out.push_str(&format!("{f:?}")),
    }
}

fn write_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{08}' => out.push_str("\\b"),
            '\u{0C}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}
