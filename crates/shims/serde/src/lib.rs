//! Offline shim for the subset of `serde` this workspace uses.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors minimal, API-compatible implementations of its external
//! dependencies (see `crates/shims/README.md`). Instead of upstream
//! serde's visitor architecture, this shim serializes through an explicit
//! [`Value`] tree: `Serialize::to_value` builds the tree and
//! `Deserialize::from_value` reads it back. `serde_json` (also shimmed)
//! renders and parses that tree as JSON text.
//!
//! The `derive` feature re-exports `#[derive(Serialize, Deserialize)]`
//! proc-macros from the vendored `serde_derive`, which understand plain
//! structs, tuple structs and enums (unit / newtype / struct variants)
//! plus the `#[serde(default)]` field attribute — everything the
//! workspace's types need, with upstream-compatible JSON shapes.

mod value;

pub use value::{Map, Number, Value};

#[doc(hidden)]
pub use value::write_json;

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};

/// Deserialization error: a human-readable message, compatible with the
/// `format!("{e}")` call sites in the workspace.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DeError {
    msg: String,
}

impl DeError {
    /// Builds an error from any message.
    pub fn custom(msg: impl Into<String>) -> Self {
        DeError { msg: msg.into() }
    }
}

impl core::fmt::Display for DeError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.write_str(&self.msg)
    }
}

impl std::error::Error for DeError {}

/// Types that can serialize themselves into a [`Value`] tree.
pub trait Serialize {
    /// Builds the value tree.
    fn to_value(&self) -> Value;
}

/// Types that can reconstruct themselves from a [`Value`] tree.
pub trait Deserialize: Sized {
    /// Reads the value tree.
    ///
    /// # Errors
    ///
    /// Returns [`DeError`] when the tree's shape or a leaf's type does not
    /// match.
    fn from_value(v: &Value) -> Result<Self, DeError>;
}

// ---- Serialize impls for primitives and std containers.

macro_rules! impl_ser_uint {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value { Value::Number(Number::PosInt(*self as u64)) }
        }
    )*};
}
impl_ser_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_ser_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                let v = *self as i64;
                if v >= 0 {
                    Value::Number(Number::PosInt(v as u64))
                } else {
                    Value::Number(Number::NegInt(v))
                }
            }
        }
    )*};
}
impl_ser_int!(i8, i16, i32, i64, isize);

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::Number(Number::Float(*self))
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::Number(Number::Float(*self as f64))
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::String(self.clone())
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::String(self.to_string())
    }
}

impl Serialize for char {
    fn to_value(&self) -> Value {
        Value::String(self.to_string())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize + ?Sized> Serialize for Box<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(x) => x.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<A: Serialize, B: Serialize> Serialize for (A, B) {
    fn to_value(&self) -> Value {
        Value::Array(vec![self.0.to_value(), self.1.to_value()])
    }
}

impl<A: Serialize, B: Serialize, C: Serialize> Serialize for (A, B, C) {
    fn to_value(&self) -> Value {
        Value::Array(vec![
            self.0.to_value(),
            self.1.to_value(),
            self.2.to_value(),
        ])
    }
}

impl<A: Serialize, B: Serialize, C: Serialize, D: Serialize> Serialize for (A, B, C, D) {
    fn to_value(&self) -> Value {
        Value::Array(vec![
            self.0.to_value(),
            self.1.to_value(),
            self.2.to_value(),
            self.3.to_value(),
        ])
    }
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

// ---- Deserialize impls.

macro_rules! impl_de_uint {
    ($($t:ty),*) => {$(
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                match v {
                    Value::Number(Number::PosInt(n)) => <$t>::try_from(*n)
                        .map_err(|_| DeError::custom(format!(
                            "integer {n} out of range for {}", stringify!($t)))),
                    other => Err(DeError::custom(format!(
                        "expected unsigned integer, found {}", other.kind()))),
                }
            }
        }
    )*};
}
impl_de_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_de_int {
    ($($t:ty),*) => {$(
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                let wide: i64 = match v {
                    Value::Number(Number::PosInt(n)) => i64::try_from(*n)
                        .map_err(|_| DeError::custom(format!("integer {n} too large")))?,
                    Value::Number(Number::NegInt(n)) => *n,
                    other => return Err(DeError::custom(format!(
                        "expected integer, found {}", other.kind()))),
                };
                <$t>::try_from(wide).map_err(|_| DeError::custom(format!(
                    "integer {wide} out of range for {}", stringify!($t))))
            }
        }
    )*};
}
impl_de_int!(i8, i16, i32, i64, isize);

impl Deserialize for f64 {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Number(n) => Ok(n.as_f64()),
            other => Err(DeError::custom(format!(
                "expected number, found {}",
                other.kind()
            ))),
        }
    }
}

impl Deserialize for f32 {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        f64::from_value(v).map(|x| x as f32)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Bool(b) => Ok(*b),
            other => Err(DeError::custom(format!(
                "expected bool, found {}",
                other.kind()
            ))),
        }
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::String(s) => Ok(s.clone()),
            other => Err(DeError::custom(format!(
                "expected string, found {}",
                other.kind()
            ))),
        }
    }
}

impl Deserialize for &'static str {
    /// Supports derived types with `&'static str` fields (static display
    /// names). The string is leaked to obtain the `'static` lifetime —
    /// fine for occasional config parsing, wrong for hot loops.
    fn from_value(v: &Value) -> Result<Self, DeError> {
        String::from_value(v).map(|s| &*Box::leak(s.into_boxed_str()))
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Array(items) => items.iter().map(T::from_value).collect(),
            other => Err(DeError::custom(format!(
                "expected array, found {}",
                other.kind()
            ))),
        }
    }
}

impl<T: Deserialize, const N: usize> Deserialize for [T; N] {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        let items: Vec<T> = Vec::from_value(v)?;
        let len = items.len();
        items
            .try_into()
            .map_err(|_| DeError::custom(format!("expected array of length {N}, found {len}")))
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        T::from_value(v).map(Box::new)
    }
}

fn tuple_slice<'v>(v: &'v Value, n: usize) -> Result<&'v [Value], DeError> {
    match v {
        Value::Array(items) if items.len() == n => Ok(items),
        Value::Array(items) => Err(DeError::custom(format!(
            "expected array of length {n}, found {}",
            items.len()
        ))),
        other => Err(DeError::custom(format!(
            "expected array, found {}",
            other.kind()
        ))),
    }
}

impl<A: Deserialize, B: Deserialize> Deserialize for (A, B) {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        let s = tuple_slice(v, 2)?;
        Ok((A::from_value(&s[0])?, B::from_value(&s[1])?))
    }
}

impl<A: Deserialize, B: Deserialize, C: Deserialize> Deserialize for (A, B, C) {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        let s = tuple_slice(v, 3)?;
        Ok((
            A::from_value(&s[0])?,
            B::from_value(&s[1])?,
            C::from_value(&s[2])?,
        ))
    }
}

impl<A: Deserialize, B: Deserialize, C: Deserialize, D: Deserialize> Deserialize for (A, B, C, D) {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        let s = tuple_slice(v, 4)?;
        Ok((
            A::from_value(&s[0])?,
            B::from_value(&s[1])?,
            C::from_value(&s[2])?,
            D::from_value(&s[3])?,
        ))
    }
}

impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        Ok(v.clone())
    }
}
