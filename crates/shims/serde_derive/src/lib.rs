//! Offline shim of `serde_derive`: `#[derive(Serialize, Deserialize)]`
//! without syn/quote (neither is available offline), using a hand-rolled
//! parser over `proc_macro::TokenTree`.
//!
//! Supported input shapes — everything this workspace derives:
//!
//! * structs with named fields (`#[serde(default)]` honoured per field),
//! * tuple structs (newtype structs serialize transparently, wider ones
//!   as arrays),
//! * enums with unit variants (as `"Name"`), newtype variants
//!   (`{"Name": inner}`) and struct variants (`{"Name": {..}}`) — the
//!   upstream externally-tagged representation.
//!
//! Generics, lifetimes and the remaining serde attributes are rejected
//! with a `compile_error!` rather than silently mis-serialized.

use proc_macro::{Delimiter, TokenStream, TokenTree};

struct Field {
    name: String,
    default: bool,
}

enum Fields {
    Named(Vec<Field>),
    Tuple(usize),
    Unit,
}

struct Variant {
    name: String,
    fields: Fields,
}

enum Item {
    Struct {
        name: String,
        fields: Fields,
    },
    Enum {
        name: String,
        variants: Vec<Variant>,
    },
}

fn compile_error(msg: &str) -> TokenStream {
    format!("compile_error!({msg:?});").parse().unwrap()
}

/// Scans one attribute (`#` was already consumed; `group` is the
/// bracketed body) and reports whether it is `#[serde(default)]`.
fn attr_is_serde_default(group: &proc_macro::Group) -> bool {
    let mut tokens = group.stream().into_iter();
    match tokens.next() {
        Some(TokenTree::Ident(id)) if id.to_string() == "serde" => {}
        _ => return false,
    }
    match tokens.next() {
        Some(TokenTree::Group(inner)) => inner
            .stream()
            .into_iter()
            .any(|t| matches!(&t, TokenTree::Ident(id) if id.to_string() == "default")),
        _ => false,
    }
}

/// Consumes leading attributes from `toks[*i]`, returning whether any was
/// `#[serde(default)]`.
fn skip_attrs(toks: &[TokenTree], i: &mut usize) -> bool {
    let mut default = false;
    while *i < toks.len() {
        match &toks[*i] {
            TokenTree::Punct(p) if p.as_char() == '#' => {
                if let Some(TokenTree::Group(g)) = toks.get(*i + 1) {
                    if attr_is_serde_default(g) {
                        default = true;
                    }
                    *i += 2;
                } else {
                    break;
                }
            }
            _ => break,
        }
    }
    default
}

/// Consumes a visibility qualifier (`pub`, `pub(crate)`, …) if present.
fn skip_vis(toks: &[TokenTree], i: &mut usize) {
    if matches!(&toks[*i], TokenTree::Ident(id) if id.to_string() == "pub") {
        *i += 1;
        if let Some(TokenTree::Group(g)) = toks.get(*i) {
            if g.delimiter() == Delimiter::Parenthesis {
                *i += 1;
            }
        }
    }
}

/// Counts top-level fields in a tuple-struct/variant parenthesis group:
/// comma-separated, ignoring commas nested in `<...>` generics (inner
/// bracket/paren groups are single `TokenTree`s already).
fn count_tuple_fields(group: &proc_macro::Group) -> usize {
    let toks: Vec<TokenTree> = group.stream().into_iter().collect();
    if toks.is_empty() {
        return 0;
    }
    let mut fields = 1;
    let mut angle = 0i32;
    let mut saw_trailing_comma = false;
    for t in &toks {
        match t {
            TokenTree::Punct(p) if p.as_char() == '<' => angle += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => angle -= 1,
            TokenTree::Punct(p) if p.as_char() == ',' && angle == 0 => {
                fields += 1;
                saw_trailing_comma = true;
            }
            _ => saw_trailing_comma = false,
        }
    }
    if saw_trailing_comma {
        fields -= 1;
    }
    fields
}

/// Parses the named fields inside a brace group.
fn parse_named_fields(group: &proc_macro::Group) -> Result<Vec<Field>, String> {
    let toks: Vec<TokenTree> = group.stream().into_iter().collect();
    let mut fields = Vec::new();
    let mut i = 0;
    while i < toks.len() {
        let default = skip_attrs(&toks, &mut i);
        if i >= toks.len() {
            break;
        }
        skip_vis(&toks, &mut i);
        let name = match &toks[i] {
            TokenTree::Ident(id) => id.to_string(),
            other => return Err(format!("expected field name, found `{other}`")),
        };
        i += 1;
        match &toks[i] {
            TokenTree::Punct(p) if p.as_char() == ':' => i += 1,
            other => {
                return Err(format!(
                    "expected `:` after field `{name}`, found `{other}`"
                ))
            }
        }
        // Skip the type: consume until a top-level comma.
        let mut angle = 0i32;
        while i < toks.len() {
            match &toks[i] {
                TokenTree::Punct(p) if p.as_char() == '<' => angle += 1,
                TokenTree::Punct(p) if p.as_char() == '>' => angle -= 1,
                TokenTree::Punct(p) if p.as_char() == ',' && angle == 0 => {
                    i += 1;
                    break;
                }
                _ => {}
            }
            i += 1;
        }
        fields.push(Field { name, default });
    }
    Ok(fields)
}

fn parse_variants(group: &proc_macro::Group) -> Result<Vec<Variant>, String> {
    let toks: Vec<TokenTree> = group.stream().into_iter().collect();
    let mut variants = Vec::new();
    let mut i = 0;
    while i < toks.len() {
        skip_attrs(&toks, &mut i);
        if i >= toks.len() {
            break;
        }
        let name = match &toks[i] {
            TokenTree::Ident(id) => id.to_string(),
            other => return Err(format!("expected variant name, found `{other}`")),
        };
        i += 1;
        let fields = match toks.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let f = parse_named_fields(g)?;
                i += 1;
                Fields::Named(f)
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let n = count_tuple_fields(g);
                i += 1;
                Fields::Tuple(n)
            }
            _ => Fields::Unit,
        };
        match toks.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == ',' => i += 1,
            None => {}
            Some(other) => {
                return Err(format!(
                    "expected `,` after variant `{name}`, found `{other}`"
                ))
            }
        }
        variants.push(Variant { name, fields });
    }
    Ok(variants)
}

fn parse_item(input: TokenStream) -> Result<Item, String> {
    let toks: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;
    skip_attrs(&toks, &mut i);
    skip_vis(&toks, &mut i);
    let kind = match &toks[i] {
        TokenTree::Ident(id) => id.to_string(),
        other => return Err(format!("expected `struct` or `enum`, found `{other}`")),
    };
    i += 1;
    let name = match &toks[i] {
        TokenTree::Ident(id) => id.to_string(),
        other => return Err(format!("expected item name, found `{other}`")),
    };
    i += 1;
    if matches!(&toks.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        return Err(format!(
            "serde shim derive does not support generic type `{name}`"
        ));
    }
    match kind.as_str() {
        "struct" => match toks.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => Ok(Item::Struct {
                name,
                fields: Fields::Named(parse_named_fields(g)?),
            }),
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                Ok(Item::Struct {
                    name,
                    fields: Fields::Tuple(count_tuple_fields(g)),
                })
            }
            Some(TokenTree::Punct(p)) if p.as_char() == ';' => Ok(Item::Struct {
                name,
                fields: Fields::Unit,
            }),
            other => Err(format!("unsupported struct body: {other:?}")),
        },
        "enum" => match toks.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => Ok(Item::Enum {
                name,
                variants: parse_variants(g)?,
            }),
            other => Err(format!("unsupported enum body: {other:?}")),
        },
        other => Err(format!("cannot derive for `{other}` items")),
    }
}

// ---- Code generation (string-built, parsed back into a TokenStream).

fn gen_named_ser(target: &mut String, fields: &[Field], access_prefix: &str) {
    target.push_str("let mut __m = ::serde::Map::new();\n");
    for f in fields {
        target.push_str(&format!(
            "__m.insert({n:?}.to_string(), ::serde::Serialize::to_value(&{p}{n}));\n",
            n = f.name,
            p = access_prefix
        ));
    }
    target.push_str("::serde::Value::Object(__m)\n");
}

fn gen_named_de(fields: &[Field], obj: &str, ctx: &str) -> String {
    let mut out = String::new();
    for f in fields {
        if f.default {
            out.push_str(&format!(
                "{n}: match {obj}.get({n:?}) {{ \
                   ::core::option::Option::Some(__x) => ::serde::Deserialize::from_value(__x)?, \
                   ::core::option::Option::None => ::core::default::Default::default(), \
                 }},\n",
                n = f.name
            ));
        } else {
            out.push_str(&format!(
                "{n}: match {obj}.get({n:?}) {{ \
                   ::core::option::Option::Some(__x) => ::serde::Deserialize::from_value(__x)?, \
                   ::core::option::Option::None => return ::core::result::Result::Err(\
                     ::serde::DeError::custom(concat!(\"missing field `\", {n:?}, \"` in {ctx}\"))), \
                 }},\n",
                n = f.name,
                ctx = ctx
            ));
        }
    }
    out
}

fn generate_serialize(item: &Item) -> String {
    let mut body = String::new();
    match item {
        Item::Struct { name, fields } => {
            match fields {
                Fields::Named(fs) => gen_named_ser(&mut body, fs, "self."),
                Fields::Tuple(1) => body.push_str("::serde::Serialize::to_value(&self.0)\n"),
                Fields::Tuple(n) => {
                    body.push_str("let mut __a = ::std::vec::Vec::new();\n");
                    for i in 0..*n {
                        body.push_str(&format!(
                            "__a.push(::serde::Serialize::to_value(&self.{i}));\n"
                        ));
                    }
                    body.push_str("::serde::Value::Array(__a)\n");
                }
                Fields::Unit => body.push_str("::serde::Value::Null\n"),
            }
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                   fn to_value(&self) -> ::serde::Value {{\n{body}}}\n\
                 }}\n"
            )
        }
        Item::Enum { name, variants } => {
            body.push_str("match self {\n");
            for v in variants {
                let vn = &v.name;
                match &v.fields {
                    Fields::Unit => body.push_str(&format!(
                        "{name}::{vn} => ::serde::Value::String({vn:?}.to_string()),\n"
                    )),
                    Fields::Tuple(1) => body.push_str(&format!(
                        "{name}::{vn}(__f0) => {{ \
                           let mut __m = ::serde::Map::new(); \
                           __m.insert({vn:?}.to_string(), ::serde::Serialize::to_value(__f0)); \
                           ::serde::Value::Object(__m) }},\n"
                    )),
                    Fields::Tuple(n) => {
                        let binders: Vec<String> = (0..*n).map(|i| format!("__f{i}")).collect();
                        let pushes: String = binders
                            .iter()
                            .map(|b| format!("__a.push(::serde::Serialize::to_value({b}));"))
                            .collect();
                        body.push_str(&format!(
                            "{name}::{vn}({bl}) => {{ \
                               let mut __a = ::std::vec::Vec::new(); {pushes} \
                               let mut __m = ::serde::Map::new(); \
                               __m.insert({vn:?}.to_string(), ::serde::Value::Array(__a)); \
                               ::serde::Value::Object(__m) }},\n",
                            bl = binders.join(", ")
                        ));
                    }
                    Fields::Named(fs) => {
                        let names: Vec<&str> = fs.iter().map(|f| f.name.as_str()).collect();
                        let mut inner = String::new();
                        gen_named_ser(&mut inner, fs, "");
                        body.push_str(&format!(
                            "{name}::{vn} {{ {fl} }} => {{ \
                               let __inner = {{ {inner} }}; \
                               let mut __outer = ::serde::Map::new(); \
                               __outer.insert({vn:?}.to_string(), __inner); \
                               ::serde::Value::Object(__outer) }},\n",
                            fl = names.join(", ")
                        ));
                    }
                }
            }
            body.push_str("}\n");
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                   fn to_value(&self) -> ::serde::Value {{\n{body}}}\n\
                 }}\n"
            )
        }
    }
}

fn generate_deserialize(item: &Item) -> String {
    let body = match item {
        Item::Struct { name, fields } => match fields {
            Fields::Named(fs) => format!(
                "let __obj = __v.as_object().ok_or_else(|| ::serde::DeError::custom(\
                   format!(\"expected object for {name}, found {{}}\", __v.kind())))?;\n\
                 ::core::result::Result::Ok({name} {{\n{fields}}})\n",
                fields = gen_named_de(fs, "__obj", name)
            ),
            Fields::Tuple(1) => format!(
                "::core::result::Result::Ok({name}(::serde::Deserialize::from_value(__v)?))\n"
            ),
            Fields::Tuple(n) => {
                let mut elems = String::new();
                for i in 0..*n {
                    elems.push_str(&format!(
                        "::serde::Deserialize::from_value(&__items[{i}])?,"
                    ));
                }
                format!(
                    "let __items = match __v {{ \
                       ::serde::Value::Array(__a) if __a.len() == {n} => __a, \
                       _ => return ::core::result::Result::Err(::serde::DeError::custom(\
                         \"expected array of length {n} for {name}\")), }};\n\
                     ::core::result::Result::Ok({name}({elems}))\n"
                )
            }
            Fields::Unit => format!("::core::result::Result::Ok({name})\n"),
        },
        Item::Enum { name, variants } => {
            let mut unit_arms = String::new();
            let mut tagged_arms = String::new();
            for v in variants {
                let vn = &v.name;
                match &v.fields {
                    Fields::Unit => {
                        unit_arms.push_str(&format!(
                            "{vn:?} => ::core::result::Result::Ok({name}::{vn}),\n"
                        ));
                        // Also accept the {"Variant": null} object form.
                        tagged_arms.push_str(&format!(
                            "{vn:?} => ::core::result::Result::Ok({name}::{vn}),\n"
                        ));
                    }
                    Fields::Tuple(1) => tagged_arms.push_str(&format!(
                        "{vn:?} => ::core::result::Result::Ok(\
                           {name}::{vn}(::serde::Deserialize::from_value(__inner)?)),\n"
                    )),
                    Fields::Tuple(n) => {
                        let mut elems = String::new();
                        for i in 0..*n {
                            elems.push_str(&format!(
                                "::serde::Deserialize::from_value(&__items[{i}])?,"
                            ));
                        }
                        tagged_arms.push_str(&format!(
                            "{vn:?} => {{ \
                               let __items = match __inner {{ \
                                 ::serde::Value::Array(__a) if __a.len() == {n} => __a, \
                                 _ => return ::core::result::Result::Err(::serde::DeError::custom(\
                                   \"expected array of length {n} for variant {vn}\")), }}; \
                               ::core::result::Result::Ok({name}::{vn}({elems})) }},\n"
                        ));
                    }
                    Fields::Named(fs) => tagged_arms.push_str(&format!(
                        "{vn:?} => {{ \
                           let __obj = __inner.as_object().ok_or_else(|| ::serde::DeError::custom(\
                             \"expected object body for variant {vn}\"))?; \
                           ::core::result::Result::Ok({name}::{vn} {{\n{fields}}}) }},\n",
                        fields = gen_named_de(fs, "__obj", name)
                    )),
                }
            }
            format!(
                "match __v {{\n\
                   ::serde::Value::String(__s) => match __s.as_str() {{\n{unit_arms}\
                     __other => ::core::result::Result::Err(::serde::DeError::custom(\
                       format!(\"unknown variant `{{__other}}` for {name}\"))),\n\
                   }},\n\
                   ::serde::Value::Object(__m) if __m.len() == 1 => {{\n\
                     let (__tag, __inner) = __m.iter().next().unwrap();\n\
                     match __tag.as_str() {{\n{tagged_arms}\
                       __other => ::core::result::Result::Err(::serde::DeError::custom(\
                         format!(\"unknown variant `{{__other}}` for {name}\"))),\n\
                     }}\n\
                   }},\n\
                   __other => ::core::result::Result::Err(::serde::DeError::custom(\
                     format!(\"expected variant of {name}, found {{}}\", __other.kind()))),\n\
                 }}\n"
            )
        }
    };
    let name = match item {
        Item::Struct { name, .. } | Item::Enum { name, .. } => name,
    };
    format!(
        "impl ::serde::Deserialize for {name} {{\n\
           fn from_value(__v: &::serde::Value) \
             -> ::core::result::Result<Self, ::serde::DeError> {{\n{body}}}\n\
         }}\n"
    )
}

/// Derives the shim's `serde::Serialize` (value-tree based).
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    match parse_item(input) {
        Ok(item) => generate_serialize(&item)
            .parse()
            .unwrap_or_else(|e| compile_error(&format!("serde shim codegen error: {e}"))),
        Err(e) => compile_error(&e),
    }
}

/// Derives the shim's `serde::Deserialize` (value-tree based).
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    match parse_item(input) {
        Ok(item) => generate_deserialize(&item)
            .parse()
            .unwrap_or_else(|e| compile_error(&format!("serde shim codegen error: {e}"))),
        Err(e) => compile_error(&e),
    }
}
