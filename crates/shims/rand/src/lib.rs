//! Offline shim for the subset of `rand` 0.8 this workspace uses.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors minimal, API-compatible implementations of its external
//! dependencies (see `crates/shims/README.md`). This crate provides
//! [`rngs::StdRng`] (xoshiro256++ seeded via SplitMix64), [`SeedableRng`]
//! and the [`Rng`] extension trait with `gen`, `gen_range` and `gen_bool`.
//!
//! The generator is deterministic per seed — exactly what the
//! reproduction's seeded experiments need — but it is *not* the same
//! stream as upstream `StdRng` (ChaCha12), so absolute numbers in seeded
//! tests may differ from runs against the real crate.

/// A random number generator: the core 64-bit source.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// A generator seedable from a `u64` (subset of the upstream trait).
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed via SplitMix64 expansion.
    fn seed_from_u64(state: u64) -> Self;
}

/// Types that can be drawn uniformly from a range by [`Rng::gen_range`].
pub trait SampleUniform: Copy + PartialOrd {
    /// Uniform draw from `[lo, hi)`.
    fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self;
    /// Uniform draw from `[lo, hi]`.
    fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self;
}

macro_rules! impl_sample_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                assert!(lo < hi, "gen_range: empty range");
                let span = (hi as i128 - lo as i128) as u128;
                lo.wrapping_add(uniform_u128_below(rng, span) as $t)
            }
            fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                assert!(lo <= hi, "gen_range: empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                lo.wrapping_add(uniform_u128_below(rng, span) as $t)
            }
        }
    )*};
}

impl_sample_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_sample_uniform_float {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                assert!(lo < hi, "gen_range: empty range");
                let u = unit_f64(rng) as $t;
                let v = lo + (hi - lo) * u;
                // Guard against rounding up to the excluded endpoint.
                if v >= hi { lo.max(<$t>::from_bits(hi.to_bits() - 1)) } else { v }
            }
            fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                assert!(lo <= hi, "gen_range: empty range");
                lo + (hi - lo) * (unit_f64(rng) as $t)
            }
        }
    )*};
}

impl_sample_uniform_float!(f32, f64);

/// Uniform integer below `span` (> 0) without modulo bias worth caring
/// about at simulation scale (rejection sampling on the top 64 bits).
fn uniform_u128_below<R: RngCore + ?Sized>(rng: &mut R, span: u128) -> u128 {
    debug_assert!(span > 0);
    if span == 1 {
        return 0;
    }
    // Rejection zone keeps the draw exactly uniform.
    let zone = u128::MAX - (u128::MAX - span + 1) % span;
    loop {
        let wide = ((rng.next_u64() as u128) << 64) | rng.next_u64() as u128;
        if wide <= zone {
            return wide % span;
        }
    }
}

/// Uniform in `[0, 1)` with 53 bits of precision.
fn unit_f64<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
    (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Ranges usable with [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws a uniform value from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for core::ops::Range<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_half_open(rng, self.start, self.end)
    }
}

impl<T: SampleUniform> SampleRange<T> for core::ops::RangeInclusive<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_inclusive(rng, *self.start(), *self.end())
    }
}

/// Types producible by [`Rng::gen`] (the upstream `Standard` distribution).
pub trait Standard: Sized {
    /// Draws one value.
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for u64 {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for usize {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as usize
    }
}

impl Standard for bool {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        unit_f64(rng)
    }
}

impl Standard for f32 {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        unit_f64(rng) as f32
    }
}

/// Convenience extension methods, mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// Draws a value of an inferred type.
    fn gen<T: Standard>(&mut self) -> T {
        T::draw(self)
    }

    /// Draws uniformly from a half-open or inclusive range.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not in `[0, 1]`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p {p} outside [0, 1]");
        unit_f64(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

pub mod rngs {
    //! Concrete generators.

    use super::{RngCore, SeedableRng};

    /// Deterministic xoshiro256++ generator standing in for `rand`'s
    /// `StdRng`. Seeded via SplitMix64 so nearby seeds give unrelated
    /// streams.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> Self {
            let mut sm = state;
            let mut next = || {
                sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = sm;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            let s = [next(), next(), next(), next()];
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    use super::RngCore;

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let x: f64 = rng.gen_range(0.25..0.75);
            assert!((0.25..0.75).contains(&x));
            let n: usize = rng.gen_range(3..17);
            assert!((3..17).contains(&n));
            let m: u64 = rng.gen_range(5..=6);
            assert!((5..=6).contains(&m));
        }
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(2);
        let hits = (0..20_000).filter(|_| rng.gen_bool(0.3)).count();
        let frac = hits as f64 / 20_000.0;
        assert!((frac - 0.3).abs() < 0.02, "gen_bool(0.3) frequency {frac}");
    }

    #[test]
    fn unit_draws_cover_unit_interval() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut lo = 1.0f64;
        let mut hi = 0.0f64;
        for _ in 0..10_000 {
            let u: f64 = rng.gen();
            assert!((0.0..1.0).contains(&u));
            lo = lo.min(u);
            hi = hi.max(u);
        }
        assert!(lo < 0.01 && hi > 0.99);
    }
}
