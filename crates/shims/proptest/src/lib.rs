//! Offline shim for the subset of `proptest` this workspace uses: the
//! [`proptest!`] macro, range/tuple/`collection::vec` strategies,
//! `prop_map`, and `prop_assert!`/`prop_assert_eq!`.
//!
//! Unlike upstream there is no shrinking and no failure persistence
//! (`.proptest-regressions` files are ignored); each test draws
//! `ProptestConfig::cases` inputs from a generator seeded
//! deterministically from the test's module path and name, so failures
//! reproduce exactly across runs. See `crates/shims/README.md`.

/// Strategy combinators and implementations.
pub mod strategy {
    use rand::Rng;

    /// The generator handed to strategies (re-exported for signatures).
    pub type TestRng = rand::rngs::StdRng;

    /// A source of random values of an associated type.
    pub trait Strategy {
        /// The type of value this strategy generates.
        type Value;

        /// Draws one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Transforms generated values through `f`.
        fn prop_map<U, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> U,
        {
            Map { base: self, f }
        }
    }

    /// Strategy returned by [`Strategy::prop_map`].
    pub struct Map<S, F> {
        base: S,
        f: F,
    }

    impl<S, F, U> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> U,
    {
        type Value = U;

        fn generate(&self, rng: &mut TestRng) -> U {
            (self.f)(self.base.generate(rng))
        }
    }

    impl<T: rand::SampleUniform> Strategy for core::ops::Range<T> {
        type Value = T;

        fn generate(&self, rng: &mut TestRng) -> T {
            rng.gen_range(self.clone())
        }
    }

    impl<T: rand::SampleUniform> Strategy for core::ops::RangeInclusive<T> {
        type Value = T;

        fn generate(&self, rng: &mut TestRng) -> T {
            rng.gen_range(self.clone())
        }
    }

    macro_rules! impl_tuple_strategy {
        ($(($($s:ident . $idx:tt),+))*) => {$(
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);

                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.generate(rng),)+)
                }
            }
        )*};
    }

    impl_tuple_strategy! {
        (A.0, B.1)
        (A.0, B.1, C.2)
        (A.0, B.1, C.2, D.3)
        (A.0, B.1, C.2, D.3, E.4)
    }
}

/// `prop::collection` — strategies for collections.
pub mod collection {
    use crate::strategy::{Strategy, TestRng};
    use rand::Rng;

    /// Admissible size arguments for [`vec`]: a fixed length or a range.
    pub trait SizeRange {
        /// Picks a concrete length.
        fn pick(&self, rng: &mut TestRng) -> usize;
    }

    impl SizeRange for usize {
        fn pick(&self, _rng: &mut TestRng) -> usize {
            *self
        }
    }

    impl SizeRange for core::ops::Range<usize> {
        fn pick(&self, rng: &mut TestRng) -> usize {
            rng.gen_range(self.clone())
        }
    }

    impl SizeRange for core::ops::RangeInclusive<usize> {
        fn pick(&self, rng: &mut TestRng) -> usize {
            rng.gen_range(self.clone())
        }
    }

    /// Strategy generating `Vec`s of `element`-generated values.
    pub fn vec<S: Strategy, Z: SizeRange>(element: S, size: Z) -> VecStrategy<S, Z> {
        VecStrategy { element, size }
    }

    /// Strategy returned by [`vec`].
    pub struct VecStrategy<S, Z> {
        element: S,
        size: Z,
    }

    impl<S: Strategy, Z: SizeRange> Strategy for VecStrategy<S, Z> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = self.size.pick(rng);
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Runner configuration and seeding.
pub mod test_runner {
    use rand::SeedableRng;

    /// Per-test configuration (only `cases` is honored by the shim).
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of random cases to run.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// A config running `cases` random cases.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 256 }
        }
    }

    /// Deterministic generator for a test, seeded by FNV-1a of its full
    /// path so every test gets a distinct but reproducible stream.
    pub fn rng_for(test_path: &str) -> crate::strategy::TestRng {
        let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
        for b in test_path.bytes() {
            hash ^= b as u64;
            hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
        }
        crate::strategy::TestRng::seed_from_u64(hash)
    }
}

/// Namespace mirror so `prop::collection::vec(..)` works from the prelude.
pub mod prop {
    pub use crate::collection;
}

/// The glob-import surface used by test files.
pub mod prelude {
    pub use crate::prop;
    pub use crate::strategy::Strategy;
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, proptest};
}

/// Defines property tests: each `fn name(pattern in strategy, ...)` body
/// runs for `cases` random draws.
#[macro_export]
macro_rules! proptest {
    (@run ($cfg:expr)) => {};
    (@run ($cfg:expr)
        $(#[$meta:meta])*
        fn $name:ident($($p:pat in $s:expr),+ $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __config: $crate::test_runner::ProptestConfig = $cfg;
            let mut __rng =
                $crate::test_runner::rng_for(concat!(module_path!(), "::", stringify!($name)));
            for __case in 0..__config.cases {
                let _ = __case;
                $(let $p = $crate::strategy::Strategy::generate(&($s), &mut __rng);)+
                $body
            }
        }
        $crate::proptest!(@run ($cfg) $($rest)*);
    };
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@run ($cfg) $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@run ($crate::test_runner::ProptestConfig::default()) $($rest)*);
    };
}

/// Asserts a condition inside a property test (panics on failure, like
/// `assert!` — the shim has no shrinking to report).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)+) => { assert!($cond, $($fmt)+) };
}

/// Asserts equality inside a property test.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr $(,)?) => { assert_eq!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)+) => { assert_eq!($a, $b, $($fmt)+) };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    fn arb_even(limit: u64) -> impl Strategy<Value = u64> {
        (0..limit).prop_map(|x| x * 2)
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_respect_bounds(x in 1.5f64..9.5, n in 3usize..17, k in 10u64..=12) {
            prop_assert!((1.5..9.5).contains(&x));
            prop_assert!((3..17).contains(&n));
            prop_assert!((10..=12).contains(&k));
        }

        #[test]
        fn vec_sizes_and_tuples(
            xs in prop::collection::vec((0.0f64..1.0, 1usize..4), 2..9),
            fixed in prop::collection::vec(0.0f64..1.0, 5),
        ) {
            prop_assert!(xs.len() >= 2 && xs.len() < 9);
            prop_assert_eq!(fixed.len(), 5);
            for &(f, u) in &xs {
                prop_assert!((0.0..1.0).contains(&f));
                prop_assert!((1..4).contains(&u));
            }
        }

        #[test]
        fn prop_map_applies(mut y in arb_even(100)) {
            y += 2;
            prop_assert_eq!(y % 2, 0);
        }
    }

    #[test]
    fn rng_is_deterministic_per_name() {
        use crate::strategy::Strategy;
        let mut a = crate::test_runner::rng_for("mod::test");
        let mut b = crate::test_runner::rng_for("mod::test");
        let mut c = crate::test_runner::rng_for("mod::other");
        let s = 0.0f64..1.0;
        assert_eq!(s.generate(&mut a), s.generate(&mut b));
        let _ = s.generate(&mut c);
    }
}
