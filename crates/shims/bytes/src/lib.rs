//! Offline shim for the slice of `bytes` this workspace uses: an
//! immutable, cheaply-cloneable byte buffer (`Bytes::from(Vec<u8>)`,
//! `len`, `Clone`). Backed by `Arc<[u8]>`; see `crates/shims/README.md`.

use std::sync::Arc;

/// A cheaply-cloneable immutable contiguous byte buffer.
#[derive(Clone, Default, PartialEq, Eq)]
pub struct Bytes {
    data: Arc<[u8]>,
}

impl Bytes {
    /// An empty buffer.
    pub fn new() -> Self {
        Bytes::default()
    }

    /// Number of bytes.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Copies a slice into a new buffer.
    pub fn copy_from_slice(data: &[u8]) -> Self {
        Bytes { data: data.into() }
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        Bytes { data: v.into() }
    }
}

impl From<&'static [u8]> for Bytes {
    fn from(v: &'static [u8]) -> Self {
        Bytes { data: v.into() }
    }
}

impl core::ops::Deref for Bytes {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        &self.data
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        &self.data
    }
}

impl core::fmt::Debug for Bytes {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "b\"")?;
        for &b in self.data.iter().take(16) {
            write!(f, "\\x{b:02x}")?;
        }
        if self.data.len() > 16 {
            write!(f, "...")?;
        }
        write!(f, "\" ({} bytes)", self.data.len())
    }
}

#[cfg(test)]
mod tests {
    use super::Bytes;

    #[test]
    fn from_vec_len_and_clone_share() {
        let b = Bytes::from(vec![0u8; 1024]);
        let c = b.clone();
        assert_eq!(b.len(), 1024);
        assert_eq!(c.len(), 1024);
        assert_eq!(b, c);
        assert_eq!(&b[..4], &[0, 0, 0, 0]);
    }
}
