use crate::CostModel;
use leime_dnn::{DnnError, ExitCombo};
use leime_invariant as invariant;

/// Exhaustive `O(m²)` search over all `(first, second)` pairs — the ground
/// truth the branch-and-bound search is verified against, and the fallback
/// for tiny chains.
///
/// Returns the optimal combo and its cost.
///
/// # Errors
///
/// Returns [`DnnError::InvalidExitCombo`] if the chain has fewer than 3
/// layers (no 3-exit combo exists).
pub fn exhaustive(cost: &CostModel<'_>) -> Result<(ExitCombo, f64), DnnError> {
    let m = cost.num_exits();
    if m < 3 {
        return Err(DnnError::InvalidExitCombo {
            reason: format!("chain of {m} layers cannot host 3 exits"),
        });
    }
    let mut best: Option<(ExitCombo, f64)> = None;
    for first in 0..m - 2 {
        for second in first + 1..m - 1 {
            let combo = ExitCombo::new(first, second, m - 1, m)?;
            let t = cost.total(combo)?;
            match best {
                Some((_, bt)) if bt <= t => {}
                _ => best = Some((combo, t)),
            }
        }
    }
    let (combo, t) = best.ok_or_else(|| DnnError::InvalidExitCombo {
        reason: "exhaustive search evaluated no combo".to_string(),
    })?;
    invariant::check_finite_cost("exitcfg.exhaustive.total", t);
    Ok((combo, t))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::EnvParams;
    use leime_dnn::{zoo, ExitRates, ExitSpec, ModelProfile};
    use leime_workload::ExitRateModel;

    #[test]
    fn finds_global_minimum() {
        let chain = zoo::squeezenet_1_0(64, 10);
        let profile = ModelProfile::from_chain(&chain, ExitSpec::default()).unwrap();
        let rates = ExitRateModel::cifar_like().rates_for_chain(&chain);
        let cm = CostModel::new(&profile, &rates, EnvParams::raspberry_pi()).unwrap();
        let (best, bt) = exhaustive(&cm).unwrap();
        // No combo beats it.
        let m = cm.num_exits();
        for first in 0..m - 2 {
            for second in first + 1..m - 1 {
                let combo = ExitCombo::new(first, second, m - 1, m).unwrap();
                assert!(cm.total(combo).unwrap() >= bt - 1e-15);
            }
        }
        assert!(best.first < best.second && best.second < m - 1);
    }

    #[test]
    fn rejects_tiny_chain() {
        // Build a 2-layer profile by truncating.
        let chain = zoo::vgg16(32, 10);
        let mut profile = ModelProfile::from_chain(&chain, ExitSpec::default()).unwrap();
        profile.layers.truncate(2);
        let rates = ExitRates::new(vec![0.5, 1.0]).unwrap();
        let cm = CostModel::new(&profile, &rates, EnvParams::raspberry_pi()).unwrap();
        assert!(exhaustive(&cm).is_err());
    }
}
