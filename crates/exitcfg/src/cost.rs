use crate::EnvParams;
use leime_dnn::{DnnError, ExitCombo, ExitRates, ModelProfile};

/// Evaluator for the paper's exit-setting cost expressions (Eq. 1–5).
///
/// Borrows the model profile and exit rates; construction validates that
/// their lengths agree and the environment is well-formed.
#[derive(Debug, Clone)]
pub struct CostModel<'a> {
    profile: &'a ModelProfile,
    rates: &'a ExitRates,
    env: EnvParams,
    offload_aware: bool,
}

impl<'a> CostModel<'a> {
    /// Creates the paper-faithful cost model: the first block always runs
    /// on the device (Eq. 1–4).
    ///
    /// # Errors
    ///
    /// Returns [`DnnError::ExitRateMismatch`] when `rates` does not cover
    /// every candidate exit, or [`DnnError::InvalidExitRate`] when the
    /// environment fails validation.
    pub fn new(
        profile: &'a ModelProfile,
        rates: &'a ExitRates,
        env: EnvParams,
    ) -> Result<Self, DnnError> {
        if rates.len() != profile.num_layers() {
            return Err(DnnError::ExitRateMismatch {
                expected: profile.num_layers(),
                actual: rates.len(),
            });
        }
        if let Err(reason) = env.validate() {
            return Err(DnnError::InvalidExitRate { reason });
        }
        Ok(CostModel {
            profile,
            rates,
            env,
            offload_aware: false,
        })
    }

    /// Creates the *offload-aware* cost model: the first leg of `T(E)` is
    /// the cheaper of running the first block locally (then shipping the
    /// First-exit activation for survivors) or offloading the raw input
    /// and running the first block on the edge share.
    ///
    /// The paper's Eq. 1–4 price the first block at device speed only,
    /// while the deployed system is free to offload it (§III-D); under an
    /// offloading controller, placements optimal for Eq. 4 can be
    /// dominated at runtime. This variant closes the gap and is what the
    /// LEIME deployment uses (see DESIGN.md §5); the Theorem-1 pruning
    /// structure is preserved because the first-leg cost still depends
    /// only on the First-exit and the σ-coupling term is unchanged.
    ///
    /// # Errors
    ///
    /// Same conditions as [`CostModel::new`].
    pub fn new_offload_aware(
        profile: &'a ModelProfile,
        rates: &'a ExitRates,
        env: EnvParams,
    ) -> Result<Self, DnnError> {
        let mut cm = CostModel::new(profile, rates, env)?;
        cm.offload_aware = true;
        Ok(cm)
    }

    /// Whether the offload-aware first-leg variant is active.
    pub fn is_offload_aware(&self) -> bool {
        self.offload_aware
    }

    /// First-leg cost when the raw input is offloaded: transfer `d_0`,
    /// then run the first block (layers + First-exit classifier) on the
    /// edge share.
    fn offloaded_first_leg(&self, first: usize) -> f64 {
        let layers = self.profile.flops_range(0, first + 1);
        let exit = self.profile.layers[first].exit_flops;
        self.profile.input_bytes * 8.0 / self.env.edge_bandwidth_bps
            + self.env.edge_latency_s
            + (layers + exit) / self.env.edge_flops
    }

    /// Local first-leg cost including the survivor transfer of `d_1`
    /// (the transfer term of Eq. 2, which depends only on `first`).
    fn local_first_leg(&self, first: usize) -> f64 {
        let sigma1 = self.rates.as_slice()[first];
        let transfer = self.profile.layers[first].out_bytes * 8.0 / self.env.edge_bandwidth_bps
            + self.env.edge_latency_s;
        self.t_device(first) + (1.0 - sigma1) * transfer
    }

    /// The first-leg cost under the active mode: everything in `T(E)` that
    /// depends on the First-exit alone.
    fn first_leg(&self, first: usize) -> f64 {
        if self.offload_aware {
            self.local_first_leg(first)
                .min(self.offloaded_first_leg(first))
        } else {
            self.local_first_leg(first)
        }
    }

    /// Number of candidate exits `m`.
    pub fn num_exits(&self) -> usize {
        self.profile.num_layers()
    }

    /// The environment in use.
    pub fn env(&self) -> EnvParams {
        self.env
    }

    /// The model profile in use.
    pub fn profile(&self) -> &ModelProfile {
        self.profile
    }

    /// The exit rates in use.
    pub fn rates(&self) -> &ExitRates {
        self.rates
    }

    /// Device-tier cost `t^d` (Eq. 1): layers `0..=first` plus the
    /// First-exit classifier, at device speed.
    pub fn t_device(&self, first: usize) -> f64 {
        let layers = self.profile.flops_range(0, first + 1);
        let exit = self.profile.layers[first].exit_flops;
        (layers + exit) / self.env.device_flops
    }

    /// Edge-tier cost `t^e` (Eq. 2): layers `first+1..=second` plus the
    /// Second-exit classifier at edge speed, plus the device→edge transfer
    /// of the First-exit activation.
    pub fn t_edge(&self, first: usize, second: usize) -> f64 {
        let layers = self.profile.flops_range(first + 1, second + 1);
        let exit = self.profile.layers[second].exit_flops;
        let transfer = self.profile.layers[first].out_bytes * 8.0 / self.env.edge_bandwidth_bps;
        (layers + exit) / self.env.edge_flops + transfer + self.env.edge_latency_s
    }

    /// Cloud-tier cost `t^c` (Eq. 3): layers `second+1..m` plus the
    /// Third-exit classifier at cloud speed, plus the edge→cloud transfer
    /// of the Second-exit activation.
    pub fn t_cloud(&self, second: usize) -> f64 {
        let m = self.num_exits();
        let layers = self.profile.flops_range(second + 1, m);
        let exit = self.profile.layers[m - 1].exit_flops;
        let transfer = self.profile.layers[second].out_bytes * 8.0 / self.env.cloud_bandwidth_bps;
        (layers + exit) / self.env.cloud_flops + transfer + self.env.cloud_latency_s
    }

    /// Expected completion time `T(E)` for a full combo (Eq. 4 with
    /// `σ_3 = 1`): `t_d + (1−σ_1)·t_e + (1−σ_2)·t_c`.
    ///
    /// # Errors
    ///
    /// Returns [`DnnError::InvalidExitCombo`] for an ill-formed combo.
    pub fn total(&self, combo: ExitCombo) -> Result<f64, DnnError> {
        let combo = ExitCombo::new(combo.first, combo.second, combo.third, self.num_exits())?;
        let s1 = self.rates.rate(combo.first)?;
        let s2 = self.rates.rate(combo.second)?;
        // Edge-block compute (the d_1 transfer term of Eq. 2 lives in the
        // first leg, where its dependence on the First-exit belongs).
        let edge_compute = (self.profile.flops_range(combo.first + 1, combo.second + 1)
            + self.profile.layers[combo.second].exit_flops)
            / self.env.edge_flops;
        Ok(self.first_leg(combo.first)
            + (1.0 - s1) * edge_compute
            + (1.0 - s2) * self.t_cloud(combo.second))
    }

    /// Two-exit cost `T({exit_i, exit_m, −})` of Theorem 1 (Eq. 5): the
    /// ME-DNN split in two, device block ending at exit `i`, everything
    /// else on the edge.
    ///
    /// # Errors
    ///
    /// Returns [`DnnError::IndexOutOfRange`] when `first >= m−1`.
    pub fn two_exit(&self, first: usize) -> Result<f64, DnnError> {
        let m = self.num_exits();
        if first + 1 >= m {
            return Err(DnnError::IndexOutOfRange {
                what: "first exit",
                index: first,
                len: m - 1,
            });
        }
        let s1 = self.rates.rate(first)?;
        let rest = self.profile.flops_range(first + 1, m) + self.profile.layers[m - 1].exit_flops;
        Ok(self.first_leg(first) + (1.0 - s1) * rest / self.env.edge_flops)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use leime_dnn::{zoo, ExitSpec, ModelProfile};
    use leime_workload::ExitRateModel;

    fn setup() -> (ModelProfile, ExitRates) {
        let chain = zoo::vgg16(32, 10);
        let profile = ModelProfile::from_chain(&chain, ExitSpec::default()).unwrap();
        let rates = ExitRateModel::cifar_like().rates_for_chain(&chain);
        (profile, rates)
    }

    #[test]
    fn rejects_mismatched_rates() {
        let (profile, _) = setup();
        let bad = ExitRates::new(vec![0.5, 1.0]).unwrap();
        assert!(CostModel::new(&profile, &bad, EnvParams::raspberry_pi()).is_err());
    }

    #[test]
    fn rejects_bad_env() {
        let (profile, rates) = setup();
        let mut env = EnvParams::raspberry_pi();
        env.cloud_flops = -1.0;
        assert!(CostModel::new(&profile, &rates, env).is_err());
    }

    #[test]
    fn total_decomposes_into_tiers() {
        let (profile, rates) = setup();
        let cm = CostModel::new(&profile, &rates, EnvParams::raspberry_pi()).unwrap();
        let m = cm.num_exits();
        let combo = ExitCombo::new(2, 7, m - 1, m).unwrap();
        let s1 = rates.rate(2).unwrap();
        let s2 = rates.rate(7).unwrap();
        let manual = cm.t_device(2) + (1.0 - s1) * cm.t_edge(2, 7) + (1.0 - s2) * cm.t_cloud(7);
        assert!((cm.total(combo).unwrap() - manual).abs() < 1e-15);
    }

    #[test]
    fn higher_exit_rate_reduces_cost() {
        // Same topology, easier dataset -> lower expected TCT.
        let chain = zoo::vgg16(32, 10);
        let profile = ModelProfile::from_chain(&chain, ExitSpec::default()).unwrap();
        let easy = ExitRateModel::new(0.15, 0.15).rates_for_chain(&chain);
        let hard = ExitRateModel::new(0.7, 0.15).rates_for_chain(&chain);
        let env = EnvParams::raspberry_pi();
        let m = chain.num_layers();
        let combo = ExitCombo::new(1, 6, m - 1, m).unwrap();
        let cm_easy = CostModel::new(&profile, &easy, env).unwrap();
        let cm_hard = CostModel::new(&profile, &hard, env).unwrap();
        assert!(cm_easy.total(combo).unwrap() < cm_hard.total(combo).unwrap());
    }

    #[test]
    fn slower_network_increases_cost() {
        let (profile, rates) = setup();
        let fast = EnvParams::raspberry_pi().with_edge_link(30e6, 0.01);
        let slow = EnvParams::raspberry_pi().with_edge_link(1e6, 0.2);
        let m = profile.num_layers();
        let combo = ExitCombo::new(1, 6, m - 1, m).unwrap();
        let cf = CostModel::new(&profile, &rates, fast).unwrap();
        let cs = CostModel::new(&profile, &rates, slow).unwrap();
        assert!(cf.total(combo).unwrap() < cs.total(combo).unwrap());
    }

    #[test]
    fn two_exit_bounds() {
        let (profile, rates) = setup();
        let cm = CostModel::new(&profile, &rates, EnvParams::raspberry_pi()).unwrap();
        assert!(cm.two_exit(0).is_ok());
        assert!(cm.two_exit(cm.num_exits() - 1).is_err());
    }

    #[test]
    fn total_rejects_bad_combo() {
        let (profile, rates) = setup();
        let cm = CostModel::new(&profile, &rates, EnvParams::raspberry_pi()).unwrap();
        let bad = ExitCombo {
            first: 5,
            second: 2,
            third: cm.num_exits() - 1,
        };
        assert!(cm.total(bad).is_err());
    }
}
