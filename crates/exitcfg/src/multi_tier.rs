//! Multi-tier exit setting — a generalisation of the paper's
//! device/edge/cloud formulation to an arbitrary compute hierarchy
//! (device → gateway → edge → regional DC → cloud, …).
//!
//! The paper fixes three exits because its testbed has three tiers; the
//! cost structure, however, is a chain: block `j` runs on tier `j`, and
//! only tasks that failed to exit at block `j-1`'s exit continue. That
//! makes the optimal `k`-exit placement a shortest-path problem solvable
//! by dynamic programming in `O(k·m²)` — this module implements it and
//! the 3-tier case reduces exactly to the paper's `T(E)` (verified by
//! tests against [`crate::exhaustive`]).

use crate::{CostModel, EnvParams};
use leime_dnn::{DnnError, ExitRates, ModelProfile};
use leime_invariant as invariant;
use serde::{Deserialize, Serialize};

/// One tier of the compute hierarchy.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TierEnv {
    /// Compute rate of this tier in FLOPS.
    pub flops: f64,
    /// Bandwidth of the link *into* this tier (bits/second). Ignored for
    /// tier 0 (tasks originate there).
    pub uplink_bandwidth_bps: f64,
    /// Latency of the link into this tier (seconds). Ignored for tier 0.
    pub uplink_latency_s: f64,
}

impl TierEnv {
    // `!(x > 0)` deliberately rejects NaN as well as non-positive values.
    #[allow(clippy::neg_cmp_op_on_partial_ord)]
    fn validate(&self, is_first: bool) -> Result<(), String> {
        if !(self.flops > 0.0 && self.flops.is_finite()) {
            return Err(format!("tier flops invalid: {}", self.flops));
        }
        if !is_first {
            if !(self.uplink_bandwidth_bps > 0.0 && self.uplink_bandwidth_bps.is_finite()) {
                return Err(format!(
                    "tier uplink bandwidth invalid: {}",
                    self.uplink_bandwidth_bps
                ));
            }
            if !(self.uplink_latency_s >= 0.0) {
                return Err(format!(
                    "tier uplink latency invalid: {}",
                    self.uplink_latency_s
                ));
            }
        }
        Ok(())
    }
}

/// Converts the paper's three-tier environment into a tier list.
pub fn tiers_from_env(env: EnvParams) -> [TierEnv; 3] {
    [
        TierEnv {
            flops: env.device_flops,
            uplink_bandwidth_bps: f64::INFINITY,
            uplink_latency_s: 0.0,
        },
        TierEnv {
            flops: env.edge_flops,
            uplink_bandwidth_bps: env.edge_bandwidth_bps,
            uplink_latency_s: env.edge_latency_s,
        },
        TierEnv {
            flops: env.cloud_flops,
            uplink_bandwidth_bps: env.cloud_bandwidth_bps,
            uplink_latency_s: env.cloud_latency_s,
        },
    ]
}

/// Optimal `k`-exit placement over a `k`-tier hierarchy by dynamic
/// programming.
///
/// Returns the exit layer index per tier (strictly increasing, last one
/// `m−1`) and the expected completion time
///
/// ```text
/// T = Σ_j (1 − σ_{e_{j−1}}) · [ transfer_j + block_j / F_j ]
/// ```
///
/// with `σ_{e_{−1}} = 0` and `transfer_0 = 0` — the paper's Eq. 4
/// generalised; for `k = 3` this equals `CostModel::total`.
///
/// # Errors
///
/// Returns [`DnnError::InvalidExitCombo`] if fewer than 2 tiers are given
/// or the chain cannot host `k` exits, [`DnnError::ExitRateMismatch`] on
/// a rate/profile length mismatch, and [`DnnError::InvalidExitRate`] for
/// invalid tier parameters.
pub fn multi_tier_exits(
    profile: &ModelProfile,
    rates: &ExitRates,
    tiers: &[TierEnv],
) -> Result<(Vec<usize>, f64), DnnError> {
    let k = tiers.len();
    let m = profile.num_layers();
    if k < 2 {
        return Err(DnnError::InvalidExitCombo {
            reason: format!("need at least 2 tiers, got {k}"),
        });
    }
    if m < k {
        return Err(DnnError::InvalidExitCombo {
            reason: format!("chain of {m} layers cannot host {k} exits"),
        });
    }
    if rates.len() != m {
        return Err(DnnError::ExitRateMismatch {
            expected: m,
            actual: rates.len(),
        });
    }
    for (j, t) in tiers.iter().enumerate() {
        t.validate(j == 0)
            .map_err(|reason| DnnError::InvalidExitRate { reason })?;
    }

    let sigma = rates.as_slice();
    let prefix: Vec<f64> = {
        let mut p = Vec::with_capacity(m + 1);
        p.push(0.0);
        let mut acc = 0.0;
        for l in &profile.layers {
            acc += l.layer_flops;
            p.push(acc);
        }
        p
    };
    // block(lo, hi, tier): compute cost of layers lo..=hi plus exit_hi.
    let block = |lo: usize, hi: usize, f: f64| -> f64 {
        (prefix[hi + 1] - prefix[lo] + profile.layers[hi].exit_flops) / f
    };

    // dp[j][e]: best cost of tiers 0..=j with tier j exiting at layer e.
    // parent[j][e]: the previous tier's exit achieving it.
    let inf = f64::INFINITY;
    let mut dp = vec![vec![inf; m]; k];
    let mut parent = vec![vec![usize::MAX; m]; k];

    // Tier 0: layers 0..=e at device speed, no transfer, all tasks.
    // Tier j's exit can be at most m-1-(k-1-j) to leave room downstream.
    let cap = |j: usize| m - 1 - (k - 1 - j);
    #[allow(clippy::needless_range_loop)] // e indexes dp and profile in lockstep
    for e in 0..=cap(0) {
        dp[0][e] = block(0, e, tiers[0].flops);
    }
    for j in 1..k {
        let lo_e = j; // at least one layer per upstream tier
        let hi_e = cap(j);
        for e in lo_e..=hi_e {
            for prev in (j - 1)..e {
                if dp[j - 1][prev].is_infinite() {
                    continue;
                }
                let survive = 1.0 - sigma[prev];
                let transfer = profile.layers[prev].out_bytes * 8.0 / tiers[j].uplink_bandwidth_bps
                    + tiers[j].uplink_latency_s;
                let cost =
                    dp[j - 1][prev] + survive * (transfer + block(prev + 1, e, tiers[j].flops));
                if cost < dp[j][e] {
                    dp[j][e] = cost;
                    parent[j][e] = prev;
                }
            }
        }
    }

    // Reconstruct from the mandatory final exit at m-1.
    let total = dp[k - 1][m - 1];
    if !total.is_finite() {
        return Err(DnnError::InvalidExitCombo {
            reason: "no feasible placement".to_string(),
        });
    }
    let mut exits = vec![0usize; k];
    exits[k - 1] = m - 1;
    for j in (1..k).rev() {
        exits[j - 1] = parent[j][exits[j]];
    }
    invariant::check_increasing_exits("exitcfg.multi_tier.exits", &exits, m);
    invariant::check_finite_cost("exitcfg.multi_tier.total", total);
    Ok((exits, total))
}

/// Convenience: run the DP on the paper's 3-tier environment so results
/// are directly comparable with [`CostModel`]/[`crate::branch_and_bound`].
///
/// # Errors
///
/// Same conditions as [`multi_tier_exits`].
pub fn three_tier_exits(cost: &CostModel<'_>) -> Result<(Vec<usize>, f64), DnnError> {
    multi_tier_exits(cost.profile(), cost.rates(), &tiers_from_env(cost.env()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exhaustive;
    use leime_dnn::{zoo, ExitSpec, ModelProfile};
    use leime_workload::ExitRateModel;

    fn setup() -> (ModelProfile, ExitRates) {
        let chain = zoo::inception_v3(75, 10);
        let profile = ModelProfile::from_chain(&chain, ExitSpec::default()).unwrap();
        let rates = ExitRateModel::cifar_like().rates_for_chain(&chain);
        (profile, rates)
    }

    #[test]
    fn three_tier_dp_matches_exhaustive() {
        let (profile, rates) = setup();
        for env in [EnvParams::raspberry_pi(), EnvParams::jetson_nano()] {
            let cost = CostModel::new(&profile, &rates, env).unwrap();
            let (exits, t_dp) = three_tier_exits(&cost).unwrap();
            let (combo, t_ex) = exhaustive(&cost).unwrap();
            assert!(
                (t_dp - t_ex).abs() < 1e-9 * t_ex,
                "dp {t_dp} vs exhaustive {t_ex}"
            );
            assert_eq!(exits, vec![combo.first, combo.second, combo.third]);
        }
    }

    #[test]
    fn exits_are_strictly_increasing_and_terminal() {
        let (profile, rates) = setup();
        let m = profile.num_layers();
        for k in 2..=5usize {
            let tiers: Vec<TierEnv> = (0..k)
                .map(|j| TierEnv {
                    flops: 1e9 * 10f64.powi(j as i32),
                    uplink_bandwidth_bps: 10e6 * (j as f64 + 1.0),
                    uplink_latency_s: 0.02,
                })
                .collect();
            let (exits, t) = multi_tier_exits(&profile, &rates, &tiers).unwrap();
            assert_eq!(exits.len(), k);
            assert_eq!(*exits.last().unwrap(), m - 1);
            for w in exits.windows(2) {
                assert!(w[0] < w[1], "exits not increasing: {exits:?}");
            }
            assert!(t.is_finite() && t > 0.0);
        }
    }

    #[test]
    fn more_tiers_never_hurt() {
        // A 4-tier hierarchy that contains the 3-tier one as a special
        // case (the extra tier is a copy of the edge) can only do at
        // least as well... it must at minimum stay within a small factor,
        // and in this construction strictly adds an intermediate option.
        let (profile, rates) = setup();
        let env = EnvParams::raspberry_pi();
        let t3 = {
            let tiers = tiers_from_env(env);
            multi_tier_exits(&profile, &rates, &tiers).unwrap().1
        };
        let t4 = {
            let base = tiers_from_env(env);
            // Insert a gateway between device and edge: half the edge's
            // speed, double its bandwidth.
            let gateway = TierEnv {
                flops: base[1].flops / 2.0,
                uplink_bandwidth_bps: base[1].uplink_bandwidth_bps * 2.0,
                uplink_latency_s: base[1].uplink_latency_s / 2.0,
            };
            let tiers = [base[0], gateway, base[1], base[2]];
            multi_tier_exits(&profile, &rates, &tiers).unwrap().1
        };
        // The 4-tier path is forced through the gateway (one more exit),
        // so it is not strictly dominated, but it must stay comparable.
        assert!(t4 < t3 * 1.5, "4-tier {t4} vs 3-tier {t3}");
    }

    #[test]
    fn two_tier_case_is_theorem1_quantity() {
        // k = 2 reduces to the paper's T({exit_i, exit_m, -}) minimised
        // over i.
        let (profile, rates) = setup();
        let env = EnvParams::raspberry_pi();
        let cost = CostModel::new(&profile, &rates, env).unwrap();
        let tiers = [
            TierEnv {
                flops: env.device_flops,
                uplink_bandwidth_bps: f64::INFINITY,
                uplink_latency_s: 0.0,
            },
            TierEnv {
                flops: env.edge_flops,
                uplink_bandwidth_bps: env.edge_bandwidth_bps,
                uplink_latency_s: env.edge_latency_s,
            },
        ];
        let (exits, t_dp) = multi_tier_exits(&profile, &rates, &tiers).unwrap();
        let m = profile.num_layers();
        let best_two_exit = (0..m - 1)
            .map(|i| cost.two_exit(i).unwrap())
            .fold(f64::INFINITY, f64::min);
        assert!(
            (t_dp - best_two_exit).abs() < 1e-9 * best_two_exit,
            "dp {t_dp} vs two-exit argmin {best_two_exit}"
        );
        assert_eq!(exits.len(), 2);
    }

    #[test]
    fn rejects_bad_inputs() {
        let (profile, rates) = setup();
        let one_tier = [TierEnv {
            flops: 1e9,
            uplink_bandwidth_bps: f64::INFINITY,
            uplink_latency_s: 0.0,
        }];
        assert!(multi_tier_exits(&profile, &rates, &one_tier).is_err());
        let bad = [
            one_tier[0],
            TierEnv {
                flops: -1.0,
                uplink_bandwidth_bps: 1e6,
                uplink_latency_s: 0.0,
            },
        ];
        assert!(multi_tier_exits(&profile, &rates, &bad).is_err());
    }
}
