//! # leime-exitcfg
//!
//! Model-level exit setting — the first core contribution of the LEIME
//! paper (§III-C).
//!
//! Given a chain DNN profile, per-candidate exit rates, and an environment
//! description (device/edge/cloud FLOPS, link bandwidths and latencies),
//! the exit-setting problem `P0` picks a First/Second/Third exit triple
//! minimising the expected task completion time
//!
//! ```text
//! T(E) = t_d + (1 − σ_1)·t_e + (1 − σ_2)·t_c            (Eq. 4, σ_3 = 1)
//! ```
//!
//! where `t_d`, `t_e`, `t_c` are the per-tier costs of Eq. 1–3.
//!
//! * [`EnvParams`] — the environment description with presets matching the
//!   paper's testbed tiers,
//! * [`CostModel`] — evaluates Eq. 1–4 for any combo, plus the two-exit
//!   cost of Theorem 1,
//! * [`branch_and_bound`] — the paper's `O(m ln m)`-average search with
//!   Theorem-1 pruning, instrumented with evaluation counts (Theorem 2),
//! * [`exhaustive`] — the `O(m²)` reference used to verify optimality,
//! * baseline strategies — min-computation, min-transmission (Edgent-style),
//!   mean-division and DDNN-style strategies (Fig. 10a / §IV benchmarks),
//! * [`par_sweep`] — deterministic parallel grid sweeps (zoo ×
//!   environments) over the branch-and-bound solver, byte-identical to
//!   the sequential [`seq_sweep`] at every worker count.

mod baselines;
mod bb;
mod cost;
mod env;
mod exhaustive;
mod sweep;

pub mod multi_tier;

pub use baselines::{ddnn_style, edgent_style, mean_division, min_computation, min_transmission};
pub use bb::{branch_and_bound, SearchStats};
pub use cost::CostModel;
pub use env::EnvParams;
pub use exhaustive::exhaustive;
pub use multi_tier::{multi_tier_exits, three_tier_exits, tiers_from_env, TierEnv};
pub use sweep::{par_sweep, seq_sweep, SweepCell, SweepError, SweepResult};
