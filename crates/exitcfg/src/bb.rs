use crate::CostModel;
use leime_dnn::{DnnError, ExitCombo};
use leime_invariant as invariant;
use serde::{Deserialize, Serialize};

/// Instrumentation of one branch-and-bound run, used to validate the
/// paper's Theorem 2 (`O(m ln m)` average comparisons) empirically.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct SearchStats {
    /// Evaluations of the two-exit bound `T({exit_i, exit_m, −})` (Eq. 5).
    pub two_exit_evals: u64,
    /// Evaluations of the full three-exit cost `T(E)` (Eq. 4).
    pub combo_evals: u64,
    /// Number of search rounds (distinct `i_k` candidates tried).
    pub rounds: u64,
}

impl SearchStats {
    /// Total cost evaluations, the quantity Theorem 2 bounds.
    pub fn total_evals(&self) -> u64 {
        self.two_exit_evals + self.combo_evals
    }
}

/// The paper's branch-and-bound exit-setting search (§III-C).
///
/// Theorem 1: under monotone exit rates, if
/// `T({exit_i1, exit_m, −}) ≤ T({exit_i2, exit_m, −})` with `i1 < i2`, then
/// for every Second-exit `j` the full combo with First-exit `i1` beats the
/// one with `i2`. Hence each round takes the two-exit argmin `i_k` over the
/// current range `[0, upbound)`, evaluates only combos with First-exit
/// `i_k` (all Second-exit choices `j ∈ (i_k, m−1)`), and shrinks the range
/// to `[0, i_k)` — every skipped First-exit is dominated by some `i_k`.
/// The union of the per-round bests is the global optimum (Eq. 7).
///
/// Returns the optimal combo, its cost, and search statistics.
///
/// # Errors
///
/// Returns [`DnnError::InvalidExitCombo`] if the chain has fewer than 3
/// layers.
pub fn branch_and_bound(cost: &CostModel<'_>) -> Result<(ExitCombo, f64, SearchStats), DnnError> {
    let m = cost.num_exits();
    if m < 3 {
        return Err(DnnError::InvalidExitCombo {
            reason: format!("chain of {m} layers cannot host 3 exits"),
        });
    }
    // Theorem 1's dominance argument — and hence the soundness of every
    // prune below — requires monotone cumulative exit rates.
    invariant::check_monotone("exitcfg.bb.exit_rates", cost.rates().as_slice());
    let mut stats = SearchStats::default();
    let mut best: Option<(ExitCombo, f64)> = None;

    // Two-exit bounds are reused across rounds; memoise them.
    let mut two_exit_cache: Vec<Option<f64>> = vec![None; m - 1];
    let mut two_exit = |i: usize, stats: &mut SearchStats| -> Result<f64, DnnError> {
        if let Some(v) = two_exit_cache[i] {
            return Ok(v);
        }
        stats.two_exit_evals += 1;
        let v = cost.two_exit(i)?;
        two_exit_cache[i] = Some(v);
        Ok(v)
    };

    // First exits range over [0, m-2): the First-exit must leave room for a
    // distinct Second-exit below the fixed Third-exit (paper: upbound
    // initialised to m-2 in 1-based numbering).
    let mut upbound = m - 2;
    while upbound > 0 {
        stats.rounds += 1;
        // i_k = argmin of the two-exit bound over the remaining range.
        let mut ik = 0usize;
        let mut ik_val = f64::INFINITY;
        for i in 0..upbound {
            let v = two_exit(i, &mut stats)?;
            if v < ik_val {
                ik_val = v;
                ik = i;
            }
        }
        // Evaluate all combos with First-exit = i_k.
        for second in ik + 1..m - 1 {
            let combo = ExitCombo::new(ik, second, m - 1, m)?;
            stats.combo_evals += 1;
            let t = cost.total(combo)?;
            match best {
                Some((_, bt)) if bt <= t => {}
                _ => best = Some((combo, t)),
            }
        }
        upbound = ik;
    }

    let (combo, t) = best.ok_or_else(|| DnnError::InvalidExitCombo {
        reason: "branch-and-bound finished without evaluating any combo".to_string(),
    })?;
    invariant::check_finite_cost("exitcfg.bb.total", t);
    Ok((combo, t, stats))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{exhaustive, EnvParams};
    use leime_dnn::{zoo, DnnChain, ExitSpec, ModelProfile};
    use leime_workload::ExitRateModel;

    fn solve_both(
        chain: &DnnChain,
        env: EnvParams,
        model: ExitRateModel,
    ) -> (f64, f64, SearchStats) {
        let profile = ModelProfile::from_chain(chain, ExitSpec::default()).unwrap();
        let rates = model.rates_for_chain(chain);
        let cm = CostModel::new(&profile, &rates, env).unwrap();
        let (_, bb_cost, stats) = branch_and_bound(&cm).unwrap();
        let (_, ex_cost) = exhaustive(&cm).unwrap();
        (bb_cost, ex_cost, stats)
    }

    #[test]
    fn matches_exhaustive_on_all_zoo_models() {
        for chain in zoo::cifar_models(10) {
            for env in [EnvParams::raspberry_pi(), EnvParams::jetson_nano()] {
                let (bb, ex, _) = solve_both(&chain, env, ExitRateModel::cifar_like());
                assert!(
                    (bb - ex).abs() < 1e-12,
                    "{}: bb {bb} != exhaustive {ex}",
                    chain.name()
                );
            }
        }
    }

    #[test]
    fn matches_exhaustive_across_environments() {
        let chain = zoo::inception_v3(299, 10);
        for bw in [1e6, 4e6, 16e6, 64e6] {
            for lat in [0.01, 0.1, 0.2] {
                let env = EnvParams::raspberry_pi().with_edge_link(bw, lat);
                let (bb, ex, _) = solve_both(&chain, env, ExitRateModel::cifar_like());
                assert!((bb - ex).abs() < 1e-12, "bw {bw} lat {lat}: {bb} vs {ex}");
            }
        }
    }

    #[test]
    fn matches_exhaustive_across_datasets() {
        let chain = zoo::resnet34(32, 10);
        for mid in [0.1, 0.3, 0.5, 0.8] {
            let model = ExitRateModel::new(mid, 0.15);
            let (bb, ex, _) = solve_both(&chain, EnvParams::raspberry_pi(), model);
            assert!((bb - ex).abs() < 1e-12, "midpoint {mid}: {bb} vs {ex}");
        }
    }

    #[test]
    fn prunes_versus_exhaustive() {
        // B&B must do fewer full-combo evaluations than the exhaustive
        // (m-1)(m-2)/2 on a realistic instance.
        let chain = zoo::inception_v3(299, 10);
        let profile = ModelProfile::from_chain(&chain, ExitSpec::default()).unwrap();
        let rates = ExitRateModel::cifar_like().rates_for_chain(&chain);
        let cm = CostModel::new(&profile, &rates, EnvParams::raspberry_pi()).unwrap();
        let (_, _, stats) = branch_and_bound(&cm).unwrap();
        let m = cm.num_exits() as u64;
        let exhaustive_combos = (m - 1) * (m - 2) / 2;
        assert!(
            stats.combo_evals < exhaustive_combos,
            "no pruning: {} vs {exhaustive_combos}",
            stats.combo_evals
        );
        assert!(stats.rounds >= 1);
        assert!(stats.total_evals() > 0);
    }

    #[test]
    fn rejects_tiny_chain() {
        let chain = zoo::vgg16(32, 10);
        let mut profile = ModelProfile::from_chain(&chain, ExitSpec::default()).unwrap();
        profile.layers.truncate(2);
        let rates = leime_dnn::ExitRates::new(vec![0.4, 1.0]).unwrap();
        let cm = CostModel::new(&profile, &rates, EnvParams::raspberry_pi()).unwrap();
        assert!(branch_and_bound(&cm).is_err());
    }
}
