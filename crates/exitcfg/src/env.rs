use serde::{Deserialize, Serialize};

/// Environment parameters for the exit-setting cost model: the average
/// capabilities the paper denotes `F^d_av`, `F^e_av`, `F^c` and the
/// device↔edge / edge↔cloud link characteristics (`B^e_av`, `L^e_av`,
/// `B^c_av`, `L^c_av`; Table I).
///
/// All compute rates are FLOPS, bandwidths bits/second, latencies seconds.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct EnvParams {
    /// Average available device FLOPS `F^d_av`.
    pub device_flops: f64,
    /// Average available edge FLOPS `F^e_av` (the share this device sees).
    pub edge_flops: f64,
    /// Cloud FLOPS `F^c`.
    pub cloud_flops: f64,
    /// Device→edge bandwidth `B^e_av` in bits/second.
    pub edge_bandwidth_bps: f64,
    /// Device→edge connection latency `L^e_av` in seconds.
    pub edge_latency_s: f64,
    /// Edge→cloud bandwidth `B^c_av` in bits/second.
    pub cloud_bandwidth_bps: f64,
    /// Edge→cloud connection latency `L^c_av` in seconds.
    pub cloud_latency_s: f64,
}

impl EnvParams {
    /// Validates that all rates are positive and latencies non-negative.
    ///
    /// # Errors
    ///
    /// Returns a description of the first violated constraint.
    pub fn validate(&self) -> Result<(), String> {
        let pos = [
            ("device_flops", self.device_flops),
            ("edge_flops", self.edge_flops),
            ("cloud_flops", self.cloud_flops),
            ("edge_bandwidth_bps", self.edge_bandwidth_bps),
            ("cloud_bandwidth_bps", self.cloud_bandwidth_bps),
        ];
        for (name, v) in pos {
            if !(v.is_finite() && v > 0.0) {
                return Err(format!("{name} must be positive, got {v}"));
            }
        }
        let nonneg = [
            ("edge_latency_s", self.edge_latency_s),
            ("cloud_latency_s", self.cloud_latency_s),
        ];
        for (name, v) in nonneg {
            if !(v.is_finite() && v >= 0.0) {
                return Err(format!("{name} must be non-negative, got {v}"));
            }
        }
        Ok(())
    }

    /// The paper's weak end device: a Raspberry Pi 3B+ behind WiFi, with
    /// the i7 edge and V100 cloud. Effective DNN throughputs (not peak
    /// datasheet FLOPS) chosen to reproduce the paper's reported ratios:
    /// Nano ≈ 8.2× Pi, edge desktop ≫ device, V100 cloud ≫ edge.
    pub fn raspberry_pi() -> Self {
        EnvParams {
            device_flops: 1.0e9,
            edge_flops: 12.0e9,
            cloud_flops: 5.0e12,
            edge_bandwidth_bps: 10.0e6,
            edge_latency_s: 0.02,
            cloud_bandwidth_bps: 100.0e6,
            cloud_latency_s: 0.05,
        }
    }

    /// The paper's strong end device: a Jetson Nano (8.2× the Pi on
    /// Inception v3 per §II-A).
    pub fn jetson_nano() -> Self {
        EnvParams {
            device_flops: 8.2e9,
            ..EnvParams::raspberry_pi()
        }
    }

    /// Returns a copy with the device→edge link changed (Fig. 7 sweeps).
    pub fn with_edge_link(mut self, bandwidth_bps: f64, latency_s: f64) -> Self {
        self.edge_bandwidth_bps = bandwidth_bps;
        self.edge_latency_s = latency_s;
        self
    }

    /// Returns a copy with the effective edge FLOPS scaled by `factor` —
    /// models edge load (Fig. 2b) or a per-device share `p_i · F^e`.
    ///
    /// # Panics
    ///
    /// Panics if `factor` is not strictly positive.
    pub fn with_edge_scale(mut self, factor: f64) -> Self {
        assert!(factor > 0.0, "edge scale must be positive, got {factor}");
        self.edge_flops *= factor;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_are_valid() {
        assert!(EnvParams::raspberry_pi().validate().is_ok());
        assert!(EnvParams::jetson_nano().validate().is_ok());
    }

    #[test]
    fn nano_is_8x_pi() {
        let ratio = EnvParams::jetson_nano().device_flops / EnvParams::raspberry_pi().device_flops;
        assert!((ratio - 8.2).abs() < 1e-9);
    }

    #[test]
    fn validation_catches_bad_values() {
        let mut e = EnvParams::raspberry_pi();
        e.edge_bandwidth_bps = 0.0;
        assert!(e.validate().is_err());
        let mut e = EnvParams::raspberry_pi();
        e.edge_latency_s = -1.0;
        assert!(e.validate().is_err());
        let mut e = EnvParams::raspberry_pi();
        e.device_flops = f64::NAN;
        assert!(e.validate().is_err());
    }

    #[test]
    fn builders_modify_copies() {
        let base = EnvParams::raspberry_pi();
        let tweaked = base.with_edge_link(1e6, 0.2).with_edge_scale(0.5);
        assert_eq!(tweaked.edge_bandwidth_bps, 1e6);
        assert_eq!(tweaked.edge_latency_s, 0.2);
        assert_eq!(tweaked.edge_flops, base.edge_flops * 0.5);
        assert_eq!(base.edge_bandwidth_bps, 10e6); // untouched
    }
}
