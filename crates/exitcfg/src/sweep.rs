//! Parallel exit-setting sweeps.
//!
//! Calibration and the experiment harness repeatedly solve `P0` over a
//! grid — model zoo × environment perturbations (Fig. 10's benchmark
//! tables, the chaos sensitivity sweeps). Each cell is an independent
//! branch-and-bound run, so the grid shards across workers through
//! `leime-par` under the workspace determinism contract (DESIGN.md §11):
//! static sharding, results reduced in cell order, no randomness. For
//! every worker count, [`par_sweep`] returns exactly what [`seq_sweep`]
//! returns — combos, costs *and* [`SearchStats`] — a property pinned by
//! the `integration_par` golden tests.

use std::num::NonZeroUsize;

use leime_dnn::{DnnError, ExitCombo, ExitRates, ModelProfile};
use leime_invariant as invariant;
use leime_par::ParError;

use crate::{branch_and_bound, CostModel, EnvParams, SearchStats};

/// One cell of an exit-setting sweep: a profiled model, its exit rates,
/// and the environment to solve `P0` in.
#[derive(Debug, Clone)]
pub struct SweepCell {
    /// Profiled chain (layer FLOPS, activation sizes, exit classifiers).
    pub profile: ModelProfile,
    /// Cumulative exit rates for every candidate exit.
    pub rates: ExitRates,
    /// Device/edge/cloud environment for this cell.
    pub env: EnvParams,
    /// Solve with the offload-aware first leg
    /// ([`CostModel::new_offload_aware`]) instead of the paper-faithful
    /// Eq. 1–4 model.
    pub offload_aware: bool,
}

impl SweepCell {
    /// A paper-faithful cell (first block priced at device speed).
    pub fn new(profile: ModelProfile, rates: ExitRates, env: EnvParams) -> Self {
        SweepCell {
            profile,
            rates,
            env,
            offload_aware: false,
        }
    }
}

/// The optimum of one sweep cell.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SweepResult {
    /// Optimal exit triple.
    pub combo: ExitCombo,
    /// Its expected completion time `T(E)` (Eq. 4).
    pub cost: f64,
    /// Branch-and-bound instrumentation (Theorem 2 evidence).
    pub stats: SearchStats,
}

/// A failure during a sweep: either a cell was ill-formed or the
/// parallel layer itself broke.
#[derive(Debug, Clone, PartialEq)]
pub enum SweepError {
    /// A cell failed to solve (bad rates, tiny chain, invalid env).
    Dnn(DnnError),
    /// The parallel layer failed (shard panic, lost worker).
    Par(ParError),
}

impl std::fmt::Display for SweepError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SweepError::Dnn(e) => write!(f, "sweep cell failed: {e}"),
            SweepError::Par(e) => write!(f, "sweep execution failed: {e}"),
        }
    }
}

impl std::error::Error for SweepError {}

impl From<DnnError> for SweepError {
    fn from(e: DnnError) -> Self {
        SweepError::Dnn(e)
    }
}

impl From<ParError> for SweepError {
    fn from(e: ParError) -> Self {
        SweepError::Par(e)
    }
}

/// Solves one cell (the unit of work both sweep drivers share).
fn solve_cell(cell: &SweepCell) -> Result<SweepResult, DnnError> {
    let cost = if cell.offload_aware {
        CostModel::new_offload_aware(&cell.profile, &cell.rates, cell.env)?
    } else {
        CostModel::new(&cell.profile, &cell.rates, cell.env)?
    };
    let (combo, cost, stats) = branch_and_bound(&cost)?;
    Ok(SweepResult { combo, cost, stats })
}

/// Sequential reference sweep: solves every cell in order.
///
/// # Errors
///
/// Returns the first cell failure ([`DnnError`]).
pub fn seq_sweep(cells: &[SweepCell]) -> Result<Vec<SweepResult>, DnnError> {
    cells.iter().map(solve_cell).collect()
}

/// Parallel sweep: shards `cells` across up to `workers` threads and
/// returns results in cell order — identical (combo, cost, and
/// [`SearchStats`]) to [`seq_sweep`] at every worker count.
///
/// # Errors
///
/// Returns [`SweepError::Dnn`] for the first ill-formed cell (lowest
/// index, matching the sequential sweep's failure) and
/// [`SweepError::Par`] if a worker shard fails.
pub fn par_sweep(
    cells: &[SweepCell],
    workers: NonZeroUsize,
) -> Result<Vec<SweepResult>, SweepError> {
    let outs = leime_par::par_map_shards(cells, workers, |_, cell| solve_cell(cell))?;
    let results: Vec<SweepResult> = outs.into_iter().collect::<Result<_, _>>()?;
    for r in &results {
        // Eq. 4 sanity on the reduced results (guard L5/S1: the parallel
        // entry point re-checks what the per-cell solver promised).
        invariant::check_finite_cost("exitcfg.sweep.total", r.cost);
    }
    Ok(results)
}

#[cfg(test)]
mod tests {
    use super::*;
    use leime_dnn::{zoo, ExitSpec};
    use leime_workload::ExitRateModel;

    fn cells() -> Vec<SweepCell> {
        let mut out = Vec::new();
        for chain in zoo::cifar_models(10) {
            let profile = ModelProfile::from_chain(&chain, ExitSpec::default()).unwrap();
            let rates = ExitRateModel::cifar_like().rates_for_chain(&chain);
            for env in [EnvParams::raspberry_pi(), EnvParams::jetson_nano()] {
                out.push(SweepCell::new(profile.clone(), rates.clone(), env));
            }
        }
        out
    }

    #[test]
    fn par_matches_seq_at_every_worker_count() {
        let cells = cells();
        let seq = seq_sweep(&cells).unwrap();
        for workers in [1usize, 2, 3, 8, 16] {
            let par = par_sweep(&cells, NonZeroUsize::new(workers).unwrap()).unwrap();
            assert_eq!(par.len(), seq.len());
            for (i, (p, s)) in par.iter().zip(&seq).enumerate() {
                assert_eq!(p.combo, s.combo, "cell {i} combo, workers {workers}");
                assert_eq!(
                    p.cost.to_bits(),
                    s.cost.to_bits(),
                    "cell {i} cost, workers {workers}"
                );
                assert_eq!(p.stats, s.stats, "cell {i} stats, workers {workers}");
            }
        }
    }

    #[test]
    fn offload_aware_cells_solve_too() {
        let mut cs = cells();
        for c in &mut cs {
            c.offload_aware = true;
        }
        let seq = seq_sweep(&cs).unwrap();
        let par = par_sweep(&cs, NonZeroUsize::new(4).unwrap()).unwrap();
        assert_eq!(seq.len(), par.len());
        for (p, s) in par.iter().zip(&seq) {
            assert_eq!(p.combo, s.combo);
            assert_eq!(p.cost.to_bits(), s.cost.to_bits());
        }
    }

    #[test]
    fn bad_cell_surfaces_lowest_index_error() {
        let mut cs = cells();
        // Corrupt two cells; the parallel sweep must report the first.
        cs[3].env.cloud_flops = -1.0;
        cs[5].env.cloud_flops = -1.0;
        let seq_err = seq_sweep(&cs).unwrap_err();
        let par_err = par_sweep(&cs, NonZeroUsize::new(4).unwrap()).unwrap_err();
        assert_eq!(SweepError::Dnn(seq_err), par_err);
    }

    #[test]
    fn empty_sweep_is_empty() {
        assert!(par_sweep(&[], NonZeroUsize::MIN).unwrap().is_empty());
    }
}
