//! Baseline exit-setting strategies.
//!
//! The paper's Fig. 10(a) ablates LEIME's exit setting against
//! minimisation-of-computation, minimisation-of-transmission and
//! average-division heuristics; its system benchmarks (§IV-A) include
//! DDNN-style (small data + high exit probability) and Edgent-style
//! (smallest intermediate data) placements.

use leime_dnn::{DnnError, ExitCombo, ExitRates, ModelProfile};

/// `min_comp`: place exits as early as possible to minimise computation
/// before each exit — First-exit after layer 0, Second-exit after layer 1.
///
/// # Errors
///
/// Returns [`DnnError::InvalidExitCombo`] for chains shorter than 3 layers.
pub fn min_computation(profile: &ModelProfile) -> Result<ExitCombo, DnnError> {
    let m = profile.num_layers();
    ExitCombo::new(0, 1, m - 1, m)
}

/// `min_tran`: place exits where the intermediate activations are smallest,
/// minimising transmission volume (ignores where compute lives).
///
/// The First-exit takes the globally smallest activation among positions
/// that leave room for a Second-exit; the Second-exit takes the smallest
/// activation after it.
///
/// # Errors
///
/// Returns [`DnnError::InvalidExitCombo`] for chains shorter than 3 layers.
pub fn min_transmission(profile: &ModelProfile) -> Result<ExitCombo, DnnError> {
    let m = profile.num_layers();
    if m < 3 {
        return Err(DnnError::InvalidExitCombo {
            reason: format!("chain of {m} layers cannot host 3 exits"),
        });
    }
    // `m >= 3` makes every range below non-empty, so the fallback to `lo`
    // is unreachable; it just keeps the closure total.
    let argmin = |lo: usize, hi: usize| -> usize {
        (lo..hi)
            .min_by(|&a, &b| {
                profile.layers[a]
                    .out_bytes
                    .total_cmp(&profile.layers[b].out_bytes)
            })
            .unwrap_or(lo)
    };
    let first = argmin(0, m - 2);
    let second = argmin(first + 1, m - 1);
    ExitCombo::new(first, second, m - 1, m)
}

/// Edgent-style placement — identical heuristic to [`min_transmission`]
/// ("exits are intuitively set at the position where intermediate data
/// size is the smallest", §IV-A).
///
/// # Errors
///
/// Same conditions as [`min_transmission`].
pub fn edgent_style(profile: &ModelProfile) -> Result<ExitCombo, DnnError> {
    min_transmission(profile)
}

/// `mean`: average division — exits at one-third and two-thirds of the
/// layer count.
///
/// # Errors
///
/// Returns [`DnnError::InvalidExitCombo`] for chains shorter than 3 layers.
pub fn mean_division(profile: &ModelProfile) -> Result<ExitCombo, DnnError> {
    let m = profile.num_layers();
    if m < 3 {
        return Err(DnnError::InvalidExitCombo {
            reason: format!("chain of {m} layers cannot host 3 exits"),
        });
    }
    let first = (m / 3).saturating_sub(1).min(m - 3);
    let second = (2 * m / 3 - 1).clamp(first + 1, m - 2);
    ExitCombo::new(first, second, m - 1, m)
}

/// DDNN-style placement: exits at layers with *small intermediate data and
/// high exit probability* (§IV-A). Scores each candidate by
/// `σ_i / d_i` (exit probability per transmitted byte) and picks the two
/// best-scoring positions in order.
///
/// # Errors
///
/// Returns [`DnnError::InvalidExitCombo`] for chains shorter than 3 layers
/// or [`DnnError::ExitRateMismatch`] when rates do not cover the chain.
pub fn ddnn_style(profile: &ModelProfile, rates: &ExitRates) -> Result<ExitCombo, DnnError> {
    let m = profile.num_layers();
    if m < 3 {
        return Err(DnnError::InvalidExitCombo {
            reason: format!("chain of {m} layers cannot host 3 exits"),
        });
    }
    if rates.len() != m {
        return Err(DnnError::ExitRateMismatch {
            expected: m,
            actual: rates.len(),
        });
    }
    let score = |i: usize| -> f64 {
        let sigma = rates.as_slice()[i];
        sigma / profile.layers[i].out_bytes.max(1.0)
    };
    // Best-scoring First-exit among positions leaving room for a Second.
    // `m >= 3` keeps both ranges non-empty; the fallbacks just keep the
    // expressions total.
    let first = (0..m - 2)
        .max_by(|&a, &b| score(a).total_cmp(&score(b)))
        .unwrap_or(0);
    let second = (first + 1..m - 1)
        .max_by(|&a, &b| score(a).total_cmp(&score(b)))
        .unwrap_or(first + 1);
    ExitCombo::new(first, second, m - 1, m)
}

#[cfg(test)]
mod tests {
    use super::*;
    use leime_dnn::{zoo, ExitSpec, ModelProfile};
    use leime_workload::ExitRateModel;

    fn profile(name: &str) -> ModelProfile {
        let chain = match name {
            "vgg16" => zoo::vgg16(32, 10),
            "inception" => zoo::inception_v3(299, 10),
            _ => unreachable!(),
        };
        ModelProfile::from_chain(&chain, ExitSpec::default()).unwrap()
    }

    #[test]
    fn min_comp_picks_earliest() {
        let p = profile("vgg16");
        let c = min_computation(&p).unwrap();
        assert_eq!((c.first, c.second), (0, 1));
    }

    #[test]
    fn min_tran_picks_smallest_activations() {
        let p = profile("vgg16");
        let c = min_transmission(&p).unwrap();
        // VGG activations shrink monotonically-ish towards the back; the
        // picked first exit must have no smaller activation before it.
        for i in 0..c.first {
            assert!(p.layers[i].out_bytes >= p.layers[c.first].out_bytes);
        }
        assert!(c.first < c.second && c.second < p.num_layers() - 1);
    }

    #[test]
    fn edgent_matches_min_tran() {
        let p = profile("inception");
        assert_eq!(edgent_style(&p).unwrap(), min_transmission(&p).unwrap());
    }

    #[test]
    fn mean_division_thirds() {
        let p = profile("vgg16"); // m = 13
        let c = mean_division(&p).unwrap();
        assert_eq!((c.first, c.second), (3, 7));
        let p2 = profile("inception"); // m = 16
        let c2 = mean_division(&p2).unwrap();
        assert_eq!((c2.first, c2.second), (4, 9));
    }

    #[test]
    fn ddnn_prefers_high_rate_small_data() {
        let chain = zoo::inception_v3(299, 10);
        let p = ModelProfile::from_chain(&chain, ExitSpec::default()).unwrap();
        let rates = ExitRateModel::cifar_like().rates_for_chain(&chain);
        let c = ddnn_style(&p, &rates).unwrap();
        // The stem's huge early activations should never win.
        assert!(c.first > 0, "picked the giant stem activation");
        assert!(c.first < c.second);
    }

    #[test]
    fn all_baselines_produce_valid_combos() {
        for chain in zoo::cifar_models(10) {
            let p = ModelProfile::from_chain(&chain, ExitSpec::default()).unwrap();
            let rates = ExitRateModel::cifar_like().rates_for_chain(&chain);
            let m = p.num_layers();
            for combo in [
                min_computation(&p).unwrap(),
                min_transmission(&p).unwrap(),
                mean_division(&p).unwrap(),
                ddnn_style(&p, &rates).unwrap(),
            ] {
                assert!(combo.first < combo.second && combo.second < m - 1);
                assert_eq!(combo.third, m - 1);
            }
        }
    }
}
