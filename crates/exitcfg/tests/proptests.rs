//! Property tests for the exit-setting layer: the Theorem-1 pruning lemma
//! itself, baseline well-formedness, and multi-tier DP optimality against
//! brute force.

use leime_dnn::{DnnChain, ExitCombo, ExitRates, ExitSpec, Layer, LayerKind, ModelProfile};
use leime_exitcfg::{
    ddnn_style, mean_division, min_computation, min_transmission, multi_tier_exits, CostModel,
    EnvParams, TierEnv,
};
use proptest::prelude::*;

fn profile_from(specs: &[(f64, usize)]) -> ModelProfile {
    let layers: Vec<Layer> = specs
        .iter()
        .enumerate()
        .map(|(i, &(flops, elems))| Layer {
            name: format!("l{i}"),
            kind: LayerKind::Conv,
            flops,
            out_channels: elems.max(1),
            out_h: 1,
            out_w: 1,
        })
        .collect();
    let chain = DnnChain::new("prop", 3, 16, 16, 10, layers).expect("non-empty");
    ModelProfile::from_chain(&chain, ExitSpec::default()).unwrap()
}

fn monotone_rates(raw: &[f64], m: usize) -> ExitRates {
    let mut v: Vec<f64> = raw[..m].to_vec();
    v.sort_by(|a, b| a.partial_cmp(b).unwrap());
    v[m - 1] = 1.0;
    ExitRates::new(v).unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Theorem 1, verbatim: for monotone exit rates, whenever
    /// `T2(i1) <= T2(i2)` with `i1 < i2`, the full combo with First-exit
    /// `i1` beats the one with `i2` for *every* Second-exit j.
    #[test]
    fn theorem1_domination_lemma(
        specs in prop::collection::vec((1e6f64..1e10, 1usize..100_000), 5..16),
        raw in prop::collection::vec(0.0f64..1.0, 16),
        bw_exp in 5.5f64..8.0,
    ) {
        let profile = profile_from(&specs);
        let m = profile.num_layers();
        let rates = monotone_rates(&raw, m);
        let env = EnvParams::raspberry_pi().with_edge_link(10f64.powf(bw_exp), 0.02);
        let cost = CostModel::new(&profile, &rates, env).unwrap();
        for i1 in 0..m - 2 {
            for i2 in i1 + 1..m - 2 {
                let t2_1 = cost.two_exit(i1).unwrap();
                let t2_2 = cost.two_exit(i2).unwrap();
                if t2_1 <= t2_2 {
                    for j in i2 + 1..m - 1 {
                        let e1 = ExitCombo::new(i1, j, m - 1, m).unwrap();
                        let e2 = ExitCombo::new(i2, j, m - 1, m).unwrap();
                        prop_assert!(
                            cost.total(e1).unwrap() <= cost.total(e2).unwrap() + 1e-12,
                            "lemma violated at i1={i1}, i2={i2}, j={j}"
                        );
                    }
                }
            }
        }
    }

    /// Every baseline strategy produces a structurally valid combo whose
    /// cost is finite, on arbitrary profiles.
    #[test]
    fn baselines_always_valid(
        specs in prop::collection::vec((1e6f64..1e10, 1usize..100_000), 3..20),
        raw in prop::collection::vec(0.0f64..1.0, 20),
    ) {
        let profile = profile_from(&specs);
        let m = profile.num_layers();
        let rates = monotone_rates(&raw, m);
        let cost = CostModel::new(&profile, &rates, EnvParams::raspberry_pi()).unwrap();
        for combo in [
            min_computation(&profile).unwrap(),
            min_transmission(&profile).unwrap(),
            mean_division(&profile).unwrap(),
            ddnn_style(&profile, &rates).unwrap(),
        ] {
            prop_assert!(combo.first < combo.second && combo.second < m - 1);
            let t = cost.total(combo).unwrap();
            prop_assert!(t.is_finite() && t > 0.0);
        }
    }

    /// The 4-tier DP equals brute-force enumeration of all exit triples
    /// over small chains.
    #[test]
    fn four_tier_dp_equals_brute_force(
        specs in prop::collection::vec((1e6f64..1e10, 1usize..50_000), 5..11),
        raw in prop::collection::vec(0.0f64..1.0, 11),
        gw_exp in 9.0f64..10.5,
    ) {
        let profile = profile_from(&specs);
        let m = profile.num_layers();
        let rates = monotone_rates(&raw, m);
        let env = EnvParams::raspberry_pi();
        let tiers = [
            TierEnv { flops: env.device_flops, uplink_bandwidth_bps: f64::INFINITY, uplink_latency_s: 0.0 },
            TierEnv { flops: 10f64.powf(gw_exp), uplink_bandwidth_bps: 40e6, uplink_latency_s: 0.005 },
            TierEnv { flops: env.edge_flops, uplink_bandwidth_bps: env.edge_bandwidth_bps, uplink_latency_s: env.edge_latency_s },
            TierEnv { flops: env.cloud_flops, uplink_bandwidth_bps: env.cloud_bandwidth_bps, uplink_latency_s: env.cloud_latency_s },
        ];
        let (_, t_dp) = multi_tier_exits(&profile, &rates, &tiers).unwrap();

        // Brute force: all e0 < e1 < e2 < e3 = m-1.
        let sigma = rates.as_slice();
        let prefix = {
            let mut p = vec![0.0];
            let mut acc = 0.0;
            for l in &profile.layers {
                acc += l.layer_flops;
                p.push(acc);
            }
            p
        };
        let block = |lo: usize, hi: usize, f: f64| {
            (prefix[hi + 1] - prefix[lo] + profile.layers[hi].exit_flops) / f
        };
        let mut best = f64::INFINITY;
        for e0 in 0..m - 3 {
            for e1 in e0 + 1..m - 2 {
                for e2 in e1 + 1..m - 1 {
                    let e3 = m - 1;
                    let mut t = block(0, e0, tiers[0].flops);
                    let legs = [(e0, e1, 1usize), (e1, e2, 2), (e2, e3, 3)];
                    for &(prev, end, j) in &legs {
                        let transfer = profile.layers[prev].out_bytes * 8.0
                            / tiers[j].uplink_bandwidth_bps
                            + tiers[j].uplink_latency_s;
                        t += (1.0 - sigma[prev]) * (transfer + block(prev + 1, end, tiers[j].flops));
                    }
                    best = best.min(t);
                }
            }
        }
        prop_assert!((t_dp - best).abs() <= 1e-9 * best,
            "dp {t_dp} vs brute force {best}");
    }
}
