//! Fleet-aware traffic routing: the serving front door for a
//! multi-edge fleet (`leime-fleet`, DESIGN.md §16).
//!
//! A [`FleetRouter`] snapshots the regional tier's device→edge
//! assignment and answers, per request, which edge should serve it: the
//! device's *home* edge by default, spilling to the least-pressured
//! live sibling when the home edge is down or its Eq. 10–11 queue
//! pressure runs past the spill ratio. Routing is a pure function of
//! the snapshot — the same request stream routes identically at every
//! worker count, preserving the serving layer's determinism contract.

use std::collections::BTreeMap;

use leime::LeimeError;
use leime_fleet::FleetSystem;
use leime_invariant as invariant;

/// Where a request was sent, and why.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RouteDecision {
    /// Served by the device's assigned home edge.
    Home(usize),
    /// Spilled to a sibling edge (home down or over-pressured).
    Spill { from: usize, to: usize },
    /// No live edge exists; the device must run fully local.
    Local,
}

impl RouteDecision {
    /// The edge the request lands on, if any.
    pub fn edge(&self) -> Option<usize> {
        match *self {
            RouteDecision::Home(e) => Some(e),
            RouteDecision::Spill { to, .. } => Some(to),
            RouteDecision::Local => None,
        }
    }
}

/// A routing snapshot of a fleet's topology: device→edge assignment
/// plus the spill threshold applied against live-edge pressures.
#[derive(Debug, Clone)]
pub struct FleetRouter {
    edges: usize,
    assignment: BTreeMap<usize, usize>,
    /// Spill when home pressure exceeds this multiple of the coolest
    /// live edge's pressure (mirrors `FleetConfig::pressure_ratio`).
    spill_ratio: f64,
}

impl FleetRouter {
    /// Builds a router from an explicit assignment.
    ///
    /// # Errors
    ///
    /// Returns [`LeimeError::Config`] for a zero edge count, an
    /// assignment entry out of range, or a non-finite / sub-unity spill
    /// ratio.
    pub fn new(
        edges: usize,
        assignment: BTreeMap<usize, usize>,
        spill_ratio: f64,
    ) -> Result<Self, LeimeError> {
        if edges == 0 {
            return Err(LeimeError::Config("router needs at least one edge".into()));
        }
        if let Some((&device, &edge)) = assignment.iter().find(|&(_, &e)| e >= edges) {
            return Err(LeimeError::Config(format!(
                "device {device} assigned to edge {edge} of {edges}"
            )));
        }
        if !(spill_ratio >= 1.0 && spill_ratio.is_finite()) {
            return Err(LeimeError::Config(format!(
                "spill_ratio must be finite and at least 1, got {spill_ratio}"
            )));
        }
        Ok(FleetRouter {
            edges,
            assignment,
            spill_ratio,
        })
    }

    /// Snapshots a fleet's current assignment, inheriting its
    /// `pressure_ratio` as the spill threshold.
    ///
    /// # Errors
    ///
    /// Same conditions as [`FleetRouter::new`] (a well-formed fleet
    /// always satisfies them).
    pub fn from_fleet(fleet: &FleetSystem) -> Result<Self, LeimeError> {
        FleetRouter::new(
            fleet.config().edges,
            fleet.assignment().clone(),
            fleet.config().pressure_ratio,
        )
    }

    /// The edge count this router snapshot covers.
    pub fn edges(&self) -> usize {
        self.edges
    }

    /// A device's home edge under the snapshot (`None` for devices the
    /// fleet does not know).
    pub fn home_edge(&self, device: usize) -> Option<usize> {
        self.assignment.get(&device).copied()
    }

    /// Routes one request: home edge when live and within the spill
    /// threshold, else the least-pressured live sibling, else fully
    /// local. `pressures[e]` is edge `e`'s Eq. 10–11 queue pressure
    /// (each checked non-negative); `down[e]` marks outaged edges.
    /// Unknown devices route to the least-pressured live edge.
    pub fn route(&self, device: usize, pressures: &[f64], down: &[bool]) -> RouteDecision {
        for &p in pressures {
            invariant::check_nonneg("serving.route.pressure", p);
        }
        let live_min = (0..self.edges)
            .filter(|&e| !down.get(e).copied().unwrap_or(false))
            .min_by(|&a, &b| {
                let (pa, pb) = (pressure_at(pressures, a), pressure_at(pressures, b));
                pa.total_cmp(&pb).then(a.cmp(&b))
            });
        let Some(coolest) = live_min else {
            return RouteDecision::Local;
        };
        let Some(home) = self.home_edge(device) else {
            return RouteDecision::Home(coolest);
        };
        let home_down = down.get(home).copied().unwrap_or(false);
        let home_p = pressure_at(pressures, home);
        let cool_p = pressure_at(pressures, coolest);
        if !home_down && (home == coolest || home_p <= self.spill_ratio * cool_p.max(1.0)) {
            RouteDecision::Home(home)
        } else {
            RouteDecision::Spill {
                from: home,
                to: coolest,
            }
        }
    }
}

fn pressure_at(pressures: &[f64], edge: usize) -> f64 {
    pressures.get(edge).copied().unwrap_or(0.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn router(edges: usize, pairs: &[(usize, usize)]) -> FleetRouter {
        FleetRouter::new(edges, pairs.iter().copied().collect(), 4.0).expect("valid router")
    }

    #[test]
    fn validation_rejects_bad_configs() {
        assert!(FleetRouter::new(0, BTreeMap::new(), 4.0).is_err());
        assert!(FleetRouter::new(2, [(0, 5)].into_iter().collect(), 4.0).is_err());
        assert!(FleetRouter::new(2, BTreeMap::new(), 0.5).is_err());
        assert!(FleetRouter::new(2, BTreeMap::new(), f64::NAN).is_err());
    }

    #[test]
    fn routes_home_when_healthy() {
        let r = router(2, &[(0, 0), (1, 1)]);
        assert_eq!(
            r.route(0, &[5.0, 5.0], &[false, false]),
            RouteDecision::Home(0)
        );
        assert_eq!(r.route(0, &[5.0, 5.0], &[false, false]).edge(), Some(0));
    }

    #[test]
    fn spills_off_a_down_or_over_pressured_home() {
        let r = router(2, &[(0, 0), (1, 1)]);
        // Home down: spill to the live sibling.
        assert_eq!(
            r.route(0, &[0.0, 3.0], &[true, false]),
            RouteDecision::Spill { from: 0, to: 1 }
        );
        // Home over-pressured (past 4× the coolest, above the 1.0
        // absolute floor): spill.
        assert_eq!(
            r.route(0, &[50.0, 2.0], &[false, false]),
            RouteDecision::Spill { from: 0, to: 1 }
        );
        // Within the ratio: stay home even when the sibling is cooler.
        assert_eq!(
            r.route(0, &[6.0, 2.0], &[false, false]),
            RouteDecision::Home(0)
        );
    }

    #[test]
    fn unknown_devices_and_dead_fleets() {
        let r = router(2, &[(0, 0)]);
        // Unknown device: coolest live edge.
        assert_eq!(
            r.route(99, &[9.0, 1.0], &[false, false]),
            RouteDecision::Home(1)
        );
        // Everything down: fully local.
        assert_eq!(r.route(0, &[1.0, 1.0], &[true, true]), RouteDecision::Local);
        assert_eq!(r.route(0, &[1.0, 1.0], &[true, true]).edge(), None);
    }

    #[test]
    fn snapshot_tracks_a_live_fleet() {
        use leime::{ExitStrategy, ModelKind, Scenario};
        use leime_fleet::FleetConfig;

        let scenario = Scenario::raspberry_pi_cluster(ModelKind::SqueezeNet, 6, 5.0);
        let deployment = scenario.deploy(ExitStrategy::Leime).expect("deploys");
        let fleet =
            FleetSystem::new(scenario, deployment, FleetConfig::regional(2, 10)).expect("builds");
        let r = FleetRouter::from_fleet(&fleet).expect("snapshots");
        assert_eq!(r.edges(), 2);
        // Every device routes to its fleet-assigned home edge when the
        // fleet is quiet and healthy.
        let pressures = fleet.pressures();
        for (&d, &e) in fleet.assignment() {
            assert_eq!(r.route(d, &pressures, &[false, false]).edge(), Some(e));
        }
    }
}
