//! The request model: SLA classes, per-class deadlines and the class
//! mix of arriving traffic.

use serde::{Deserialize, Serialize};

/// Service-level class of a request.
///
/// The variant order *is* the priority order everywhere in this crate:
/// admission admits latency-critical first and sheds best-effort first,
/// and exit steering grants edge priority in the same order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum SlaClass {
    /// Interactive requests with a tight deadline; shed last.
    LatencyCritical,
    /// The bulk of the traffic; default deadline.
    Standard,
    /// Background requests with a loose deadline; shed first.
    BestEffort,
}

impl SlaClass {
    /// Every class, in priority order (latency-critical first).
    pub const ALL: [SlaClass; 3] = [
        SlaClass::LatencyCritical,
        SlaClass::Standard,
        SlaClass::BestEffort,
    ];

    /// Dense index into per-class arrays (priority order).
    pub fn index(self) -> usize {
        match self {
            SlaClass::LatencyCritical => 0,
            SlaClass::Standard => 1,
            SlaClass::BestEffort => 2,
        }
    }

    /// Stable snake_case name used in telemetry metric names and JSON.
    pub fn name(self) -> &'static str {
        match self {
            SlaClass::LatencyCritical => "latency_critical",
            SlaClass::Standard => "standard",
            SlaClass::BestEffort => "best_effort",
        }
    }
}

/// Per-class serving policy: the deadline each class is judged against
/// and the class mix of arriving traffic.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SlaPolicy {
    /// Per-class completion deadline in seconds, indexed by
    /// [`SlaClass::index`].
    pub deadline_s: [f64; 3],
    /// Per-class arrival probabilities (must sum to 1), indexed the same
    /// way. Each request's class is an independent draw from this mix.
    pub mix: [f64; 3],
}

impl Default for SlaPolicy {
    fn default() -> Self {
        // Deadlines calibrated against the Pi-fleet serving testbed at
        // nominal load (healthy p99 TCT ≈ 1.8–2.2 s): latency-critical
        // sits at that p99, standard leaves ~2x headroom, best-effort
        // tolerates transient backlog (see EXPERIMENTS.md,
        // `ext_serving`).
        SlaPolicy {
            deadline_s: [2.0, 4.0, 12.0],
            mix: [0.2, 0.5, 0.3],
        }
    }
}

impl SlaPolicy {
    /// Sanity-checks deadlines and the class mix.
    ///
    /// # Errors
    ///
    /// Returns a description of the first violation.
    pub fn validate(&self) -> Result<(), String> {
        for (c, &d) in SlaClass::ALL.iter().zip(&self.deadline_s) {
            if !(d.is_finite() && d > 0.0) {
                return Err(format!("{} deadline must be positive, got {d}", c.name()));
            }
        }
        let mut sum = 0.0;
        for (c, &p) in SlaClass::ALL.iter().zip(&self.mix) {
            if !(p.is_finite() && p >= 0.0) {
                return Err(format!("{} mix weight {p} invalid", c.name()));
            }
            sum += p;
        }
        if (sum - 1.0).abs() > 1e-9 {
            return Err(format!("class mix sums to {sum}, not 1"));
        }
        Ok(())
    }

    /// Maps a uniform draw `u ∈ [0, 1)` to a class under the mix.
    pub fn class_for_draw(&self, u: f64) -> SlaClass {
        if u < self.mix[0] {
            SlaClass::LatencyCritical
        } else if u < self.mix[0] + self.mix[1] {
            SlaClass::Standard
        } else {
            SlaClass::BestEffort
        }
    }

    /// The deadline for `class`, in seconds.
    pub fn deadline_for(&self, class: SlaClass) -> f64 {
        self.deadline_s[class.index()]
    }
}

/// One inference request as the front-end sees it.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Request {
    /// Fleet-unique id, assigned in arrival order (device-major within a
    /// slot), so replays enumerate requests identically.
    pub id: u64,
    /// Index of the device the request arrived at.
    pub device: usize,
    /// SLA class drawn from the [`SlaPolicy`] mix.
    pub class: SlaClass,
    /// Arrival time (slot start) in seconds.
    pub arrival_s: f64,
    /// A hard sample: no intermediate classifier reaches its confidence
    /// threshold, so the request traverses the full chain (adversarial
    /// floods raise the fraction of these and collapse exit rates).
    pub hard: bool,
}

#[cfg(test)]
#[allow(clippy::field_reassign_with_default)] // policy-tweak tests read clearer this way
mod tests {
    use super::*;

    #[test]
    fn class_indices_are_dense_and_ordered() {
        for (i, c) in SlaClass::ALL.iter().enumerate() {
            assert_eq!(c.index(), i);
        }
        assert_eq!(SlaClass::LatencyCritical.index(), 0);
        assert_eq!(SlaClass::BestEffort.index(), 2);
    }

    #[test]
    fn default_policy_validates() {
        assert!(SlaPolicy::default().validate().is_ok());
    }

    #[test]
    fn validate_rejects_bad_deadline_and_mix() {
        let mut p = SlaPolicy::default();
        p.deadline_s[0] = 0.0;
        assert!(p.validate().is_err());
        let mut p = SlaPolicy::default();
        p.mix = [0.5, 0.5, 0.5];
        assert!(p.validate().is_err());
        let mut p = SlaPolicy::default();
        p.mix = [0.5, -0.2, 0.7];
        assert!(p.validate().is_err());
    }

    #[test]
    fn class_for_draw_partitions_the_unit_interval() {
        let p = SlaPolicy {
            deadline_s: [1.0, 2.0, 3.0],
            mix: [0.2, 0.5, 0.3],
        };
        assert_eq!(p.class_for_draw(0.0), SlaClass::LatencyCritical);
        assert_eq!(p.class_for_draw(0.19), SlaClass::LatencyCritical);
        assert_eq!(p.class_for_draw(0.2), SlaClass::Standard);
        assert_eq!(p.class_for_draw(0.69), SlaClass::Standard);
        assert_eq!(p.class_for_draw(0.7), SlaClass::BestEffort);
        assert_eq!(p.class_for_draw(0.999), SlaClass::BestEffort);
    }

    #[test]
    fn requests_serialize_round_trip() {
        let r = Request {
            id: 7,
            device: 2,
            class: SlaClass::Standard,
            arrival_s: 12.0,
            hard: true,
        };
        let text = serde_json::to_string(&r).unwrap();
        let back: Request = serde_json::from_str(&text).unwrap();
        assert_eq!(r, back);
    }
}
