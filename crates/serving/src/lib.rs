//! `leime-serving`: an online serving runtime with deadlines, SLA
//! classes and admission control, layered on the LEIME reproduction's
//! slotted queueing machinery (`leime::SlottedSystem` is the offline
//! analogue; this crate fronts it with requests).
//!
//! | Module | What it owns |
//! |---|---|
//! | `request` | [`Request`], [`SlaClass`], [`SlaPolicy`] — the request model |
//! | `traffic` | [`TrafficConfig`] — deterministic offered-load generators |
//! | `admission` | [`admit`] — Eq. 10–11 stability-bound load shedding |
//! | `steer` | [`steer_exits`] — per-class exit settings via priced environments |
//! | `route` | [`FleetRouter`] — fleet-aware traffic routing with pressure spillover |
//! | `system` | [`ServingSystem`] — the per-slot serving loop and testbed presets |
//! | `report` | [`ServingReport`] — per-class deadline/latency statistics |
//!
//! See DESIGN.md §12 for the request lifecycle, the class-equivalent
//! queue accounting and the shedding ladder.

mod admission;
mod report;
mod request;
mod route;
mod steer;
mod system;
mod traffic;

pub use admission::{admit, AdmissionDecision, AdmissionPolicy};
pub use report::{ClassStats, ServingReport};
pub use request::{Request, SlaClass, SlaPolicy};
pub use route::{FleetRouter, RouteDecision};
pub use steer::{steer_exits, ClassPlan, SteerPolicy};
pub use system::{flash_brownout_testbed, serving_testbed, ServingConfig, ServingSystem};
pub use traffic::{TrafficConfig, TrafficModel, TRAFFIC_STREAM};
