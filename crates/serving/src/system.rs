//! The serving runtime: an online request front-end layered on the
//! paper's slotted queueing machinery.
//!
//! Each slot, deterministic traffic generators offer requests per
//! device; the admission controller sheds what would break the
//! Eq. 10–11 stability bounds (best-effort first); admitted requests
//! run under their class's exit setting with the scenario's offload
//! controller (Lyapunov by default) steering the device/edge split, and
//! per-request completion times are judged against per-class deadlines.
//!
//! ## Accounting (DESIGN.md §12)
//!
//! The queue recursions are stepped in *plan-task equivalents* of the
//! standard-class deployment: a class-`c` request counts as
//! `μ₁_c / μ₁_std` tasks, so one pair of Eq. 10–11 queues per device
//! carries all three classes and the stability analysis stays the
//! paper's. Hard-sample floods collapse the effective first-exit rate
//! (`σ₁ · (1 − hard_fraction)`) the controller observes, so the
//! Lyapunov policy reacts to adversarial traffic exactly as it would to
//! a harder dataset.
//!
//! ## Determinism
//!
//! The runtime is sequential (driver thread only) and draws from
//! per-device RNG streams (`stream_seed(seed, i)`) plus one reserved
//! fleet-level traffic stream ([`crate::TRAFFIC_STREAM`]); repeated
//! runs at a seed are byte-identical (asserted by the tier-2
//! `integration_serving` suite).

use std::sync::Arc;

use leime_chaos::{ChaosConfig, EdgeHealth, FaultModel, FaultSchedule, LinkHealth};
use leime_offload::{
    kkt_allocation_with_floor, DegradeMode, DegradeState, DeviceParams, QueuePair, SharedParams,
    SlotCost, SlotObservation,
};
use leime_simnet::SimTime;
use leime_telemetry::{Counter, Histogram, Registry, Series, VirtualClock};
use leime_workload::SlotArrivals;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use leime::{share_floor, LeimeError, ModelKind, Scenario, SlotArena};

use crate::{
    admit, steer_exits, AdmissionPolicy, ClassPlan, ClassStats, Request, ServingReport, SlaClass,
    SlaPolicy, SteerPolicy, TrafficConfig, TrafficModel, TRAFFIC_STREAM,
};

/// Everything the serving runtime adds on top of a [`Scenario`].
#[derive(Debug, Clone, Default, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct ServingConfig {
    /// The offered-load generator.
    pub traffic: TrafficConfig,
    /// SLA classes: deadlines and the arrival mix.
    pub sla: SlaPolicy,
    /// The admission controller.
    pub admission: AdmissionPolicy,
    /// Per-class exit steering.
    pub steer: SteerPolicy,
}

impl ServingConfig {
    /// Sanity-checks every sub-policy.
    ///
    /// # Errors
    ///
    /// Returns a description of the first violation.
    pub fn validate(&self) -> Result<(), String> {
        self.traffic
            .validate()
            .map_err(|e| format!("traffic: {e}"))?;
        self.sla.validate().map_err(|e| format!("sla: {e}"))?;
        self.admission
            .validate()
            .map_err(|e| format!("admission: {e}"))?;
        self.steer.validate().map_err(|e| format!("steer: {e}"))
    }
}

/// Recording handles for one serving run (see
/// [`ServingSystem::attach_registry`]).
#[derive(Debug, Clone)]
struct ServingTelemetry {
    clock: VirtualClock,
    /// Per-class completion-time histograms, `{prefix}.tct_s.{class}`.
    tct: [Arc<Histogram>; 3],
    offered: [Arc<Counter>; 3],
    admitted: [Arc<Counter>; 3],
    shed: [Arc<Counter>; 3],
    deadline_hits: [Arc<Counter>; 3],
    queue_q: Arc<Series>,
    queue_h: Arc<Series>,
    offload_x: Arc<Series>,
}

/// Per-device serving state: one RNG stream per device, per DESIGN.md
/// §11.
#[derive(Debug)]
struct DeviceState {
    queue: QueuePair,
    degrade: DegradeState,
    rng: StdRng,
}

/// The online serving runtime.
#[derive(Debug)]
pub struct ServingSystem {
    scenario: Scenario,
    config: ServingConfig,
    plan: ClassPlan,
    telemetry: Option<ServingTelemetry>,
}

impl ServingSystem {
    /// Builds the runtime: validates the scenario and config, then runs
    /// the per-class exit setting ([`steer_exits`]).
    ///
    /// # Errors
    ///
    /// Returns [`LeimeError::Config`] for invalid scenarios or serving
    /// configs, and propagates exit-search errors.
    pub fn new(scenario: Scenario, config: ServingConfig) -> leime::Result<Self> {
        scenario.validate()?;
        config
            .validate()
            .map_err(|e| LeimeError::Config(format!("serving config: {e}")))?;
        let plan = steer_exits(&scenario, &config.steer)?;
        Ok(ServingSystem {
            scenario,
            config,
            plan,
            telemetry: None,
        })
    }

    /// The per-class exit settings the runtime serves under.
    pub fn plan(&self) -> &ClassPlan {
        &self.plan
    }

    /// Attaches a telemetry registry: subsequent runs record, under
    /// `prefix`,
    ///
    /// * `{prefix}.tct_s.{class}` — per-class completion-time histograms
    ///   (p50/p99/p999 surface in the snapshot),
    /// * `{prefix}.{class}.offered|admitted|shed|deadline_hits` —
    ///   per-class request counters, and
    /// * `{prefix}.queue_q`, `{prefix}.queue_h`, `{prefix}.offload_x` —
    ///   per-slot fleet-mean series stamped with simulated time.
    pub fn attach_registry(&mut self, registry: &Registry, prefix: &str) {
        let clock = VirtualClock::new();
        let per_class = |what: &str| -> [Arc<Counter>; 3] {
            SlaClass::ALL.map(|c| registry.counter(&format!("{prefix}.{}.{what}", c.name())))
        };
        self.telemetry = Some(ServingTelemetry {
            clock,
            tct: SlaClass::ALL.map(|c| registry.histogram(&format!("{prefix}.tct_s.{}", c.name()))),
            offered: per_class("offered"),
            admitted: per_class("admitted"),
            shed: per_class("shed"),
            deadline_hits: per_class("deadline_hits"),
            queue_q: registry.series(&format!("{prefix}.queue_q")),
            queue_h: registry.series(&format!("{prefix}.queue_h")),
            offload_x: registry.series(&format!("{prefix}.offload_x")),
        });
    }

    /// Plan-task weight of each class: `μ₁_c / μ₁_std`.
    fn class_weights(&self) -> [f64; 3] {
        let std_mu1 = self.plan.standard().mu[0].max(f64::EPSILON);
        SlaClass::ALL.map(|c| self.plan.for_class(c).mu[0] / std_mu1)
    }

    /// Runs `slots` time slots and returns the serving report.
    ///
    /// # Errors
    ///
    /// Propagates configuration errors (cannot occur for systems built
    /// by [`ServingSystem::new`]).
    pub fn run(&mut self, slots: usize, seed: u64) -> leime::Result<ServingReport> {
        let scenario = &self.scenario;
        let config = &self.config;
        let n = scenario.devices.len();
        let slot_len_s = scenario.slot_len_s;
        let horizon = SimTime::from_secs(slots as f64 * slot_len_s);
        let schedule: Option<FaultSchedule> =
            scenario.chaos.as_ref().map(|c| c.compile(n, horizon));
        let controller = scenario.controller.build();
        let weights = self.class_weights();
        let std_plan = self.plan.standard();
        let shared = SharedParams {
            slot_len_s,
            v: scenario.v,
            mu1: std_plan.mu[0],
            mu2: std_plan.mu[1],
            sigma1: std_plan.sigma[0],
            d0_bytes: std_plan.d[0],
            d1_bytes: std_plan.d[1],
            edge_flops: scenario.edge_flops,
        };
        let flops: Vec<f64> = scenario.devices.iter().map(|d| d.flops).collect();

        let mut states: Vec<DeviceState> = (0..n)
            .map(|i| DeviceState {
                queue: QueuePair::new(),
                degrade: DegradeState::new(),
                rng: StdRng::seed_from_u64(leime_par::stream_seed(seed, i as u64)),
            })
            .collect();
        let mut traffic_rng = StdRng::seed_from_u64(leime_par::stream_seed(seed, TRAFFIC_STREAM));

        let mut stats: [ClassStats; 3] =
            SlaClass::ALL.map(|c| ClassStats::new(c, config.sla.deadline_for(c)));
        let mut hard_requests = 0u64;
        let mut fault_slots = 0u64;
        let mut offload_sum = 0.0f64;
        let mut offload_slots = 0u64;
        let mut next_id = 0u64;

        // Slot scratch (DESIGN.md §14): the offered means are rebuilt in
        // place each slot and the per-device request cohort cycles
        // through a [`SlotArena`], so steady-state slots allocate
        // nothing on this path. Per-class counter deltas accumulate
        // here and flush to the registry once per slot.
        let mut means: Vec<f64> = Vec::with_capacity(n);
        let mut req_arena: SlotArena<Request> = SlotArena::new();
        let mut offered_slot = [0u64; 3];
        let mut admitted_slot = [0u64; 3];
        let mut shed_slot = [0u64; 3];
        let mut hits_slot = [0u64; 3];

        for slot in 0..slots {
            let slot_start = SimTime::from_secs(slot as f64 * slot_len_s);
            let t_s = slot_start.as_secs();
            if let Some(tel) = &self.telemetry {
                tel.clock.advance_to(t_s);
            }
            // Fleet-level per-slot quantities: one traffic draw, then the
            // Eq. 27 edge shares against the offered means.
            let rate = config.traffic.rate_factor(t_s, &mut traffic_rng);
            let hard_f = config.traffic.hard_fraction(t_s).clamp(0.0, 1.0);
            means.clear();
            means.extend(scenario.devices.iter().map(|d| d.arrival_mean * rate));
            let shares =
                kkt_allocation_with_floor(&flops, &means, scenario.edge_flops, share_floor(n));

            let (mut q_sum, mut h_sum, mut x_sum) = (0.0f64, 0.0f64, 0.0f64);
            for (i, st) in states.iter_mut().enumerate() {
                let (link, edge, alive) = match &schedule {
                    Some(s) => (
                        s.link_health(i, slot_start),
                        s.edge_health(slot_start),
                        s.device_alive(i, slot_start),
                    ),
                    None => (LinkHealth::NOMINAL, EdgeHealth::NOMINAL, true),
                };
                if !alive {
                    // Churned out: no arrivals, frozen queues.
                    continue;
                }
                let fault = !link.is_nominal() || !edge.is_nominal();

                let dev = DeviceParams {
                    arrival_mean: means[i],
                    bandwidth_bps: scenario.bandwidth_at(i, slot_start) * link.bandwidth_factor,
                    latency_s: scenario.devices[i].latency_s + link.extra_latency_s,
                    ..scenario.devices[i]
                };
                // The controller sees the brownout-scaled edge and the
                // flood-collapsed effective first-exit rate.
                let shared_i = SharedParams {
                    edge_flops: shared.edge_flops * edge.speed_factor,
                    sigma1: shared.sigma1 * (1.0 - hard_f),
                    ..shared
                };
                let obs = SlotObservation {
                    q: st.queue.q(),
                    h: st.queue.h(),
                    p_share: shares[i].clamp(0.0, 1.0),
                };
                let x_opt = controller.decide(shared_i, dev, obs);
                let reachable = link.up && edge.up;
                let outcome =
                    st.degrade
                        .degraded_decide(&scenario.degrade, slot as u64, reachable, x_opt);
                let x = outcome.x;
                let degraded_local = st.degrade.mode() != DegradeMode::Normal;

                // The offered front-end traffic: arrival count, then one
                // class draw and one hardness draw per request.
                let offered_n = SlotArrivals::Poisson {
                    mean: means[i],
                    max: config.traffic.max_per_slot,
                }
                .draw(&mut st.rng);
                let mut requests = req_arena.take();
                let mut offered = [0u64; 3];
                for _ in 0..offered_n {
                    let class = config.sla.class_for_draw(st.rng.gen_range(0.0..1.0));
                    let hard = st.rng.gen_range(0.0..1.0) < hard_f;
                    offered[class.index()] += 1;
                    if hard {
                        hard_requests += 1;
                    }
                    requests.push(Request {
                        id: next_id,
                        device: i,
                        class,
                        arrival_s: t_s,
                        hard,
                    });
                    next_id += 1;
                }

                let cost = SlotCost::new(shared_i, dev, obs.q, obs.h, obs.p_share);
                let device_quota = cost.device_quota();
                let edge_quota = if edge.up { cost.edge_quota(x) } else { 0.0 };
                let decision = admit(
                    &config.admission,
                    obs.q,
                    obs.h,
                    device_quota,
                    edge_quota,
                    x,
                    weights,
                    offered,
                );

                let admitted_equiv: f64 = (0..3)
                    .map(|ci| decision.admitted[ci] as f64 * weights[ci])
                    .sum();
                st.queue.step(
                    (1.0 - x) * admitted_equiv,
                    x * admitted_equiv,
                    device_quota,
                    edge_quota,
                );

                // Price the admitted cohort: Eq. 12–14 first-block cost
                // (backlog wait included) per plan-task equivalent, plus
                // the deterministic block-2/3 tails per request.
                let (base_per_equiv, f_e2) = if admitted_equiv > 0.0 {
                    let realized = DeviceParams {
                        arrival_mean: admitted_equiv,
                        ..dev
                    };
                    let rcost = SlotCost::new(shared_i, realized, obs.q, obs.h, obs.p_share);
                    let capacity = rcost.p_share * shared_i.edge_flops;
                    let f_e2 = {
                        let left = capacity - rcost.edge_first_block_flops(x);
                        if left > 0.0 {
                            left
                        } else {
                            capacity.max(f64::EPSILON)
                        }
                    };
                    (rcost.y(x) / admitted_equiv, f_e2)
                } else {
                    (0.0, f64::EPSILON)
                };

                // Admit the first `admitted[c]` requests of each class in
                // arrival order; judge each against its class deadline.
                let mut quota_left = decision.admitted;
                for req in &requests {
                    let ci = req.class.index();
                    stats[ci].offered += 1;
                    offered_slot[ci] += 1;
                    if quota_left[ci] == 0 {
                        stats[ci].shed += 1;
                        shed_slot[ci] += 1;
                        continue;
                    }
                    quota_left[ci] -= 1;
                    stats[ci].admitted += 1;

                    let plan_c = self.plan.for_class(req.class);
                    let tier = if degraded_local {
                        // Degraded mode runs fully local: forced first exit.
                        0
                    } else if req.hard {
                        plan_c.sigma.len() - 1
                    } else {
                        plan_c.tier_for_draw(st.rng.gen_range(0.0..1.0))?
                    };
                    let mut tct = base_per_equiv * weights[ci];
                    if tier >= 1 {
                        // Block-2 leg: ship the intermediate if the request
                        // ran locally (probability 1 − x), then compute on
                        // the residual edge share.
                        tct += (1.0 - x)
                            * (plan_c.d[1] * 8.0 / dev.bandwidth_bps.max(f64::EPSILON)
                                + dev.latency_s)
                            + plan_c.mu[1] / f_e2;
                    }
                    if tier >= 2 {
                        tct += plan_c.d[2] * 8.0 / scenario.cloud_bandwidth_bps
                            + scenario.cloud_latency_s
                            + plan_c.mu[2] / scenario.cloud_flops;
                    }
                    stats[ci].tct_s.record(tct);
                    let hit = tct <= config.sla.deadline_for(req.class);
                    if hit {
                        stats[ci].deadline_hits += 1;
                    }
                    admitted_slot[ci] += 1;
                    if hit {
                        hits_slot[ci] += 1;
                    }
                    if let Some(tel) = &self.telemetry {
                        // Histograms need every sample; the counters
                        // flush once per slot below.
                        tel.tct[ci].record(tct);
                    }
                }
                req_arena.put(requests);

                if fault || degraded_local {
                    fault_slots += 1;
                }
                offload_sum += x;
                offload_slots += 1;
                q_sum += obs.q;
                h_sum += obs.h;
                x_sum += x;
            }
            if let Some(tel) = &self.telemetry {
                tel.queue_q.push(t_s, q_sum / n as f64);
                tel.queue_h.push(t_s, h_sum / n as f64);
                tel.offload_x.push(t_s, x_sum / n as f64);
                // One atomic add per counter per slot instead of one
                // per request; totals match the per-request increments
                // exactly.
                for ci in 0..3 {
                    if offered_slot[ci] > 0 {
                        tel.offered[ci].add(offered_slot[ci]);
                    }
                    if admitted_slot[ci] > 0 {
                        tel.admitted[ci].add(admitted_slot[ci]);
                    }
                    if shed_slot[ci] > 0 {
                        tel.shed[ci].add(shed_slot[ci]);
                    }
                    if hits_slot[ci] > 0 {
                        tel.deadline_hits[ci].add(hits_slot[ci]);
                    }
                }
            }
            offered_slot = [0; 3];
            admitted_slot = [0; 3];
            shed_slot = [0; 3];
            hits_slot = [0; 3];
        }

        let final_backlog = states.iter().map(|s| s.queue.q() + s.queue.h()).sum();
        Ok(ServingReport {
            slots,
            devices: n,
            seed,
            classes: stats.into_iter().collect(),
            hard_requests,
            fault_slots,
            offload_sum,
            offload_slots,
            final_backlog,
        })
    }
}

/// The serving testbed: a Pi fleet with a deliberately scarce edge
/// (2.5 GFLOPS shared — a single co-located micro-server, not the
/// default 12 GFLOPS rack) under 24 requests/slot/device, which puts
/// nominal load at ~75% of the fleet's device+edge service capacity.
/// A `load` multiplier of 2 is therefore a true overload where
/// admission control must shed. `load` scales the offered traffic (the
/// `ext_serving` sweep knob).
pub fn serving_testbed(model: ModelKind, n: usize, load: f64) -> (Scenario, ServingConfig) {
    let mut scenario = Scenario::raspberry_pi_cluster(model, n, 24.0);
    scenario.edge_flops = 2.5e9;
    let config = ServingConfig {
        traffic: TrafficConfig {
            load,
            ..TrafficConfig::default()
        },
        ..ServingConfig::default()
    };
    (scenario, config)
}

/// The golden composition: a flash crowd (3x offered load for
/// `[20 s, 50 s)`) breaking over an edge brownout (edge at 30% speed
/// for half of the first 60 s) — the serving stack's worst plausible
/// hour, used by `integration_serving` and `ext_serving`.
pub fn flash_brownout_testbed(
    model: ModelKind,
    n: usize,
    seed: u64,
    load: f64,
) -> (Scenario, ServingConfig) {
    let (mut scenario, mut config) = serving_testbed(model, n, load);
    scenario.chaos = Some(ChaosConfig {
        seed,
        models: vec![FaultModel::EdgeBrownout {
            duty: 0.5,
            factor: 0.3,
            mean_episode_s: 10.0,
        }],
        window_s: Some(60.0),
    });
    config.traffic.model = TrafficModel::FlashCrowd {
        start_s: 20.0,
        duration_s: 30.0,
        factor: 3.0,
    };
    (scenario, config)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn system(load: f64) -> ServingSystem {
        let (scenario, config) = serving_testbed(ModelKind::SqueezeNet, 4, load);
        ServingSystem::new(scenario, config).unwrap()
    }

    #[test]
    fn produces_requests_and_finite_stats() {
        let report = system(1.0).run(60, 7).unwrap();
        assert!(report.offered_total() > 1000, "{}", report.offered_total());
        assert_eq!(
            report.offered_total(),
            report.admitted_total() + report.shed_total()
        );
        for c in SlaClass::ALL {
            let s = report.class(c);
            assert_eq!(s.offered, s.admitted + s.shed, "{}", c.name());
            if s.admitted > 0 {
                assert!(s.p50().is_some());
                assert!(s.p999().unwrap() >= s.p50().unwrap());
            }
        }
        assert!(report.final_backlog.is_finite() && report.final_backlog >= 0.0);
        assert!(report.mean_offload_ratio() > 0.0);
    }

    #[test]
    fn runs_are_seed_deterministic() {
        let a = system(2.0).run(40, 11).unwrap();
        let b = system(2.0).run(40, 11).unwrap();
        assert_eq!(
            serde_json::to_string(&a).unwrap(),
            serde_json::to_string(&b).unwrap()
        );
    }

    #[test]
    fn overload_sheds_best_effort_before_latency_critical() {
        let report = system(3.0).run(80, 3).unwrap();
        assert!(report.shed_total() > 0, "3x overload must shed");
        let lc = report.class(SlaClass::LatencyCritical);
        let be = report.class(SlaClass::BestEffort);
        let lc_shed_rate = lc.shed as f64 / lc.offered.max(1) as f64;
        let be_shed_rate = be.shed as f64 / be.offered.max(1) as f64;
        assert!(
            be_shed_rate > lc_shed_rate,
            "best-effort shed rate {be_shed_rate} <= latency-critical {lc_shed_rate}"
        );
    }

    #[test]
    fn admission_bounds_the_backlog_under_overload() {
        let (scenario, mut config) = serving_testbed(ModelKind::SqueezeNet, 4, 3.0);
        config.admission.enabled = true;
        let bound = config.admission.q_bound + config.admission.h_bound;
        let mut sys = ServingSystem::new(scenario.clone(), config.clone()).unwrap();
        let with = sys.run(80, 5).unwrap();
        assert!(
            with.final_backlog <= (bound + 1.0) * 4.0,
            "bounded backlog {} escaped {bound} per device",
            with.final_backlog
        );
        config.admission.enabled = false;
        let mut sys = ServingSystem::new(scenario, config).unwrap();
        let without = sys.run(80, 5).unwrap();
        assert!(
            without.final_backlog > with.final_backlog,
            "no-admission backlog {} not above admission backlog {}",
            without.final_backlog,
            with.final_backlog
        );
    }

    #[test]
    fn hard_floods_are_flagged_and_survive() {
        let (scenario, mut config) = serving_testbed(ModelKind::SqueezeNet, 2, 1.0);
        config.traffic.model = TrafficModel::HardFlood {
            start_s: 10.0,
            duration_s: 20.0,
            hard_fraction: 0.9,
        };
        let mut sys = ServingSystem::new(scenario, config).unwrap();
        let report = sys.run(40, 9).unwrap();
        // ~20 flood slots at 90% hard plus 5% baseline elsewhere.
        assert!(
            report.hard_requests as f64 > 0.2 * report.offered_total() as f64,
            "hard {} of {}",
            report.hard_requests,
            report.offered_total()
        );
    }

    #[test]
    fn flash_brownout_composition_injects_faults() {
        let (scenario, config) = flash_brownout_testbed(ModelKind::SqueezeNet, 3, 42, 1.0);
        let mut sys = ServingSystem::new(scenario, config).unwrap();
        let report = sys.run(90, 13).unwrap();
        assert!(report.fault_slots > 0, "brownout never surfaced");
        assert!(report.offered_total() > 0);
    }

    #[test]
    fn telemetry_records_per_class_histograms() {
        let registry = Registry::new();
        let (scenario, config) = serving_testbed(ModelKind::SqueezeNet, 2, 1.0);
        let mut sys = ServingSystem::new(scenario, config).unwrap();
        sys.attach_registry(&registry, "serve");
        let report = sys.run(30, 21).unwrap();
        let snap = registry.snapshot();
        for c in SlaClass::ALL {
            let h = snap
                .histogram_named(&format!("serve.tct_s.{}", c.name()))
                .unwrap();
            assert_eq!(h.count, report.class(c).admitted);
            if h.count > 0 {
                assert!(h.p999.is_some());
            }
        }
        assert!(snap.series_named("serve.queue_q").is_some());
        assert!(snap.series_named("serve.offload_x").is_some());
    }

    #[test]
    fn invalid_config_is_rejected() {
        let (scenario, mut config) = serving_testbed(ModelKind::SqueezeNet, 2, 1.0);
        config.traffic.load = 0.0;
        assert!(ServingSystem::new(scenario, config).is_err());
    }
}
