//! Per-class exit setting: latency-critical requests are steered toward
//! earlier exits by re-running the Theorem-1 branch-and-bound search
//! under a class-specific *pricing* environment.
//!
//! The knob is how optimistically each class prices the shared edge.
//! Latency-critical traffic deploys against a conservatively-priced
//! (congested) edge: deep blocks look expensive, so the solver places
//! its exits early and the class's offload tails stay cheap — the
//! latency-safe setting. Best-effort deploys against an optimistically
//! priced edge and runs deep for accuracy, tolerating tail latency.
//! Each class keeps the paper's optimality story — same solver, same
//! cost model — only the environment it is priced against differs.

use leime::{Deployment, ExitStrategy, Scenario};
use leime_invariant as invariant;
use serde::{Deserialize, Serialize};

use crate::SlaClass;

/// Knobs for per-class exit steering.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SteerPolicy {
    /// When `false`, every class serves the standard deployment
    /// (the `ext_serving` no-steering baseline).
    pub enabled: bool,
    /// Edge-FLOPS multiplier latency-critical deployments are priced
    /// at, in `(0, 1]`: a congested-edge assumption that pushes exits
    /// earlier and keeps tails cheap.
    pub lc_edge_discount: f64,
    /// Edge-FLOPS multiplier best-effort deployments are priced at
    /// (>= 1, capped at the whole edge): an optimistic assumption that
    /// lets the solver run deep for accuracy.
    pub be_edge_bonus: f64,
}

impl Default for SteerPolicy {
    fn default() -> Self {
        SteerPolicy {
            enabled: true,
            lc_edge_discount: 0.25,
            be_edge_bonus: 4.0,
        }
    }
}

impl SteerPolicy {
    /// Sanity-checks the steering multipliers.
    ///
    /// # Errors
    ///
    /// Returns a description of the first violation.
    pub fn validate(&self) -> Result<(), String> {
        if !(self.lc_edge_discount.is_finite()
            && self.lc_edge_discount > 0.0
            && self.lc_edge_discount <= 1.0)
        {
            return Err(format!(
                "lc_edge_discount must be in (0, 1], got {}",
                self.lc_edge_discount
            ));
        }
        if !(self.be_edge_bonus.is_finite() && self.be_edge_bonus >= 1.0) {
            return Err(format!(
                "be_edge_bonus must be >= 1, got {}",
                self.be_edge_bonus
            ));
        }
        Ok(())
    }
}

/// One exit setting per SLA class, indexed by [`SlaClass::index`].
#[derive(Debug, Clone, PartialEq)]
pub struct ClassPlan {
    deployments: [Deployment; 3],
}

impl ClassPlan {
    /// The deployment class `class` serves under.
    pub fn for_class(&self, class: SlaClass) -> &Deployment {
        &self.deployments[class.index()]
    }

    /// The standard-class deployment — the plan the shared queueing
    /// state is accounted in (see DESIGN.md §12).
    pub fn standard(&self) -> &Deployment {
        self.for_class(SlaClass::Standard)
    }
}

/// Computes the per-class exit settings for `scenario`.
///
/// The standard class gets the scenario's nominal LEIME deployment.
/// With steering enabled, latency-critical and best-effort re-run the
/// same branch-and-bound under environments whose edge FLOPS are
/// scaled by the policy's discount/bonus factors, which orders the
/// chosen exits: latency-critical at or before the standard placement,
/// best-effort at or after it.
///
/// # Errors
///
/// Propagates scenario validation and exit-search errors.
pub fn steer_exits(scenario: &Scenario, policy: &SteerPolicy) -> leime::Result<ClassPlan> {
    if let Err(e) = policy.validate() {
        return Err(leime::LeimeError::Config(format!("steer policy: {e}")));
    }
    let std_plan = scenario.deploy(ExitStrategy::Leime)?;
    let num_layers = scenario.chain().num_layers();

    let deployments = if policy.enabled {
        let chain = scenario.chain();
        let rates = scenario.candidate_rates();
        let base_env = scenario.avg_env();
        let class_env = |factor: f64| {
            let mut env = base_env;
            // A class's priced share can exceed the per-device average
            // but never the whole edge.
            env.edge_flops = (env.edge_flops * factor).min(scenario.edge_flops);
            env
        };
        let lc = Deployment::compute(
            ExitStrategy::Leime,
            &chain,
            scenario.exit_spec,
            &rates,
            class_env(policy.lc_edge_discount),
        )?;
        let be = Deployment::compute(
            ExitStrategy::Leime,
            &chain,
            scenario.exit_spec,
            &rates,
            class_env(policy.be_edge_bonus),
        )?;
        [lc, std_plan, be]
    } else {
        [std_plan.clone(), std_plan.clone(), std_plan]
    };

    for (class, d) in SlaClass::ALL.iter().zip(&deployments) {
        invariant::check_increasing_exits(
            &format!("serving.steer.{}", class.name()),
            &[d.combo.first, d.combo.second, d.combo.third],
            num_layers,
        );
    }
    Ok(ClassPlan { deployments })
}

#[cfg(test)]
#[allow(clippy::field_reassign_with_default)] // policy-tweak tests read clearer this way
mod tests {
    use super::*;
    use leime::ModelKind;

    fn scenario() -> Scenario {
        let mut s = Scenario::raspberry_pi_cluster(ModelKind::SqueezeNet, 4, 24.0);
        // The serving testbed's scarce edge (see `serving_testbed`),
        // where class pricing visibly moves the chosen exits.
        s.edge_flops = 2.5e9;
        s
    }

    #[test]
    fn default_policy_validates() {
        assert!(SteerPolicy::default().validate().is_ok());
        let mut p = SteerPolicy::default();
        p.lc_edge_discount = 0.0;
        assert!(p.validate().is_err());
        let mut p = SteerPolicy::default();
        p.lc_edge_discount = 1.5;
        assert!(p.validate().is_err());
        let mut p = SteerPolicy::default();
        p.be_edge_bonus = 0.5;
        assert!(p.validate().is_err());
    }

    #[test]
    fn disabled_steering_shares_one_plan() {
        let policy = SteerPolicy {
            enabled: false,
            ..SteerPolicy::default()
        };
        let plan = steer_exits(&scenario(), &policy).unwrap();
        for class in SlaClass::ALL {
            assert_eq!(plan.for_class(class).combo, plan.standard().combo);
        }
    }

    #[test]
    fn steering_orders_exits_by_class() {
        let plan = steer_exits(&scenario(), &SteerPolicy::default()).unwrap();
        let lc = plan.for_class(SlaClass::LatencyCritical).combo;
        let std_c = plan.standard().combo;
        let be = plan.for_class(SlaClass::BestEffort).combo;
        // Congested pricing → exits at or before standard; optimistic
        // pricing → at or after.
        assert!(lc.first <= std_c.first && lc.second <= std_c.second);
        assert!(be.first >= std_c.first && be.second >= std_c.second);
        // And the testbed is scarce enough that the steering actually
        // separates the classes (not three identical plans).
        assert_ne!(lc, be, "steering left LC and BE identical");
    }

    #[test]
    fn latency_critical_plan_has_cheapest_expected_tail() {
        let plan = steer_exits(&scenario(), &SteerPolicy::default()).unwrap();
        let tail = |c: SlaClass| {
            let d = plan.for_class(c);
            (1.0 - d.sigma[0]) * d.mu[1] + (1.0 - d.sigma[1]) * d.mu[2]
        };
        assert!(
            tail(SlaClass::LatencyCritical) <= tail(SlaClass::BestEffort),
            "LC expected tail {} above BE {}",
            tail(SlaClass::LatencyCritical),
            tail(SlaClass::BestEffort)
        );
    }

    #[test]
    fn steering_keeps_final_exit_at_chain_end() {
        let s = scenario();
        let m = s.chain().num_layers();
        let plan = steer_exits(&s, &SteerPolicy::default()).unwrap();
        for class in SlaClass::ALL {
            assert_eq!(plan.for_class(class).combo.third, m - 1);
        }
    }

    #[test]
    fn bad_policy_is_a_config_error() {
        let policy = SteerPolicy {
            enabled: true,
            lc_edge_discount: f64::NAN,
            be_edge_bonus: 4.0,
        };
        assert!(steer_exits(&scenario(), &policy).is_err());
    }
}
