//! Deterministic traffic generators: the offered-load shapes the
//! serving runtime is exercised under.
//!
//! A generator is a *rate-multiplier* process over each device's
//! configured per-slot arrival mean, plus a hard-sample fraction over
//! time. Both are pure functions of slot time except the Pareto burst
//! process, which draws one multiplier per slot from a dedicated RNG
//! stream (`stream_seed(seed, TRAFFIC_STREAM)`) — so every shape is
//! seed-deterministic and replayable (DESIGN.md §11, §12).

use rand::rngs::StdRng;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// The RNG stream id reserved for the fleet-level traffic process
/// (devices use streams `0..n`, so this can never collide).
pub const TRAFFIC_STREAM: u64 = u64::MAX;

/// The offered-load shape over time.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum TrafficModel {
    /// Flat offered load (the calibration baseline).
    Constant,
    /// Sinusoidal day/night cycle: the multiplier swings between
    /// `trough` and `peak` with period `period_s`, starting at the
    /// trough.
    Diurnal {
        /// Cycle length in seconds.
        period_s: f64,
        /// Minimum rate multiplier.
        trough: f64,
        /// Maximum rate multiplier.
        peak: f64,
    },
    /// Nominal load with a multiplicative spike inside
    /// `[start_s, start_s + duration_s)` — the flash-crowd shape.
    FlashCrowd {
        /// Spike onset in seconds.
        start_s: f64,
        /// Spike length in seconds.
        duration_s: f64,
        /// Rate multiplier while the crowd lasts.
        factor: f64,
    },
    /// Heavy-tailed per-slot bursts: each slot's multiplier is an
    /// independent Pareto(α) draw normalised to unit mean and clamped
    /// at `cap` (α > 1 so the mean exists).
    ParetoBursts {
        /// Tail index `α`; smaller is heavier (must exceed 1).
        alpha: f64,
        /// Upper clamp on the per-slot multiplier.
        cap: f64,
    },
    /// Adversarial hard-sample flood: the rate stays nominal, but inside
    /// the window a `hard_fraction` of requests refuse every early exit,
    /// collapsing the effective exit rate the controller sees.
    HardFlood {
        /// Flood onset in seconds.
        start_s: f64,
        /// Flood length in seconds.
        duration_s: f64,
        /// Hard-sample fraction while the flood lasts.
        hard_fraction: f64,
    },
}

/// A traffic generator: the shape, a global load multiplier and the
/// baseline hard-sample fraction.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TrafficConfig {
    /// The offered-load shape.
    pub model: TrafficModel,
    /// Global offered-load multiplier applied on top of the shape (the
    /// `ext_serving` sweep knob).
    pub load: f64,
    /// Hard-sample fraction outside flood windows.
    pub base_hard_fraction: f64,
    /// Per-device per-slot arrival truncation bound.
    pub max_per_slot: u64,
}

impl Default for TrafficConfig {
    fn default() -> Self {
        TrafficConfig {
            model: TrafficModel::Constant,
            load: 1.0,
            base_hard_fraction: 0.05,
            max_per_slot: 1000,
        }
    }
}

impl TrafficConfig {
    /// Sanity-checks the generator.
    ///
    /// # Errors
    ///
    /// Returns a description of the first violation.
    // `!(x > 0.0)` rejects NaN along with non-positives, per the repo's
    // validation idiom.
    #[allow(clippy::neg_cmp_op_on_partial_ord)]
    pub fn validate(&self) -> Result<(), String> {
        if !(self.load.is_finite() && self.load > 0.0) {
            return Err(format!("load must be positive, got {}", self.load));
        }
        if !(0.0..=1.0).contains(&self.base_hard_fraction) {
            return Err(format!(
                "base_hard_fraction {} outside [0, 1]",
                self.base_hard_fraction
            ));
        }
        if self.max_per_slot == 0 {
            return Err("max_per_slot must be at least 1".to_string());
        }
        match &self.model {
            TrafficModel::Constant => Ok(()),
            TrafficModel::Diurnal {
                period_s,
                trough,
                peak,
            } => {
                if !(*period_s > 0.0) {
                    return Err(format!("diurnal period must be positive, got {period_s}"));
                }
                if !(*trough > 0.0 && peak >= trough) {
                    return Err(format!(
                        "diurnal range [{trough}, {peak}] must satisfy 0 < trough <= peak"
                    ));
                }
                Ok(())
            }
            TrafficModel::FlashCrowd {
                start_s,
                duration_s,
                factor,
            } => {
                if !(*start_s >= 0.0 && *duration_s > 0.0) {
                    return Err(format!(
                        "flash-crowd window [{start_s}, +{duration_s}) invalid"
                    ));
                }
                if !(*factor >= 1.0 && factor.is_finite()) {
                    return Err(format!("flash-crowd factor {factor} must be >= 1"));
                }
                Ok(())
            }
            TrafficModel::ParetoBursts { alpha, cap } => {
                if !(*alpha > 1.0 && alpha.is_finite()) {
                    return Err(format!("pareto alpha {alpha} must exceed 1"));
                }
                if !(*cap >= 1.0 && cap.is_finite()) {
                    return Err(format!("pareto cap {cap} must be >= 1"));
                }
                Ok(())
            }
            TrafficModel::HardFlood {
                start_s,
                duration_s,
                hard_fraction,
            } => {
                if !(*start_s >= 0.0 && *duration_s > 0.0) {
                    return Err(format!(
                        "hard-flood window [{start_s}, +{duration_s}) invalid"
                    ));
                }
                if !(0.0..=1.0).contains(hard_fraction) {
                    return Err(format!("hard_fraction {hard_fraction} outside [0, 1]"));
                }
                Ok(())
            }
        }
    }

    /// The rate multiplier for the slot starting at `t_s` (load factor
    /// included). `rng` is the dedicated traffic stream; only the Pareto
    /// shape consumes draws from it, one per slot.
    pub fn rate_factor(&self, t_s: f64, rng: &mut StdRng) -> f64 {
        let shape = match &self.model {
            TrafficModel::Constant | TrafficModel::HardFlood { .. } => 1.0,
            TrafficModel::Diurnal {
                period_s,
                trough,
                peak,
            } => {
                let phase = (t_s / period_s) * std::f64::consts::TAU;
                trough + (peak - trough) * 0.5 * (1.0 - phase.cos())
            }
            TrafficModel::FlashCrowd {
                start_s,
                duration_s,
                factor,
            } => {
                if t_s >= *start_s && t_s < start_s + duration_s {
                    *factor
                } else {
                    1.0
                }
            }
            TrafficModel::ParetoBursts { alpha, cap } => {
                // Unit-mean Pareto: x_m = (α−1)/α, F⁻¹(u) = x_m·u^(−1/α).
                let u = (1.0 - rng.gen_range(0.0f64..1.0)).max(f64::MIN_POSITIVE);
                let xm = (alpha - 1.0) / alpha;
                (xm * u.powf(-1.0 / alpha)).min(*cap)
            }
        };
        self.load * shape
    }

    /// The hard-sample fraction for the slot starting at `t_s`.
    pub fn hard_fraction(&self, t_s: f64) -> f64 {
        match &self.model {
            TrafficModel::HardFlood {
                start_s,
                duration_s,
                hard_fraction,
            } if t_s >= *start_s && t_s < start_s + duration_s => *hard_fraction,
            _ => self.base_hard_fraction,
        }
    }
}

#[cfg(test)]
#[allow(clippy::field_reassign_with_default)] // policy-tweak tests read clearer this way
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(leime_par::stream_seed(42, TRAFFIC_STREAM))
    }

    #[test]
    fn default_config_validates() {
        assert!(TrafficConfig::default().validate().is_ok());
    }

    #[test]
    fn validation_rejects_bad_shapes() {
        let bad = |model| TrafficConfig {
            model,
            ..TrafficConfig::default()
        };
        assert!(bad(TrafficModel::Diurnal {
            period_s: 0.0,
            trough: 0.5,
            peak: 2.0
        })
        .validate()
        .is_err());
        assert!(bad(TrafficModel::Diurnal {
            period_s: 100.0,
            trough: 2.0,
            peak: 0.5
        })
        .validate()
        .is_err());
        assert!(bad(TrafficModel::FlashCrowd {
            start_s: 10.0,
            duration_s: 20.0,
            factor: 0.5
        })
        .validate()
        .is_err());
        assert!(bad(TrafficModel::ParetoBursts {
            alpha: 1.0,
            cap: 10.0
        })
        .validate()
        .is_err());
        assert!(bad(TrafficModel::HardFlood {
            start_s: 0.0,
            duration_s: 5.0,
            hard_fraction: 1.5
        })
        .validate()
        .is_err());
        let mut c = TrafficConfig::default();
        c.load = 0.0;
        assert!(c.validate().is_err());
    }

    #[test]
    fn diurnal_swings_between_trough_and_peak() {
        let c = TrafficConfig {
            model: TrafficModel::Diurnal {
                period_s: 100.0,
                trough: 0.5,
                peak: 2.0,
            },
            ..TrafficConfig::default()
        };
        let mut r = rng();
        assert!((c.rate_factor(0.0, &mut r) - 0.5).abs() < 1e-12);
        assert!((c.rate_factor(50.0, &mut r) - 2.0).abs() < 1e-12);
        for t in 0..100 {
            let f = c.rate_factor(t as f64, &mut r);
            assert!((0.5..=2.0 + 1e-12).contains(&f));
        }
    }

    #[test]
    fn flash_crowd_spikes_only_inside_window() {
        let c = TrafficConfig {
            model: TrafficModel::FlashCrowd {
                start_s: 10.0,
                duration_s: 20.0,
                factor: 4.0,
            },
            ..TrafficConfig::default()
        };
        let mut r = rng();
        assert!((c.rate_factor(9.9, &mut r) - 1.0).abs() < 1e-12);
        assert!((c.rate_factor(10.0, &mut r) - 4.0).abs() < 1e-12);
        assert!((c.rate_factor(29.9, &mut r) - 4.0).abs() < 1e-12);
        assert!((c.rate_factor(30.0, &mut r) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn pareto_bursts_have_roughly_unit_mean_and_respect_cap() {
        let c = TrafficConfig {
            model: TrafficModel::ParetoBursts {
                alpha: 2.5,
                cap: 50.0,
            },
            ..TrafficConfig::default()
        };
        let mut r = rng();
        let n = 20_000;
        let mut sum = 0.0;
        let mut above = 0u64;
        for t in 0..n {
            let f = c.rate_factor(t as f64, &mut r);
            assert!(f > 0.0 && f <= 50.0);
            sum += f;
            if f > 3.0 {
                above += 1;
            }
        }
        let mean = sum / n as f64;
        assert!((mean - 1.0).abs() < 0.1, "pareto mean {mean} far from 1");
        // Heavy tail: a visible fraction of slots burst well past 3x.
        assert!(above > 100, "only {above} bursts above 3x in {n} slots");
    }

    #[test]
    fn pareto_bursts_are_seed_deterministic() {
        let c = TrafficConfig {
            model: TrafficModel::ParetoBursts {
                alpha: 1.8,
                cap: 30.0,
            },
            ..TrafficConfig::default()
        };
        let (mut a, mut b) = (rng(), rng());
        for t in 0..500 {
            let fa = c.rate_factor(t as f64, &mut a);
            let fb = c.rate_factor(t as f64, &mut b);
            assert_eq!(fa.to_bits(), fb.to_bits());
        }
    }

    #[test]
    fn hard_flood_collapses_exit_rates_only_inside_window() {
        let c = TrafficConfig {
            model: TrafficModel::HardFlood {
                start_s: 30.0,
                duration_s: 30.0,
                hard_fraction: 0.9,
            },
            base_hard_fraction: 0.05,
            ..TrafficConfig::default()
        };
        let mut r = rng();
        assert!((c.hard_fraction(0.0) - 0.05).abs() < 1e-12);
        assert!((c.hard_fraction(30.0) - 0.9).abs() < 1e-12);
        assert!((c.hard_fraction(60.0) - 0.05).abs() < 1e-12);
        // Rate stays nominal during the flood.
        assert!((c.rate_factor(45.0, &mut r) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn load_multiplier_scales_every_shape() {
        let c = TrafficConfig {
            load: 2.5,
            ..TrafficConfig::default()
        };
        let mut r = rng();
        assert!((c.rate_factor(7.0, &mut r) - 2.5).abs() < 1e-12);
    }
}
