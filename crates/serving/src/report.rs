//! The serving run report: per-class deadline and latency statistics
//! plus run-level queueing aggregates. Fully serialisable so replay
//! tests can assert byte-identical runs.

use leime_telemetry::Buckets;
use serde::{Deserialize, Serialize};

use crate::SlaClass;

/// Per-class serving statistics.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ClassStats {
    /// Class name ([`SlaClass::name`]) — keeps the JSON self-describing.
    pub class: String,
    /// The deadline requests of this class were judged against (seconds).
    pub deadline_s: f64,
    /// Requests offered by the traffic generators.
    pub offered: u64,
    /// Requests admitted by the admission controller.
    pub admitted: u64,
    /// Requests shed.
    pub shed: u64,
    /// Admitted requests that completed within the class deadline.
    pub deadline_hits: u64,
    /// Task-completion-time histogram over admitted requests (seconds).
    pub tct_s: Buckets,
}

impl ClassStats {
    /// An empty record for `class` under deadline `deadline_s`.
    pub fn new(class: SlaClass, deadline_s: f64) -> Self {
        ClassStats {
            class: class.name().to_string(),
            deadline_s,
            offered: 0,
            admitted: 0,
            shed: 0,
            deadline_hits: 0,
            tct_s: Buckets::new(),
        }
    }

    /// Deadline-hit rate over *offered* requests — a shed request is a
    /// miss, so shedding everything cannot fake a perfect SLO. `1.0`
    /// when nothing was offered.
    pub fn hit_rate(&self) -> f64 {
        if self.offered == 0 {
            return 1.0;
        }
        self.deadline_hits as f64 / self.offered as f64
    }

    /// Deadline-hit rate over *admitted* requests (`1.0` when empty):
    /// how well the system served what it accepted.
    pub fn admitted_hit_rate(&self) -> f64 {
        if self.admitted == 0 {
            return 1.0;
        }
        self.deadline_hits as f64 / self.admitted as f64
    }

    /// Median completion time of admitted requests.
    pub fn p50(&self) -> Option<f64> {
        self.tct_s.quantile(0.5)
    }

    /// 99th-percentile completion time.
    pub fn p99(&self) -> Option<f64> {
        self.tct_s.quantile(0.99)
    }

    /// 99.9th-percentile completion time.
    pub fn p999(&self) -> Option<f64> {
        self.tct_s.p999()
    }
}

/// The result of one serving run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ServingReport {
    /// Slots simulated.
    pub slots: usize,
    /// Devices in the fleet.
    pub devices: usize,
    /// Seed the run was driven by.
    pub seed: u64,
    /// Per-class statistics, in [`SlaClass::ALL`] order.
    pub classes: Vec<ClassStats>,
    /// Requests flagged as hard samples (full-chain traversals).
    pub hard_requests: u64,
    /// Device-slots during which the edge was unreachable or degraded
    /// service was in effect.
    pub fault_slots: u64,
    /// Sum of applied offloading ratios over device-slots (for the mean).
    pub offload_sum: f64,
    /// Device-slots the offload controller actually ran.
    pub offload_slots: u64,
    /// Fleet backlog (plan-task equivalents) at the end of the run,
    /// device queues plus edge queues.
    pub final_backlog: f64,
}

impl ServingReport {
    /// Statistics for `class`.
    pub fn class(&self, class: SlaClass) -> &ClassStats {
        &self.classes[class.index()]
    }

    /// Total offered requests across classes.
    pub fn offered_total(&self) -> u64 {
        self.classes.iter().map(|c| c.offered).sum()
    }

    /// Total admitted requests across classes.
    pub fn admitted_total(&self) -> u64 {
        self.classes.iter().map(|c| c.admitted).sum()
    }

    /// Total shed requests across classes.
    pub fn shed_total(&self) -> u64 {
        self.classes.iter().map(|c| c.shed).sum()
    }

    /// Mean applied offloading ratio across device-slots.
    pub fn mean_offload_ratio(&self) -> f64 {
        if self.offload_slots == 0 {
            return 0.0;
        }
        self.offload_sum / self.offload_slots as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hit_rates_handle_empty_and_shed() {
        let mut c = ClassStats::new(SlaClass::Standard, 3.0);
        assert_eq!(c.hit_rate(), 1.0);
        assert_eq!(c.admitted_hit_rate(), 1.0);
        c.offered = 10;
        c.admitted = 4;
        c.shed = 6;
        c.deadline_hits = 4;
        // All admitted hit, but shed requests count as misses.
        assert!((c.hit_rate() - 0.4).abs() < 1e-12);
        assert!((c.admitted_hit_rate() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn report_serde_round_trip() {
        let mut stats = ClassStats::new(SlaClass::LatencyCritical, 1.0);
        stats.offered = 3;
        stats.admitted = 2;
        stats.shed = 1;
        stats.deadline_hits = 2;
        stats.tct_s.record(0.12);
        stats.tct_s.record(0.48);
        let report = ServingReport {
            slots: 10,
            devices: 2,
            seed: 42,
            classes: vec![
                stats,
                ClassStats::new(SlaClass::Standard, 3.0),
                ClassStats::new(SlaClass::BestEffort, 10.0),
            ],
            hard_requests: 1,
            fault_slots: 0,
            offload_sum: 6.0,
            offload_slots: 20,
            final_backlog: 1.5,
        };
        let text = serde_json::to_string(&report).unwrap();
        let back: ServingReport = serde_json::from_str(&text).unwrap();
        assert_eq!(report, back);
        assert_eq!(back.offered_total(), 3);
        assert!((back.mean_offload_ratio() - 0.3).abs() < 1e-12);
    }

    #[test]
    fn class_accessor_follows_priority_order() {
        let report = ServingReport {
            slots: 0,
            devices: 0,
            seed: 0,
            classes: SlaClass::ALL
                .iter()
                .map(|&c| ClassStats::new(c, 1.0))
                .collect(),
            hard_requests: 0,
            fault_slots: 0,
            offload_sum: 0.0,
            offload_slots: 0,
            final_backlog: 0.0,
        };
        for c in SlaClass::ALL {
            assert_eq!(report.class(c).class, c.name());
        }
    }
}
