//! The admission controller: sheds offered load that would push the
//! Eq. 10–11 queue recursions past their stability bounds.
//!
//! Shedding is priority-ordered — best-effort first, latency-critical
//! last (the [`crate::SlaClass`] variant order). The stability question
//! itself is delegated to `leime-invariant`'s non-panicking
//! [`invariant::within_bound`] predicate, and the post-decision
//! backlogs are routed through the panic guards: an admission decision
//! that *worsened* a bound violation is a broken analysis, not an
//! overload.

use leime_invariant as invariant;
use serde::{Deserialize, Serialize};

use crate::SlaClass;

/// Stability-bound admission policy.
///
/// Bounds are expressed in *plan-task equivalents* — tasks of the
/// standard-class deployment — matching the units of the Eq. 10–11
/// queue recursions the serving runtime steps (see DESIGN.md §12).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AdmissionPolicy {
    /// Whether shedding is active; when `false` every request is
    /// admitted (the `ext_serving` no-admission baseline).
    pub enabled: bool,
    /// Eq. 10 device-backlog stability bound `Q_max`.
    pub q_bound: f64,
    /// Eq. 11 edge-backlog stability bound `H_max`.
    pub h_bound: f64,
}

impl Default for AdmissionPolicy {
    fn default() -> Self {
        // Calibrated on the Pi serving testbed (see `serving_testbed`):
        // the device quota is ~19.6 plan tasks/slot and the per-device
        // edge quota ~12, so these bounds cap the backlog-wait term
        // C^d_1 near one slot — deep enough to ride out Poisson bursts
        // at nominal load (<1% shed), shallow enough that admitted
        // latency-critical requests still meet a 2 s deadline under 2x
        // overload (EXPERIMENTS.md, `ext_serving`).
        AdmissionPolicy {
            enabled: true,
            q_bound: 15.0,
            h_bound: 20.0,
        }
    }
}

impl AdmissionPolicy {
    /// Sanity-checks the bounds.
    ///
    /// # Errors
    ///
    /// Returns a description of the first violation.
    pub fn validate(&self) -> Result<(), String> {
        for (name, v) in [("q_bound", self.q_bound), ("h_bound", self.h_bound)] {
            if !(v.is_finite() && v >= 0.0) {
                return Err(format!("{name} must be finite and non-negative, got {v}"));
            }
        }
        Ok(())
    }
}

/// Per-class outcome of one device-slot admission decision.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AdmissionDecision {
    /// Requests admitted per class, indexed by [`SlaClass::index`].
    pub admitted: [u64; 3],
    /// Requests shed per class.
    pub shed: [u64; 3],
    /// Predicted end-of-slot device backlog `Q(t+1)` (plan-task
    /// equivalents) under the admitted load.
    pub predicted_q: f64,
    /// Predicted end-of-slot edge backlog `H(t+1)`.
    pub predicted_h: f64,
}

impl AdmissionDecision {
    /// Total admitted requests across classes.
    pub fn admitted_total(&self) -> u64 {
        self.admitted.iter().sum()
    }

    /// Total shed requests across classes.
    pub fn shed_total(&self) -> u64 {
        self.shed.iter().sum()
    }
}

/// How many whole tasks of per-task queue footprint `per` fit in
/// `room` (unbounded when the footprint is zero, e.g. `x = 0` leaves
/// the edge queue untouched).
fn fit(room: f64, per: f64) -> u64 {
    if per <= f64::EPSILON {
        return u64::MAX;
    }
    let k = (room / per + invariant::TOL).floor();
    if k <= 0.0 {
        0
    } else if k >= u64::MAX as f64 {
        u64::MAX
    } else {
        k as u64
    }
}

/// Decides, for one device-slot, how many offered requests of each class
/// to admit so the Eq. 10–11 queue recursions stay inside the policy's
/// stability bounds.
///
/// Inputs are in plan-task equivalents: `q`/`h` are the slot-start
/// backlogs, `device_quota`/`edge_quota` the slot's service quotas
/// `b_i(t)`/`c_i(t)`, `x` the applied offloading ratio, and
/// `weights[c]` converts one class-`c` request into plan tasks
/// (`μ₁_c / μ₁_std`). Classes are filled in priority order, so
/// best-effort is the first to shed.
///
/// Guarantee (property-tested): admitted load never pushes a predicted
/// backlog past `max(post-service backlog, bound)` — pre-existing
/// backlog above the bound is the degenerate case where everything
/// sheds except zero-footprint classes.
#[allow(clippy::too_many_arguments)] // the Eq. 10–11 slot state, verbatim
pub fn admit(
    policy: &AdmissionPolicy,
    q: f64,
    h: f64,
    device_quota: f64,
    edge_quota: f64,
    x: f64,
    weights: [f64; 3],
    offered: [u64; 3],
) -> AdmissionDecision {
    let x = invariant::check_unit_interval("serving.admit.x", x).clamp(0.0, 1.0);
    let q = invariant::check_nonneg("serving.admit.q", q);
    let h = invariant::check_nonneg("serving.admit.h", h);
    // Post-service backlogs: what Eq. 10–11 leave before new arrivals.
    let q_after = (q - device_quota.max(0.0)).max(0.0);
    let h_after = (h - edge_quota.max(0.0)).max(0.0);

    let mut admitted = [0u64; 3];
    if policy.enabled {
        let mut q_room = (policy.q_bound - q_after).max(0.0);
        let mut h_room = (policy.h_bound - h_after).max(0.0);
        for class in SlaClass::ALL {
            let ci = class.index();
            let w = weights[ci].max(0.0);
            let per_q = (1.0 - x) * w;
            let per_h = x * w;
            let take = offered[ci].min(fit(q_room, per_q)).min(fit(h_room, per_h));
            admitted[ci] = take;
            q_room = (q_room - take as f64 * per_q).max(0.0);
            h_room = (h_room - take as f64 * per_h).max(0.0);
        }
    } else {
        admitted = offered;
    }

    let mut shed = [0u64; 3];
    let (mut dq, mut dh) = (0.0f64, 0.0f64);
    for ci in 0..3 {
        shed[ci] = offered[ci] - admitted[ci];
        let equiv = admitted[ci] as f64 * weights[ci].max(0.0);
        dq += (1.0 - x) * equiv;
        dh += x * equiv;
    }
    let predicted_q = invariant::check_nonneg("serving.admit.pred_q", q_after + dq);
    let predicted_h = invariant::check_nonneg("serving.admit.pred_h", h_after + dh);

    if policy.enabled {
        // The shedding contract. Slop scales with the admitted volume:
        // each fit/subtract step contributes relative rounding error.
        let slop = 1e-9 * (1.0 + dq.abs() + dh.abs());
        if !invariant::within_bound(predicted_q, q_after.max(policy.q_bound) + slop)
            || !invariant::within_bound(predicted_h, h_after.max(policy.h_bound) + slop)
        {
            invariant::violation(
                "serving.admit",
                &format!(
                    "admitted load breaks the stability bound: predicted \
                     (Q, H) = ({predicted_q}, {predicted_h}) against bounds \
                     ({}, {}) from backlog ({q}, {h})",
                    policy.q_bound, policy.h_bound
                ),
            );
        }
    }

    AdmissionDecision {
        admitted,
        shed,
        predicted_q,
        predicted_h,
    }
}

#[cfg(test)]
#[allow(clippy::field_reassign_with_default)] // policy-tweak tests read clearer this way
mod tests {
    use super::*;

    const W: [f64; 3] = [1.0, 1.0, 1.0];

    #[test]
    fn default_policy_validates() {
        assert!(AdmissionPolicy::default().validate().is_ok());
        let mut p = AdmissionPolicy::default();
        p.q_bound = -1.0;
        assert!(p.validate().is_err());
        let mut p = AdmissionPolicy::default();
        p.h_bound = f64::NAN;
        assert!(p.validate().is_err());
    }

    #[test]
    fn everything_admitted_when_disabled() {
        let p = AdmissionPolicy {
            enabled: false,
            q_bound: 1.0,
            h_bound: 1.0,
        };
        let d = admit(&p, 100.0, 100.0, 5.0, 5.0, 0.5, W, [10, 20, 30]);
        assert_eq!(d.admitted, [10, 20, 30]);
        assert_eq!(d.shed, [0, 0, 0]);
    }

    #[test]
    fn everything_admitted_with_headroom() {
        let p = AdmissionPolicy {
            enabled: true,
            q_bound: 100.0,
            h_bound: 100.0,
        };
        let d = admit(&p, 10.0, 5.0, 8.0, 4.0, 0.4, W, [5, 10, 5]);
        assert_eq!(d.admitted, [5, 10, 5]);
        assert_eq!(d.shed_total(), 0);
        assert!(d.predicted_q <= 100.0 + 1e-9);
        assert!(d.predicted_h <= 100.0 + 1e-9);
    }

    #[test]
    fn best_effort_sheds_first() {
        // Room for ~10 local tasks; LC and Std fill it, BE sheds.
        let p = AdmissionPolicy {
            enabled: true,
            q_bound: 10.0,
            h_bound: 10.0,
        };
        let d = admit(&p, 0.0, 0.0, 0.0, 0.0, 0.0, W, [4, 6, 8]);
        assert_eq!(d.admitted, [4, 6, 0]);
        assert_eq!(d.shed, [0, 0, 8]);
    }

    #[test]
    fn latency_critical_sheds_last() {
        let p = AdmissionPolicy {
            enabled: true,
            q_bound: 3.0,
            h_bound: 3.0,
        };
        let d = admit(&p, 0.0, 0.0, 0.0, 0.0, 0.0, W, [5, 5, 5]);
        assert_eq!(d.admitted, [3, 0, 0]);
        assert_eq!(d.shed, [2, 5, 5]);
    }

    #[test]
    fn full_backlog_sheds_everything_with_footprint() {
        let p = AdmissionPolicy {
            enabled: true,
            q_bound: 20.0,
            h_bound: 20.0,
        };
        // Backlog already at the bound after service; x strictly inside
        // (0, 1) gives every class a footprint on both queues.
        let d = admit(&p, 30.0, 25.0, 10.0, 5.0, 0.5, W, [7, 7, 7]);
        assert_eq!(d.admitted_total(), 0);
        assert_eq!(d.shed_total(), 21);
    }

    #[test]
    fn offload_ratio_moves_the_binding_queue() {
        let p = AdmissionPolicy {
            enabled: true,
            q_bound: 100.0,
            h_bound: 5.0,
        };
        // Fully offloaded: only the edge bound binds.
        let d = admit(&p, 0.0, 0.0, 0.0, 0.0, 1.0, W, [10, 0, 0]);
        assert_eq!(d.admitted, [5, 0, 0]);
        // Fully local: the edge bound is irrelevant.
        let d = admit(&p, 0.0, 0.0, 0.0, 0.0, 0.0, W, [10, 0, 0]);
        assert_eq!(d.admitted, [10, 0, 0]);
    }

    #[test]
    fn heavier_classes_consume_more_room() {
        let p = AdmissionPolicy {
            enabled: true,
            q_bound: 10.0,
            h_bound: 10.0,
        };
        // Latency-critical tasks at half the plan weight: twice as many fit.
        let d = admit(&p, 0.0, 0.0, 0.0, 0.0, 0.0, [0.5, 1.0, 1.0], [30, 0, 0]);
        assert_eq!(d.admitted, [20, 0, 0]);
    }

    #[test]
    fn service_quota_frees_room() {
        let p = AdmissionPolicy {
            enabled: true,
            q_bound: 10.0,
            h_bound: 10.0,
        };
        // Backlog 10 at the bound, but the slot serves 6 → room for 6.
        let d = admit(&p, 10.0, 0.0, 6.0, 0.0, 0.0, W, [10, 0, 0]);
        assert_eq!(d.admitted, [6, 0, 0]);
    }
}
