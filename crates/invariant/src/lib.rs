//! Machine-checked numeric invariants from the LEIME paper.
//!
//! The compiler cannot see the feasibility region the paper's analysis
//! lives in: offloading ratios `x_i(t) ∈ [0, 1]` (Eq. 8), non-negative
//! queue backlogs `Q_i`/`H_i` (Eq. 10–11), KKT compute shares `p_i` on
//! the probability simplex (Eq. 27), and the monotone cumulative exit
//! rates that make Theorem 1's branch-and-bound pruning sound. This
//! crate provides the guard functions the `leime-lint` L5 rule requires
//! every ratio/share/queue-producing function in `leime-offload` and
//! `leime-exitcfg` to route through.
//!
//! Guards are **debug assertions by default** (zero cost in release
//! builds) and become **hard checks in every build** under the
//! `strict-invariants` feature — the configuration CI uses for the
//! paper-parameter benchmark scenarios. Each check-returning-value
//! guard passes its argument through so call sites stay expression-
//! oriented: `invariant::check_unit_interval("solver", x)`.
//!
//! The crate is re-exported as `leime::invariant` from the core crate.

use std::sync::atomic::{AtomicU64, Ordering};

/// Number of guard evaluations since process start (only counted while
/// guards are active). Lets tests assert the guards are actually wired
/// into the hot paths rather than compiled away.
static CHECKS_EVALUATED: AtomicU64 = AtomicU64::new(0);

/// Absolute tolerance for boundary comparisons: solver bisection and
/// KKT projection legitimately land within floating-point slop of the
/// feasible-region boundary.
pub const TOL: f64 = 1e-9;

/// Whether guards are active in this build: always in debug builds,
/// and in every build under `strict-invariants`.
#[inline]
#[must_use]
pub fn active() -> bool {
    cfg!(debug_assertions) || cfg!(feature = "strict-invariants")
}

/// Total guard evaluations so far (0 when guards are inactive).
#[must_use]
pub fn checks_evaluated() -> u64 {
    CHECKS_EVALUATED.load(Ordering::Relaxed)
}

#[inline]
fn tick() {
    CHECKS_EVALUATED.fetch_add(1, Ordering::Relaxed);
}

/// Reports a violated invariant. The single sanctioned panic site of
/// the workspace's library code: an out-of-region value means the
/// surrounding analysis (and every number derived from it) is invalid,
/// so continuing would corrupt experiment results silently.
///
/// Public so other crates can route their own by-construction
/// invariants (builder misuse, statically-valid constructions) through
/// the same site instead of scattering `panic!`/`expect` calls.
#[cold]
#[inline(never)]
pub fn violation(label: &str, detail: &str) -> ! {
    // lint:allow(L1): the invariant module is the sanctioned panic site — guards must stop an analysis whose feasibility region broke
    panic!("invariant violation [{label}]: {detail}");
}

/// Eq. 8 — an offloading ratio must lie in `[0, 1]`.
///
/// Returns `x` unchanged so guards can wrap return expressions.
#[inline]
pub fn check_unit_interval(label: &str, x: f64) -> f64 {
    if active() {
        tick();
        if !(x.is_finite() && (-TOL..=1.0 + TOL).contains(&x)) {
            violation(
                label,
                &format!("offloading ratio x = {x} outside [0, 1] (Eq. 8)"),
            );
        }
    }
    x
}

/// Eq. 8 — a feasible-ratio interval must be ordered and within `[0, 1]`.
#[inline]
pub fn check_interval(label: &str, lo: f64, hi: f64) -> (f64, f64) {
    if active() {
        tick();
        let ok = lo.is_finite() && hi.is_finite() && lo <= hi + TOL;
        if !ok || !(-TOL..=1.0 + TOL).contains(&lo) || !(-TOL..=1.0 + TOL).contains(&hi) {
            violation(
                label,
                &format!("feasible interval [{lo}, {hi}] invalid within [0, 1] (Eq. 8)"),
            );
        }
    }
    (lo, hi)
}

/// Eq. 10–11 — a queue backlog must be finite and non-negative.
///
/// Returns `v` unchanged.
#[inline]
pub fn check_nonneg(label: &str, v: f64) -> f64 {
    if active() {
        tick();
        if !(v.is_finite() && v >= -TOL) {
            violation(
                label,
                &format!("backlog {v} negative or non-finite (Eq. 10–11)"),
            );
        }
    }
    v
}

/// Eq. 27 — KKT compute shares must lie on the probability simplex:
/// every `p_i ≥ 0` and `Σ p_i = 1`.
#[inline]
pub fn check_simplex(label: &str, shares: &[f64]) {
    if !active() {
        return;
    }
    tick();
    let mut sum = 0.0f64;
    for (i, &p) in shares.iter().enumerate() {
        if !(p.is_finite() && p >= -TOL) {
            violation(
                label,
                &format!("share p_{i} = {p} off the simplex (Eq. 27)"),
            );
        }
        sum += p;
    }
    // Tolerance scales with n: each share contributes rounding error.
    let tol = TOL * (shares.len().max(1) as f64);
    if (sum - 1.0).abs() > tol.max(1e-6) {
        violation(label, &format!("shares sum to {sum}, not 1 (Eq. 27)"));
    }
}

/// A cost / completion-time must be finite and non-negative.
///
/// Returns `v` unchanged.
#[inline]
pub fn check_finite_cost(label: &str, v: f64) -> f64 {
    if active() {
        tick();
        if !(v.is_finite() && v >= 0.0) {
            violation(label, &format!("cost {v} non-finite or negative"));
        }
    }
    v
}

/// Post-fault recovery — once every injected fault has cleared, a queue
/// backlog must have drained back inside a bounded envelope (the
/// stability the Eq. 10–11 drift analysis promises once service again
/// exceeds arrivals).
///
/// Returns `backlog` unchanged.
#[inline]
pub fn check_drained(label: &str, backlog: f64, envelope: f64) -> f64 {
    if active() {
        tick();
        let envelope_ok = envelope.is_finite() && envelope >= 0.0;
        if !envelope_ok || !backlog.is_finite() || backlog > envelope + TOL {
            violation(
                label,
                &format!(
                    "backlog {backlog} above recovery envelope {envelope} \
                     after faults cleared (Eq. 10–11 stability)"
                ),
            );
        }
    }
    backlog
}

/// Eq. 10–11 stability bound as a *decision predicate*: whether a
/// predicted next-slot backlog stays within `bound` (with the usual
/// boundary slop [`TOL`]).
///
/// Unlike the guards above this never panics — admission control asks
/// it *before* admitting load, so out-of-bound inputs are an expected
/// answer ("shed"), not a broken analysis. Callers that then admit
/// anyway should still route the admitted value through
/// [`check_nonneg`] / [`violation`].
#[inline]
#[must_use]
pub fn within_bound(predicted: f64, bound: f64) -> bool {
    if active() {
        tick();
    }
    predicted.is_finite() && bound.is_finite() && predicted <= bound + TOL
}

/// Theorem 1 hypothesis — cumulative exit rates must be non-decreasing
/// (this monotonicity is what makes the branch-and-bound pruning sound).
#[inline]
pub fn check_monotone(label: &str, xs: &[f64]) {
    if !active() {
        return;
    }
    tick();
    for (i, w) in xs.windows(2).enumerate() {
        // NaN in either element must trip the check, not slip past it.
        if !w[0].is_finite() || !w[1].is_finite() || w[0] > w[1] + TOL {
            violation(
                label,
                &format!(
                    "sequence not monotone at {i}: {} > {} (Theorem 1 hypothesis)",
                    w[0], w[1]
                ),
            );
        }
    }
}

/// A multi-tier exit placement must be strictly increasing with each
/// index inside the chain (generalised Eq. 7 feasibility).
#[inline]
pub fn check_increasing_exits(label: &str, exits: &[usize], num_layers: usize) {
    if !active() {
        return;
    }
    tick();
    for (i, w) in exits.windows(2).enumerate() {
        if w[0] >= w[1] {
            violation(
                label,
                &format!("exits not strictly increasing at {i}: {exits:?}"),
            );
        }
    }
    if let Some(&last) = exits.last() {
        if last >= num_layers {
            violation(
                label,
                &format!("exit {last} outside chain of {num_layers} layers"),
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn guards_pass_values_through() {
        assert_eq!(check_unit_interval("t", 0.5), 0.5);
        assert_eq!(check_nonneg("t", 3.0), 3.0);
        assert_eq!(check_finite_cost("t", 1.25), 1.25);
        assert_eq!(check_interval("t", 0.0, 1.0), (0.0, 1.0));
        assert_eq!(check_drained("t", 2.0, 5.0), 2.0);
    }

    #[test]
    fn within_bound_is_a_predicate_not_a_guard() {
        assert!(within_bound(3.0, 5.0));
        assert!(within_bound(5.0 + 0.5 * TOL, 5.0));
        assert!(!within_bound(5.1, 5.0));
        // Non-finite inputs answer "no" instead of panicking.
        assert!(!within_bound(f64::NAN, 5.0));
        assert!(!within_bound(f64::INFINITY, 5.0));
        assert!(!within_bound(3.0, f64::NAN));
    }

    #[test]
    fn boundary_slop_is_tolerated() {
        check_unit_interval("t", 1.0 + 0.5 * TOL);
        check_unit_interval("t", -0.5 * TOL);
        check_nonneg("t", -0.5 * TOL);
        check_simplex("t", &[0.5 + 1e-12, 0.5 - 1e-12]);
    }

    #[test]
    fn counter_advances_when_active() {
        if !active() {
            return;
        }
        let before = checks_evaluated();
        check_unit_interval("t", 0.3);
        check_simplex("t", &[1.0]);
        assert!(checks_evaluated() >= before + 2);
    }

    #[test]
    #[should_panic(expected = "Eq. 8")]
    fn ratio_above_one_fires() {
        if !active() {
            panic!("guards inactive: simulated Eq. 8 failure");
        }
        check_unit_interval("t", 1.5);
    }

    #[test]
    #[should_panic(expected = "Eq. 10")]
    fn negative_backlog_fires() {
        if !active() {
            panic!("guards inactive: simulated Eq. 10–11 failure");
        }
        check_nonneg("t", -0.2);
    }

    #[test]
    #[should_panic(expected = "Eq. 27")]
    fn off_simplex_fires() {
        if !active() {
            panic!("guards inactive: simulated Eq. 27 failure");
        }
        check_simplex("t", &[0.7, 0.7]);
    }

    #[test]
    #[should_panic(expected = "recovery envelope")]
    fn undrained_backlog_fires() {
        if !active() {
            panic!("guards inactive: simulated recovery envelope failure");
        }
        check_drained("t", 10.0, 5.0);
    }

    #[test]
    #[should_panic(expected = "Theorem 1")]
    fn non_monotone_rates_fire() {
        if !active() {
            panic!("guards inactive: simulated Theorem 1 failure");
        }
        check_monotone("t", &[0.1, 0.5, 0.4]);
    }

    #[test]
    #[should_panic(expected = "strictly increasing")]
    fn non_increasing_exits_fire() {
        if !active() {
            panic!("guards inactive: simulated exits failure");
        }
        check_increasing_exits("t", &[3, 3, 9], 10);
    }

    #[test]
    fn nan_is_rejected_everywhere() {
        if !active() {
            return;
        }
        for f in [
            std::panic::catch_unwind(|| check_unit_interval("t", f64::NAN)),
            std::panic::catch_unwind(|| check_nonneg("t", f64::NAN)),
            std::panic::catch_unwind(|| check_finite_cost("t", f64::NAN)),
        ] {
            assert!(f.is_err(), "NaN must violate every numeric guard");
        }
    }
}
