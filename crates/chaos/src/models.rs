//! Declarative fault models and their seed-driven compilation.
//!
//! A [`FaultModel`] describes a *process* ("links flap with 30% duty,
//! ~8 s per outage"); a [`ChaosConfig`] bundles models with a seed and an
//! optional fault window. [`ChaosConfig::compile`] turns the bundle into
//! a concrete [`FaultSchedule`] by drawing alternating good/bad episodes
//! from per-model, per-lane sub-RNGs — so adding a model or a device
//! never perturbs the episodes another lane draws, and the same seed
//! always compiles to the same schedule.

use crate::schedule::{FaultEvent, FaultKind, FaultSchedule, FaultTarget};
use leime_invariant as invariant;
use leime_simnet::SimTime;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// Shortest episode the compiler emits, in seconds. Guards against
/// degenerate zero-length intervals from extreme exponential draws.
const MIN_EPISODE_S: f64 = 1e-3;

/// A stochastic fault process, parameterised by its duty cycle (long-run
/// fraction of time the fault is active, in `(0, 1)`) and mean episode
/// length in seconds. Episode and gap lengths are exponential, giving the
/// bursty on/off pattern COMCAST-style shaping produces.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum FaultModel {
    /// Per-device link blackouts ([`FaultKind::LinkBlackout`]).
    LinkFlaps {
        /// Fraction of the window each link spends dark.
        duty: f64,
        /// Mean blackout length in seconds.
        mean_outage_s: f64,
    },
    /// Shared-medium bandwidth shaping hitting every device at once
    /// ([`FaultKind::BandwidthCollapse`] on [`FaultTarget::AllDevices`]).
    BandwidthCollapse {
        /// Fraction of the window shaping is active.
        duty: f64,
        /// Bandwidth multiplier while active, in `(0, 1]`.
        factor: f64,
        /// Mean shaping-episode length in seconds.
        mean_episode_s: f64,
    },
    /// Per-device propagation-delay spikes ([`FaultKind::LatencySpike`]).
    LatencySpikes {
        /// Fraction of the window each link is spiked.
        duty: f64,
        /// Extra one-way latency in seconds while active.
        add_s: f64,
        /// Mean spike length in seconds.
        mean_episode_s: f64,
    },
    /// Edge-server slowdown — co-located load, thermal throttling
    /// ([`FaultKind::EdgeSlowdown`]).
    EdgeBrownout {
        /// Fraction of the window the edge runs slow.
        duty: f64,
        /// Edge FLOPS multiplier while active, in `(0, 1]`.
        factor: f64,
        /// Mean brownout length in seconds.
        mean_episode_s: f64,
    },
    /// Full edge-server outages ([`FaultKind::EdgeOutage`]).
    EdgeOutages {
        /// Fraction of the window the edge is down.
        duty: f64,
        /// Mean outage length in seconds.
        mean_outage_s: f64,
    },
    /// Per-device churn: the device leaves and rejoins the system
    /// ([`FaultKind::DeviceChurn`]).
    DeviceChurn {
        /// Fraction of the window each device is absent.
        duty: f64,
        /// Mean absence length in seconds.
        mean_absence_s: f64,
    },
}

impl FaultModel {
    /// Validates the model's parameters.
    ///
    /// # Errors
    ///
    /// Returns a message naming the offending parameter.
    pub fn validate(&self) -> Result<(), String> {
        let (duty, mean) = match *self {
            FaultModel::LinkFlaps {
                duty,
                mean_outage_s,
            }
            | FaultModel::EdgeOutages {
                duty,
                mean_outage_s,
            } => (duty, mean_outage_s),
            FaultModel::BandwidthCollapse {
                duty,
                factor,
                mean_episode_s,
            }
            | FaultModel::EdgeBrownout {
                duty,
                factor,
                mean_episode_s,
            } => {
                if !(factor.is_finite() && factor > 0.0 && factor <= 1.0) {
                    return Err(format!("model factor {factor} outside (0, 1]"));
                }
                (duty, mean_episode_s)
            }
            FaultModel::LatencySpikes {
                duty,
                add_s,
                mean_episode_s,
            } => {
                if !(add_s.is_finite() && add_s >= 0.0) {
                    return Err(format!("latency add {add_s} negative or non-finite"));
                }
                (duty, mean_episode_s)
            }
            FaultModel::DeviceChurn {
                duty,
                mean_absence_s,
            } => (duty, mean_absence_s),
        };
        if !(duty.is_finite() && duty > 0.0 && duty < 1.0) {
            return Err(format!("duty {duty} outside (0, 1)"));
        }
        if !(mean.is_finite() && mean > 0.0) {
            return Err(format!("mean episode length {mean} not positive"));
        }
        Ok(())
    }

    /// Duty cycle and mean episode length, post-validation.
    fn duty_mean(&self) -> (f64, f64) {
        match *self {
            FaultModel::LinkFlaps {
                duty,
                mean_outage_s,
            }
            | FaultModel::EdgeOutages {
                duty,
                mean_outage_s,
            } => (duty, mean_outage_s),
            FaultModel::BandwidthCollapse {
                duty,
                mean_episode_s,
                ..
            }
            | FaultModel::EdgeBrownout {
                duty,
                mean_episode_s,
                ..
            }
            | FaultModel::LatencySpikes {
                duty,
                mean_episode_s,
                ..
            } => (duty, mean_episode_s),
            FaultModel::DeviceChurn {
                duty,
                mean_absence_s,
            } => (duty, mean_absence_s),
        }
    }

    /// The event kind this model emits.
    fn kind(&self) -> FaultKind {
        match *self {
            FaultModel::LinkFlaps { .. } => FaultKind::LinkBlackout,
            FaultModel::BandwidthCollapse { factor, .. } => FaultKind::BandwidthCollapse { factor },
            FaultModel::LatencySpikes { add_s, .. } => FaultKind::LatencySpike { add_s },
            FaultModel::EdgeBrownout { factor, .. } => FaultKind::EdgeSlowdown { factor },
            FaultModel::EdgeOutages { .. } => FaultKind::EdgeOutage,
            FaultModel::DeviceChurn { .. } => FaultKind::DeviceChurn,
        }
    }

    /// The independent lanes this model draws episodes on.
    fn targets(&self, n_devices: usize) -> Vec<FaultTarget> {
        match self {
            FaultModel::LinkFlaps { .. }
            | FaultModel::LatencySpikes { .. }
            | FaultModel::DeviceChurn { .. } => (0..n_devices).map(FaultTarget::Device).collect(),
            FaultModel::BandwidthCollapse { .. } => vec![FaultTarget::AllDevices],
            FaultModel::EdgeBrownout { .. } | FaultModel::EdgeOutages { .. } => {
                vec![FaultTarget::Edge]
            }
        }
    }
}

/// A seeded bundle of fault models — the full disturbance specification
/// for one run, serialisable alongside a `Scenario`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ChaosConfig {
    /// Master seed; every lane derives its own sub-stream from it.
    pub seed: u64,
    /// The fault processes to compose.
    pub models: Vec<FaultModel>,
    /// Faults are confined to `[0, window_s)`; `None` means the whole
    /// horizon. A window shorter than the horizon leaves a fault-free
    /// tail for recovery assertions.
    #[serde(default)]
    pub window_s: Option<f64>,
}

impl ChaosConfig {
    /// A config with no fault models (compiles to the empty schedule).
    pub fn quiet(seed: u64) -> Self {
        ChaosConfig {
            seed,
            models: Vec::new(),
            window_s: None,
        }
    }

    /// Validates every model and the window.
    ///
    /// # Errors
    ///
    /// Returns a message naming the first invalid model or parameter.
    pub fn validate(&self) -> Result<(), String> {
        for (i, m) in self.models.iter().enumerate() {
            m.validate().map_err(|msg| format!("model {i}: {msg}"))?;
        }
        if let Some(w) = self.window_s {
            if !(w.is_finite() && w > 0.0) {
                return Err(format!("fault window {w} not positive"));
            }
        }
        Ok(())
    }

    /// Compiles the config into a concrete schedule for `n_devices`
    /// devices over `[0, horizon)` of simulated time.
    ///
    /// Each (model, lane) pair draws alternating exponential gap/episode
    /// lengths from its own sub-RNG, with the mean gap chosen so the
    /// long-run active fraction matches the model's duty cycle. Episodes
    /// are clipped to the fault window; the first interval is always a
    /// gap, so runs never start mid-fault.
    pub fn compile(&self, n_devices: usize, horizon: SimTime) -> FaultSchedule {
        invariant::check_nonneg("chaos.compile.horizon", horizon.as_secs());
        if let Err(msg) = self.validate() {
            invariant::violation("chaos.config", &msg);
        }
        let window = self
            .window_s
            .map_or(horizon, |w| SimTime::from_secs(w).min(horizon));
        let mut events = Vec::new();
        for (model_idx, model) in self.models.iter().enumerate() {
            let (duty, mean_episode) = model.duty_mean();
            let mean_gap = mean_episode * (1.0 - duty) / duty;
            let kind = model.kind();
            for (lane_idx, target) in model.targets(n_devices).into_iter().enumerate() {
                let mut rng = StdRng::seed_from_u64(sub_seed(self.seed, model_idx, lane_idx));
                let mut t = exp_draw(&mut rng, mean_gap);
                while t < window.as_secs() {
                    let len = exp_draw(&mut rng, mean_episode).max(MIN_EPISODE_S);
                    let end = (t + len).min(window.as_secs());
                    if end > t {
                        events.push(FaultEvent {
                            kind,
                            target,
                            start: SimTime::from_secs(t),
                            end: SimTime::from_secs(end),
                        });
                    }
                    t = end + exp_draw(&mut rng, mean_gap);
                }
            }
        }
        FaultSchedule::new_checked(events)
    }
}

/// Mixes (seed, model, lane) into an independent sub-stream seed.
fn sub_seed(seed: u64, model_idx: usize, lane_idx: usize) -> u64 {
    seed ^ (model_idx as u64 + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15)
        ^ (lane_idx as u64 + 1).wrapping_mul(0xD1B5_4A32_D192_ED03)
}

/// Exponential draw with the given mean via inverse-CDF.
fn exp_draw(rng: &mut StdRng, mean: f64) -> f64 {
    let u: f64 = rng.gen_range(0.0..1.0);
    -mean * (1.0 - u).ln()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn flaps(duty: f64) -> ChaosConfig {
        ChaosConfig {
            seed: 42,
            models: vec![FaultModel::LinkFlaps {
                duty,
                mean_outage_s: 5.0,
            }],
            window_s: None,
        }
    }

    #[test]
    fn same_seed_compiles_to_identical_schedule() {
        let cfg = flaps(0.3);
        let a = cfg.compile(4, SimTime::from_secs(500.0));
        let b = cfg.compile(4, SimTime::from_secs(500.0));
        assert_eq!(a, b);
        assert!(!a.events().is_empty());
    }

    #[test]
    fn different_seeds_differ() {
        let mut other = flaps(0.3);
        other.seed = 43;
        let a = flaps(0.3).compile(4, SimTime::from_secs(500.0));
        let b = other.compile(4, SimTime::from_secs(500.0));
        assert_ne!(a, b);
    }

    #[test]
    fn adding_a_device_preserves_existing_lanes() {
        let cfg = flaps(0.3);
        let small = cfg.compile(2, SimTime::from_secs(500.0));
        let large = cfg.compile(3, SimTime::from_secs(500.0));
        // Lanes 0 and 1 draw from their own sub-RNGs, so their events
        // reappear verbatim in the larger compilation.
        for e in small.events() {
            assert!(large.events().contains(e), "missing {e:?}");
        }
    }

    #[test]
    fn duty_cycle_is_approximately_honoured() {
        let horizon = 20_000.0;
        let s = flaps(0.3).compile(1, SimTime::from_secs(horizon));
        let active: f64 = s.events().iter().map(|e| (e.end - e.start).as_secs()).sum();
        let frac = active / horizon;
        assert!(
            (frac - 0.3).abs() < 0.05,
            "long-run blackout fraction {frac} should be near duty 0.3"
        );
    }

    #[test]
    fn window_confines_faults_and_leaves_recovery_tail() {
        let mut cfg = flaps(0.4);
        cfg.window_s = Some(100.0);
        let s = cfg.compile(2, SimTime::from_secs(300.0));
        assert!(!s.events().is_empty());
        assert!(s.all_clear_after() <= SimTime::from_secs(100.0));
        for e in s.events() {
            assert!(e.end.as_secs() <= 100.0);
        }
    }

    #[test]
    fn quiet_config_compiles_empty() {
        let s = ChaosConfig::quiet(7).compile(8, SimTime::from_secs(100.0));
        assert!(s.events().is_empty());
    }

    #[test]
    fn validation_rejects_bad_models() {
        let bad_duty = ChaosConfig {
            seed: 1,
            models: vec![FaultModel::LinkFlaps {
                duty: 1.5,
                mean_outage_s: 5.0,
            }],
            window_s: None,
        };
        assert!(bad_duty.validate().is_err());
        let bad_factor = ChaosConfig {
            seed: 1,
            models: vec![FaultModel::EdgeBrownout {
                duty: 0.2,
                factor: 0.0,
                mean_episode_s: 5.0,
            }],
            window_s: None,
        };
        assert!(bad_factor.validate().is_err());
        let bad_window = ChaosConfig {
            window_s: Some(-1.0),
            ..ChaosConfig::quiet(1)
        };
        assert!(bad_window.validate().is_err());
    }

    #[test]
    fn edge_models_emit_edge_targets() {
        let cfg = ChaosConfig {
            seed: 9,
            models: vec![
                FaultModel::EdgeOutages {
                    duty: 0.2,
                    mean_outage_s: 10.0,
                },
                FaultModel::BandwidthCollapse {
                    duty: 0.3,
                    factor: 0.1,
                    mean_episode_s: 10.0,
                },
            ],
            window_s: None,
        };
        let s = cfg.compile(3, SimTime::from_secs(1_000.0));
        assert!(s
            .events()
            .iter()
            .all(|e| matches!(e.target, FaultTarget::Edge | FaultTarget::AllDevices)));
        assert!(s
            .events()
            .iter()
            .any(|e| matches!(e.kind, FaultKind::EdgeOutage)));
        assert!(s
            .events()
            .iter()
            .any(|e| matches!(e.kind, FaultKind::BandwidthCollapse { .. })));
    }

    #[test]
    fn config_serialises_round_trip() {
        let cfg = ChaosConfig {
            seed: 11,
            models: vec![FaultModel::LatencySpikes {
                duty: 0.25,
                add_s: 0.08,
                mean_episode_s: 4.0,
            }],
            window_s: Some(60.0),
        };
        let json = serde_json::to_string(&cfg).unwrap();
        let back: ChaosConfig = serde_json::from_str(&json).unwrap();
        assert_eq!(back, cfg);
    }
}
