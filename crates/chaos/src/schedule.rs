//! The event-stream representation of injected faults.
//!
//! A [`FaultSchedule`] is a validated list of [`FaultEvent`]s — intervals
//! of simulated time during which one resource misbehaves in one way.
//! Schedules are plain data on the virtual clock: querying one never
//! mutates it, so the same schedule drives the slotted model, the DES and
//! the bench binaries identically.

use leime_invariant as invariant;
use leime_simnet::SimTime;
use serde::{Deserialize, Serialize};

/// What a fault does while active.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum FaultKind {
    /// The device→edge link is completely down (transfers are lost and
    /// time out; the paper's graceful-degradation trigger).
    LinkBlackout,
    /// COMCAST-style shaping: link bandwidth multiplied by `factor`
    /// (`0 < factor ≤ 1`).
    BandwidthCollapse {
        /// Multiplier applied to the nominal bandwidth.
        factor: f64,
    },
    /// Additional one-way propagation delay on the link, in seconds.
    LatencySpike {
        /// Extra latency added while the spike is active.
        add_s: f64,
    },
    /// The edge server's effective FLOPS multiplied by `factor`
    /// (`0 < factor ≤ 1`) — co-located load, thermal throttling.
    EdgeSlowdown {
        /// Multiplier applied to the nominal edge FLOPS.
        factor: f64,
    },
    /// The edge server is unreachable for every device.
    EdgeOutage,
    /// The device itself leaves the system (powered off / moved away):
    /// it generates no tasks and serves nothing while churned out.
    DeviceChurn,
}

impl FaultKind {
    /// Validates the kind's parameters.
    fn validate(&self) -> Result<(), String> {
        match *self {
            FaultKind::BandwidthCollapse { factor } | FaultKind::EdgeSlowdown { factor }
                if !(factor.is_finite() && factor > 0.0 && factor <= 1.0) =>
            {
                Err(format!("fault factor {factor} outside (0, 1]"))
            }
            FaultKind::LatencySpike { add_s } if !(add_s.is_finite() && add_s >= 0.0) => {
                Err(format!("latency spike {add_s} negative or non-finite"))
            }
            _ => Ok(()),
        }
    }

    /// Whether this kind targets the edge server (as opposed to a device
    /// link or the device itself).
    fn is_edge_kind(&self) -> bool {
        matches!(self, FaultKind::EdgeSlowdown { .. } | FaultKind::EdgeOutage)
    }
}

/// Which resource a fault event hits.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum FaultTarget {
    /// One device (its link, or the device itself for churn).
    Device(usize),
    /// Every device's link at once (shared-medium interference).
    AllDevices,
    /// The edge server.
    Edge,
}

/// One fault: a kind, a target, and the half-open interval
/// `[start, end)` of simulated time during which it is active.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FaultEvent {
    /// What happens.
    pub kind: FaultKind,
    /// What it happens to.
    pub target: FaultTarget,
    /// Activation time (inclusive).
    pub start: SimTime,
    /// Deactivation time (exclusive).
    pub end: SimTime,
}

impl FaultEvent {
    /// Whether the event is active at `t`.
    pub fn active_at(&self, t: SimTime) -> bool {
        self.start <= t && t < self.end
    }

    fn validate(&self) -> Result<(), String> {
        self.kind.validate()?;
        if self.end <= self.start {
            return Err(format!(
                "fault interval [{}, {}) is empty or reversed",
                self.start, self.end
            ));
        }
        if self.kind.is_edge_kind() && self.target != FaultTarget::Edge {
            return Err("edge fault kinds must target FaultTarget::Edge".to_string());
        }
        if matches!(self.kind, FaultKind::DeviceChurn)
            && !matches!(self.target, FaultTarget::Device(_))
        {
            return Err("device churn must target a single device".to_string());
        }
        Ok(())
    }
}

/// A validated, immutable set of fault events — the full disturbance a
/// run is subjected to.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct FaultSchedule {
    events: Vec<FaultEvent>,
}

impl FaultSchedule {
    /// A schedule with no faults (every query reports nominal health).
    pub fn empty() -> Self {
        FaultSchedule::default()
    }

    /// Builds a schedule from events, validating each.
    ///
    /// # Errors
    ///
    /// Returns a message describing the first invalid event.
    pub fn new(events: Vec<FaultEvent>) -> Result<Self, String> {
        for (i, e) in events.iter().enumerate() {
            e.validate().map_err(|msg| format!("event {i}: {msg}"))?;
        }
        Ok(FaultSchedule { events })
    }

    /// Merges two schedules (their disturbances compose).
    #[must_use]
    pub fn merge(mut self, other: FaultSchedule) -> Self {
        self.events.extend(other.events);
        self
    }

    /// The events, in generation order.
    pub fn events(&self) -> &[FaultEvent] {
        &self.events
    }

    /// Number of events active at `t`.
    pub fn active_at(&self, t: SimTime) -> usize {
        self.events.iter().filter(|e| e.active_at(t)).count()
    }

    /// The earliest time after which no fault is ever active again
    /// ([`SimTime::ZERO`] for an empty schedule). Recovery assertions
    /// measure queue drain from here.
    pub fn all_clear_after(&self) -> SimTime {
        self.events
            .iter()
            .map(|e| e.end)
            .max()
            .unwrap_or(SimTime::ZERO)
    }

    /// Whether any `LinkBlackout` targets device `i` somewhere in the
    /// schedule (used by reports to label runs).
    pub fn has_blackouts(&self, device: usize) -> bool {
        self.events.iter().any(|e| {
            matches!(e.kind, FaultKind::LinkBlackout)
                && (e.target == FaultTarget::Device(device) || e.target == FaultTarget::AllDevices)
        })
    }

    /// Routes a by-construction violation through the sanctioned panic
    /// site (used by infallible compilation paths that operate on
    /// already-validated configs).
    pub(crate) fn new_checked(events: Vec<FaultEvent>) -> Self {
        match FaultSchedule::new(events) {
            Ok(s) => s,
            Err(msg) => invariant::violation("chaos.schedule", &msg),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(kind: FaultKind, target: FaultTarget, start: f64, end: f64) -> FaultEvent {
        FaultEvent {
            kind,
            target,
            start: SimTime::from_secs(start),
            end: SimTime::from_secs(end),
        }
    }

    #[test]
    fn interval_is_half_open() {
        let e = ev(FaultKind::LinkBlackout, FaultTarget::Device(0), 2.0, 5.0);
        assert!(!e.active_at(SimTime::from_secs(1.9)));
        assert!(e.active_at(SimTime::from_secs(2.0)));
        assert!(e.active_at(SimTime::from_secs(4.999)));
        assert!(!e.active_at(SimTime::from_secs(5.0)));
    }

    #[test]
    fn validation_rejects_bad_events() {
        // Reversed interval.
        assert!(FaultSchedule::new(vec![ev(
            FaultKind::LinkBlackout,
            FaultTarget::Device(0),
            5.0,
            2.0
        )])
        .is_err());
        // Factor outside (0, 1].
        assert!(FaultSchedule::new(vec![ev(
            FaultKind::BandwidthCollapse { factor: 1.5 },
            FaultTarget::Device(0),
            0.0,
            1.0
        )])
        .is_err());
        // Edge kind on a device target.
        assert!(FaultSchedule::new(vec![ev(
            FaultKind::EdgeOutage,
            FaultTarget::Device(0),
            0.0,
            1.0
        )])
        .is_err());
        // Churn on the edge.
        assert!(FaultSchedule::new(vec![ev(
            FaultKind::DeviceChurn,
            FaultTarget::Edge,
            0.0,
            1.0
        )])
        .is_err());
    }

    #[test]
    fn all_clear_after_is_max_end() {
        let s = FaultSchedule::new(vec![
            ev(FaultKind::LinkBlackout, FaultTarget::Device(0), 0.0, 10.0),
            ev(FaultKind::EdgeOutage, FaultTarget::Edge, 5.0, 30.0),
        ])
        .unwrap();
        assert_eq!(s.all_clear_after(), SimTime::from_secs(30.0));
        assert_eq!(FaultSchedule::empty().all_clear_after(), SimTime::ZERO);
    }

    #[test]
    fn merge_composes_and_counts() {
        let a = FaultSchedule::new(vec![ev(
            FaultKind::LinkBlackout,
            FaultTarget::Device(0),
            0.0,
            10.0,
        )])
        .unwrap();
        let b = FaultSchedule::new(vec![ev(FaultKind::EdgeOutage, FaultTarget::Edge, 5.0, 8.0)])
            .unwrap();
        let m = a.merge(b);
        assert_eq!(m.events().len(), 2);
        assert_eq!(m.active_at(SimTime::from_secs(6.0)), 2);
        assert_eq!(m.active_at(SimTime::from_secs(9.0)), 1);
        assert_eq!(m.active_at(SimTime::from_secs(20.0)), 0);
    }

    #[test]
    fn blackout_lookup_covers_broadcast() {
        let s = FaultSchedule::new(vec![ev(
            FaultKind::LinkBlackout,
            FaultTarget::AllDevices,
            0.0,
            1.0,
        )])
        .unwrap();
        assert!(s.has_blackouts(3));
    }

    #[test]
    fn schedule_serialises_round_trip() {
        let s = FaultSchedule::new(vec![ev(
            FaultKind::LatencySpike { add_s: 0.25 },
            FaultTarget::Device(1),
            3.0,
            9.0,
        )])
        .unwrap();
        let json = serde_json::to_string(&s).unwrap();
        let back: FaultSchedule = serde_json::from_str(&json).unwrap();
        assert_eq!(back, s);
    }
}
