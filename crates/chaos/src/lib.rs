//! # leime-chaos
//!
//! Deterministic, seed-driven fault injection for the LEIME simulation
//! stack — the "in the wild" half of the paper's title, made testable.
//!
//! The paper evaluates LEIME under COMCAST-shaped links (§IV): bandwidth
//! collapses, latency spikes and outright blackouts. This crate expresses
//! those disturbances — plus edge-server slowdown/outage and device churn
//! — as **fault events on the virtual clock**: closed intervals of
//! simulated time during which a link, the edge server or a device is
//! degraded. Because every schedule is generated from a single `u64` seed
//! with `StdRng::seed_from_u64` and queried purely as a function of
//! [`SimTime`], a replay with the same seed is bit-identical
//! (`tests/integration_chaos.rs` pins this).
//!
//! * [`FaultKind`] / [`FaultEvent`] / [`FaultSchedule`] — the event-stream
//!   representation and its point-in-time health queries,
//! * [`FaultModel`] / [`ChaosConfig`] — declarative, serialisable fault
//!   generators (duty cycle + mean episode length per model), compiled to
//!   a concrete schedule per seed,
//! * [`ChaosLink`] / [`ChaosServer`] — wrappers around
//!   [`leime_simnet::Link`] and [`leime_simnet::FifoServer`] that consult
//!   a schedule on every transfer/submission,
//! * [`LinkHealth`] / [`EdgeHealth`] — what a controller (or the graceful-
//!   degradation wrapper in `leime-offload`) observes at a slot boundary.
//!
//! Fault *injection* lives here; fault *handling* (timeout → bounded
//! retry → fully-local fallback, Eq. 10–11 queue evolution under x = 0)
//! lives in `leime-offload::degrade` and the `leime` core systems.

mod health;
mod models;
mod schedule;
mod wrap;

pub use health::{EdgeHealth, LinkHealth};
pub use models::{ChaosConfig, FaultModel};
pub use schedule::{FaultEvent, FaultKind, FaultSchedule, FaultTarget};
pub use wrap::{ChaosLink, ChaosServer, SubmitOutcome, TransferOutcome};
