//! Point-in-time health queries — what the rest of the stack observes.
//!
//! A controller (or the graceful-degradation wrapper) never sees fault
//! *events*; it sees the composed health of a resource at a slot
//! boundary. Overlapping multiplicative faults compose by product,
//! latency spikes by sum, and any active blackout/outage/churn wins
//! outright.

use crate::schedule::{FaultKind, FaultSchedule, FaultTarget};
use leime_invariant as invariant;
use leime_simnet::SimTime;

/// Composed state of one device→edge link at an instant.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LinkHealth {
    /// False while a `LinkBlackout` is active: transfers are lost.
    pub up: bool,
    /// Product of active `BandwidthCollapse` factors (1 when none).
    pub bandwidth_factor: f64,
    /// Sum of active `LatencySpike` additions in seconds (0 when none).
    pub extra_latency_s: f64,
}

impl LinkHealth {
    /// A fault-free link.
    pub const NOMINAL: LinkHealth = LinkHealth {
        up: true,
        bandwidth_factor: 1.0,
        extra_latency_s: 0.0,
    };

    /// Whether the link is exactly nominal (up, unshaped, unspiked).
    pub fn is_nominal(&self) -> bool {
        self.up
            && (self.bandwidth_factor - 1.0).abs() < f64::EPSILON
            && self.extra_latency_s < f64::EPSILON
    }
}

/// Composed state of the edge server at an instant.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EdgeHealth {
    /// False while an `EdgeOutage` is active: the edge serves nothing and
    /// accepts nothing.
    pub up: bool,
    /// Product of active `EdgeSlowdown` factors (1 when none).
    pub speed_factor: f64,
}

impl EdgeHealth {
    /// A fault-free edge server.
    pub const NOMINAL: EdgeHealth = EdgeHealth {
        up: true,
        speed_factor: 1.0,
    };

    /// Whether the edge is exactly nominal (up and at full speed).
    pub fn is_nominal(&self) -> bool {
        self.up && (self.speed_factor - 1.0).abs() < f64::EPSILON
    }
}

impl FaultSchedule {
    /// Composed health of device `device`'s link at `t`.
    pub fn link_health(&self, device: usize, t: SimTime) -> LinkHealth {
        let mut health = LinkHealth::NOMINAL;
        for e in self.events() {
            if !e.active_at(t) {
                continue;
            }
            let hits = match e.target {
                FaultTarget::Device(d) => d == device,
                FaultTarget::AllDevices => true,
                FaultTarget::Edge => false,
            };
            if !hits {
                continue;
            }
            match e.kind {
                FaultKind::LinkBlackout => health.up = false,
                FaultKind::BandwidthCollapse { factor } => health.bandwidth_factor *= factor,
                FaultKind::LatencySpike { add_s } => health.extra_latency_s += add_s,
                _ => {}
            }
        }
        // Factors are (0, 1] per event, so the product stays in (0, 1];
        // spikes are non-negative per event, so the sum stays ≥ 0.
        invariant::check_unit_interval(
            "chaos.link_health.bandwidth_factor",
            health.bandwidth_factor,
        );
        invariant::check_nonneg("chaos.link_health.extra_latency_s", health.extra_latency_s);
        health
    }

    /// Composed health of the edge server at `t`.
    pub fn edge_health(&self, t: SimTime) -> EdgeHealth {
        let mut health = EdgeHealth::NOMINAL;
        for e in self.events() {
            if !e.active_at(t) || e.target != FaultTarget::Edge {
                continue;
            }
            match e.kind {
                FaultKind::EdgeOutage => health.up = false,
                FaultKind::EdgeSlowdown { factor } => health.speed_factor *= factor,
                _ => {}
            }
        }
        invariant::check_unit_interval("chaos.edge_health.speed_factor", health.speed_factor);
        health
    }

    /// Whether device `device` is present (no churn fault active) at `t`.
    pub fn device_alive(&self, device: usize, t: SimTime) -> bool {
        !self.events().iter().any(|e| {
            matches!(e.kind, FaultKind::DeviceChurn)
                && matches!(e.target, FaultTarget::Device(d) if d == device)
                && e.active_at(t)
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schedule::FaultEvent;

    fn ev(kind: FaultKind, target: FaultTarget, start: f64, end: f64) -> FaultEvent {
        FaultEvent {
            kind,
            target,
            start: SimTime::from_secs(start),
            end: SimTime::from_secs(end),
        }
    }

    #[test]
    fn empty_schedule_is_nominal_everywhere() {
        let s = FaultSchedule::empty();
        let h = s.link_health(0, SimTime::from_secs(123.0));
        assert!(h.is_nominal());
        assert!(s.edge_health(SimTime::ZERO).is_nominal());
        assert!(s.device_alive(7, SimTime::from_secs(1e6)));
    }

    #[test]
    fn overlapping_collapses_multiply_and_spikes_add() {
        let s = FaultSchedule::new(vec![
            ev(
                FaultKind::BandwidthCollapse { factor: 0.5 },
                FaultTarget::Device(0),
                0.0,
                10.0,
            ),
            ev(
                FaultKind::BandwidthCollapse { factor: 0.4 },
                FaultTarget::AllDevices,
                5.0,
                15.0,
            ),
            ev(
                FaultKind::LatencySpike { add_s: 0.1 },
                FaultTarget::Device(0),
                0.0,
                10.0,
            ),
            ev(
                FaultKind::LatencySpike { add_s: 0.05 },
                FaultTarget::Device(0),
                0.0,
                10.0,
            ),
        ])
        .unwrap();
        let h = s.link_health(0, SimTime::from_secs(7.0));
        assert!(h.up);
        assert!((h.bandwidth_factor - 0.2).abs() < 1e-12);
        assert!((h.extra_latency_s - 0.15).abs() < 1e-12);
        // Device 1 only sees the broadcast collapse.
        let h1 = s.link_health(1, SimTime::from_secs(7.0));
        assert!((h1.bandwidth_factor - 0.4).abs() < 1e-12);
        assert_eq!(h1.extra_latency_s, 0.0);
    }

    #[test]
    fn blackout_dominates_link_state() {
        let s = FaultSchedule::new(vec![ev(
            FaultKind::LinkBlackout,
            FaultTarget::Device(2),
            1.0,
            2.0,
        )])
        .unwrap();
        assert!(!s.link_health(2, SimTime::from_secs(1.5)).up);
        assert!(s.link_health(2, SimTime::from_secs(2.5)).up);
        assert!(s.link_health(0, SimTime::from_secs(1.5)).up);
    }

    #[test]
    fn edge_faults_do_not_leak_into_links() {
        let s = FaultSchedule::new(vec![
            ev(FaultKind::EdgeOutage, FaultTarget::Edge, 0.0, 5.0),
            ev(
                FaultKind::EdgeSlowdown { factor: 0.25 },
                FaultTarget::Edge,
                5.0,
                10.0,
            ),
        ])
        .unwrap();
        assert!(s.link_health(0, SimTime::from_secs(1.0)).is_nominal());
        assert!(!s.edge_health(SimTime::from_secs(1.0)).up);
        let slow = s.edge_health(SimTime::from_secs(6.0));
        assert!(slow.up);
        assert!((slow.speed_factor - 0.25).abs() < 1e-12);
    }

    #[test]
    fn churn_removes_one_device_only() {
        let s = FaultSchedule::new(vec![ev(
            FaultKind::DeviceChurn,
            FaultTarget::Device(1),
            10.0,
            20.0,
        )])
        .unwrap();
        assert!(s.device_alive(1, SimTime::from_secs(9.0)));
        assert!(!s.device_alive(1, SimTime::from_secs(15.0)));
        assert!(s.device_alive(0, SimTime::from_secs(15.0)));
    }
}
