//! Fault-aware wrappers around the simnet primitives.
//!
//! [`ChaosLink`] and [`ChaosServer`] own a [`Link`] / [`FifoServer`] plus
//! a [`FaultSchedule`]; every transfer/submission first consults the
//! schedule at the virtual-clock instant of the call. A blackout or
//! outage turns the operation into an explicit [`TransferOutcome`] /
//! [`SubmitOutcome`] failure — callers decide whether to retry, back off
//! or fall back to local execution (`leime-offload::degrade`).

use crate::schedule::FaultSchedule;
use crate::{EdgeHealth, LinkHealth};
use leime_invariant as invariant;
use leime_simnet::{FifoServer, Link, SimTime};

/// Result of attempting a transfer over a fault-wrapped link.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum TransferOutcome {
    /// The payload arrives at the far end at this time.
    Delivered(SimTime),
    /// A link blackout swallowed the payload; the sender observes a
    /// timeout and must retry or fall back.
    Blackout,
}

impl TransferOutcome {
    /// The arrival time, if the transfer succeeded.
    pub fn delivered(self) -> Option<SimTime> {
        match self {
            TransferOutcome::Delivered(t) => Some(t),
            TransferOutcome::Blackout => None,
        }
    }
}

/// Result of submitting work to a fault-wrapped server.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum SubmitOutcome {
    /// The job completes at this time.
    Accepted(SimTime),
    /// The server is down; the job is not enqueued.
    Outage,
}

impl SubmitOutcome {
    /// The completion time, if the job was accepted.
    pub fn accepted(self) -> Option<SimTime> {
        match self {
            SubmitOutcome::Accepted(t) => Some(t),
            SubmitOutcome::Outage => None,
        }
    }
}

/// A [`Link`] that consults a [`FaultSchedule`] on every transfer.
///
/// Bandwidth collapses and latency spikes reshape the link for the
/// duration of each call; blackouts drop the payload entirely. The
/// nominal parameters are retained so health is always applied to the
/// *configured* link, never compounded onto a previously-faulted state.
#[derive(Debug, Clone)]
pub struct ChaosLink {
    inner: Link,
    schedule: FaultSchedule,
    device: usize,
    nominal_bandwidth_bps: f64,
    nominal_latency: SimTime,
}

impl ChaosLink {
    /// Wraps `link` as device `device`'s uplink under `schedule`.
    pub fn new(link: Link, schedule: FaultSchedule, device: usize) -> Self {
        let nominal_bandwidth_bps = link.bandwidth_bps();
        let nominal_latency = link.latency();
        ChaosLink {
            inner: link,
            schedule,
            device,
            nominal_bandwidth_bps,
            nominal_latency,
        }
    }

    /// Composed link health at `now`.
    pub fn health(&self, now: SimTime) -> LinkHealth {
        self.schedule.link_health(self.device, now)
    }

    /// Attempts to transfer `bytes` at `now`.
    ///
    /// A blackout loses the payload (and occupies no medium time); an
    /// up-but-degraded link carries it at the shaped bandwidth plus the
    /// spiked latency.
    pub fn transfer(&mut self, now: SimTime, bytes: f64) -> TransferOutcome {
        let health = self.health(now);
        if !health.up {
            return TransferOutcome::Blackout;
        }
        self.inner
            .set_bandwidth(self.nominal_bandwidth_bps * health.bandwidth_factor);
        self.inner
            .set_latency(self.nominal_latency + SimTime::from_secs(health.extra_latency_s));
        let arrive = self.inner.transfer(now, bytes);
        invariant::check_finite_cost("chaos.link.transfer", arrive.as_secs());
        TransferOutcome::Delivered(arrive)
    }

    /// The wrapped link (current shaped state, byte counters).
    pub fn inner(&self) -> &Link {
        &self.inner
    }

    /// The schedule driving this link.
    pub fn schedule(&self) -> &FaultSchedule {
        &self.schedule
    }
}

/// A [`FifoServer`] that consults a [`FaultSchedule`] on every
/// submission (the edge server's compute under brownout/outage).
#[derive(Debug, Clone)]
pub struct ChaosServer {
    inner: FifoServer,
    schedule: FaultSchedule,
    nominal_rate_flops: f64,
}

impl ChaosServer {
    /// Wraps `server` as the edge server under `schedule`.
    pub fn new(server: FifoServer, schedule: FaultSchedule) -> Self {
        let nominal_rate_flops = server.rate();
        ChaosServer {
            inner: server,
            schedule,
            nominal_rate_flops,
        }
    }

    /// Composed edge health at `now`.
    pub fn health(&self, now: SimTime) -> EdgeHealth {
        self.schedule.edge_health(now)
    }

    /// Attempts to submit `flops` of work at `now`.
    ///
    /// During an outage the job is rejected outright; during a brownout
    /// it is served at the slowed rate.
    pub fn submit(&mut self, now: SimTime, flops: f64) -> SubmitOutcome {
        let health = self.health(now);
        if !health.up {
            return SubmitOutcome::Outage;
        }
        self.inner
            .set_rate(self.nominal_rate_flops * health.speed_factor);
        let done = self.inner.submit(now, flops);
        invariant::check_finite_cost("chaos.server.submit", done.as_secs());
        SubmitOutcome::Accepted(done)
    }

    /// The wrapped server (backlog, utilisation, job counters).
    pub fn inner(&self) -> &FifoServer {
        &self.inner
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schedule::{FaultEvent, FaultKind, FaultTarget};

    fn schedule(kind: FaultKind, target: FaultTarget, start: f64, end: f64) -> FaultSchedule {
        FaultSchedule::new(vec![FaultEvent {
            kind,
            target,
            start: SimTime::from_secs(start),
            end: SimTime::from_secs(end),
        }])
        .unwrap()
    }

    fn base_link() -> Link {
        // 1 Mbps, zero latency, uncontended: 125 000 bytes take 1 s.
        Link::new(1e6, SimTime::ZERO, false)
    }

    #[test]
    fn blackout_drops_transfers_then_recovers() {
        let s = schedule(FaultKind::LinkBlackout, FaultTarget::Device(0), 0.0, 5.0);
        let mut l = ChaosLink::new(base_link(), s, 0);
        assert_eq!(
            l.transfer(SimTime::from_secs(1.0), 125_000.0),
            TransferOutcome::Blackout
        );
        let after = l.transfer(SimTime::from_secs(5.0), 125_000.0);
        assert_eq!(after.delivered(), Some(SimTime::from_secs(6.0)));
        // The blackout moved no bytes.
        assert!((l.inner().bytes_moved() - 125_000.0).abs() < 1e-9);
    }

    #[test]
    fn collapse_slows_then_restores_nominal_rate() {
        let s = schedule(
            FaultKind::BandwidthCollapse { factor: 0.25 },
            FaultTarget::AllDevices,
            0.0,
            10.0,
        );
        let mut l = ChaosLink::new(base_link(), s, 3);
        // 1 s of nominal payload takes 4 s under a 0.25× collapse.
        let slow = l.transfer(SimTime::ZERO, 125_000.0).delivered();
        assert_eq!(slow, Some(SimTime::from_secs(4.0)));
        let fast = l.transfer(SimTime::from_secs(20.0), 125_000.0).delivered();
        assert_eq!(fast, Some(SimTime::from_secs(21.0)));
    }

    #[test]
    fn spike_adds_latency_without_reshaping_bandwidth() {
        let s = schedule(
            FaultKind::LatencySpike { add_s: 0.5 },
            FaultTarget::Device(1),
            0.0,
            10.0,
        );
        let mut l = ChaosLink::new(base_link(), s, 1);
        let t = l.transfer(SimTime::ZERO, 125_000.0).delivered();
        assert_eq!(t, Some(SimTime::from_secs(1.5)));
    }

    #[test]
    fn blackout_targets_only_its_device() {
        let s = schedule(FaultKind::LinkBlackout, FaultTarget::Device(0), 0.0, 5.0);
        let mut other = ChaosLink::new(base_link(), s, 1);
        assert!(other
            .transfer(SimTime::from_secs(1.0), 125_000.0)
            .delivered()
            .is_some());
    }

    #[test]
    fn outage_rejects_then_brownout_slows_jobs() {
        let sched = FaultSchedule::new(vec![
            FaultEvent {
                kind: FaultKind::EdgeOutage,
                target: FaultTarget::Edge,
                start: SimTime::ZERO,
                end: SimTime::from_secs(2.0),
            },
            FaultEvent {
                kind: FaultKind::EdgeSlowdown { factor: 0.5 },
                target: FaultTarget::Edge,
                start: SimTime::from_secs(2.0),
                end: SimTime::from_secs(10.0),
            },
        ])
        .unwrap();
        let mut srv = ChaosServer::new(FifoServer::new(100.0), sched);
        assert_eq!(
            srv.submit(SimTime::from_secs(1.0), 100.0),
            SubmitOutcome::Outage
        );
        assert_eq!(srv.inner().jobs_served(), 0);
        // 1 s of nominal work takes 2 s at half rate, submitted at t = 2.
        let done = srv.submit(SimTime::from_secs(2.0), 100.0).accepted();
        assert_eq!(done, Some(SimTime::from_secs(4.0)));
        // Past the brownout the nominal rate returns.
        let later = srv.submit(SimTime::from_secs(20.0), 100.0).accepted();
        assert_eq!(later, Some(SimTime::from_secs(21.0)));
    }

    #[test]
    fn nominal_schedule_is_transparent() {
        let mut l = ChaosLink::new(base_link(), FaultSchedule::empty(), 0);
        let mut raw = base_link();
        let wrapped = l.transfer(SimTime::ZERO, 250_000.0).delivered();
        assert_eq!(wrapped, Some(raw.transfer(SimTime::ZERO, 250_000.0)));
        let mut s = ChaosServer::new(FifoServer::new(100.0), FaultSchedule::empty());
        assert_eq!(
            s.submit(SimTime::ZERO, 300.0).accepted(),
            Some(SimTime::from_secs(3.0))
        );
    }
}
