//! Report rendering: human-readable text and the `leime-lint/4` JSON
//! schema (same versioned-schema idiom as `leime-telemetry/1`).
//!
//! `leime-lint/2` extended `/1` with the semantic S1–S4 rules and a
//! `rule_set` field naming the rule universe the schema covers;
//! `leime-lint/3` extended the rule universe with the interprocedural
//! flow rules S5–S8 (shard-capture races, the hot-path allocation
//! ratchet, RNG-stream hygiene, shard-body blocking); `leime-lint/4`
//! extends it again with the numeric-determinism and unsafe-audit
//! rules S9–S12 (hot-path float reductions, `target_feature` round
//! bodies and the SIMD differential-test registry, the `unsafe`
//! ledger ratchet, shard lock-order cycles). All `/2`-era fields are
//! unchanged, so older consumers keep working; only `rule_set` and
//! the possible `rule` values grow.

use crate::rules::{Finding, Waived, RULE_IDS};
use serde::Serialize;

/// Version tag written into every JSON report.
pub const SCHEMA_VERSION: &str = "leime-lint/4";

/// Per-rule violation count.
#[derive(Debug, Clone, Serialize, PartialEq, Eq)]
pub struct RuleCount {
    /// Rule identifier.
    pub rule: String,
    /// Number of unwaived violations.
    pub count: usize,
}

/// The aggregated result of one lint run.
#[derive(Debug, Clone, Serialize)]
pub struct Report {
    /// Schema tag (`leime-lint/4`).
    pub schema: String,
    /// The rule identifiers this schema covers (L1–L5, S1–S12).
    pub rule_set: Vec<String>,
    /// Number of files scanned.
    pub files_scanned: usize,
    /// Unwaived violations, sorted by path, line, rule.
    pub violations: Vec<Finding>,
    /// Waived violations with justifications.
    pub waived: Vec<Waived>,
    /// Waivers actually used.
    pub waivers_used: usize,
    /// Maximum allowed waivers.
    pub waiver_budget: usize,
    /// Per-rule violation counts (only rules with hits).
    pub summary: Vec<RuleCount>,
}

impl Report {
    /// Builds a report from the merged per-file results.
    pub fn new(
        files_scanned: usize,
        mut violations: Vec<Finding>,
        waived: Vec<Waived>,
        waiver_budget: usize,
    ) -> Self {
        violations.sort_by(|a, b| (&a.path, a.line, &a.rule).cmp(&(&b.path, b.line, &b.rule)));
        let mut summary: Vec<RuleCount> = Vec::new();
        for f in &violations {
            match summary.iter_mut().find(|c| c.rule == f.rule) {
                Some(c) => c.count += 1,
                None => summary.push(RuleCount {
                    rule: f.rule.clone(),
                    count: 1,
                }),
            }
        }
        summary.sort_by(|a, b| a.rule.cmp(&b.rule));
        Report {
            schema: SCHEMA_VERSION.to_string(),
            rule_set: RULE_IDS.iter().map(|r| (*r).to_string()).collect(),
            files_scanned,
            waivers_used: waived.len(),
            waiver_budget,
            violations,
            waived,
            summary,
        }
    }

    /// Whether the run passes: no violations and the waiver budget holds.
    pub fn is_clean(&self) -> bool {
        self.violations.is_empty() && self.waivers_used <= self.waiver_budget
    }

    /// Renders the human-readable report.
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        for f in &self.violations {
            out.push_str(&format!(
                "{}:{}: [{}] {}\n",
                f.path, f.line, f.rule, f.message
            ));
        }
        if !self.violations.is_empty() {
            out.push('\n');
        }
        for w in &self.waived {
            out.push_str(&format!(
                "{}:{}: waived [{}] — {}\n",
                w.finding.path, w.finding.line, w.finding.rule, w.justification
            ));
        }
        let summary = if self.summary.is_empty() {
            "none".to_string()
        } else {
            self.summary
                .iter()
                .map(|c| format!("{}: {}", c.rule, c.count))
                .collect::<Vec<_>>()
                .join(", ")
        };
        out.push_str(&format!(
            "leime-lint: {} violation(s) ({summary}), {} waived (budget {}/{}), {} file(s) scanned\n",
            self.violations.len(),
            self.waived.len(),
            self.waivers_used,
            self.waiver_budget,
            self.files_scanned,
        ));
        if self.waivers_used > self.waiver_budget {
            out.push_str(&format!(
                "leime-lint: waiver budget exceeded ({} > {})\n",
                self.waivers_used, self.waiver_budget
            ));
        }
        out
    }

    /// Renders the `leime-lint/4` JSON report.
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self)
            .unwrap_or_else(|e| format!("{{\"schema\":\"{SCHEMA_VERSION}\",\"error\":\"{e:?}\"}}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn finding(rule: &str, path: &str, line: u32) -> Finding {
        Finding {
            rule: rule.to_string(),
            path: path.to_string(),
            line,
            message: "m".to_string(),
        }
    }

    #[test]
    fn summary_counts_and_sorts() {
        let r = Report::new(
            3,
            vec![
                finding("L2", "b.rs", 9),
                finding("L1", "a.rs", 4),
                finding("L1", "a.rs", 2),
            ],
            vec![],
            5,
        );
        assert_eq!(r.violations[0].line, 2);
        assert_eq!(r.summary.len(), 2);
        assert_eq!((r.summary[0].rule.as_str(), r.summary[0].count), ("L1", 2));
        assert!(!r.is_clean());
    }

    #[test]
    fn clean_report() {
        let r = Report::new(10, vec![], vec![], 5);
        assert!(r.is_clean());
        assert!(r.render_text().contains("0 violation(s)"));
    }

    #[test]
    fn budget_overflow_fails() {
        let w = Waived {
            finding: finding("L1", "a.rs", 1),
            justification: "j".to_string(),
        };
        let r = Report::new(1, vec![], vec![w.clone(), w], 1);
        assert!(!r.is_clean());
        assert!(r.render_text().contains("budget exceeded"));
    }

    #[test]
    fn json_has_schema_and_findings() {
        let r = Report::new(2, vec![finding("L3", "c.rs", 7)], vec![], 5);
        let json = r.to_json();
        let v: serde_json::Value = match serde_json::from_str(&json) {
            Ok(v) => v,
            Err(e) => unreachable!("report JSON must parse: {e:?}"),
        };
        assert_eq!(v["schema"].as_str(), Some(SCHEMA_VERSION));
        let first = match v["violations"].as_array() {
            Some(list) => &list[0],
            None => unreachable!("violations must be an array"),
        };
        assert_eq!(first["rule"].as_str(), Some("L3"));
        assert_eq!(first["line"].as_u64(), Some(7));
    }
}
