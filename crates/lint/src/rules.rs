//! The L1–L5 rule set, run over the token stream of one file.
//!
//! | Rule | Enforces |
//! | ---- | -------- |
//! | `L1` | no `unwrap()` / `expect()` / `panic!` / `unimplemented!` / `todo!` in non-test library code |
//! | `L2` | no NaN-unsafe `partial_cmp(..).unwrap()` / `.expect(..)` — use `total_cmp` |
//! | `L3` | no wall-clock `Instant::now` / `SystemTime::now` outside the telemetry crate |
//! | `L4` | no `==` / `!=` against float literals |
//! | `L5` | guarded solver/queue functions in `offload`/`exitcfg` must call `invariant::` |
//!
//! The semantic S1–S4 rules (implemented in `leime-sema`, orchestrated
//! by [`crate::run`]) share this module's waiver and finding machinery:
//! S1–S3 findings merge into the per-file scan before waivers apply,
//! S4 findings live in `Cargo.toml`s and are not waivable.
//!
//! Waivers: a comment `// lint:allow(<RULE>): <justification>` on the
//! offending line, or on the line directly above it, suppresses exactly
//! the named rule on that line. A waiver must name a known rule and carry
//! a non-empty justification; violations of either are reported as `W2` /
//! `W1` findings, and a waiver that suppresses nothing is reported as
//! `W3` (stale waiver).

use crate::lexer::{lex, test_mask, Tok, TokKind};
use serde::Serialize;
use std::collections::HashSet;

/// One rule violation (or waived violation). The type lives in
/// `leime-sema` so both analysis layers speak it; the waiver and report
/// machinery wrapping it lives here.
pub use leime_sema::Finding;

/// All primary rule identifiers: the token-level L-rules plus the
/// semantic S-rules from `leime-sema` (S5–S8 are the interprocedural
/// flow rules, S9–S12 the numeric-determinism and unsafe-audit rules).
pub const RULE_IDS: &[&str] = &[
    "L1", "L2", "L3", "L4", "L5", "S1", "S2", "S3", "S4", "S5", "S6", "S7", "S8", "S9", "S10",
    "S11", "S12",
];

/// A violation suppressed by an inline waiver.
#[derive(Debug, Clone, Serialize, PartialEq, Eq)]
pub struct Waived {
    /// The suppressed finding.
    pub finding: Finding,
    /// The justification text from the waiver comment.
    pub justification: String,
}

/// Per-run rule configuration.
#[derive(Debug, Clone)]
pub struct RuleConfig {
    /// Rules to run; `None` runs all of them.
    pub enabled: Option<HashSet<String>>,
    /// Path substrings marking files subject to L5.
    pub guarded_path_markers: Vec<String>,
    /// Function names that must route through `invariant::` (L5).
    pub guarded_fn_names: Vec<String>,
    /// Path substrings exempt from L3 (the telemetry crate owns the
    /// wall clock).
    pub wallclock_exempt_markers: Vec<String>,
    /// Path substrings marking determinism-sensitive files (S2).
    pub hash_path_markers: Vec<String>,
    /// Path substrings marking unit-suffix-checked numeric files (S3).
    pub unit_path_markers: Vec<String>,
    /// Path substrings marking hot-path files for the S6 allocation
    /// ratchet.
    pub hot_path_markers: Vec<String>,
    /// Path substrings marking files whose RNG constructions S7 audits.
    pub rng_path_markers: Vec<String>,
    /// Function names allowed to hold float accumulations under S9
    /// (ordered-reduction helpers and approved bit-exact kernels).
    pub s9_approved_fns: Vec<String>,
    /// Shared round bodies registered as FMA-free (S10).
    pub fma_free_round_bodies: Vec<String>,
}

impl Default for RuleConfig {
    fn default() -> Self {
        RuleConfig {
            enabled: None,
            guarded_path_markers: vec![
                "crates/offload/src".to_string(),
                "crates/exitcfg/src".to_string(),
                "crates/chaos/src".to_string(),
                "crates/serving/src".to_string(),
                "crates/fleet/src".to_string(),
            ],
            guarded_fn_names: [
                "kkt_allocation",
                "kkt_allocation_with_floor",
                "step",
                "balance_solve",
                "golden_section_solve",
                "feasible_interval",
                "decide",
                "branch_and_bound",
                "exhaustive",
                "multi_tier_exits",
                // chaos + graceful-degradation entry points
                "compile",
                "link_health",
                "edge_health",
                "degraded_decide",
                "transfer",
                "submit",
                // parallel sweep entry point (finite-cost guard)
                "par_sweep",
                // serving admission + exit-steering entry points
                "admit",
                "steer_exits",
                // fleet regional-tier entry points (pressure balancing
                // and failover evacuation route through invariant::)
                "rebalance",
                "evacuate",
            ]
            .iter()
            .map(|s| (*s).to_string())
            .collect(),
            wallclock_exempt_markers: vec!["crates/telemetry/".to_string()],
            hash_path_markers: leime_sema::SemaConfig::default().hash_path_markers,
            unit_path_markers: leime_sema::SemaConfig::default().unit_path_markers,
            hot_path_markers: leime_sema::SemaConfig::default().hot_path_markers,
            rng_path_markers: leime_sema::SemaConfig::default().rng_path_markers,
            s9_approved_fns: leime_sema::SemaConfig::default().s9_approved_fns,
            fma_free_round_bodies: leime_sema::SemaConfig::default().fma_free_round_bodies,
        }
    }
}

impl RuleConfig {
    fn rule_on(&self, id: &str) -> bool {
        match &self.enabled {
            None => true,
            Some(set) => set.contains(id),
        }
    }

    /// The `leime-sema` view of this configuration: same enabled set and
    /// guarded-function scoping, plus the S2/S3 and flow (S6/S7) path
    /// markers. Hot-region roots, `leime-par` entry points, and the S5
    /// telemetry exemption keep their `leime-sema` defaults.
    pub fn sema_config(&self) -> leime_sema::SemaConfig {
        leime_sema::SemaConfig {
            enabled: self
                .enabled
                .as_ref()
                .map(|set| set.iter().cloned().collect()),
            guarded_path_markers: self.guarded_path_markers.clone(),
            guarded_fn_names: self.guarded_fn_names.clone(),
            hash_path_markers: self.hash_path_markers.clone(),
            unit_path_markers: self.unit_path_markers.clone(),
            hot_path_markers: self.hot_path_markers.clone(),
            rng_path_markers: self.rng_path_markers.clone(),
            s9_approved_fns: self.s9_approved_fns.clone(),
            fma_free_round_bodies: self.fma_free_round_bodies.clone(),
            ..leime_sema::SemaConfig::default()
        }
    }
}

/// The outcome of scanning one file.
#[derive(Debug, Default)]
pub struct FileScan {
    /// Unwaived violations.
    pub findings: Vec<Finding>,
    /// Waived violations with their justifications.
    pub waived: Vec<Waived>,
}

/// A parsed `lint:allow` waiver.
#[derive(Debug)]
struct Waiver {
    line: u32,
    rules: Vec<String>,
    justification: String,
    used: bool,
}

/// Scans one file's source text against the token-level rule set.
pub fn scan_source(path: &str, src: &str, cfg: &RuleConfig) -> FileScan {
    scan_source_with(path, src, cfg, Vec::new())
}

/// Like [`scan_source`], with externally-produced raw findings (the
/// semantic S1–S3 results for this file) merged in *before* waivers
/// apply, so one `// lint:allow(S2): …` machinery covers both layers.
pub fn scan_source_with(path: &str, src: &str, cfg: &RuleConfig, extra: Vec<Finding>) -> FileScan {
    let lexed = lex(src);
    let toks = &lexed.toks;
    let mask = test_mask(toks);
    let mut raw: Vec<Finding> = Vec::new();

    // L2 first: its matches also contain an `unwrap`/`expect` token that
    // L1 must not double-report.
    let mut consumed_by_l2: HashSet<usize> = HashSet::new();
    if cfg.rule_on("L2") {
        scan_l2(path, toks, &mask, &mut raw, &mut consumed_by_l2);
    }
    if cfg.rule_on("L1") {
        scan_l1(path, toks, &mask, &consumed_by_l2, &mut raw);
    }
    if cfg.rule_on("L3") && !path_matches(path, &cfg.wallclock_exempt_markers) {
        scan_l3(path, toks, &mask, &mut raw);
    }
    if cfg.rule_on("L4") {
        scan_l4(path, toks, &mask, &mut raw);
    }
    if cfg.rule_on("L5") && path_matches(path, &cfg.guarded_path_markers) {
        scan_l5(path, toks, &mask, &cfg.guarded_fn_names, &mut raw);
    }
    raw.extend(extra);

    apply_waivers(path, &lexed.comments, raw)
}

fn path_matches(path: &str, markers: &[String]) -> bool {
    let norm = path.replace('\\', "/");
    markers.iter().any(|m| norm.contains(m.as_str()))
}

fn is_punct(t: &Tok, s: &str) -> bool {
    t.kind == TokKind::Punct && t.text == s
}

fn is_ident(t: &Tok, s: &str) -> bool {
    t.kind == TokKind::Ident && t.text == s
}

/// L1: panic-prone calls and macros in non-test code.
fn scan_l1(
    path: &str,
    toks: &[Tok],
    mask: &[bool],
    consumed_by_l2: &HashSet<usize>,
    out: &mut Vec<Finding>,
) {
    for i in 0..toks.len() {
        if mask[i] {
            continue;
        }
        let t = &toks[i];
        if t.kind != TokKind::Ident {
            continue;
        }
        let next = toks.get(i + 1);
        match t.text.as_str() {
            "unwrap" | "expect" => {
                let is_method = i > 0 && is_punct(&toks[i - 1], ".");
                let is_call = next.is_some_and(|n| is_punct(n, "("));
                if is_method && is_call && !consumed_by_l2.contains(&i) {
                    out.push(Finding {
                        rule: "L1".to_string(),
                        path: path.to_string(),
                        line: t.line,
                        message: format!(
                            "`.{}()` in library code — return a typed error instead",
                            t.text
                        ),
                    });
                }
            }
            "panic" | "unimplemented" | "todo" if next.is_some_and(|n| is_punct(n, "!")) => {
                out.push(Finding {
                    rule: "L1".to_string(),
                    path: path.to_string(),
                    line: t.line,
                    message: format!(
                        "`{}!` in library code — return a typed error instead",
                        t.text
                    ),
                });
            }
            _ => {}
        }
    }
}

/// L2: `partial_cmp(..)` whose result is immediately unwrapped.
fn scan_l2(
    path: &str,
    toks: &[Tok],
    mask: &[bool],
    out: &mut Vec<Finding>,
    consumed: &mut HashSet<usize>,
) {
    for i in 0..toks.len() {
        if mask[i] || !is_ident(&toks[i], "partial_cmp") {
            continue;
        }
        let Some(open) = toks.get(i + 1).filter(|t| is_punct(t, "(")) else {
            continue;
        };
        let _ = open;
        // Find the matching close paren of the argument list.
        let mut depth = 0usize;
        let mut j = i + 1;
        let mut close = None;
        while j < toks.len() {
            if is_punct(&toks[j], "(") {
                depth += 1;
            } else if is_punct(&toks[j], ")") {
                depth -= 1;
                if depth == 0 {
                    close = Some(j);
                    break;
                }
            }
            j += 1;
        }
        let Some(close) = close else { continue };
        if toks.get(close + 1).is_some_and(|t| is_punct(t, "."))
            && toks
                .get(close + 2)
                .is_some_and(|t| is_ident(t, "unwrap") || is_ident(t, "expect"))
        {
            consumed.insert(close + 2);
            out.push(Finding {
                rule: "L2".to_string(),
                path: path.to_string(),
                line: toks[i].line,
                message: "NaN-unsafe `partial_cmp(..)` unwrap — use `total_cmp`".to_string(),
            });
        }
    }
}

/// L3: wall-clock reads outside the telemetry crate.
fn scan_l3(path: &str, toks: &[Tok], mask: &[bool], out: &mut Vec<Finding>) {
    for i in 0..toks.len() {
        if mask[i] {
            continue;
        }
        let clock = match toks[i].text.as_str() {
            "Instant" | "SystemTime" if toks[i].kind == TokKind::Ident => &toks[i].text,
            _ => continue,
        };
        if toks.get(i + 1).is_some_and(|t| is_punct(t, "::"))
            && toks.get(i + 2).is_some_and(|t| is_ident(t, "now"))
        {
            out.push(Finding {
                rule: "L3".to_string(),
                path: path.to_string(),
                line: toks[i].line,
                message: format!(
                    "wall-clock `{clock}::now` breaks sim determinism — use a telemetry `Clock`"
                ),
            });
        }
    }
}

/// L4: `==` / `!=` against a float literal.
fn scan_l4(path: &str, toks: &[Tok], mask: &[bool], out: &mut Vec<Finding>) {
    for i in 0..toks.len() {
        if mask[i] || toks[i].kind != TokKind::Punct {
            continue;
        }
        let op = toks[i].text.as_str();
        if op != "==" && op != "!=" {
            continue;
        }
        let float_beside = (i > 0 && toks[i - 1].kind == TokKind::Float)
            || toks.get(i + 1).is_some_and(|t| t.kind == TokKind::Float);
        if float_beside {
            out.push(Finding {
                rule: "L4".to_string(),
                path: path.to_string(),
                line: toks[i].line,
                message: format!(
                    "float `{op}` comparison — compare with a tolerance or restructure"
                ),
            });
        }
    }
}

/// L5: guarded functions must call into the `invariant` module.
fn scan_l5(path: &str, toks: &[Tok], mask: &[bool], guarded: &[String], out: &mut Vec<Finding>) {
    let mut i = 0usize;
    while i < toks.len() {
        if mask[i] || !is_ident(&toks[i], "fn") {
            i += 1;
            continue;
        }
        let Some(name_tok) = toks.get(i + 1).filter(|t| t.kind == TokKind::Ident) else {
            i += 1;
            continue;
        };
        if !guarded.iter().any(|g| g == &name_tok.text) {
            i += 1;
            continue;
        }
        // Find the body: the first `{` before a top-level `;`.
        let mut j = i + 2;
        let mut body_start = None;
        while j < toks.len() {
            if is_punct(&toks[j], "{") {
                body_start = Some(j);
                break;
            }
            if is_punct(&toks[j], ";") {
                break; // trait method declaration, no body
            }
            j += 1;
        }
        let Some(start) = body_start else {
            i = j + 1;
            continue;
        };
        let mut depth = 0isize;
        let mut k = start;
        let mut guarded_call = false;
        while k < toks.len() {
            if is_punct(&toks[k], "{") {
                depth += 1;
            } else if is_punct(&toks[k], "}") {
                depth -= 1;
                if depth == 0 {
                    break;
                }
            } else if is_ident(&toks[k], "invariant")
                && toks.get(k + 1).is_some_and(|t| is_punct(t, "::"))
            {
                guarded_call = true;
            }
            k += 1;
        }
        if !guarded_call {
            out.push(Finding {
                rule: "L5".to_string(),
                path: path.to_string(),
                line: toks[i].line,
                message: format!(
                    "`fn {}` produces ratios/shares/queue state but never calls an \
                     `invariant::` guard (Eq. 8 / Eq. 10–11 / Eq. 27)",
                    name_tok.text
                ),
            });
        }
        i = k + 1;
    }
}

/// Parses waivers from comments and partitions raw findings into
/// violations and waived findings, appending waiver-hygiene problems.
fn apply_waivers(path: &str, comments: &[crate::lexer::Comment], raw: Vec<Finding>) -> FileScan {
    let mut waivers: Vec<Waiver> = Vec::new();
    for c in comments {
        // A waiver must BE the comment, not merely be mentioned in one
        // (doc text may legitimately describe the syntax).
        let trimmed = c.text.trim_start();
        if !trimmed.starts_with("lint:allow(") {
            continue;
        }
        let rest = &trimmed["lint:allow(".len()..];
        let Some(end) = rest.find(')') else { continue };
        let rules: Vec<String> = rest[..end]
            .split(',')
            .map(|r| r.trim().to_string())
            .filter(|r| !r.is_empty())
            .collect();
        let justification = rest[end + 1..]
            .trim_start_matches([':', ' ', '-', '—'])
            .trim()
            .to_string();
        waivers.push(Waiver {
            line: c.line,
            rules,
            justification,
            used: false,
        });
    }

    let mut scan = FileScan::default();

    for w in &waivers {
        for r in &w.rules {
            if !RULE_IDS.contains(&r.as_str()) {
                scan.findings.push(Finding {
                    rule: "W2".to_string(),
                    path: path.to_string(),
                    line: w.line,
                    message: format!("waiver names unknown rule `{r}`"),
                });
            }
        }
    }

    for f in raw {
        let waiver = waivers
            .iter_mut()
            .find(|w| (w.line == f.line || w.line + 1 == f.line) && w.rules.contains(&f.rule));
        match waiver {
            Some(w) => {
                w.used = true;
                if w.justification.is_empty() {
                    scan.findings.push(Finding {
                        rule: "W1".to_string(),
                        path: path.to_string(),
                        line: w.line,
                        message: format!("waiver for {} has no justification", f.rule),
                    });
                }
                scan.waived.push(Waived {
                    justification: w.justification.clone(),
                    finding: f,
                });
            }
            None => scan.findings.push(f),
        }
    }

    for w in &waivers {
        let all_known = w.rules.iter().all(|r| RULE_IDS.contains(&r.as_str()));
        if !w.used && all_known {
            scan.findings.push(Finding {
                rule: "W3".to_string(),
                path: path.to_string(),
                line: w.line,
                message: format!(
                    "stale waiver: lint:allow({}) suppresses nothing",
                    w.rules.join(",")
                ),
            });
        }
    }

    scan.findings
        .sort_by(|a, b| (a.line, &a.rule).cmp(&(b.line, &b.rule)));
    scan
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scan(src: &str) -> FileScan {
        scan_source("crates/x/src/lib.rs", src, &RuleConfig::default())
    }

    fn rules_of(scan: &FileScan) -> Vec<&str> {
        scan.findings.iter().map(|f| f.rule.as_str()).collect()
    }

    #[test]
    fn l1_flags_unwrap_and_macros() {
        let s = scan("pub fn f(o: Option<u32>) -> u32 { o.unwrap() }\nfn g() { panic!(\"x\") }");
        assert_eq!(rules_of(&s), vec!["L1", "L1"]);
        assert_eq!(s.findings[0].line, 1);
        assert_eq!(s.findings[1].line, 2);
    }

    #[test]
    fn l1_ignores_unwrap_or_variants() {
        let s =
            scan("pub fn f(o: Option<u32>) -> u32 { o.unwrap_or(3).max(o.unwrap_or_default()) }");
        assert!(s.findings.is_empty(), "{:?}", s.findings);
    }

    #[test]
    fn l1_ignores_test_code() {
        let s = scan("#[cfg(test)]\nmod tests { fn t() { None::<u32>.unwrap(); } }");
        assert!(s.findings.is_empty(), "{:?}", s.findings);
    }

    #[test]
    fn l2_subsumes_l1_on_same_site() {
        let s = scan("pub fn f(v: &mut [f64]) { v.sort_by(|a, b| a.partial_cmp(b).unwrap()); }");
        assert_eq!(rules_of(&s), vec!["L2"]);
    }

    #[test]
    fn l2_matches_across_lines() {
        let s = scan(
            "pub fn f(a: f64, b: f64) {\n    a.partial_cmp(&b)\n        .expect(\"finite\");\n}",
        );
        assert_eq!(rules_of(&s), vec!["L2"]);
        assert_eq!(s.findings[0].line, 2);
    }

    #[test]
    fn l2_allows_handled_partial_cmp() {
        let s = scan("pub fn f(a: f64, b: f64) -> bool { a.partial_cmp(&b).is_some() }");
        assert!(s.findings.is_empty(), "{:?}", s.findings);
    }

    #[test]
    fn l3_flags_wall_clock() {
        let s = scan("pub fn f() { let t = std::time::Instant::now(); let _ = t; }");
        assert_eq!(rules_of(&s), vec!["L3"]);
    }

    #[test]
    fn l3_exempts_telemetry_paths() {
        let s = scan_source(
            "crates/telemetry/src/clock.rs",
            "pub fn f() { let _ = Instant::now(); }",
            &RuleConfig::default(),
        );
        assert!(s.findings.is_empty());
    }

    #[test]
    fn l4_flags_float_literal_eq() {
        let s = scan("pub fn f(x: f64) -> bool { x == 0.0 || 1.5 != x }");
        assert_eq!(rules_of(&s), vec!["L4", "L4"]);
    }

    #[test]
    fn l4_ignores_integer_eq() {
        let s = scan("pub fn f(x: u32) -> bool { x == 0 && x != 7 }");
        assert!(s.findings.is_empty());
    }

    #[test]
    fn l5_requires_guard_in_guarded_fn() {
        let cfg = RuleConfig::default();
        let bad = scan_source(
            "crates/offload/src/solver.rs",
            "pub fn balance_solve(x: f64) -> f64 { x * 0.5 }",
            &cfg,
        );
        assert_eq!(rules_of(&bad), vec!["L5"]);
        let good = scan_source(
            "crates/offload/src/solver.rs",
            "pub fn balance_solve(x: f64) -> f64 { invariant::check_unit_interval(\"x\", x) }",
            &cfg,
        );
        assert!(good.findings.is_empty());
    }

    #[test]
    fn l5_skips_trait_declarations_and_other_crates() {
        let cfg = RuleConfig::default();
        let decl = scan_source(
            "crates/offload/src/controller.rs",
            "pub trait C { fn decide(&self) -> f64; }",
            &cfg,
        );
        assert!(decl.findings.is_empty(), "{:?}", decl.findings);
        let elsewhere = scan_source(
            "crates/simnet/src/lib.rs",
            "pub fn step(x: f64) -> f64 { x }",
            &cfg,
        );
        assert!(elsewhere.findings.is_empty());
    }

    #[test]
    fn waiver_suppresses_named_rule_only() {
        let s = scan(
            "pub fn f(o: Option<u32>) -> u32 {\n    // lint:allow(L1): checked by construction\n    o.unwrap()\n}",
        );
        assert!(s.findings.is_empty(), "{:?}", s.findings);
        assert_eq!(s.waived.len(), 1);
        assert_eq!(s.waived[0].finding.rule, "L1");
        assert_eq!(s.waived[0].justification, "checked by construction");
    }

    #[test]
    fn waiver_for_wrong_rule_does_not_suppress() {
        let s = scan(
            "pub fn f(o: Option<u32>) -> u32 {\n    // lint:allow(L3): wrong rule\n    o.unwrap()\n}",
        );
        let rules = rules_of(&s);
        assert!(rules.contains(&"L1"), "{rules:?}");
        assert!(
            rules.contains(&"W3"),
            "stale waiver must be flagged: {rules:?}"
        );
    }

    #[test]
    fn waiver_without_justification_is_flagged() {
        let s = scan("pub fn f(o: Option<u32>) -> u32 {\n    // lint:allow(L1)\n    o.unwrap()\n}");
        assert_eq!(rules_of(&s), vec!["W1"]);
        assert_eq!(s.waived.len(), 1);
    }

    #[test]
    fn unknown_rule_in_waiver_is_flagged() {
        let s = scan("// lint:allow(L9): no such rule\npub fn f() {}");
        assert_eq!(rules_of(&s), vec!["W2"]);
    }

    #[test]
    fn trailing_same_line_waiver_works() {
        let s =
            scan("pub fn f(o: Option<u32>) -> u32 { o.unwrap() } // lint:allow(L1): exercised\n");
        assert!(s.findings.is_empty(), "{:?}", s.findings);
        assert_eq!(s.waived.len(), 1);
    }
}
