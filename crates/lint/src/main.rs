//! CLI entry point: `leime-lint [options] [paths...]`.
//!
//! ```text
//! cargo run -p leime-lint -- --deny-all        # CI gate over the workspace
//! cargo run -p leime-lint -- --json            # machine-readable report
//! cargo run -p leime-lint -- crates/offload    # scan a subtree only
//! ```
//!
//! Exit codes: `0` clean (or report-only mode), `1` usage/I-O error,
//! `2` violations or waiver-budget overflow under `--deny-all`.

use leime_lint::{parse_rule_filter, run, ScanOptions};
use std::path::PathBuf;

const USAGE: &str = "usage: leime-lint [--root DIR] [--json] [--deny-all] [--no-sema] \
[--max-waivers N] [--rules L1,...,S12] [--baseline FILE] [--write-baseline] \
[--ledger FILE] [--write-ledger] [--registry FILE] [paths...]";

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let code = real_main(&args);
    std::process::exit(code);
}

fn real_main(args: &[String]) -> i32 {
    let mut opts = ScanOptions::new(default_root());
    let mut json = false;
    let mut deny_all = false;
    let mut i = 0usize;
    while i < args.len() {
        match args[i].as_str() {
            "--json" => json = true,
            "--deny-all" => deny_all = true,
            "--no-sema" => opts.sema = false,
            "--write-baseline" => opts.write_s6_baseline = true,
            "--write-ledger" => opts.write_unsafe_ledger = true,
            "--root" | "--max-waivers" | "--rules" | "--baseline" | "--ledger" | "--registry" => {
                let Some(value) = args.get(i + 1) else {
                    eprintln!("{} needs a value\n{USAGE}", args[i]);
                    return 1;
                };
                match args[i].as_str() {
                    "--root" => opts.root = PathBuf::from(value),
                    "--baseline" => opts.s6_baseline = Some(PathBuf::from(value)),
                    "--ledger" => opts.unsafe_ledger = Some(PathBuf::from(value)),
                    "--registry" => opts.simd_registry = Some(PathBuf::from(value)),
                    "--max-waivers" => match value.parse::<usize>() {
                        Ok(n) => opts.max_waivers = n,
                        Err(_) => {
                            eprintln!("--max-waivers needs an integer, got `{value}`");
                            return 1;
                        }
                    },
                    _ => {
                        if let Err(e) = parse_rule_filter(&mut opts.config, value) {
                            eprintln!("{e}");
                            return 1;
                        }
                    }
                }
                i += 1;
            }
            "--help" | "-h" => {
                println!("{USAGE}");
                return 0;
            }
            flag if flag.starts_with("--") => {
                eprintln!("unknown flag `{flag}`\n{USAGE}");
                return 1;
            }
            path => opts.paths.push(PathBuf::from(path)),
        }
        i += 1;
    }

    match run(&opts) {
        Ok(report) => {
            if json {
                println!("{}", report.to_json());
            } else {
                print!("{}", report.render_text());
            }
            if deny_all && !report.is_clean() {
                2
            } else {
                0
            }
        }
        Err(e) => {
            eprintln!("leime-lint: {e}");
            1
        }
    }
}

/// Workspace root: the current directory when it contains `crates/`,
/// otherwise two levels up from this crate's manifest (the workspace
/// layout is `<root>/crates/lint`).
fn default_root() -> PathBuf {
    let cwd = PathBuf::from(".");
    if cwd.join("crates").is_dir() {
        return cwd;
    }
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../..")
}
