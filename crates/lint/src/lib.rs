//! # leime-lint
//!
//! Offline, dependency-light static analysis for the LEIME workspace.
//!
//! LEIME's correctness rests on numeric invariants the compiler cannot
//! see — offloading ratios `x_i(t) ∈ [0, 1]` (Eq. 8), non-negative queue
//! backlogs `Q_i`/`H_i` (Eq. 10–11), KKT compute shares on the simplex
//! (Eq. 27) — and on library code that never panics under load. This
//! crate scans the workspace's own sources with a token-level scanner
//! (no `syn` in the offline build environment) and enforces the L1–L5
//! rule set described in [`rules`], with inline
//! `// lint:allow(<rule>): <justification>` waivers under a budget.
//! The semantic S1–S4 rules — transitive invariant reachability, hash
//! iteration, unit-suffix mixing, crate layering — and the
//! interprocedural flow rules S5–S8 — shard-capture races, the
//! hot-path allocation ratchet, RNG-stream hygiene, shard-body
//! blocking — and the numeric-determinism and unsafe-audit rules
//! S9–S12 — hot-path float reductions, `target_feature` round bodies
//! plus the SIMD differential-test registry, the `unsafe` ledger
//! ratchet, shard lock-order cycles — come from [`leime_sema`]
//! (re-exported as [`sema`]) and are merged into the same
//! waiver/report pipeline under the `leime-lint/4` schema.
//!
//! The binary (`cargo run -p leime-lint -- --deny-all`) is the CI gate;
//! the library is exercised directly by the tier-2 integration tests.

pub mod report;
pub mod rules;

/// The semantic-analysis layer: parser, AST, call graph, flow, S1–S8.
pub use leime_sema as sema;
/// The shared token-level lexer (lives in `leime-sema`, where the
/// parser builds on it; the L-rules consume it from here).
pub use leime_sema::lexer;

pub use report::{Report, RuleCount, SCHEMA_VERSION};
pub use rules::{FileScan, Finding, RuleConfig, Waived, RULE_IDS};

use std::collections::{BTreeMap, HashSet};
use std::path::{Path, PathBuf};

/// Default waiver budget: a handful of justified escapes, no more.
pub const DEFAULT_WAIVER_BUDGET: usize = 8;

/// Options for one lint run.
#[derive(Debug, Clone)]
pub struct ScanOptions {
    /// Workspace root; paths in findings are reported relative to it.
    pub root: PathBuf,
    /// Explicit files/directories to scan instead of the default
    /// workspace library-source walk.
    pub paths: Vec<PathBuf>,
    /// Maximum number of waivers before the run fails.
    pub max_waivers: usize,
    /// Rule configuration (scoping, guarded functions, enabled set).
    pub config: RuleConfig,
    /// Whether to run the semantic S1–S8 rules (`--no-sema` turns the
    /// run back into the token-level L1–L5 scanner).
    pub sema: bool,
    /// S6 allocation-ratchet baseline file. `None` uses the committed
    /// [`S6_BASELINE_PATH`] under the root in workspace mode and
    /// disables the ratchet for explicit-path scans.
    pub s6_baseline: Option<PathBuf>,
    /// Regenerate the S6 baseline from this run's counts instead of
    /// comparing against it (`--write-baseline`).
    pub write_s6_baseline: bool,
    /// S11 unsafe-audit ledger file. `None` uses the committed
    /// [`UNSAFE_LEDGER_PATH`] under the root in workspace mode and
    /// disables the ledger ratchet for explicit-path scans.
    pub unsafe_ledger: Option<PathBuf>,
    /// Regenerate the unsafe ledger from this run's counts instead of
    /// comparing against it (`--write-ledger`).
    pub write_unsafe_ledger: bool,
    /// S10 SIMD differential-test registry file. `None` uses the
    /// committed [`SIMD_REGISTRY_PATH`] under the root in workspace
    /// mode and skips the registry check for explicit-path scans.
    pub simd_registry: Option<PathBuf>,
}

impl ScanOptions {
    /// Default options rooted at `root`.
    pub fn new(root: impl Into<PathBuf>) -> Self {
        ScanOptions {
            root: root.into(),
            paths: Vec::new(),
            max_waivers: DEFAULT_WAIVER_BUDGET,
            config: RuleConfig::default(),
            sema: true,
            s6_baseline: None,
            write_s6_baseline: false,
            unsafe_ledger: None,
            write_unsafe_ledger: false,
            simd_registry: None,
        }
    }
}

/// The committed S6 hot-allocation baseline, relative to the workspace
/// root. The ratchet: a hot-path function's allocation count may only
/// go down; raising it requires deliberately regenerating this file
/// with `--write-baseline` (and justifying the diff in review).
pub const S6_BASELINE_PATH: &str = "crates/lint/hot_alloc_baseline.json";

/// Schema tag of the S6 baseline file.
pub const S6_BASELINE_SCHEMA: &str = "leime-lint-hot-alloc/1";

/// The committed S11 unsafe-audit ledger, relative to the workspace
/// root. Same ratchet semantics as S6: a file's `unsafe` site count
/// may only go down; raising it requires regenerating this file with
/// `--write-ledger` (and justifying the new site in review — every
/// site also needs its own `// safety:` comment, which is checked
/// per-site, not through the ledger).
pub const UNSAFE_LEDGER_PATH: &str = "crates/lint/unsafe_ledger.json";

/// Schema tag of the unsafe ledger file.
pub const UNSAFE_LEDGER_SCHEMA: &str = "leime-lint-unsafe/1";

/// The committed S10 SIMD differential-test registry, relative to the
/// workspace root: every `#[target_feature]` fn must appear here,
/// naming the lane-vs-scalar differential test that pins its
/// bit-identity.
pub const SIMD_REGISTRY_PATH: &str = "crates/lint/simd_registry.json";

/// Schema tag of the SIMD registry file.
pub const SIMD_REGISTRY_SCHEMA: &str = "leime-lint-simd/1";

/// Directory names never descended into.
const SKIP_DIRS: &[&str] = &["target", ".git", "node_modules"];

/// Directory names excluded from the default workspace walk (vendored
/// shims, lint fixtures, and non-library code).
const NON_LIBRARY_DIRS: &[&str] = &["shims", "fixtures", "tests", "benches", "examples", "bin"];

/// Runs the lint over the workspace (or over `opts.paths` when given).
///
/// # Errors
///
/// Returns a description of the first I/O failure (unreadable root or
/// source file).
pub fn run(opts: &ScanOptions) -> Result<Report, String> {
    let mut files: Vec<PathBuf> = Vec::new();
    if opts.paths.is_empty() {
        let crates_dir = opts.root.join("crates");
        collect_files(&crates_dir, true, &mut files)?;
    } else {
        for p in &opts.paths {
            let full = if p.is_absolute() {
                p.clone()
            } else {
                opts.root.join(p)
            };
            if full.is_dir() {
                collect_files(&full, false, &mut files)?;
            } else {
                files.push(full);
            }
        }
    }
    files.sort();
    files.dedup();

    let mut sources: Vec<(String, String)> = Vec::new();
    for file in &files {
        let src = std::fs::read_to_string(file)
            .map_err(|e| format!("cannot read {}: {e}", file.display()))?;
        sources.push((display_path(&opts.root, file), src));
    }

    // Semantic pass first: S1 needs whole-crate call graphs, so files
    // group by crate before per-file findings come back out.
    let mut sema_by_file: BTreeMap<String, Vec<Finding>> = BTreeMap::new();
    if opts.sema {
        let sema_cfg = opts.config.sema_config();
        let mut groups: BTreeMap<String, Vec<(String, String)>> = BTreeMap::new();
        for (rel, src) in &sources {
            groups
                .entry(crate_key(rel))
                .or_default()
                .push((rel.clone(), src.clone()));
        }
        for group in groups.values() {
            for f in leime_sema::analyze_crate(group, &sema_cfg) {
                sema_by_file.entry(f.path.clone()).or_default().push(f);
            }
        }

        // Interprocedural flow pass (S5/S7/S8): one analysis over the
        // whole scanned file set — flow edges cross crates.
        let flow = leime_sema::flow::FlowAnalysis::build(&sources, &sema_cfg);
        for f in flow.findings(&sema_cfg) {
            sema_by_file.entry(f.path.clone()).or_default().push(f);
        }

        // S6 allocation ratchet: hot-path counts against the pinned
        // baseline. Explicit-path scans skip it unless a baseline was
        // passed in (a partial scan would see a partial hot set and
        // report nonsense diffs).
        let baseline_path = opts.s6_baseline.clone().or_else(|| {
            opts.paths
                .is_empty()
                .then(|| opts.root.join(S6_BASELINE_PATH))
        });
        if sema_cfg.rule_on("S6") {
            if let Some(bp) = baseline_path {
                let counts = flow.hot_alloc_counts(&sema_cfg);
                if opts.write_s6_baseline {
                    write_s6_baseline(&bp, &counts)?;
                } else if bp.is_file() {
                    for f in check_s6(&bp, &counts)? {
                        sema_by_file.entry(f.path.clone()).or_default().push(f);
                    }
                }
            }
        }

        // S11 unsafe audit: every site needs a `// safety:` comment
        // (per-site findings), and per-file counts ratchet against the
        // committed ledger (same partial-scan caveat as S6).
        if sema_cfg.rule_on("S11") {
            let mut unsafe_counts: BTreeMap<String, usize> = BTreeMap::new();
            for (rel, src) in &sources {
                let sites = leime_sema::audit::unsafe_sites(src);
                if !sites.is_empty() {
                    unsafe_counts.insert(rel.clone(), sites.len());
                }
                for site in sites {
                    if site.justified {
                        continue;
                    }
                    let what = match site.kind {
                        leime_sema::audit::UnsafeKind::Block => "`unsafe` block".to_string(),
                        leime_sema::audit::UnsafeKind::Fn => {
                            format!("`unsafe fn {}`", site.fn_name)
                        }
                    };
                    sema_by_file.entry(rel.clone()).or_default().push(Finding {
                        rule: "S11".to_string(),
                        path: rel.clone(),
                        line: site.line,
                        message: format!(
                            "{what} has no `// safety:` justification — every audited \
                             `unsafe` site must state why its obligations hold \
                             (DESIGN.md §15)"
                        ),
                    });
                }
            }
            let ledger_path = opts.unsafe_ledger.clone().or_else(|| {
                opts.paths
                    .is_empty()
                    .then(|| opts.root.join(UNSAFE_LEDGER_PATH))
            });
            if let Some(lp) = ledger_path {
                if opts.write_unsafe_ledger {
                    write_unsafe_ledger(&lp, &unsafe_counts)?;
                } else if lp.is_file() {
                    for f in check_unsafe_ledger(&lp, &unsafe_counts)? {
                        sema_by_file.entry(f.path.clone()).or_default().push(f);
                    }
                }
            }
        }

        // S10 registry check: every `#[target_feature]` fn must name a
        // lane-vs-scalar differential test in the committed registry.
        if sema_cfg.rule_on("S10") {
            let registry_path = opts.simd_registry.clone().or_else(|| {
                opts.paths
                    .is_empty()
                    .then(|| opts.root.join(SIMD_REGISTRY_PATH))
            });
            if let Some(rp) = registry_path {
                for f in check_simd_registry(&rp, flow.target_feature_fns())? {
                    sema_by_file.entry(f.path.clone()).or_default().push(f);
                }
            }
        }
    }

    let mut violations = Vec::new();
    let mut waived = Vec::new();
    for (rel, src) in &sources {
        let extra = sema_by_file.remove(rel).unwrap_or_default();
        let scan = rules::scan_source_with(rel, src, &opts.config, extra);
        violations.extend(scan.findings);
        waived.extend(scan.waived);
    }

    // S4 runs in workspace mode only (it reads `crates/*/Cargo.toml`
    // under the root, not the scanned file list) and bypasses waivers:
    // manifests carry no lint:allow comments by design.
    if opts.sema && opts.paths.is_empty() {
        violations.extend(leime_sema::check_layering(
            &opts.root,
            &opts.config.sema_config(),
        )?);
    }

    Ok(Report::new(
        files.len(),
        violations,
        waived,
        opts.max_waivers,
    ))
}

/// Writes the S6 baseline file from this run's hot-allocation counts
/// (sorted keys — the file diffs cleanly).
fn write_s6_baseline(
    path: &Path,
    counts: &BTreeMap<String, leime_sema::flow::HotAlloc>,
) -> Result<(), String> {
    let mut fns = serde_json::Map::new();
    for (key, ha) in counts {
        fns.insert(
            key.clone(),
            serde_json::json!({ "line": ha.line, "count": ha.count }),
        );
    }
    let mut root = serde_json::Map::new();
    root.insert(
        "schema".to_string(),
        serde_json::Value::String(S6_BASELINE_SCHEMA.to_string()),
    );
    root.insert("fns".to_string(), serde_json::Value::Object(fns));
    let doc = serde_json::Value::Object(root);
    let text = serde_json::to_string_pretty(&doc)
        .map_err(|e| format!("cannot serialize S6 baseline: {e}"))?;
    std::fs::write(path, text + "\n").map_err(|e| format!("cannot write {}: {e}", path.display()))
}

/// Compares this run's hot-allocation counts against the pinned
/// baseline: any function whose count rose (functions missing from the
/// baseline count as 0) yields an S6 finding at its definition line.
fn check_s6(
    path: &Path,
    counts: &BTreeMap<String, leime_sema::flow::HotAlloc>,
) -> Result<Vec<Finding>, String> {
    let text = std::fs::read_to_string(path)
        .map_err(|e| format!("cannot read {}: {e}", path.display()))?;
    let doc: serde_json::Value = serde_json::from_str(&text)
        .map_err(|e| format!("malformed S6 baseline {}: {e}", path.display()))?;
    let fns = doc.get("fns").and_then(|v| v.as_object());
    let mut out = Vec::new();
    for (key, ha) in counts {
        let base = fns
            .and_then(|m| m.get(key))
            .and_then(|e| e.get("count"))
            .and_then(serde_json::Value::as_u64)
            .unwrap_or(0) as usize;
        if ha.count > base {
            let name = key.rsplit("::").next().unwrap_or(key);
            out.push(Finding {
                rule: "S6".to_string(),
                path: ha.path.clone(),
                line: ha.line,
                message: format!(
                    "`fn {name}` hot-path allocation count rose to {} (baseline {base}) — \
                     the S6 ratchet only goes down; hoist the allocation out of the hot \
                     region or regenerate the baseline with `--write-baseline` and justify \
                     the diff in review",
                    ha.count
                ),
            });
        }
    }
    Ok(out)
}

/// Writes the S11 unsafe ledger from this run's per-file `unsafe`
/// site counts (sorted keys — the file diffs cleanly).
fn write_unsafe_ledger(path: &Path, counts: &BTreeMap<String, usize>) -> Result<(), String> {
    let mut files = serde_json::Map::new();
    for (rel, n) in counts {
        files.insert(rel.clone(), serde_json::json!({ "count": n }));
    }
    let mut root = serde_json::Map::new();
    root.insert(
        "schema".to_string(),
        serde_json::Value::String(UNSAFE_LEDGER_SCHEMA.to_string()),
    );
    root.insert("files".to_string(), serde_json::Value::Object(files));
    let doc = serde_json::Value::Object(root);
    let text = serde_json::to_string_pretty(&doc)
        .map_err(|e| format!("cannot serialize unsafe ledger: {e}"))?;
    std::fs::write(path, text + "\n").map_err(|e| format!("cannot write {}: {e}", path.display()))
}

/// Compares this run's per-file `unsafe` counts against the committed
/// ledger: any file whose count rose (files missing from the ledger
/// count as 0) yields an S11 finding at line 1 of that file.
fn check_unsafe_ledger(
    path: &Path,
    counts: &BTreeMap<String, usize>,
) -> Result<Vec<Finding>, String> {
    let text = std::fs::read_to_string(path)
        .map_err(|e| format!("cannot read {}: {e}", path.display()))?;
    let doc: serde_json::Value = serde_json::from_str(&text)
        .map_err(|e| format!("malformed unsafe ledger {}: {e}", path.display()))?;
    let files = doc.get("files").and_then(|v| v.as_object());
    let mut out = Vec::new();
    for (rel, n) in counts {
        let base = files
            .and_then(|m| m.get(rel))
            .and_then(|e| e.get("count"))
            .and_then(serde_json::Value::as_u64)
            .unwrap_or(0) as usize;
        if *n > base {
            out.push(Finding {
                rule: "S11".to_string(),
                path: rel.clone(),
                line: 1,
                message: format!(
                    "`unsafe` site count rose to {n} (ledger {base}) — the S11 ratchet \
                     only goes down; remove the new site or regenerate the ledger with \
                     `--write-ledger` and justify the diff in review"
                ),
            });
        }
    }
    Ok(out)
}

/// Checks every `#[target_feature]` fn against the committed SIMD
/// differential-test registry. A missing registry file is an empty
/// registry: every fn is flagged until the registry exists.
fn check_simd_registry(
    path: &Path,
    tf_fns: &[(String, leime_sema::audit::TargetFeatureFn)],
) -> Result<Vec<Finding>, String> {
    let fns: Option<serde_json::Value> = if path.is_file() {
        let text = std::fs::read_to_string(path)
            .map_err(|e| format!("cannot read {}: {e}", path.display()))?;
        let doc: serde_json::Value = serde_json::from_str(&text)
            .map_err(|e| format!("malformed SIMD registry {}: {e}", path.display()))?;
        doc.get("fns").cloned()
    } else {
        None
    };
    let registered = |name: &str| {
        fns.as_ref()
            .and_then(|m| m.get(name))
            .and_then(|e| e.get("test"))
            .and_then(serde_json::Value::as_str)
            .is_some_and(|t| !t.is_empty())
    };
    let mut out = Vec::new();
    for (rel, tf) in tf_fns {
        if !registered(&tf.name) {
            out.push(Finding {
                rule: "S10".to_string(),
                path: rel.clone(),
                line: tf.line,
                message: format!(
                    "`fn {}` enables `{}` but names no lane-vs-scalar differential test \
                     in the SIMD registry ({SIMD_REGISTRY_PATH}) — add a test that pins \
                     bit-identity against the scalar path and register it",
                    tf.name,
                    tf.features.join(",")
                ),
            });
        }
    }
    Ok(out)
}

/// Grouping key for the per-crate semantic analysis: `crates/<name>`
/// for workspace paths, the parent directory otherwise.
fn crate_key(rel: &str) -> String {
    let norm = rel.replace('\\', "/");
    let comps: Vec<&str> = norm.split('/').collect();
    if comps.len() >= 2 && comps[0] == "crates" {
        return comps[..2].join("/");
    }
    match norm.rsplit_once('/') {
        Some((dir, _)) => dir.to_string(),
        None => String::new(),
    }
}

/// Path shown in findings: relative to the root when possible.
fn display_path(root: &Path, file: &Path) -> String {
    file.strip_prefix(root)
        .unwrap_or(file)
        .to_string_lossy()
        .replace('\\', "/")
}

/// Recursively collects `.rs` files. With `library_only`, skips vendored
/// shims, fixtures, tests/benches/examples directories, and binary
/// targets (`src/main.rs`, `src/bin/`), so the walk covers exactly the
/// workspace's non-test library sources.
fn collect_files(dir: &Path, library_only: bool, out: &mut Vec<PathBuf>) -> Result<(), String> {
    let entries =
        std::fs::read_dir(dir).map_err(|e| format!("cannot read {}: {e}", dir.display()))?;
    let mut entries: Vec<_> = entries.flatten().collect();
    entries.sort_by_key(|e| e.file_name());
    for entry in entries {
        let path = entry.path();
        let name = entry.file_name().to_string_lossy().to_string();
        if path.is_dir() {
            if SKIP_DIRS.contains(&name.as_str())
                || (library_only && NON_LIBRARY_DIRS.contains(&name.as_str()))
            {
                continue;
            }
            collect_files(&path, library_only, out)?;
        } else if name.ends_with(".rs") {
            if library_only && name == "main.rs" {
                continue;
            }
            out.push(path);
        }
    }
    Ok(())
}

/// Restricts a config to the comma-separated rule list (`"L1,L3"`).
///
/// # Errors
///
/// Returns the offending identifier when it is not a known rule.
pub fn parse_rule_filter(config: &mut RuleConfig, list: &str) -> Result<(), String> {
    let mut set = HashSet::new();
    for id in list.split(',') {
        let id = id.trim();
        if id.is_empty() {
            continue;
        }
        if !RULE_IDS.contains(&id) {
            return Err(format!(
                "unknown rule `{id}` (known: {})",
                RULE_IDS.join(", ")
            ));
        }
        set.insert(id.to_string());
    }
    config.enabled = Some(set);
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rule_filter_validates_ids() {
        let mut cfg = RuleConfig::default();
        assert!(parse_rule_filter(&mut cfg, "L1,L4").is_ok());
        match &cfg.enabled {
            Some(set) => assert_eq!(set.len(), 2),
            None => unreachable!("filter must restrict the set"),
        }
        assert!(parse_rule_filter(&mut cfg, "L9").is_err());
    }

    #[test]
    fn display_path_is_root_relative() {
        let root = PathBuf::from("/ws");
        let file = PathBuf::from("/ws/crates/x/src/lib.rs");
        assert_eq!(display_path(&root, &file), "crates/x/src/lib.rs");
    }
}
