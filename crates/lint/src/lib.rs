//! # leime-lint
//!
//! Offline, dependency-light static analysis for the LEIME workspace.
//!
//! LEIME's correctness rests on numeric invariants the compiler cannot
//! see — offloading ratios `x_i(t) ∈ [0, 1]` (Eq. 8), non-negative queue
//! backlogs `Q_i`/`H_i` (Eq. 10–11), KKT compute shares on the simplex
//! (Eq. 27) — and on library code that never panics under load. This
//! crate scans the workspace's own sources with a token-level scanner
//! (no `syn` in the offline build environment) and enforces the L1–L5
//! rule set described in [`rules`], with inline
//! `// lint:allow(<rule>): <justification>` waivers under a budget.
//!
//! The binary (`cargo run -p leime-lint -- --deny-all`) is the CI gate;
//! the library is exercised directly by the tier-2 integration tests.

pub mod lexer;
pub mod report;
pub mod rules;

pub use report::{Report, RuleCount, SCHEMA_VERSION};
pub use rules::{FileScan, Finding, RuleConfig, Waived, RULE_IDS};

use std::collections::HashSet;
use std::path::{Path, PathBuf};

/// Default waiver budget: a handful of justified escapes, no more.
pub const DEFAULT_WAIVER_BUDGET: usize = 8;

/// Options for one lint run.
#[derive(Debug, Clone)]
pub struct ScanOptions {
    /// Workspace root; paths in findings are reported relative to it.
    pub root: PathBuf,
    /// Explicit files/directories to scan instead of the default
    /// workspace library-source walk.
    pub paths: Vec<PathBuf>,
    /// Maximum number of waivers before the run fails.
    pub max_waivers: usize,
    /// Rule configuration (scoping, guarded functions, enabled set).
    pub config: RuleConfig,
}

impl ScanOptions {
    /// Default options rooted at `root`.
    pub fn new(root: impl Into<PathBuf>) -> Self {
        ScanOptions {
            root: root.into(),
            paths: Vec::new(),
            max_waivers: DEFAULT_WAIVER_BUDGET,
            config: RuleConfig::default(),
        }
    }
}

/// Directory names never descended into.
const SKIP_DIRS: &[&str] = &["target", ".git", "node_modules"];

/// Directory names excluded from the default workspace walk (vendored
/// shims, lint fixtures, and non-library code).
const NON_LIBRARY_DIRS: &[&str] = &["shims", "fixtures", "tests", "benches", "examples", "bin"];

/// Runs the lint over the workspace (or over `opts.paths` when given).
///
/// # Errors
///
/// Returns a description of the first I/O failure (unreadable root or
/// source file).
pub fn run(opts: &ScanOptions) -> Result<Report, String> {
    let mut files: Vec<PathBuf> = Vec::new();
    if opts.paths.is_empty() {
        let crates_dir = opts.root.join("crates");
        collect_files(&crates_dir, true, &mut files)?;
    } else {
        for p in &opts.paths {
            let full = if p.is_absolute() {
                p.clone()
            } else {
                opts.root.join(p)
            };
            if full.is_dir() {
                collect_files(&full, false, &mut files)?;
            } else {
                files.push(full);
            }
        }
    }
    files.sort();
    files.dedup();

    let mut violations = Vec::new();
    let mut waived = Vec::new();
    for file in &files {
        let src = std::fs::read_to_string(file)
            .map_err(|e| format!("cannot read {}: {e}", file.display()))?;
        let rel = display_path(&opts.root, file);
        let scan = rules::scan_source(&rel, &src, &opts.config);
        violations.extend(scan.findings);
        waived.extend(scan.waived);
    }
    Ok(Report::new(
        files.len(),
        violations,
        waived,
        opts.max_waivers,
    ))
}

/// Path shown in findings: relative to the root when possible.
fn display_path(root: &Path, file: &Path) -> String {
    file.strip_prefix(root)
        .unwrap_or(file)
        .to_string_lossy()
        .replace('\\', "/")
}

/// Recursively collects `.rs` files. With `library_only`, skips vendored
/// shims, fixtures, tests/benches/examples directories, and binary
/// targets (`src/main.rs`, `src/bin/`), so the walk covers exactly the
/// workspace's non-test library sources.
fn collect_files(dir: &Path, library_only: bool, out: &mut Vec<PathBuf>) -> Result<(), String> {
    let entries =
        std::fs::read_dir(dir).map_err(|e| format!("cannot read {}: {e}", dir.display()))?;
    let mut entries: Vec<_> = entries.flatten().collect();
    entries.sort_by_key(|e| e.file_name());
    for entry in entries {
        let path = entry.path();
        let name = entry.file_name().to_string_lossy().to_string();
        if path.is_dir() {
            if SKIP_DIRS.contains(&name.as_str())
                || (library_only && NON_LIBRARY_DIRS.contains(&name.as_str()))
            {
                continue;
            }
            collect_files(&path, library_only, out)?;
        } else if name.ends_with(".rs") {
            if library_only && name == "main.rs" {
                continue;
            }
            out.push(path);
        }
    }
    Ok(())
}

/// Restricts a config to the comma-separated rule list (`"L1,L3"`).
///
/// # Errors
///
/// Returns the offending identifier when it is not a known rule.
pub fn parse_rule_filter(config: &mut RuleConfig, list: &str) -> Result<(), String> {
    let mut set = HashSet::new();
    for id in list.split(',') {
        let id = id.trim();
        if id.is_empty() {
            continue;
        }
        if !RULE_IDS.contains(&id) {
            return Err(format!(
                "unknown rule `{id}` (known: {})",
                RULE_IDS.join(", ")
            ));
        }
        set.insert(id.to_string());
    }
    config.enabled = Some(set);
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rule_filter_validates_ids() {
        let mut cfg = RuleConfig::default();
        assert!(parse_rule_filter(&mut cfg, "L1,L4").is_ok());
        match &cfg.enabled {
            Some(set) => assert_eq!(set.len(), 2),
            None => unreachable!("filter must restrict the set"),
        }
        assert!(parse_rule_filter(&mut cfg, "L9").is_err());
    }

    #[test]
    fn display_path_is_root_relative() {
        let root = PathBuf::from("/ws");
        let file = PathBuf::from("/ws/crates/x/src/lib.rs");
        assert_eq!(display_path(&root, &file), "crates/x/src/lib.rs");
    }
}
