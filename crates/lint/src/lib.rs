//! # leime-lint
//!
//! Offline, dependency-light static analysis for the LEIME workspace.
//!
//! LEIME's correctness rests on numeric invariants the compiler cannot
//! see — offloading ratios `x_i(t) ∈ [0, 1]` (Eq. 8), non-negative queue
//! backlogs `Q_i`/`H_i` (Eq. 10–11), KKT compute shares on the simplex
//! (Eq. 27) — and on library code that never panics under load. This
//! crate scans the workspace's own sources with a token-level scanner
//! (no `syn` in the offline build environment) and enforces the L1–L5
//! rule set described in [`rules`], with inline
//! `// lint:allow(<rule>): <justification>` waivers under a budget.
//! The semantic S1–S4 rules — transitive invariant reachability, hash
//! iteration, unit-suffix mixing, crate layering — come from
//! [`leime_sema`] (re-exported as [`sema`]) and are merged into the
//! same waiver/report pipeline under the `leime-lint/2` schema.
//!
//! The binary (`cargo run -p leime-lint -- --deny-all`) is the CI gate;
//! the library is exercised directly by the tier-2 integration tests.

pub mod report;
pub mod rules;

/// The semantic-analysis layer: parser, AST, call graph, S1–S4.
pub use leime_sema as sema;
/// The shared token-level lexer (lives in `leime-sema`, where the
/// parser builds on it; the L-rules consume it from here).
pub use leime_sema::lexer;

pub use report::{Report, RuleCount, SCHEMA_VERSION};
pub use rules::{FileScan, Finding, RuleConfig, Waived, RULE_IDS};

use std::collections::{BTreeMap, HashSet};
use std::path::{Path, PathBuf};

/// Default waiver budget: a handful of justified escapes, no more.
pub const DEFAULT_WAIVER_BUDGET: usize = 8;

/// Options for one lint run.
#[derive(Debug, Clone)]
pub struct ScanOptions {
    /// Workspace root; paths in findings are reported relative to it.
    pub root: PathBuf,
    /// Explicit files/directories to scan instead of the default
    /// workspace library-source walk.
    pub paths: Vec<PathBuf>,
    /// Maximum number of waivers before the run fails.
    pub max_waivers: usize,
    /// Rule configuration (scoping, guarded functions, enabled set).
    pub config: RuleConfig,
    /// Whether to run the semantic S1–S4 rules (`--no-sema` turns the
    /// run back into the token-level L1–L5 scanner).
    pub sema: bool,
}

impl ScanOptions {
    /// Default options rooted at `root`.
    pub fn new(root: impl Into<PathBuf>) -> Self {
        ScanOptions {
            root: root.into(),
            paths: Vec::new(),
            max_waivers: DEFAULT_WAIVER_BUDGET,
            config: RuleConfig::default(),
            sema: true,
        }
    }
}

/// Directory names never descended into.
const SKIP_DIRS: &[&str] = &["target", ".git", "node_modules"];

/// Directory names excluded from the default workspace walk (vendored
/// shims, lint fixtures, and non-library code).
const NON_LIBRARY_DIRS: &[&str] = &["shims", "fixtures", "tests", "benches", "examples", "bin"];

/// Runs the lint over the workspace (or over `opts.paths` when given).
///
/// # Errors
///
/// Returns a description of the first I/O failure (unreadable root or
/// source file).
pub fn run(opts: &ScanOptions) -> Result<Report, String> {
    let mut files: Vec<PathBuf> = Vec::new();
    if opts.paths.is_empty() {
        let crates_dir = opts.root.join("crates");
        collect_files(&crates_dir, true, &mut files)?;
    } else {
        for p in &opts.paths {
            let full = if p.is_absolute() {
                p.clone()
            } else {
                opts.root.join(p)
            };
            if full.is_dir() {
                collect_files(&full, false, &mut files)?;
            } else {
                files.push(full);
            }
        }
    }
    files.sort();
    files.dedup();

    let mut sources: Vec<(String, String)> = Vec::new();
    for file in &files {
        let src = std::fs::read_to_string(file)
            .map_err(|e| format!("cannot read {}: {e}", file.display()))?;
        sources.push((display_path(&opts.root, file), src));
    }

    // Semantic pass first: S1 needs whole-crate call graphs, so files
    // group by crate before per-file findings come back out.
    let mut sema_by_file: BTreeMap<String, Vec<Finding>> = BTreeMap::new();
    if opts.sema {
        let sema_cfg = opts.config.sema_config();
        let mut groups: BTreeMap<String, Vec<(String, String)>> = BTreeMap::new();
        for (rel, src) in &sources {
            groups
                .entry(crate_key(rel))
                .or_default()
                .push((rel.clone(), src.clone()));
        }
        for group in groups.values() {
            for f in leime_sema::analyze_crate(group, &sema_cfg) {
                sema_by_file.entry(f.path.clone()).or_default().push(f);
            }
        }
    }

    let mut violations = Vec::new();
    let mut waived = Vec::new();
    for (rel, src) in &sources {
        let extra = sema_by_file.remove(rel).unwrap_or_default();
        let scan = rules::scan_source_with(rel, src, &opts.config, extra);
        violations.extend(scan.findings);
        waived.extend(scan.waived);
    }

    // S4 runs in workspace mode only (it reads `crates/*/Cargo.toml`
    // under the root, not the scanned file list) and bypasses waivers:
    // manifests carry no lint:allow comments by design.
    if opts.sema && opts.paths.is_empty() {
        violations.extend(leime_sema::check_layering(
            &opts.root,
            &opts.config.sema_config(),
        )?);
    }

    Ok(Report::new(
        files.len(),
        violations,
        waived,
        opts.max_waivers,
    ))
}

/// Grouping key for the per-crate semantic analysis: `crates/<name>`
/// for workspace paths, the parent directory otherwise.
fn crate_key(rel: &str) -> String {
    let norm = rel.replace('\\', "/");
    let comps: Vec<&str> = norm.split('/').collect();
    if comps.len() >= 2 && comps[0] == "crates" {
        return comps[..2].join("/");
    }
    match norm.rsplit_once('/') {
        Some((dir, _)) => dir.to_string(),
        None => String::new(),
    }
}

/// Path shown in findings: relative to the root when possible.
fn display_path(root: &Path, file: &Path) -> String {
    file.strip_prefix(root)
        .unwrap_or(file)
        .to_string_lossy()
        .replace('\\', "/")
}

/// Recursively collects `.rs` files. With `library_only`, skips vendored
/// shims, fixtures, tests/benches/examples directories, and binary
/// targets (`src/main.rs`, `src/bin/`), so the walk covers exactly the
/// workspace's non-test library sources.
fn collect_files(dir: &Path, library_only: bool, out: &mut Vec<PathBuf>) -> Result<(), String> {
    let entries =
        std::fs::read_dir(dir).map_err(|e| format!("cannot read {}: {e}", dir.display()))?;
    let mut entries: Vec<_> = entries.flatten().collect();
    entries.sort_by_key(|e| e.file_name());
    for entry in entries {
        let path = entry.path();
        let name = entry.file_name().to_string_lossy().to_string();
        if path.is_dir() {
            if SKIP_DIRS.contains(&name.as_str())
                || (library_only && NON_LIBRARY_DIRS.contains(&name.as_str()))
            {
                continue;
            }
            collect_files(&path, library_only, out)?;
        } else if name.ends_with(".rs") {
            if library_only && name == "main.rs" {
                continue;
            }
            out.push(path);
        }
    }
    Ok(())
}

/// Restricts a config to the comma-separated rule list (`"L1,L3"`).
///
/// # Errors
///
/// Returns the offending identifier when it is not a known rule.
pub fn parse_rule_filter(config: &mut RuleConfig, list: &str) -> Result<(), String> {
    let mut set = HashSet::new();
    for id in list.split(',') {
        let id = id.trim();
        if id.is_empty() {
            continue;
        }
        if !RULE_IDS.contains(&id) {
            return Err(format!(
                "unknown rule `{id}` (known: {})",
                RULE_IDS.join(", ")
            ));
        }
        set.insert(id.to_string());
    }
    config.enabled = Some(set);
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rule_filter_validates_ids() {
        let mut cfg = RuleConfig::default();
        assert!(parse_rule_filter(&mut cfg, "L1,L4").is_ok());
        match &cfg.enabled {
            Some(set) => assert_eq!(set.len(), 2),
            None => unreachable!("filter must restrict the set"),
        }
        assert!(parse_rule_filter(&mut cfg, "L9").is_err());
    }

    #[test]
    fn display_path_is_root_relative() {
        let root = PathBuf::from("/ws");
        let file = PathBuf::from("/ws/crates/x/src/lib.rs");
        assert_eq!(display_path(&root, &file), "crates/x/src/lib.rs");
    }
}
