//! Property test: a `lint:allow(<rule>)` waiver suppresses exactly the
//! named rule — never a violation of a different rule on the same line.

use leime_lint::rules::{scan_source, RuleConfig};
use leime_lint::RULE_IDS;
use proptest::prelude::*;

/// A source snippet violating exactly one rule, with the waiver comment
/// placed on the line directly above the violating line.
///
/// Returns `(source, violation_line)`.
fn seeded_source(violated: &str, waived: &str) -> (String, u32) {
    let allow = format!("// lint:allow({waived}): generated case");
    match violated {
        "L1" => (
            format!("pub fn f(o: Option<u32>) -> u32 {{\n    {allow}\n    o.unwrap()\n}}\n"),
            3,
        ),
        "L2" => (
            format!(
                "pub fn f(v: &mut [f64]) {{\n    {allow}\n    \
                 v.sort_by(|a, b| a.partial_cmp(b).unwrap());\n}}\n"
            ),
            3,
        ),
        "L3" => (
            format!("pub fn f() {{\n    {allow}\n    let _ = std::time::Instant::now();\n}}\n"),
            3,
        ),
        "L4" => (
            format!("pub fn f(x: f64) -> bool {{\n    {allow}\n    x == 0.0\n}}\n"),
            3,
        ),
        "L5" => (
            // L5 anchors on the `fn` line, so the waiver sits above it.
            format!("{allow}\npub fn balance_solve(x: f64) -> f64 {{\n    x.min(1.0)\n}}\n"),
            2,
        ),
        other => unreachable!("unknown rule {other}"),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// For every (violated, waived) rule pair, the violation is
    /// suppressed iff the waiver names exactly the violated rule; a
    /// mismatched waiver leaves the violation standing and is itself
    /// flagged as stale (W3).
    #[test]
    fn waiver_never_suppresses_a_different_rule(
        violated_ix in 0usize..5,
        waived_ix in 0usize..5,
    ) {
        let violated = RULE_IDS[violated_ix];
        let waived = RULE_IDS[waived_ix];
        let (src, line) = seeded_source(violated, waived);
        // The default config makes offload sources L5-guarded, and this
        // path is not wall-clock exempt, so all five rules are live.
        let scan = scan_source("crates/offload/src/solver.rs", &src, &RuleConfig::default());

        if violated == waived {
            prop_assert!(
                scan.findings.is_empty(),
                "matching waiver must suppress {violated}: {:?}",
                scan.findings
            );
            prop_assert_eq!(scan.waived.len(), 1);
            prop_assert_eq!(scan.waived[0].finding.rule.as_str(), violated);
            prop_assert_eq!(scan.waived[0].finding.line, line);
        } else {
            prop_assert!(
                scan.waived.is_empty(),
                "waiver for {} must not absorb a {} violation: {:?}",
                waived, violated, scan.waived
            );
            let rules: Vec<&str> = scan.findings.iter().map(|f| f.rule.as_str()).collect();
            prop_assert!(
                rules.contains(&violated),
                "{violated} must survive a {waived} waiver: {rules:?}"
            );
            prop_assert!(
                rules.contains(&"W3"),
                "mismatched waiver must be reported stale: {rules:?}"
            );
        }
    }
}
