//! Fixture tests: each seeded fixture file must produce exactly the
//! expected `(rule, path, line)` tuples, in both the text and the
//! `leime-lint/4` JSON renderings.

use leime_lint::{parse_rule_filter, run, Report, RuleConfig, ScanOptions, SCHEMA_VERSION};
use std::path::{Path, PathBuf};

/// Workspace root, derived from this crate's manifest directory.
fn workspace_root() -> PathBuf {
    let manifest = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
    match manifest.parent().and_then(Path::parent) {
        Some(root) => root.to_path_buf(),
        None => unreachable!("crates/lint always sits two levels below the root"),
    }
}

/// Runs the lint over one fixture file.
fn scan_fixture(name: &str, config: RuleConfig) -> Report {
    let mut opts = ScanOptions::new(workspace_root());
    opts.paths = vec![PathBuf::from(format!("crates/lint/fixtures/{name}"))];
    opts.config = config;
    match run(&opts) {
        Ok(report) => report,
        Err(e) => unreachable!("fixture scan must succeed: {e}"),
    }
}

/// The `(rule, path, line)` triples of a report's violations.
fn triples(report: &Report) -> Vec<(String, String, u32)> {
    report
        .violations
        .iter()
        .map(|f| (f.rule.clone(), f.path.clone(), f.line))
        .collect()
}

fn expected(rule: &str, file: &str, lines: &[u32]) -> Vec<(String, String, u32)> {
    lines
        .iter()
        .map(|&line| {
            (
                rule.to_string(),
                format!("crates/lint/fixtures/{file}"),
                line,
            )
        })
        .collect()
}

#[test]
fn l1_fixture_flags_each_panic_site_once() {
    let report = scan_fixture("l1.rs", RuleConfig::default());
    assert_eq!(triples(&report), expected("L1", "l1.rs", &[4, 8, 12, 16]));
    assert_eq!(
        report.violations[0].message,
        "`.unwrap()` in library code — return a typed error instead"
    );
    assert_eq!(
        report.violations[2].message,
        "`panic!` in library code — return a typed error instead"
    );
    assert!(!report.is_clean());
}

#[test]
fn l2_fixture_flags_partial_cmp_only() {
    let report = scan_fixture("l2.rs", RuleConfig::default());
    // One L2 finding; the unwrap inside it must not double-report as L1.
    assert_eq!(triples(&report), expected("L2", "l2.rs", &[4]));
    assert_eq!(
        report.violations[0].message,
        "NaN-unsafe `partial_cmp(..)` unwrap — use `total_cmp`"
    );
}

#[test]
fn l3_fixture_flags_both_clock_types() {
    let report = scan_fixture("l3.rs", RuleConfig::default());
    assert_eq!(triples(&report), expected("L3", "l3.rs", &[4, 8]));
    assert_eq!(
        report.violations[0].message,
        "wall-clock `Instant::now` breaks sim determinism — use a telemetry `Clock`"
    );
    assert_eq!(
        report.violations[1].message,
        "wall-clock `SystemTime::now` breaks sim determinism — use a telemetry `Clock`"
    );
}

#[test]
fn l4_fixture_flags_float_eq_and_ne() {
    let report = scan_fixture("l4.rs", RuleConfig::default());
    assert_eq!(triples(&report), expected("L4", "l4.rs", &[4, 8]));
}

#[test]
fn l5_fixture_flags_only_the_unguarded_solver() {
    // Mark the fixture directory as L5-guarded; by default only
    // offload/exitcfg sources are. Restrict to the token rules so the
    // (deliberately overlapping) transitive S1 rule stays out of the
    // expectation — the S-rules have their own fixtures below.
    let mut config = RuleConfig::default();
    if let Err(e) = parse_rule_filter(&mut config, "L1,L2,L3,L4,L5") {
        unreachable!("rule filter must parse: {e}");
    }
    config
        .guarded_path_markers
        .push("crates/lint/fixtures".to_string());
    let report = scan_fixture("l5.rs", config);
    assert_eq!(triples(&report), expected("L5", "l5.rs", &[3]));
    assert_eq!(
        report.violations[0].message,
        "`fn balance_solve` produces ratios/shares/queue state but never calls an \
         `invariant::` guard (Eq. 8 / Eq. 10–11 / Eq. 27)"
    );
}

#[test]
fn l5_fixture_is_exempt_without_the_path_marker() {
    let report = scan_fixture("l5.rs", RuleConfig::default());
    assert!(report.is_clean(), "{:?}", report.violations);
}

#[test]
fn waiver_fixture_reports_hygiene_and_waived_sites() {
    let report = scan_fixture("waivers.rs", RuleConfig::default());
    // W1: justification-free waiver (line 10); W2: unknown rule L9
    // (line 14); W3: stale L2 waiver (line 17).
    assert_eq!(
        triples(&report),
        vec![
            (
                "W1".to_string(),
                "crates/lint/fixtures/waivers.rs".to_string(),
                10
            ),
            (
                "W2".to_string(),
                "crates/lint/fixtures/waivers.rs".to_string(),
                14
            ),
            (
                "W3".to_string(),
                "crates/lint/fixtures/waivers.rs".to_string(),
                17
            ),
        ]
    );
    // Both unwraps are suppressed (the justification-free one still
    // counts as waived; its hygiene problem is the W1 above).
    assert_eq!(report.waivers_used, 2);
    assert_eq!(report.waived[0].finding.rule, "L1");
    assert_eq!(report.waived[0].finding.line, 6);
    assert_eq!(
        report.waived[0].justification,
        "fixture exercises the waiver path"
    );
    assert_eq!(report.waived[1].finding.line, 11);
    assert_eq!(report.waived[1].justification, "");
}

#[test]
fn text_report_formats_path_line_rule() {
    let report = scan_fixture("l1.rs", RuleConfig::default());
    let text = report.render_text();
    assert!(
        text.contains(
            "crates/lint/fixtures/l1.rs:4: [L1] `.unwrap()` in library code — \
             return a typed error instead"
        ),
        "unexpected text report:\n{text}"
    );
    assert!(text.contains("4 violation(s) (L1: 4)"), "{text}");
}

#[test]
fn json_report_carries_schema_rules_paths_and_lines() {
    let mut opts = ScanOptions::new(workspace_root());
    opts.paths = vec![
        PathBuf::from("crates/lint/fixtures/l1.rs"),
        PathBuf::from("crates/lint/fixtures/l3.rs"),
    ];
    let report = match run(&opts) {
        Ok(r) => r,
        Err(e) => unreachable!("fixture scan must succeed: {e}"),
    };
    let json = report.to_json();
    let v: serde_json::Value = match serde_json::from_str(&json) {
        Ok(v) => v,
        Err(e) => unreachable!("JSON report must parse: {e:?}"),
    };
    assert_eq!(v["schema"].as_str(), Some(SCHEMA_VERSION));
    assert_eq!(v["files_scanned"].as_u64(), Some(2));
    let violations = match v["violations"].as_array() {
        Some(list) => list,
        None => unreachable!("violations must be an array"),
    };
    let got: Vec<(String, String, u64)> = violations
        .iter()
        .map(|f| {
            (
                f["rule"].as_str().unwrap_or("").to_string(),
                f["path"].as_str().unwrap_or("").to_string(),
                f["line"].as_u64().unwrap_or(0),
            )
        })
        .collect();
    let want: Vec<(String, String, u64)> = [
        ("L1", "l1.rs", 4u64),
        ("L1", "l1.rs", 8),
        ("L1", "l1.rs", 12),
        ("L1", "l1.rs", 16),
        ("L3", "l3.rs", 4),
        ("L3", "l3.rs", 8),
    ]
    .iter()
    .map(|&(r, f, l)| (r.to_string(), format!("crates/lint/fixtures/{f}"), l))
    .collect();
    assert_eq!(got, want);
    // Per-rule summary mirrors the violation list.
    let summary = match v["summary"].as_array() {
        Some(list) => list,
        None => unreachable!("summary must be an array"),
    };
    assert_eq!(summary.len(), 2);
    assert_eq!(summary[0]["rule"].as_str(), Some("L1"));
    assert_eq!(summary[0]["count"].as_u64(), Some(4));
    assert_eq!(summary[1]["rule"].as_str(), Some("L3"));
    assert_eq!(summary[1]["count"].as_u64(), Some(2));
}

/// Config for the S-rule fixtures: semantic rules only, with every
/// S1–S3 path marker pointing at the fixtures directory.
fn s_rule_config() -> RuleConfig {
    let mut config = RuleConfig::default();
    if let Err(e) = parse_rule_filter(&mut config, "S1,S2,S3,S4") {
        unreachable!("rule filter must parse: {e}");
    }
    let marker = "crates/lint/fixtures".to_string();
    config.guarded_path_markers.push(marker.clone());
    config.hash_path_markers.push(marker.clone());
    config.unit_path_markers.push(marker);
    config
}

#[test]
fn s1_fixture_flags_the_transitively_unguarded_solver() {
    let report = scan_fixture("s1.rs", s_rule_config());
    assert_eq!(triples(&report), expected("S1", "s1.rs", &[5]));
    assert_eq!(
        report.violations[0].message,
        "`fn decide` never reaches an `invariant::` guard on any call path \
         (Eq. 8 / Eq. 10–11 / Eq. 27)"
    );
}

#[test]
fn s2_fixture_flags_hash_iteration_only() {
    let report = scan_fixture("s2.rs", s_rule_config());
    assert_eq!(triples(&report), expected("S2", "s2.rs", &[8]));
    assert!(
        report.violations[0].message.contains(".keys()")
            && report.violations[0].message.contains("`stats`"),
        "{}",
        report.violations[0].message
    );
}

#[test]
fn s3_fixture_flags_unit_mixing_only() {
    let report = scan_fixture("s3.rs", s_rule_config());
    assert_eq!(triples(&report), expected("S3", "s3.rs", &[5]));
    assert!(
        report.violations[0].message.contains("milliseconds")
            && report.violations[0].message.contains("seconds"),
        "{}",
        report.violations[0].message
    );
}

#[test]
fn s4_fixture_workspace_flags_rank_fence_and_shim_edges() {
    // Point the scan root at a fake workspace whose manifests break the
    // rank, tooling-fence and shim-path constraints one crate each; the
    // clean leime-workload manifest must stay silent.
    let mut opts = ScanOptions::new(
        workspace_root()
            .join("crates")
            .join("lint")
            .join("fixtures")
            .join("s4_ws"),
    );
    opts.config = s_rule_config();
    let report = match run(&opts) {
        Ok(r) => r,
        Err(e) => unreachable!("fixture scan must succeed: {e}"),
    };
    let want: Vec<(String, String, u32)> = [
        ("crates/leime-dnn/Cargo.toml", "shims"),
        ("crates/leime-simnet/Cargo.toml", "tooling"),
        ("crates/leime-telemetry/Cargo.toml", "strictly downward"),
    ]
    .iter()
    .map(|&(path, _)| ("S4".to_string(), path.to_string(), 6))
    .collect();
    assert_eq!(triples(&report), want);
    assert!(report.violations[0].message.contains("shims"));
    assert!(report.violations[1].message.contains("tooling"));
    assert!(report.violations[2].message.contains("strictly downward"));
}

#[test]
fn s_rule_findings_carry_rule_file_line_in_text_and_json() {
    let mut opts = ScanOptions::new(workspace_root());
    opts.paths = ["s1.rs", "s2.rs", "s3.rs"]
        .iter()
        .map(|f| PathBuf::from(format!("crates/lint/fixtures/{f}")))
        .collect();
    opts.config = s_rule_config();
    let report = match run(&opts) {
        Ok(r) => r,
        Err(e) => unreachable!("fixture scan must succeed: {e}"),
    };

    let text = report.render_text();
    for line in [
        "crates/lint/fixtures/s1.rs:5: [S1]",
        "crates/lint/fixtures/s2.rs:8: [S2]",
        "crates/lint/fixtures/s3.rs:5: [S3]",
    ] {
        assert!(text.contains(line), "missing `{line}` in:\n{text}");
    }

    let v: serde_json::Value = match serde_json::from_str(&report.to_json()) {
        Ok(v) => v,
        Err(e) => unreachable!("JSON report must parse: {e:?}"),
    };
    assert_eq!(v["schema"].as_str(), Some(SCHEMA_VERSION));
    let rule_set: Vec<&str> = v["rule_set"]
        .as_array()
        .map(|a| a.iter().filter_map(|r| r.as_str()).collect())
        .unwrap_or_default();
    for rule in ["S1", "S2", "S3", "S4"] {
        assert!(rule_set.contains(&rule), "{rule} missing from {rule_set:?}");
    }
    let got: Vec<(String, String, u64)> = v["violations"]
        .as_array()
        .map(|list| {
            list.iter()
                .map(|f| {
                    (
                        f["rule"].as_str().unwrap_or("").to_string(),
                        f["path"].as_str().unwrap_or("").to_string(),
                        f["line"].as_u64().unwrap_or(0),
                    )
                })
                .collect()
        })
        .unwrap_or_default();
    let want: Vec<(String, String, u64)> = [
        ("S1", "s1.rs", 5u64),
        ("S2", "s2.rs", 8),
        ("S3", "s3.rs", 5),
    ]
    .iter()
    .map(|&(r, f, l)| (r.to_string(), format!("crates/lint/fixtures/{f}"), l))
    .collect();
    assert_eq!(got, want);
}

/// Config for the flow-rule fixtures (S5–S8): the requested rules only,
/// with the S6/S7 path markers pointing at the fixtures directory
/// (S5/S8 are unscoped — shard bodies are shard bodies anywhere).
fn flow_rule_config(rules: &str) -> RuleConfig {
    let mut config = RuleConfig::default();
    if let Err(e) = parse_rule_filter(&mut config, rules) {
        unreachable!("rule filter must parse: {e}");
    }
    let marker = "crates/lint/fixtures".to_string();
    config.hot_path_markers.push(marker.clone());
    config.rng_path_markers.push(marker);
    config
}

#[test]
fn s5_fixture_flags_mutable_and_interior_captures() {
    let report = scan_fixture("s5.rs", flow_rule_config("S5"));
    assert_eq!(triples(&report), expected("S5", "s5.rs", &[8, 17]));
    assert!(
        report.violations[0].message.contains("`total`")
            && report.violations[0].message.contains("mutably captures"),
        "{}",
        report.violations[0].message
    );
    assert!(
        report.violations[1].message.contains("`shared`")
            && report.violations[1].message.contains(".lock()"),
        "{}",
        report.violations[1].message
    );
}

#[test]
fn s7_fixture_flags_literal_adhoc_and_entropy_seeds() {
    let report = scan_fixture("s7.rs", flow_rule_config("S7"));
    assert_eq!(triples(&report), expected("S7", "s7.rs", &[5, 9, 13]));
    assert!(
        report.violations[0].message.contains("literal seed"),
        "{}",
        report.violations[0].message
    );
    assert!(
        report.violations[1].message.contains("ad-hoc seed"),
        "{}",
        report.violations[1].message
    );
    assert!(
        report.violations[2].message.contains("ambient entropy"),
        "{}",
        report.violations[2].message
    );
}

#[test]
fn s8_fixture_flags_direct_and_transitive_blocking() {
    let report = scan_fixture("s8.rs", flow_rule_config("S8"));
    assert_eq!(triples(&report), expected("S8", "s8.rs", &[6, 12]));
    assert!(
        report.violations[0].message.contains("thread::sleep"),
        "{}",
        report.violations[0].message
    );
    assert!(
        report.violations[1].message.contains("`fn slow_helper`")
            && report.violations[1].message.contains("reachable"),
        "{}",
        report.violations[1].message
    );
}

#[test]
fn flow_ws_fixture_crosses_files() {
    // The shard body lives in driver.rs; its helper's blocking receive
    // lives in worker.rs — the flow graph must connect them.
    let report = scan_fixture("flow_ws", flow_rule_config("S5,S7,S8"));
    assert_eq!(
        triples(&report),
        vec![
            (
                "S5".to_string(),
                "crates/lint/fixtures/flow_ws/driver.rs".to_string(),
                8
            ),
            (
                "S8".to_string(),
                "crates/lint/fixtures/flow_ws/worker.rs".to_string(),
                4
            ),
        ]
    );
    assert!(report.violations[0].message.contains("`hits`"));
    assert!(report.violations[1].message.contains("`fn shard_step`"));
}

#[test]
fn s6_fixture_trips_the_ratchet_against_the_pinned_baseline() {
    let mut opts = ScanOptions::new(workspace_root());
    opts.paths = vec![PathBuf::from("crates/lint/fixtures/s6.rs")];
    opts.config = flow_rule_config("S6");
    opts.s6_baseline = Some(workspace_root().join("crates/lint/fixtures/s6_baseline.json"));
    let report = match run(&opts) {
        Ok(r) => r,
        Err(e) => unreachable!("fixture scan must succeed: {e}"),
    };
    // `run` (root) and `helper` (callee) each allocate once against a
    // baseline of zero; `cold` allocates too but is not hot.
    assert_eq!(triples(&report), expected("S6", "s6.rs", &[6, 12]));
    assert!(
        report.violations[0]
            .message
            .contains("rose to 1 (baseline 0)"),
        "{}",
        report.violations[0].message
    );
}

#[test]
fn s6_write_baseline_round_trips_to_a_clean_run() {
    let path = std::env::temp_dir().join(format!("leime_s6_baseline_{}.json", std::process::id()));
    let mut opts = ScanOptions::new(workspace_root());
    opts.paths = vec![PathBuf::from("crates/lint/fixtures/s6.rs")];
    opts.config = flow_rule_config("S6");
    opts.s6_baseline = Some(path.clone());
    opts.write_s6_baseline = true;
    let report = match run(&opts) {
        Ok(r) => r,
        Err(e) => unreachable!("baseline write must succeed: {e}"),
    };
    assert!(report.is_clean(), "{:?}", report.violations);
    // A second run against the freshly written baseline is clean.
    opts.write_s6_baseline = false;
    let report = match run(&opts) {
        Ok(r) => r,
        Err(e) => unreachable!("fixture scan must succeed: {e}"),
    };
    let _ = std::fs::remove_file(&path);
    assert!(report.is_clean(), "{:?}", report.violations);
}

#[test]
fn flow_rule_findings_carry_rule_file_line_in_text_and_json() {
    let mut opts = ScanOptions::new(workspace_root());
    opts.paths = ["s5.rs", "s7.rs", "s8.rs"]
        .iter()
        .map(|f| PathBuf::from(format!("crates/lint/fixtures/{f}")))
        .collect();
    opts.config = flow_rule_config("S5,S7,S8");
    let report = match run(&opts) {
        Ok(r) => r,
        Err(e) => unreachable!("fixture scan must succeed: {e}"),
    };

    let text = report.render_text();
    for line in [
        "crates/lint/fixtures/s5.rs:8: [S5]",
        "crates/lint/fixtures/s7.rs:5: [S7]",
        "crates/lint/fixtures/s8.rs:6: [S8]",
    ] {
        assert!(text.contains(line), "missing `{line}` in:\n{text}");
    }

    let v: serde_json::Value = match serde_json::from_str(&report.to_json()) {
        Ok(v) => v,
        Err(e) => unreachable!("JSON report must parse: {e:?}"),
    };
    assert_eq!(v["schema"].as_str(), Some("leime-lint/4"));
    assert_eq!(v["schema"].as_str(), Some(SCHEMA_VERSION));
    let rule_set: Vec<&str> = v["rule_set"]
        .as_array()
        .map(|a| a.iter().filter_map(|r| r.as_str()).collect())
        .unwrap_or_default();
    for rule in ["S5", "S6", "S7", "S8"] {
        assert!(rule_set.contains(&rule), "{rule} missing from {rule_set:?}");
    }
    let got: Vec<(String, String, u64)> = v["violations"]
        .as_array()
        .map(|list| {
            list.iter()
                .map(|f| {
                    (
                        f["rule"].as_str().unwrap_or("").to_string(),
                        f["path"].as_str().unwrap_or("").to_string(),
                        f["line"].as_u64().unwrap_or(0),
                    )
                })
                .collect()
        })
        .unwrap_or_default();
    // The `.lock()` at s5.rs:17 is doubly wrong: a shared-mutation S5
    // *and* a blocking S8 inside the shard body.
    let want: Vec<(String, String, u64)> = [
        ("S5", "s5.rs", 8u64),
        ("S5", "s5.rs", 17),
        ("S8", "s5.rs", 17),
        ("S7", "s7.rs", 5),
        ("S7", "s7.rs", 9),
        ("S7", "s7.rs", 13),
        ("S8", "s8.rs", 6),
        ("S8", "s8.rs", 12),
    ]
    .iter()
    .map(|&(r, f, l)| (r.to_string(), format!("crates/lint/fixtures/{f}"), l))
    .collect();
    assert_eq!(got, want);
}

#[test]
fn s9_fixture_flags_hot_float_accumulations_only() {
    let report = scan_fixture("s9.rs", flow_rule_config("S9"));
    // `seq_sweep` is a hot root: its loop-carried `acc +=` and the
    // trailing float `.sum()` both fire; `cold` stays silent.
    assert_eq!(triples(&report), expected("S9", "s9.rs", &[6, 8]));
    assert!(
        report.violations[0].message.contains("`acc += …`")
            && report.violations[0].message.contains("byte-identical"),
        "{}",
        report.violations[0].message
    );
    assert!(
        report.violations[1].message.contains(".sum()"),
        "{}",
        report.violations[1].message
    );
}

#[test]
fn s10_fixture_flags_fma_and_missing_round_body() {
    let report = scan_fixture("s10.rs", flow_rule_config("S10"));
    // `lanes_fma` funnels through the shared `round_body` but enables
    // `fma` unregistered; `lanes_lone` shares no round body at all.
    assert_eq!(triples(&report), expected("S10", "s10.rs", &[4, 9]));
    assert!(
        report.violations[0].message.contains("fma"),
        "{}",
        report.violations[0].message
    );
    assert!(
        report.violations[1]
            .message
            .contains("shared with the scalar path"),
        "{}",
        report.violations[1].message
    );
}

#[test]
fn s10_fma_free_registration_clears_the_fma_finding() {
    let mut config = flow_rule_config("S10");
    config.fma_free_round_bodies.push("round_body".to_string());
    let report = scan_fixture("s10.rs", config);
    assert_eq!(triples(&report), expected("S10", "s10.rs", &[9]));
}

#[test]
fn s10_registry_check_flags_unregistered_lane_fns() {
    let mut opts = ScanOptions::new(workspace_root());
    opts.paths = vec![PathBuf::from("crates/lint/fixtures/s10.rs")];
    let mut config = flow_rule_config("S10");
    config.fma_free_round_bodies.push("round_body".to_string());
    opts.config = config;
    opts.simd_registry = Some(workspace_root().join("crates/lint/fixtures/s10_registry.json"));
    let report = match run(&opts) {
        Ok(r) => r,
        Err(e) => unreachable!("fixture scan must succeed: {e}"),
    };
    // `lanes_fma` is registered; `lanes_lone` is not, so it carries the
    // registry finding on top of its missing-round-body one.
    assert_eq!(triples(&report), expected("S10", "s10.rs", &[9, 9]));
    assert!(
        report
            .violations
            .iter()
            .any(|f| f.message.contains("SIMD registry")),
        "{:?}",
        report.violations
    );
}

#[test]
fn s11_fixture_flags_unjustified_sites_only() {
    let report = scan_fixture("s11.rs", flow_rule_config("S11"));
    // The commented block at line 5 passes; the bare block (9) and the
    // bare `unsafe fn` (12) do not.
    assert_eq!(triples(&report), expected("S11", "s11.rs", &[9, 12]));
    assert!(
        report.violations[0].message.contains("`// safety:`"),
        "{}",
        report.violations[0].message
    );
    assert!(
        report.violations[1]
            .message
            .contains("`unsafe fn raw_read`"),
        "{}",
        report.violations[1].message
    );
}

#[test]
fn s11_ledger_ratchet_trips_when_counts_rise() {
    let mut opts = ScanOptions::new(workspace_root());
    opts.paths = vec![PathBuf::from("crates/lint/fixtures/s11.rs")];
    opts.config = flow_rule_config("S11");
    opts.unsafe_ledger = Some(workspace_root().join("crates/lint/fixtures/s11_ledger.json"));
    let report = match run(&opts) {
        Ok(r) => r,
        Err(e) => unreachable!("fixture scan must succeed: {e}"),
    };
    // Ledger pins 1 site, the file has 3: the line-1 ratchet finding
    // joins the two per-site ones.
    assert_eq!(triples(&report), expected("S11", "s11.rs", &[1, 9, 12]));
    assert!(
        report.violations[0]
            .message
            .contains("rose to 3 (ledger 1)"),
        "{}",
        report.violations[0].message
    );
}

#[test]
fn s11_write_ledger_round_trips_to_a_quiet_ratchet() {
    let path = std::env::temp_dir().join(format!("leime_s11_ledger_{}.json", std::process::id()));
    let mut opts = ScanOptions::new(workspace_root());
    opts.paths = vec![PathBuf::from("crates/lint/fixtures/s11.rs")];
    opts.config = flow_rule_config("S11");
    opts.unsafe_ledger = Some(path.clone());
    opts.write_unsafe_ledger = true;
    let report = match run(&opts) {
        Ok(r) => r,
        Err(e) => unreachable!("ledger write must succeed: {e}"),
    };
    // Per-site findings persist (they are not ledgered away)...
    assert_eq!(triples(&report), expected("S11", "s11.rs", &[9, 12]));
    // ...but a re-run against the fresh ledger adds no ratchet finding.
    opts.write_unsafe_ledger = false;
    let report = match run(&opts) {
        Ok(r) => r,
        Err(e) => unreachable!("fixture scan must succeed: {e}"),
    };
    let _ = std::fs::remove_file(&path);
    assert_eq!(triples(&report), expected("S11", "s11.rs", &[9, 12]));
}

#[test]
fn s12_fixture_flags_the_lock_cycle() {
    let report = scan_fixture("s12.rs", flow_rule_config("S12"));
    // The cycle anchors at the first acquisition of its smallest lock.
    assert_eq!(triples(&report), expected("S12", "s12.rs", &[12]));
    assert!(
        report.violations[0].message.contains("reg → stats → reg"),
        "{}",
        report.violations[0].message
    );
}

#[test]
fn numeric_ws_fixture_crosses_files_in_text_and_json() {
    // The hot root and shard body live in driver.rs; the S9 float
    // reduction sits in kernel.rs and the S12 lock cycle in locks.rs —
    // the flow graph must connect all three files.
    let report = scan_fixture("numeric_ws", flow_rule_config("S9,S10,S11,S12"));
    assert_eq!(
        triples(&report),
        vec![
            (
                "S9".to_string(),
                "crates/lint/fixtures/numeric_ws/kernel.rs".to_string(),
                6
            ),
            (
                "S12".to_string(),
                "crates/lint/fixtures/numeric_ws/locks.rs".to_string(),
                4
            ),
        ]
    );
    assert!(report.violations[0].message.contains("`fn accumulate`"));
    assert!(
        report.violations[1]
            .message
            .contains("registry → stats → registry"),
        "{}",
        report.violations[1].message
    );

    let text = report.render_text();
    for line in [
        "crates/lint/fixtures/numeric_ws/kernel.rs:6: [S9]",
        "crates/lint/fixtures/numeric_ws/locks.rs:4: [S12]",
    ] {
        assert!(text.contains(line), "missing `{line}` in:\n{text}");
    }

    let v: serde_json::Value = match serde_json::from_str(&report.to_json()) {
        Ok(v) => v,
        Err(e) => unreachable!("JSON report must parse: {e:?}"),
    };
    assert_eq!(v["schema"].as_str(), Some("leime-lint/4"));
    assert_eq!(v["schema"].as_str(), Some(SCHEMA_VERSION));
    let rule_set: Vec<&str> = v["rule_set"]
        .as_array()
        .map(|a| a.iter().filter_map(|r| r.as_str()).collect())
        .unwrap_or_default();
    for rule in ["S9", "S10", "S11", "S12"] {
        assert!(rule_set.contains(&rule), "{rule} missing from {rule_set:?}");
    }
    let got: Vec<(String, String, u64)> = v["violations"]
        .as_array()
        .map(|list| {
            list.iter()
                .map(|f| {
                    (
                        f["rule"].as_str().unwrap_or("").to_string(),
                        f["path"].as_str().unwrap_or("").to_string(),
                        f["line"].as_u64().unwrap_or(0),
                    )
                })
                .collect()
        })
        .unwrap_or_default();
    let want: Vec<(String, String, u64)> = vec![
        (
            "S9".to_string(),
            "crates/lint/fixtures/numeric_ws/kernel.rs".to_string(),
            6,
        ),
        (
            "S12".to_string(),
            "crates/lint/fixtures/numeric_ws/locks.rs".to_string(),
            4,
        ),
    ];
    assert_eq!(got, want);
}

#[test]
fn s2_hash_markers_pin_the_serving_crate() {
    // The serving slot loop and admission path are determinism-sensitive;
    // S2's default scope must keep covering them.
    let config = RuleConfig::default();
    assert!(
        config
            .hash_path_markers
            .iter()
            .any(|m| m == "crates/serving/src"),
        "crates/serving/src missing from S2 hash_path_markers: {:?}",
        config.hash_path_markers
    );
}

#[test]
fn no_sema_turns_the_s_rules_off() {
    let mut opts = ScanOptions::new(workspace_root());
    opts.paths = vec![PathBuf::from("crates/lint/fixtures/s1.rs")];
    opts.config = s_rule_config();
    opts.sema = false;
    let report = match run(&opts) {
        Ok(r) => r,
        Err(e) => unreachable!("fixture scan must succeed: {e}"),
    };
    assert!(report.is_clean(), "{:?}", report.violations);
}

#[test]
fn deny_all_semantics_fixtures_dirty_workspace_clean_of_fixture_rules() {
    // The whole fixtures directory trips the gate...
    let mut opts = ScanOptions::new(workspace_root());
    opts.paths = vec![PathBuf::from("crates/lint/fixtures")];
    opts.config
        .guarded_path_markers
        .push("crates/lint/fixtures".to_string());
    let report = match run(&opts) {
        Ok(r) => r,
        Err(e) => unreachable!("fixture scan must succeed: {e}"),
    };
    assert!(!report.is_clean());
    // ...and every primary rule is represented in the summary.
    let hit: Vec<&str> = report.summary.iter().map(|c| c.rule.as_str()).collect();
    for rule in ["L1", "L2", "L3", "L4", "L5", "W1", "W2", "W3"] {
        assert!(hit.contains(&rule), "rule {rule} missing from {hit:?}");
    }
}
