//! S2 fixture: iterating a hash container leaks the hasher's ordering
//! into the output; the `BTreeMap` path below stays legal.

use std::collections::{BTreeMap, HashMap};

pub fn export(stats: HashMap<String, u64>) -> Vec<String> {
    let mut out = Vec::new();
    for name in stats.keys() {
        out.push(name.clone());
    }
    out
}

pub fn export_sorted(stats: BTreeMap<String, u64>) -> Vec<String> {
    stats.keys().cloned().collect()
}
