//! Seeded L2 violation: NaN-unsafe `partial_cmp` unwrap.

pub fn sort_scores(v: &mut [f64]) {
    v.sort_by(|a, b| a.partial_cmp(b).unwrap());
}

pub fn total_cmp_is_fine(v: &mut [f64]) {
    v.sort_by(|a, b| a.total_cmp(b));
}

pub fn handled_partial_cmp_is_fine(a: f64, b: f64) -> bool {
    a.partial_cmp(&b).is_some()
}
