//! S9 fixture: float accumulations on byte-identical-contract paths.

pub fn seq_sweep(xs: &[f64]) -> f64 {
    let mut acc = 0.0;
    for x in xs {
        acc += *x;
    }
    acc + xs.iter().sum::<f64>()
}

fn cold(xs: &[f64]) -> f64 {
    let mut a = 0.0;
    for x in xs {
        a += *x;
    }
    a
}
