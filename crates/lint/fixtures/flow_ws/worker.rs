//! Worker-side helper for the cross-file flow fixture.

pub fn shard_step(x: u32) -> u32 {
    let extra = inbox.recv();
    x + extra
}
