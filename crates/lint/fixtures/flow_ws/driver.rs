//! Cross-file flow fixture: the shard body mutates a driver-side
//! counter and calls a helper defined in `worker.rs`, whose blocking
//! receive must surface transitively.

pub fn run_shards(items: &[u32], workers: usize) -> u32 {
    let mut hits = 0;
    let _ = par_map_shards(items, workers, |_i, x| {
        hits += 1;
        shard_step(*x)
    });
    hits
}
