//! Seeded L1 violations; every panic-prone site sits on a known line.

pub fn unwrap_site(o: Option<u32>) -> u32 {
    o.unwrap()
}

pub fn expect_site(o: Option<u32>) -> u32 {
    o.expect("seeded")
}

pub fn panic_site() {
    panic!("seeded");
}

pub fn unimplemented_site() {
    unimplemented!()
}

pub fn unwrap_or_is_fine(o: Option<u32>) -> u32 {
    o.unwrap_or(0)
}

#[cfg(test)]
mod tests {
    #[test]
    fn test_code_is_exempt() {
        None::<u32>.unwrap();
    }
}
