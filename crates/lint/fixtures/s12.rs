//! S12 fixture: lock-order cycle between two shard-reachable helpers.

pub fn drive(items: &[u32], workers: W) {
    let _ = par_map_shards(items, workers, |_i, x| {
        fwd(*x);
        bwd(*x);
        *x
    });
}

fn fwd(x: u32) {
    let a = reg.read();
    let b = stats.write();
}

fn bwd(x: u32) {
    let b = stats.read();
    let a = reg.write();
}
