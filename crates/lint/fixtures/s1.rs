//! S1 fixture: `decide` funnels through a helper chain that never
//! reaches an `invariant::` guard; `submit` delegates to one and is
//! clean (the token-level L5 would have flagged both).

pub fn decide(x: f64) -> f64 {
    helper(x)
}

fn helper(x: f64) -> f64 {
    x * 0.5
}

pub fn submit(x: f64) -> f64 {
    checked(x)
}

fn checked(x: f64) -> f64 {
    invariant::check_unit_interval("x", x)
}
