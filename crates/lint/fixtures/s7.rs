//! S7 fixture: RNGs seeded from a literal, an ad-hoc derivation, and
//! ambient entropy; the `stream_seed`-derived stream stays legal.

pub fn bad_literal() -> StdRng {
    StdRng::seed_from_u64(42)
}

pub fn bad_adhoc(seed: u64, i: u64) -> StdRng {
    StdRng::seed_from_u64(seed.wrapping_add(i))
}

pub fn bad_entropy() -> StdRng {
    StdRng::from_entropy()
}

pub fn good(seed: u64, i: u64) -> StdRng {
    StdRng::seed_from_u64(leime_par::stream_seed(seed, i))
}
