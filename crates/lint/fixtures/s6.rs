//! S6 fixture: hot-path allocation counts compared against the pinned
//! fixture baseline (`s6_baseline.json`), which holds them at zero —
//! both allocating functions must trip the ratchet. `cold` allocates
//! too but is unreachable from the hot roots.

pub fn run(n: usize) -> Vec<u32> {
    let v: Vec<u32> = (0..n as u32).collect();
    helper(n);
    v
}

fn helper(n: usize) -> String {
    let mut s = String::new();
    for i in 0..n {
        s = format!("{s}{i}");
    }
    s
}

fn cold(n: usize) -> String {
    n.to_string()
}
