//! Seeded L5 violation: a guarded solver fn that never calls a guard.

pub fn balance_solve(x: f64) -> f64 {
    x.clamp(0.0, 1.0)
}

pub fn golden_section_solve(x: f64) -> f64 {
    invariant::check_unit_interval("fixture", x)
}
