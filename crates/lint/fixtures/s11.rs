//! S11 fixture: unjustified unsafe sites next to a justified one.

pub fn checked(p: *const u8) -> u8 {
    // SAFETY: fixture pointer is always valid.
    unsafe { *p }
}

pub fn unchecked(p: *const u8) -> u8 {
    unsafe { *p }
}

pub unsafe fn raw_read(p: *const u8) -> u8 {
    *p
}
