//! Seeded L4 violations: float-literal equality comparisons.

pub fn is_zero(x: f64) -> bool {
    x == 0.0
}

pub fn is_not_one(x: f64) -> bool {
    x != 1.0
}

pub fn integer_eq_is_fine(x: u32) -> bool {
    x == 0
}
