//! S8 fixture: the shard body sleeps directly and calls a helper that
//! blocks on a channel receive; the wait-free body stays legal.

pub fn bad(items: &[u32], workers: usize, pause: Duration) {
    let _ = par_map_shards(items, workers, |_i, x| {
        std::thread::sleep(pause);
        slow_helper(*x)
    });
}

fn slow_helper(x: u32) -> u32 {
    let extra = inbox.recv();
    x + extra
}

pub fn good(items: &[u32], workers: usize) -> usize {
    let outs = par_map_shards(items, workers, |_i, x| x + 1);
    outs.len()
}
