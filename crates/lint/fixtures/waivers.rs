//! Seeded waiver-hygiene cases: a valid waiver, a justification-free
//! waiver (W1), an unknown rule (W2), and a stale waiver (W3).

pub fn valid_waiver(o: Option<u32>) -> u32 {
    // lint:allow(L1): fixture exercises the waiver path
    o.unwrap()
}

pub fn missing_justification(o: Option<u32>) -> u32 {
    // lint:allow(L1)
    o.unwrap()
}

// lint:allow(L9): no such rule
pub fn unknown_rule() {}

// lint:allow(L2): suppresses nothing
pub fn stale() {}
