//! S10 fixture: target_feature fns off the shared-round-body contract.

#[target_feature(enable = "avx2,fma")]
unsafe fn lanes_fma(x: f64) -> f64 {
    round_body(x)
}

#[target_feature(enable = "avx2")]
unsafe fn lanes_lone(x: f64) -> f64 {
    x * 2.0
}

fn scalar(x: f64) -> f64 {
    round_body(x)
}

fn round_body(x: f64) -> f64 {
    x + 1.0
}
