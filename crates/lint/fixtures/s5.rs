//! S5 fixture: the `par_map_shards` worker closure mutably captures
//! driver-side state (a counter and a Mutex); the capture-free shard
//! body below stays legal.

pub fn bad_sum(items: &[u32], workers: usize) -> u32 {
    let mut total = 0;
    let _ = par_map_shards(items, workers, |_i, x| {
        total += x;
        0
    });
    total
}

pub fn bad_shared(items: &[u32], workers: usize) -> u32 {
    let shared = Mutex::new(0u32);
    let _ = par_map_shards(items, workers, |_i, x| {
        *shared.lock() += x;
        0
    });
    0
}

pub fn good_sum(items: &[u32], workers: usize) -> u32 {
    let base = 1;
    let outs = par_map_shards(items, workers, |_i, x| x + base);
    outs.len() as u32
}
