//! Seeded L3 violations: wall-clock reads outside the telemetry crate.

pub fn stamp() -> std::time::Instant {
    std::time::Instant::now()
}

pub fn epoch() -> std::time::SystemTime {
    std::time::SystemTime::now()
}
