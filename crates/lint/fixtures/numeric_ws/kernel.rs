//! The float reduction a shard-merged result flows through.

pub fn accumulate(xs: &[f64]) -> f64 {
    let mut acc = 0.0;
    for x in xs {
        acc += *x;
    }
    acc
}
