//! Cross-file numeric workspace: the hot root and shard body live
//! here; the float reduction and the lock cycle live in the other
//! files.

pub fn seq_sweep(xs: &[f64], workers: W) -> f64 {
    let outs = par_map_shards(xs, workers, |_i, x| {
        forward(*x);
        backward(*x);
        *x
    });
    accumulate(&outs)
}
