//! Two helpers that acquire the same pair of locks in opposite order.

pub fn forward(x: f64) {
    let r = registry.read();
    let s = stats.write();
}

pub fn backward(x: f64) {
    let s = stats.read();
    let r = registry.write();
}
