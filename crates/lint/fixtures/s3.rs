//! S3 fixture: subtracting seconds from a millisecond budget; the
//! same-family arithmetic and unit conversions below stay legal.

pub fn remaining(budget_ms: f64, elapsed_s: f64) -> f64 {
    budget_ms - elapsed_s
}

pub fn legal(budget_ms: f64, elapsed_ms: f64, rate_bytes: f64, dt_s: f64) -> f64 {
    (budget_ms - elapsed_ms) + rate_bytes * dt_s
}
