//! Intra-crate call graph for the S1 transitive-guard rule.
//!
//! Nodes are function *names* (an over-approximation: same-named
//! methods on different types merge into one node, which makes
//! reachability more permissive, never less — a deliberate bias, since
//! S1 false positives would train people to waive findings). Edges come
//! from the parsed AST: `path()` calls contribute their last segment,
//! method calls their method name.
//!
//! Direct `invariant::` detection is *token-level*, scanning each
//! function's body tokens for `invariant ::` / `leime_invariant ::`.
//! This is deliberately the same notion L5 uses, so S1 is strictly more
//! permissive than L5: any L5-clean function is S1's base case, and S1
//! additionally accepts delegation through locally-defined callees.

use crate::ast::{walk_block, Expr, File};
use crate::lexer::{lex, Tok, TokKind};
use crate::symbols;
use std::collections::{BTreeMap, BTreeSet, VecDeque};

/// Call graph over one crate's files.
#[derive(Debug, Default)]
pub struct CallGraph {
    /// fn name → names it calls (paths by last segment, methods by name).
    calls: BTreeMap<String, BTreeSet<String>>,
    /// fn names whose body tokens contain a direct `invariant::` call.
    direct_guard: BTreeSet<String>,
}

impl CallGraph {
    /// Adds one parsed file (and its source text, for the token-level
    /// direct-guard scan) to the graph.
    pub fn add_file(&mut self, file: &File, src: &str) {
        let table = symbols::build(file);
        for f in &table.fns {
            let out = self.calls.entry(f.name.clone()).or_default();
            if let Some(body) = &f.body {
                walk_block(body, &mut |e| match e {
                    Expr::Call { callee, .. } => {
                        if let Expr::Path { segs, .. } = callee.as_ref() {
                            if let Some(last) = segs.last() {
                                out.insert(last.clone());
                            }
                        }
                    }
                    Expr::MethodCall { method, .. } => {
                        out.insert(method.clone());
                    }
                    _ => {}
                });
            }
        }
        scan_direct_guards(&lex(src).toks, &mut self.direct_guard);
    }

    /// Whether `name` calls `invariant::` directly.
    pub fn is_direct_guard(&self, name: &str) -> bool {
        self.direct_guard.contains(name)
    }

    /// Whether `name` reaches a direct `invariant::` caller through the
    /// call graph (including being one itself).
    pub fn reaches_guard(&self, name: &str) -> bool {
        if self.direct_guard.contains(name) {
            return true;
        }
        let mut seen: BTreeSet<&str> = BTreeSet::new();
        let mut queue: VecDeque<&str> = VecDeque::new();
        seen.insert(name);
        queue.push_back(name);
        while let Some(cur) = queue.pop_front() {
            let Some(next) = self.calls.get(cur) else {
                continue;
            };
            for callee in next {
                if self.direct_guard.contains(callee) {
                    return true;
                }
                if seen.insert(callee) {
                    queue.push_back(callee);
                }
            }
        }
        false
    }

    /// Names of the functions this graph knows about.
    pub fn fn_names(&self) -> impl Iterator<Item = &str> {
        self.calls.keys().map(String::as_str)
    }
}

/// Token scan: for every `fn name … { body }`, records `name` when the
/// body contains `invariant ::` or `leime_invariant ::`. A nested fn's
/// guard also counts for its enclosing fn (same over-approximation L5
/// makes; the nested fn is itself a node too).
fn scan_direct_guards(toks: &[Tok], out: &mut BTreeSet<String>) {
    let is_punct = |t: &Tok, s: &str| t.kind == TokKind::Punct && t.text == s;
    let mut i = 0usize;
    while i < toks.len() {
        let is_fn = toks[i].kind == TokKind::Ident && toks[i].text == "fn";
        if !is_fn {
            i += 1;
            continue;
        }
        let Some(name_tok) = toks.get(i + 1).filter(|t| t.kind == TokKind::Ident) else {
            i += 1;
            continue;
        };
        // Find the body opener before a top-level `;` (trait decls have
        // no body).
        let mut j = i + 2;
        let mut body_start = None;
        while j < toks.len() {
            if is_punct(&toks[j], "{") {
                body_start = Some(j);
                break;
            }
            if is_punct(&toks[j], ";") {
                break;
            }
            j += 1;
        }
        let Some(start) = body_start else {
            i = j + 1;
            continue;
        };
        let mut depth = 0isize;
        let mut k = start;
        while k < toks.len() {
            if is_punct(&toks[k], "{") {
                depth += 1;
            } else if is_punct(&toks[k], "}") {
                depth -= 1;
                if depth == 0 {
                    break;
                }
            } else if toks[k].kind == TokKind::Ident
                && (toks[k].text == "invariant" || toks[k].text == "leime_invariant")
                && toks.get(k + 1).is_some_and(|t| is_punct(t, "::"))
            {
                out.insert(name_tok.text.clone());
            }
            k += 1;
        }
        // Continue from just inside the body so nested fns get scanned
        // as their own nodes too.
        i = start + 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_source;

    fn graph_of(src: &str) -> CallGraph {
        let mut g = CallGraph::default();
        g.add_file(&parse_source(src), src);
        g
    }

    #[test]
    fn direct_guard_is_base_case() {
        let g =
            graph_of("pub fn decide(x: f64) -> f64 { invariant::check_unit_interval(\"x\", x) }");
        assert!(g.is_direct_guard("decide"));
        assert!(g.reaches_guard("decide"));
    }

    #[test]
    fn guard_through_one_hop_and_two_hops() {
        let g = graph_of(
            "pub fn decide(x: f64) -> f64 { clamp(x) }\n\
             fn clamp(x: f64) -> f64 { checked(x) }\n\
             fn checked(x: f64) -> f64 { invariant::check_unit_interval(\"x\", x) }",
        );
        assert!(!g.is_direct_guard("decide"));
        assert!(g.reaches_guard("decide"));
        assert!(g.reaches_guard("clamp"));
    }

    #[test]
    fn unguarded_chain_does_not_reach() {
        let g = graph_of(
            "pub fn decide(x: f64) -> f64 { helper(x) }\nfn helper(x: f64) -> f64 { x * 0.5 }",
        );
        assert!(!g.reaches_guard("decide"));
    }

    #[test]
    fn cycles_terminate() {
        let g = graph_of("fn a() { b() }\nfn b() { a() }");
        assert!(!g.reaches_guard("a"));
    }

    #[test]
    fn method_call_edges_count() {
        let g = graph_of(
            "pub fn decide(s: &S) -> f64 { s.balance(0.5) }\n\
             impl S { fn balance(&self, x: f64) -> f64 { invariant::check_simplex(&[x]) } }",
        );
        assert!(g.reaches_guard("decide"));
    }

    #[test]
    fn cross_file_edges_resolve() {
        let a = "pub fn decide(x: f64) -> f64 { solver::balance_solve(x) }";
        let b = "pub fn balance_solve(x: f64) -> f64 { invariant::check_unit_interval(\"x\", x) }";
        let mut g = CallGraph::default();
        g.add_file(&parse_source(a), a);
        g.add_file(&parse_source(b), b);
        assert!(g.reaches_guard("decide"));
    }

    #[test]
    fn leime_invariant_crate_path_counts() {
        let g = graph_of("pub fn decide(x: f64) -> f64 { leime_invariant::check(x) }");
        assert!(g.reaches_guard("decide"));
    }

    #[test]
    fn guard_inside_macro_args_is_seen() {
        // The token scan (not the AST) carries this case.
        let g = graph_of("pub fn decide(x: f64) { record!(invariant::check(x)); }");
        assert!(g.reaches_guard("decide"));
    }
}
