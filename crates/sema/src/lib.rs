//! # leime-sema
//!
//! Semantic analysis for the LEIME workspace, layered over the
//! token-level scanner that `leime-lint` ships: a recursive-descent
//! [`parser`] over the shared [`lexer`], a simplified [`ast`], per-file
//! [`symbols`], an intra-crate [`callgraph`], the workspace crate
//! [`layering`] DAG, and the S1–S4 [`rules`] built on top of them.
//!
//! LEIME's guarantees are semantic, not textual: the Theorem-1 exit
//! search and the Eq. 16–20 per-slot controller must reach `invariant::`
//! guards through *every* call path (S1), byte-identical replay dies
//! the moment a solver or report path iterates a `HashMap` (S2), slot
//! arithmetic silently corrupts when seconds meet milliseconds (S3),
//! and the crate DAG keeps the whole thing auditable (S4).
//!
//! This crate is pure analysis — no product dependencies (layer 1,
//! below `leime-lint`, which re-exports it and owns waivers, reports
//! and the CLI). `leime-lint` merges S1–S3 findings into its per-file
//! waiver machinery; S4 findings live in manifests and are not
//! waivable.

pub mod ast;
pub mod audit;
pub mod callgraph;
pub mod flow;
pub mod layering;
pub mod lexer;
pub mod parser;
pub mod rules;
pub mod symbols;

pub use flow::analyze_workspace;
pub use layering::check_layering;
pub use rules::analyze_crate;

use serde::Serialize;
use std::collections::BTreeSet;

/// The semantic rule identifiers.
pub const SEMA_RULE_IDS: &[&str] = &[
    "S1", "S2", "S3", "S4", "S5", "S6", "S7", "S8", "S9", "S10", "S11", "S12",
];

/// One rule violation. This is the finding type for the whole lint
/// stack: `leime-lint` re-exports it and wraps it in waiver/report
/// machinery.
#[derive(Debug, Clone, Serialize, PartialEq, Eq)]
pub struct Finding {
    /// Rule identifier (`L1`–`L5`, `S1`–`S8`, or `W1`–`W3`).
    pub rule: String,
    /// Path of the offending file, relative to the scan root.
    pub path: String,
    /// 1-based line number.
    pub line: u32,
    /// Human-readable description.
    pub message: String,
}

/// Configuration for the semantic rules.
#[derive(Debug, Clone)]
pub struct SemaConfig {
    /// Rules to run; `None` runs all of them.
    pub enabled: Option<BTreeSet<String>>,
    /// Path substrings marking files subject to S1.
    pub guarded_path_markers: Vec<String>,
    /// Function names that must transitively reach `invariant::` (S1).
    pub guarded_fn_names: Vec<String>,
    /// Path substrings marking determinism-sensitive files (S2): solver,
    /// schedule, report and serialization paths.
    pub hash_path_markers: Vec<String>,
    /// Path substrings marking unit-suffix-checked numeric files (S3).
    pub unit_path_markers: Vec<String>,
    /// Path substrings marking hot-path files for the S6 allocation
    /// ratchet (counts compare against the pinned baseline only here).
    pub hot_path_markers: Vec<String>,
    /// Path substrings marking files whose RNG constructions S7 audits.
    pub rng_path_markers: Vec<String>,
    /// Hot-region roots: fn names whose transitive callees form the S6
    /// hot set (`SlottedSystem::run*`, `ServingSystem::run`, sweeps, …).
    pub hot_root_fns: Vec<String>,
    /// `leime-par` entry points as `(fn name, worker-closure arg
    /// index)` — the closure at that argument is a shard body (S5/S8).
    pub par_entry_args: Vec<(String, usize)>,
    /// Captured-name substrings exempt from S5's interior-mutability
    /// branch (the sanctioned driver-drained telemetry sinks).
    pub s5_exempt_names: Vec<String>,
    /// Function names allowed to hold float accumulations under S9:
    /// the ordered-reduction helpers and the approved bit-exact
    /// kernels. Everything else reachable from a byte-identical
    /// contract root must route its float reductions through one of
    /// these.
    pub s9_approved_fns: Vec<String>,
    /// Shared round bodies registered as FMA-free (S10): a
    /// `target_feature` fn may enable `fma` only when it funnels
    /// through one of these.
    pub fma_free_round_bodies: Vec<String>,
}

impl Default for SemaConfig {
    fn default() -> Self {
        SemaConfig {
            enabled: None,
            guarded_path_markers: vec![
                "crates/offload/src".to_string(),
                "crates/exitcfg/src".to_string(),
                "crates/chaos/src".to_string(),
                "crates/serving/src".to_string(),
                "crates/fleet/src".to_string(),
            ],
            guarded_fn_names: [
                "kkt_allocation",
                "kkt_allocation_with_floor",
                "step",
                "balance_solve",
                "golden_section_solve",
                "feasible_interval",
                "decide",
                "branch_and_bound",
                "exhaustive",
                "multi_tier_exits",
                "compile",
                "link_health",
                "edge_health",
                "degraded_decide",
                "transfer",
                "submit",
                "par_sweep",
                "admit",
                "steer_exits",
                "rebalance",
                "evacuate",
            ]
            .iter()
            .map(|s| (*s).to_string())
            .collect(),
            hash_path_markers: vec![
                "crates/offload/src".to_string(),
                "crates/exitcfg/src".to_string(),
                "crates/chaos/src".to_string(),
                "crates/telemetry/src".to_string(),
                "crates/simnet/src".to_string(),
                "crates/core/src".to_string(),
                "crates/par/src".to_string(),
                "crates/serving/src".to_string(),
                "crates/fleet/src".to_string(),
            ],
            unit_path_markers: vec![
                "crates/exitcfg/src".to_string(),
                "crates/offload/src".to_string(),
                "crates/simnet/src".to_string(),
            ],
            hot_path_markers: vec![
                "crates/core/src".to_string(),
                "crates/par/src".to_string(),
                "crates/serving/src".to_string(),
                "crates/exitcfg/src".to_string(),
                "crates/fleet/src".to_string(),
            ],
            rng_path_markers: vec![
                "crates/par/src".to_string(),
                "crates/core/src".to_string(),
                "crates/serving/src".to_string(),
                "crates/fleet/src".to_string(),
            ],
            hot_root_fns: [
                "run",
                "run_with_workers",
                "run_with_workers_epochs",
                "run_live",
                "run_live_with_registry",
                "run_slotted",
                "run_slotted_workers",
                "run_slotted_with_registry",
                "run_des",
                "run_des_with_registry",
                "par_sweep",
                "seq_sweep",
            ]
            .iter()
            .map(|s| (*s).to_string())
            .collect(),
            par_entry_args: vec![
                ("par_map_shards".to_string(), 2),
                ("run_rounds".to_string(), 3),
            ],
            s5_exempt_names: vec!["telemetry".to_string()],
            s9_approved_fns: [
                // ordered-reduction helpers (leime-par)
                "concat_shards",
                "merge_btree_maps",
                // approved bit-exact kernels (offload solver; DESIGN.md §14)
                "solve_lanes",
                "contract_rounds",
                "dpp",
                "golden_section_solve",
                "golden_section_solve_batch",
                // reviewed order-pinned sequential reductions (DESIGN.md
                // §15 ledger): single-threaded source-order loops whose
                // result never crosses a shard boundary unreduced.
                "run",
                "avg_env",
                "flops_prefix",
                "check_simplex",
                "validate",
                "softmax_rows",
                "norm",
                "poisson_draw",
                // fleet regional tier (leime-fleet): sequential
                // BTreeMap-ordered pressure/backlog sums at interval
                // boundaries, never crossing a shard boundary.
                "edge_pressures",
                "rebalance",
                "evacuate",
            ]
            .iter()
            .map(|s| (*s).to_string())
            .collect(),
            fma_free_round_bodies: Vec::new(),
        }
    }
}

impl SemaConfig {
    /// Whether rule `id` is enabled under this config.
    pub fn rule_on(&self, id: &str) -> bool {
        match &self.enabled {
            None => true,
            Some(set) => set.contains(id),
        }
    }
}

/// Whether `path` (normalized to `/` separators) contains any marker.
pub fn path_matches(path: &str, markers: &[String]) -> bool {
    let norm = path.replace('\\', "/");
    markers.iter().any(|m| norm.contains(m.as_str()))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rule_gate_respects_enabled_set() {
        let mut cfg = SemaConfig::default();
        assert!(cfg.rule_on("S1") && cfg.rule_on("S4"));
        cfg.enabled = Some(["S2".to_string()].into_iter().collect());
        assert!(cfg.rule_on("S2"));
        assert!(!cfg.rule_on("S1"));
    }

    #[test]
    fn default_markers_cover_the_guarded_crates() {
        let cfg = SemaConfig::default();
        assert!(path_matches(
            "crates/offload/src/solver.rs",
            &cfg.guarded_path_markers
        ));
        assert!(path_matches(
            "crates/telemetry/src/registry.rs",
            &cfg.hash_path_markers
        ));
        assert!(path_matches(
            "crates/simnet/src/link.rs",
            &cfg.unit_path_markers
        ));
        assert!(!path_matches(
            "crates/tensor/src/shape.rs",
            &cfg.hash_path_markers
        ));
    }
}
