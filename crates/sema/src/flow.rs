//! Interprocedural dataflow over the whole workspace: closure-capture
//! extraction, a merged flow graph with per-function *effect facts*
//! (allocation, blocking, RNG construction, float accumulation, lock
//! acquisition), hot-region reachability, and the S5–S12 rules built
//! on top.
//!
//! | Rule | Enforces |
//! | ---- | -------- |
//! | `S5` | no shared mutable capture across `leime-par` shard-closure boundaries |
//! | `S6` | hot-path allocation ratchet — counts only go down vs. a pinned baseline |
//! | `S7` | RNGs in `par`/`core`/`serving` derive via `leime_par::stream_seed` |
//! | `S8` | no blocking calls (locks, channel recv, sleeps) inside shard worker bodies |
//! | `S9` | float accumulations on byte-identical-contract paths go through approved ordered reductions |
//! | `S10` | `target_feature` fns funnel through a shared round body, stay FMA-safe, and are differentially tested |
//! | `S11` | every `unsafe` site is justified and ledgered (ratchet driven by `leime-lint`) |
//! | `S12` | no lock acquisition cycles among `Mutex`/`RwLock` paths reachable from shard bodies |
//!
//! Like the [`crate::callgraph`], the graph is *name-keyed*: same-named
//! functions merge into one node, so reachability over-approximates.
//! For S6 that direction is safe (a too-big hot set only makes the
//! pinned baseline larger, never produces a spurious regression); for
//! S5/S8 the shard-body discovery is syntactic (the closure argument of
//! a known `leime-par` entry point), which keeps the root set exact.
//!
//! Captures are computed against the *enclosing function's* bindings:
//! an identifier free in the closure body only counts as a capture when
//! the enclosing `fn` actually binds it (parameter, `let`, or loop
//! pattern). Names the parser cannot bind (match-arm patterns are
//! dropped from the AST) therefore never produce false captures.

use crate::ast::{walk_block, walk_exprs, Block, Expr, File, Item, Stmt};
use crate::audit::{self, TargetFeatureFn};
use crate::parser::parse_source;
use crate::{path_matches, Finding, SemaConfig};
use std::collections::{BTreeMap, BTreeSet, VecDeque};

// ----- closure captures ------------------------------------------------

/// How a closure uses a captured variable.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum CaptureMode {
    /// Read through a shared borrow.
    ByRef,
    /// Written to: assigned, `&mut`-borrowed, or receiver of a mutating
    /// method.
    ByRefMut,
    /// Moved into a `move` closure (and only read there).
    ByValue,
}

/// One captured variable of a closure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Capture {
    /// The captured identifier.
    pub name: String,
    /// How the closure uses it.
    pub mode: CaptureMode,
    /// 1-based line of the first use inside the closure body.
    pub line: u32,
}

/// Methods that mutate their receiver (a receiver capture becomes
/// [`CaptureMode::ByRefMut`]). Deliberately conservative: read-mostly
/// methods stay out so shared-read captures keep their `ByRef` mode.
const MUTATING_METHODS: &[&str] = &[
    "push",
    "push_str",
    "push_back",
    "push_front",
    "pop",
    "pop_back",
    "pop_front",
    "insert",
    "remove",
    "clear",
    "extend",
    "extend_from_slice",
    "truncate",
    "retain",
    "drain",
    "append",
    "resize",
    "fill",
    "sort",
    "sort_by",
    "sort_by_key",
    "sort_unstable",
    "sort_unstable_by",
    "split_off",
    "get_mut",
    "iter_mut",
    "values_mut",
    "take",
    "replace",
    "set",
];

/// Interior-mutability / synchronization methods: using one of these on
/// a *captured* variable inside a shard body is exactly the shared
/// mutable state S5 bans (`RefCell::borrow_mut`, `Mutex::lock`,
/// `Relaxed` atomics, channels).
const INTERIOR_MUT_METHODS: &[&str] = &[
    "lock",
    "borrow_mut",
    "fetch_add",
    "fetch_sub",
    "fetch_or",
    "fetch_and",
    "fetch_xor",
    "store",
    "swap",
    "compare_exchange",
    "compare_exchange_weak",
    "send",
    "recv",
];

/// Lock-acquisition methods (S12). `.lock()` covers `Mutex`;
/// `.read()` / `.write()` cover `RwLock` — matched only with zero
/// arguments so `io::Read` / `io::Write` calls stay out.
const LOCK_METHODS: &[&str] = &["lock", "read", "write"];

/// The dotted path a lock acquisition hangs off: `self.state.lock()`
/// → `self.state`, `GLOBAL.read()` → `GLOBAL`. Lock identity for the
/// S12 order graph.
fn lock_path(e: &Expr) -> Option<String> {
    match e {
        Expr::Path { segs, .. } => Some(segs.join("::")),
        Expr::Field { recv, name, .. } => Some(format!("{}.{name}", lock_path(recv)?)),
        Expr::Index { recv, .. } => Some(format!("{}[..]", lock_path(recv)?)),
        Expr::Unary { expr, .. } | Expr::Cast { expr, .. } => lock_path(expr),
        _ => None,
    }
}

/// Calls that block the calling thread (S8). Lock acquisition doubles
/// as interior mutability above; here the concern is stalling a shard.
/// `join` is deliberately absent: on a method position it is almost
/// always `slice::join`/`Path::join`, and shard workers never own a
/// `JoinHandle` (the pool does).
const BLOCKING_METHODS: &[&str] = &[
    "lock",
    "recv",
    "recv_timeout",
    "wait",
    "wait_timeout",
    "wait_while",
    "park",
];

/// The base identifier a borrow/field/index/cast chain hangs off:
/// `report.rows[i]` → `report`, `&mut telemetry` → `telemetry`.
fn chain_root(e: &Expr) -> Option<&str> {
    match e {
        Expr::Path { segs, .. } if segs.len() == 1 => segs.first().map(String::as_str),
        Expr::Field { recv, .. } | Expr::Index { recv, .. } => chain_root(recv),
        Expr::Unary { expr, .. } | Expr::Cast { expr, .. } => chain_root(expr),
        _ => None,
    }
}

/// Whether `name` reads as a local variable (not a type, enum variant,
/// screaming const, or bool literal).
fn is_var_like(name: &str) -> bool {
    if name == "true" || name == "false" {
        return false;
    }
    name.chars()
        .next()
        .is_some_and(|c| c.is_ascii_lowercase() || c == '_')
        || name == "self"
}

/// Every identifier the item's body binds: parameters, `let` names and
/// `for`-loop patterns at any depth, plus nested closure parameters.
/// `self` is always considered bound inside a method.
fn bound_names(item: &Item) -> BTreeSet<String> {
    let mut bound: BTreeSet<String> = item.params.iter().map(|(n, _)| n.clone()).collect();
    bound.insert("self".to_string());
    if let Some(body) = &item.body {
        walk_block(body, &mut |e| match e {
            Expr::For { pat, .. } => bound.extend(pat.iter().cloned()),
            Expr::Closure { params, .. } => bound.extend(params.iter().cloned()),
            _ => {}
        });
        collect_let_names(body, &mut bound);
    }
    bound
}

fn collect_let_names(block: &Block, out: &mut BTreeSet<String>) {
    for stmt in &block.stmts {
        if let Stmt::Let { name, .. } = stmt {
            if !name.is_empty() {
                out.insert(name.clone());
            }
        }
    }
    walk_block(block, &mut |e| {
        let blocks: Vec<&Block> = match e {
            Expr::For { body, .. } | Expr::While { body, .. } | Expr::BlockExpr(body) => {
                vec![body]
            }
            Expr::If { then, els, .. } => {
                let mut v = vec![then];
                if let Some(b) = els {
                    v.push(b);
                }
                v
            }
            _ => return,
        };
        for b in blocks {
            for stmt in &b.stmts {
                if let Stmt::Let { name, .. } = stmt {
                    if !name.is_empty() {
                        out.insert(name.clone());
                    }
                }
            }
        }
    });
}

/// Computes what a closure captures from its enclosing function.
///
/// `enclosing_bound` is the enclosing fn's binding set (see
/// [`bound_names`]); only names bound there can be captured. Names the
/// closure itself binds (its parameters, `let`s, loop patterns, nested
/// closure parameters) shadow the enclosing binding and are not
/// captures.
pub fn closure_captures(
    params: &[String],
    is_move: bool,
    body: &Expr,
    fallback_line: u32,
    enclosing_bound: &BTreeSet<String>,
) -> Vec<Capture> {
    // Names the closure body binds locally (flat over-approximation:
    // a binding anywhere in the body shadows everywhere — permissive,
    // so shadowed re-uses never surface as captures).
    let mut local: BTreeSet<String> = params.iter().cloned().collect();
    walk_exprs(body, &mut |e| match e {
        Expr::For { pat, .. } => local.extend(pat.iter().cloned()),
        Expr::Closure { params, .. } => local.extend(params.iter().cloned()),
        _ => {}
    });
    if let Expr::BlockExpr(b) = body {
        collect_let_names(b, &mut local);
    } else {
        // Non-block bodies can still own blocks (e.g. `|x| match …`).
        walk_exprs(body, &mut |e| {
            if let Expr::BlockExpr(b) = e {
                collect_let_names(b, &mut local);
            }
        });
    }

    let mut caps: BTreeMap<String, Capture> = BTreeMap::new();
    let mut use_of = |name: &str, mutating: bool, line: u32| {
        if local.contains(name) || !enclosing_bound.contains(name) || !is_var_like(name) {
            return;
        }
        let entry = caps.entry(name.to_string()).or_insert_with(|| Capture {
            name: name.to_string(),
            mode: if is_move {
                CaptureMode::ByValue
            } else {
                CaptureMode::ByRef
            },
            line,
        });
        if mutating {
            entry.mode = CaptureMode::ByRefMut;
        }
    };

    walk_exprs(body, &mut |e| match e {
        Expr::Path { segs, line } if segs.len() == 1 => {
            if let Some(name) = segs.first() {
                use_of(name, false, *line);
            }
        }
        Expr::Binary { op, lhs, line, .. }
            if matches!(
                op.as_str(),
                "=" | "+=" | "-=" | "*=" | "/=" | "%=" | "^=" | "&=" | "|=" | "<<=" | ">>="
            ) =>
        {
            if let Some(name) = chain_root(lhs) {
                use_of(name, true, *line);
            }
        }
        Expr::Unary { op, expr } if op == "&mut" => {
            if let Some(name) = chain_root(expr) {
                use_of(name, true, expr.line().unwrap_or(fallback_line));
            }
        }
        Expr::MethodCall {
            recv, method, line, ..
        } if MUTATING_METHODS.contains(&method.as_str()) => {
            if let Some(name) = chain_root(recv) {
                use_of(name, true, *line);
            }
        }
        _ => {}
    });
    caps.into_values().collect()
}

// ----- per-function effect facts ---------------------------------------

/// One RNG-construction site.
#[derive(Debug, Clone)]
pub struct RngCtor {
    /// 1-based line of the constructor call.
    pub line: u32,
    /// The constructor name (`seed_from_u64`, `from_entropy`, …).
    pub ctor: String,
    /// Whether the seed argument routes through `stream_seed`.
    pub derived: bool,
    /// Whether the seed argument is a bare literal.
    pub literal: bool,
}

/// Effect facts for one function *definition*.
#[derive(Debug, Clone, Default)]
pub struct FnFacts {
    /// Defining file (scan-relative path).
    pub path: String,
    /// 1-based line of the `fn` keyword.
    pub line: u32,
    /// Allocation sites: `(line, what)`.
    pub allocs: Vec<(u32, String)>,
    /// Blocking sites: `(line, what)`.
    pub blocking: Vec<(u32, String)>,
    /// RNG construction sites.
    pub rng: Vec<RngCtor>,
    /// Names this function calls (paths by last segment, methods by
    /// name) — the flow-graph edges.
    pub calls: BTreeSet<String>,
    /// Float-accumulation sites (S9): `(line, what)` for `fold`s with
    /// float seeds, float-typed `sum`/`product`, and loop-carried
    /// compound assignment onto float-typed names.
    pub float_accums: Vec<(u32, String)>,
    /// Lock-acquisition sites (S12): `(line, dotted lock path)` for
    /// zero-argument `.lock()` / `.read()` / `.write()` calls, in
    /// source order.
    pub locks: Vec<(u32, String)>,
}

/// RNG constructor names (S7 scope).
const RNG_CTORS: &[&str] = &[
    "seed_from_u64",
    "from_seed",
    "from_entropy",
    "from_rng",
    "thread_rng",
];

/// Container types whose `with_capacity` allocates.
const ALLOC_CONTAINERS: &[&str] = &["Vec", "String", "VecDeque", "BTreeMap", "BTreeSet", "Box"];

/// Always-allocating method calls.
const ALLOC_METHODS: &[&str] = &["clone", "to_string", "to_vec", "to_owned", "collect"];

/// Walks `e` collecting effect facts into `facts`, tracking loop depth
/// (allocation *inside a loop* is what churns; `vec!` and
/// `with_capacity` only count there).
fn collect_effects(e: &Expr, loop_depth: usize, facts: &mut FnFacts) {
    match e {
        Expr::Call { callee, args, line } => {
            if let Expr::Path { segs, .. } = callee.as_ref() {
                if let Some(last) = segs.last() {
                    facts.calls.insert(last.clone());
                    // Box::new and container with_capacity allocate.
                    if last == "new" && segs.iter().any(|s| s == "Box") {
                        facts.allocs.push((*line, "Box::new".to_string()));
                    }
                    if last == "with_capacity"
                        && loop_depth > 0
                        && segs.iter().any(|s| ALLOC_CONTAINERS.contains(&s.as_str()))
                    {
                        facts
                            .allocs
                            .push((*line, "with_capacity in loop".to_string()));
                    }
                    if last == "sleep" {
                        facts.blocking.push((*line, "thread::sleep".to_string()));
                    }
                    if RNG_CTORS.contains(&last.as_str()) {
                        facts.rng.push(rng_ctor(last, args, *line));
                    }
                }
            } else {
                collect_effects(callee, loop_depth, facts);
            }
            for a in args {
                collect_effects(a, loop_depth, facts);
            }
        }
        Expr::MethodCall {
            recv,
            method,
            args,
            line,
            ..
        } => {
            facts.calls.insert(method.clone());
            if ALLOC_METHODS.contains(&method.as_str()) {
                facts.allocs.push((*line, format!(".{method}()")));
            }
            if BLOCKING_METHODS.contains(&method.as_str()) {
                facts.blocking.push((*line, format!(".{method}()")));
            }
            // Zero-argument acquisition only: `.read(&mut buf)` /
            // `.write(buf)` are I/O, not `RwLock`.
            if args.is_empty() && LOCK_METHODS.contains(&method.as_str()) {
                if let Some(lock) = lock_path(recv) {
                    facts.locks.push((*line, lock));
                }
            }
            if RNG_CTORS.contains(&method.as_str()) {
                facts.rng.push(rng_ctor(method, args, *line));
            }
            collect_effects(recv, loop_depth, facts);
            for a in args {
                collect_effects(a, loop_depth, facts);
            }
        }
        Expr::MacroCall { segs, args, line } => {
            match segs.last().map(String::as_str) {
                Some("vec") if loop_depth > 0 => {
                    facts.allocs.push((*line, "vec! in loop".to_string()))
                }
                Some("format") => facts.allocs.push((*line, "format!".to_string())),
                _ => {}
            }
            for a in args {
                collect_effects(a, loop_depth, facts);
            }
        }
        Expr::For { iter, body, .. } => {
            collect_effects(iter, loop_depth, facts);
            collect_block_effects(body, loop_depth + 1, facts);
        }
        Expr::While { cond, body } => {
            if let Some(c) = cond {
                collect_effects(c, loop_depth, facts);
            }
            collect_block_effects(body, loop_depth + 1, facts);
        }
        Expr::If { cond, then, els } => {
            collect_effects(cond, loop_depth, facts);
            collect_block_effects(then, loop_depth, facts);
            if let Some(b) = els {
                collect_block_effects(b, loop_depth, facts);
            }
        }
        Expr::Match { scrutinee, arms } => {
            collect_effects(scrutinee, loop_depth, facts);
            for a in arms {
                collect_effects(a, loop_depth, facts);
            }
        }
        Expr::BlockExpr(b) => collect_block_effects(b, loop_depth, facts),
        Expr::Closure { body, .. } => collect_effects(body, loop_depth, facts),
        Expr::Field { recv, .. } => collect_effects(recv, loop_depth, facts),
        Expr::Index { recv, index } => {
            collect_effects(recv, loop_depth, facts);
            collect_effects(index, loop_depth, facts);
        }
        Expr::Binary { lhs, rhs, .. } => {
            collect_effects(lhs, loop_depth, facts);
            collect_effects(rhs, loop_depth, facts);
        }
        Expr::Unary { expr, .. } | Expr::Cast { expr, .. } => {
            collect_effects(expr, loop_depth, facts)
        }
        Expr::Tuple(xs) | Expr::Array(xs) => {
            for x in xs {
                collect_effects(x, loop_depth, facts);
            }
        }
        Expr::StructLit { fields, .. } => {
            for x in fields {
                collect_effects(x, loop_depth, facts);
            }
        }
        Expr::Jump { expr: Some(e) } => collect_effects(e, loop_depth, facts),
        Expr::Path { .. } | Expr::Lit { .. } | Expr::Jump { expr: None } | Expr::Opaque => {}
    }
}

fn collect_block_effects(block: &Block, loop_depth: usize, facts: &mut FnFacts) {
    for stmt in &block.stmts {
        match stmt {
            Stmt::Let { init, .. } => {
                if let Some(e) = init {
                    collect_effects(e, loop_depth, facts);
                }
            }
            Stmt::Expr(e) => collect_effects(e, loop_depth, facts),
            // Nested items are their own flow-graph nodes.
            Stmt::Item(_) => {}
        }
    }
}

fn rng_ctor(ctor: &str, args: &[Expr], line: u32) -> RngCtor {
    let mut derived = false;
    for a in args {
        walk_exprs(a, &mut |e| {
            if let Expr::Path { segs, .. } = e {
                if segs.iter().any(|s| s == "stream_seed") {
                    derived = true;
                }
            }
        });
    }
    let literal = args
        .first()
        .is_some_and(|a| matches!(strip_layers(a), Expr::Lit { .. }));
    RngCtor {
        line,
        ctor: ctor.to_string(),
        derived,
        literal,
    }
}

fn strip_layers(e: &Expr) -> &Expr {
    match e {
        Expr::Unary { expr, .. } | Expr::Cast { expr, .. } => strip_layers(expr),
        _ => e,
    }
}

// ----- float-accumulation facts (S9) -----------------------------------

fn is_float_ty(ty: &str) -> bool {
    ty.contains("f32") || ty.contains("f64")
}

fn is_float_lit(e: &Expr) -> bool {
    matches!(strip_layers(e), Expr::Lit { float: true, .. })
}

/// Names the item binds with a float type: `f32`/`f64`-annotated
/// parameters and `let`s (at any block depth), plus `let`s initialized
/// from a float literal. The S9 loop-carried-accumulation check only
/// fires on these, so integer counters never surface.
fn float_bound_names(item: &Item) -> BTreeSet<String> {
    let mut out: BTreeSet<String> = item
        .params
        .iter()
        .filter(|(_, ty)| is_float_ty(ty))
        .map(|(n, _)| n.clone())
        .collect();
    if let Some(body) = &item.body {
        collect_float_lets(body, &mut out);
        walk_block(body, &mut |e| {
            let blocks: Vec<&Block> = match e {
                Expr::For { body, .. } | Expr::While { body, .. } | Expr::BlockExpr(body) => {
                    vec![body]
                }
                Expr::If { then, els, .. } => {
                    let mut v = vec![then];
                    if let Some(b) = els {
                        v.push(b);
                    }
                    v
                }
                _ => return,
            };
            for b in blocks {
                collect_float_lets(b, &mut out);
            }
        });
    }
    out
}

fn collect_float_lets(block: &Block, out: &mut BTreeSet<String>) {
    for stmt in &block.stmts {
        if let Stmt::Let { name, ty, init, .. } = stmt {
            if name.is_empty() {
                continue;
            }
            let float_ty = ty.as_deref().is_some_and(is_float_ty);
            let float_init = init.as_ref().is_some_and(is_float_lit);
            if float_ty || float_init {
                out.insert(name.clone());
            }
        }
    }
}

/// Calls `f` on every expression with its enclosing loop depth.
fn walk_loop_depth(e: &Expr, depth: usize, f: &mut impl FnMut(&Expr, usize)) {
    f(e, depth);
    match e {
        Expr::For { iter, body, .. } => {
            walk_loop_depth(iter, depth, f);
            walk_block_loop_depth(body, depth + 1, f);
        }
        Expr::While { cond, body } => {
            if let Some(c) = cond {
                walk_loop_depth(c, depth, f);
            }
            walk_block_loop_depth(body, depth + 1, f);
        }
        Expr::If { cond, then, els } => {
            walk_loop_depth(cond, depth, f);
            walk_block_loop_depth(then, depth, f);
            if let Some(b) = els {
                walk_block_loop_depth(b, depth, f);
            }
        }
        Expr::Match { scrutinee, arms } => {
            walk_loop_depth(scrutinee, depth, f);
            for a in arms {
                walk_loop_depth(a, depth, f);
            }
        }
        Expr::Call { callee, args, .. } => {
            walk_loop_depth(callee, depth, f);
            for a in args {
                walk_loop_depth(a, depth, f);
            }
        }
        Expr::MethodCall { recv, args, .. } => {
            walk_loop_depth(recv, depth, f);
            for a in args {
                walk_loop_depth(a, depth, f);
            }
        }
        Expr::Binary { lhs, rhs, .. } => {
            walk_loop_depth(lhs, depth, f);
            walk_loop_depth(rhs, depth, f);
        }
        Expr::Field { recv, .. } => walk_loop_depth(recv, depth, f),
        Expr::Index { recv, index } => {
            walk_loop_depth(recv, depth, f);
            walk_loop_depth(index, depth, f);
        }
        Expr::Unary { expr, .. } | Expr::Cast { expr, .. } | Expr::Closure { body: expr, .. } => {
            walk_loop_depth(expr, depth, f)
        }
        Expr::BlockExpr(b) => walk_block_loop_depth(b, depth, f),
        Expr::Tuple(xs) | Expr::Array(xs) => {
            for x in xs {
                walk_loop_depth(x, depth, f);
            }
        }
        Expr::StructLit { fields, .. } => {
            for x in fields {
                walk_loop_depth(x, depth, f);
            }
        }
        Expr::MacroCall { args, .. } => {
            for x in args {
                walk_loop_depth(x, depth, f);
            }
        }
        Expr::Jump { expr: Some(e) } => walk_loop_depth(e, depth, f),
        Expr::Path { .. } | Expr::Lit { .. } | Expr::Jump { expr: None } | Expr::Opaque => {}
    }
}

fn walk_block_loop_depth(block: &Block, depth: usize, f: &mut impl FnMut(&Expr, usize)) {
    for stmt in &block.stmts {
        match stmt {
            Stmt::Let { init, .. } => {
                if let Some(e) = init {
                    walk_loop_depth(e, depth, f);
                }
            }
            Stmt::Expr(e) => walk_loop_depth(e, depth, f),
            // Nested items are their own flow-graph nodes.
            Stmt::Item(_) => {}
        }
    }
}

/// Collects the item's float-accumulation sites into `facts`:
/// `.fold(seed, …)` with a float seed, `.sum::<f32|f64>()` /
/// `.product::<…>()`, and loop-carried `+=`/`-=`/`*=`/`/=` onto
/// float-bound names.
fn collect_float_accums(item: &Item, facts: &mut FnFacts) {
    let Some(body) = &item.body else { return };
    let floats = float_bound_names(item);
    let mut visit = |e: &Expr, depth: usize| match e {
        Expr::MethodCall {
            method,
            turbofish,
            args,
            line,
            ..
        } => {
            if method == "fold" {
                let float_seed = args.first().is_some_and(|a| {
                    is_float_lit(a) || chain_root(a).is_some_and(|r| floats.contains(r))
                });
                if float_seed {
                    facts
                        .float_accums
                        .push((*line, "`.fold(…)` seeded with a float".to_string()));
                }
            }
            if (method == "sum" || method == "product")
                && turbofish.as_deref().is_some_and(is_float_ty)
            {
                facts
                    .float_accums
                    .push((*line, format!("float `.{method}()` reduction")));
            }
        }
        Expr::Binary { op, lhs, line, .. }
            if depth > 0 && matches!(op.as_str(), "+=" | "-=" | "*=" | "/=") =>
        {
            if let Some(root) = chain_root(lhs) {
                if floats.contains(root) {
                    facts
                        .float_accums
                        .push((*line, format!("loop-carried `{root} {op} …`")));
                }
            }
        }
        _ => {}
    };
    walk_block_loop_depth(body, 0, &mut visit);
    facts.float_accums.sort();
    facts.float_accums.dedup();
}

// ----- shard-body discovery --------------------------------------------

/// A closure passed as the worker argument of a `leime-par` entry point.
#[derive(Debug, Clone)]
struct ShardBody {
    /// Defining file.
    path: String,
    /// Entry-point name (`par_map_shards` / `run_rounds`).
    entry: String,
    /// Name of the enclosing fn (an S9 byte-identical-contract root).
    encl_fn: String,
    /// What the closure captures from its enclosing fn.
    captures: Vec<Capture>,
    /// Interior-mutability uses of captured names inside the body:
    /// `(name, method, line)`.
    interior_mut: Vec<(String, String, u32)>,
    /// Blocking sites directly inside the body: `(line, what)`.
    blocking: Vec<(u32, String)>,
    /// Lock acquisitions directly inside the body (S12 graph roots).
    locks: Vec<(u32, String)>,
    /// Names the body calls — roots for the S8/S12 reachability walks.
    calls: BTreeSet<String>,
}

/// Finds the `let name = |…| …;` initializer for `name` in `item`'s
/// body, recursing through nested blocks (first match wins).
fn let_bound_closure<'a>(item: &'a Item, name: &str) -> Option<&'a Expr> {
    find_closure_let(item.body.as_ref()?, name)
}

fn find_closure_let<'a>(block: &'a Block, name: &str) -> Option<&'a Expr> {
    for stmt in &block.stmts {
        let e = match stmt {
            Stmt::Let {
                name: n,
                init: Some(init),
                ..
            } => {
                if n == name && matches!(init, Expr::Closure { .. }) {
                    return Some(init);
                }
                init
            }
            Stmt::Expr(e) => e,
            Stmt::Item(_) | Stmt::Let { init: None, .. } => continue,
        };
        if let Some(found) = find_closure_let_in_expr(e, name) {
            return Some(found);
        }
    }
    None
}

fn find_closure_let_in_expr<'a>(e: &'a Expr, name: &str) -> Option<&'a Expr> {
    match e {
        Expr::BlockExpr(b) | Expr::For { body: b, .. } | Expr::While { body: b, .. } => {
            find_closure_let(b, name)
        }
        Expr::If { then, els, .. } => find_closure_let(then, name)
            .or_else(|| els.as_ref().and_then(|b| find_closure_let(b, name))),
        _ => None,
    }
}

/// Extracts every shard body in `item` (one per `leime-par` entry-point
/// call whose worker argument resolves to a closure).
fn shard_bodies_of(path: &str, item: &Item, cfg: &SemaConfig, out: &mut Vec<ShardBody>) {
    let Some(body) = &item.body else { return };
    let enclosing = bound_names(item);
    let mut worker_args: Vec<(String, u32, Expr)> = Vec::new();
    walk_block(body, &mut |e| {
        let Expr::Call { callee, args, line } = e else {
            return;
        };
        let Expr::Path { segs, .. } = callee.as_ref() else {
            return;
        };
        let Some(last) = segs.last() else { return };
        for (entry, idx) in &cfg.par_entry_args {
            if last == entry {
                if let Some(arg) = args.get(*idx) {
                    worker_args.push((entry.clone(), *line, arg.clone()));
                }
            }
        }
    });
    for (entry, call_line, arg) in worker_args {
        let resolved: Option<(Vec<String>, bool, &Expr, u32)> = match &arg {
            Expr::Closure {
                params,
                is_move,
                body,
                line,
            } => Some((params.clone(), *is_move, body.as_ref(), *line)),
            Expr::Path { segs, .. } if segs.len() == 1 => segs
                .first()
                .and_then(|n| let_bound_closure(item, n))
                .and_then(|init| match init {
                    Expr::Closure {
                        params,
                        is_move,
                        body,
                        line,
                    } => Some((params.clone(), *is_move, body.as_ref(), *line)),
                    _ => None,
                }),
            _ => None,
        };
        let Some((params, is_move, cbody, line)) = resolved else {
            continue;
        };
        let captures = closure_captures(&params, is_move, cbody, call_line, &enclosing);
        let cap_names: BTreeSet<&str> = captures.iter().map(|c| c.name.as_str()).collect();
        let mut interior_mut = Vec::new();
        let mut facts = FnFacts {
            line,
            ..FnFacts::default()
        };
        collect_effects(cbody, 0, &mut facts);
        walk_exprs(cbody, &mut |e| {
            if let Expr::MethodCall {
                recv, method, line, ..
            } = e
            {
                if INTERIOR_MUT_METHODS.contains(&method.as_str()) {
                    if let Some(root) = chain_root(recv) {
                        if cap_names.contains(root) {
                            interior_mut.push((root.to_string(), method.clone(), *line));
                        }
                    }
                }
            }
        });
        out.push(ShardBody {
            path: path.to_string(),
            entry,
            encl_fn: item.name.clone(),
            captures,
            interior_mut,
            blocking: facts.blocking,
            locks: facts.locks,
            calls: facts.calls,
        });
    }
}

// ----- the workspace flow graph ----------------------------------------

/// The merged workspace flow graph plus the discovered shard bodies.
#[derive(Debug, Default)]
pub struct FlowAnalysis {
    /// fn name → one [`FnFacts`] per definition (same-named fns merge
    /// into one node for reachability, but keep separate facts so S6
    /// counts stay per-definition).
    defs: BTreeMap<String, Vec<FnFacts>>,
    /// Shard-worker closures found at `leime-par` entry-point calls.
    shard_bodies: Vec<ShardBody>,
    /// `#[target_feature]` fns per file: `(path, fact)` (S10).
    tf_fns: Vec<(String, TargetFeatureFn)>,
}

impl FlowAnalysis {
    /// Builds the analysis over `(relative-path, source)` pairs spanning
    /// the whole scan (all crates together — flow edges cross crates).
    pub fn build(files: &[(String, String)], cfg: &SemaConfig) -> Self {
        let mut out = FlowAnalysis::default();
        for (path, src) in files {
            let file: File = parse_source(src);
            crate::rules::for_each_nontest_fn(&file.items, &mut |item| {
                if item.body.is_none() {
                    return;
                }
                let mut facts = FnFacts {
                    path: path.clone(),
                    line: item.line,
                    ..FnFacts::default()
                };
                if let Some(b) = &item.body {
                    collect_block_effects(b, 0, &mut facts);
                }
                collect_float_accums(item, &mut facts);
                out.defs.entry(item.name.clone()).or_default().push(facts);
                shard_bodies_of(path, item, cfg, &mut out.shard_bodies);
            });
            if src.contains("target_feature") {
                for tf in audit::target_feature_fns(src) {
                    out.tf_fns.push((path.clone(), tf));
                }
            }
        }
        out
    }

    /// The `#[target_feature]` fns found during the build, as
    /// `(path, fact)` pairs — `leime-lint` checks them against the
    /// differential-test registry file.
    pub fn target_feature_fns(&self) -> &[(String, TargetFeatureFn)] {
        &self.tf_fns
    }

    /// Names transitively reachable from `roots` through call edges
    /// (restricted to names this graph defines; library method names
    /// fall off the walk).
    pub fn reachable(&self, roots: impl IntoIterator<Item = String>) -> BTreeSet<String> {
        let mut seen: BTreeSet<String> = BTreeSet::new();
        let mut queue: VecDeque<String> = VecDeque::new();
        for r in roots {
            if self.defs.contains_key(&r) && seen.insert(r.clone()) {
                queue.push_back(r);
            }
        }
        while let Some(cur) = queue.pop_front() {
            let Some(defs) = self.defs.get(&cur) else {
                continue;
            };
            for def in defs {
                for callee in &def.calls {
                    if self.defs.contains_key(callee) && !seen.contains(callee) {
                        seen.insert(callee.clone());
                        queue.push_back(callee.clone());
                    }
                }
            }
        }
        seen
    }

    /// The hot set: functions transitively reachable from the
    /// configured hot roots plus every shard body's callees.
    fn hot_set(&self, cfg: &SemaConfig) -> BTreeSet<String> {
        let mut roots: Vec<String> = cfg.hot_root_fns.clone();
        for sb in &self.shard_bodies {
            roots.extend(sb.calls.iter().cloned());
        }
        self.reachable(roots)
    }

    /// S6 raw material: per-definition allocation counts over the hot
    /// set, keyed `"<path>::<fn>"`, restricted to `hot_path_markers`.
    pub fn hot_alloc_counts(&self, cfg: &SemaConfig) -> BTreeMap<String, HotAlloc> {
        let hot = self.hot_set(cfg);
        let mut out = BTreeMap::new();
        for (name, defs) in &self.defs {
            if !hot.contains(name) {
                continue;
            }
            for def in defs {
                if !path_matches(&def.path, &cfg.hot_path_markers) {
                    continue;
                }
                out.insert(
                    format!("{}::{}", def.path, name),
                    HotAlloc {
                        path: def.path.clone(),
                        line: def.line,
                        count: def.allocs.len(),
                    },
                );
            }
        }
        out
    }

    /// Runs S5, S7–S10 and S12 and returns their findings, sorted by
    /// path, line and rule. (S6 and the S10 registry / S11 ledger
    /// checks are driven by `leime-lint`, which owns the pinned files
    /// this crate must not read.)
    pub fn findings(&self, cfg: &SemaConfig) -> Vec<Finding> {
        let mut out = Vec::new();
        if cfg.rule_on("S5") {
            self.scan_s5(cfg, &mut out);
        }
        if cfg.rule_on("S7") {
            self.scan_s7(cfg, &mut out);
        }
        if cfg.rule_on("S8") {
            self.scan_s8(&mut out);
        }
        if cfg.rule_on("S9") {
            self.scan_s9(cfg, &mut out);
        }
        if cfg.rule_on("S10") {
            self.scan_s10(cfg, &mut out);
        }
        if cfg.rule_on("S12") {
            self.scan_s12(&mut out);
        }
        out.sort_by(|a, b| {
            (&a.path, a.line, &a.rule, &a.message).cmp(&(&b.path, b.line, &b.rule, &b.message))
        });
        out.dedup();
        out
    }

    // S5: shared mutable captures across the shard boundary.
    fn scan_s5(&self, cfg: &SemaConfig, out: &mut Vec<Finding>) {
        for sb in &self.shard_bodies {
            for cap in &sb.captures {
                if cap.mode == CaptureMode::ByRefMut {
                    out.push(Finding {
                        rule: "S5".to_string(),
                        path: sb.path.clone(),
                        line: cap.line,
                        message: format!(
                            "`{}` shard body mutably captures `{}` — shared mutation across \
                             the shard boundary breaks the byte-identical contract; route it \
                             through shard-owned state and the ordered reduction (DESIGN.md §11)",
                            sb.entry, cap.name
                        ),
                    });
                }
            }
            for (name, method, line) in &sb.interior_mut {
                if cfg
                    .s5_exempt_names
                    .iter()
                    .any(|m| name.contains(m.as_str()))
                {
                    continue;
                }
                out.push(Finding {
                    rule: "S5".to_string(),
                    path: sb.path.clone(),
                    line: *line,
                    message: format!(
                        "`{}` shard body mutates captured `{name}` through `.{method}()` — \
                         interior mutability across the shard boundary breaks the \
                         byte-identical contract (DESIGN.md §11)",
                        sb.entry
                    ),
                });
            }
        }
    }

    // S7: RNG-stream hygiene in the marked crates.
    fn scan_s7(&self, cfg: &SemaConfig, out: &mut Vec<Finding>) {
        for (name, defs) in &self.defs {
            for def in defs {
                if !path_matches(&def.path, &cfg.rng_path_markers) {
                    continue;
                }
                for rng in &def.rng {
                    if rng.derived {
                        continue;
                    }
                    let detail = if rng.literal {
                        "a literal seed"
                    } else if matches!(rng.ctor.as_str(), "from_entropy" | "thread_rng") {
                        "ambient entropy"
                    } else {
                        "an ad-hoc seed"
                    };
                    out.push(Finding {
                        rule: "S7".to_string(),
                        path: def.path.clone(),
                        line: rng.line,
                        message: format!(
                            "`fn {name}` constructs an RNG via `{}` from {detail} — derive \
                             every stream with `leime_par::stream_seed` so replay and \
                             sharding stay byte-identical",
                            rng.ctor
                        ),
                    });
                }
            }
        }
    }

    // S8: blocking calls inside (or reachable from) shard bodies.
    fn scan_s8(&self, out: &mut Vec<Finding>) {
        for sb in &self.shard_bodies {
            for (line, what) in &sb.blocking {
                out.push(Finding {
                    rule: "S8".to_string(),
                    path: sb.path.clone(),
                    line: *line,
                    message: format!(
                        "`{}` shard body blocks on `{what}` — shard workers must stay \
                         lock- and wait-free (the pool owns all synchronization)",
                        sb.entry
                    ),
                });
            }
            for callee in self.reachable(sb.calls.iter().cloned()) {
                let Some(defs) = self.defs.get(&callee) else {
                    continue;
                };
                for def in defs {
                    for (line, what) in &def.blocking {
                        out.push(Finding {
                            rule: "S8".to_string(),
                            path: def.path.clone(),
                            line: *line,
                            message: format!(
                                "`fn {callee}` blocks on `{what}` and is reachable from a \
                                 `{}` shard body — shard workers must stay lock- and \
                                 wait-free",
                                sb.entry
                            ),
                        });
                    }
                }
            }
        }
    }

    // S9: float accumulations on byte-identical-contract paths.
    fn scan_s9(&self, cfg: &SemaConfig, out: &mut Vec<Finding>) {
        // Contract roots: the hot roots and every shard body — plus,
        // transitively, everything they call ([`Self::hot_set`]). The
        // fns *enclosing* a shard body are roots too: their reduction
        // sites merge shard outputs (`concat_shards` inputs).
        let mut scope = self.hot_set(cfg);
        for sb in &self.shard_bodies {
            scope.insert(sb.encl_fn.clone());
        }
        for (name, defs) in &self.defs {
            if !scope.contains(name) || cfg.s9_approved_fns.iter().any(|a| a == name) {
                continue;
            }
            for def in defs {
                for (line, what) in &def.float_accums {
                    out.push(Finding {
                        rule: "S9".to_string(),
                        path: def.path.clone(),
                        line: *line,
                        message: format!(
                            "`fn {name}` has a {what} on a byte-identical-contract path — \
                             float reduction order must be pinned: route it through an \
                             ordered helper (`concat_shards`, `merge_btree_maps`) or an \
                             approved kernel (DESIGN.md §15)"
                        ),
                    });
                }
            }
        }
    }

    // S10: target_feature fns must share a round body with the scalar
    // path and must not enable contraction-prone features unless that
    // body is registered FMA-free.
    fn scan_s10(&self, cfg: &SemaConfig, out: &mut Vec<Finding>) {
        let tf_names: BTreeSet<&str> = self.tf_fns.iter().map(|(_, tf)| tf.name.as_str()).collect();
        for (path, tf) in &self.tf_fns {
            // Callees of the target_feature fn that the workspace
            // defines (library method names fall out).
            let mut defined_callees: BTreeSet<&str> = BTreeSet::new();
            if let Some(defs) = self.defs.get(&tf.name) {
                for def in defs {
                    for c in &def.calls {
                        if self.defs.contains_key(c) && !tf_names.contains(c.as_str()) {
                            defined_callees.insert(c.as_str());
                        }
                    }
                }
            }
            // A shared round body: a callee some non-target_feature fn
            // also calls — the single code path both SIMD and scalar
            // dispatch funnel through (DESIGN.md §14).
            let shared: Vec<&str> = defined_callees
                .iter()
                .copied()
                .filter(|c| {
                    self.defs.iter().any(|(name, defs)| {
                        name != &tf.name
                            && !tf_names.contains(name.as_str())
                            && defs.iter().any(|d| d.calls.contains(*c))
                    })
                })
                .collect();
            if shared.is_empty() {
                out.push(Finding {
                    rule: "S10".to_string(),
                    path: path.clone(),
                    line: tf.line,
                    message: format!(
                        "`fn {}` is `#[target_feature]` but does not funnel through a \
                         round body shared with the scalar path — SIMD and scalar must \
                         execute one body or bit-identity rests on luck (DESIGN.md §11)",
                        tf.name
                    ),
                });
            }
            let contraction: Vec<&str> = tf
                .features
                .iter()
                .filter(|f| f.as_str() == "fma")
                .map(String::as_str)
                .collect();
            if !contraction.is_empty() {
                let registered = shared
                    .iter()
                    .any(|c| cfg.fma_free_round_bodies.iter().any(|r| r == c));
                if !registered {
                    out.push(Finding {
                        rule: "S10".to_string(),
                        path: path.clone(),
                        line: tf.line,
                        message: format!(
                            "`fn {}` enables contraction-prone `fma` — the compiler may \
                             fuse mul+add into one rounding, diverging from the scalar \
                             path; drop the feature or register the shared round body \
                             as FMA-free (`fma_free_round_bodies`)",
                            tf.name
                        ),
                    });
                }
            }
        }
    }

    // S12: lock acquisition cycles reachable from shard bodies.
    fn scan_s12(&self, out: &mut Vec<Finding>) {
        // One lock-order graph over everything shard bodies reach:
        // direct body acquisitions plus those of every reachable fn.
        // Edges over-approximate: within one fn, earlier-in-source
        // acquisitions point at later ones; a fn holding any lock
        // points at every lock its defined callees transitively
        // acquire (guards are assumed held across calls).
        // (path, in-order lock acquisitions, callees) per fn in scope.
        type LockScope = (String, Vec<(u32, String)>, BTreeSet<String>);
        let mut edges: BTreeMap<String, BTreeSet<String>> = BTreeMap::new();
        let mut site: BTreeMap<String, (String, u32)> = BTreeMap::new();
        let mut ordered: Vec<LockScope> = Vec::new();
        for sb in &self.shard_bodies {
            ordered.push((sb.path.clone(), sb.locks.clone(), sb.calls.clone()));
        }
        let reach: BTreeSet<String> = self.reachable(
            self.shard_bodies
                .iter()
                .flat_map(|sb| sb.calls.iter().cloned()),
        );
        for name in &reach {
            if let Some(defs) = self.defs.get(name) {
                for def in defs {
                    ordered.push((def.path.clone(), def.locks.clone(), def.calls.clone()));
                }
            }
        }
        // Locks transitively acquired by each defined fn in scope.
        let lock_closure = |root: &str| -> BTreeSet<String> {
            let mut acc = BTreeSet::new();
            for name in self.reachable([root.to_string()]) {
                if let Some(defs) = self.defs.get(&name) {
                    for def in defs {
                        acc.extend(def.locks.iter().map(|(_, l)| l.clone()));
                    }
                }
            }
            acc
        };
        for (path, locks, calls) in &ordered {
            for (line, lock) in locks {
                // Anchor each lock at its earliest acquisition site.
                let entry = site
                    .entry(lock.clone())
                    .or_insert_with(|| (path.clone(), *line));
                if (path.as_str(), *line) < (entry.0.as_str(), entry.1) {
                    *entry = (path.clone(), *line);
                }
            }
            for (i, (_, a)) in locks.iter().enumerate() {
                for (_, b) in locks.iter().skip(i + 1) {
                    if a != b {
                        edges.entry(a.clone()).or_default().insert(b.clone());
                    }
                }
                for callee in calls {
                    if !self.defs.contains_key(callee) {
                        continue;
                    }
                    for b in lock_closure(callee) {
                        if *a != b {
                            edges.entry(a.clone()).or_default().insert(b);
                        }
                    }
                }
            }
        }
        for cycle in find_cycles(&edges) {
            let Some((path, line)) = cycle.first().and_then(|l| site.get(l)) else {
                continue;
            };
            out.push(Finding {
                rule: "S12".to_string(),
                path: path.clone(),
                line: *line,
                message: format!(
                    "lock acquisition cycle reachable from a shard body: {} — \
                     concurrent shards can deadlock; impose one global lock order \
                     or drop a guard before the next acquisition",
                    cycle.join(" \u{2192} ")
                ),
            });
        }
    }
}

/// Elementary cycles of the lock-order graph, one representative per
/// cycle, each rotated so its lexicographically smallest lock comes
/// first (deterministic output) and closed with the starting lock
/// (`a → b → a`).
fn find_cycles(edges: &BTreeMap<String, BTreeSet<String>>) -> Vec<Vec<String>> {
    let mut cycles: BTreeSet<Vec<String>> = BTreeSet::new();
    for start in edges.keys() {
        // Bounded DFS from each node; paths are short (lock chains).
        let mut stack: Vec<(String, Vec<String>)> = vec![(start.clone(), vec![start.clone()])];
        while let Some((node, path)) = stack.pop() {
            let Some(nexts) = edges.get(&node) else {
                continue;
            };
            for next in nexts {
                if next == start {
                    let mut cycle = path.clone();
                    // Rotate the smallest lock to the front.
                    if let Some(min_idx) = cycle
                        .iter()
                        .enumerate()
                        .min_by_key(|(_, l)| l.as_str())
                        .map(|(i, _)| i)
                    {
                        cycle.rotate_left(min_idx);
                    }
                    let mut closed = cycle.clone();
                    closed.push(closed[0].clone());
                    cycles.insert(closed);
                } else if !path.contains(next) && path.len() < 16 {
                    let mut p = path.clone();
                    p.push(next.clone());
                    stack.push((next.clone(), p));
                }
            }
        }
    }
    cycles.into_iter().collect()
}

/// One S6 hot-allocation record (see
/// [`FlowAnalysis::hot_alloc_counts`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HotAlloc {
    /// Defining file.
    pub path: String,
    /// 1-based line of the `fn`.
    pub line: u32,
    /// Number of allocation sites in the definition.
    pub count: usize,
}

/// Convenience front door: builds the analysis and returns the
/// S5/S7–S10/S12 findings for the whole scanned file set.
pub fn analyze_workspace(files: &[(String, String)], cfg: &SemaConfig) -> Vec<Finding> {
    if !["S5", "S7", "S8", "S9", "S10", "S12"]
        .iter()
        .any(|r| cfg.rule_on(r))
    {
        return Vec::new();
    }
    FlowAnalysis::build(files, cfg).findings(cfg)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> SemaConfig {
        SemaConfig {
            hot_path_markers: vec!["src".to_string()],
            rng_path_markers: vec!["src".to_string()],
            hot_root_fns: vec!["hot_entry".to_string()],
            ..SemaConfig::default()
        }
    }

    fn analyze(src: &str) -> Vec<Finding> {
        analyze_workspace(
            &[("crates/x/src/lib.rs".to_string(), src.to_string())],
            &cfg(),
        )
    }

    fn rules_of(found: &[Finding]) -> Vec<&str> {
        found.iter().map(|f| f.rule.as_str()).collect()
    }

    fn captures(src: &str) -> Vec<Capture> {
        // `src` must contain exactly one fn whose body ends in a closure
        // expression statement.
        let file = parse_source(src);
        let mut result = Vec::new();
        crate::rules::for_each_nontest_fn(&file.items, &mut |item| {
            let bound = bound_names(item);
            if let Some(b) = &item.body {
                walk_block(b, &mut |e| {
                    if let Expr::Closure {
                        params,
                        is_move,
                        body,
                        line,
                    } = e
                    {
                        result = closure_captures(params, *is_move, body, *line, &bound);
                    }
                });
            }
        });
        result
    }

    #[test]
    fn capture_modes_ref_refmut_value() {
        let caps = captures(
            "fn f() { let a = 1; let mut b = 0; let v = vec![]; \
             let c = |x: u32| { b += a; v.push(x); }; c(1); }",
        );
        let modes: Vec<(&str, CaptureMode)> =
            caps.iter().map(|c| (c.name.as_str(), c.mode)).collect();
        assert_eq!(
            modes,
            vec![
                ("a", CaptureMode::ByRef),
                ("b", CaptureMode::ByRefMut),
                ("v", CaptureMode::ByRefMut)
            ]
        );
    }

    #[test]
    fn move_closure_captures_by_value() {
        let caps = captures("fn f() { let a = 1; let c = move || a + 1; c(); }");
        assert_eq!(caps.len(), 1);
        assert_eq!(caps[0].mode, CaptureMode::ByValue);
    }

    #[test]
    fn closure_params_and_locals_are_not_captures() {
        let caps =
            captures("fn f(items: Vec<u32>) { let c = |i, x| { let y = i + x; y }; c(0, 1); }");
        assert!(caps.is_empty(), "{caps:?}");
    }

    #[test]
    fn names_unbound_in_enclosing_fn_are_not_captures() {
        // `helper` is a free fn, `CONST` a const, `other` bound nowhere.
        let caps = captures("fn f() { let a = 1; let c = || helper(a, CONST, other); c(); }");
        assert_eq!(caps.len(), 1);
        assert_eq!(caps[0].name, "a");
    }

    #[test]
    fn field_chain_mutation_marks_the_root() {
        let caps =
            captures("fn f() { let mut report = R::new(); let c = || report.rows.push(1); c(); }");
        assert_eq!(caps.len(), 1);
        assert_eq!(caps[0].mode, CaptureMode::ByRefMut);
    }

    #[test]
    fn s5_flags_mutable_capture_in_shard_body() {
        let found = analyze(
            "fn run(items: &[u32], workers: W) { let mut total = 0; \
             let _ = par_map_shards(items, workers, |_i, x| { total += x; x + 1 }); }",
        );
        assert_eq!(rules_of(&found), vec!["S5"]);
        assert!(found[0].message.contains("total"), "{}", found[0].message);
    }

    #[test]
    fn s5_flags_interior_mutability_on_capture() {
        let found = analyze(
            "fn run(items: &[u32], workers: W) { let shared = Mutex::new(0); \
             let _ = par_map_shards(items, workers, |_i, x| { *shared.lock() += x; 0 }); }",
        );
        let rules = rules_of(&found);
        assert!(rules.contains(&"S5"), "{found:?}");
    }

    #[test]
    fn s5_exempts_telemetry_named_interior_state() {
        let found = analyze(
            "fn run(items: &[u32], workers: W) { let telemetry = Mutex::new(0); \
             let _ = par_map_shards(items, workers, |_i, x| { telemetry.lock(); 0 }); }",
        );
        // The lock itself still surfaces as S8 (blocking), but not S5.
        assert!(!rules_of(&found).contains(&"S5"), "{found:?}");
    }

    #[test]
    fn s5_clean_shard_body_stays_silent() {
        let found = analyze(
            "fn run(items: &[u32], workers: W) { let base = 10; \
             let _ = par_map_shards(items, workers, |_i, x| x + base); }",
        );
        assert!(found.is_empty(), "{found:?}");
    }

    #[test]
    fn s5_resolves_let_bound_worker_closure() {
        let found = analyze(
            "fn run(items: &[u32], workers: W) { let mut acc = 0; \
             let work = |_i: usize, x: &u32| { acc += *x; 0 }; \
             let _ = par_map_shards(items, workers, work); }",
        );
        assert_eq!(rules_of(&found), vec!["S5"]);
    }

    #[test]
    fn s5_run_rounds_checks_work_not_apply() {
        // `apply` (arg 4) runs on the driver thread and may mutate; only
        // `work` (arg 3) is the shard body.
        let found = analyze(
            "fn run(shards: Vec<S>, slots: usize) { let mut report = R::new(); \
             let make_ctx = |round: usize| round; \
             let work = |_s: usize, _r: usize, ctx: &usize, st: &mut S| { st.step(*ctx) }; \
             let apply = |_r: usize, outs: Vec<u32>| { report.rows.extend(outs); Ok(()) }; \
             let _ = run_rounds(shards, slots, make_ctx, work, apply); }",
        );
        assert!(found.is_empty(), "{found:?}");
    }

    #[test]
    fn s7_flags_literal_and_underived_seeds() {
        let found = analyze(
            "fn setup(seed: u64, i: u64) { \
             let a = StdRng::seed_from_u64(33); \
             let b = StdRng::seed_from_u64(seed.wrapping_add(i)); \
             let c = StdRng::seed_from_u64(leime_par::stream_seed(seed, i)); \
             let d = rand::thread_rng(); }",
        );
        assert_eq!(rules_of(&found), vec!["S7", "S7", "S7"]);
        assert!(found[0].message.contains("literal"), "{}", found[0].message);
        assert!(found[2].message.contains("entropy"), "{}", found[2].message);
    }

    #[test]
    fn s7_outside_marked_paths_is_ignored() {
        let found = analyze_workspace(
            &[(
                "crates/x/other/lib.rs".to_string(),
                "fn setup() { let a = StdRng::seed_from_u64(33); }".to_string(),
            )],
            &cfg(),
        );
        assert!(found.is_empty(), "{found:?}");
    }

    #[test]
    fn s8_flags_direct_and_transitive_blocking() {
        let found = analyze(
            "fn run(items: &[u32], workers: W) { \
             let _ = par_map_shards(items, workers, |_i, x| { helper(*x); thread::sleep(d); 0 }); } \
             fn helper(x: u32) -> u32 { let g = m.lock(); g + x }",
        );
        let rules = rules_of(&found);
        assert_eq!(rules, vec!["S8", "S8"], "{found:?}");
        let direct = found.iter().find(|f| f.message.contains("sleep"));
        let transitive = found.iter().find(|f| f.message.contains("helper"));
        assert!(direct.is_some() && transitive.is_some(), "{found:?}");
    }

    #[test]
    fn s8_driver_side_blocking_is_legal() {
        let found = analyze(
            "fn run(shards: Vec<S>, slots: usize) { \
             let make_ctx = |round: usize| { replay.lock(); round }; \
             let work = |_s: usize, _r: usize, c: &usize, st: &mut S| st.step(*c); \
             let apply = |_r: usize, outs: Vec<u32>| { sink.lock(); Ok(()) }; \
             let _ = run_rounds(shards, slots, make_ctx, work, apply); }",
        );
        assert!(found.is_empty(), "{found:?}");
    }

    #[test]
    fn hot_alloc_counts_cover_roots_and_callees() {
        let files = vec![(
            "crates/x/src/lib.rs".to_string(),
            "fn hot_entry(n: usize) { let v: Vec<u32> = (0..n).collect(); helper(n); }\n\
             fn helper(n: usize) { for i in 0..n { let row = vec![i; 4]; drop(row); } \
             let s = format!(\"x\"); }\n\
             fn cold(n: usize) { let s = n.to_string(); }"
                .to_string(),
        )];
        let counts = FlowAnalysis::build(&files, &cfg()).hot_alloc_counts(&cfg());
        assert_eq!(
            counts["crates/x/src/lib.rs::hot_entry"].count, 1,
            "{counts:?}"
        );
        assert_eq!(counts["crates/x/src/lib.rs::helper"].count, 2, "{counts:?}");
        assert!(!counts.contains_key("crates/x/src/lib.rs::cold"));
    }

    #[test]
    fn vec_and_with_capacity_count_only_in_loops() {
        let files = vec![(
            "crates/x/src/lib.rs".to_string(),
            "fn hot_entry(n: usize) { let v = Vec::with_capacity(n); let w = vec![0; n]; \
             for _ in 0..n { let inner = Vec::with_capacity(4); drop(inner); } }"
                .to_string(),
        )];
        let counts = FlowAnalysis::build(&files, &cfg()).hot_alloc_counts(&cfg());
        assert_eq!(counts["crates/x/src/lib.rs::hot_entry"].count, 1);
    }

    #[test]
    fn test_items_are_skipped() {
        let found = analyze(
            "#[cfg(test)]\nmod tests { fn setup() { let a = StdRng::seed_from_u64(33); } }",
        );
        assert!(found.is_empty(), "{found:?}");
    }

    #[test]
    fn s9_flags_loop_carried_float_accumulation_in_hot_fns() {
        let found = analyze(
            "fn hot_entry(n: usize) -> f64 { let mut acc = 0.0; \
             for i in 0..n { acc += weight(i); } acc }\n\
             fn weight(i: usize) -> f64 { i as f64 }",
        );
        assert_eq!(rules_of(&found), vec!["S9"], "{found:?}");
        assert!(found[0].message.contains("acc +="), "{}", found[0].message);
    }

    #[test]
    fn s9_flags_float_sum_and_fold_reachable_from_hot_roots() {
        let found = analyze(
            "fn hot_entry(xs: &[f64]) -> f64 { reduce(xs) }\n\
             fn reduce(xs: &[f64]) -> f64 { \
             let s = xs.iter().sum::<f64>(); \
             xs.iter().fold(0.0, |a, b| a + b) + s }",
        );
        assert_eq!(rules_of(&found), vec!["S9", "S9"], "{found:?}");
    }

    #[test]
    fn s9_ignores_integer_accumulation_and_cold_fns() {
        let found = analyze(
            "fn hot_entry(n: usize) -> usize { let mut c = 0; \
             for i in 0..n { c += i; } c }\n\
             fn cold(xs: &[f64]) -> f64 { let mut a = 0.0; \
             for x in xs { a += *x; } a }",
        );
        assert!(found.is_empty(), "{found:?}");
    }

    #[test]
    fn s9_approved_fns_are_exempt() {
        let mut c = cfg();
        c.s9_approved_fns.push("hot_entry".to_string());
        let found = analyze_workspace(
            &[(
                "crates/x/src/lib.rs".to_string(),
                "fn hot_entry(n: usize) -> f64 { let mut acc = 0.0; \
                 for i in 0..n { acc += i as f64; } acc }"
                    .to_string(),
            )],
            &c,
        );
        assert!(found.is_empty(), "{found:?}");
    }

    #[test]
    fn s9_covers_shard_body_enclosing_fns() {
        let found = analyze(
            "fn launch(items: &[f64], workers: W) -> f64 { \
             let outs = par_map_shards(items, workers, |_i, x| x + 1.0); \
             let mut total = 0.0; for o in outs { total += o; } total }",
        );
        assert_eq!(rules_of(&found), vec!["S9"], "{found:?}");
    }

    #[test]
    fn s10_flags_fma_without_registered_round_body() {
        let src = "#[cfg(target_arch = \"x86_64\")]\n\
                   #[target_feature(enable = \"avx2,fma\")]\n\
                   unsafe fn fast(x: f64) -> f64 { round_body(x) }\n\
                   fn scalar(x: f64) -> f64 { round_body(x) }\n\
                   fn round_body(x: f64) -> f64 { x }";
        let found = analyze(src);
        assert_eq!(rules_of(&found), vec!["S10"], "{found:?}");
        assert!(found[0].message.contains("fma"), "{}", found[0].message);

        let mut c = cfg();
        c.fma_free_round_bodies.push("round_body".to_string());
        let found = analyze_workspace(&[("crates/x/src/lib.rs".to_string(), src.to_string())], &c);
        assert!(found.is_empty(), "{found:?}");
    }

    #[test]
    fn s10_requires_a_shared_round_body() {
        let found = analyze(
            "#[cfg(target_arch = \"x86_64\")]\n\
             #[target_feature(enable = \"avx2\")]\n\
             unsafe fn fast(x: f64) -> f64 { x }\n\
             fn scalar(x: f64) -> f64 { x }",
        );
        assert_eq!(rules_of(&found), vec!["S10"], "{found:?}");
        assert!(found[0].message.contains("shared"), "{}", found[0].message);
    }

    #[test]
    fn s12_flags_lock_order_cycle_reachable_from_shard_body() {
        let found = analyze(
            "fn run(items: &[u32], workers: W) { \
             let _ = par_map_shards(items, workers, |_i, x| { fwd(*x); bwd(*x); x + 1 }); }\n\
             fn fwd(x: u32) { let g = a.read(); let h = b.write(); }\n\
             fn bwd(x: u32) { let g = b.read(); let h = a.write(); }",
        );
        let rules = rules_of(&found);
        assert!(rules.contains(&"S12"), "{found:?}");
        let s12 = found.iter().find(|f| f.rule == "S12");
        assert!(
            s12.is_some_and(|f| f.message.contains("a \u{2192} b \u{2192} a")),
            "{found:?}"
        );
    }

    #[test]
    fn s12_consistent_lock_order_is_clean() {
        let found = analyze(
            "fn run(items: &[u32], workers: W) { \
             let _ = par_map_shards(items, workers, |_i, x| { fwd(*x); also_fwd(*x); x }); }\n\
             fn fwd(x: u32) { let g = a.read(); let h = b.write(); }\n\
             fn also_fwd(x: u32) { let g = a.read(); let h = b.read(); }",
        );
        assert!(found.is_empty(), "{found:?}");
    }

    #[test]
    fn s12_ignores_io_read_write_with_arguments() {
        let found = analyze(
            "fn run(items: &[u32], workers: W) { \
             let _ = par_map_shards(items, workers, |_i, x| { pump(*x); x }); }\n\
             fn pump(x: u32) { sock.read(&mut buf); sock2.write(&buf); \
             let g = a.read(); }",
        );
        assert!(found.is_empty(), "{found:?}");
    }
}
