//! Token-level scanner for Rust sources.
//!
//! The offline build environment has no `syn`, so both the token-level
//! lint rules and the [`crate::parser`] work on a lexical token stream
//! instead of `rustc`'s own syntax tree. The scanner understands exactly
//! as much of Rust's lexical grammar as its consumers need: line/block
//! comments (captured, for `lint:allow` waivers), string/char/lifetime
//! disambiguation, raw and byte strings, byte-char literals (`b'x'`),
//! raw identifiers (`r#fn`), identifiers, numeric literals with float
//! detection, and multi-char operators — each token tagged with the
//! 1-based source line it *starts* on.

/// Lexical class of a token.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokKind {
    /// Identifier or keyword.
    Ident,
    /// Integer literal (including hex/octal/binary).
    Int,
    /// Float literal (contains `.`, an exponent, or an `f32`/`f64` suffix).
    Float,
    /// Operator or delimiter, possibly multi-char (`==`, `::`, `->`, …).
    Punct,
    /// Lifetime such as `'a`.
    Lifetime,
    /// String, raw-string, byte-string or char literal (content dropped).
    Str,
}

/// One token with its source line.
#[derive(Debug, Clone)]
pub struct Tok {
    /// Lexical class.
    pub kind: TokKind,
    /// Token text (empty for [`TokKind::Str`]).
    pub text: String,
    /// 1-based line number of the token's first character.
    pub line: u32,
}

/// A comment captured during lexing (used for waiver parsing).
#[derive(Debug, Clone)]
pub struct Comment {
    /// 1-based line the comment starts on.
    pub line: u32,
    /// Comment text without the `//` / `/*` markers.
    pub text: String,
}

/// The result of lexing one source file.
#[derive(Debug, Default)]
pub struct Lexed {
    /// Token stream in source order.
    pub toks: Vec<Tok>,
    /// Comments in source order.
    pub comments: Vec<Comment>,
}

/// Multi-char operators, matched greedily (longest first).
const OPERATORS: &[&str] = &[
    "..=", "<<=", ">>=", "::", "->", "=>", "==", "!=", "<=", ">=", "&&", "||", "+=", "-=", "*=",
    "/=", "%=", "^=", "&=", "|=", "..", "<<", ">>",
];

/// Lexes `src` into tokens and comments.
pub fn lex(src: &str) -> Lexed {
    let chars: Vec<char> = src.chars().collect();
    let mut out = Lexed::default();
    let mut i = 0usize;
    let mut line = 1u32;
    let n = chars.len();

    let at = |i: usize| -> char {
        if i < n {
            chars[i]
        } else {
            '\0'
        }
    };

    while i < n {
        let c = chars[i];
        if c == '\n' {
            line += 1;
            i += 1;
            continue;
        }
        if c.is_whitespace() {
            i += 1;
            continue;
        }
        // Line comment.
        if c == '/' && at(i + 1) == '/' {
            let start = i + 2;
            let mut j = start;
            while j < n && chars[j] != '\n' {
                j += 1;
            }
            out.comments.push(Comment {
                line,
                text: chars[start..j].iter().collect(),
            });
            i = j;
            continue;
        }
        // Block comment (nested).
        if c == '/' && at(i + 1) == '*' {
            let start_line = line;
            let start = i + 2;
            let mut depth = 1usize;
            let mut j = start;
            while j < n && depth > 0 {
                if chars[j] == '\n' {
                    line += 1;
                    j += 1;
                } else if chars[j] == '/' && at(j + 1) == '*' {
                    depth += 1;
                    j += 2;
                } else if chars[j] == '*' && at(j + 1) == '/' {
                    depth -= 1;
                    j += 2;
                } else {
                    j += 1;
                }
            }
            let end = j.saturating_sub(2).max(start);
            out.comments.push(Comment {
                line: start_line,
                text: chars[start..end].iter().collect(),
            });
            i = j;
            continue;
        }
        // Identifier / keyword, or a raw/byte string or byte-char prefix.
        if c.is_alphabetic() || c == '_' {
            let start = i;
            let mut j = i;
            while j < n && (chars[j].is_alphanumeric() || chars[j] == '_') {
                j += 1;
            }
            let ident: String = chars[start..j].iter().collect();
            let nc = at(j);
            let is_str_prefix = matches!(ident.as_str(), "r" | "b" | "br" | "rb");
            if is_str_prefix && (nc == '"' || nc == '#') {
                let raw = ident != "b"; // plain `b"…"` keeps escape processing
                let start_line = line;
                if let Some(end) = consume_string(&chars, j, raw, &mut line) {
                    out.toks.push(Tok {
                        kind: TokKind::Str,
                        text: String::new(),
                        line: start_line,
                    });
                    i = end;
                    continue;
                }
            }
            // Raw identifier `r#fn`: one token, keyword meaning stripped.
            if ident == "r" && nc == '#' && (at(j + 1).is_alphabetic() || at(j + 1) == '_') {
                let mut k = j + 1;
                while k < n && (chars[k].is_alphanumeric() || chars[k] == '_') {
                    k += 1;
                }
                out.toks.push(Tok {
                    kind: TokKind::Ident,
                    text: chars[j + 1..k].iter().collect(),
                    line,
                });
                i = k;
                continue;
            }
            // Byte-char literal `b'x'` / `b'\n'`: defer to the `'` branch
            // below instead of emitting a phantom `b` identifier.
            if ident == "b" && nc == '\'' {
                i = j;
                continue;
            }
            out.toks.push(Tok {
                kind: TokKind::Ident,
                text: ident,
                line,
            });
            i = j;
            continue;
        }
        // Number.
        if c.is_ascii_digit() {
            let (tok, j) = lex_number(&chars, i, line);
            out.toks.push(tok);
            i = j;
            continue;
        }
        // String literal.
        if c == '"' {
            let start_line = line;
            if let Some(end) = consume_string(&chars, i, false, &mut line) {
                out.toks.push(Tok {
                    kind: TokKind::Str,
                    text: String::new(),
                    line: start_line,
                });
                i = end;
                continue;
            }
            i += 1;
            continue;
        }
        // Char literal or lifetime.
        if c == '\'' {
            let nc = at(i + 1);
            if nc.is_alphabetic() || nc == '_' {
                let mut j = i + 1;
                while j < n && (chars[j].is_alphanumeric() || chars[j] == '_') {
                    j += 1;
                }
                if at(j) == '\'' {
                    // 'a' — a char literal.
                    out.toks.push(Tok {
                        kind: TokKind::Str,
                        text: String::new(),
                        line,
                    });
                    i = j + 1;
                } else {
                    // 'a — a lifetime.
                    out.toks.push(Tok {
                        kind: TokKind::Lifetime,
                        text: chars[i + 1..j].iter().collect(),
                        line,
                    });
                    i = j;
                }
                continue;
            }
            // '\n', '(', … — a char literal with optional escape.
            let mut j = i + 1;
            if at(j) == '\\' {
                j += 2;
                // Skip over \u{…} and multi-char escapes until the quote.
                while j < n && chars[j] != '\'' {
                    j += 1;
                }
            } else if j < n {
                j += 1;
            }
            if at(j) == '\'' {
                j += 1;
            }
            out.toks.push(Tok {
                kind: TokKind::Str,
                text: String::new(),
                line,
            });
            i = j;
            continue;
        }
        // Multi-char operator.
        let mut matched = false;
        for op in OPERATORS {
            let oc: Vec<char> = op.chars().collect();
            if i + oc.len() <= n && chars[i..i + oc.len()] == oc[..] {
                out.toks.push(Tok {
                    kind: TokKind::Punct,
                    text: (*op).to_string(),
                    line,
                });
                i += oc.len();
                matched = true;
                break;
            }
        }
        if matched {
            continue;
        }
        // Single-char punct.
        out.toks.push(Tok {
            kind: TokKind::Punct,
            text: c.to_string(),
            line,
        });
        i += 1;
    }
    out
}

/// Consumes a string literal starting at `i` (at the opening `"` or at the
/// `#` of a raw string). Returns the index one past the closing delimiter,
/// or `None` if the prefix does not actually open a string.
fn consume_string(chars: &[char], i: usize, raw: bool, line: &mut u32) -> Option<usize> {
    let n = chars.len();
    let mut j = i;
    let mut hashes = 0usize;
    while j < n && chars[j] == '#' {
        hashes += 1;
        j += 1;
    }
    if j >= n || chars[j] != '"' {
        return None;
    }
    j += 1;
    while j < n {
        let c = chars[j];
        if c == '\n' {
            *line += 1;
            j += 1;
            continue;
        }
        if !raw && c == '\\' {
            j += 2;
            continue;
        }
        if c == '"' {
            // A raw string needs `hashes` trailing '#'s to close.
            let mut k = j + 1;
            let mut seen = 0usize;
            while seen < hashes && k < n && chars[k] == '#' {
                seen += 1;
                k += 1;
            }
            if seen == hashes {
                return Some(k);
            }
            j += 1;
            continue;
        }
        j += 1;
    }
    Some(n)
}

/// Lexes a numeric literal starting at digit `i`.
fn lex_number(chars: &[char], i: usize, line: u32) -> (Tok, usize) {
    let n = chars.len();
    let at = |i: usize| -> char {
        if i < n {
            chars[i]
        } else {
            '\0'
        }
    };
    let start = i;
    let mut j = i;
    let mut float = false;
    if chars[i] == '0' && matches!(at(i + 1), 'x' | 'o' | 'b') {
        j += 2;
        while j < n && (chars[j].is_ascii_alphanumeric() || chars[j] == '_') {
            j += 1;
        }
        return (
            Tok {
                kind: TokKind::Int,
                text: chars[start..j].iter().collect(),
                line,
            },
            j,
        );
    }
    while j < n && (chars[j].is_ascii_digit() || chars[j] == '_') {
        j += 1;
    }
    // Fractional part: `1.0`, or trailing `1.` when not a range/method.
    if at(j) == '.' {
        let after = at(j + 1);
        if after.is_ascii_digit() {
            float = true;
            j += 1;
            while j < n && (chars[j].is_ascii_digit() || chars[j] == '_') {
                j += 1;
            }
        } else if after != '.' && !after.is_alphabetic() && after != '_' {
            float = true;
            j += 1;
        }
    }
    // Exponent.
    if matches!(at(j), 'e' | 'E') {
        let (a, b) = (at(j + 1), at(j + 2));
        if a.is_ascii_digit() || ((a == '+' || a == '-') && b.is_ascii_digit()) {
            float = true;
            j += 1;
            if matches!(at(j), '+' | '-') {
                j += 1;
            }
            while j < n && (chars[j].is_ascii_digit() || chars[j] == '_') {
                j += 1;
            }
        }
    }
    // Type suffix: `1.0f64`, `10u32`.
    if at(j).is_alphabetic() {
        let suffix_start = j;
        while j < n && (chars[j].is_alphanumeric() || chars[j] == '_') {
            j += 1;
        }
        let suffix: String = chars[suffix_start..j].iter().collect();
        if suffix == "f32" || suffix == "f64" {
            float = true;
        }
    }
    (
        Tok {
            kind: if float { TokKind::Float } else { TokKind::Int },
            text: chars[start..j].iter().collect(),
            line,
        },
        j,
    )
}

/// Marks tokens covered by `#[cfg(test)]` / `#[test]`-gated items.
///
/// Returns one flag per token; `true` means the token belongs to a
/// test-only item and is exempt from the library-code rules. An attribute
/// whose argument tokens include the bare identifier `test` (so
/// `#[cfg(test)]`, `#[cfg(all(test, …))]`, `#[test]`) gates the item that
/// follows: everything up to the matching `}` of its first brace, or the
/// first top-level `;` for braceless items.
pub fn test_mask(toks: &[Tok]) -> Vec<bool> {
    let mut mask = vec![false; toks.len()];
    let mut i = 0usize;
    while i < toks.len() {
        if !(toks[i].kind == TokKind::Punct
            && toks[i].text == "#"
            && i + 1 < toks.len()
            && toks[i + 1].text == "[")
        {
            i += 1;
            continue;
        }
        // Collect the attribute body up to the matching `]`.
        let mut j = i + 2;
        let mut depth = 1usize;
        let mut is_test = false;
        while j < toks.len() && depth > 0 {
            match (toks[j].kind, toks[j].text.as_str()) {
                (TokKind::Punct, "[") => depth += 1,
                (TokKind::Punct, "]") => depth -= 1,
                (TokKind::Ident, "test") => is_test = true,
                _ => {}
            }
            j += 1;
        }
        if !is_test {
            i = j;
            continue;
        }
        // Skip the gated item: subsequent attributes, then the item body.
        let item_start = i;
        let mut k = j;
        while k + 1 < toks.len() && toks[k].text == "#" && toks[k + 1].text == "[" {
            let mut d = 1usize;
            k += 2;
            while k < toks.len() && d > 0 {
                match toks[k].text.as_str() {
                    "[" => d += 1,
                    "]" => d -= 1,
                    _ => {}
                }
                k += 1;
            }
        }
        let mut brace = 0isize;
        let mut entered = false;
        while k < toks.len() {
            match toks[k].text.as_str() {
                "{" => {
                    brace += 1;
                    entered = true;
                }
                "}" => brace -= 1,
                ";" if !entered && brace == 0 => {
                    k += 1;
                    break;
                }
                _ => {}
            }
            k += 1;
            if entered && brace == 0 {
                break;
            }
        }
        for flag in mask.iter_mut().take(k).skip(item_start) {
            *flag = true;
        }
        i = k;
    }
    mask
}

#[cfg(test)]
mod tests {
    use super::*;

    fn texts(src: &str) -> Vec<String> {
        lex(src).toks.into_iter().map(|t| t.text).collect()
    }

    #[test]
    fn idents_numbers_and_operators() {
        let toks = lex("let x: f64 = 1.5e3; x == 0.0");
        let kinds: Vec<TokKind> = toks.toks.iter().map(|t| t.kind).collect();
        assert_eq!(
            toks.toks
                .iter()
                .map(|t| t.text.as_str())
                .collect::<Vec<_>>(),
            vec!["let", "x", ":", "f64", "=", "1.5e3", ";", "x", "==", "0.0"]
        );
        assert_eq!(kinds[5], TokKind::Float);
        assert_eq!(kinds[8], TokKind::Punct);
        assert_eq!(kinds[9], TokKind::Float);
    }

    #[test]
    fn comments_are_captured_with_lines() {
        let lexed = lex("fn f() {}\n// lint:allow(L1): reason\nlet x = 1;\n/* block */");
        assert_eq!(lexed.comments.len(), 2);
        assert_eq!(lexed.comments[0].line, 2);
        assert!(lexed.comments[0].text.contains("lint:allow(L1)"));
        assert_eq!(lexed.comments[1].line, 4);
    }

    #[test]
    fn strings_hide_their_content() {
        let t = texts(r#"let s = "panic!(unwrap())"; t"#);
        assert!(!t.contains(&"panic".to_string()));
        assert!(!t.contains(&"unwrap".to_string()));
        assert!(t.contains(&"t".to_string()));
    }

    #[test]
    fn raw_strings_do_not_process_escapes() {
        let t = texts(r##"let s = r"a\"; after"##);
        assert!(t.contains(&"after".to_string()));
        let t2 = texts(r###"let s = r#"quote " inside"#; tail"###);
        assert!(t2.contains(&"tail".to_string()));
    }

    #[test]
    fn raw_string_token_keeps_its_start_line() {
        let src = "a\nlet s = r#\"first\nsecond\nthird\"#;\nb";
        let lexed = lex(src);
        let s_tok = lexed
            .toks
            .iter()
            .find(|t| t.kind == TokKind::Str)
            .expect("raw string token");
        assert_eq!(
            s_tok.line, 2,
            "string tokens are stamped with their start line"
        );
        let b_tok = lexed.toks.iter().find(|t| t.text == "b").expect("b");
        assert_eq!(b_tok.line, 5, "line counting resumes after the string body");
    }

    #[test]
    fn raw_string_hash_contents_stay_hidden() {
        // `r#"…"#` with quotes, hashes and comment markers inside.
        let t = texts("let s = r##\"quote \"# almost // not a comment\"##; tail");
        assert!(t.contains(&"tail".to_string()));
        assert!(!t.contains(&"almost".to_string()));
        let lexed = lex("let s = r##\"x\"##; t");
        assert_eq!(lexed.comments.len(), 0);
    }

    #[test]
    fn nested_block_comments_terminate_correctly() {
        let lexed = lex("before /* outer /* inner */ still outer */ after");
        let t: Vec<&str> = lexed.toks.iter().map(|t| t.text.as_str()).collect();
        assert_eq!(t, vec!["before", "after"]);
        assert_eq!(lexed.comments.len(), 1);
        assert!(lexed.comments[0].text.contains("inner"));
        // Line counting across a multi-line nested comment.
        let lexed2 = lex("/* a\n/* b\n*/\n*/\ntail");
        assert_eq!(lexed2.toks[0].text, "tail");
        assert_eq!(lexed2.toks[0].line, 5);
    }

    #[test]
    fn byte_char_literals_do_not_leak_a_b_ident() {
        let lexed = lex("let x = b'a'; let nl = b'\\n'; tail");
        let idents: Vec<&str> = lexed
            .toks
            .iter()
            .filter(|t| t.kind == TokKind::Ident)
            .map(|t| t.text.as_str())
            .collect();
        assert_eq!(idents, vec!["let", "x", "let", "nl", "tail"]);
        let strs = lexed.toks.iter().filter(|t| t.kind == TokKind::Str).count();
        assert_eq!(strs, 2, "b'a' and b'\\n' each lex as one literal");
    }

    #[test]
    fn byte_strings_lex_as_one_literal() {
        let t = texts("let s = b\"bytes\"; let r = br#\"raw bytes\"#; tail");
        assert!(t.contains(&"tail".to_string()));
        assert!(!t.contains(&"bytes".to_string()));
    }

    #[test]
    fn raw_identifiers_lex_as_plain_idents() {
        let lexed = lex("let r#fn = 1; r#type + r#fn");
        let idents: Vec<&str> = lexed
            .toks
            .iter()
            .filter(|t| t.kind == TokKind::Ident)
            .map(|t| t.text.as_str())
            .collect();
        assert_eq!(idents, vec!["let", "fn", "type", "fn"]);
        // No stray `#` puncts left behind.
        assert!(!lexed.toks.iter().any(|t| t.text == "#"));
    }

    #[test]
    fn lifetimes_versus_char_literals() {
        let lexed = lex("fn f<'a>(x: &'a str) { let c = 'x'; let nl = '\\n'; }");
        let lifetimes: Vec<&Tok> = lexed
            .toks
            .iter()
            .filter(|t| t.kind == TokKind::Lifetime)
            .collect();
        assert_eq!(lifetimes.len(), 2);
        let strs = lexed.toks.iter().filter(|t| t.kind == TokKind::Str).count();
        assert_eq!(strs, 2); // 'x' and '\n'
    }

    #[test]
    fn static_lifetime_and_anonymous_lifetime() {
        let lexed = lex("fn f(x: &'static str, y: &'_ u8) {}");
        let lifetimes: Vec<&str> = lexed
            .toks
            .iter()
            .filter(|t| t.kind == TokKind::Lifetime)
            .map(|t| t.text.as_str())
            .collect();
        assert_eq!(lifetimes, vec!["static", "_"]);
    }

    #[test]
    fn escaped_quote_char_literal() {
        let lexed = lex(r"let q = '\''; let bs = '\\'; tail");
        let strs = lexed.toks.iter().filter(|t| t.kind == TokKind::Str).count();
        assert_eq!(strs, 2);
        assert!(lexed.toks.iter().any(|t| t.text == "tail"));
    }

    #[test]
    fn float_versus_int_detection() {
        let lexed = lex("1 1.0 1. 1e9 0x1f 10u32 2.5f32 3f64");
        let kinds: Vec<TokKind> = lexed.toks.iter().map(|t| t.kind).collect();
        assert_eq!(
            kinds,
            vec![
                TokKind::Int,
                TokKind::Float,
                TokKind::Float,
                TokKind::Float,
                TokKind::Int,
                TokKind::Int,
                TokKind::Float,
                TokKind::Float
            ]
        );
    }

    #[test]
    fn tuple_access_is_not_a_float() {
        let t = lex("x.0 .max(1)");
        assert_eq!(t.toks[2].kind, TokKind::Int);
    }

    #[test]
    fn multiline_tracking() {
        let lexed = lex("a\nb\n  c");
        let lines: Vec<u32> = lexed.toks.iter().map(|t| t.line).collect();
        assert_eq!(lines, vec![1, 2, 3]);
    }

    #[test]
    fn test_mask_covers_cfg_test_module() {
        let src =
            "fn lib() { }\n#[cfg(test)]\nmod tests {\n  fn t() { x.unwrap(); }\n}\nfn tail() {}";
        let lexed = lex(src);
        let mask = test_mask(&lexed.toks);
        for (tok, m) in lexed.toks.iter().zip(&mask) {
            if tok.text == "unwrap" {
                assert!(m, "unwrap inside cfg(test) must be masked");
            }
            if tok.text == "lib" || tok.text == "tail" {
                assert!(!m, "library items must stay unmasked");
            }
        }
    }

    #[test]
    fn test_mask_covers_test_fn_with_extra_attrs() {
        let src = "#[test]\n#[should_panic(expected = \"boom\")]\nfn t() { panic!(\"boom\") }\nfn lib() {}";
        let lexed = lex(src);
        let mask = test_mask(&lexed.toks);
        for (tok, m) in lexed.toks.iter().zip(&mask) {
            if tok.text == "panic" {
                assert!(m);
            }
            if tok.text == "lib" {
                assert!(!m);
            }
        }
    }

    #[test]
    fn cfg_feature_string_is_not_test() {
        let src = "#[cfg(feature = \"test-utils\")]\nfn helper() { x.unwrap(); }";
        let lexed = lex(src);
        let mask = test_mask(&lexed.toks);
        assert!(mask.iter().all(|&m| !m), "feature strings must not mask");
    }
}
