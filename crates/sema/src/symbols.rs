//! Per-file symbol table built from the parsed [`crate::ast::File`].
//!
//! The table is a flat, borrow-only view: every function item (at any
//! nesting depth) and every struct field with its flattened type text.
//! The S-rules use it to classify identifiers (is this receiver a
//! `HashMap`-typed field?) and to enumerate the functions a file
//! defines; the call graph uses it to seed graph nodes.

use crate::ast::{walk_fns, File, Item, ItemKind};
use std::collections::BTreeMap;

/// A flat symbol view over one parsed file. Borrows the [`File`].
#[derive(Debug, Default)]
pub struct SymbolTable<'a> {
    /// Every `fn` item in the file, in traversal order (modules, impls
    /// and traits included; bodies may be absent for trait
    /// declarations).
    pub fns: Vec<&'a Item>,
    /// Struct field name → flattened type text. When two structs share
    /// a field name the *hash-like* type wins, so hash classification
    /// over-approximates rather than misses (a lint should fail loud).
    pub field_types: BTreeMap<&'a str, &'a str>,
}

/// Whether a flattened type text names a hash container.
pub fn is_hash_type(ty: &str) -> bool {
    ty.contains("HashMap") || ty.contains("HashSet")
}

/// Builds the symbol table for `file`.
pub fn build(file: &File) -> SymbolTable<'_> {
    let mut table = SymbolTable::default();
    walk_fns(&file.items, &mut |f| table.fns.push(f));
    collect_fields(&file.items, &mut table.field_types);
    table
}

fn collect_fields<'a>(items: &'a [Item], out: &mut BTreeMap<&'a str, &'a str>) {
    for item in items {
        if item.kind == ItemKind::Struct {
            for (name, ty) in &item.fields {
                let entry = out.entry(name.as_str()).or_insert(ty.as_str());
                if !is_hash_type(entry) && is_hash_type(ty) {
                    *entry = ty.as_str();
                }
            }
        }
        collect_fields(&item.children, out);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_source;

    #[test]
    fn collects_fns_and_fields_at_depth() {
        let file = parse_source(
            "pub struct S { m: HashMap<String, u64>, n: u64 }\n\
             mod inner { pub struct T { q: Vec<f64> } fn helper() {} }\n\
             impl S { fn get(&self) -> u64 { self.n } }\n\
             fn free() {}",
        );
        let t = build(&file);
        let names: Vec<&str> = t.fns.iter().map(|f| f.name.as_str()).collect();
        assert_eq!(names, vec!["helper", "get", "free"]);
        assert!(is_hash_type(t.field_types["m"]));
        assert!(!is_hash_type(t.field_types["n"]));
        assert!(!is_hash_type(t.field_types["q"]));
    }

    #[test]
    fn hash_field_wins_on_name_collision() {
        let file = parse_source(
            "struct A { slots: Vec<u64> }\nstruct B { slots: HashSet<u64> }\n\
             struct C { slots: Vec<u64> }",
        );
        let t = build(&file);
        assert!(is_hash_type(t.field_types["slots"]));
    }
}
