//! The S1–S3 semantic rules, run over a crate's parsed files.
//!
//! | Rule | Enforces |
//! | ---- | -------- |
//! | `S1` | guarded solver fns must *transitively* reach an `invariant::` call |
//! | `S2` | no `HashMap`/`HashSet` iteration in determinism-sensitive paths |
//! | `S3` | no arithmetic mixing identifiers with conflicting unit suffixes |
//!
//! (`S4`, crate layering, lives in [`crate::layering`] — it reads
//! `Cargo.toml`s, not Rust sources.)
//!
//! All three rules skip `#[cfg(test)]` / `#[test]` items, mirroring the
//! token-level L-rules' test mask.

use crate::ast::{walk_block, Block, Expr, Item, ItemKind, Stmt};
use crate::callgraph::CallGraph;
use crate::parser::parse_source;
use crate::symbols::{self, is_hash_type};
use crate::{path_matches, Finding, SemaConfig};
use std::collections::BTreeSet;

/// Analyzes one crate's files (`(relative-path, source)` pairs)
/// together: the call graph spans all of them, then S1–S3 report
/// per-file findings, sorted by path, line and rule.
pub fn analyze_crate(files: &[(String, String)], cfg: &SemaConfig) -> Vec<Finding> {
    let parsed: Vec<(&str, crate::ast::File)> = files
        .iter()
        .map(|(path, src)| (path.as_str(), parse_source(src)))
        .collect();

    let mut graph = CallGraph::default();
    if cfg.rule_on("S1") {
        for ((_, file), (_, src)) in parsed.iter().zip(files) {
            graph.add_file(file, src);
        }
    }

    let mut out = Vec::new();
    for (path, file) in &parsed {
        if cfg.rule_on("S1") && path_matches(path, &cfg.guarded_path_markers) {
            scan_s1(path, file, &graph, &cfg.guarded_fn_names, &mut out);
        }
        if cfg.rule_on("S2") && path_matches(path, &cfg.hash_path_markers) {
            scan_s2(path, file, &mut out);
        }
        if cfg.rule_on("S3") && path_matches(path, &cfg.unit_path_markers) {
            scan_s3(path, file, &mut out);
        }
    }
    out.sort_by(|a, b| {
        (&a.path, a.line, &a.rule, &a.message).cmp(&(&b.path, b.line, &b.rule, &b.message))
    });
    out
}

/// Calls `f` on every non-test `fn` item, skipping `#[cfg(test)]`
/// subtrees entirely.
pub(crate) fn for_each_nontest_fn<'a>(items: &'a [Item], f: &mut impl FnMut(&'a Item)) {
    for item in items {
        if item.cfg_test {
            continue;
        }
        if item.kind == ItemKind::Fn {
            f(item);
        }
        for_each_nontest_fn(&item.children, f);
        if let Some(b) = &item.body {
            for stmt in &b.stmts {
                if let Stmt::Item(inner) = stmt {
                    for_each_nontest_fn(std::slice::from_ref(inner), f);
                }
            }
        }
    }
}

// ----- S1: transitive invariant reachability ---------------------------

fn scan_s1(
    path: &str,
    file: &crate::ast::File,
    graph: &CallGraph,
    guarded: &[String],
    out: &mut Vec<Finding>,
) {
    for_each_nontest_fn(&file.items, &mut |f| {
        if f.body.is_none() || !guarded.iter().any(|g| g == &f.name) {
            return;
        }
        if !graph.reaches_guard(&f.name) {
            out.push(Finding {
                rule: "S1".to_string(),
                path: path.to_string(),
                line: f.line,
                message: format!(
                    "`fn {}` never reaches an `invariant::` guard on any call path \
                     (Eq. 8 / Eq. 10–11 / Eq. 27)",
                    f.name
                ),
            });
        }
    });
}

// ----- S2: no hash-container iteration ---------------------------------

/// Iteration methods whose order is the hasher's, not the program's.
const ITER_METHODS: &[&str] = &[
    "iter",
    "iter_mut",
    "into_iter",
    "keys",
    "values",
    "values_mut",
    "drain",
];

fn scan_s2(path: &str, file: &crate::ast::File, out: &mut Vec<Finding>) {
    let table = symbols::build(file);
    for_each_nontest_fn(&file.items, &mut |f| {
        let Some(body) = &f.body else { return };

        // Pass 1: names with a hash-container type — parameters, then
        // `let` bindings anywhere in the body (scoping is ignored: a
        // hash-typed name anywhere in the fn taints the whole fn, an
        // over-approximation that fails loud rather than silently).
        let mut hashed: BTreeSet<String> = BTreeSet::new();
        for (name, ty) in &f.params {
            if is_hash_type(ty) {
                hashed.insert(name.clone());
            }
        }
        let mut sniff_lets = |b: &Block| {
            for stmt in &b.stmts {
                if let Stmt::Let { name, ty, init, .. } = stmt {
                    if name.is_empty() {
                        continue;
                    }
                    let by_ty = ty.as_deref().is_some_and(is_hash_type);
                    let by_init = init.as_ref().is_some_and(init_makes_hash);
                    if by_ty || by_init {
                        hashed.insert(name.clone());
                    }
                }
            }
        };
        sniff_lets(body);
        walk_block(body, &mut |e| {
            match e {
                Expr::For { body, .. } | Expr::While { body, .. } | Expr::BlockExpr(body) => {
                    sniff_lets(body)
                }
                Expr::If { then, els, .. } => {
                    sniff_lets(then);
                    if let Some(b) = els {
                        sniff_lets(b);
                    }
                }
                _ => {}
            };
        });

        // Pass 2: flag hash-ordered iteration.
        let is_hashed = |e: &Expr| -> Option<String> {
            let name = recv_name(e)?;
            let by_local = hashed.contains(name);
            let by_field = matches!(e_root(e), Expr::Field { .. })
                && table
                    .field_types
                    .get(name)
                    .copied()
                    .is_some_and(is_hash_type);
            (by_local || by_field).then(|| name.to_string())
        };
        walk_block(body, &mut |e| match e {
            Expr::MethodCall {
                recv, method, line, ..
            } if ITER_METHODS.contains(&method.as_str()) => {
                if let Some(name) = is_hashed(recv) {
                    out.push(s2_finding(path, *line, &name, &format!(".{method}()")));
                }
            }
            Expr::For { iter, line, .. } => {
                if let Some(name) = is_hashed(iter) {
                    out.push(s2_finding(path, *line, &name, "for-loop"));
                }
            }
            _ => {}
        });
    });
}

fn s2_finding(path: &str, line: u32, name: &str, how: &str) -> Finding {
    Finding {
        rule: "S2".to_string(),
        path: path.to_string(),
        line,
        message: format!(
            "hash-ordered iteration ({how}) over `{name}` breaks replay determinism — \
             use `BTreeMap`/`BTreeSet` or sort first"
        ),
    }
}

/// The identifier a receiver expression names, looking through
/// `&`/`*` and casts: `map` → `map`, `&mut self.stats` → `stats`.
fn recv_name(e: &Expr) -> Option<&str> {
    match e_root(e) {
        Expr::Path { segs, .. } if segs.len() == 1 => segs.first().map(String::as_str),
        Expr::Field { name, .. } => Some(name.as_str()),
        _ => None,
    }
}

/// Strips `&`/`&mut`/`*` and `as` layers off an expression.
fn e_root(e: &Expr) -> &Expr {
    match e {
        Expr::Unary { op, expr } if op == "&" || op == "&mut" || op == "*" => e_root(expr),
        Expr::Cast { expr, .. } => e_root(expr),
        _ => e,
    }
}

/// Whether an initializer expression produces a hash container:
/// `HashMap::new()` / `with_capacity` / `from`, or a
/// `.collect::<HashMap<…>>()` turbofish.
fn init_makes_hash(e: &Expr) -> bool {
    match e {
        Expr::Call { callee, .. } => match callee.as_ref() {
            Expr::Path { segs, .. } => segs.iter().any(|s| s == "HashMap" || s == "HashSet"),
            _ => false,
        },
        Expr::MethodCall {
            method, turbofish, ..
        } if method == "collect" => turbofish.as_deref().is_some_and(is_hash_type),
        _ => false,
    }
}

// ----- S3: conflicting unit suffixes -----------------------------------

/// A measurement family inferred from an identifier suffix.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Unit {
    TimeS,
    TimeMs,
    TimeUs,
    TimeNs,
    Bytes,
    Bits,
    Slots,
}

impl Unit {
    fn is_time(self) -> bool {
        matches!(
            self,
            Unit::TimeS | Unit::TimeMs | Unit::TimeUs | Unit::TimeNs
        )
    }

    fn label(self) -> &'static str {
        match self {
            Unit::TimeS => "seconds",
            Unit::TimeMs => "milliseconds",
            Unit::TimeUs => "microseconds",
            Unit::TimeNs => "nanoseconds",
            Unit::Bytes => "bytes",
            Unit::Bits => "bits",
            Unit::Slots => "slots",
        }
    }
}

/// Suffix → unit; longest suffixes first so `_ns` is not read as `_s`.
fn unit_of(name: &str) -> Option<Unit> {
    let n = name.to_ascii_lowercase();
    const TABLE: &[(&str, Unit)] = &[
        ("_bytes", Unit::Bytes),
        ("_bits", Unit::Bits),
        ("_slots", Unit::Slots),
        ("_slot", Unit::Slots),
        ("_secs", Unit::TimeS),
        ("_sec", Unit::TimeS),
        ("_ms", Unit::TimeMs),
        ("_us", Unit::TimeUs),
        ("_ns", Unit::TimeNs),
        ("_s", Unit::TimeS),
    ];
    TABLE
        .iter()
        .find(|(suf, _)| n.ends_with(suf))
        .map(|(_, u)| *u)
}

/// Families that must never meet under `+`/`-`/comparison.
fn units_conflict(a: Unit, b: Unit) -> bool {
    if a == b {
        return false;
    }
    (a.is_time() && b.is_time())
        || matches!(
            (a, b),
            (Unit::Bytes, Unit::Bits) | (Unit::Bits, Unit::Bytes)
        )
        || (a == Unit::Slots && b.is_time())
        || (b == Unit::Slots && a.is_time())
}

/// Operators where mixed units are meaningless (`*`/`/` are unit
/// conversions, so they stay legal).
const S3_OPS: &[&str] = &["+", "-", "+=", "-=", "<", "<=", ">", ">=", "==", "!="];

/// The unit an operand carries, when it is a named identifier (possibly
/// behind `&`/`*`/`as`, a field access, or a const path).
fn operand_unit(e: &Expr) -> Option<(String, Unit)> {
    let name = match e_root(e) {
        Expr::Path { segs, .. } => segs.last()?,
        Expr::Field { name, .. } => name,
        _ => return None,
    };
    unit_of(name).map(|u| (name.clone(), u))
}

fn scan_s3(path: &str, file: &crate::ast::File, out: &mut Vec<Finding>) {
    for_each_nontest_fn(&file.items, &mut |f| {
        let Some(body) = &f.body else { return };
        walk_block(body, &mut |e| {
            let Expr::Binary { op, lhs, rhs, line } = e else {
                return;
            };
            if !S3_OPS.contains(&op.as_str()) {
                return;
            }
            let (Some((ln, lu)), Some((rn, ru))) = (operand_unit(lhs), operand_unit(rhs)) else {
                return;
            };
            if units_conflict(lu, ru) {
                out.push(Finding {
                    rule: "S3".to_string(),
                    path: path.to_string(),
                    line: *line,
                    message: format!(
                        "`{ln}` ({}) `{op}` `{rn}` ({}) mixes unit families — \
                         convert to one unit before combining",
                        lu.label(),
                        ru.label()
                    ),
                });
            }
        });
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg_all_paths() -> SemaConfig {
        SemaConfig {
            guarded_path_markers: vec!["src".to_string()],
            hash_path_markers: vec!["src".to_string()],
            unit_path_markers: vec!["src".to_string()],
            ..SemaConfig::default()
        }
    }

    fn analyze(src: &str) -> Vec<Finding> {
        analyze_crate(
            &[("crates/x/src/lib.rs".to_string(), src.to_string())],
            &cfg_all_paths(),
        )
    }

    fn rules_of(findings: &[Finding]) -> Vec<&str> {
        findings.iter().map(|f| f.rule.as_str()).collect()
    }

    #[test]
    fn s1_accepts_delegated_guard_that_l5_would_reject() {
        let found = analyze(
            "pub fn decide(x: f64) -> f64 { clamp(x) }\n\
             fn clamp(x: f64) -> f64 { invariant::check_unit_interval(\"x\", x) }",
        );
        assert!(found.is_empty(), "{found:?}");
    }

    #[test]
    fn s1_flags_unreachable_guard() {
        let found =
            analyze("pub fn decide(x: f64) -> f64 { helper(x) }\nfn helper(x: f64) -> f64 { x }");
        assert_eq!(rules_of(&found), vec!["S1"]);
        assert_eq!(found[0].line, 1);
    }

    #[test]
    fn s1_skips_trait_declarations_and_nonguarded_names() {
        let found = analyze("pub trait C { fn decide(&self) -> f64; }\nfn misc() {}");
        assert!(found.is_empty(), "{found:?}");
    }

    #[test]
    fn s1_spans_files_within_the_crate() {
        let files = vec![
            (
                "crates/x/src/a.rs".to_string(),
                "pub fn decide(x: f64) -> f64 { solver::balance(x) }".to_string(),
            ),
            (
                "crates/x/src/b.rs".to_string(),
                "pub fn balance(x: f64) -> f64 { invariant::check_unit_interval(\"x\", x) }"
                    .to_string(),
            ),
        ];
        let found = analyze_crate(&files, &cfg_all_paths());
        assert!(found.is_empty(), "{found:?}");
    }

    #[test]
    fn s2_flags_iteration_over_local_and_param_and_field() {
        let found = analyze(
            "use std::collections::HashMap;\n\
             pub struct S { stats: HashMap<String, u64> }\n\
             pub fn a(m: HashMap<String, u64>) -> usize { m.iter().count() }\n\
             pub fn b() { let m = HashMap::new(); for k in m.keys() { drop(k); } }\n\
             impl S { pub fn c(&self) -> usize { self.stats.values().count() } }",
        );
        assert_eq!(rules_of(&found), vec!["S2", "S2", "S2"]);
        let lines: Vec<u32> = found.iter().map(|f| f.line).collect();
        assert_eq!(lines, vec![3, 4, 5]);
    }

    #[test]
    fn s2_flags_for_loop_over_hash_reference() {
        let found = analyze(
            "pub struct S { seen: HashSet<u64> }\n\
             impl S { pub fn dump(&self) { for v in &self.seen { drop(v); } } }",
        );
        assert_eq!(rules_of(&found), vec!["S2"]);
        assert_eq!(found[0].line, 2);
    }

    #[test]
    fn s2_flags_collect_turbofish() {
        let found = analyze(
            "pub fn f(v: Vec<(u64, u64)>) {\n\
             let m = v.into_iter().collect::<HashMap<u64, u64>>();\n\
             for (k, _) in m.iter() { drop(k); }\n}",
        );
        assert_eq!(rules_of(&found), vec!["S2"]);
        assert_eq!(found[0].line, 3);
    }

    #[test]
    fn s2_allows_btreemap_and_vec_iteration() {
        let found = analyze(
            "pub struct S { a: BTreeMap<String, u64>, b: Vec<u64> }\n\
             impl S { pub fn f(&self) -> usize { self.a.iter().count() + self.b.iter().count() } }",
        );
        assert!(found.is_empty(), "{found:?}");
    }

    #[test]
    fn s2_skips_test_modules() {
        let found = analyze(
            "#[cfg(test)]\nmod tests {\n    pub fn f(m: HashMap<u64, u64>) { for k in m.keys() { drop(k); } }\n}",
        );
        assert!(found.is_empty(), "{found:?}");
    }

    #[test]
    fn s2_outside_marked_paths_is_ignored() {
        let files = vec![(
            "crates/x/other/lib.rs".to_string(),
            "pub fn f(m: HashMap<u64, u64>) { for k in m.keys() { drop(k); } }".to_string(),
        )];
        let found = analyze_crate(&files, &cfg_all_paths());
        assert!(found.is_empty(), "{found:?}");
    }

    #[test]
    fn s3_flags_seconds_plus_milliseconds() {
        let found = analyze("pub fn f(a_s: f64, b_ms: f64) -> f64 { a_s + b_ms }");
        assert_eq!(rules_of(&found), vec!["S3"]);
        assert!(found[0].message.contains("seconds"));
        assert!(found[0].message.contains("milliseconds"));
    }

    #[test]
    fn s3_flags_bytes_vs_bits_and_slots_vs_time() {
        let found = analyze(
            "pub fn f(tx_bytes: u64, rx_bits: u64, t_slots: u64, t_ms: u64) -> bool {\n\
             tx_bytes < rx_bits && t_slots >= t_ms\n}",
        );
        assert_eq!(rules_of(&found), vec!["S3", "S3"]);
    }

    #[test]
    fn s3_flags_compound_assignment_and_fields() {
        let found = analyze(
            "pub struct C { budget_ms: f64 }\n\
             pub fn f(c: &mut C, dt_s: f64) { c.budget_ms -= dt_s; }",
        );
        assert_eq!(rules_of(&found), vec!["S3"]);
        assert_eq!(found[0].line, 2);
    }

    #[test]
    fn s3_allows_same_family_and_conversions() {
        let found = analyze(
            "pub fn f(a_ms: f64, b_ms: f64, rate_bytes: f64, dt_s: f64) -> f64 {\n\
             (a_ms - b_ms) + rate_bytes * dt_s\n}",
        );
        assert!(found.is_empty(), "{found:?}");
    }

    #[test]
    fn s3_suffix_table_is_longest_match() {
        assert_eq!(unit_of("lat_ns"), Some(Unit::TimeNs));
        assert_eq!(unit_of("lat_ms"), Some(Unit::TimeMs));
        assert_eq!(unit_of("t_s"), Some(Unit::TimeS));
        assert_eq!(unit_of("wait_secs"), Some(Unit::TimeS));
        assert_eq!(unit_of("DEFAULT_TIMEOUT_MS"), Some(Unit::TimeMs));
        assert_eq!(unit_of("arrivals"), None);
        assert_eq!(unit_of("status"), None);
    }
}
