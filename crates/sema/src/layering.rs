//! S4: the workspace crate-dependency DAG, parsed from `Cargo.toml`s.
//!
//! The LEIME workspace layers strictly downward:
//!
//! | layer | crates |
//! | ----- | ------ |
//! | 0 | `leime-invariant`, `leime-telemetry` (leaf-like: no leime deps) |
//! | 1 | `leime-tensor`, `leime-simnet`, `leime-sema`, `leime-par` |
//! | 2 | `leime-dnn`, `leime-lint` |
//! | 3 | `leime-workload` |
//! | 4 | `leime-inference`, `leime-exitcfg`, `leime-chaos`, `leime-offload` |
//! | 5 | `leime` (core) |
//! | 6 | `leime-fleet` |
//! | 7 | `leime-serving` |
//! | 8 | `leime-bench` |
//!
//! Every `[dependencies]` edge must point to a *strictly lower* layer —
//! that single check implies acyclicity, keeps `core` off `bench`, and
//! keeps layer-0 crates leaf-like. Two extra constraints:
//!
//! * **tooling isolation** — `leime-lint`/`leime-sema` are reachable
//!   only through the `lint → sema` edge, and depend on no product
//!   crate; the analysis tools must never enter the product graph.
//! * **no direct shim paths** — vendored shims under `crates/shims/`
//!   are wired through the workspace root's `[workspace.dependencies]`
//!   (the build edge); a `path = "…shims…"` in a crate manifest would
//!   bypass that single point of control.
//!
//! `dev-dependencies` are exempt from layering (tests may look upward)
//! but not from the shim-path check. S4 findings are **not waivable**:
//! they live in manifests, which carry no `lint:allow` comments by
//! design — fix the dependency instead.
//!
//! Crates not in the table (a future `crates/foo`) get only the
//! tooling/shim checks until they are added here.

use crate::{Finding, SemaConfig};
use std::path::Path;

/// The intended layering, lowest first. Rank = index in this table.
pub const LAYERS: &[&[&str]] = &[
    &["leime-invariant", "leime-telemetry"],
    &["leime-tensor", "leime-simnet", "leime-sema", "leime-par"],
    &["leime-dnn", "leime-lint"],
    &["leime-workload"],
    &[
        "leime-inference",
        "leime-exitcfg",
        "leime-chaos",
        "leime-offload",
    ],
    &["leime"],
    &["leime-fleet"],
    &["leime-serving"],
    &["leime-bench"],
];

/// Static-analysis tooling crates, isolated from the product graph.
pub const TOOLING: &[&str] = &["leime-lint", "leime-sema"];

/// Rank of a crate in [`LAYERS`], if known.
pub fn rank_of(name: &str) -> Option<usize> {
    LAYERS.iter().position(|layer| layer.contains(&name))
}

fn is_leime(name: &str) -> bool {
    name == "leime" || name.starts_with("leime-")
}

/// One dependency entry parsed out of a manifest.
#[derive(Debug)]
struct Dep {
    name: String,
    line: u32,
    /// Raw manifest line (for the shim-path check).
    text: String,
    /// From `[dev-dependencies]` / `[build-dependencies]`.
    dev: bool,
}

/// A minimally-parsed `Cargo.toml`.
#[derive(Debug)]
struct Manifest {
    name: String,
    path: String,
    deps: Vec<Dep>,
}

/// Line-oriented TOML subset parser: section headers, `name = "…"` in
/// `[package]`, and `key = …` entries in dependency sections. The
/// workspace's manifests are machine-regular; anything fancier than
/// this subset is itself a smell S4 should surface (as an unknown
/// crate with no name).
fn parse_manifest(path: &str, text: &str) -> Manifest {
    let mut name = String::new();
    let mut deps = Vec::new();
    let mut section = String::new();
    for (idx, raw) in text.lines().enumerate() {
        let line = raw.trim();
        let lineno = (idx + 1) as u32;
        if line.starts_with('[') {
            section = line.trim_matches(['[', ']']).to_string();
            // `[dependencies.foo]` table form: the header itself names
            // the dependency.
            if let Some(dep) = section.strip_prefix("dependencies.") {
                deps.push(Dep {
                    name: dep.to_string(),
                    line: lineno,
                    text: String::new(),
                    dev: false,
                });
            } else if let Some(dep) = section.strip_prefix("dev-dependencies.") {
                deps.push(Dep {
                    name: dep.to_string(),
                    line: lineno,
                    text: String::new(),
                    dev: true,
                });
            }
            continue;
        }
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        if section == "package" {
            if let Some(rest) = line.strip_prefix("name") {
                let rest = rest.trim_start();
                if let Some(v) = rest.strip_prefix('=') {
                    name = v.trim().trim_matches('"').to_string();
                }
            }
            continue;
        }
        let dev = section == "dev-dependencies" || section == "build-dependencies";
        if section == "dependencies" || dev {
            let key: String = line
                .chars()
                .take_while(|c| c.is_alphanumeric() || *c == '-' || *c == '_')
                .collect();
            if key.is_empty() {
                continue;
            }
            deps.push(Dep {
                name: key,
                line: lineno,
                text: line.to_string(),
                dev,
            });
        } else if (section == "dependencies"
            || section.starts_with("dependencies.")
            || section.starts_with("dev-dependencies."))
            && line.contains("path")
        {
            // table-form `path = "…"` line: attach to the last dep.
            if let Some(last) = deps.last_mut() {
                last.text.push_str(line);
            }
        }
    }
    Manifest {
        name,
        path: path.to_string(),
        deps,
    }
}

/// Checks the workspace layering under `root` (expects
/// `root/crates/*/Cargo.toml`). Findings point at the offending
/// dependency line of the offending manifest.
///
/// # Errors
///
/// Returns a description of the first unreadable directory or manifest.
pub fn check_layering(root: &Path, cfg: &SemaConfig) -> Result<Vec<Finding>, String> {
    if !cfg.rule_on("S4") {
        return Ok(Vec::new());
    }
    let crates_dir = root.join("crates");
    let entries = std::fs::read_dir(&crates_dir)
        .map_err(|e| format!("cannot read {}: {e}", crates_dir.display()))?;
    let mut dirs: Vec<_> = entries.flatten().map(|e| e.path()).collect();
    dirs.sort();

    let mut manifests = Vec::new();
    for dir in dirs {
        let manifest_path = dir.join("Cargo.toml");
        if !manifest_path.is_file() {
            continue;
        }
        let text = std::fs::read_to_string(&manifest_path)
            .map_err(|e| format!("cannot read {}: {e}", manifest_path.display()))?;
        let rel = manifest_path
            .strip_prefix(root)
            .unwrap_or(&manifest_path)
            .to_string_lossy()
            .replace('\\', "/");
        manifests.push(parse_manifest(&rel, &text));
    }

    let mut out = Vec::new();
    for m in &manifests {
        check_manifest(m, &mut out);
    }
    out.sort_by(|a, b| (&a.path, a.line, &a.message).cmp(&(&b.path, b.line, &b.message)));
    Ok(out)
}

fn check_manifest(m: &Manifest, out: &mut Vec<Finding>) {
    let s4 = |line: u32, message: String| Finding {
        rule: "S4".to_string(),
        path: m.path.clone(),
        line,
        message,
    };
    let crate_rank = rank_of(&m.name);
    let crate_is_tooling = TOOLING.contains(&m.name.as_str());
    for dep in &m.deps {
        if dep.text.contains("shims") {
            out.push(s4(
                dep.line,
                format!(
                    "`{}` wires `{}` straight to the vendored shims — shims are \
                     reachable only through `[workspace.dependencies]` (the build edge)",
                    m.name, dep.name
                ),
            ));
        }
        if dep.dev || !is_leime(&dep.name) {
            continue;
        }
        let dep_is_tooling = TOOLING.contains(&dep.name.as_str());
        if dep_is_tooling && !(m.name == "leime-lint" && dep.name == "leime-sema") {
            out.push(s4(
                dep.line,
                format!(
                    "`{}` depends on analysis tooling `{}` — tooling is reachable \
                     only through the `leime-lint → leime-sema` edge",
                    m.name, dep.name
                ),
            ));
            continue;
        }
        if crate_is_tooling && !dep_is_tooling {
            out.push(s4(
                dep.line,
                format!(
                    "analysis tooling `{}` depends on product crate `{}` — \
                     tooling must stay outside the product graph",
                    m.name, dep.name
                ),
            ));
            continue;
        }
        if let (Some(cr), Some(dr)) = (crate_rank, rank_of(&dep.name)) {
            if dr >= cr {
                out.push(s4(
                    dep.line,
                    format!(
                        "`{}` (layer {cr}) depends on `{}` (layer {dr}) — \
                         the crate DAG flows strictly downward",
                        m.name, dep.name
                    ),
                ));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn findings_for(name: &str, body: &str) -> Vec<Finding> {
        let text = format!("[package]\nname = \"{name}\"\n{body}");
        let m = parse_manifest("crates/x/Cargo.toml", &text);
        let mut out = Vec::new();
        check_manifest(&m, &mut out);
        out
    }

    #[test]
    fn clean_downward_edges_pass() {
        let out = findings_for(
            "leime-offload",
            "[dependencies]\nserde.workspace = true\nleime-dnn.workspace = true\n\
             leime-invariant.workspace = true\nleime-telemetry.workspace = true",
        );
        assert!(out.is_empty(), "{out:?}");
    }

    #[test]
    fn upward_edge_is_flagged_with_line() {
        let out = findings_for(
            "leime-telemetry",
            "[dependencies]\nserde.workspace = true\nleime.workspace = true",
        );
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].rule, "S4");
        assert_eq!(out[0].line, 5);
        assert!(out[0].message.contains("strictly downward"));
    }

    #[test]
    fn same_layer_edge_is_flagged() {
        let out = findings_for(
            "leime-exitcfg",
            "[dependencies]\nleime-offload.workspace = true",
        );
        assert_eq!(out.len(), 1);
    }

    #[test]
    fn dev_dependencies_may_look_upward() {
        let out = findings_for(
            "leime-exitcfg",
            "[dependencies]\nleime-dnn.workspace = true\n\
             [dev-dependencies]\nleime-workload.workspace = true",
        );
        assert!(out.is_empty(), "{out:?}");
    }

    #[test]
    fn tooling_is_fenced_both_ways() {
        let product_on_tooling = findings_for(
            "leime-simnet",
            "[dependencies]\nleime-lint.workspace = true",
        );
        assert_eq!(product_on_tooling.len(), 1);
        assert!(product_on_tooling[0].message.contains("tooling"));
        let tooling_on_product = findings_for(
            "leime-sema",
            "[dependencies]\nleime-telemetry.workspace = true",
        );
        assert_eq!(tooling_on_product.len(), 1);
        let lint_on_sema =
            findings_for("leime-lint", "[dependencies]\nleime-sema.workspace = true");
        assert!(lint_on_sema.is_empty(), "{lint_on_sema:?}");
    }

    #[test]
    fn direct_shim_path_is_flagged_even_for_dev_deps() {
        let out = findings_for(
            "leime-dnn",
            "[dev-dependencies]\nproptest = { path = \"../shims/proptest\" }",
        );
        assert_eq!(out.len(), 1);
        assert!(out[0].message.contains("shims"));
    }

    #[test]
    fn unknown_crates_get_only_fence_checks() {
        let out = findings_for(
            "leime-future",
            "[dependencies]\nleime-bench.workspace = true",
        );
        assert!(out.is_empty(), "{out:?}");
    }

    #[test]
    fn rank_table_matches_reality_spot_checks() {
        assert_eq!(rank_of("leime-invariant"), Some(0));
        assert_eq!(rank_of("leime"), Some(5));
        assert_eq!(rank_of("leime-fleet"), Some(6));
        assert_eq!(rank_of("leime-serving"), Some(7));
        assert_eq!(rank_of("leime-bench"), Some(8));
        assert_eq!(rank_of("not-a-crate"), None);
    }
}
