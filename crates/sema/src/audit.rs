//! Token-level `unsafe` and `#[target_feature]` extraction (S10/S11
//! raw material).
//!
//! The [`crate::parser`] deliberately erases `unsafe` blocks to plain
//! [`crate::ast::Expr::BlockExpr`]s and drops string-literal text from
//! attributes, so both extractors here work one layer down:
//!
//! * [`unsafe_sites`] walks the raw token stream (test-masked regions
//!   excluded) and pairs every `unsafe` block or `unsafe fn` with the
//!   nearest `safety:`-prefixed comment — the justification S11
//!   requires next to every site the ledger counts.
//! * [`target_feature_fns`] walks the parsed items for functions whose
//!   attributes carry `target_feature`, then recovers the quoted
//!   feature list (`enable = "avx2,fma"`) from the raw source lines the
//!   lexer dropped it from.
//!
//! Both are total over arbitrary input, like everything else in this
//! crate: they only ever index within the token/line vectors they
//! build and never panic on malformed source.

use crate::ast::Item;
use crate::lexer::{lex, test_mask, Comment, TokKind};
use crate::parser::parse_source;

/// How far above a site (in lines) a `safety:` comment may sit and
/// still justify it — room for the attribute stack on a
/// `#[target_feature]` `unsafe fn`.
const SAFETY_COMMENT_WINDOW: u32 = 4;

/// What kind of `unsafe` construct a site is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum UnsafeKind {
    /// An `unsafe { … }` block expression.
    Block,
    /// An `unsafe fn` definition (its body is one big unsafe scope).
    Fn,
}

/// One `unsafe` site in non-test code.
#[derive(Debug, Clone)]
pub struct UnsafeSite {
    /// 1-based line of the `unsafe` keyword.
    pub line: u32,
    /// Block or fn.
    pub kind: UnsafeKind,
    /// Name of the `unsafe fn` (empty for blocks).
    pub fn_name: String,
    /// Whether a `// safety: …` (or `// SAFETY: …`, or doc-comment
    /// `/// # Safety`) justification sits on the site's line or within
    /// [`SAFETY_COMMENT_WINDOW`] lines above it.
    pub justified: bool,
}

/// Whether a captured comment reads as a safety justification. Doc
/// comments lex with a leading `/` in their text, so `/// # Safety`
/// headings qualify alongside `// SAFETY: …` / `// safety: …`.
fn is_safety_comment(c: &Comment) -> bool {
    let t = c.text.trim_start_matches(['/', '!']).trim_start();
    let lower = t.to_ascii_lowercase();
    lower.starts_with("safety:") || lower.starts_with("# safety")
}

/// Extracts every `unsafe` block and `unsafe fn` in non-test code,
/// with its justification status. `unsafe impl` / `unsafe trait`
/// declarations are skipped: they carry no executable code of their
/// own and their obligations live on the methods.
pub fn unsafe_sites(src: &str) -> Vec<UnsafeSite> {
    let lexed = lex(src);
    let toks = &lexed.toks;
    let mask = test_mask(toks);
    let safety_lines: Vec<u32> = lexed
        .comments
        .iter()
        .filter(|c| is_safety_comment(c))
        .map(|c| c.line)
        .collect();
    let justified_at = |line: u32| {
        safety_lines
            .iter()
            .any(|&cl| cl <= line && line - cl <= SAFETY_COMMENT_WINDOW)
    };

    let mut out = Vec::new();
    for (i, t) in toks.iter().enumerate() {
        if mask[i] || t.kind != TokKind::Ident || t.text != "unsafe" {
            continue;
        }
        // Look past modifiers (`extern "C"`, `async`, `const`) for the
        // construct the `unsafe` introduces.
        let mut j = i + 1;
        while let Some(n) = toks.get(j) {
            let is_modifier = (n.kind == TokKind::Ident
                && matches!(n.text.as_str(), "extern" | "async" | "const"))
                || n.kind == TokKind::Str;
            if is_modifier {
                j += 1;
            } else {
                break;
            }
        }
        match toks.get(j) {
            Some(n) if n.kind == TokKind::Punct && n.text == "{" => out.push(UnsafeSite {
                line: t.line,
                kind: UnsafeKind::Block,
                fn_name: String::new(),
                justified: justified_at(t.line),
            }),
            Some(n) if n.kind == TokKind::Ident && n.text == "fn" => {
                let name = toks
                    .get(j + 1)
                    .filter(|nt| nt.kind == TokKind::Ident)
                    .map(|nt| nt.text.clone())
                    .unwrap_or_default();
                out.push(UnsafeSite {
                    line: t.line,
                    kind: UnsafeKind::Fn,
                    fn_name: name,
                    justified: justified_at(t.line),
                });
            }
            _ => {} // `unsafe impl` / `unsafe trait` / stray keyword
        }
    }
    out
}

/// One `#[target_feature(enable = "…")]` function in non-test code.
#[derive(Debug, Clone)]
pub struct TargetFeatureFn {
    /// Function name.
    pub name: String,
    /// 1-based line of the `fn` keyword.
    pub line: u32,
    /// The enabled features, split and trimmed (`["avx2", "fma"]`).
    pub features: Vec<String>,
}

/// Extracts every non-test function carrying a `#[target_feature]`
/// attribute, recovering the feature list from the raw source (the
/// lexer drops string-literal text, so the parsed attribute alone
/// cannot carry it).
pub fn target_feature_fns(src: &str) -> Vec<TargetFeatureFn> {
    let file = parse_source(src);
    let lines: Vec<&str> = src.lines().collect();
    let mut out = Vec::new();
    crate::rules::for_each_nontest_fn(&file.items, &mut |item: &Item| {
        if !item.attrs.iter().any(|a| a.starts_with("target_feature")) {
            return;
        }
        let mut features = Vec::new();
        // The attribute sits on (or a few lines above) the `fn` line;
        // take the *nearest* `target_feature` line walking upward, so a
        // neighbouring fn's attribute never bleeds into this one.
        let lo = item.line.saturating_sub(SAFETY_COMMENT_WINDOW + 2).max(1);
        for line_no in (lo..=item.line).rev() {
            let Some(text) = lines.get(line_no as usize - 1) else {
                continue;
            };
            if !text.contains("target_feature") {
                continue;
            }
            if let Some(open) = text.find('"') {
                if let Some(len) = text[open + 1..].find('"') {
                    for feat in text[open + 1..open + 1 + len].split(',') {
                        let feat = feat.trim();
                        if !feat.is_empty() && !features.iter().any(|f| f == feat) {
                            features.push(feat.to_string());
                        }
                    }
                }
            }
            break;
        }
        out.push(TargetFeatureFn {
            name: item.name.clone(),
            line: item.line,
            features,
        });
    });
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unsafe_block_with_and_without_justification() {
        let src = "fn f() {\n    // SAFETY: bounds checked above.\n    unsafe { go() };\n}\n\
                   \n\n\nfn g() {\n    unsafe { go() };\n}";
        let sites = unsafe_sites(src);
        assert_eq!(sites.len(), 2, "{sites:?}");
        assert_eq!(sites[0].kind, UnsafeKind::Block);
        assert!(sites[0].justified);
        assert!(!sites[1].justified);
    }

    #[test]
    fn unsafe_fn_behind_attributes_sees_comment_above_them() {
        let src = "// safety: caller guarantees avx2 via runtime dispatch.\n\
                   #[cfg(target_arch = \"x86_64\")]\n\
                   #[target_feature(enable = \"avx2\")]\n\
                   unsafe fn kernel(x: f64) -> f64 { x }\n";
        let sites = unsafe_sites(src);
        assert_eq!(sites.len(), 1);
        assert_eq!(sites[0].kind, UnsafeKind::Fn);
        assert_eq!(sites[0].fn_name, "kernel");
        assert!(sites[0].justified, "{sites:?}");
    }

    #[test]
    fn doc_safety_heading_justifies() {
        let src = "/// # Safety\n/// `ptr` must be valid.\nunsafe fn raw(p: *const u8) {}\n";
        let sites = unsafe_sites(src);
        assert_eq!(sites.len(), 1);
        assert!(sites[0].justified, "{sites:?}");
    }

    #[test]
    fn unsafe_impl_and_test_code_are_skipped() {
        let src = "unsafe impl Send for X {}\n\
                   #[cfg(test)]\nmod tests { fn t() { unsafe { go() } } }";
        assert!(unsafe_sites(src).is_empty());
    }

    #[test]
    fn target_feature_fn_recovers_feature_list() {
        let src = "#[cfg(target_arch = \"x86_64\")]\n\
                   #[target_feature(enable = \"avx2,fma\")]\n\
                   unsafe fn contract_avx2(&mut self) { self.rounds(); }\n\
                   fn scalar(&mut self) { self.rounds(); }";
        let tf = target_feature_fns(src);
        assert_eq!(tf.len(), 1, "{tf:?}");
        assert_eq!(tf[0].name, "contract_avx2");
        assert_eq!(tf[0].features, vec!["avx2", "fma"]);
    }

    #[test]
    fn adjacent_fns_do_not_bleed_feature_lists() {
        let src = "#[target_feature(enable = \"avx2,fma\")]\n\
                   unsafe fn first(x: f64) -> f64 { x }\n\
                   #[target_feature(enable = \"avx2\")]\n\
                   unsafe fn second(x: f64) -> f64 { x }";
        let tf = target_feature_fns(src);
        assert_eq!(tf.len(), 2, "{tf:?}");
        assert_eq!(tf[0].features, vec!["avx2", "fma"]);
        assert_eq!(tf[1].features, vec!["avx2"]);
    }

    #[test]
    fn plain_fns_have_no_target_feature_entry() {
        let tf = target_feature_fns("#[inline(always)]\nfn round(x: f64) -> f64 { x }");
        assert!(tf.is_empty(), "{tf:?}");
    }
}
