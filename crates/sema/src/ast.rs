//! The simplified syntax tree produced by [`crate::parser`].
//!
//! This is deliberately *not* a faithful Rust AST: it models exactly the
//! structure the S1–S4 rules need — item nesting, function signatures
//! and bodies, call/method-call/field/binary expressions, loops and the
//! blocks they own — and collapses everything else into
//! [`Expr::Opaque`]. Types are kept as flattened token text (enough for
//! `HashMap`/`BTreeMap` classification), patterns as the single bound
//! identifier when there is one.

/// What kind of item a node is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ItemKind {
    /// `fn` (free, impl or trait method with a body).
    Fn,
    /// `struct` definition (fields captured).
    Struct,
    /// `enum` definition.
    Enum,
    /// `trait` block (children are its methods).
    Trait,
    /// `impl` block (children are its methods).
    Impl,
    /// `mod name { … }` (children are its items).
    Mod,
    /// `use …;`
    Use,
    /// `const` / `static` item.
    Const,
    /// Anything else (`type`, `extern`, `macro_rules!`, …).
    Other,
}

/// One item: a function, type, module, impl block, …
#[derive(Debug, Clone)]
pub struct Item {
    /// Item kind.
    pub kind: ItemKind,
    /// Item name (`fn decide` → `decide`; impl blocks use the flattened
    /// self-type text; empty when anonymous).
    pub name: String,
    /// 1-based line of the introducing keyword.
    pub line: u32,
    /// Nested items (mod/impl/trait bodies).
    pub children: Vec<Item>,
    /// Function parameters as `(name, type-text)`; empty otherwise.
    pub params: Vec<(String, String)>,
    /// Struct fields as `(name, type-text)`; empty otherwise.
    pub fields: Vec<(String, String)>,
    /// Function body (or const/static initializer wrapped in a block).
    pub body: Option<Block>,
    /// Whether the item carried a `#[cfg(test)]` / `#[test]` attribute;
    /// rules skip such items (and everything nested inside them).
    pub cfg_test: bool,
    /// Flattened attribute text (`target_feature(enable = "avx2")`,
    /// `inline(always)`, …) — the tokens between `#[` and `]`, one
    /// string per attribute, in source order. S10 reads these.
    pub attrs: Vec<String>,
}

impl Item {
    /// A bare item of `kind` named `name` at `line`.
    pub fn new(kind: ItemKind, name: impl Into<String>, line: u32) -> Self {
        Item {
            kind,
            name: name.into(),
            line,
            children: Vec::new(),
            params: Vec::new(),
            fields: Vec::new(),
            body: None,
            cfg_test: false,
            attrs: Vec::new(),
        }
    }
}

/// A `{ … }` block: a sequence of statements.
#[derive(Debug, Clone, Default)]
pub struct Block {
    /// Statements in source order.
    pub stmts: Vec<Stmt>,
}

/// One statement.
#[derive(Debug, Clone)]
pub enum Stmt {
    /// `let name: ty = init;` — `name` empty for destructuring patterns.
    Let {
        /// Bound identifier (empty for tuple/struct patterns).
        name: String,
        /// Flattened type-annotation text, if any.
        ty: Option<String>,
        /// Initializer expression, if any.
        init: Option<Expr>,
        /// 1-based line of the `let`.
        line: u32,
    },
    /// An expression statement.
    Expr(Expr),
    /// A nested item (inner `fn`, `use`, …).
    Item(Item),
}

/// One (simplified) expression.
#[derive(Debug, Clone)]
pub enum Expr {
    /// A path: `x`, `self.x` is *not* a path (see [`Expr::Field`]),
    /// `invariant::check_simplex` → `["invariant", "check_simplex"]`.
    Path {
        /// `::`-separated segments.
        segs: Vec<String>,
        /// 1-based line of the first segment.
        line: u32,
    },
    /// A literal (number, string, char, bool is a Path).
    Lit {
        /// 1-based line.
        line: u32,
        /// Whether this is a float literal (`0.0`, `1e-9`, `2f64`);
        /// S9 uses this to classify accumulator initializers.
        float: bool,
    },
    /// `callee(args…)`.
    Call {
        /// The called expression (usually a path).
        callee: Box<Expr>,
        /// Arguments.
        args: Vec<Expr>,
        /// 1-based line of the opening paren.
        line: u32,
    },
    /// `recv.method::<T>(args…)`.
    MethodCall {
        /// Receiver expression.
        recv: Box<Expr>,
        /// Method name.
        method: String,
        /// Flattened turbofish text (`::<HashMap<_, _>>`), if present.
        turbofish: Option<String>,
        /// Arguments.
        args: Vec<Expr>,
        /// 1-based line of the method name.
        line: u32,
    },
    /// `recv.field` / `recv.0`.
    Field {
        /// Receiver expression.
        recv: Box<Expr>,
        /// Field name (or tuple index text).
        name: String,
        /// 1-based line of the field name.
        line: u32,
    },
    /// `recv[index]`.
    Index {
        /// Receiver expression.
        recv: Box<Expr>,
        /// Index expression.
        index: Box<Expr>,
    },
    /// `lhs op rhs` (including `+=`-style compound assignment and ranges).
    Binary {
        /// Operator text (`+`, `<=`, `+=`, `..`, …).
        op: String,
        /// Left operand.
        lhs: Box<Expr>,
        /// Right operand.
        rhs: Box<Expr>,
        /// 1-based line of the operator.
        line: u32,
    },
    /// `op expr` (`-x`, `!x`, `&x`, `*x`, `..x`).
    Unary {
        /// Operator text.
        op: String,
        /// Operand.
        expr: Box<Expr>,
    },
    /// `expr as Type`.
    Cast {
        /// The cast expression.
        expr: Box<Expr>,
        /// Flattened target-type text.
        ty: String,
    },
    /// `for pat in iter { body }`.
    For {
        /// Bound identifier(s) of the loop pattern (best effort).
        pat: Vec<String>,
        /// Iterated expression.
        iter: Box<Expr>,
        /// Loop body.
        body: Block,
        /// 1-based line of the `for`.
        line: u32,
    },
    /// `if cond { then } else { els }` (also `if let`; the pattern is
    /// dropped, the scrutinee becomes `cond`).
    If {
        /// Condition or `if let` scrutinee.
        cond: Box<Expr>,
        /// Then-block.
        then: Block,
        /// Else-block (an `else if` chain nests as an `If` expression
        /// statement inside this block).
        els: Option<Block>,
    },
    /// `while cond { body }` / `while let … { body }` / `loop { body }`
    /// (for `loop`, `cond` is `None`).
    While {
        /// Condition, if any.
        cond: Option<Box<Expr>>,
        /// Loop body.
        body: Block,
    },
    /// `match scrutinee { arms… }`; arm patterns are dropped, arm values
    /// are kept.
    Match {
        /// Matched expression.
        scrutinee: Box<Expr>,
        /// Arm value expressions.
        arms: Vec<Expr>,
    },
    /// A closure: `|params…| body` / `move |params…| body`.
    Closure {
        /// Bound parameter identifiers (best effort: idents in pattern
        /// position, including inside tuple/struct patterns).
        params: Vec<String>,
        /// Whether the closure takes ownership (`move |…| …`).
        is_move: bool,
        /// Closure body.
        body: Box<Expr>,
        /// 1-based line of the opening `|`.
        line: u32,
    },
    /// A block used as an expression (incl. `unsafe`/`async` blocks).
    BlockExpr(Block),
    /// A tuple `(a, b)` or parenthesized expression list.
    Tuple(Vec<Expr>),
    /// An array `[a, b]` / `[x; n]`.
    Array(Vec<Expr>),
    /// `Path { field: expr, … }`.
    StructLit {
        /// Struct path segments.
        segs: Vec<String>,
        /// Field initializer expressions (incl. a `..base`).
        fields: Vec<Expr>,
        /// 1-based line of the path.
        line: u32,
    },
    /// `name!(args…)` — arguments parsed best effort.
    MacroCall {
        /// Macro path segments.
        segs: Vec<String>,
        /// Recognizable expressions among the macro tokens.
        args: Vec<Expr>,
        /// 1-based line of the macro name.
        line: u32,
    },
    /// `return expr?` / `break expr?` / `continue`.
    Jump {
        /// Carried value, if any.
        expr: Option<Box<Expr>>,
    },
    /// Anything the parser does not model.
    Opaque,
}

impl Expr {
    /// The 1-based source line of this expression, when known.
    pub fn line(&self) -> Option<u32> {
        match self {
            Expr::Path { line, .. }
            | Expr::Lit { line, .. }
            | Expr::Call { line, .. }
            | Expr::MethodCall { line, .. }
            | Expr::Field { line, .. }
            | Expr::Binary { line, .. }
            | Expr::For { line, .. }
            | Expr::StructLit { line, .. }
            | Expr::MacroCall { line, .. }
            | Expr::Closure { line, .. } => Some(*line),
            Expr::Index { recv, .. } | Expr::Cast { expr: recv, .. } => recv.line(),
            Expr::Unary { expr, .. } => expr.line(),
            _ => None,
        }
    }
}

/// A parsed file: its top-level items.
#[derive(Debug, Clone, Default)]
pub struct File {
    /// Items in source order.
    pub items: Vec<Item>,
}

/// Calls `f` on `expr` and every expression nested inside it, including
/// those inside owned blocks (loop bodies, match arms, closures).
pub fn walk_exprs(expr: &Expr, f: &mut impl FnMut(&Expr)) {
    f(expr);
    match expr {
        Expr::Call { callee, args, .. } => {
            walk_exprs(callee, f);
            for a in args {
                walk_exprs(a, f);
            }
        }
        Expr::MethodCall { recv, args, .. } => {
            walk_exprs(recv, f);
            for a in args {
                walk_exprs(a, f);
            }
        }
        Expr::Field { recv, .. } => walk_exprs(recv, f),
        Expr::Index { recv, index } => {
            walk_exprs(recv, f);
            walk_exprs(index, f);
        }
        Expr::Binary { lhs, rhs, .. } => {
            walk_exprs(lhs, f);
            walk_exprs(rhs, f);
        }
        Expr::Unary { expr, .. } | Expr::Cast { expr, .. } | Expr::Closure { body: expr, .. } => {
            walk_exprs(expr, f)
        }
        Expr::For { iter, body, .. } => {
            walk_exprs(iter, f);
            walk_block(body, f);
        }
        Expr::If { cond, then, els } => {
            walk_exprs(cond, f);
            walk_block(then, f);
            if let Some(e) = els {
                walk_block(e, f);
            }
        }
        Expr::While { cond, body } => {
            if let Some(c) = cond {
                walk_exprs(c, f);
            }
            walk_block(body, f);
        }
        Expr::Match { scrutinee, arms } => {
            walk_exprs(scrutinee, f);
            for a in arms {
                walk_exprs(a, f);
            }
        }
        Expr::BlockExpr(b) => walk_block(b, f),
        Expr::Tuple(xs) | Expr::Array(xs) => {
            for x in xs {
                walk_exprs(x, f);
            }
        }
        Expr::StructLit { fields, .. } => {
            for x in fields {
                walk_exprs(x, f);
            }
        }
        Expr::MacroCall { args, .. } => {
            for x in args {
                walk_exprs(x, f);
            }
        }
        Expr::Jump { expr: Some(e) } => walk_exprs(e, f),
        Expr::Path { .. } | Expr::Lit { .. } | Expr::Jump { expr: None } | Expr::Opaque => {}
    }
}

/// Calls `f` on every expression in `block` (recursively), including
/// `let` initializers and nested items' bodies.
pub fn walk_block(block: &Block, f: &mut impl FnMut(&Expr)) {
    for stmt in &block.stmts {
        match stmt {
            Stmt::Let { init, .. } => {
                if let Some(e) = init {
                    walk_exprs(e, f);
                }
            }
            Stmt::Expr(e) => walk_exprs(e, f),
            Stmt::Item(item) => walk_item_exprs(item, f),
        }
    }
}

/// Calls `f` on every expression inside `item` (function bodies,
/// nested modules/impls, const initializers).
pub fn walk_item_exprs(item: &Item, f: &mut impl FnMut(&Expr)) {
    if let Some(b) = &item.body {
        walk_block(b, f);
    }
    for child in &item.children {
        walk_item_exprs(child, f);
    }
}

/// Calls `f` on every `fn` item in `items`, recursing through modules,
/// impls and traits.
pub fn walk_fns<'a>(items: &'a [Item], f: &mut impl FnMut(&'a Item)) {
    for item in items {
        if item.kind == ItemKind::Fn {
            f(item);
        }
        walk_fns(&item.children, f);
        // Nested fns inside bodies.
        if let Some(b) = &item.body {
            walk_block_fns(b, f);
        }
    }
}

fn walk_block_fns<'a>(block: &'a Block, f: &mut impl FnMut(&'a Item)) {
    for stmt in &block.stmts {
        if let Stmt::Item(item) = stmt {
            walk_fns(std::slice::from_ref(item), f);
        }
    }
}
