//! Recursive-descent parser over the [`crate::lexer`] token stream.
//!
//! Two properties dominate every other concern here:
//!
//! 1. **Total**: the parser never panics and always terminates, on *any*
//!    token stream (enforced by proptest). Every loop either advances the
//!    cursor or returns; recursion is capped by [`MAX_DEPTH`], beyond
//!    which balanced token groups are skimmed iteratively.
//! 2. **Recovering**: unknown constructs degrade to [`Expr::Opaque`] /
//!    skipped tokens instead of failing the file — a lint must keep
//!    scanning the 95% it understands.
//!
//! The grammar subset is what the S-rules need: item structure with
//! nesting, `fn` signatures (param names + flattened type text), struct
//! fields, and bodies parsed into the simplified [`crate::ast`]
//! expression forms (calls, method calls with turbofish, field access,
//! binary/unary operators, loops, `if`/`match` and closures).

use crate::ast::{Block, Expr, File, Item, ItemKind, Stmt};
use crate::lexer::{lex, Tok, TokKind};

/// Recursion cap: beyond this depth balanced groups are skimmed flat.
const MAX_DEPTH: u32 = 64;

/// Parses `src` into a simplified [`File`].
pub fn parse_source(src: &str) -> File {
    parse_tokens(&lex(src).toks)
}

/// Parses an already-lexed token stream.
pub fn parse_tokens(toks: &[Tok]) -> File {
    let mut p = Parser {
        toks,
        pos: 0,
        depth: 0,
        pending_attrs: Vec::new(),
    };
    File {
        items: p.parse_items(true),
    }
}

struct Parser<'a> {
    toks: &'a [Tok],
    pos: usize,
    depth: u32,
    /// Flattened text of the attributes consumed by the most recent
    /// [`Parser::skip_attrs_and_vis`] call (see [`Item::attrs`]).
    pending_attrs: Vec<String>,
}

impl<'a> Parser<'a> {
    // ----- cursor primitives -------------------------------------------

    fn peek(&self) -> Option<&'a Tok> {
        self.toks.get(self.pos)
    }

    fn peek_at(&self, off: usize) -> Option<&'a Tok> {
        self.toks.get(self.pos + off)
    }

    fn bump(&mut self) -> Option<&'a Tok> {
        let t = self.toks.get(self.pos);
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn at_punct(&self, s: &str) -> bool {
        self.peek()
            .is_some_and(|t| t.kind == TokKind::Punct && t.text == s)
    }

    fn at_ident(&self, s: &str) -> bool {
        self.peek()
            .is_some_and(|t| t.kind == TokKind::Ident && t.text == s)
    }

    fn eat_punct(&mut self, s: &str) -> bool {
        if self.at_punct(s) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn eat_ident(&mut self, s: &str) -> bool {
        if self.at_ident(s) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn line(&self) -> u32 {
        self.peek().map_or(0, |t| t.line)
    }

    /// Skips one balanced group if the cursor sits on an opening
    /// delimiter, else skips one token. Iterative, so safe at any depth.
    fn skim_group_or_token(&mut self) {
        let (open, close) = match self.peek() {
            Some(t) if t.kind == TokKind::Punct => match t.text.as_str() {
                "(" => ("(", ")"),
                "[" => ("[", "]"),
                "{" => ("{", "}"),
                _ => {
                    self.pos += 1;
                    return;
                }
            },
            Some(_) => {
                self.pos += 1;
                return;
            }
            None => return,
        };
        let mut depth = 0usize;
        while let Some(t) = self.bump() {
            if t.kind == TokKind::Punct {
                if t.text == open {
                    depth += 1;
                } else if t.text == close {
                    depth -= 1;
                    if depth == 0 {
                        return;
                    }
                }
            }
        }
    }

    /// Skips tokens until `stop` at delimiter depth 0 (consuming the
    /// `stop` token), or until an unbalanced closer/EOF (not consumed).
    fn skip_until_top(&mut self, stop: &str) {
        while let Some(t) = self.peek() {
            if t.kind == TokKind::Punct {
                match t.text.as_str() {
                    s if s == stop => {
                        self.pos += 1;
                        return;
                    }
                    "(" | "[" | "{" => {
                        self.skim_group_or_token();
                        continue;
                    }
                    ")" | "]" | "}" => return,
                    _ => {}
                }
            }
            self.pos += 1;
        }
    }

    // ----- items -------------------------------------------------------

    /// Parses items until EOF (`top` true) or a closing `}`.
    fn parse_items(&mut self, top: bool) -> Vec<Item> {
        let mut items = Vec::new();
        loop {
            match self.peek() {
                None => return items,
                Some(t) if t.kind == TokKind::Punct && t.text == "}" => {
                    if top {
                        self.pos += 1; // stray closer at top level: skip
                        continue;
                    }
                    return items;
                }
                _ => {}
            }
            let before = self.pos;
            if let Some(item) = self.parse_item() {
                items.push(item);
            }
            if self.pos == before {
                self.pos += 1; // always make progress
            }
        }
    }

    /// Parses one item, or returns `None` after skipping noise.
    fn parse_item(&mut self) -> Option<Item> {
        let is_test = self.skip_attrs_and_vis();
        let mut attrs = std::mem::take(&mut self.pending_attrs);
        let mut parsed = self.parse_item_after_attrs();
        if let Some(item) = parsed.as_mut() {
            item.cfg_test |= is_test;
            // `parse_item_after_attrs` may have consumed (and attached)
            // further attributes of its own; ours come first.
            attrs.append(&mut item.attrs);
            item.attrs = attrs;
        }
        parsed
    }

    fn parse_item_after_attrs(&mut self) -> Option<Item> {
        let _ = self.skip_attrs_and_vis();
        let attrs = std::mem::take(&mut self.pending_attrs);
        let mut parsed = self.parse_item_dispatch();
        if let Some(item) = parsed.as_mut() {
            item.attrs = attrs;
        }
        parsed
    }

    fn parse_item_dispatch(&mut self) -> Option<Item> {
        // Modifier keywords in front of `fn` / `impl` / `trait`.
        while self.at_ident("unsafe")
            || self.at_ident("async")
            || self.at_ident("default")
            || (self.at_ident("extern")
                && self
                    .peek_at(1)
                    .is_some_and(|t| t.kind == TokKind::Str || t.text == "fn"))
        {
            self.pos += 1;
            // `extern "C"` string
            if self.peek().is_some_and(|t| t.kind == TokKind::Str) {
                self.pos += 1;
            }
        }
        let t = self.peek()?;
        if t.kind != TokKind::Ident {
            return None; // caller skips one token
        }
        let line = t.line;
        match t.text.as_str() {
            "fn" => {
                self.pos += 1;
                Some(self.parse_fn(line))
            }
            "mod" => {
                self.pos += 1;
                let name = self.bump_ident_text();
                let mut item = Item::new(ItemKind::Mod, name, line);
                if self.eat_punct("{") {
                    item.children = self.parse_items(false);
                    self.eat_punct("}");
                } else {
                    self.skip_until_top(";");
                }
                Some(item)
            }
            "struct" => {
                self.pos += 1;
                let name = self.bump_ident_text();
                let mut item = Item::new(ItemKind::Struct, name, line);
                self.skip_generics();
                self.skip_where_clause();
                if self.eat_punct("{") {
                    item.fields = self.parse_fields();
                    self.eat_punct("}");
                } else {
                    // tuple struct `(…);` or unit struct `;`
                    if self.at_punct("(") {
                        self.skim_group_or_token();
                    }
                    self.skip_until_top(";");
                }
                Some(item)
            }
            "enum" | "union" => {
                let kind = if t.text == "enum" {
                    ItemKind::Enum
                } else {
                    ItemKind::Other
                };
                self.pos += 1;
                let name = self.bump_ident_text();
                let item = Item::new(kind, name, line);
                self.skip_generics();
                self.skip_where_clause();
                if self.at_punct("{") {
                    self.skim_group_or_token();
                } else {
                    self.skip_until_top(";");
                }
                Some(item)
            }
            "trait" => {
                self.pos += 1;
                let name = self.bump_ident_text();
                let mut item = Item::new(ItemKind::Trait, name, line);
                self.consume_until_body_or_semi();
                if self.eat_punct("{") {
                    item.children = self.parse_items(false);
                    self.eat_punct("}");
                }
                Some(item)
            }
            "impl" => {
                self.pos += 1;
                let name = self.consume_until_body_or_semi();
                let mut item = Item::new(ItemKind::Impl, name, line);
                if self.eat_punct("{") {
                    item.children = self.parse_items(false);
                    self.eat_punct("}");
                }
                Some(item)
            }
            "use" => {
                self.pos += 1;
                let mut text = String::new();
                while let Some(t) = self.peek() {
                    if t.kind == TokKind::Punct && t.text == ";" {
                        self.pos += 1;
                        break;
                    }
                    if t.kind == TokKind::Punct && (t.text == "}" || t.text == "{") {
                        self.skim_group_or_token();
                        continue;
                    }
                    if !text.is_empty() {
                        text.push(' ');
                    }
                    text.push_str(&t.text);
                    self.pos += 1;
                }
                Some(Item::new(ItemKind::Use, text, line))
            }
            "const" | "static" => {
                self.pos += 1;
                self.eat_ident("mut");
                // `const fn` — re-dispatch.
                if self.at_ident("fn") {
                    self.pos += 1;
                    return Some(self.parse_fn(line));
                }
                let name = self.bump_ident_text();
                let mut item = Item::new(ItemKind::Const, name, line);
                if self.eat_punct(":") {
                    self.consume_type_text(&[";", "="]);
                }
                if self.eat_punct("=") {
                    let init = self.parse_expr(true);
                    item.body = Some(Block {
                        stmts: vec![Stmt::Expr(init)],
                    });
                }
                self.skip_until_top(";");
                Some(item)
            }
            "type" => {
                self.pos += 1;
                let name = self.bump_ident_text();
                self.skip_until_top(";");
                Some(Item::new(ItemKind::Other, name, line))
            }
            "macro_rules" => {
                self.pos += 1;
                self.eat_punct("!");
                let name = self.bump_ident_text();
                if self.at_punct("{") || self.at_punct("(") || self.at_punct("[") {
                    self.skim_group_or_token();
                }
                self.eat_punct(";");
                Some(Item::new(ItemKind::Other, name, line))
            }
            "extern" => {
                // `extern crate x;` or `extern { … }`
                self.pos += 1;
                if self.peek().is_some_and(|t| t.kind == TokKind::Str) {
                    self.pos += 1;
                }
                if self.at_punct("{") {
                    self.skim_group_or_token();
                } else {
                    self.skip_until_top(";");
                }
                Some(Item::new(ItemKind::Other, "extern", line))
            }
            _ => None, // not an item keyword; caller skips one token
        }
    }

    /// Parses a `fn` from just after the `fn` keyword.
    fn parse_fn(&mut self, line: u32) -> Item {
        let name = self.bump_ident_text();
        let mut item = Item::new(ItemKind::Fn, name, line);
        self.skip_generics();
        if self.at_punct("(") {
            item.params = self.parse_params();
        }
        // Return type / where clause, up to body or `;`.
        self.consume_until_body_or_semi();
        if self.eat_punct("{") {
            item.body = Some(self.parse_block_inner());
        } else {
            self.eat_punct(";");
        }
        item
    }

    /// Parses `(name: Type, …)` capturing `(name, flattened-type)` pairs.
    fn parse_params(&mut self) -> Vec<(String, String)> {
        let mut params = Vec::new();
        if !self.eat_punct("(") {
            return params;
        }
        loop {
            match self.peek() {
                None => return params,
                Some(t) if t.kind == TokKind::Punct && t.text == ")" => {
                    self.pos += 1;
                    return params;
                }
                _ => {}
            }
            let before = self.pos;
            // Pattern side: attributes, `mut x`, `&self`, `self`, …
            self.skip_attrs_and_vis();
            self.eat_ident("mut");
            let mut name = String::new();
            if let Some(t) = self.peek() {
                if t.kind == TokKind::Ident && self.peek_at(1).is_some_and(|n| n.text == ":") {
                    name = t.text.clone();
                    self.pos += 2; // ident and `:`
                    let ty = self.consume_type_text(&[",", ")"]);
                    params.push((name.clone(), ty));
                    self.eat_punct(",");
                    continue;
                }
            }
            let _ = name;
            // `self`, `&mut self`, destructuring patterns, …: skip to
            // the next top-level `,` or the closing paren.
            while let Some(t) = self.peek() {
                if t.kind == TokKind::Punct {
                    match t.text.as_str() {
                        "," => {
                            self.pos += 1;
                            break;
                        }
                        ")" => break,
                        "(" | "[" | "{" => {
                            self.skim_group_or_token();
                            continue;
                        }
                        "<" => {
                            self.skip_generics();
                            continue;
                        }
                        _ => {}
                    }
                }
                self.pos += 1;
            }
            if self.pos == before {
                self.pos += 1;
            }
        }
    }

    /// Parses `{ name: Type, … }` struct fields (already past the `{`).
    fn parse_fields(&mut self) -> Vec<(String, String)> {
        let mut fields = Vec::new();
        loop {
            match self.peek() {
                None => return fields,
                Some(t) if t.kind == TokKind::Punct && t.text == "}" => return fields,
                _ => {}
            }
            let before = self.pos;
            self.skip_attrs_and_vis();
            if let Some(t) = self.peek() {
                if t.kind == TokKind::Ident && self.peek_at(1).is_some_and(|n| n.text == ":") {
                    let name = t.text.clone();
                    self.pos += 2;
                    let ty = self.consume_type_text(&[",", "}"]);
                    fields.push((name, ty));
                    self.eat_punct(",");
                    continue;
                }
            }
            self.skip_until_top(",");
            if self.pos == before {
                self.pos += 1;
            }
        }
    }

    /// Skips `#[…]` / `#![…]` attributes and `pub((…))?` visibility.
    /// Returns `true` when an attribute mentions `test` (`#[test]`,
    /// `#[cfg(test)]`, `#[cfg(all(test, …))]`). Flattened attribute
    /// text is collected into [`Parser::pending_attrs`] (cleared on
    /// entry); item parsing attaches it, other call sites discard it.
    fn skip_attrs_and_vis(&mut self) -> bool {
        let mut is_test = false;
        self.pending_attrs.clear();
        loop {
            if self.at_punct("#") {
                self.pos += 1;
                self.eat_punct("!");
                if self.at_punct("[") {
                    let start = self.pos;
                    self.skim_group_or_token();
                    let inner = &self.toks[start..self.pos];
                    if inner
                        .iter()
                        .any(|t| t.kind == TokKind::Ident && t.text == "test")
                    {
                        is_test = true;
                    }
                    // Strip the outer `[` `]`; string-literal tokens
                    // carry no text and are dropped from the flattening.
                    let flat: Vec<&str> = inner
                        .iter()
                        .skip(1)
                        .take(inner.len().saturating_sub(2))
                        .map(|t| t.text.as_str())
                        .filter(|s| !s.is_empty())
                        .collect();
                    if !flat.is_empty() {
                        self.pending_attrs.push(flat.join(" "));
                    }
                }
                continue;
            }
            if self.at_ident("pub") {
                self.pos += 1;
                if self.at_punct("(") {
                    self.skim_group_or_token();
                }
                continue;
            }
            return is_test;
        }
    }

    /// Skips a `<…>` generics group if present (angle-depth matched,
    /// shift-operator aware).
    fn skip_generics(&mut self) {
        if !self.at_punct("<") {
            return;
        }
        let mut depth = 0isize;
        while let Some(t) = self.peek() {
            if t.kind == TokKind::Punct {
                match t.text.as_str() {
                    "<" => depth += 1,
                    ">" => {
                        depth -= 1;
                        if depth <= 0 {
                            self.pos += 1;
                            return;
                        }
                    }
                    "<<" => depth += 2,
                    ">>" => {
                        depth -= 2;
                        if depth <= 0 {
                            self.pos += 1;
                            return;
                        }
                    }
                    "(" | "[" | "{" => {
                        self.skim_group_or_token();
                        continue;
                    }
                    ";" => return, // runaway: unclosed generics
                    _ => {}
                }
            }
            self.pos += 1;
        }
    }

    /// Skips a `where` clause if present (consumes up to, not including,
    /// `{` or `;`).
    fn skip_where_clause(&mut self) {
        if !self.at_ident("where") {
            return;
        }
        while let Some(t) = self.peek() {
            if t.kind == TokKind::Punct {
                match t.text.as_str() {
                    "{" | ";" | "}" => return,
                    "(" | "[" => {
                        self.skim_group_or_token();
                        continue;
                    }
                    "<" => {
                        self.skip_generics();
                        continue;
                    }
                    _ => {}
                }
            }
            self.pos += 1;
        }
    }

    /// Consumes tokens up to (not including) a body `{` or past a `;`,
    /// returning the flattened text (used for impl headers and return
    /// types).
    fn consume_until_body_or_semi(&mut self) -> String {
        let mut text = String::new();
        while let Some(t) = self.peek() {
            if t.kind == TokKind::Punct {
                match t.text.as_str() {
                    "{" => return text,
                    "}" => return text,
                    ";" => {
                        return text;
                    }
                    "(" | "[" => {
                        self.skim_group_or_token();
                        if !text.is_empty() {
                            text.push(' ');
                        }
                        text.push_str("()");
                        continue;
                    }
                    "<" => {
                        self.skip_generics();
                        continue;
                    }
                    _ => {}
                }
            }
            if !text.is_empty() {
                text.push(' ');
            }
            text.push_str(&t.text);
            self.pos += 1;
        }
        text
    }

    /// Consumes type tokens until one of `stops` at depth 0 (not
    /// consumed), returning the flattened type text.
    fn consume_type_text(&mut self, stops: &[&str]) -> String {
        let mut text = String::new();
        loop {
            let Some(t) = self.peek() else { return text };
            if t.kind == TokKind::Punct {
                let s = t.text.as_str();
                if stops.contains(&s) || s == "}" || s == ")" || s == ";" {
                    return text;
                }
                match s {
                    "<" => {
                        // Capture generics text (flattened) for HashMap<…>.
                        let start = self.pos;
                        self.skip_generics();
                        for tok in &self.toks[start..self.pos] {
                            if !text.is_empty() {
                                text.push(' ');
                            }
                            text.push_str(&tok.text);
                        }
                        continue;
                    }
                    "(" | "[" => {
                        let start = self.pos;
                        self.skim_group_or_token();
                        for tok in &self.toks[start..self.pos] {
                            if !text.is_empty() {
                                text.push(' ');
                            }
                            text.push_str(&tok.text);
                        }
                        continue;
                    }
                    _ => {}
                }
            }
            if !text.is_empty() {
                text.push(' ');
            }
            text.push_str(&t.text);
            self.pos += 1;
        }
    }

    // ----- statements and blocks --------------------------------------

    /// Parses a block body, assuming the opening `{` is already consumed.
    /// Consumes the closing `}` when present.
    fn parse_block_inner(&mut self) -> Block {
        if self.depth >= MAX_DEPTH {
            // Too deep: skim the rest of the group flat.
            let mut depth = 1usize;
            while let Some(t) = self.bump() {
                if t.kind == TokKind::Punct {
                    if t.text == "{" {
                        depth += 1;
                    } else if t.text == "}" {
                        depth -= 1;
                        if depth == 0 {
                            break;
                        }
                    }
                }
            }
            return Block::default();
        }
        self.depth += 1;
        let mut block = Block::default();
        loop {
            match self.peek() {
                None => break,
                Some(t) if t.kind == TokKind::Punct && t.text == "}" => {
                    self.pos += 1;
                    break;
                }
                _ => {}
            }
            let before = self.pos;
            if let Some(stmt) = self.parse_stmt() {
                block.stmts.push(stmt);
            }
            if self.pos == before {
                self.pos += 1;
            }
        }
        self.depth -= 1;
        block
    }

    fn parse_stmt(&mut self) -> Option<Stmt> {
        self.skip_attrs_and_vis();
        let t = self.peek()?;
        if t.kind == TokKind::Punct && t.text == ";" {
            self.pos += 1;
            return None;
        }
        if t.kind == TokKind::Ident {
            match t.text.as_str() {
                "let" => return Some(self.parse_let()),
                "fn" | "struct" | "enum" | "union" | "trait" | "impl" | "mod" | "use" | "type"
                | "macro_rules" | "extern" => {
                    let item = self.parse_item()?;
                    return Some(Stmt::Item(item));
                }
                // `const X: T = …;` item — but NOT `const` in other
                // positions; peek for `ident :` or `fn`.
                "const" | "static"
                    if self
                        .peek_at(1)
                        .is_some_and(|n| n.kind == TokKind::Ident || n.text == "fn") =>
                {
                    let item = self.parse_item()?;
                    return Some(Stmt::Item(item));
                }
                _ => {}
            }
        }
        let expr = self.parse_expr(true);
        self.eat_punct(";");
        Some(Stmt::Expr(expr))
    }

    fn parse_let(&mut self) -> Stmt {
        let line = self.line();
        self.pos += 1; // `let`
        self.eat_ident("mut");
        let mut name = String::new();
        // Single-identifier pattern (the common case we model).
        if let Some(t) = self.peek() {
            if t.kind == TokKind::Ident
                && self
                    .peek_at(1)
                    .is_some_and(|n| matches!(n.text.as_str(), ":" | "=" | ";"))
            {
                name = t.text.clone();
                self.pos += 1;
            }
        }
        if name.is_empty() {
            // Destructuring or path pattern: skip to `:`/`=`/`;` at depth 0.
            while let Some(t) = self.peek() {
                if t.kind == TokKind::Punct {
                    match t.text.as_str() {
                        ":" | "=" | ";" | "}" => break,
                        "(" | "[" | "{" => {
                            self.skim_group_or_token();
                            continue;
                        }
                        "<" => {
                            self.skip_generics();
                            continue;
                        }
                        _ => {}
                    }
                }
                self.pos += 1;
            }
        }
        let ty = if self.eat_punct(":") {
            Some(self.consume_type_text(&["=", ";"]))
        } else {
            None
        };
        let init = if self.eat_punct("=") {
            Some(self.parse_expr(true))
        } else {
            None
        };
        // let-else
        if self.eat_ident("else") && self.eat_punct("{") {
            let _ = self.parse_block_inner();
        }
        self.eat_punct(";");
        Stmt::Let {
            name,
            ty,
            init,
            line,
        }
    }

    // ----- expressions -------------------------------------------------

    /// Pratt expression parser. `allow_struct` gates `Path { … }` struct
    /// literals (off inside `if`/`while`/`for`/`match` heads).
    fn parse_expr(&mut self, allow_struct: bool) -> Expr {
        if self.depth >= MAX_DEPTH {
            self.skim_group_or_token();
            return Expr::Opaque;
        }
        self.depth += 1;
        let e = self.parse_assign(allow_struct);
        self.depth -= 1;
        e
    }

    fn parse_assign(&mut self, allow_struct: bool) -> Expr {
        let lhs = self.parse_range(allow_struct);
        if let Some(t) = self.peek() {
            if t.kind == TokKind::Punct
                && matches!(
                    t.text.as_str(),
                    "=" | "+=" | "-=" | "*=" | "/=" | "%=" | "^=" | "&=" | "|=" | "<<=" | ">>="
                )
            {
                let op = t.text.clone();
                let line = t.line;
                self.pos += 1;
                let rhs = self.parse_expr(allow_struct);
                return Expr::Binary {
                    op,
                    lhs: Box::new(lhs),
                    rhs: Box::new(rhs),
                    line,
                };
            }
        }
        lhs
    }

    fn parse_range(&mut self, allow_struct: bool) -> Expr {
        let lhs = self.parse_binary(0, allow_struct);
        if let Some(t) = self.peek() {
            if t.kind == TokKind::Punct && (t.text == ".." || t.text == "..=") {
                let op = t.text.clone();
                let line = t.line;
                self.pos += 1;
                // Open-ended range: `a..` — only parse a RHS when one
                // can start here.
                if self.can_start_expr() {
                    let rhs = self.parse_binary(0, allow_struct);
                    return Expr::Binary {
                        op,
                        lhs: Box::new(lhs),
                        rhs: Box::new(rhs),
                        line,
                    };
                }
                return Expr::Unary {
                    op,
                    expr: Box::new(lhs),
                };
            }
        }
        lhs
    }

    fn can_start_expr(&self) -> bool {
        match self.peek() {
            None => false,
            Some(t) => match t.kind {
                TokKind::Ident => !matches!(t.text.as_str(), "in" | "else" | "where" | "as"),
                TokKind::Int | TokKind::Float | TokKind::Str => true,
                TokKind::Lifetime => false,
                TokKind::Punct => matches!(
                    t.text.as_str(),
                    "(" | "[" | "{" | "-" | "!" | "*" | "&" | "|" | "||" | ".."
                ),
            },
        }
    }

    /// Binary operator precedence (higher binds tighter).
    fn bin_prec(op: &str) -> Option<u8> {
        Some(match op {
            "||" => 1,
            "&&" => 2,
            "==" | "!=" | "<" | ">" | "<=" | ">=" => 3,
            "|" => 4,
            "^" => 5,
            "&" => 6,
            "<<" | ">>" => 7,
            "+" | "-" => 8,
            "*" | "/" | "%" => 9,
            _ => return None,
        })
    }

    fn parse_binary(&mut self, min_prec: u8, allow_struct: bool) -> Expr {
        let mut lhs = self.parse_unary(allow_struct);
        loop {
            let Some(t) = self.peek() else { return lhs };
            if t.kind != TokKind::Punct {
                return lhs;
            }
            let Some(prec) = Self::bin_prec(&t.text) else {
                return lhs;
            };
            if prec < min_prec {
                return lhs;
            }
            let op = t.text.clone();
            let line = t.line;
            self.pos += 1;
            if !self.can_start_expr() {
                // `x & ` at EOF or before a closer: treat as unary-ish.
                return Expr::Unary {
                    op,
                    expr: Box::new(lhs),
                };
            }
            let rhs = self.parse_binary(prec + 1, allow_struct);
            lhs = Expr::Binary {
                op,
                lhs: Box::new(lhs),
                rhs: Box::new(rhs),
                line,
            };
        }
    }

    fn parse_unary(&mut self, allow_struct: bool) -> Expr {
        if let Some(t) = self.peek() {
            if t.kind == TokKind::Punct && matches!(t.text.as_str(), "-" | "!" | "*" | "&") {
                let mut op = t.text.clone();
                self.pos += 1;
                // Preserve `&mut` (the capture analysis needs it); other
                // `mut`-after-op forms are still silently eaten.
                if self.eat_ident("mut") && op == "&" {
                    op.push_str("mut");
                }
                if !self.can_start_expr() {
                    return Expr::Opaque;
                }
                let expr = self.parse_unary(allow_struct);
                return Expr::Unary {
                    op,
                    expr: Box::new(expr),
                };
            }
        }
        self.parse_postfix(allow_struct)
    }

    fn parse_postfix(&mut self, allow_struct: bool) -> Expr {
        let mut expr = self.parse_primary(allow_struct);
        loop {
            let Some(t) = self.peek() else { return expr };
            if t.kind != TokKind::Punct {
                // `expr as Type`
                if t.kind == TokKind::Ident && t.text == "as" {
                    self.pos += 1;
                    let ty = self.consume_cast_type();
                    expr = Expr::Cast {
                        expr: Box::new(expr),
                        ty,
                    };
                    continue;
                }
                return expr;
            }
            match t.text.as_str() {
                "." => {
                    let Some(next) = self.peek_at(1) else {
                        self.pos += 1;
                        return expr;
                    };
                    match next.kind {
                        TokKind::Ident if next.text == "await" => {
                            self.pos += 2;
                        }
                        TokKind::Ident => {
                            let method = next.text.clone();
                            let line = next.line;
                            self.pos += 2;
                            // Optional turbofish `::<…>`.
                            let mut turbofish = None;
                            if self.at_punct("::") && self.peek_at(1).is_some_and(|t| t.text == "<")
                            {
                                self.pos += 1;
                                let start = self.pos;
                                self.skip_generics();
                                let text: Vec<&str> = self.toks[start..self.pos]
                                    .iter()
                                    .map(|t| t.text.as_str())
                                    .collect();
                                turbofish = Some(text.join(" "));
                            }
                            if self.at_punct("(") {
                                let args = self.parse_call_args();
                                expr = Expr::MethodCall {
                                    recv: Box::new(expr),
                                    method,
                                    turbofish,
                                    args,
                                    line,
                                };
                            } else {
                                expr = Expr::Field {
                                    recv: Box::new(expr),
                                    name: method,
                                    line,
                                };
                            }
                        }
                        TokKind::Int => {
                            // tuple index `.0`
                            let name = next.text.clone();
                            let line = next.line;
                            self.pos += 2;
                            expr = Expr::Field {
                                recv: Box::new(expr),
                                name,
                                line,
                            };
                        }
                        _ => {
                            self.pos += 1;
                        }
                    }
                }
                "(" => {
                    let line = t.line;
                    let args = self.parse_call_args();
                    expr = Expr::Call {
                        callee: Box::new(expr),
                        args,
                        line,
                    };
                }
                "[" => {
                    self.pos += 1;
                    let index = if self.at_punct("]") {
                        Expr::Opaque
                    } else {
                        self.parse_expr(true)
                    };
                    self.skip_until_top("]");
                    expr = Expr::Index {
                        recv: Box::new(expr),
                        index: Box::new(index),
                    };
                }
                "?" => {
                    self.pos += 1;
                }
                _ => return expr,
            }
        }
    }

    /// Parses `(a, b, …)` call arguments, assuming the cursor is at `(`.
    fn parse_call_args(&mut self) -> Vec<Expr> {
        let mut args = Vec::new();
        if !self.eat_punct("(") {
            return args;
        }
        loop {
            match self.peek() {
                None => return args,
                Some(t) if t.kind == TokKind::Punct && t.text == ")" => {
                    self.pos += 1;
                    return args;
                }
                _ => {}
            }
            let before = self.pos;
            args.push(self.parse_expr(true));
            self.eat_punct(",");
            if self.pos == before {
                self.pos += 1; // unparseable token: recover
            }
        }
    }

    /// Parses closure parameters, assuming the cursor is just past the
    /// opening `|`. Collects the bound identifiers best-effort —
    /// including those inside tuple/struct patterns, skipping
    /// `mut`/`ref`/`_` — and stops after the closing `|` at depth 0.
    /// Type-annotation text after a `:` is skimmed, not collected (a
    /// type name must not masquerade as a binding).
    fn parse_closure_params(&mut self) -> Vec<String> {
        let mut params = Vec::new();
        let mut depth = 0usize; // (), [], {} nesting inside patterns
        let mut in_type = false; // between `:` and the next `,` at depth 0
        while let Some(t) = self.peek() {
            if t.kind == TokKind::Punct {
                match t.text.as_str() {
                    "|" if depth == 0 => {
                        self.pos += 1;
                        return params;
                    }
                    "(" | "[" | "{" => {
                        if in_type {
                            self.skim_group_or_token();
                            continue;
                        }
                        depth += 1;
                    }
                    ")" | "]" | "}" => {
                        if depth == 0 {
                            return params; // runaway: an enclosing closer
                        }
                        depth -= 1;
                    }
                    ";" if depth == 0 => return params, // runaway
                    ":" if depth == 0 => in_type = true,
                    "," if depth == 0 => in_type = false,
                    "<" if in_type => {
                        self.skip_generics();
                        continue;
                    }
                    _ => {}
                }
            } else if t.kind == TokKind::Ident
                && !in_type
                && !matches!(t.text.as_str(), "mut" | "ref" | "_" | "move")
            {
                params.push(t.text.clone());
            }
            self.pos += 1;
        }
        params
    }

    /// Best-effort type consumption after `as` (stops at any token that
    /// cannot continue a type).
    fn consume_cast_type(&mut self) -> String {
        let mut text = String::new();
        loop {
            let Some(t) = self.peek() else { return text };
            match t.kind {
                TokKind::Ident
                    if !matches!(t.text.as_str(), "as" | "in" | "else" | "if" | "match") =>
                {
                    if !text.is_empty() {
                        text.push(' ');
                    }
                    text.push_str(&t.text);
                    self.pos += 1;
                }
                TokKind::Lifetime => {
                    self.pos += 1;
                }
                TokKind::Punct => match t.text.as_str() {
                    "::" | "&" | "*" => {
                        if !text.is_empty() {
                            text.push(' ');
                        }
                        text.push_str(&t.text);
                        self.pos += 1;
                    }
                    "<" => {
                        self.skip_generics();
                    }
                    _ => return text,
                },
                _ => return text,
            }
        }
    }

    fn parse_primary(&mut self, allow_struct: bool) -> Expr {
        let Some(t) = self.peek() else {
            return Expr::Opaque;
        };
        let line = t.line;
        match t.kind {
            TokKind::Int | TokKind::Float | TokKind::Str => {
                let float = t.kind == TokKind::Float;
                self.pos += 1;
                Expr::Lit { line, float }
            }
            TokKind::Lifetime => {
                // Loop label `'a: loop { … }` — skip label and colon.
                self.pos += 1;
                self.eat_punct(":");
                self.parse_primary(allow_struct)
            }
            TokKind::Punct => match t.text.as_str() {
                "(" => {
                    self.pos += 1;
                    let mut items = Vec::new();
                    loop {
                        match self.peek() {
                            None => break,
                            Some(t) if t.kind == TokKind::Punct && t.text == ")" => {
                                self.pos += 1;
                                break;
                            }
                            _ => {}
                        }
                        let before = self.pos;
                        items.push(self.parse_expr(true));
                        self.eat_punct(",");
                        if self.pos == before {
                            self.pos += 1;
                        }
                    }
                    if items.len() == 1 {
                        match items.pop() {
                            Some(e) => e,
                            None => Expr::Opaque,
                        }
                    } else {
                        Expr::Tuple(items)
                    }
                }
                "[" => {
                    self.pos += 1;
                    let mut items = Vec::new();
                    loop {
                        match self.peek() {
                            None => break,
                            Some(t) if t.kind == TokKind::Punct && t.text == "]" => {
                                self.pos += 1;
                                break;
                            }
                            _ => {}
                        }
                        let before = self.pos;
                        items.push(self.parse_expr(true));
                        // `[x; n]` repeat syntax or `,` separators.
                        if !self.eat_punct(",") {
                            self.eat_punct(";");
                        }
                        if self.pos == before {
                            self.pos += 1;
                        }
                    }
                    Expr::Array(items)
                }
                "{" => {
                    self.pos += 1;
                    Expr::BlockExpr(self.parse_block_inner())
                }
                "|" | "||" => {
                    // Closure args.
                    let mut params = Vec::new();
                    if t.text == "||" {
                        self.pos += 1;
                    } else {
                        self.pos += 1;
                        params = self.parse_closure_params();
                    }
                    // Optional `-> Type` before a braced body.
                    if self.eat_punct("->") {
                        self.consume_type_text(&["{"]);
                    }
                    let body = self.parse_expr(true);
                    Expr::Closure {
                        params,
                        is_move: false,
                        body: Box::new(body),
                        line,
                    }
                }
                ".." | "..=" => {
                    // RangeTo / full range.
                    let op = t.text.clone();
                    self.pos += 1;
                    if self.can_start_expr() {
                        let rhs = self.parse_binary(0, allow_struct);
                        Expr::Unary {
                            op,
                            expr: Box::new(rhs),
                        }
                    } else {
                        Expr::Opaque
                    }
                }
                _ => {
                    self.pos += 1; // unknown punct: consume and give up
                    Expr::Opaque
                }
            },
            TokKind::Ident => match t.text.as_str() {
                "if" => {
                    self.pos += 1;
                    self.parse_if()
                }
                "while" => {
                    self.pos += 1;
                    self.skip_let_pattern();
                    let cond = self.parse_expr(false);
                    let body = if self.eat_punct("{") {
                        self.parse_block_inner()
                    } else {
                        Block::default()
                    };
                    Expr::While {
                        cond: Some(Box::new(cond)),
                        body,
                    }
                }
                "loop" => {
                    self.pos += 1;
                    let body = if self.eat_punct("{") {
                        self.parse_block_inner()
                    } else {
                        Block::default()
                    };
                    Expr::While { cond: None, body }
                }
                "for" => {
                    self.pos += 1;
                    let pat = self.parse_for_pattern();
                    let iter = if self.can_start_expr() {
                        self.parse_expr(false)
                    } else {
                        Expr::Opaque
                    };
                    let body = if self.eat_punct("{") {
                        self.parse_block_inner()
                    } else {
                        Block::default()
                    };
                    Expr::For {
                        pat,
                        iter: Box::new(iter),
                        body,
                        line,
                    }
                }
                "match" => {
                    self.pos += 1;
                    let scrutinee = self.parse_expr(false);
                    let arms = if self.eat_punct("{") {
                        self.parse_match_arms()
                    } else {
                        Vec::new()
                    };
                    Expr::Match {
                        scrutinee: Box::new(scrutinee),
                        arms,
                    }
                }
                "unsafe" | "async" => {
                    self.pos += 1;
                    self.eat_ident("move");
                    if self.eat_punct("{") {
                        Expr::BlockExpr(self.parse_block_inner())
                    } else {
                        self.parse_primary(allow_struct)
                    }
                }
                "move" => {
                    self.pos += 1;
                    let mut expr = self.parse_primary(allow_struct);
                    if let Expr::Closure { is_move, .. } = &mut expr {
                        *is_move = true;
                    }
                    expr
                }
                "return" | "break" => {
                    self.pos += 1;
                    // Optional label on break.
                    if self.peek().is_some_and(|t| t.kind == TokKind::Lifetime) {
                        self.pos += 1;
                    }
                    let expr = if self.can_start_expr() {
                        Some(Box::new(self.parse_expr(allow_struct)))
                    } else {
                        None
                    };
                    Expr::Jump { expr }
                }
                "continue" => {
                    self.pos += 1;
                    if self.peek().is_some_and(|t| t.kind == TokKind::Lifetime) {
                        self.pos += 1;
                    }
                    Expr::Jump { expr: None }
                }
                "let" => {
                    // `let Pat = expr` inside a condition chain.
                    self.pos += 1;
                    self.skip_until_condition_eq();
                    if self.can_start_expr() {
                        self.parse_expr(false)
                    } else {
                        Expr::Opaque
                    }
                }
                _ => self.parse_path_like(allow_struct),
            },
        }
    }

    /// After `if`: condition (struct literals off), then block, optional
    /// `else` / `else if` chain.
    fn parse_if(&mut self) -> Expr {
        self.skip_let_pattern();
        let cond = if self.can_start_expr() {
            self.parse_expr(false)
        } else {
            Expr::Opaque
        };
        let then = if self.eat_punct("{") {
            self.parse_block_inner()
        } else {
            Block::default()
        };
        let els = if self.eat_ident("else") {
            if self.at_ident("if") {
                self.pos += 1;
                let nested = self.parse_if();
                Some(Block {
                    stmts: vec![Stmt::Expr(nested)],
                })
            } else if self.eat_punct("{") {
                Some(self.parse_block_inner())
            } else {
                None
            }
        } else {
            None
        };
        Expr::If {
            cond: Box::new(cond),
            then,
            els,
        }
    }

    /// If the cursor is at `let` (an `if let` / `while let` head), skips
    /// the pattern through the `=`.
    fn skip_let_pattern(&mut self) {
        if !self.at_ident("let") {
            return;
        }
        self.pos += 1;
        self.skip_until_condition_eq();
    }

    /// Skips pattern tokens until a top-level `=` (consumed).
    fn skip_until_condition_eq(&mut self) {
        while let Some(t) = self.peek() {
            if t.kind == TokKind::Punct {
                match t.text.as_str() {
                    "=" => {
                        self.pos += 1;
                        return;
                    }
                    "(" | "[" | "{" => {
                        self.skim_group_or_token();
                        continue;
                    }
                    ";" | ")" | "}" => return, // runaway pattern
                    "<" => {
                        self.skip_generics();
                        continue;
                    }
                    _ => {}
                }
            }
            self.pos += 1;
        }
    }

    /// For-loop pattern: collect bound identifiers until `in` at depth 0.
    fn parse_for_pattern(&mut self) -> Vec<String> {
        let mut pat = Vec::new();
        while let Some(t) = self.peek() {
            match t.kind {
                TokKind::Ident if t.text == "in" => {
                    self.pos += 1;
                    return pat;
                }
                TokKind::Ident => {
                    if !matches!(t.text.as_str(), "mut" | "ref" | "_") {
                        pat.push(t.text.clone());
                    }
                    self.pos += 1;
                }
                TokKind::Punct => match t.text.as_str() {
                    ";" | "{" | "}" => return pat, // runaway
                    _ => {
                        self.pos += 1;
                    }
                },
                _ => {
                    self.pos += 1;
                }
            }
        }
        pat
    }

    /// Match arms until the closing `}` (consumed): skips each pattern
    /// to its `=>`, parses the arm value.
    fn parse_match_arms(&mut self) -> Vec<Expr> {
        let mut arms = Vec::new();
        loop {
            match self.peek() {
                None => return arms,
                Some(t) if t.kind == TokKind::Punct && t.text == "}" => {
                    self.pos += 1;
                    return arms;
                }
                _ => {}
            }
            let before = self.pos;
            // Pattern (and optional `if` guard) through `=>`.
            let mut found_arrow = false;
            while let Some(t) = self.peek() {
                if t.kind == TokKind::Punct {
                    match t.text.as_str() {
                        "=>" => {
                            self.pos += 1;
                            found_arrow = true;
                            break;
                        }
                        "(" | "[" | "{" => {
                            self.skim_group_or_token();
                            continue;
                        }
                        "}" => break, // end of match body
                        "<" => {
                            self.skip_generics();
                            continue;
                        }
                        _ => {}
                    }
                }
                self.pos += 1;
            }
            if found_arrow {
                let arm = if self.eat_punct("{") {
                    Expr::BlockExpr(self.parse_block_inner())
                } else if self.can_start_expr() {
                    self.parse_expr(true)
                } else {
                    Expr::Opaque
                };
                arms.push(arm);
                self.eat_punct(",");
            }
            if self.pos == before {
                self.pos += 1;
            }
        }
    }

    /// A path (`a::b::c`, with turbofish segments skipped), possibly
    /// continuing into a struct literal or macro call.
    fn parse_path_like(&mut self, allow_struct: bool) -> Expr {
        let line = self.line();
        let mut segs: Vec<String> = Vec::new();
        // Leading `::`.
        self.eat_punct("::");
        loop {
            match self.peek() {
                Some(t) if t.kind == TokKind::Ident => {
                    segs.push(t.text.clone());
                    self.pos += 1;
                }
                _ => break,
            }
            if self.at_punct("::") {
                // `::<…>` turbofish or `::ident`.
                if self.peek_at(1).is_some_and(|t| t.text == "<") {
                    self.pos += 1;
                    self.skip_generics();
                    if !self.at_punct("::") {
                        break;
                    }
                    self.pos += 1;
                    continue;
                }
                self.pos += 1;
                continue;
            }
            break;
        }
        if segs.is_empty() {
            // Bare `::` or nothing parseable.
            return Expr::Opaque;
        }
        // Macro call `path!(…)`.
        if self.at_punct("!") {
            let delim_ok = self
                .peek_at(1)
                .is_some_and(|t| matches!(t.text.as_str(), "(" | "[" | "{"));
            if delim_ok {
                self.pos += 1; // `!`
                let args = self.parse_macro_args();
                return Expr::MacroCall { segs, args, line };
            }
        }
        // Struct literal `Path { … }`.
        if allow_struct && self.at_punct("{") && Self::path_could_be_type(&segs) {
            self.pos += 1;
            let fields = self.parse_struct_lit_fields();
            return Expr::StructLit { segs, fields, line };
        }
        Expr::Path { segs, line }
    }

    /// Heuristic: struct-literal paths start with an upper-case segment
    /// somewhere (`Foo`, `mod::Foo`) or are `Self`.
    fn path_could_be_type(segs: &[String]) -> bool {
        segs.iter()
            .any(|s| s.chars().next().is_some_and(|c| c.is_uppercase()))
    }

    /// `{ field: expr, ..base }` — assumes `{` consumed; consumes `}`.
    fn parse_struct_lit_fields(&mut self) -> Vec<Expr> {
        let mut fields = Vec::new();
        loop {
            match self.peek() {
                None => return fields,
                Some(t) if t.kind == TokKind::Punct && t.text == "}" => {
                    self.pos += 1;
                    return fields;
                }
                _ => {}
            }
            let before = self.pos;
            if self.at_punct("..") {
                self.pos += 1;
                if self.can_start_expr() {
                    fields.push(self.parse_expr(true));
                }
            } else if self.peek().is_some_and(|t| t.kind == TokKind::Ident)
                && self.peek_at(1).is_some_and(|t| t.text == ":")
            {
                self.pos += 2;
                fields.push(self.parse_expr(true));
            } else if self.peek().is_some_and(|t| t.kind == TokKind::Ident)
                && self
                    .peek_at(1)
                    .is_some_and(|t| t.text == "," || t.text == "}")
            {
                // Shorthand `field`.
                let line = self.line();
                let name = self.bump_ident_text();
                fields.push(Expr::Path {
                    segs: vec![name],
                    line,
                });
            } else {
                self.skip_until_top(",");
                if self.pos == before {
                    self.pos += 1;
                }
                continue;
            }
            self.eat_punct(",");
            if self.pos == before {
                self.pos += 1;
            }
        }
    }

    /// Macro arguments: the delimited group parsed as a best-effort
    /// comma-separated expression list.
    fn parse_macro_args(&mut self) -> Vec<Expr> {
        let close = match self.peek() {
            Some(t) if t.kind == TokKind::Punct => match t.text.as_str() {
                "(" => ")",
                "[" => "]",
                "{" => "}",
                _ => return Vec::new(),
            },
            _ => return Vec::new(),
        };
        self.pos += 1;
        let mut args = Vec::new();
        loop {
            match self.peek() {
                None => return args,
                Some(t) if t.kind == TokKind::Punct && t.text == close => {
                    self.pos += 1;
                    return args;
                }
                _ => {}
            }
            let before = self.pos;
            if self.can_start_expr() {
                args.push(self.parse_expr(true));
            }
            // Recover to the next comma or the closing delimiter.
            while let Some(t) = self.peek() {
                if t.kind == TokKind::Punct {
                    match t.text.as_str() {
                        "," => {
                            self.pos += 1;
                            break;
                        }
                        s if s == close => break,
                        "(" | "[" | "{" => {
                            self.skim_group_or_token();
                            continue;
                        }
                        ")" | "]" | "}" => break, // mismatched closer
                        _ => {}
                    }
                }
                self.pos += 1;
            }
            if self.pos == before {
                self.pos += 1;
            }
        }
    }

    fn bump_ident_text(&mut self) -> String {
        match self.peek() {
            Some(t) if t.kind == TokKind::Ident => {
                let s = t.text.clone();
                self.pos += 1;
                s
            }
            _ => String::new(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::{walk_block, ItemKind};

    fn first_fn(src: &str) -> Item {
        let file = parse_source(src);
        let mut found = None;
        crate::ast::walk_fns(&file.items, &mut |f| {
            if found.is_none() {
                found = Some(f.clone());
            }
        });
        match found {
            Some(f) => f,
            None => unreachable!("fixture source must contain a fn"),
        }
    }

    fn body_exprs(src: &str) -> Vec<Expr> {
        let f = first_fn(src);
        let mut out = Vec::new();
        if let Some(b) = &f.body {
            walk_block(b, &mut |e| out.push(e.clone()));
        }
        out
    }

    #[test]
    fn fn_signature_and_params() {
        let f = first_fn("pub fn decide(x: f64, q: &mut Vec<f64>) -> f64 { x }");
        assert_eq!(f.name, "decide");
        assert_eq!(f.params.len(), 2);
        assert_eq!(f.params[0].0, "x");
        assert_eq!(f.params[0].1, "f64");
        assert_eq!(f.params[1].0, "q");
        assert!(f.params[1].1.contains("Vec"));
    }

    #[test]
    fn items_nest_through_mods_and_impls() {
        let file = parse_source(
            "mod a { pub struct S { x: f64 } impl S { fn get(&self) -> f64 { self.x } } }",
        );
        assert_eq!(file.items.len(), 1);
        assert_eq!(file.items[0].kind, ItemKind::Mod);
        let inner = &file.items[0].children;
        assert_eq!(inner.len(), 2);
        assert_eq!(inner[0].kind, ItemKind::Struct);
        assert_eq!(inner[0].fields, vec![("x".to_string(), "f64".to_string())]);
        assert_eq!(inner[1].kind, ItemKind::Impl);
        assert_eq!(inner[1].children[0].name, "get");
    }

    #[test]
    fn calls_and_method_calls() {
        let exprs = body_exprs("fn f() { helper(1.0); x.solve(2, 3); a::b::c(); }");
        let calls: Vec<String> = exprs
            .iter()
            .filter_map(|e| match e {
                Expr::Call { callee, .. } => match callee.as_ref() {
                    Expr::Path { segs, .. } => Some(segs.join("::")),
                    _ => None,
                },
                Expr::MethodCall { method, .. } => Some(format!(".{method}")),
                _ => None,
            })
            .collect();
        assert!(calls.contains(&"helper".to_string()));
        assert!(calls.contains(&".solve".to_string()));
        assert!(calls.contains(&"a::b::c".to_string()));
    }

    #[test]
    fn for_loop_over_method_call() {
        let exprs = body_exprs("fn f(m: &M) { for (k, v) in m.entries.iter() { use_it(k, v); } }");
        let fors: Vec<&Expr> = exprs
            .iter()
            .filter(|e| matches!(e, Expr::For { .. }))
            .collect();
        assert_eq!(fors.len(), 1);
        match fors[0] {
            Expr::For { pat, iter, .. } => {
                assert_eq!(pat, &vec!["k".to_string(), "v".to_string()]);
                assert!(
                    matches!(iter.as_ref(), Expr::MethodCall { method, .. } if method == "iter")
                );
            }
            _ => unreachable!(),
        }
        // The loop body's call is visible too.
        assert!(exprs.iter().any(
            |e| matches!(e, Expr::Call { callee, .. } if matches!(callee.as_ref(), Expr::Path { segs, .. } if segs == &vec!["use_it".to_string()]))
        ));
    }

    #[test]
    fn binary_ops_with_lines() {
        let exprs = body_exprs("fn f(a_s: f64, b_ms: f64) -> f64 {\n    a_s + b_ms\n}");
        let bins: Vec<&Expr> = exprs
            .iter()
            .filter(|e| matches!(e, Expr::Binary { .. }))
            .collect();
        assert_eq!(bins.len(), 1);
        match bins[0] {
            Expr::Binary { op, lhs, rhs, line } => {
                assert_eq!(op, "+");
                assert_eq!(*line, 2);
                assert!(matches!(lhs.as_ref(), Expr::Path { segs, .. } if segs[0] == "a_s"));
                assert!(matches!(rhs.as_ref(), Expr::Path { segs, .. } if segs[0] == "b_ms"));
            }
            _ => unreachable!(),
        }
    }

    #[test]
    fn precedence_binds_mul_over_add() {
        let exprs = body_exprs("fn f(a: f64, b: f64, c: f64) -> f64 { a + b * c }");
        let top = exprs
            .iter()
            .find(|e| matches!(e, Expr::Binary { op, .. } if op == "+"));
        match top {
            Some(Expr::Binary { rhs, .. }) => {
                assert!(matches!(rhs.as_ref(), Expr::Binary { op, .. } if op == "*"));
            }
            _ => unreachable!("expected a + (b * c)"),
        }
    }

    #[test]
    fn let_captures_type_and_init() {
        let f = first_fn("fn f() { let m: HashMap<String, u64> = HashMap::new(); }");
        let body = match &f.body {
            Some(b) => b,
            None => unreachable!(),
        };
        match &body.stmts[0] {
            Stmt::Let { name, ty, init, .. } => {
                assert_eq!(name, "m");
                assert!(ty.as_deref().is_some_and(|t| t.contains("HashMap")));
                assert!(matches!(
                    init,
                    Some(Expr::Call { callee, .. })
                        if matches!(callee.as_ref(), Expr::Path { segs, .. } if segs == &vec!["HashMap".to_string(), "new".to_string()])
                ));
            }
            other => unreachable!("expected let, got {other:?}"),
        }
    }

    #[test]
    fn turbofish_collect_is_captured() {
        let exprs =
            body_exprs("fn f(v: Vec<u64>) { let _m = v.iter().collect::<HashMap<u64, u64>>(); }");
        let collected = exprs.iter().find_map(|e| match e {
            Expr::MethodCall {
                method, turbofish, ..
            } if method == "collect" => turbofish.clone(),
            _ => None,
        });
        assert!(collected.is_some_and(|t| t.contains("HashMap")));
    }

    #[test]
    fn if_else_chain_and_match() {
        let exprs = body_exprs(
            "fn f(x: u32) -> u32 { if x > 1 { a() } else if x > 0 { b() } else { c() } }",
        );
        assert!(
            exprs
                .iter()
                .filter(|e| matches!(e, Expr::If { .. }))
                .count()
                >= 2
        );
        let exprs2 = body_exprs(
            "fn g(x: Option<u32>) -> u32 { match x { Some(v) if v > 2 => v, Some(_) => d(), None => 0 } }",
        );
        let arms = exprs2.iter().find_map(|e| match e {
            Expr::Match { arms, .. } => Some(arms.len()),
            _ => None,
        });
        assert_eq!(arms, Some(3));
        assert!(exprs2.iter().any(
            |e| matches!(e, Expr::Call { callee, .. } if matches!(callee.as_ref(), Expr::Path { segs, .. } if segs == &vec!["d".to_string()]))
        ));
    }

    #[test]
    fn struct_literal_versus_block() {
        let exprs = body_exprs("fn f() -> P { P { x: g(), y: 2.0 } }");
        assert!(exprs.iter().any(|e| matches!(e, Expr::StructLit { .. })));
        assert!(exprs.iter().any(
            |e| matches!(e, Expr::Call { callee, .. } if matches!(callee.as_ref(), Expr::Path { segs, .. } if segs == &vec!["g".to_string()]))
        ));
        // In a condition, `{` opens the block, not a struct literal.
        let exprs2 = body_exprs("fn h(c: C) { if c.ready { act(); } }");
        assert!(exprs2.iter().any(|e| matches!(e, Expr::If { .. })));
        assert!(exprs2.iter().any(
            |e| matches!(e, Expr::Call { callee, .. } if matches!(callee.as_ref(), Expr::Path { segs, .. } if segs == &vec!["act".to_string()]))
        ));
    }

    #[test]
    fn closures_and_macros_expose_inner_calls() {
        let exprs = body_exprs("fn f(v: &mut Vec<f64>) { v.sort_by(|a, b| a.total_cmp(b)); }");
        assert!(exprs
            .iter()
            .any(|e| matches!(e, Expr::MethodCall { method, .. } if method == "total_cmp")));
        let exprs2 = body_exprs("fn g(x: f64) { record!(compute(x), \"label\"); }");
        assert!(exprs2.iter().any(
            |e| matches!(e, Expr::Call { callee, .. } if matches!(callee.as_ref(), Expr::Path { segs, .. } if segs == &vec!["compute".to_string()]))
        ));
    }

    #[test]
    fn trait_methods_with_and_without_bodies() {
        let file = parse_source(
            "pub trait C { fn decide(&self) -> f64; fn helper(&self) -> f64 { self.decide() } }",
        );
        let t = &file.items[0];
        assert_eq!(t.kind, ItemKind::Trait);
        assert_eq!(t.children.len(), 2);
        assert!(t.children[0].body.is_none());
        assert!(t.children[1].body.is_some());
    }

    #[test]
    fn opaque_recovery_keeps_going() {
        // Deliberately weird stream: parser must survive and still see g().
        let exprs = body_exprs("fn f() { @ # $ ; g(); }");
        assert!(exprs.iter().any(
            |e| matches!(e, Expr::Call { callee, .. } if matches!(callee.as_ref(), Expr::Path { segs, .. } if segs == &vec!["g".to_string()]))
        ));
    }

    #[test]
    fn deep_nesting_terminates() {
        let mut src = String::from("fn f() { ");
        for _ in 0..500 {
            src.push_str("(1 + ");
        }
        src.push('1');
        for _ in 0..500 {
            src.push(')');
        }
        src.push_str(" ; }");
        let _ = parse_source(&src); // must not overflow the stack
        let mut blocks = String::from("fn g() ");
        for _ in 0..300 {
            blocks.push('{');
        }
        for _ in 0..300 {
            blocks.push('}');
        }
        let _ = parse_source(&blocks);
    }

    #[test]
    fn unbalanced_input_terminates() {
        let _ = parse_source("fn f( { ) } ] [ } } } fn g() { h( }");
        let _ = parse_source("{{{{{{");
        let _ = parse_source("))))))");
        let _ = parse_source("fn");
        let _ = parse_source("let x = ");
        let _ = parse_source("match { => , => }");
    }
}
