//! Tier-2 property tests: the sema parser is *total*. Whatever bytes or
//! token soup come in — unbalanced brackets, unclosed strings and
//! comments, keyword salad — `parse_source` must terminate without
//! panicking, and must do so deterministically (same input, same AST).
//!
//! The proptest shim seeds each test from its module path (see
//! `crates/shims/proptest`), so every run draws the same fixed cases.

use leime_sema::parser::parse_source;
use proptest::prelude::*;

/// Token vocabulary skewed toward the constructs the parser dispatches
/// on, including deliberately unclosed string/comment openers.
const VOCAB: &[&str] = &[
    "fn",
    "struct",
    "enum",
    "impl",
    "trait",
    "mod",
    "use",
    "let",
    "if",
    "else",
    "while",
    "for",
    "in",
    "match",
    "loop",
    "move",
    "return",
    "break",
    "continue",
    "as",
    "pub",
    "const",
    "static",
    "unsafe",
    "where",
    "dyn",
    "macro_rules",
    "(",
    ")",
    "{",
    "}",
    "[",
    "]",
    "<",
    ">",
    "::",
    ":",
    ";",
    ",",
    ".",
    "..",
    "..=",
    "->",
    "=>",
    "=",
    "==",
    "!=",
    "+",
    "-",
    "*",
    "/",
    "%",
    "&",
    "&&",
    "|",
    "||",
    "^",
    "!",
    "?",
    "#",
    "@",
    "'a",
    "'static",
    "x",
    "y",
    "foo",
    "HashMap",
    "self",
    "Self",
    "invariant",
    "check",
    "0",
    "1.5",
    "0xff",
    "1_000u64",
    "\"str\"",
    "'c'",
    "b'x'",
    "b\"bytes\"",
    "r#\"raw\"#",
    "r#match",
    "\n",
    "// line\n",
    "/* block */",
    "/*",
    "\"",
];

/// Printable-ASCII alphabet plus whitespace for the byte-soup cases.
const CHARS: &[u8] = b" \t\nabcfnle{}()[]<>;:,.#!?&|+-*/%='\"_0123456789";

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn parser_is_total_on_token_soup(picks in prop::collection::vec(0usize..VOCAB.len(), 0..120)) {
        let src: String = picks
            .iter()
            .map(|&i| VOCAB[i])
            .collect::<Vec<_>>()
            .join(" ");
        let file = parse_source(&src);
        // Termination and no-panic are the property; the item count
        // bound just checks the result is sane, not attacker-sized.
        prop_assert!(file.items.len() <= src.len() + 1);
    }

    #[test]
    fn parser_is_total_on_byte_soup(picks in prop::collection::vec(0usize..CHARS.len(), 0..200)) {
        let src: String = picks.iter().map(|&i| CHARS[i] as char).collect();
        let _ = parse_source(&src);
    }

    #[test]
    fn parser_is_deterministic(picks in prop::collection::vec(0usize..VOCAB.len(), 0..80)) {
        let src: String = picks
            .iter()
            .map(|&i| VOCAB[i])
            .collect::<Vec<_>>()
            .join(" ");
        let a = format!("{:?}", parse_source(&src));
        let b = format!("{:?}", parse_source(&src));
        prop_assert_eq!(a, b);
    }
}
