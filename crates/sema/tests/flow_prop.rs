//! Tier-2 property tests: the interprocedural flow analysis is *total*.
//! Whatever token or byte soup parses into, `FlowAnalysis::build`,
//! `findings`, `hot_alloc_counts`, `reachable`, `closure_captures`,
//! and the S10/S11 extractors (`audit::unsafe_sites`,
//! `audit::target_feature_fns`) must terminate without panicking — and
//! deterministically, since the lint gate diffs their output across
//! runs.
//!
//! The proptest shim seeds each test from its module path (see
//! `crates/shims/proptest`), so every run draws the same fixed cases.

use leime_sema::flow::{closure_captures, FlowAnalysis};
use leime_sema::parser::parse_source;
use leime_sema::{ast, audit, SemaConfig};
use proptest::prelude::*;
use std::collections::BTreeSet;

/// Token vocabulary skewed toward the constructs the flow engine
/// dispatches on: closures, shard-entry calls, RNG constructors,
/// allocating and blocking methods — plus enough bracket soup to leave
/// many of them unclosed.
const VOCAB: &[&str] = &[
    "fn",
    "pub",
    "let",
    "mut",
    "move",
    "if",
    "else",
    "for",
    "in",
    "while",
    "loop",
    "match",
    "return",
    "self",
    "(",
    ")",
    "{",
    "}",
    "[",
    "]",
    "|",
    "||",
    "|i, x|",
    ";",
    ",",
    ".",
    "::",
    "=",
    "+=",
    "&",
    "&mut",
    "*",
    "par_map_shards",
    "run_rounds",
    "stream_seed",
    "seed_from_u64",
    "from_entropy",
    "thread_rng",
    "lock",
    "borrow_mut",
    "recv",
    "sleep",
    "push",
    "insert",
    "clone",
    "collect",
    "to_string",
    "format!",
    "vec!",
    "Box",
    "Vec",
    "with_capacity",
    "new",
    "x",
    "y",
    "items",
    "workers",
    "telemetry",
    "0",
    "42",
    "1_000u64",
    "\"str\"",
    "// line\n",
    "/*",
    "\n",
    // S9–S12 raw material: unsafe sites, target_feature attrs, safety
    // comments, float reductions, lock acquisitions.
    "unsafe",
    "#[target_feature(enable = \"avx2,fma\")]",
    "// safety: soup\n",
    "fold",
    "sum",
    "product",
    "::<f64>",
    "0.0",
    "1.5f32",
    "f64",
    "*=",
    "read",
    "write",
    "extern",
    "\"C\"",
    "impl",
    "trait",
];

/// Printable-ASCII alphabet plus whitespace for the byte-soup cases.
const CHARS: &[u8] = b" \t\nabcfnle{}()[]<>;:,.#!?&|+-*/%='\"_0123456789";

/// A config whose markers match every path, so no stage short-circuits
/// on path scoping.
fn open_config() -> SemaConfig {
    let mut cfg = SemaConfig::default();
    cfg.hot_path_markers.push(String::new());
    cfg.rng_path_markers.push(String::new());
    cfg
}

/// Runs the whole flow pipeline over one source and returns a stable
/// rendering of everything it produced.
fn pipeline(src: &str) -> String {
    let cfg = open_config();
    let files = vec![("crates/soup/src/lib.rs".to_string(), src.to_string())];
    let flow = FlowAnalysis::build(&files, &cfg);
    let findings = flow.findings(&cfg);
    let counts = flow.hot_alloc_counts(&cfg);
    let reach = flow.reachable(cfg.hot_root_fns.iter().cloned());
    let tf = flow.target_feature_fns();
    format!("{findings:?}|{counts:?}|{reach:?}|{tf:?}")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn flow_pipeline_is_total_on_token_soup(picks in prop::collection::vec(0usize..VOCAB.len(), 0..120)) {
        let src: String = picks
            .iter()
            .map(|&i| VOCAB[i])
            .collect::<Vec<_>>()
            .join(" ");
        let _ = pipeline(&src);
    }

    #[test]
    fn flow_pipeline_is_total_on_byte_soup(picks in prop::collection::vec(0usize..CHARS.len(), 0..200)) {
        let src: String = picks.iter().map(|&i| CHARS[i] as char).collect();
        let _ = pipeline(&src);
    }

    #[test]
    fn flow_pipeline_is_deterministic(picks in prop::collection::vec(0usize..VOCAB.len(), 0..80)) {
        let src: String = picks
            .iter()
            .map(|&i| VOCAB[i])
            .collect::<Vec<_>>()
            .join(" ");
        prop_assert_eq!(pipeline(&src), pipeline(&src));
    }

    #[test]
    fn audit_extractors_are_total_on_token_soup(picks in prop::collection::vec(0usize..VOCAB.len(), 0..120)) {
        let src: String = picks
            .iter()
            .map(|&i| VOCAB[i])
            .collect::<Vec<_>>()
            .join(" ");
        // Total and deterministic, like the rest of the pipeline.
        let sites = audit::unsafe_sites(&src);
        let tf = audit::target_feature_fns(&src);
        prop_assert_eq!(format!("{sites:?}"), format!("{:?}", audit::unsafe_sites(&src)));
        prop_assert_eq!(format!("{tf:?}"), format!("{:?}", audit::target_feature_fns(&src)));
    }

    #[test]
    fn audit_extractors_are_total_on_byte_soup(picks in prop::collection::vec(0usize..CHARS.len(), 0..200)) {
        let src: String = picks.iter().map(|&i| CHARS[i] as char).collect();
        let _ = audit::unsafe_sites(&src);
        let _ = audit::target_feature_fns(&src);
    }

    #[test]
    fn closure_captures_is_total_on_parsed_soup(
        picks in prop::collection::vec(0usize..VOCAB.len(), 0..100),
        bound in prop::collection::vec(0usize..VOCAB.len(), 0..8),
    ) {
        // Parse soup, then run capture extraction on every closure the
        // parser salvaged, against an arbitrary enclosing binding set.
        let src: String = picks
            .iter()
            .map(|&i| VOCAB[i])
            .collect::<Vec<_>>()
            .join(" ");
        let enclosing: BTreeSet<String> =
            bound.iter().map(|&i| VOCAB[i].to_string()).collect();
        let file = parse_source(&src);
        for item in &file.items {
            let Some(body) = &item.body else { continue };
            ast::walk_block(body, &mut |e| {
                if let ast::Expr::Closure { params, is_move, body, line } = e {
                    let caps = closure_captures(params, *is_move, body, *line, &enclosing);
                    // Every reported capture must come from the
                    // enclosing binding set, never thin air.
                    for c in &caps {
                        assert!(enclosing.contains(&c.name), "phantom capture {c:?}");
                    }
                }
            });
        }
    }
}
