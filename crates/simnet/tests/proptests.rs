//! Property tests for the simulation substrate: causality, work
//! conservation, and statistical identities over random inputs.

use leime_simnet::stats::{Percentiles, Welford};
use leime_simnet::{EventQueue, FifoServer, Link, SimTime, TimeTrace};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Events always pop in non-decreasing time order with FIFO ties.
    #[test]
    fn event_queue_is_totally_ordered(times in prop::collection::vec(0.0f64..1e6, 1..200)) {
        let mut q = EventQueue::new();
        for (i, &t) in times.iter().enumerate() {
            q.schedule_at(SimTime::from_secs(t), i);
        }
        let mut last_t = SimTime::ZERO;
        let mut seen_at_t: Vec<usize> = Vec::new();
        while let Some((t, idx)) = q.pop() {
            prop_assert!(t >= last_t);
            if t > last_t {
                seen_at_t.clear();
            }
            // FIFO among equal timestamps: indices increase.
            if let Some(&prev) = seen_at_t.last() {
                prop_assert!(idx > prev, "tie broken out of order");
            }
            seen_at_t.push(idx);
            last_t = t;
        }
    }

    /// A FIFO server is work-conserving: total busy time equals total
    /// submitted work / rate, and completions are ordered.
    #[test]
    fn fifo_server_conserves_work(
        jobs in prop::collection::vec((0.0f64..100.0, 1.0f64..1e6), 1..50),
        rate in 1.0f64..1e9,
    ) {
        let mut server = FifoServer::new(rate);
        let mut arrivals: Vec<(f64, f64)> = jobs;
        arrivals.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap());
        let mut last_finish = SimTime::ZERO;
        let total_work: f64 = arrivals.iter().map(|j| j.1).sum();
        for &(at, work) in &arrivals {
            let finish = server.submit(SimTime::from_secs(at), work);
            // FIFO: completions never regress.
            prop_assert!(finish >= last_finish);
            // Completion is no earlier than arrival + own service.
            prop_assert!(finish.as_secs() >= at + work / rate - 1e-9);
            last_finish = finish;
        }
        // Work conservation: the last completion cannot beat total work
        // compressed from the first arrival.
        let first = arrivals[0].0;
        prop_assert!(last_finish.as_secs() >= first + total_work / rate - 1e-6);
    }

    /// Serializing links never finish a transfer earlier than the
    /// uncontended formula, and preserve ordering.
    #[test]
    fn link_serialization_bounds(
        transfers in prop::collection::vec((0.0f64..100.0, 1.0f64..1e7), 1..40),
        bw in 1e5f64..1e9,
        lat in 0.0f64..0.5,
    ) {
        let mut link = Link::new(bw, SimTime::from_secs(lat), true);
        let mut sorted = transfers;
        sorted.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap());
        let mut last = SimTime::ZERO;
        for &(at, bytes) in &sorted {
            let arrive = link.transfer(SimTime::from_secs(at), bytes);
            let ideal = at + bytes * 8.0 / bw + lat;
            prop_assert!(arrive.as_secs() >= ideal - 1e-9,
                "transfer finished before physics allows");
            prop_assert!(arrive >= last);
            last = arrive;
        }
    }

    /// Welford mean/variance match the two-pass formulas.
    #[test]
    fn welford_matches_two_pass(xs in prop::collection::vec(-1e4f64..1e4, 2..200)) {
        let mut w = Welford::new();
        for &x in &xs {
            w.push(x);
        }
        let n = xs.len() as f64;
        let mean = xs.iter().sum::<f64>() / n;
        let var = xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n;
        prop_assert!((w.mean() - mean).abs() < 1e-6 * mean.abs().max(1.0));
        prop_assert!((w.variance() - var).abs() < 1e-6 * var.max(1.0));
    }

    /// Quantiles are monotone in q and bounded by the extremes.
    #[test]
    fn quantiles_are_monotone(xs in prop::collection::vec(-1e4f64..1e4, 1..100)) {
        let mut p = Percentiles::new();
        for &x in &xs {
            p.push(x);
        }
        let lo = xs.iter().copied().fold(f64::INFINITY, f64::min);
        let hi = xs.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        let mut prev = lo;
        for i in 0..=10 {
            let q = p.quantile(i as f64 / 10.0).unwrap();
            prop_assert!(q >= prev - 1e-9);
            prop_assert!(q >= lo - 1e-9 && q <= hi + 1e-9);
            prev = q;
        }
    }

    /// A time trace evaluates to exactly one of its breakpoint values and
    /// is right-continuous at breakpoints.
    #[test]
    fn trace_values_come_from_points(
        vals in prop::collection::vec(-100.0f64..100.0, 1..20),
        at in 0.0f64..1e4,
    ) {
        let points: Vec<(SimTime, f64)> = vals
            .iter()
            .enumerate()
            .map(|(i, &v)| (SimTime::from_secs(i as f64 * 10.0), v))
            .collect();
        let trace = TimeTrace::from_points(points.clone()).unwrap();
        let v = trace.value_at(SimTime::from_secs(at));
        prop_assert!(vals.contains(&v));
        // Right-continuity at each breakpoint.
        for &(t, pv) in &points {
            prop_assert_eq!(trace.value_at(t), pv);
        }
    }
}
