use crate::SimTime;
use serde::{Deserialize, Serialize};

/// A work-conserving FIFO compute server with a fixed service rate in
/// FLOPS.
///
/// Models a device CPU, one Docker share of the edge server (`p_i · F^e`),
/// or the cloud GPU. Jobs submitted at time `t` start at
/// `max(t, busy_until)` and occupy the server for `flops / rate` seconds —
/// exactly the paper's FIFO queueing assumption (§III-D2).
///
/// ```
/// use leime_simnet::{FifoServer, SimTime};
///
/// let mut s = FifoServer::new(1e9); // 1 GFLOPS
/// let done1 = s.submit(SimTime::ZERO, 5e8); // 0.5 s of work
/// let done2 = s.submit(SimTime::ZERO, 5e8); // queues behind it
/// assert_eq!(done1.as_secs(), 0.5);
/// assert_eq!(done2.as_secs(), 1.0);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FifoServer {
    rate: f64,
    busy_until: SimTime,
    jobs_served: u64,
    busy_time: f64,
}

impl FifoServer {
    /// Creates a server with the given service rate in FLOPS.
    ///
    /// # Panics
    ///
    /// Panics if `rate_flops` is not strictly positive and finite.
    pub fn new(rate_flops: f64) -> Self {
        assert!(
            rate_flops.is_finite() && rate_flops > 0.0,
            "server rate must be positive, got {rate_flops}"
        );
        FifoServer {
            rate: rate_flops,
            busy_until: SimTime::ZERO,
            jobs_served: 0,
            busy_time: 0.0,
        }
    }

    /// Service rate in FLOPS.
    pub fn rate(&self) -> f64 {
        self.rate
    }

    /// Changes the service rate (e.g. when the edge reallocates shares).
    /// In-flight work is unaffected; only future submissions see the new
    /// rate.
    ///
    /// # Panics
    ///
    /// Panics if `rate_flops` is not strictly positive and finite.
    pub fn set_rate(&mut self, rate_flops: f64) {
        assert!(
            rate_flops.is_finite() && rate_flops > 0.0,
            "server rate must be positive, got {rate_flops}"
        );
        self.rate = rate_flops;
    }

    /// Submits `flops` of work at time `now`; returns the completion time.
    ///
    /// # Panics
    ///
    /// Panics if `flops` is negative or non-finite.
    pub fn submit(&mut self, now: SimTime, flops: f64) -> SimTime {
        assert!(flops.is_finite() && flops >= 0.0, "bad work size {flops}");
        let start = self.busy_until.max(now);
        let service = flops / self.rate;
        let finish = start + SimTime::from_secs(service);
        self.busy_until = finish;
        self.jobs_served += 1;
        self.busy_time += service;
        finish
    }

    /// Time at which the server becomes idle.
    pub fn busy_until(&self) -> SimTime {
        self.busy_until
    }

    /// Outstanding backlog (seconds of queued work) as seen at `now`.
    pub fn backlog(&self, now: SimTime) -> SimTime {
        self.busy_until.saturating_sub(now)
    }

    /// Total jobs submitted so far.
    pub fn jobs_served(&self) -> u64 {
        self.jobs_served
    }

    /// Fraction of `[0, now]` the server spent busy (1.0 cap can be
    /// exceeded transiently if the backlog extends past `now`).
    pub fn utilisation(&self, now: SimTime) -> f64 {
        // SimTime is non-negative by construction, so `<= 0` is exactly
        // the zero case without a float equality.
        if now.as_secs() <= 0.0 {
            return 0.0;
        }
        // Count only work that fits before `now`.
        let effective = self.busy_time - self.busy_until.saturating_sub(now).as_secs();
        (effective / now.as_secs()).clamp(0.0, 1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sequential_jobs_queue() {
        let mut s = FifoServer::new(100.0);
        assert_eq!(s.submit(SimTime::ZERO, 100.0).as_secs(), 1.0);
        assert_eq!(s.submit(SimTime::ZERO, 100.0).as_secs(), 2.0);
        assert_eq!(s.jobs_served(), 2);
    }

    #[test]
    fn idle_gap_is_respected() {
        let mut s = FifoServer::new(100.0);
        s.submit(SimTime::ZERO, 100.0); // done at 1.0
        let done = s.submit(SimTime::from_secs(5.0), 100.0);
        assert_eq!(done.as_secs(), 6.0); // starts at arrival, not at 1.0
    }

    #[test]
    fn backlog_measured_from_now() {
        let mut s = FifoServer::new(100.0);
        s.submit(SimTime::ZERO, 300.0);
        assert_eq!(s.backlog(SimTime::from_secs(1.0)).as_secs(), 2.0);
        assert_eq!(s.backlog(SimTime::from_secs(10.0)), SimTime::ZERO);
    }

    #[test]
    fn zero_work_completes_instantly() {
        let mut s = FifoServer::new(100.0);
        assert_eq!(s.submit(SimTime::from_secs(2.0), 0.0).as_secs(), 2.0);
    }

    #[test]
    fn rate_change_affects_future_jobs() {
        let mut s = FifoServer::new(100.0);
        s.submit(SimTime::ZERO, 100.0); // 1s at rate 100
        s.set_rate(200.0);
        let done = s.submit(SimTime::ZERO, 100.0); // 0.5s at rate 200
        assert_eq!(done.as_secs(), 1.5);
    }

    #[test]
    fn utilisation_tracks_busy_fraction() {
        let mut s = FifoServer::new(100.0);
        s.submit(SimTime::ZERO, 100.0); // busy [0, 1]
        assert!((s.utilisation(SimTime::from_secs(2.0)) - 0.5).abs() < 1e-9);
        assert_eq!(FifoServer::new(1.0).utilisation(SimTime::ZERO), 0.0);
    }

    #[test]
    #[should_panic(expected = "rate must be positive")]
    fn rejects_zero_rate() {
        FifoServer::new(0.0);
    }
}
