use crate::SimTime;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// A deterministic time-ordered event queue.
///
/// Events scheduled for the same instant pop in FIFO order (a strictly
/// increasing sequence number breaks ties), so simulations are reproducible
/// regardless of heap internals.
///
/// The queue also maintains the *current time*: popping an event advances
/// the clock to that event's timestamp. Scheduling into the past is a
/// programming error and panics.
#[derive(Debug)]
pub struct EventQueue<E> {
    heap: BinaryHeap<Entry<E>>,
    seq: u64,
    now: SimTime,
}

#[derive(Debug)]
struct Entry<E> {
    time: SimTime,
    seq: u64,
    payload: E,
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl<E> Eq for Entry<E> {}

impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert so earliest time pops first,
        // then lowest sequence number (FIFO).
        other
            .time
            .cmp(&self.time)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}
impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<E> EventQueue<E> {
    /// Creates an empty queue at time zero.
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            seq: 0,
            now: SimTime::ZERO,
        }
    }

    /// The current simulation time (timestamp of the last popped event).
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Schedules `payload` at absolute time `time`.
    ///
    /// # Panics
    ///
    /// Panics if `time` precedes the current time — discrete-event
    /// causality would be violated.
    pub fn schedule_at(&mut self, time: SimTime, payload: E) {
        assert!(
            time >= self.now,
            "cannot schedule into the past: {time} < now {now}",
            now = self.now
        );
        let seq = self.seq;
        self.seq += 1;
        self.heap.push(Entry { time, seq, payload });
    }

    /// Schedules `payload` after a relative delay from the current time.
    pub fn schedule_in(&mut self, delay: SimTime, payload: E) {
        self.schedule_at(self.now + delay, payload);
    }

    /// Pops the earliest event, advancing the clock to its timestamp.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        self.heap.pop().map(|e| {
            self.now = e.time;
            (e.time, e.payload)
        })
    }

    /// Timestamp of the next event without popping it.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|e| e.time)
    }
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        EventQueue::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule_at(SimTime::from_secs(3.0), "c");
        q.schedule_at(SimTime::from_secs(1.0), "a");
        q.schedule_at(SimTime::from_secs(2.0), "b");
        let order: Vec<&str> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, vec!["a", "b", "c"]);
    }

    #[test]
    fn fifo_tie_break() {
        let mut q = EventQueue::new();
        let t = SimTime::from_secs(5.0);
        for i in 0..10 {
            q.schedule_at(t, i);
        }
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn clock_advances_on_pop() {
        let mut q = EventQueue::new();
        q.schedule_at(SimTime::from_secs(2.0), ());
        assert_eq!(q.now(), SimTime::ZERO);
        q.pop();
        assert_eq!(q.now(), SimTime::from_secs(2.0));
    }

    #[test]
    fn schedule_in_is_relative() {
        let mut q = EventQueue::new();
        q.schedule_at(SimTime::from_secs(1.0), "first");
        q.pop();
        q.schedule_in(SimTime::from_secs(0.5), "second");
        let (t, _) = q.pop().unwrap();
        assert_eq!(t.as_secs(), 1.5);
    }

    #[test]
    #[should_panic(expected = "cannot schedule into the past")]
    fn rejects_past_events() {
        let mut q = EventQueue::new();
        q.schedule_at(SimTime::from_secs(2.0), ());
        q.pop();
        q.schedule_at(SimTime::from_secs(1.0), ());
    }

    #[test]
    fn peek_does_not_advance() {
        let mut q = EventQueue::new();
        q.schedule_at(SimTime::from_secs(4.0), ());
        assert_eq!(q.peek_time(), Some(SimTime::from_secs(4.0)));
        assert_eq!(q.now(), SimTime::ZERO);
        assert_eq!(q.len(), 1);
        assert!(!q.is_empty());
    }
}
