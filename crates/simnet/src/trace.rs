use crate::SimTime;
use serde::{Deserialize, Serialize};

/// A piecewise-constant time-varying parameter (bandwidth, arrival rate,
/// background load…).
///
/// Defined by breakpoints `(t_k, v_k)`: the value is `v_k` for
/// `t ∈ [t_k, t_{k+1})`, and the last value holds forever. Before the first
/// breakpoint the first value holds.
///
/// ```
/// use leime_simnet::{SimTime, TimeTrace};
///
/// let trace = TimeTrace::from_points(vec![
///     (SimTime::ZERO, 10.0),
///     (SimTime::from_secs(5.0), 50.0),
/// ]).unwrap();
/// assert_eq!(trace.value_at(SimTime::from_secs(2.0)), 10.0);
/// assert_eq!(trace.value_at(SimTime::from_secs(7.0)), 50.0);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TimeTrace {
    points: Vec<(SimTime, f64)>,
}

impl TimeTrace {
    /// A trace that is `value` forever.
    pub fn constant(value: f64) -> Self {
        TimeTrace {
            points: vec![(SimTime::ZERO, value)],
        }
    }

    /// Creates a trace from breakpoints.
    ///
    /// # Errors
    ///
    /// Returns a message if `points` is empty or timestamps are not
    /// strictly increasing.
    pub fn from_points(points: Vec<(SimTime, f64)>) -> Result<Self, String> {
        if points.is_empty() {
            return Err("trace requires at least one breakpoint".to_string());
        }
        for w in points.windows(2) {
            if w[1].0 <= w[0].0 {
                return Err(format!(
                    "trace timestamps must strictly increase: {} then {}",
                    w[0].0, w[1].0
                ));
            }
        }
        Ok(TimeTrace { points })
    }

    /// A square wave alternating `lo`/`hi` with the given half-period,
    /// covering `[0, horizon)` — used for the paper's dynamic-arrival-rate
    /// stability experiment (Fig. 9).
    ///
    /// # Panics
    ///
    /// Panics if `half_period` is zero.
    pub fn square_wave(lo: f64, hi: f64, half_period: SimTime, horizon: SimTime) -> Self {
        assert!(half_period > SimTime::ZERO, "half_period must be positive");
        let mut points = Vec::new();
        let mut t = SimTime::ZERO;
        let mut high = false;
        while t < horizon {
            points.push((t, if high { hi } else { lo }));
            high = !high;
            t += half_period;
        }
        TimeTrace { points }
    }

    /// Value of the trace at time `t`.
    pub fn value_at(&self, t: SimTime) -> f64 {
        match self.points.binary_search_by(|&(pt, _)| pt.cmp(&t)) {
            Ok(i) => self.points[i].1,
            Err(0) => self.points[0].1,
            Err(i) => self.points[i - 1].1,
        }
    }

    /// The breakpoints.
    pub fn points(&self) -> &[(SimTime, f64)] {
        &self.points
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constant_trace() {
        let t = TimeTrace::constant(3.5);
        assert_eq!(t.value_at(SimTime::ZERO), 3.5);
        assert_eq!(t.value_at(SimTime::from_secs(1e6)), 3.5);
    }

    #[test]
    fn step_boundaries() {
        let tr =
            TimeTrace::from_points(vec![(SimTime::ZERO, 1.0), (SimTime::from_secs(10.0), 2.0)])
                .unwrap();
        assert_eq!(tr.value_at(SimTime::from_secs(9.999)), 1.0);
        assert_eq!(tr.value_at(SimTime::from_secs(10.0)), 2.0);
        assert_eq!(tr.value_at(SimTime::from_secs(11.0)), 2.0);
    }

    #[test]
    fn rejects_non_increasing() {
        assert!(TimeTrace::from_points(vec![
            (SimTime::from_secs(5.0), 1.0),
            (SimTime::from_secs(5.0), 2.0),
        ])
        .is_err());
        assert!(TimeTrace::from_points(vec![]).is_err());
    }

    #[test]
    fn square_wave_alternates() {
        let tr =
            TimeTrace::square_wave(1.0, 9.0, SimTime::from_secs(10.0), SimTime::from_secs(40.0));
        assert_eq!(tr.value_at(SimTime::from_secs(5.0)), 1.0);
        assert_eq!(tr.value_at(SimTime::from_secs(15.0)), 9.0);
        assert_eq!(tr.value_at(SimTime::from_secs(25.0)), 1.0);
        assert_eq!(tr.value_at(SimTime::from_secs(35.0)), 9.0);
        // Holds last value past the horizon.
        assert_eq!(tr.value_at(SimTime::from_secs(100.0)), 9.0);
    }
}
