use crate::SimTime;
use serde::{Deserialize, Serialize};

/// A point-to-point network pipe with bandwidth, propagation delay and
/// optional transfer serialization.
///
/// Transfer time for `b` bytes is `b·8 / bandwidth + latency` — the same
/// first-order model the paper's cost expressions use
/// (`d / B^e_i + L^e_i`). With `serializing = true`, concurrent transfers
/// queue behind each other on the bandwidth component (a shared WiFi
/// medium); with `false`, the link is treated as uncontended.
///
/// ```
/// use leime_simnet::{Link, SimTime};
///
/// // 8 Mbps, 10 ms propagation delay.
/// let mut l = Link::new(8e6, SimTime::from_millis(10.0), true);
/// let arrive = l.transfer(SimTime::ZERO, 1_000_000.0); // 1 MB
/// assert!((arrive.as_secs() - 1.01).abs() < 1e-9);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Link {
    bandwidth_bps: f64,
    latency: SimTime,
    serializing: bool,
    loss_rate: f64,
    busy_until: SimTime,
    bytes_moved: f64,
}

impl Link {
    /// Creates a link with bandwidth in bits/second and a propagation
    /// delay.
    ///
    /// # Panics
    ///
    /// Panics if `bandwidth_bps` is not strictly positive and finite.
    pub fn new(bandwidth_bps: f64, latency: SimTime, serializing: bool) -> Self {
        assert!(
            bandwidth_bps.is_finite() && bandwidth_bps > 0.0,
            "bandwidth must be positive, got {bandwidth_bps}"
        );
        Link {
            bandwidth_bps,
            latency,
            serializing,
            loss_rate: 0.0,
            busy_until: SimTime::ZERO,
            bytes_moved: 0.0,
        }
    }

    /// Sets a packet-loss rate in `[0, 1)`; lost packets are retransmitted,
    /// so each payload occupies the medium for `1/(1−loss)` of its nominal
    /// time — the fluid model of TCP-style reliability over a lossy WiFi
    /// link (what COMCAST's loss shaping induces on average).
    ///
    /// # Panics
    ///
    /// Panics if `loss_rate` is outside `[0, 1)`.
    pub fn with_loss(mut self, loss_rate: f64) -> Self {
        assert!(
            (0.0..1.0).contains(&loss_rate),
            "loss rate {loss_rate} outside [0, 1)"
        );
        self.loss_rate = loss_rate;
        self
    }

    /// The configured packet-loss rate.
    pub fn loss_rate(&self) -> f64 {
        self.loss_rate
    }

    /// Bandwidth in bits per second.
    pub fn bandwidth_bps(&self) -> f64 {
        self.bandwidth_bps
    }

    /// Propagation delay.
    pub fn latency(&self) -> SimTime {
        self.latency
    }

    /// Updates the bandwidth (e.g. applying a trace step); future transfers
    /// use the new value.
    ///
    /// # Panics
    ///
    /// Panics if `bandwidth_bps` is not strictly positive and finite.
    pub fn set_bandwidth(&mut self, bandwidth_bps: f64) {
        assert!(
            bandwidth_bps.is_finite() && bandwidth_bps > 0.0,
            "bandwidth must be positive, got {bandwidth_bps}"
        );
        self.bandwidth_bps = bandwidth_bps;
    }

    /// Updates the propagation delay.
    pub fn set_latency(&mut self, latency: SimTime) {
        self.latency = latency;
    }

    /// Starts a transfer of `bytes` at `now`; returns the arrival time at
    /// the far end.
    ///
    /// # Panics
    ///
    /// Panics if `bytes` is negative or non-finite.
    pub fn transfer(&mut self, now: SimTime, bytes: f64) -> SimTime {
        assert!(
            bytes.is_finite() && bytes >= 0.0,
            "bad transfer size {bytes}"
        );
        let tx = SimTime::from_secs(bytes * 8.0 / self.bandwidth_bps / (1.0 - self.loss_rate));
        let start = if self.serializing {
            self.busy_until.max(now)
        } else {
            now
        };
        let done_tx = start + tx;
        if self.serializing {
            self.busy_until = done_tx;
        }
        self.bytes_moved += bytes;
        done_tx + self.latency
    }

    /// Pure one-way time for `bytes` on an idle link (no contention),
    /// including retransmission inflation.
    pub fn ideal_time(&self, bytes: f64) -> SimTime {
        SimTime::from_secs(bytes * 8.0 / self.bandwidth_bps / (1.0 - self.loss_rate)) + self.latency
    }

    /// Total payload bytes moved so far.
    pub fn bytes_moved(&self) -> f64 {
        self.bytes_moved
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn transfer_time_formula() {
        let mut l = Link::new(1e6, SimTime::from_millis(50.0), false);
        // 125000 bytes = 1e6 bits -> 1 s + 50 ms.
        let t = l.transfer(SimTime::ZERO, 125_000.0);
        assert!((t.as_secs() - 1.05).abs() < 1e-12);
    }

    #[test]
    fn serializing_link_queues_transfers() {
        let mut l = Link::new(1e6, SimTime::ZERO, true);
        let t1 = l.transfer(SimTime::ZERO, 125_000.0);
        let t2 = l.transfer(SimTime::ZERO, 125_000.0);
        assert_eq!(t1.as_secs(), 1.0);
        assert_eq!(t2.as_secs(), 2.0);
    }

    #[test]
    fn non_serializing_link_is_uncontended() {
        let mut l = Link::new(1e6, SimTime::ZERO, false);
        let t1 = l.transfer(SimTime::ZERO, 125_000.0);
        let t2 = l.transfer(SimTime::ZERO, 125_000.0);
        assert_eq!(t1, t2);
    }

    #[test]
    fn latency_applies_after_queueing() {
        let mut l = Link::new(1e6, SimTime::from_secs(0.5), true);
        l.transfer(SimTime::ZERO, 125_000.0); // occupies [0, 1]
        let t2 = l.transfer(SimTime::ZERO, 125_000.0); // tx [1, 2] + 0.5
        assert_eq!(t2.as_secs(), 2.5);
    }

    #[test]
    fn bandwidth_update() {
        let mut l = Link::new(1e6, SimTime::ZERO, false);
        l.set_bandwidth(2e6);
        let t = l.transfer(SimTime::ZERO, 125_000.0);
        assert_eq!(t.as_secs(), 0.5);
        assert_eq!(l.bytes_moved(), 125_000.0);
    }

    #[test]
    fn ideal_time_ignores_contention() {
        let mut l = Link::new(1e6, SimTime::ZERO, true);
        l.transfer(SimTime::ZERO, 1e6); // make it busy
        assert_eq!(l.ideal_time(125_000.0).as_secs(), 1.0);
    }

    #[test]
    #[should_panic(expected = "bandwidth must be positive")]
    fn rejects_zero_bandwidth() {
        Link::new(0.0, SimTime::ZERO, false);
    }

    #[test]
    fn loss_inflates_transfer_time() {
        let mut lossless = Link::new(1e6, SimTime::ZERO, false);
        let mut lossy = Link::new(1e6, SimTime::ZERO, false).with_loss(0.5);
        let t0 = lossless.transfer(SimTime::ZERO, 125_000.0);
        let t1 = lossy.transfer(SimTime::ZERO, 125_000.0);
        assert!((t1.as_secs() / t0.as_secs() - 2.0).abs() < 1e-9);
        assert_eq!(lossy.loss_rate(), 0.5);
    }

    #[test]
    #[should_panic(expected = "outside [0, 1)")]
    fn rejects_total_loss() {
        Link::new(1e6, SimTime::ZERO, false).with_loss(1.0);
    }
}
