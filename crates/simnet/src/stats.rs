//! Online statistics and experiment recording.

use crate::SimTime;
use serde::{Deserialize, Serialize};

/// Welford's online algorithm for mean and variance — numerically stable
/// for long simulations.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct Welford {
    count: u64,
    mean: f64,
    m2: f64,
}

impl Welford {
    /// An empty accumulator.
    pub fn new() -> Self {
        Welford::default()
    }

    /// Adds one observation.
    pub fn push(&mut self, x: f64) {
        self.count += 1;
        let delta = x - self.mean;
        self.mean += delta / self.count as f64;
        self.m2 += delta * (x - self.mean);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sample mean (0 when empty).
    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// Population variance (0 with < 2 observations).
    pub fn variance(&self) -> f64 {
        if self.count < 2 {
            0.0
        } else {
            self.m2 / self.count as f64
        }
    }

    /// Population standard deviation.
    pub fn std_dev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Merges another accumulator (parallel Welford).
    pub fn merge(&mut self, other: &Welford) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            *self = *other;
            return;
        }
        let n = (self.count + other.count) as f64;
        let delta = other.mean - self.mean;
        self.m2 += other.m2 + delta * delta * self.count as f64 * other.count as f64 / n;
        self.mean += delta * other.count as f64 / n;
        self.count += other.count;
    }
}

/// Collects samples and answers quantile queries.
///
/// Backed by `leime-telemetry`'s log-bucketed [`Buckets`] histogram
/// (constant memory instead of retaining every sample): the mean,
/// `quantile(0.0)` and `quantile(1.0)` are exact, intermediate quantiles
/// carry a relative error of at most one log bucket (`2^(1/32) ≈ 2.2%`).
///
/// [`Buckets`]: leime_telemetry::Buckets
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct Percentiles {
    hist: leime_telemetry::Buckets,
}

impl Percentiles {
    /// An empty collector.
    pub fn new() -> Self {
        Percentiles::default()
    }

    /// Adds one sample. Non-finite values are ignored.
    pub fn push(&mut self, x: f64) {
        self.hist.record(x);
    }

    /// Adds the same sample `n` times — bit-identical to `n` successive
    /// [`Percentiles::push`] calls (see `Buckets::record_n`) while
    /// paying the bucket search once. The slotted runner records one
    /// cohort's per-task TCT for all of a slot's arrivals this way.
    pub fn push_n(&mut self, x: f64, n: u64) {
        self.hist.record_n(x, n);
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.hist.count() as usize
    }

    /// Whether no samples were collected.
    pub fn is_empty(&self) -> bool {
        self.hist.is_empty()
    }

    /// The `q`-quantile (`q ∈ [0, 1]`) by nearest rank on the histogram,
    /// or `None` when empty. Exact at the extremes, within one log
    /// bucket elsewhere.
    ///
    /// # Panics
    ///
    /// Panics if `q` is outside `[0, 1]`.
    pub fn quantile(&self, q: f64) -> Option<f64> {
        self.hist.quantile(q)
    }

    /// Median shortcut.
    pub fn median(&self) -> Option<f64> {
        self.quantile(0.5)
    }

    /// Arithmetic mean (exact), or `None` when empty.
    pub fn mean(&self) -> Option<f64> {
        self.hist.mean()
    }

    /// The underlying histogram, for merging into telemetry exports.
    pub fn buckets(&self) -> &leime_telemetry::Buckets {
        &self.hist
    }
}

/// A `(time, value)` series recorder with windowed averaging, used to
/// produce the paper's time-series plots (Fig. 9).
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct TimeSeries {
    points: Vec<(SimTime, f64)>,
}

impl TimeSeries {
    /// An empty series.
    pub fn new() -> Self {
        TimeSeries::default()
    }

    /// Appends an observation. Timestamps need not be unique but must not
    /// decrease.
    ///
    /// # Panics
    ///
    /// Panics if `t` precedes the last recorded timestamp.
    pub fn push(&mut self, t: SimTime, value: f64) {
        if let Some(&(last, _)) = self.points.last() {
            assert!(t >= last, "time series must be non-decreasing");
        }
        self.points.push((t, value));
    }

    /// Appends the same observation `n` times, checking monotonicity
    /// once. Equivalent to `n` successive [`TimeSeries::push`] calls.
    ///
    /// # Panics
    ///
    /// Panics if `t` precedes the last recorded timestamp.
    pub fn push_n(&mut self, t: SimTime, value: f64, n: u64) {
        if n == 0 {
            return;
        }
        if let Some(&(last, _)) = self.points.last() {
            assert!(t >= last, "time series must be non-decreasing");
        }
        self.points.reserve(n as usize);
        for _ in 0..n {
            self.points.push((t, value));
        }
    }

    /// The raw points.
    pub fn points(&self) -> &[(SimTime, f64)] {
        &self.points
    }

    /// Number of observations.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// Whether the series is empty.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// Averages values into consecutive windows of `width`, returning
    /// `(window_end, mean)` per non-empty window.
    ///
    /// # Panics
    ///
    /// Panics if `width` is zero.
    pub fn windowed_mean(&self, width: SimTime) -> Vec<(SimTime, f64)> {
        assert!(width > SimTime::ZERO, "window width must be positive");
        let mut out = Vec::new();
        if self.points.is_empty() {
            return out;
        }
        let mut window_end = width;
        let mut acc = Welford::new();
        for &(t, v) in &self.points {
            while t >= window_end {
                if acc.count() > 0 {
                    out.push((window_end, acc.mean()));
                    acc = Welford::new();
                }
                window_end += width;
            }
            acc.push(v);
        }
        if acc.count() > 0 {
            out.push((window_end, acc.mean()));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_n_matches_repeated_push() {
        let mut pn = Percentiles::new();
        let mut pr = Percentiles::new();
        let mut sn = TimeSeries::new();
        let mut sr = TimeSeries::new();
        for (i, n) in [(1u64, 3u64), (2, 1), (3, 0), (4, 7)] {
            let t = SimTime::from_secs(i as f64);
            let v = 0.25 * i as f64;
            pn.push_n(v, n);
            sn.push_n(t, v, n);
            for _ in 0..n {
                pr.push(v);
                sr.push(t, v);
            }
        }
        assert_eq!(pn, pr);
        assert_eq!(sn.points(), sr.points());
    }

    #[test]
    #[should_panic(expected = "non-decreasing")]
    fn push_n_rejects_time_regression() {
        let mut s = TimeSeries::new();
        s.push(SimTime::from_secs(2.0), 1.0);
        s.push_n(SimTime::from_secs(1.0), 1.0, 2);
    }

    #[test]
    fn welford_matches_direct() {
        let xs = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        let mut w = Welford::new();
        for &x in &xs {
            w.push(x);
        }
        assert!((w.mean() - 5.0).abs() < 1e-12);
        assert!((w.variance() - 4.0).abs() < 1e-12);
        assert!((w.std_dev() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn welford_merge_equals_sequential() {
        let mut a = Welford::new();
        let mut b = Welford::new();
        let mut all = Welford::new();
        for i in 0..100 {
            let x = (i as f64).sin() * 10.0;
            if i % 2 == 0 {
                a.push(x);
            } else {
                b.push(x);
            }
            all.push(x);
        }
        a.merge(&b);
        assert!((a.mean() - all.mean()).abs() < 1e-9);
        assert!((a.variance() - all.variance()).abs() < 1e-9);
        assert_eq!(a.count(), all.count());
    }

    #[test]
    fn welford_merge_with_empty() {
        let mut a = Welford::new();
        a.push(1.0);
        let before = a;
        a.merge(&Welford::new());
        assert_eq!(a, before);
        let mut e = Welford::new();
        e.merge(&a);
        assert_eq!(e, a);
    }

    #[test]
    fn percentiles_quantiles() {
        let mut p = Percentiles::new();
        for i in 1..=100 {
            p.push(i as f64);
        }
        // Extremes and the mean are exact; interior quantiles carry the
        // histogram's one-bucket relative error (2^(1/32) ≈ 2.2%).
        let one_bucket = 2f64.powf(1.0 / 32.0);
        assert_eq!(p.quantile(0.0), Some(1.0));
        assert_eq!(p.quantile(1.0), Some(100.0));
        let median = p.median().unwrap();
        assert!(median / 50.0 < one_bucket && median / 50.0 > 1.0 / one_bucket);
        let q99 = p.quantile(0.99).unwrap();
        assert!(q99 / 99.0 < one_bucket && q99 / 99.0 > 1.0 / one_bucket);
        assert_eq!(p.mean(), Some(50.5));
    }

    #[test]
    fn percentiles_empty() {
        let p = Percentiles::new();
        assert_eq!(p.median(), None);
        assert_eq!(p.mean(), None);
        assert!(p.is_empty());
    }

    #[test]
    fn time_series_windowing() {
        let mut ts = TimeSeries::new();
        for i in 0..10 {
            ts.push(SimTime::from_secs(i as f64), i as f64);
        }
        let w = ts.windowed_mean(SimTime::from_secs(5.0));
        // Window [0,5): values 0..=4 mean 2; window [5,10): values 5..=9 mean 7.
        assert_eq!(w.len(), 2);
        assert!((w[0].1 - 2.0).abs() < 1e-12);
        assert!((w[1].1 - 7.0).abs() < 1e-12);
    }

    #[test]
    fn time_series_skips_empty_windows() {
        let mut ts = TimeSeries::new();
        ts.push(SimTime::from_secs(0.5), 1.0);
        ts.push(SimTime::from_secs(10.5), 3.0);
        let w = ts.windowed_mean(SimTime::from_secs(1.0));
        assert_eq!(w.len(), 2);
        assert_eq!(w[0].1, 1.0);
        assert_eq!(w[1].1, 3.0);
    }

    #[test]
    #[should_panic(expected = "non-decreasing")]
    fn time_series_rejects_regression() {
        let mut ts = TimeSeries::new();
        ts.push(SimTime::from_secs(2.0), 0.0);
        ts.push(SimTime::from_secs(1.0), 0.0);
    }
}
