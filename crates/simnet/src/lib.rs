//! # leime-simnet
//!
//! Discrete-event simulation substrate for the LEIME reproduction — the
//! stand-in for the paper's physical testbed (Raspberry Pis, Jetson Nanos,
//! an i7 edge server, a V100 cloud, WiFi and Internet links shaped with
//! COMCAST).
//!
//! The crate provides composable primitives rather than a monolithic
//! simulator; the `leime` core crate assembles them into the full
//! device/edge/cloud co-inference pipeline:
//!
//! * [`SimTime`] — virtual time (seconds, f64 newtype),
//! * [`EventQueue`] — a deterministic time-ordered event heap with FIFO
//!   tie-breaking,
//! * [`FifoServer`] — a work-conserving single-queue server expressed in
//!   FLOPS (models a device CPU, an edge Docker share, or a cloud GPU),
//! * [`Link`] — a bandwidth + propagation-delay pipe with optional
//!   serialization (transfers queue behind each other, like a shared WiFi
//!   medium),
//! * [`TimeTrace`] — piecewise-constant time-varying parameters (bandwidth,
//!   arrival-rate traces),
//! * [`stats`] — Welford online moments, percentile sketches, and
//!   time-series recording for experiment output,
//! * [`SimMonitor`] — bridges simulation events (transfer latencies,
//!   queue depths, utilisation) into a `leime-telemetry` [`Registry`]
//!   and keeps a virtual clock in step with simulated time.
//!
//! [`Registry`]: leime_telemetry::Registry
//!
//! ```
//! use leime_simnet::{EventQueue, SimTime};
//!
//! let mut q: EventQueue<&str> = EventQueue::new();
//! q.schedule_at(SimTime::from_secs(2.0), "later");
//! q.schedule_at(SimTime::from_secs(1.0), "sooner");
//! let (t, ev) = q.pop().unwrap();
//! assert_eq!((t.as_secs(), ev), (1.0, "sooner"));
//! ```

mod event;
mod link;
mod monitor;
mod server;
mod time;
mod trace;

pub mod stats;

pub use event::EventQueue;
pub use link::Link;
pub use monitor::SimMonitor;
pub use server::FifoServer;
pub use time::SimTime;
pub use trace::TimeTrace;
