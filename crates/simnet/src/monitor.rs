//! Telemetry bridge for the simulation substrate.
//!
//! [`Link`] and [`FifoServer`] are plain serializable values, so they
//! cannot own metric handles themselves. A [`SimMonitor`] sits beside
//! them in the driving simulator: the driver reports transfers,
//! submissions and per-slot queue state here, and the monitor forwards
//! them to `leime-telemetry` metrics under a common name prefix while
//! keeping a [`VirtualClock`] in step with simulated time.
//!
//! [`Link`]: crate::Link
//! [`FifoServer`]: crate::FifoServer

use std::sync::Arc;

use leime_telemetry::{Histogram, Registry, Series, VirtualClock};

use crate::SimTime;

/// Records simulation-side telemetry (transfer latencies, queue depths,
/// server utilisation) into a [`Registry`] under a fixed prefix.
#[derive(Debug, Clone)]
pub struct SimMonitor {
    clock: VirtualClock,
    transfer_latency: Arc<Histogram>,
    queue_depth: Arc<Series>,
    utilisation: Arc<Series>,
}

impl SimMonitor {
    /// Creates a monitor recording into `registry` as
    /// `{prefix}.transfer_latency_s` (histogram), `{prefix}.queue_depth`
    /// and `{prefix}.utilisation` (series). The returned monitor shares
    /// its [`VirtualClock`] with the caller via [`SimMonitor::clock`].
    pub fn attach(registry: &Registry, prefix: &str) -> Self {
        SimMonitor {
            clock: VirtualClock::new(),
            transfer_latency: registry.histogram(&format!("{prefix}.transfer_latency_s")),
            queue_depth: registry.series(&format!("{prefix}.queue_depth")),
            utilisation: registry.series(&format!("{prefix}.utilisation")),
        }
    }

    /// The virtual clock this monitor stamps series with. The driving
    /// simulator should `advance_to` it as events are processed (the
    /// observe methods below also advance it).
    pub fn clock(&self) -> &VirtualClock {
        &self.clock
    }

    /// Records a completed link transfer that started at `start` and
    /// arrives at `arrival` (as returned by [`Link::transfer`]), i.e. its
    /// full queueing + serialization + propagation latency.
    ///
    /// [`Link::transfer`]: crate::Link::transfer
    pub fn observe_transfer(&self, start: SimTime, arrival: SimTime) {
        self.clock.advance_to(start.as_secs());
        self.transfer_latency.record((arrival - start).as_secs());
    }

    /// Samples a queue depth at time `now` (typically once per slot).
    pub fn sample_queue_depth(&self, now: SimTime, depth: f64) {
        self.clock.advance_to(now.as_secs());
        self.queue_depth.push(now.as_secs(), depth);
    }

    /// Samples a server utilisation at time `now` (typically once per
    /// slot, from [`FifoServer::utilisation`]).
    ///
    /// [`FifoServer::utilisation`]: crate::FifoServer::utilisation
    pub fn sample_utilisation(&self, now: SimTime, utilisation: f64) {
        self.clock.advance_to(now.as_secs());
        self.utilisation.push(now.as_secs(), utilisation);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Link;

    #[test]
    fn monitor_records_into_registry() {
        let registry = Registry::new();
        let monitor = SimMonitor::attach(&registry, "simnet.wifi");
        let mut link = Link::new(1e6, SimTime::from_secs(0.010), true);

        let start = SimTime::from_secs(1.0);
        let arrival = link.transfer(start, 125_000.0); // 1s serialization + 10ms prop
        monitor.observe_transfer(start, arrival);
        monitor.sample_queue_depth(SimTime::from_secs(2.0), 3.0);
        monitor.sample_utilisation(SimTime::from_secs(2.0), 0.75);

        let snap = registry.snapshot();
        let hist = snap
            .histogram_named("simnet.wifi.transfer_latency_s")
            .unwrap();
        assert_eq!(hist.count, 1);
        assert!((hist.max.unwrap() - 1.010).abs() < 1e-9);
        assert_eq!(
            snap.series_named("simnet.wifi.queue_depth").unwrap().points,
            vec![(2.0, 3.0)]
        );
        assert_eq!(
            snap.series_named("simnet.wifi.utilisation").unwrap().points,
            vec![(2.0, 0.75)]
        );
        // The clock followed the sampled times.
        use leime_telemetry::Clock;
        assert_eq!(monitor.clock().now(), 2.0);
    }
}
