use serde::{Deserialize, Serialize};
use std::cmp::Ordering;
use std::fmt;
use std::ops::{Add, AddAssign, Sub};

/// Virtual simulation time in seconds.
///
/// A thin `f64` newtype that provides a total order (NaN is rejected at
/// construction) so it can key the event heap deterministically.
///
/// ```
/// use leime_simnet::SimTime;
///
/// let t = SimTime::ZERO + SimTime::from_millis(250.0);
/// assert_eq!(t.as_secs(), 0.25);
/// assert!(t < SimTime::from_secs(1.0));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize, Default)]
pub struct SimTime(f64);

impl SimTime {
    /// The simulation epoch.
    pub const ZERO: SimTime = SimTime(0.0);

    /// Creates a time from seconds.
    ///
    /// # Panics
    ///
    /// Panics if `secs` is NaN or negative — virtual time is totally
    /// ordered and starts at zero by construction.
    pub fn from_secs(secs: f64) -> Self {
        assert!(
            secs.is_finite() && secs >= 0.0,
            "SimTime must be finite and non-negative, got {secs}"
        );
        SimTime(secs)
    }

    /// Creates a time from milliseconds.
    ///
    /// # Panics
    ///
    /// Same conditions as [`SimTime::from_secs`].
    pub fn from_millis(ms: f64) -> Self {
        SimTime::from_secs(ms / 1e3)
    }

    /// The time in seconds.
    pub fn as_secs(self) -> f64 {
        self.0
    }

    /// The time in milliseconds.
    pub fn as_millis(self) -> f64 {
        self.0 * 1e3
    }

    /// The later of two times.
    pub fn max(self, other: SimTime) -> SimTime {
        if self.0 >= other.0 {
            self
        } else {
            other
        }
    }

    /// Saturating difference `self - other`, clamped at zero.
    pub fn saturating_sub(self, other: SimTime) -> SimTime {
        SimTime((self.0 - other.0).max(0.0))
    }
}

impl Eq for SimTime {}

impl Ord for SimTime {
    fn cmp(&self, other: &Self) -> Ordering {
        // Construction forbids NaN, and total_cmp stays a total order
        // even if one ever slipped through.
        self.0.total_cmp(&other.0)
    }
}

impl PartialOrd for SimTime {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Add for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimTime) -> SimTime {
        SimTime(self.0 + rhs.0)
    }
}

impl AddAssign for SimTime {
    fn add_assign(&mut self, rhs: SimTime) {
        self.0 += rhs.0;
    }
}

impl Sub for SimTime {
    type Output = SimTime;
    /// # Panics
    ///
    /// Panics (in debug builds) if the result would be negative; use
    /// [`SimTime::saturating_sub`] when the order is not statically known.
    fn sub(self, rhs: SimTime) -> SimTime {
        let d = self.0 - rhs.0;
        debug_assert!(d >= -1e-12, "SimTime subtraction went negative: {d}");
        SimTime(d.max(0.0))
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 < 1.0 {
            write!(f, "{:.3}ms", self.0 * 1e3)
        } else {
            write!(f, "{:.3}s", self.0)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions() {
        assert_eq!(SimTime::from_millis(1500.0).as_secs(), 1.5);
        assert_eq!(SimTime::from_secs(2.0).as_millis(), 2000.0);
    }

    #[test]
    fn ordering_and_arith() {
        let a = SimTime::from_secs(1.0);
        let b = SimTime::from_secs(2.0);
        assert!(a < b);
        assert_eq!((a + b).as_secs(), 3.0);
        assert_eq!((b - a).as_secs(), 1.0);
        assert_eq!(a.max(b), b);
        assert_eq!(a.saturating_sub(b), SimTime::ZERO);
    }

    #[test]
    #[should_panic(expected = "finite and non-negative")]
    fn rejects_nan() {
        SimTime::from_secs(f64::NAN);
    }

    #[test]
    #[should_panic(expected = "finite and non-negative")]
    fn rejects_negative() {
        SimTime::from_secs(-1.0);
    }

    #[test]
    fn display_picks_unit() {
        assert_eq!(SimTime::from_millis(12.5).to_string(), "12.500ms");
        assert_eq!(SimTime::from_secs(3.25).to_string(), "3.250s");
    }
}
