//! Parametric cumulative exit-rate curves.
//!
//! The large-scale simulation experiments need the per-exit cumulative exit
//! probabilities `σ_exit_i` without running the full calibration pipeline
//! for every sweep point. This module provides a two-parameter logistic
//! family fitted to the calibration results (and matching the paper's own
//! knob — it synthesises datasets "reflected by the exit rate of
//! First-exit", Fig. 3b).

use leime_dnn::{DnnChain, ExitRates};
use leime_invariant as invariant;
use serde::{Deserialize, Serialize};

/// A logistic cumulative exit-rate curve over depth fraction `δ ∈ (0, 1]`:
///
/// ```text
/// σ(δ) = F(δ) / F(1),   F(δ) = 1 / (1 + exp(−(δ − midpoint) / spread))
/// ```
///
/// `midpoint` tracks dataset difficulty (larger = harder, fewer early
/// exits); `spread` controls how gradually exits accumulate. Normalising by
/// `F(1)` guarantees `σ(1) = 1` (every task exits at the final exit).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ExitRateModel {
    midpoint: f64,
    spread: f64,
}

impl ExitRateModel {
    /// Creates a model with explicit parameters.
    ///
    /// # Panics
    ///
    /// Panics if `spread` is not strictly positive.
    pub fn new(midpoint: f64, spread: f64) -> Self {
        assert!(spread > 0.0, "spread must be positive, got {spread}");
        ExitRateModel { midpoint, spread }
    }

    /// A CIFAR-10-like default: ≈60 % of tasks exit in the first third of
    /// the network (BranchyNet reports the majority of CIFAR-10 exiting at
    /// the first branch of an AlexNet-depth model).
    pub fn cifar_like() -> Self {
        ExitRateModel::new(0.25, 0.18)
    }

    /// Dataset-difficulty midpoint.
    pub fn midpoint(&self) -> f64 {
        self.midpoint
    }

    /// Spread parameter.
    pub fn spread(&self) -> f64 {
        self.spread
    }

    /// Cumulative exit probability at depth fraction `delta ∈ [0, 1]`.
    pub fn sigma(&self, delta: f64) -> f64 {
        let f = |d: f64| 1.0 / (1.0 + (-(d - self.midpoint) / self.spread).exp());
        (f(delta) / f(1.0)).clamp(0.0, 1.0)
    }

    /// Fits the midpoint so that `σ(delta) = target` at the given depth,
    /// holding `spread` fixed — the Fig. 3(b) knob ("First-exit exit rate").
    ///
    /// # Panics
    ///
    /// Panics if `target` is outside `(0, 1)` or `delta` outside `(0, 1)`.
    pub fn with_sigma_at(delta: f64, target: f64, spread: f64) -> Self {
        assert!(
            target > 0.0 && target < 1.0,
            "target rate {target} outside (0, 1)"
        );
        assert!(delta > 0.0 && delta < 1.0, "depth {delta} outside (0, 1)");
        // Bisection on the midpoint: sigma is strictly decreasing in it.
        let (mut lo, mut hi) = (-5.0f64, 5.0f64);
        for _ in 0..200 {
            let mid = 0.5 * (lo + hi);
            let m = ExitRateModel::new(mid, spread);
            if m.sigma(delta) > target {
                lo = mid;
            } else {
                hi = mid;
            }
        }
        ExitRateModel::new(0.5 * (lo + hi), spread)
    }

    /// Materialises cumulative [`ExitRates`] for every candidate exit of a
    /// chain, weighting depth by *cumulative FLOPs* (a layer's depth
    /// fraction is the share of total compute done once it finishes — the
    /// quantity that actually determines separability, not the layer
    /// index).
    pub fn rates_for_chain(&self, chain: &DnnChain) -> ExitRates {
        let prefix = chain.flops_prefix();
        let total = chain.total_flops();
        let m = chain.num_layers();
        let mut rates: Vec<f64> = (0..m).map(|i| self.sigma(prefix[i + 1] / total)).collect();
        // Enforce exact terminal condition and monotonicity under rounding.
        rates[m - 1] = 1.0;
        for i in 1..m {
            if rates[i] < rates[i - 1] {
                rates[i] = rates[i - 1];
            }
        }
        ExitRates::new(rates).unwrap_or_else(|e| {
            invariant::violation("workload.exitmodel", &format!("constructed rates: {e}"))
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use leime_dnn::zoo;

    #[test]
    fn sigma_is_monotone_and_terminal() {
        let m = ExitRateModel::cifar_like();
        let mut prev = 0.0;
        for i in 0..=20 {
            let d = i as f64 / 20.0;
            let s = m.sigma(d);
            assert!(s >= prev - 1e-12, "sigma not monotone at {d}");
            assert!((0.0..=1.0).contains(&s));
            prev = s;
        }
        assert!((m.sigma(1.0) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn harder_midpoint_lowers_early_rate() {
        let easy = ExitRateModel::new(0.2, 0.15);
        let hard = ExitRateModel::new(0.6, 0.15);
        assert!(easy.sigma(0.3) > hard.sigma(0.3));
    }

    #[test]
    fn with_sigma_at_hits_target() {
        for &target in &[0.1, 0.3, 0.5, 0.7, 0.9] {
            let m = ExitRateModel::with_sigma_at(0.2, target, 0.15);
            assert!(
                (m.sigma(0.2) - target).abs() < 1e-6,
                "target {target} got {}",
                m.sigma(0.2)
            );
        }
    }

    #[test]
    fn chain_rates_are_valid_and_flops_weighted() {
        let chain = zoo::vgg16(32, 10);
        let rates = ExitRateModel::cifar_like().rates_for_chain(&chain);
        assert_eq!(rates.len(), chain.num_layers());
        assert!((rates.rate(chain.num_layers() - 1).unwrap() - 1.0).abs() < 1e-12);
        // Early VGG layers are cheap, so the first exit's cumulative-FLOPs
        // depth is small and its rate is well below the midpoint rate.
        assert!(rates.rate(0).unwrap() < 0.5);
    }

    #[test]
    fn cifar_like_majority_exits_early() {
        let chain = zoo::vgg16(32, 10);
        let rates = ExitRateModel::cifar_like().rates_for_chain(&chain);
        // By two-thirds of the layer count, most tasks have exited.
        let idx = chain.num_layers() * 2 / 3;
        assert!(rates.rate(idx).unwrap() > 0.5);
    }

    #[test]
    #[should_panic(expected = "spread must be positive")]
    fn rejects_zero_spread() {
        ExitRateModel::new(0.5, 0.0);
    }
}
