//! Synthetic complexity-parameterised classification data.

use rand::rngs::StdRng;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// One classification task input: a class label plus a *complexity* in
/// `[0, 1]`.
///
/// Complexity is the latent quantity that determines how deep into the
/// network a sample must travel before its features separate — the abstract
/// counterpart of "an easy CIFAR image exits at the first branch". The
/// classifier never sees it; it only shapes the features the
/// [`FeatureCascade`](crate::FeatureCascade) emits.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Sample {
    /// Ground-truth class.
    pub class: usize,
    /// Latent difficulty in `[0, 1]`: 0 = trivially separable, 1 = needs
    /// the full network depth.
    pub complexity: f64,
}

/// Shape of the complexity distribution.
///
/// The paper synthesises datasets of different complexities to sweep the
/// First-exit rate (Fig. 3b); these distributions reproduce that knob.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum ComplexityDist {
    /// `U[0, 1]` — a balanced mix.
    Uniform,
    /// `u^shape` with `shape > 1` — mass near 0 (mostly easy samples).
    EasySkewed {
        /// Skew exponent (> 1 = easier).
        shape: f64,
    },
    /// `1 - u^shape` with `shape > 1` — mass near 1 (mostly hard samples).
    HardSkewed {
        /// Skew exponent (> 1 = harder).
        shape: f64,
    },
    /// Every sample has the same complexity.
    Fixed {
        /// The constant complexity value.
        value: f64,
    },
}

impl ComplexityDist {
    /// Draws one complexity value.
    pub fn draw(&self, rng: &mut StdRng) -> f64 {
        match *self {
            ComplexityDist::Uniform => rng.gen_range(0.0..1.0),
            ComplexityDist::EasySkewed { shape } => rng.gen_range(0.0f64..1.0).powf(shape),
            ComplexityDist::HardSkewed { shape } => 1.0 - rng.gen_range(0.0f64..1.0).powf(shape),
            ComplexityDist::Fixed { value } => value.clamp(0.0, 1.0),
        }
    }
}

/// A synthetic dataset: `num_classes` balanced classes with complexities
/// drawn from a [`ComplexityDist`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SyntheticDataset {
    num_classes: usize,
    dist: ComplexityDist,
}

impl SyntheticDataset {
    /// Creates a dataset generator.
    ///
    /// # Panics
    ///
    /// Panics if `num_classes < 2`.
    pub fn new(num_classes: usize, dist: ComplexityDist) -> Self {
        assert!(num_classes >= 2, "need at least 2 classes");
        SyntheticDataset { num_classes, dist }
    }

    /// A CIFAR-10-like default: 10 classes, mildly easy-skewed complexity
    /// (most natural images are easy; BranchyNet reports >65% of CIFAR-10
    /// exiting at the first branch).
    pub fn cifar_like() -> Self {
        SyntheticDataset::new(10, ComplexityDist::EasySkewed { shape: 2.0 })
    }

    /// Number of classes.
    pub fn num_classes(&self) -> usize {
        self.num_classes
    }

    /// The complexity distribution.
    pub fn complexity_dist(&self) -> ComplexityDist {
        self.dist
    }

    /// Draws one sample with a uniformly random class.
    pub fn draw(&self, rng: &mut StdRng) -> Sample {
        Sample {
            class: rng.gen_range(0..self.num_classes),
            complexity: self.dist.draw(rng),
        }
    }

    /// Draws a batch of `n` samples.
    pub fn draw_batch(&self, n: usize, rng: &mut StdRng) -> Vec<Sample> {
        (0..n).map(|_| self.draw(rng)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn complexity_in_unit_interval() {
        let mut rng = StdRng::seed_from_u64(0);
        for dist in [
            ComplexityDist::Uniform,
            ComplexityDist::EasySkewed { shape: 3.0 },
            ComplexityDist::HardSkewed { shape: 3.0 },
            ComplexityDist::Fixed { value: 0.4 },
        ] {
            for _ in 0..1000 {
                let c = dist.draw(&mut rng);
                assert!((0.0..=1.0).contains(&c), "{dist:?} drew {c}");
            }
        }
    }

    #[test]
    fn easy_skew_has_lower_mean_than_hard() {
        let mut rng = StdRng::seed_from_u64(1);
        let mean = |d: ComplexityDist, rng: &mut StdRng| {
            (0..5000).map(|_| d.draw(rng)).sum::<f64>() / 5000.0
        };
        let easy = mean(ComplexityDist::EasySkewed { shape: 2.0 }, &mut rng);
        let uni = mean(ComplexityDist::Uniform, &mut rng);
        let hard = mean(ComplexityDist::HardSkewed { shape: 2.0 }, &mut rng);
        assert!(easy < uni && uni < hard, "{easy} {uni} {hard}");
        // E[u^2] = 1/3 for the easy skew.
        assert!((easy - 1.0 / 3.0).abs() < 0.03);
    }

    #[test]
    fn fixed_complexity_is_constant() {
        let mut rng = StdRng::seed_from_u64(2);
        let d = ComplexityDist::Fixed { value: 0.7 };
        for _ in 0..10 {
            assert_eq!(d.draw(&mut rng), 0.7);
        }
    }

    #[test]
    fn classes_are_roughly_balanced() {
        let mut rng = StdRng::seed_from_u64(3);
        let ds = SyntheticDataset::cifar_like();
        let batch = ds.draw_batch(10_000, &mut rng);
        let mut counts = vec![0usize; ds.num_classes()];
        for s in &batch {
            counts[s.class] += 1;
        }
        for &c in &counts {
            assert!((800..1200).contains(&c), "imbalanced: {counts:?}");
        }
    }

    #[test]
    #[should_panic(expected = "at least 2 classes")]
    fn rejects_single_class() {
        SyntheticDataset::new(1, ComplexityDist::Uniform);
    }
}
