//! # leime-workload
//!
//! Workload generation for the LEIME reproduction: everything stochastic
//! that the paper's experiments feed into the system.
//!
//! * [`arrival`] — task arrival processes. The paper's queueing model draws
//!   a per-slot task count `M_i(t)`, i.i.d. over slots with mean `k_i`
//!   (§III-B1); the DES additionally supports Poisson inter-arrival times
//!   and trace-modulated rates for the Fig. 9 stability experiment.
//! * [`dataset`] — a synthetic, complexity-parameterised classification
//!   dataset standing in for CIFAR-10: each sample has a class and a
//!   *complexity* in `[0, 1]` controlling how deep a network must look
//!   before the sample becomes separable.
//! * [`cascade`] — the depth-indexed feature extractor: a stand-in for a
//!   trained CNN trunk that produces, for any depth fraction, features
//!   whose separability grows with depth relative to sample complexity and
//!   degrades slightly past the "overthinking" onset (Kaya et al., ICML
//!   2019), which is the mechanism behind the paper's Fig. 6 observation
//!   that some exit combinations *improve* accuracy.
//! * [`exitmodel`] — parametric cumulative exit-rate curves `σ(depth)` used
//!   by the large-scale simulations (the paper itself synthesises datasets
//!   "reflected by the exit rate of First-exit", Fig. 3b).
//!
//! All randomness flows through caller-provided seeded [`rand::rngs::StdRng`]s.

pub mod arrival;
pub mod cascade;
pub mod dataset;
pub mod exitmodel;

pub use arrival::{Mmpp, PoissonArrivals, SlotArrivals, TraceArrivals};
pub use cascade::{CascadeParams, FeatureCascade};
pub use dataset::{ComplexityDist, Sample, SyntheticDataset};
pub use exitmodel::ExitRateModel;
