//! Task arrival processes.

use leime_simnet::{SimTime, TimeTrace};
use rand::rngs::StdRng;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Per-slot task count generator — the paper's `M_i(t)`, i.i.d. over slots
/// within `[0, M_max]` with expectation `k_i`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum SlotArrivals {
    /// Exactly `k` tasks every slot (deterministic load).
    Deterministic {
        /// Tasks per slot.
        k: f64,
    },
    /// Uniform integer count on `[lo, hi]` (mean `(lo+hi)/2`).
    Uniform {
        /// Inclusive lower bound.
        lo: u64,
        /// Inclusive upper bound.
        hi: u64,
    },
    /// Poisson count with the given mean, truncated at `max` (the paper
    /// bounds `M_i(t)` by `M_{i,max}`).
    Poisson {
        /// Mean tasks per slot `k_i`.
        mean: f64,
        /// Truncation bound `M_{i,max}`.
        max: u64,
    },
}

impl SlotArrivals {
    /// Draws the task count for one slot.
    ///
    /// # Panics
    ///
    /// Panics if the variant parameters are inconsistent (`lo > hi`,
    /// negative mean).
    pub fn draw(&self, rng: &mut StdRng) -> u64 {
        match *self {
            SlotArrivals::Deterministic { k } => {
                assert!(k >= 0.0, "negative arrival mean {k}");
                // Deterministic fractional rates: floor + Bernoulli remainder
                // keeps the long-run mean exact.
                let base = k.floor() as u64;
                let frac = k - k.floor();
                base + u64::from(rng.gen_bool(frac.clamp(0.0, 1.0)))
            }
            SlotArrivals::Uniform { lo, hi } => {
                assert!(lo <= hi, "uniform arrivals lo {lo} > hi {hi}");
                rng.gen_range(lo..=hi)
            }
            SlotArrivals::Poisson { mean, max } => {
                assert!(mean >= 0.0, "negative arrival mean {mean}");
                poisson_draw(mean, rng).min(max)
            }
        }
    }

    /// Long-run expected tasks per slot `k_i` (ignoring truncation bias,
    /// which is negligible when `max ≳ 3·mean`).
    pub fn mean(&self) -> f64 {
        match *self {
            SlotArrivals::Deterministic { k } => k,
            SlotArrivals::Uniform { lo, hi } => (lo + hi) as f64 / 2.0,
            SlotArrivals::Poisson { mean, .. } => mean,
        }
    }
}

/// Knuth's algorithm for small means; normal approximation above 30 to
/// avoid O(mean) work.
fn poisson_draw(mean: f64, rng: &mut StdRng) -> u64 {
    if mean <= 0.0 {
        return 0;
    }
    if mean > 30.0 {
        // Normal approximation N(mean, mean), rounded and clamped.
        let u1: f64 = rng.gen_range(f64::EPSILON..1.0);
        let u2: f64 = rng.gen_range(0.0..1.0);
        let z = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
        return (mean + z * mean.sqrt()).round().max(0.0) as u64;
    }
    let l = (-mean).exp();
    let mut k = 0u64;
    let mut p = 1.0f64;
    loop {
        p *= rng.gen::<f64>();
        if p <= l {
            return k;
        }
        k += 1;
    }
}

/// A two-state Markov-modulated Poisson process (bursty arrivals): each
/// slot the process sits in a *calm* or *burst* state with its own Poisson
/// mean, switching state with the given per-slot probabilities — the
/// classic model for the unpredictable load spikes of the "wild edge"
/// (§II-A: "task arrival rates vary dynamically").
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Mmpp {
    calm_mean: f64,
    burst_mean: f64,
    p_enter_burst: f64,
    p_leave_burst: f64,
    max: u64,
    in_burst: bool,
}

impl Mmpp {
    /// Creates a bursty process starting in the calm state.
    ///
    /// # Panics
    ///
    /// Panics if means are negative or switching probabilities are outside
    /// `[0, 1]`.
    pub fn new(
        calm_mean: f64,
        burst_mean: f64,
        p_enter_burst: f64,
        p_leave_burst: f64,
        max: u64,
    ) -> Self {
        assert!(calm_mean >= 0.0 && burst_mean >= 0.0, "negative MMPP means");
        assert!(
            (0.0..=1.0).contains(&p_enter_burst) && (0.0..=1.0).contains(&p_leave_burst),
            "MMPP switching probabilities outside [0, 1]"
        );
        Mmpp {
            calm_mean,
            burst_mean,
            p_enter_burst,
            p_leave_burst,
            max,
            in_burst: false,
        }
    }

    /// Whether the process is currently bursting.
    pub fn in_burst(&self) -> bool {
        self.in_burst
    }

    /// Long-run mean tasks per slot (stationary distribution of the
    /// two-state chain).
    pub fn stationary_mean(&self) -> f64 {
        let denom = self.p_enter_burst + self.p_leave_burst;
        // Both probabilities are validated non-negative, so a non-positive
        // sum means both are zero: the chain never leaves its calm start.
        if denom <= 0.0 {
            return self.calm_mean;
        }
        let pi_burst = self.p_enter_burst / denom;
        (1.0 - pi_burst) * self.calm_mean + pi_burst * self.burst_mean
    }

    /// Advances the state machine one slot and returns the new state's
    /// mean (for rate-driven consumers like the DES, which sample their
    /// own arrivals from it).
    pub fn advance_mean(&mut self, rng: &mut StdRng) -> f64 {
        let switch = if self.in_burst {
            self.p_leave_burst
        } else {
            self.p_enter_burst
        };
        if rng.gen_bool(switch) {
            self.in_burst = !self.in_burst;
        }
        if self.in_burst {
            self.burst_mean
        } else {
            self.calm_mean
        }
    }

    /// Advances the state machine one slot and draws that slot's count.
    pub fn draw(&mut self, rng: &mut StdRng) -> u64 {
        let switch = if self.in_burst {
            self.p_leave_burst
        } else {
            self.p_enter_burst
        };
        if rng.gen_bool(switch) {
            self.in_burst = !self.in_burst;
        }
        let mean = if self.in_burst {
            self.burst_mean
        } else {
            self.calm_mean
        };
        poisson_draw(mean, rng).min(self.max)
    }
}

/// Poisson process inter-arrival generator for the task-level DES.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PoissonArrivals {
    rate_per_sec: f64,
}

impl PoissonArrivals {
    /// Creates a process with the given rate (tasks per second).
    ///
    /// # Panics
    ///
    /// Panics if `rate_per_sec` is not strictly positive and finite.
    pub fn new(rate_per_sec: f64) -> Self {
        assert!(
            rate_per_sec.is_finite() && rate_per_sec > 0.0,
            "arrival rate must be positive, got {rate_per_sec}"
        );
        PoissonArrivals { rate_per_sec }
    }

    /// The rate in tasks per second.
    pub fn rate(&self) -> f64 {
        self.rate_per_sec
    }

    /// Draws the next exponential inter-arrival gap.
    pub fn next_gap(&self, rng: &mut StdRng) -> SimTime {
        let u: f64 = rng.gen_range(f64::EPSILON..1.0);
        SimTime::from_secs(-u.ln() / self.rate_per_sec)
    }
}

/// A time-varying arrival process: a [`TimeTrace`] modulates the per-slot
/// Poisson mean — the workload of the Fig. 9 stability experiment, where
/// the arrival rate steps up and down over the run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TraceArrivals {
    trace: TimeTrace,
    max: u64,
}

impl TraceArrivals {
    /// Creates a process whose per-slot mean follows `trace`, truncated at
    /// `max` tasks per slot.
    pub fn new(trace: TimeTrace, max: u64) -> Self {
        TraceArrivals { trace, max }
    }

    /// Draws the task count for the slot starting at `slot_start`.
    pub fn draw(&self, slot_start: SimTime, rng: &mut StdRng) -> u64 {
        let mean = self.trace.value_at(slot_start).max(0.0);
        poisson_draw(mean, rng).min(self.max)
    }

    /// The underlying rate trace.
    pub fn trace(&self) -> &TimeTrace {
        &self.trace
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn deterministic_integer_rate() {
        let mut rng = StdRng::seed_from_u64(0);
        let a = SlotArrivals::Deterministic { k: 5.0 };
        for _ in 0..10 {
            assert_eq!(a.draw(&mut rng), 5);
        }
    }

    #[test]
    fn deterministic_fractional_rate_mean() {
        let mut rng = StdRng::seed_from_u64(1);
        let a = SlotArrivals::Deterministic { k: 2.5 };
        let total: u64 = (0..20_000).map(|_| a.draw(&mut rng)).sum();
        let mean = total as f64 / 20_000.0;
        assert!((mean - 2.5).abs() < 0.05, "mean {mean}");
    }

    #[test]
    fn uniform_bounds_and_mean() {
        let mut rng = StdRng::seed_from_u64(2);
        let a = SlotArrivals::Uniform { lo: 2, hi: 8 };
        let mut total = 0u64;
        for _ in 0..10_000 {
            let x = a.draw(&mut rng);
            assert!((2..=8).contains(&x));
            total += x;
        }
        assert!((total as f64 / 10_000.0 - 5.0).abs() < 0.1);
        assert_eq!(a.mean(), 5.0);
    }

    #[test]
    fn poisson_small_mean() {
        let mut rng = StdRng::seed_from_u64(3);
        let a = SlotArrivals::Poisson {
            mean: 4.0,
            max: 100,
        };
        let total: u64 = (0..20_000).map(|_| a.draw(&mut rng)).sum();
        let mean = total as f64 / 20_000.0;
        assert!((mean - 4.0).abs() < 0.1, "mean {mean}");
    }

    #[test]
    fn poisson_large_mean_uses_normal_approx() {
        let mut rng = StdRng::seed_from_u64(4);
        let a = SlotArrivals::Poisson {
            mean: 100.0,
            max: 10_000,
        };
        let total: u64 = (0..5_000).map(|_| a.draw(&mut rng)).sum();
        let mean = total as f64 / 5_000.0;
        assert!((mean - 100.0).abs() < 2.0, "mean {mean}");
    }

    #[test]
    fn poisson_truncation() {
        let mut rng = StdRng::seed_from_u64(5);
        let a = SlotArrivals::Poisson {
            mean: 50.0,
            max: 10,
        };
        for _ in 0..100 {
            assert!(a.draw(&mut rng) <= 10);
        }
    }

    #[test]
    fn exponential_gaps_have_correct_mean() {
        let mut rng = StdRng::seed_from_u64(6);
        let p = PoissonArrivals::new(10.0);
        let total: f64 = (0..20_000).map(|_| p.next_gap(&mut rng).as_secs()).sum();
        let mean = total / 20_000.0;
        assert!((mean - 0.1).abs() < 0.01, "mean gap {mean}");
    }

    #[test]
    fn trace_arrivals_follow_trace() {
        let mut rng = StdRng::seed_from_u64(7);
        let trace = TimeTrace::from_points(vec![
            (SimTime::ZERO, 2.0),
            (SimTime::from_secs(100.0), 20.0),
        ])
        .unwrap();
        let a = TraceArrivals::new(trace, 1000);
        let early: u64 = (0..2000)
            .map(|_| a.draw(SimTime::from_secs(1.0), &mut rng))
            .sum();
        let late: u64 = (0..2000)
            .map(|_| a.draw(SimTime::from_secs(150.0), &mut rng))
            .sum();
        assert!((early as f64 / 2000.0 - 2.0).abs() < 0.2);
        assert!((late as f64 / 2000.0 - 20.0).abs() < 1.0);
    }

    #[test]
    #[should_panic(expected = "arrival rate must be positive")]
    fn poisson_arrivals_reject_zero_rate() {
        PoissonArrivals::new(0.0);
    }

    #[test]
    fn mmpp_long_run_mean_matches_stationary() {
        let mut rng = StdRng::seed_from_u64(8);
        let mut p = Mmpp::new(2.0, 20.0, 0.05, 0.2, 1000);
        let n = 100_000;
        let total: u64 = (0..n).map(|_| p.draw(&mut rng)).sum();
        let mean = total as f64 / n as f64;
        let want = p.stationary_mean(); // pi_burst = 0.2 -> 2*0.8 + 20*0.2 = 5.6
        assert!((want - 5.6).abs() < 1e-9);
        assert!(
            (mean - want).abs() / want < 0.05,
            "mean {mean}, want {want}"
        );
    }

    #[test]
    fn mmpp_bursts_are_bursty() {
        // Variance of an MMPP must exceed a Poisson of the same mean
        // (index of dispersion > 1).
        let mut rng = StdRng::seed_from_u64(9);
        let mut p = Mmpp::new(2.0, 30.0, 0.02, 0.1, 1000);
        let xs: Vec<f64> = (0..50_000).map(|_| p.draw(&mut rng) as f64).collect();
        let mean = xs.iter().sum::<f64>() / xs.len() as f64;
        let var = xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / xs.len() as f64;
        assert!(var / mean > 2.0, "dispersion {}", var / mean);
    }

    #[test]
    fn mmpp_state_machine_switches() {
        let mut rng = StdRng::seed_from_u64(10);
        let mut p = Mmpp::new(1.0, 10.0, 0.5, 0.5, 100);
        assert!(!p.in_burst());
        let mut saw_burst = false;
        for _ in 0..100 {
            p.draw(&mut rng);
            saw_burst |= p.in_burst();
        }
        assert!(saw_burst);
    }

    #[test]
    #[should_panic(expected = "switching probabilities")]
    fn mmpp_validates_probabilities() {
        Mmpp::new(1.0, 2.0, 1.5, 0.1, 10);
    }
}
