//! The depth-indexed feature cascade.
//!
//! A trained CNN trunk maps an input to progressively more separable
//! features; how fast separability grows depends on the sample and the
//! architecture. The cascade reproduces that geometry synthetically so the
//! calibration pipeline can train *real* softmax exit classifiers and
//! measure genuine exit rates and accuracies, without training VGG-16 on
//! CIFAR-10 (see DESIGN.md §2 for the substitution argument).

use crate::dataset::Sample;
use leime_invariant as invariant;
use leime_tensor::{Shape, Tensor};
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

/// Architecture-dependent parameters of the cascade.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CascadeParams {
    /// Feature dimension produced at every depth.
    pub feature_dim: usize,
    /// How sharply separability rises once depth exceeds the sample's
    /// complexity (logistic slope).
    pub sharpness: f64,
    /// Strength of the "overthinking" degradation for easy samples at deep
    /// exits (Kaya et al.): 0 disables it.
    pub overthink_strength: f64,
    /// How far past the sample's complexity the degradation starts
    /// (in depth-fraction units).
    pub overthink_onset: f64,
    /// Standard deviation of the additive feature noise.
    pub noise: f64,
}

impl Default for CascadeParams {
    fn default() -> Self {
        CascadeParams {
            feature_dim: 32,
            sharpness: 10.0,
            overthink_strength: 0.35,
            overthink_onset: 0.25,
            noise: 0.55,
        }
    }
}

impl CascadeParams {
    /// Parameter presets qualitatively matching the paper's Fig. 6
    /// architecture split: ResNet-34 and SqueezeNet-1.0 show strong
    /// overthinking (shallow exits often *beat* the final exit), while
    /// Inception v3 and VGG-16 favour deeper exits.
    pub fn for_architecture(name: &str) -> CascadeParams {
        let base = CascadeParams::default();
        match name {
            "resnet34" => CascadeParams {
                overthink_strength: 0.55,
                overthink_onset: 0.18,
                sharpness: 12.0,
                ..base
            },
            "squeezenet_1_0" => CascadeParams {
                overthink_strength: 0.6,
                overthink_onset: 0.2,
                sharpness: 9.0,
                ..base
            },
            "inception_v3" => CascadeParams {
                overthink_strength: 0.15,
                overthink_onset: 0.4,
                sharpness: 8.0,
                ..base
            },
            "vgg16" => CascadeParams {
                overthink_strength: 0.2,
                overthink_onset: 0.35,
                sharpness: 10.0,
                ..base
            },
            _ => base,
        }
    }
}

/// Depth-indexed feature extractor for a fixed class set.
///
/// For a sample `(class, complexity c)` at depth fraction `δ ∈ (0, 1]` the
/// emitted feature vector is
///
/// ```text
/// x = α(δ, c) · prototype[class] + noise · ε,   ε ~ N(0, I)
/// α(δ, c) = sigmoid(sharpness · (δ − c))
///           − overthink_strength · max(0, δ − c − overthink_onset)
/// ```
///
/// so separability rises once depth passes the sample's complexity and
/// *decays* again for easy samples far past it (overthinking).
#[derive(Debug, Clone)]
pub struct FeatureCascade {
    params: CascadeParams,
    prototypes: Vec<Tensor>,
}

impl FeatureCascade {
    /// Builds a cascade for `num_classes` classes with deterministic
    /// prototypes derived from `seed`.
    ///
    /// # Panics
    ///
    /// Panics if `num_classes < 2` or `feature_dim == 0`.
    pub fn new(num_classes: usize, params: CascadeParams, seed: u64) -> Self {
        assert!(num_classes >= 2, "need at least 2 classes");
        assert!(params.feature_dim > 0, "feature_dim must be positive");
        let mut rng = StdRng::seed_from_u64(seed);
        let prototypes = (0..num_classes)
            .map(|_| {
                let t = Tensor::randn(Shape::d1(params.feature_dim), &mut rng);
                let n = t.norm().max(1e-6);
                // Unit-norm prototypes scaled up so signal can dominate noise.
                t.scale(3.0 / n)
            })
            .collect();
        FeatureCascade { params, prototypes }
    }

    /// The cascade parameters.
    pub fn params(&self) -> CascadeParams {
        self.params
    }

    /// Number of classes.
    pub fn num_classes(&self) -> usize {
        self.prototypes.len()
    }

    /// Signal strength `α(δ, c)` — exposed for tests and diagnostics.
    pub fn signal_strength(&self, depth_fraction: f64, complexity: f64) -> f64 {
        let p = &self.params;
        let rise = 1.0 / (1.0 + (-p.sharpness * (depth_fraction - complexity)).exp());
        let overshoot = (depth_fraction - complexity - p.overthink_onset).max(0.0);
        (rise - p.overthink_strength * overshoot).max(0.0)
    }

    /// Emits the feature vector for `sample` at `depth_fraction ∈ (0, 1]`.
    ///
    /// # Panics
    ///
    /// Panics if `depth_fraction` is outside `(0, 1]` or the sample's class
    /// is unknown.
    pub fn features(&self, sample: Sample, depth_fraction: f64, rng: &mut StdRng) -> Tensor {
        assert!(
            depth_fraction > 0.0 && depth_fraction <= 1.0,
            "depth fraction {depth_fraction} outside (0, 1]"
        );
        let proto = self.prototypes.get(sample.class).unwrap_or_else(|| {
            invariant::violation(
                "workload.cascade",
                &format!("unknown class {}", sample.class),
            )
        });
        let alpha = self.signal_strength(depth_fraction, sample.complexity) as f32;
        let noise =
            Tensor::randn(Shape::d1(self.params.feature_dim), rng).scale(self.params.noise as f32);
        proto.scale(alpha).add(&noise).unwrap_or_else(|e| {
            invariant::violation("workload.cascade", &format!("feature shapes diverged: {e}"))
        })
    }

    /// Emits a feature matrix `(n, feature_dim)` plus labels for a batch of
    /// samples at one depth.
    pub fn batch_features(
        &self,
        samples: &[Sample],
        depth_fraction: f64,
        rng: &mut StdRng,
    ) -> (Tensor, Vec<usize>) {
        let d = self.params.feature_dim;
        let mut data = Vec::with_capacity(samples.len() * d);
        let mut labels = Vec::with_capacity(samples.len());
        for &s in samples {
            let f = self.features(s, depth_fraction, rng);
            data.extend_from_slice(f.data());
            labels.push(s.class);
        }
        (
            Tensor::from_vec(Shape::d2(samples.len(), d), data).unwrap_or_else(|e| {
                invariant::violation("workload.cascade", &format!("batch shape: {e}"))
            }),
            labels,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cascade() -> FeatureCascade {
        FeatureCascade::new(4, CascadeParams::default(), 7)
    }

    #[test]
    fn signal_rises_with_depth() {
        let c = cascade();
        let easy = Sample {
            class: 0,
            complexity: 0.2,
        };
        let shallow = c.signal_strength(0.1, easy.complexity);
        let at = c.signal_strength(0.3, easy.complexity);
        assert!(at > shallow);
    }

    #[test]
    fn hard_samples_need_depth() {
        let c = cascade();
        // A hard sample has weak signal at shallow depth but strong at 1.0.
        assert!(c.signal_strength(0.2, 0.9) < 0.3);
        assert!(c.signal_strength(1.0, 0.9) > 0.6);
    }

    #[test]
    fn overthinking_degrades_easy_samples_at_depth() {
        let c = cascade();
        // Easy sample: best signal shortly after its complexity, lower at
        // full depth.
        let peak = c.signal_strength(0.3, 0.05);
        let deep = c.signal_strength(1.0, 0.05);
        assert!(deep < peak, "peak {peak}, deep {deep}");
    }

    #[test]
    fn no_overthinking_when_disabled() {
        let params = CascadeParams {
            overthink_strength: 0.0,
            ..CascadeParams::default()
        };
        let c = FeatureCascade::new(3, params, 0);
        assert!(c.signal_strength(1.0, 0.1) >= c.signal_strength(0.3, 0.1) - 1e-9);
    }

    #[test]
    fn features_have_expected_shape() {
        let c = cascade();
        let mut rng = StdRng::seed_from_u64(0);
        let s = Sample {
            class: 1,
            complexity: 0.5,
        };
        let f = c.features(s, 0.5, &mut rng);
        assert_eq!(f.shape().dims(), &[32]);
    }

    #[test]
    fn batch_features_stack_rows() {
        let c = cascade();
        let mut rng = StdRng::seed_from_u64(0);
        let samples = vec![
            Sample {
                class: 0,
                complexity: 0.1,
            },
            Sample {
                class: 3,
                complexity: 0.9,
            },
        ];
        let (x, y) = c.batch_features(&samples, 0.7, &mut rng);
        assert_eq!(x.shape().dims(), &[2, 32]);
        assert_eq!(y, vec![0, 3]);
    }

    #[test]
    fn architecture_presets_differ() {
        let r = CascadeParams::for_architecture("resnet34");
        let i = CascadeParams::for_architecture("inception_v3");
        assert!(r.overthink_strength > i.overthink_strength);
    }

    #[test]
    #[should_panic(expected = "outside (0, 1]")]
    fn rejects_zero_depth() {
        let c = cascade();
        let mut rng = StdRng::seed_from_u64(0);
        c.features(
            Sample {
                class: 0,
                complexity: 0.5,
            },
            0.0,
            &mut rng,
        );
    }
}
