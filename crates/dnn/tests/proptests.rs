//! Property tests for the DNN chain layer: partition conservation,
//! profile consistency, and zoo invariants over input resolutions.

use leime_dnn::{
    zoo, DnnChain, ExitCombo, ExitRates, ExitSpec, Layer, LayerKind, ModelProfile, MultiExitDnn,
};
use proptest::prelude::*;

fn arb_chain(max_layers: usize) -> impl Strategy<Value = DnnChain> {
    prop::collection::vec((1e5f64..1e10, 1usize..512, 1usize..64), 3..max_layers).prop_map(
        |specs| {
            let layers: Vec<Layer> = specs
                .iter()
                .enumerate()
                .map(|(i, &(flops, c, hw))| Layer {
                    name: format!("l{i}"),
                    kind: LayerKind::Conv,
                    flops,
                    out_channels: c,
                    out_h: hw,
                    out_w: hw,
                })
                .collect();
            DnnChain::new("prop", 3, 32, 32, 10, layers).expect("non-empty")
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Partition blocks always cover exactly the chain + the three exit
    /// classifiers, for every valid combo.
    #[test]
    fn partition_conserves_flops(chain in arb_chain(20), f_raw in 0usize..20, s_raw in 0usize..20) {
        let m = chain.num_layers();
        let first = f_raw % (m - 2);
        let second = first + 1 + s_raw % (m - 2 - first);
        let combo = ExitCombo::new(first, second, m - 1, m).unwrap();
        let me = MultiExitDnn::new(chain.clone(), ExitSpec::default());
        let p = me.partition(combo).unwrap();
        let exit_total = p.device.exit_classifier_flops
            + p.edge.exit_classifier_flops
            + p.cloud.exit_classifier_flops;
        let blocks: f64 = p.block_flops().iter().sum();
        prop_assert!(
            (blocks - (chain.total_flops() + exit_total)).abs() < 1e-6 * blocks,
            "partition leaks FLOPs"
        );
        // Boundary bytes are the chain's activations at the exits.
        prop_assert_eq!(p.device.boundary_bytes, chain.intermediate_bytes(first).unwrap());
        prop_assert_eq!(p.edge.boundary_bytes, chain.intermediate_bytes(second).unwrap());
    }

    /// Profiles agree with chains entry-by-entry.
    #[test]
    fn profile_is_faithful(chain in arb_chain(20)) {
        let profile = ModelProfile::from_chain(&chain, ExitSpec::default()).unwrap();
        prop_assert_eq!(profile.num_layers(), chain.num_layers());
        prop_assert!((profile.total_flops() - chain.total_flops()).abs() < 1e-9);
        for (i, lp) in profile.layers.iter().enumerate() {
            prop_assert_eq!(lp.layer_flops, chain.layer(i).unwrap().flops);
            prop_assert_eq!(lp.out_bytes, chain.layer(i).unwrap().out_bytes());
            prop_assert!(lp.exit_flops > 0.0);
        }
        // Prefix sums bracket every range query.
        let prefix = chain.flops_prefix();
        for lo in 0..chain.num_layers() {
            for hi in lo..=chain.num_layers() {
                let direct = chain.flops_range(lo, hi);
                // Relative tolerance: different summation orders differ
                // by a few ulps at 1e11-scale totals.
                let tol = 1e-9 * direct.abs().max(1.0);
                prop_assert!((direct - (prefix[hi] - prefix[lo])).abs() <= tol);
            }
        }
    }

    /// Exit rates constructed from sorted uniforms always validate and
    /// look up consistently.
    #[test]
    fn exit_rates_lookup(mut raw in prop::collection::vec(0.0f64..1.0, 2..30)) {
        raw.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let n = raw.len();
        raw[n - 1] = 1.0;
        let rates = ExitRates::new(raw.clone()).unwrap();
        for (i, &r) in raw.iter().enumerate() {
            prop_assert_eq!(rates.rate(i).unwrap(), r);
        }
        prop_assert!(rates.rate(n).is_err());
    }

    /// Zoo models scale sensibly with resolution: more pixels, more FLOPs
    /// and bigger (or equal) activations, same layer count.
    #[test]
    fn zoo_scales_with_resolution(res_step in 0usize..3) {
        let small = 75 + res_step * 16;
        let large = small * 2;
        type Builder = fn(usize, usize) -> DnnChain;
        let builders: [(Builder, usize); 4] = [
            (zoo::vgg16, 32),
            (zoo::resnet34, 32),
            (zoo::inception_v3, 75),
            (zoo::squeezenet_1_0, 64),
        ];
        for (build, min_ok) in builders {
            if small < min_ok {
                continue;
            }
            let a = build(small, 10);
            let b = build(large, 10);
            prop_assert_eq!(a.num_layers(), b.num_layers());
            prop_assert!(b.total_flops() > a.total_flops());
            prop_assert!(b.input_bytes() > a.input_bytes());
        }
    }
}
