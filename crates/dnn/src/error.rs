use std::fmt;

/// Error type for DNN chain construction and partitioning.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DnnError {
    /// The chain has no layers, so no exits can be placed.
    EmptyChain,
    /// A referenced layer/exit index is out of range.
    IndexOutOfRange {
        /// What kind of index was out of range (e.g. `"exit"`).
        what: &'static str,
        /// The offending index.
        index: usize,
        /// Number of valid positions.
        len: usize,
    },
    /// An exit combination violates the ordering constraint
    /// `first < second < third` or does not end at the final layer.
    InvalidExitCombo {
        /// Human-readable description of the violation.
        reason: String,
    },
    /// Exit-rate vector length does not match the number of candidate exits.
    ExitRateMismatch {
        /// Number of candidate exits in the chain.
        expected: usize,
        /// Number of supplied rates.
        actual: usize,
    },
    /// An exit rate is outside `[0, 1]`, non-monotone, or the final rate is
    /// not 1.
    InvalidExitRate {
        /// Human-readable description of the violation.
        reason: String,
    },
    /// A zoo constructor was asked for an input resolution the architecture
    /// cannot process (spatial dimensions collapse to zero).
    ResolutionTooSmall {
        /// Model name.
        model: &'static str,
        /// The requested input extent.
        input: usize,
        /// Minimum supported extent.
        min: usize,
    },
}

impl fmt::Display for DnnError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DnnError::EmptyChain => write!(f, "chain has no layers"),
            DnnError::IndexOutOfRange { what, index, len } => {
                write!(f, "{what} index {index} out of range (len {len})")
            }
            DnnError::InvalidExitCombo { reason } => {
                write!(f, "invalid exit combination: {reason}")
            }
            DnnError::ExitRateMismatch { expected, actual } => {
                write!(f, "exit rates: expected {expected} entries, got {actual}")
            }
            DnnError::InvalidExitRate { reason } => write!(f, "invalid exit rate: {reason}"),
            DnnError::ResolutionTooSmall { model, input, min } => {
                write!(f, "{model}: input resolution {input} below minimum {min}")
            }
        }
    }
}

impl std::error::Error for DnnError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        assert_eq!(DnnError::EmptyChain.to_string(), "chain has no layers");
        let e = DnnError::IndexOutOfRange {
            what: "exit",
            index: 9,
            len: 5,
        };
        assert_eq!(e.to_string(), "exit index 9 out of range (len 5)");
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<DnnError>();
    }
}
