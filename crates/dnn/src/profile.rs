use crate::{DnnChain, ExitSpec, MultiExitDnn, Result};
use serde::{Deserialize, Serialize};

/// Per-layer profile entry: the pair `(μ_{l_i}, d_{l_i})` plus the candidate
/// exit classifier cost `μ_{exit_i}`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LayerProfile {
    /// FLOPs of chain layer `i`.
    pub layer_flops: f64,
    /// Activation bytes after layer `i`.
    pub out_bytes: f64,
    /// FLOPs of the candidate exit classifier after layer `i`.
    pub exit_flops: f64,
}

/// A serialisable model profile: everything the exit-setting and offloading
/// algorithms need to know about a DNN, decoupled from the architecture
/// definition.
///
/// This mirrors what Neurosurgeon-style systems obtain by profiling the
/// deployed model once per platform, except expressed in
/// platform-independent FLOPs/bytes (the paper's Table I quantities).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ModelProfile {
    /// Model name.
    pub name: String,
    /// Raw input bytes `d_0`.
    pub input_bytes: f64,
    /// Number of classifier classes.
    pub num_classes: usize,
    /// One entry per chain layer / candidate exit.
    pub layers: Vec<LayerProfile>,
}

impl ModelProfile {
    /// Extracts a profile from a chain with the given exit spec.
    ///
    /// # Errors
    ///
    /// Propagates index errors (cannot occur for a well-formed chain).
    pub fn from_chain(chain: &DnnChain, spec: ExitSpec) -> Result<Self> {
        let me = MultiExitDnn::new(chain.clone(), spec);
        let mut layers = Vec::with_capacity(chain.num_layers());
        for (i, l) in chain.layers().iter().enumerate() {
            layers.push(LayerProfile {
                layer_flops: l.flops,
                out_bytes: l.out_bytes(),
                exit_flops: me.exit_classifier_flops(i)?,
            });
        }
        Ok(ModelProfile {
            name: chain.name().to_string(),
            input_bytes: chain.input_bytes(),
            num_classes: chain.num_classes(),
            layers,
        })
    }

    /// Number of layers / candidate exits `m`.
    pub fn num_layers(&self) -> usize {
        self.layers.len()
    }

    /// Total chain FLOPs (no exits).
    pub fn total_flops(&self) -> f64 {
        self.layers.iter().map(|l| l.layer_flops).sum()
    }

    /// Sum of layer FLOPs over the half-open range `lo..hi` (clamped).
    pub fn flops_range(&self, lo: usize, hi: usize) -> f64 {
        let hi = hi.min(self.layers.len());
        if lo >= hi {
            return 0.0;
        }
        self.layers[lo..hi].iter().map(|l| l.layer_flops).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Layer, LayerKind};

    fn chain() -> DnnChain {
        let layers = (0..4)
            .map(|i| Layer {
                name: format!("l{i}"),
                kind: LayerKind::Conv,
                flops: 10.0f64.powi(i + 2),
                out_channels: 8 << i,
                out_h: 8 >> i.min(2),
                out_w: 8 >> i.min(2),
            })
            .collect();
        DnnChain::new("toy", 3, 16, 16, 10, layers).unwrap()
    }

    #[test]
    fn profile_matches_chain() {
        let c = chain();
        let p = ModelProfile::from_chain(&c, ExitSpec::default()).unwrap();
        assert_eq!(p.num_layers(), 4);
        assert_eq!(p.total_flops(), c.total_flops());
        assert_eq!(p.input_bytes, c.input_bytes());
        for (i, lp) in p.layers.iter().enumerate() {
            assert_eq!(lp.layer_flops, c.layer(i).unwrap().flops);
            assert_eq!(lp.out_bytes, c.layer(i).unwrap().out_bytes());
            assert!(lp.exit_flops > 0.0);
        }
    }

    #[test]
    fn flops_range_clamps() {
        let p = ModelProfile::from_chain(&chain(), ExitSpec::default()).unwrap();
        assert_eq!(p.flops_range(0, 99), p.total_flops());
        assert_eq!(p.flops_range(3, 2), 0.0);
    }

    #[test]
    fn profile_is_cloneable_and_comparable() {
        let p = ModelProfile::from_chain(&chain(), ExitSpec::default()).unwrap();
        let q = p.clone();
        assert_eq!(p, q);
        assert!(format!("{p:?}").contains("toy"));
    }
}
