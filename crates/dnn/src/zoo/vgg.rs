use super::Builder;
use crate::DnnChain;

/// VGG-16 (configuration D) as a 13-position chain of 3×3 convolutions with
/// max-pools folded after positions 2, 4, 7, 10 and 13.
///
/// The three FC layers of the original classifier are *not* chain
/// positions: in the ME-DNN construction every exit (including the final
/// one) is replaced by the paper's uniform pool+2FC+softmax classifier, so
/// the chain carries the convolutional trunk only — consistent with the
/// paper counting 13 candidate exits for VGG-16.
///
/// # Panics
///
/// Panics if `input_hw < 32` (the five pooling stages would collapse the
/// feature map).
pub fn vgg16(input_hw: usize, num_classes: usize) -> DnnChain {
    assert!(input_hw >= 32, "vgg16 requires input >= 32, got {input_hw}");
    let mut b = Builder::new(3, input_hw, input_hw);
    // (out_channels, pool_after)
    let cfg: [(usize, bool); 13] = [
        (64, false),
        (64, true),
        (128, false),
        (128, true),
        (256, false),
        (256, false),
        (256, true),
        (512, false),
        (512, false),
        (512, true),
        (512, false),
        (512, false),
        (512, true),
    ];
    for (i, &(c, pool)) in cfg.iter().enumerate() {
        b.conv(&format!("conv{}", i + 1), c, 3, 1, 1);
        if pool {
            b.fold_pool(2, 2, 0);
        }
    }
    super::chain_of(
        "vgg16",
        DnnChain::new("vgg16", 3, input_hw, input_hw, num_classes, b.into_layers()),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn has_13_conv_positions() {
        let m = vgg16(32, 10);
        assert_eq!(m.num_layers(), 13);
    }

    #[test]
    fn total_flops_near_published_value() {
        // Published: ~0.31 GFLOPs (multiply-adds ×2 = 0.63 GFLOPs) for the
        // conv trunk at 32x32. Accept a generous band: pooling folding adds
        // a little.
        let m = vgg16(32, 10);
        let gf = m.total_flops() / 1e9;
        assert!((0.4..0.8).contains(&gf), "vgg16@32 = {gf} GFLOPs");
    }

    #[test]
    fn imagenet_resolution_flops() {
        // At 224x224 the conv trunk is ~30.7 GFLOPs (2*15.3 GMACs).
        let m = vgg16(224, 1000);
        let gf = m.total_flops() / 1e9;
        assert!((25.0..36.0).contains(&gf), "vgg16@224 = {gf} GFLOPs");
    }

    #[test]
    fn final_feature_map_is_1x1_at_32px() {
        let m = vgg16(32, 10);
        let last = m.layer(12).unwrap();
        assert_eq!((last.out_h, last.out_w), (1, 1));
        assert_eq!(last.out_channels, 512);
    }

    #[test]
    fn activation_sizes_decrease_at_pools() {
        let m = vgg16(32, 10);
        // conv2 output (after pool) is smaller than conv1 output.
        assert!(m.layer(1).unwrap().out_bytes() < m.layer(0).unwrap().out_bytes());
    }

    #[test]
    #[should_panic(expected = "requires input >= 32")]
    fn rejects_tiny_input() {
        vgg16(16, 10);
    }
}
