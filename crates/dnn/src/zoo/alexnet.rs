use super::Builder;
use crate::DnnChain;

/// AlexNet as a 5-position chain of its convolutional layers (max-pools
/// folded after conv1, conv2 and conv5) — the architecture BranchyNet
/// originally attached branches to, included for cross-checking against
/// BranchyNet-style exit-rate figures.
///
/// Channel plan 96-256-384-384-256 with the classic 11×11/4 stem.
///
/// # Panics
///
/// Panics if `input_hw < 64` (the stem and three pools would collapse the
/// feature map).
pub fn alexnet(input_hw: usize, num_classes: usize) -> DnnChain {
    assert!(
        input_hw >= 64,
        "alexnet requires input >= 64, got {input_hw}"
    );
    let mut b = Builder::new(3, input_hw, input_hw);
    b.conv("conv1", 96, 11, 4, 2);
    b.fold_pool(3, 2, 0);
    b.conv("conv2", 256, 5, 1, 2);
    b.fold_pool(3, 2, 0);
    b.conv("conv3", 384, 3, 1, 1);
    b.conv("conv4", 384, 3, 1, 1);
    b.conv("conv5", 256, 3, 1, 1);
    b.fold_pool(3, 2, 0);
    super::chain_of(
        "alexnet",
        DnnChain::new(
            "alexnet",
            3,
            input_hw,
            input_hw,
            num_classes,
            b.into_layers(),
        ),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn has_5_conv_positions() {
        assert_eq!(alexnet(224, 1000).num_layers(), 5);
    }

    #[test]
    fn imagenet_flops_near_published() {
        // Single-tower AlexNet (no grouped convolutions, as in modern
        // re-implementations): ~1.08 GMACs ≈ 2.15 GFLOPs for the conv
        // trunk at 224. The original's 0.72 GMACs used 2-GPU group convs.
        let m = alexnet(224, 1000);
        let gf = m.total_flops() / 1e9;
        assert!((1.8..2.6).contains(&gf), "alexnet@224 = {gf} GFLOPs");
    }

    #[test]
    fn geometry_matches_reference() {
        let m = alexnet(224, 1000);
        // conv1: 55x55 pre-pool -> 27x27 after pool; conv2 -> 13x13.
        assert_eq!(m.layer(0).unwrap().out_h, 27);
        assert_eq!(m.layer(1).unwrap().out_h, 13);
        assert_eq!(m.layer(4).unwrap().out_channels, 256);
        assert_eq!(m.layer(4).unwrap().out_h, 6);
    }

    #[test]
    #[should_panic(expected = "requires input >= 64")]
    fn rejects_tiny_input() {
        alexnet(32, 10);
    }
}
