//! Chain models of the paper's four evaluation networks.
//!
//! Each constructor builds a [`crate::DnnChain`] whose per-layer
//! FLOPs and activation sizes are computed from the genuine architecture
//! arithmetic (channel counts, kernel sizes, strides) at a configurable
//! input resolution. Composite stages (residual blocks, inception modules,
//! fire modules) occupy one chain position each, matching the exit-index
//! granularity the paper uses (e.g. Inception v3 has 16 positions, so the
//! paper's "exit-14/exit-16" are representable).
//!
//! Pooling layers are folded into the preceding chain position: they add
//! their (small) FLOP cost and shrink that position's output geometry,
//! which is exactly how they affect a split decision (less data to
//! transmit after the pool).

mod alexnet;
mod inception;
mod mobilenet;
mod resnet;
mod squeezenet;
mod vgg;

pub use alexnet::alexnet;
pub use inception::inception_v3;
pub use mobilenet::mobilenet_v1;
pub use resnet::resnet34;
pub use squeezenet::squeezenet_1_0;
pub use vgg::vgg16;

use crate::layer::spatial_out;
use crate::{conv_flops, DnnChain, DnnError, Layer, LayerKind};
use leime_invariant as invariant;

/// The four models at the paper's CIFAR-10 testbed resolutions.
///
/// VGG-16 and ResNet-34 run at native CIFAR 32×32; SqueezeNet-1.0 needs
/// ≥64 px for its aggressive stem (CIFAR images upscaled 2×, standard
/// practice); Inception v3 runs at its architectural minimum of 75 px
/// (upscaled CIFAR — any PyTorch CIFAR deployment of this network must
/// upscale, and 299 px would put every activation megabytes out of scale
/// with the testbed's 1–30 Mbps WiFi).
pub fn cifar_models(num_classes: usize) -> Vec<DnnChain> {
    vec![
        vgg16(32, num_classes),
        resnet34(32, num_classes),
        inception_v3(75, num_classes),
        squeezenet_1_0(64, num_classes),
    ]
}

/// Tracks the running activation geometry while assembling a chain.
pub(crate) struct Builder {
    c: usize,
    h: usize,
    w: usize,
    layers: Vec<Layer>,
}

impl Builder {
    pub(crate) fn new(c: usize, h: usize, w: usize) -> Self {
        Builder {
            c,
            h,
            w,
            layers: Vec::new(),
        }
    }

    pub(crate) fn channels(&self) -> usize {
        self.c
    }

    pub(crate) fn hw(&self) -> (usize, usize) {
        (self.h, self.w)
    }

    /// Pushes a single convolution as its own chain position.
    pub(crate) fn conv(&mut self, name: &str, c_out: usize, k: usize, stride: usize, pad: usize) {
        let h_out = spatial_out(self.h, k, stride, pad);
        let w_out = spatial_out(self.w, k, stride, pad);
        let flops = conv_flops(self.c, c_out, k, k, h_out, w_out);
        self.c = c_out;
        self.h = h_out;
        self.w = w_out;
        self.layers.push(Layer {
            name: name.to_string(),
            kind: LayerKind::Conv,
            flops,
            out_channels: c_out,
            out_h: h_out,
            out_w: w_out,
        });
    }

    /// Folds a pooling stage into the *previous* chain position: shrinks its
    /// output geometry and adds the pool's element-visit cost.
    ///
    /// # Panics
    ///
    /// Panics if called before any layer exists (a zoo programming error).
    pub(crate) fn fold_pool(&mut self, k: usize, stride: usize, pad: usize) {
        let h_out = spatial_out(self.h, k, stride, pad);
        let w_out = spatial_out(self.w, k, stride, pad);
        let Some(last) = self.layers.last_mut() else {
            invariant::violation("dnn.zoo.builder", "fold_pool requires a preceding layer");
        };
        last.flops += (self.c * self.h * self.w) as f64; // one visit per input element
        last.out_h = h_out;
        last.out_w = w_out;
        self.h = h_out;
        self.w = w_out;
    }

    /// Pushes a composite chain position whose FLOPs were accumulated by the
    /// caller and whose output geometry is given explicitly.
    pub(crate) fn composite(
        &mut self,
        name: &str,
        kind: LayerKind,
        flops: f64,
        c_out: usize,
        h_out: usize,
        w_out: usize,
    ) {
        self.c = c_out;
        self.h = h_out;
        self.w = w_out;
        self.layers.push(Layer {
            name: name.to_string(),
            kind,
            flops,
            out_channels: c_out,
            out_h: h_out,
            out_w: w_out,
        });
    }

    /// Adds FLOPs to the most recent chain position (for folding stems or
    /// auxiliary costs into a composite).
    pub(crate) fn add_flops_to_last(&mut self, flops: f64) {
        let Some(last) = self.layers.last_mut() else {
            invariant::violation(
                "dnn.zoo.builder",
                "add_flops_to_last requires a preceding layer",
            );
        };
        last.flops += flops;
    }

    pub(crate) fn into_layers(self) -> Vec<Layer> {
        self.layers
    }
}

/// Unwraps a zoo constructor's [`DnnChain::new`] result. Every zoo model
/// is assembled from fixed architecture constants, so validation can only
/// fail on a zoo programming error — routed through the sanctioned
/// invariant-violation site rather than a per-model `expect`.
pub(crate) fn chain_of(model: &str, built: Result<DnnChain, DnnError>) -> DnnChain {
    built.unwrap_or_else(|e| invariant::violation("dnn.zoo", &format!("{model}: {e}")))
}

/// Cost helper for branch arithmetic inside composite modules: FLOPs of a
/// `kh × kw` conv from `c_in` to `c_out` on an `h × w` input with the given
/// stride/padding; returns `(flops, h_out, w_out)`.
// Convolution geometry genuinely has this many independent parameters.
#[allow(clippy::too_many_arguments)]
pub(crate) fn branch_conv(
    c_in: usize,
    c_out: usize,
    kh: usize,
    kw: usize,
    h: usize,
    w: usize,
    stride: usize,
    pad_h: usize,
    pad_w: usize,
) -> (f64, usize, usize) {
    let h_out = spatial_out(h, kh, stride, pad_h);
    let w_out = spatial_out(w, kw, stride, pad_w);
    (conv_flops(c_in, c_out, kh, kw, h_out, w_out), h_out, w_out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_tracks_geometry() {
        let mut b = Builder::new(3, 32, 32);
        b.conv("c1", 64, 3, 1, 1);
        assert_eq!(b.channels(), 64);
        assert_eq!(b.hw(), (32, 32));
        b.fold_pool(2, 2, 0);
        assert_eq!(b.hw(), (16, 16));
        let layers = b.into_layers();
        assert_eq!(layers.len(), 1);
        assert_eq!(layers[0].out_h, 16);
    }

    #[test]
    fn branch_conv_asymmetric_kernels() {
        // 1x7 conv on 17x17 with pad (0,3) keeps spatial dims.
        let (f, h, w) = branch_conv(768, 128, 1, 7, 17, 17, 1, 0, 3);
        assert_eq!((h, w), (17, 17));
        assert_eq!(f, 2.0 * (768 * 7) as f64 * (128 * 17 * 17) as f64);
    }

    #[test]
    fn cifar_models_have_expected_layer_counts() {
        let models = cifar_models(10);
        let counts: Vec<(String, usize)> = models
            .iter()
            .map(|m| (m.name().to_string(), m.num_layers()))
            .collect();
        assert_eq!(
            counts,
            vec![
                ("vgg16".to_string(), 13),
                ("resnet34".to_string(), 16),
                ("inception_v3".to_string(), 16),
                ("squeezenet_1_0".to_string(), 10),
            ]
        );
    }

    #[test]
    fn all_models_have_positive_costs() {
        for m in cifar_models(10) {
            for l in m.layers() {
                assert!(l.flops > 0.0, "{}: layer {} has no cost", m.name(), l.name);
                assert!(
                    l.out_elems() > 0,
                    "{}: layer {} collapsed",
                    m.name(),
                    l.name
                );
            }
        }
    }
}
