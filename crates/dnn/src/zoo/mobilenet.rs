use super::{branch_conv, Builder};
use crate::{DnnChain, LayerKind};

/// MobileNetV1 as a 14-position chain: the full 3×3 stem convolution plus
/// 13 depthwise-separable blocks — the kind of mobile-first architecture
/// an edge-intelligence deployment would actually favour, included to
/// stress the exit-setting algorithms with a *compute-light,
/// activation-heavy* profile (the opposite regime from VGG-16).
///
/// Each separable block is a 3×3 depthwise convolution (one filter per
/// channel) followed by a 1×1 pointwise convolution; strides follow the
/// published layer table (downsampling at blocks 2, 4, 6, 12).
///
/// # Panics
///
/// Panics if `input_hw < 32` (five stride-2 stages).
pub fn mobilenet_v1(input_hw: usize, num_classes: usize) -> DnnChain {
    assert!(
        input_hw >= 32,
        "mobilenet_v1 requires input >= 32, got {input_hw}"
    );
    let mut b = Builder::new(3, input_hw, input_hw);
    b.conv("stem", 32, 3, 2, 1);

    // (out_channels, stride) per separable block.
    let blocks: [(usize, usize); 13] = [
        (64, 1),
        (128, 2),
        (128, 1),
        (256, 2),
        (256, 1),
        (512, 2),
        (512, 1),
        (512, 1),
        (512, 1),
        (512, 1),
        (512, 1),
        (1024, 2),
        (1024, 1),
    ];
    for (i, &(c_out, stride)) in blocks.iter().enumerate() {
        let c_in = b.channels();
        let (h, w) = b.hw();
        // Depthwise 3x3: one 3x3 filter per input channel. FLOPs =
        // 2 * 9 * c_in * h_out * w_out (no cross-channel products).
        let (_, h_out, w_out) = branch_conv(1, 1, 3, 3, h, w, stride, 1, 1);
        let dw = 2.0 * 9.0 * (c_in * h_out * w_out) as f64;
        // Pointwise 1x1: c_in -> c_out.
        let (pw, h_out, w_out) = branch_conv(c_in, c_out, 1, 1, h_out, w_out, 1, 0, 0);
        b.composite(
            &format!("sep{}", i + 1),
            LayerKind::Conv,
            dw + pw,
            c_out,
            h_out,
            w_out,
        );
    }
    let _ = num_classes;
    super::chain_of(
        "mobilenet_v1",
        DnnChain::new(
            "mobilenet_v1",
            3,
            input_hw,
            input_hw,
            num_classes,
            b.into_layers(),
        ),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn has_14_positions() {
        assert_eq!(mobilenet_v1(224, 1000).num_layers(), 14);
    }

    #[test]
    fn imagenet_flops_near_published() {
        // Published MobileNetV1: ~0.57 GMACs ≈ 1.14 GFLOPs at 224.
        let m = mobilenet_v1(224, 1000);
        let gf = m.total_flops() / 1e9;
        assert!((0.8..1.5).contains(&gf), "mobilenet@224 = {gf} GFLOPs");
    }

    #[test]
    fn downsampling_schedule() {
        let m = mobilenet_v1(224, 1000);
        // Stem: 112; sep2: 56; sep4: 28; sep6: 14; sep12: 7.
        assert_eq!(m.layer(0).unwrap().out_h, 112);
        assert_eq!(m.layer(2).unwrap().out_h, 56);
        assert_eq!(m.layer(4).unwrap().out_h, 28);
        assert_eq!(m.layer(6).unwrap().out_h, 14);
        assert_eq!(m.layer(12).unwrap().out_h, 7);
        assert_eq!(m.layer(13).unwrap().out_channels, 1024);
    }

    #[test]
    fn far_cheaper_than_vgg_at_same_resolution() {
        let mob = mobilenet_v1(224, 1000);
        let vgg = super::super::vgg16(224, 1000);
        assert!(vgg.total_flops() / mob.total_flops() > 10.0);
    }

    #[test]
    #[should_panic(expected = "requires input >= 32")]
    fn rejects_tiny_input() {
        mobilenet_v1(16, 10);
    }
}
