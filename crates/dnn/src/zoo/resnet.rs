use super::{branch_conv, Builder};
use crate::{DnnChain, LayerKind};

/// ResNet-34 as a 16-position chain of basic residual blocks
/// (stage layout 3-4-6-3, channels 64-128-256-512).
///
/// The stem convolution is folded into the first block's cost (so the chain
/// has exactly 16 candidate exits, one per residual block). For inputs
/// ≤ 64 px the CIFAR-style stem (3×3 stride 1, no max-pool) is used; for
/// larger inputs the ImageNet stem (7×7 stride 2 + 3×3/2 max-pool).
///
/// Each basic block costs two 3×3 convolutions plus, on the first block of
/// stages 2–4, a 1×1 strided projection shortcut; the residual addition
/// contributes one FLOP per output element.
///
/// # Panics
///
/// Panics if `input_hw < 32`.
pub fn resnet34(input_hw: usize, num_classes: usize) -> DnnChain {
    assert!(
        input_hw >= 32,
        "resnet34 requires input >= 32, got {input_hw}"
    );
    let mut b = Builder::new(3, input_hw, input_hw);

    // Stem: produce the 64-channel trunk input. Tracked manually, folded
    // into block 1.
    let (mut h, mut w) = (input_hw, input_hw);
    let stem_flops;
    if input_hw <= 64 {
        let (f, nh, nw) = branch_conv(3, 64, 3, 3, h, w, 1, 1, 1);
        stem_flops = f;
        h = nh;
        w = nw;
    } else {
        let (f, nh, nw) = branch_conv(3, 64, 7, 7, h, w, 2, 3, 3);
        // 3x3/2 max-pool with padding 1.
        let ph = (nh + 2 - 3) / 2 + 1;
        let pw = (nw + 2 - 3) / 2 + 1;
        stem_flops = f + (64 * nh * nw) as f64;
        h = ph;
        w = pw;
    }

    let stages: [(usize, usize); 4] = [(64, 3), (128, 4), (256, 6), (512, 3)];
    let mut c_in = 64usize;
    let mut block_idx = 0usize;
    for (stage, &(c_out, blocks)) in stages.iter().enumerate() {
        for blk in 0..blocks {
            let stride = if stage > 0 && blk == 0 { 2 } else { 1 };
            let (f1, nh, nw) = branch_conv(c_in, c_out, 3, 3, h, w, stride, 1, 1);
            let (f2, nh, nw) = branch_conv(c_out, c_out, 3, 3, nh, nw, 1, 1, 1);
            let mut flops = f1 + f2;
            if stride != 1 || c_in != c_out {
                // Projection shortcut.
                let (fs, _, _) = branch_conv(c_in, c_out, 1, 1, h, w, stride, 0, 0);
                flops += fs;
            }
            // Residual addition.
            flops += (c_out * nh * nw) as f64;
            block_idx += 1;
            b.composite(
                &format!("block{block_idx}"),
                LayerKind::ResidualBlock,
                flops,
                c_out,
                nh,
                nw,
            );
            if block_idx == 1 {
                b.add_flops_to_last(stem_flops);
            }
            c_in = c_out;
            h = nh;
            w = nw;
        }
    }
    super::chain_of(
        "resnet34",
        DnnChain::new(
            "resnet34",
            3,
            input_hw,
            input_hw,
            num_classes,
            b.into_layers(),
        ),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn has_16_blocks() {
        assert_eq!(resnet34(32, 10).num_layers(), 16);
    }

    #[test]
    fn imagenet_flops_near_published() {
        // Published ResNet-34 @224: ~3.6 GMACs conv trunk ≈ 7.3 GFLOPs.
        let m = resnet34(224, 1000);
        let gf = m.total_flops() / 1e9;
        assert!((6.0..9.0).contains(&gf), "resnet34@224 = {gf} GFLOPs");
    }

    #[test]
    fn cifar_resolution_plausible() {
        // With the CIFAR stem (3x3/1, no max-pool) stage 1 runs at the full
        // 32x32 grid, giving ~2.3 GFLOPs — 1/16 of the 224px cost scaled by
        // the (224/32)^2 grid ratio except for the undownsampled stem.
        let m = resnet34(32, 10);
        let gf = m.total_flops() / 1e9;
        assert!((1.5..3.0).contains(&gf), "resnet34@32 = {gf} GFLOPs");
    }

    #[test]
    fn stage_transitions_halve_spatial_dims() {
        let m = resnet34(32, 10);
        // Blocks 1-3 at 32x32, 4-7 at 16x16, 8-13 at 8x8, 14-16 at 4x4.
        assert_eq!(m.layer(0).unwrap().out_h, 32);
        assert_eq!(m.layer(3).unwrap().out_h, 16);
        assert_eq!(m.layer(7).unwrap().out_h, 8);
        assert_eq!(m.layer(13).unwrap().out_h, 4);
        assert_eq!(m.layer(15).unwrap().out_channels, 512);
    }

    #[test]
    fn first_block_carries_stem() {
        let m = resnet34(32, 10);
        // Block 1 = stem conv + block convs, so it costs more than block 2
        // (same geometry, no stem).
        assert!(m.layer(0).unwrap().flops > m.layer(1).unwrap().flops);
    }
}
