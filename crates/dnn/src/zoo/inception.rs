use super::{branch_conv, Builder};
use crate::{DnnChain, LayerKind};

/// Inception v3 as a 16-position chain: five stem convolutions (max-pools
/// folded after positions 3 and 5) followed by the eleven inception
/// modules — 3×A (35×35), 1×B reduction, 4×C (17×17), 1×D reduction,
/// 2×E (8×8) — matching the paper's 16 candidate exits (its Fig. 3 fixes
/// exits 1, 14 and 16).
///
/// Branch channel configurations follow Szegedy et al. (CVPR 2016) / the
/// torchvision implementation. Average-pool branches inside modules count
/// one FLOP per input element plus their 1×1 projection.
///
/// # Panics
///
/// Panics if `input_hw < 75` (the official minimum input size).
pub fn inception_v3(input_hw: usize, num_classes: usize) -> DnnChain {
    assert!(
        input_hw >= 75,
        "inception_v3 requires input >= 75, got {input_hw}"
    );
    let mut b = Builder::new(3, input_hw, input_hw);

    // ---- Stem: 5 conv positions.
    b.conv("stem_conv1", 32, 3, 2, 0);
    b.conv("stem_conv2", 32, 3, 1, 0);
    b.conv("stem_conv3", 64, 3, 1, 1);
    b.fold_pool(3, 2, 0);
    b.conv("stem_conv4", 80, 1, 1, 0);
    b.conv("stem_conv5", 192, 3, 1, 0);
    b.fold_pool(3, 2, 0);

    // ---- 3x InceptionA at 35x35 (input channels 192, 256, 288).
    let pool_proj = [32usize, 64, 64];
    for (i, &pp) in pool_proj.iter().enumerate() {
        inception_a(&mut b, &format!("inception_a{}", i + 1), pp);
    }

    // ---- InceptionB: grid reduction 35 -> 17.
    inception_b(&mut b);

    // ---- 4x InceptionC at 17x17 with c7 = 128, 160, 160, 192.
    for (i, &c7) in [128usize, 160, 160, 192].iter().enumerate() {
        inception_c(&mut b, &format!("inception_c{}", i + 1), c7);
    }

    // ---- InceptionD: grid reduction 17 -> 8.
    inception_d(&mut b);

    // ---- 2x InceptionE at 8x8.
    for i in 0..2 {
        inception_e(&mut b, &format!("inception_e{}", i + 1));
    }

    let _ = num_classes;
    super::chain_of(
        "inception_v3",
        DnnChain::new(
            "inception_v3",
            3,
            input_hw,
            input_hw,
            num_classes,
            b.into_layers(),
        ),
    )
}

/// InceptionA: 1×1(64) ‖ 1×1(48)→5×5(64) ‖ 1×1(64)→3×3(96)→3×3(96) ‖
/// avgpool→1×1(pool_proj). Output 224 + pool_proj channels.
fn inception_a(b: &mut Builder, name: &str, pool_proj: usize) {
    let c_in = b.channels();
    let (h, w) = b.hw();
    let mut f = 0.0;
    // Branch 1: 1x1 -> 64.
    f += branch_conv(c_in, 64, 1, 1, h, w, 1, 0, 0).0;
    // Branch 2: 1x1 -> 48, 5x5 pad 2 -> 64.
    f += branch_conv(c_in, 48, 1, 1, h, w, 1, 0, 0).0;
    f += branch_conv(48, 64, 5, 5, h, w, 1, 2, 2).0;
    // Branch 3: 1x1 -> 64, 3x3 -> 96, 3x3 -> 96.
    f += branch_conv(c_in, 64, 1, 1, h, w, 1, 0, 0).0;
    f += branch_conv(64, 96, 3, 3, h, w, 1, 1, 1).0;
    f += branch_conv(96, 96, 3, 3, h, w, 1, 1, 1).0;
    // Branch 4: 3x3 avgpool (pad 1) + 1x1 -> pool_proj.
    f += (c_in * h * w) as f64;
    f += branch_conv(c_in, pool_proj, 1, 1, h, w, 1, 0, 0).0;
    b.composite(name, LayerKind::InceptionModule, f, 224 + pool_proj, h, w);
}

/// InceptionB (grid reduction): 3×3/2(384) ‖ 1×1(64)→3×3(96)→3×3/2(96) ‖
/// maxpool/2. Output 480 + c_in channels at half resolution.
fn inception_b(b: &mut Builder) {
    let c_in = b.channels();
    let (h, w) = b.hw();
    let mut f = 0.0;
    let (f1, h2, w2) = branch_conv(c_in, 384, 3, 3, h, w, 2, 0, 0);
    f += f1;
    f += branch_conv(c_in, 64, 1, 1, h, w, 1, 0, 0).0;
    f += branch_conv(64, 96, 3, 3, h, w, 1, 1, 1).0;
    f += branch_conv(96, 96, 3, 3, h, w, 2, 0, 0).0;
    f += (c_in * h * w) as f64; // maxpool branch
    b.composite(
        "inception_b1",
        LayerKind::InceptionModule,
        f,
        384 + 96 + c_in,
        h2,
        w2,
    );
}

/// InceptionC: 1×1(192) ‖ 1×1(c7)→1×7(c7)→7×1(192) ‖ 7×7 double branch ‖
/// avgpool→1×1(192). Output 768 channels.
fn inception_c(b: &mut Builder, name: &str, c7: usize) {
    let c_in = b.channels();
    let (h, w) = b.hw();
    let mut f = 0.0;
    // Branch 1.
    f += branch_conv(c_in, 192, 1, 1, h, w, 1, 0, 0).0;
    // Branch 2: 1x1 c7, 1x7 c7, 7x1 192.
    f += branch_conv(c_in, c7, 1, 1, h, w, 1, 0, 0).0;
    f += branch_conv(c7, c7, 1, 7, h, w, 1, 0, 3).0;
    f += branch_conv(c7, 192, 7, 1, h, w, 1, 3, 0).0;
    // Branch 3: 1x1 c7, 7x1 c7, 1x7 c7, 7x1 c7, 1x7 192.
    f += branch_conv(c_in, c7, 1, 1, h, w, 1, 0, 0).0;
    f += branch_conv(c7, c7, 7, 1, h, w, 1, 3, 0).0;
    f += branch_conv(c7, c7, 1, 7, h, w, 1, 0, 3).0;
    f += branch_conv(c7, c7, 7, 1, h, w, 1, 3, 0).0;
    f += branch_conv(c7, 192, 1, 7, h, w, 1, 0, 3).0;
    // Branch 4: avgpool + 1x1 192.
    f += (c_in * h * w) as f64;
    f += branch_conv(c_in, 192, 1, 1, h, w, 1, 0, 0).0;
    b.composite(name, LayerKind::InceptionModule, f, 768, h, w);
}

/// InceptionD (grid reduction): 1×1(192)→3×3/2(320) ‖
/// 1×1(192)→1×7→7×1→3×3/2(192) ‖ maxpool/2. Output 512 + c_in channels.
fn inception_d(b: &mut Builder) {
    let c_in = b.channels();
    let (h, w) = b.hw();
    let mut f = 0.0;
    f += branch_conv(c_in, 192, 1, 1, h, w, 1, 0, 0).0;
    let (f2, h2, w2) = branch_conv(192, 320, 3, 3, h, w, 2, 0, 0);
    f += f2;
    f += branch_conv(c_in, 192, 1, 1, h, w, 1, 0, 0).0;
    f += branch_conv(192, 192, 1, 7, h, w, 1, 0, 3).0;
    f += branch_conv(192, 192, 7, 1, h, w, 1, 3, 0).0;
    f += branch_conv(192, 192, 3, 3, h, w, 2, 0, 0).0;
    f += (c_in * h * w) as f64; // maxpool branch
    b.composite(
        "inception_d1",
        LayerKind::InceptionModule,
        f,
        320 + 192 + c_in,
        h2,
        w2,
    );
}

/// InceptionE: 1×1(320) ‖ 1×1(384)→{1×3, 3×1}(384 each) ‖
/// 1×1(448)→3×3(384)→{1×3, 3×1}(384 each) ‖ avgpool→1×1(192).
/// Output 2048 channels.
fn inception_e(b: &mut Builder, name: &str) {
    let c_in = b.channels();
    let (h, w) = b.hw();
    let mut f = 0.0;
    f += branch_conv(c_in, 320, 1, 1, h, w, 1, 0, 0).0;
    // Branch 2.
    f += branch_conv(c_in, 384, 1, 1, h, w, 1, 0, 0).0;
    f += branch_conv(384, 384, 1, 3, h, w, 1, 0, 1).0;
    f += branch_conv(384, 384, 3, 1, h, w, 1, 1, 0).0;
    // Branch 3.
    f += branch_conv(c_in, 448, 1, 1, h, w, 1, 0, 0).0;
    f += branch_conv(448, 384, 3, 3, h, w, 1, 1, 1).0;
    f += branch_conv(384, 384, 1, 3, h, w, 1, 0, 1).0;
    f += branch_conv(384, 384, 3, 1, h, w, 1, 1, 0).0;
    // Branch 4.
    f += (c_in * h * w) as f64;
    f += branch_conv(c_in, 192, 1, 1, h, w, 1, 0, 0).0;
    b.composite(name, LayerKind::InceptionModule, f, 2048, h, w);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn has_16_positions() {
        assert_eq!(inception_v3(299, 1000).num_layers(), 16);
    }

    #[test]
    fn flops_near_published() {
        // Published Inception v3 @299: ~5.7 GMACs ≈ 11.4 GFLOPs.
        let m = inception_v3(299, 1000);
        let gf = m.total_flops() / 1e9;
        assert!((9.0..14.0).contains(&gf), "inception@299 = {gf} GFLOPs");
    }

    #[test]
    fn grid_sizes_match_architecture() {
        let m = inception_v3(299, 1000);
        // Stem ends at 35x35x192.
        let stem_end = m.layer(4).unwrap();
        assert_eq!((stem_end.out_h, stem_end.out_w), (35, 35));
        assert_eq!(stem_end.out_channels, 192);
        // InceptionA outputs: 256/288/288 at 35x35.
        assert_eq!(m.layer(5).unwrap().out_channels, 256);
        assert_eq!(m.layer(7).unwrap().out_channels, 288);
        // After B: 768 at 17x17.
        let after_b = m.layer(8).unwrap();
        assert_eq!((after_b.out_h, after_b.out_channels), (17, 768));
        // After D: 1280 at 8x8.
        let after_d = m.layer(13).unwrap();
        assert_eq!((after_d.out_h, after_d.out_channels), (8, 1280));
        // Final E: 2048 at 8x8.
        assert_eq!(m.layer(15).unwrap().out_channels, 2048);
    }

    #[test]
    fn intermediate_data_has_local_minimum_in_stem() {
        // The 35x35x192 tensor after stem is far smaller than the
        // 147x147x64 one — reproduces why exit placement matters for
        // transmission cost.
        let m = inception_v3(299, 1000);
        assert!(m.layer(4).unwrap().out_bytes() < m.layer(2).unwrap().out_bytes());
    }

    #[test]
    #[should_panic(expected = "requires input >= 75")]
    fn rejects_small_input() {
        inception_v3(64, 10);
    }
}
