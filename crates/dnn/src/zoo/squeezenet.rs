use super::{branch_conv, Builder};
use crate::{DnnChain, LayerKind};

/// SqueezeNet-1.0 as a 10-position chain: `conv1` (7×7/2 + max-pool), eight
/// fire modules (max-pools folded after fire4 and fire8), and the `conv10`
/// 1×1 classifier convolution with its global average pool.
///
/// A fire module is a 1×1 squeeze convolution followed by parallel 1×1 and
/// 3×3 expand convolutions whose outputs concatenate.
///
/// # Panics
///
/// Panics if `input_hw < 64` (the three stride-2 stages would collapse the
/// feature map before fire9).
pub fn squeezenet_1_0(input_hw: usize, num_classes: usize) -> DnnChain {
    assert!(
        input_hw >= 64,
        "squeezenet_1_0 requires input >= 64, got {input_hw}"
    );
    let mut b = Builder::new(3, input_hw, input_hw);

    b.conv("conv1", 96, 7, 2, 0);
    b.fold_pool(3, 2, 0);

    // (squeeze, expand1x1, expand3x3, pool_after)
    let fires: [(usize, usize, usize, bool); 8] = [
        (16, 64, 64, false),   // fire2
        (16, 64, 64, false),   // fire3
        (32, 128, 128, true),  // fire4 + pool
        (32, 128, 128, false), // fire5
        (48, 192, 192, false), // fire6
        (48, 192, 192, false), // fire7
        (64, 256, 256, true),  // fire8 + pool
        (64, 256, 256, false), // fire9
    ];
    for (i, &(s, e1, e3, pool)) in fires.iter().enumerate() {
        let c_in = b.channels();
        let (h, w) = b.hw();
        let (f_sq, h, w) = branch_conv(c_in, s, 1, 1, h, w, 1, 0, 0);
        let (f_e1, _, _) = branch_conv(s, e1, 1, 1, h, w, 1, 0, 0);
        let (f_e3, _, _) = branch_conv(s, e3, 3, 3, h, w, 1, 1, 1);
        b.composite(
            &format!("fire{}", i + 2),
            LayerKind::FireModule,
            f_sq + f_e1 + f_e3,
            e1 + e3,
            h,
            w,
        );
        if pool {
            b.fold_pool(3, 2, 0);
        }
    }

    // conv10: 1x1 to num_classes, then global average pool folded in.
    let c_in = b.channels();
    let (h, w) = b.hw();
    let (f10, h10, w10) = branch_conv(c_in, num_classes, 1, 1, h, w, 1, 0, 0);
    b.composite("conv10", LayerKind::Conv, f10, num_classes, h10, w10);
    b.fold_pool(h10.min(w10), 1, 0);

    super::chain_of(
        "squeezenet_1_0",
        DnnChain::new(
            "squeezenet_1_0",
            3,
            input_hw,
            input_hw,
            num_classes,
            b.into_layers(),
        ),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn has_10_positions() {
        assert_eq!(squeezenet_1_0(64, 10).num_layers(), 10);
    }

    #[test]
    fn imagenet_flops_near_published() {
        // Published SqueezeNet-1.0 @224: ~0.72 GMACs ≈ 1.4 GFLOPs.
        let m = squeezenet_1_0(224, 1000);
        let gf = m.total_flops() / 1e9;
        assert!((1.0..2.0).contains(&gf), "squeezenet@224 = {gf} GFLOPs");
    }

    #[test]
    fn channel_progression() {
        let m = squeezenet_1_0(64, 10);
        assert_eq!(m.layer(0).unwrap().out_channels, 96);
        assert_eq!(m.layer(1).unwrap().out_channels, 128); // fire2
        assert_eq!(m.layer(8).unwrap().out_channels, 512); // fire9
        assert_eq!(m.layer(9).unwrap().out_channels, 10); // conv10
    }

    #[test]
    fn conv10_output_is_global_pooled() {
        let m = squeezenet_1_0(64, 10);
        let last = m.layer(9).unwrap();
        assert_eq!((last.out_h, last.out_w), (1, 1));
    }

    #[test]
    #[should_panic(expected = "requires input >= 64")]
    fn rejects_cifar_native_resolution() {
        squeezenet_1_0(32, 10);
    }
}
