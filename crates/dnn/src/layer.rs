use crate::BYTES_PER_ELEM;
use serde::{Deserialize, Serialize};

/// What kind of computation a chain layer performs.
///
/// The paper treats convolutional layers as the atomic chain elements
/// because they dominate FLOPs; residual blocks, inception modules and fire
/// modules are *composite* layers aggregating several convolutions into one
/// chain position (the same granularity the paper's exit indices use, e.g.
/// "exit-14" and "exit-16" for the 16-position Inception v3 chain).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum LayerKind {
    /// A single convolution (possibly followed by a folded pooling stage).
    Conv,
    /// A residual basic block (two 3×3 convolutions plus shortcut).
    ResidualBlock,
    /// An Inception module (parallel convolution branches, concatenated).
    InceptionModule,
    /// A SqueezeNet fire module (squeeze 1×1 + expand 1×1/3×3).
    FireModule,
    /// A fully connected layer.
    FullyConnected,
}

/// One position in a DNN chain: a (possibly composite) layer with its
/// aggregate FLOP cost and output activation geometry.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Layer {
    /// Human-readable name, e.g. `"conv3_2"` or `"inception_c4"`.
    pub name: String,
    /// The structural kind of this layer.
    pub kind: LayerKind,
    /// Total floating point operations to execute this layer once
    /// (multiply-accumulate counted as 2 FLOPs).
    pub flops: f64,
    /// Output channels.
    pub out_channels: usize,
    /// Output spatial height.
    pub out_h: usize,
    /// Output spatial width.
    pub out_w: usize,
}

impl Layer {
    /// Number of output activation elements (`C·H·W`).
    pub fn out_elems(&self) -> usize {
        self.out_channels * self.out_h * self.out_w
    }

    /// Output activation size in bytes — the paper's `d_{l_i}`, the amount
    /// of intermediate data that must cross the network if the model is
    /// split after this layer.
    pub fn out_bytes(&self) -> f64 {
        self.out_elems() as f64 * BYTES_PER_ELEM
    }
}

/// FLOPs of one 2-D convolution producing a `(c_out, h_out, w_out)` output
/// from `c_in` input channels with a `kh × kw` kernel.
///
/// Counts multiply-accumulates as 2 FLOPs, the convention used by
/// Neurosurgeon-style profilers (and by common FLOP tables for these
/// architectures).
pub fn conv_flops(
    c_in: usize,
    c_out: usize,
    kh: usize,
    kw: usize,
    h_out: usize,
    w_out: usize,
) -> f64 {
    2.0 * (c_in * kh * kw) as f64 * (c_out * h_out * w_out) as f64
}

/// Output spatial extent of a convolution/pooling stage, saturating at zero
/// when the kernel does not fit.
pub(crate) fn spatial_out(input: usize, kernel: usize, stride: usize, padding: usize) -> usize {
    let padded = input + 2 * padding;
    if padded < kernel || stride == 0 {
        return 0;
    }
    (padded - kernel) / stride + 1
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conv_flops_known_case() {
        // 3x3 conv, 64 -> 64 channels, 32x32 output:
        // 2 * 64*3*3 * 64*32*32 = 2 * 576 * 65536 = 75,497,472.
        let f = conv_flops(64, 64, 3, 3, 32, 32);
        assert_eq!(f, 75_497_472.0);
    }

    #[test]
    fn out_bytes_is_4x_elems() {
        let l = Layer {
            name: "x".into(),
            kind: LayerKind::Conv,
            flops: 0.0,
            out_channels: 64,
            out_h: 16,
            out_w: 16,
        };
        assert_eq!(l.out_elems(), 16384);
        assert_eq!(l.out_bytes(), 65536.0);
    }

    #[test]
    fn spatial_out_matches_formula() {
        assert_eq!(spatial_out(32, 3, 1, 1), 32); // same conv
        assert_eq!(spatial_out(32, 3, 2, 1), 16); // stride 2
        assert_eq!(spatial_out(32, 2, 2, 0), 16); // 2x2 pool
        assert_eq!(spatial_out(7, 7, 1, 0), 1); // global
        assert_eq!(spatial_out(3, 7, 1, 0), 0); // does not fit
        assert_eq!(spatial_out(8, 3, 0, 0), 0); // zero stride
    }
}
