use crate::{DnnError, Layer, Result};
use serde::{Deserialize, Serialize};

/// Structural parameters of the exit classifier attached at a candidate
/// exit: "a pooling layer, two fully connected layers, and a softmax layer"
/// (paper §III-B2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct ExitSpec {
    /// Width of the hidden FC layer between pooling output and class logits.
    pub hidden_dim: usize,
}

impl ExitSpec {
    /// Creates a spec with the given hidden width.
    pub fn new(hidden_dim: usize) -> Self {
        ExitSpec { hidden_dim }
    }
}

impl Default for ExitSpec {
    /// BranchyNet-style exits are deliberately small; 128 hidden units is a
    /// representative choice.
    fn default() -> Self {
        ExitSpec { hidden_dim: 128 }
    }
}

/// FLOPs of the exit classifier attached after `layer` — the paper's
/// `μ_{exit_i}`.
///
/// Global average pooling reduces the `(C, H, W)` feature map to `C` values
/// (`C·H·W` adds), then FC1 `C → hidden` and FC2 `hidden → K` (2 FLOPs per
/// MAC) and a softmax over `K` logits (≈5 FLOPs per class: max, sub, exp,
/// sum, div).
pub fn exit_flops(layer: &Layer, spec: ExitSpec, num_classes: usize) -> f64 {
    let pool = layer.out_elems() as f64;
    let fc1 = 2.0 * (layer.out_channels * spec.hidden_dim) as f64;
    let fc2 = 2.0 * (spec.hidden_dim * num_classes) as f64;
    let softmax = 5.0 * num_classes as f64;
    pool + fc1 + fc2 + softmax
}

/// Per-candidate-exit cumulative exit probabilities — the paper's
/// `{σ_exit_1, …, σ_exit_m}` with `σ_exit_m = 1`.
///
/// `σ_exit_i` is the probability that a task's confidence exceeds the
/// threshold *at or before* exit `i`, i.e. the fraction of tasks that have
/// left the network once exit `i` has run. Rates are therefore monotone
/// non-decreasing and end at 1.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ExitRates(Vec<f64>);

impl ExitRates {
    /// Validates and wraps a cumulative exit-rate vector.
    ///
    /// # Errors
    ///
    /// * [`DnnError::InvalidExitRate`] if any rate is outside `[0, 1]`, the
    ///   sequence decreases, or the final rate is not 1.
    /// * [`DnnError::EmptyChain`] if the vector is empty.
    pub fn new(rates: Vec<f64>) -> Result<Self> {
        if rates.is_empty() {
            return Err(DnnError::EmptyChain);
        }
        let mut prev = 0.0f64;
        for (i, &r) in rates.iter().enumerate() {
            if !(0.0..=1.0).contains(&r) || !r.is_finite() {
                return Err(DnnError::InvalidExitRate {
                    reason: format!("rate[{i}] = {r} outside [0, 1]"),
                });
            }
            if r + 1e-12 < prev {
                return Err(DnnError::InvalidExitRate {
                    reason: format!("rate[{i}] = {r} decreases below {prev}"),
                });
            }
            prev = r;
        }
        // The emptiness check above makes `last()` infallible; `prev` holds
        // the final rate after the loop.
        let last = prev;
        if (last - 1.0).abs() > 1e-9 {
            return Err(DnnError::InvalidExitRate {
                reason: format!("final rate must be 1, got {last}"),
            });
        }
        Ok(ExitRates(rates))
    }

    /// Number of candidate exits covered.
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// Whether the vector is empty (never true for validated rates).
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    /// Cumulative exit probability at exit `index`.
    ///
    /// # Errors
    ///
    /// Returns [`DnnError::IndexOutOfRange`] when `index >= len`.
    pub fn rate(&self, index: usize) -> Result<f64> {
        self.0.get(index).copied().ok_or(DnnError::IndexOutOfRange {
            what: "exit",
            index,
            len: self.0.len(),
        })
    }

    /// The raw cumulative rates.
    pub fn as_slice(&self) -> &[f64] {
        &self.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::LayerKind;

    fn feature_layer() -> Layer {
        Layer {
            name: "f".into(),
            kind: LayerKind::Conv,
            flops: 0.0,
            out_channels: 64,
            out_h: 8,
            out_w: 8,
        }
    }

    #[test]
    fn exit_flops_components() {
        let spec = ExitSpec::new(128);
        let f = exit_flops(&feature_layer(), spec, 10);
        // pool 64*8*8 = 4096; fc1 2*64*128 = 16384; fc2 2*128*10 = 2560; softmax 50.
        assert_eq!(f, 4096.0 + 16384.0 + 2560.0 + 50.0);
    }

    #[test]
    fn exit_flops_scale_with_channels() {
        let small = feature_layer();
        let mut big = feature_layer();
        big.out_channels = 512;
        let spec = ExitSpec::default();
        assert!(exit_flops(&big, spec, 10) > exit_flops(&small, spec, 10));
    }

    #[test]
    fn rates_validation() {
        assert!(ExitRates::new(vec![0.2, 0.6, 1.0]).is_ok());
        assert!(ExitRates::new(vec![]).is_err());
        assert!(ExitRates::new(vec![0.5, 0.4, 1.0]).is_err()); // decreasing
        assert!(ExitRates::new(vec![0.5, 0.9]).is_err()); // last != 1
        assert!(ExitRates::new(vec![-0.1, 1.0]).is_err());
        assert!(ExitRates::new(vec![0.0, 1.2]).is_err());
    }

    #[test]
    fn rate_lookup() {
        let r = ExitRates::new(vec![0.3, 0.7, 1.0]).unwrap();
        assert_eq!(r.rate(0).unwrap(), 0.3);
        assert_eq!(r.rate(2).unwrap(), 1.0);
        assert!(r.rate(3).is_err());
        assert_eq!(r.len(), 3);
    }
}
