use crate::{DnnError, Layer, Result, BYTES_PER_ELEM};
use serde::{Deserialize, Serialize};

/// A chain-structured DNN: the paper's `M = {l_1, …, l_m}` (§III-B2).
///
/// Layers are indexed `0..m` internally; the paper's `exit_i` (1-based,
/// "after layer i") corresponds to index `i-1` here. The input geometry is
/// recorded so `d_0` (raw input bytes) is available to the offloading model.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DnnChain {
    name: String,
    input_channels: usize,
    input_h: usize,
    input_w: usize,
    num_classes: usize,
    layers: Vec<Layer>,
}

impl DnnChain {
    /// Creates a chain from an ordered layer list.
    ///
    /// # Errors
    ///
    /// Returns [`DnnError::EmptyChain`] when `layers` is empty.
    pub fn new(
        name: impl Into<String>,
        input_channels: usize,
        input_h: usize,
        input_w: usize,
        num_classes: usize,
        layers: Vec<Layer>,
    ) -> Result<Self> {
        if layers.is_empty() {
            return Err(DnnError::EmptyChain);
        }
        Ok(DnnChain {
            name: name.into(),
            input_channels,
            input_h,
            input_w,
            num_classes,
            layers,
        })
    }

    /// Model name, e.g. `"vgg16"`.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of chain layers `m` (= number of candidate exit positions).
    pub fn num_layers(&self) -> usize {
        self.layers.len()
    }

    /// Number of classifier output classes.
    pub fn num_classes(&self) -> usize {
        self.num_classes
    }

    /// The ordered layers.
    pub fn layers(&self) -> &[Layer] {
        &self.layers
    }

    /// Layer at `index`, or `None` when out of range.
    pub fn layer(&self, index: usize) -> Option<&Layer> {
        self.layers.get(index)
    }

    /// Raw input size in bytes — the paper's `d_0`.
    pub fn input_bytes(&self) -> f64 {
        (self.input_channels * self.input_h * self.input_w) as f64 * BYTES_PER_ELEM
    }

    /// Input geometry `(channels, height, width)`.
    pub fn input_shape(&self) -> (usize, usize, usize) {
        (self.input_channels, self.input_h, self.input_w)
    }

    /// Total FLOPs of the full chain (no exits).
    pub fn total_flops(&self) -> f64 {
        self.layers.iter().map(|l| l.flops).sum()
    }

    /// Sum of layer FLOPs over the half-open index range `lo..hi`.
    ///
    /// Out-of-range bounds are clamped; an empty or inverted range costs 0.
    pub fn flops_range(&self, lo: usize, hi: usize) -> f64 {
        let hi = hi.min(self.layers.len());
        if lo >= hi {
            return 0.0;
        }
        self.layers[lo..hi].iter().map(|l| l.flops).sum()
    }

    /// Intermediate activation bytes after layer `index` — the paper's
    /// `d_{l_i}`.
    ///
    /// # Errors
    ///
    /// Returns [`DnnError::IndexOutOfRange`] when `index >= m`.
    pub fn intermediate_bytes(&self, index: usize) -> Result<f64> {
        self.layers
            .get(index)
            .map(Layer::out_bytes)
            .ok_or(DnnError::IndexOutOfRange {
                what: "layer",
                index,
                len: self.layers.len(),
            })
    }

    /// Prefix sums of layer FLOPs: entry `i` is the cost of layers `0..i`
    /// (so entry 0 is 0 and entry `m` is [`total_flops`](Self::total_flops)).
    pub fn flops_prefix(&self) -> Vec<f64> {
        let mut prefix = Vec::with_capacity(self.layers.len() + 1);
        prefix.push(0.0);
        let mut acc = 0.0;
        for l in &self.layers {
            acc += l.flops;
            prefix.push(acc);
        }
        prefix
    }

    /// Index of the layer with the smallest output activation — where
    /// Edgent-style heuristics place a split.
    pub fn min_activation_layer(&self) -> usize {
        // A `DnnChain` is validated non-empty at construction, so the
        // fallback index is unreachable; it keeps this total.
        self.layers
            .iter()
            .enumerate()
            .min_by(|a, b| a.1.out_bytes().total_cmp(&b.1.out_bytes()))
            .map(|(i, _)| i)
            .unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::LayerKind;

    fn layer(name: &str, flops: f64, c: usize, h: usize, w: usize) -> Layer {
        Layer {
            name: name.into(),
            kind: LayerKind::Conv,
            flops,
            out_channels: c,
            out_h: h,
            out_w: w,
        }
    }

    fn toy_chain() -> DnnChain {
        DnnChain::new(
            "toy",
            3,
            8,
            8,
            10,
            vec![
                layer("l1", 100.0, 16, 8, 8),
                layer("l2", 200.0, 32, 4, 4),
                layer("l3", 400.0, 64, 2, 2),
            ],
        )
        .unwrap()
    }

    #[test]
    fn rejects_empty_chain() {
        assert_eq!(
            DnnChain::new("e", 3, 8, 8, 10, vec![]).unwrap_err(),
            DnnError::EmptyChain
        );
    }

    #[test]
    fn totals_and_ranges() {
        let c = toy_chain();
        assert_eq!(c.total_flops(), 700.0);
        assert_eq!(c.flops_range(0, 3), 700.0);
        assert_eq!(c.flops_range(1, 3), 600.0);
        assert_eq!(c.flops_range(1, 1), 0.0);
        assert_eq!(c.flops_range(2, 1), 0.0);
        assert_eq!(c.flops_range(0, 99), 700.0); // clamped
    }

    #[test]
    fn prefix_sums() {
        let c = toy_chain();
        assert_eq!(c.flops_prefix(), vec![0.0, 100.0, 300.0, 700.0]);
    }

    #[test]
    fn input_bytes_d0() {
        let c = toy_chain();
        assert_eq!(c.input_bytes(), (3 * 8 * 8) as f64 * 4.0);
    }

    #[test]
    fn intermediate_bytes_d_li() {
        let c = toy_chain();
        assert_eq!(c.intermediate_bytes(0).unwrap(), 1024.0 * 4.0);
        assert_eq!(c.intermediate_bytes(1).unwrap(), 512.0 * 4.0);
        assert!(c.intermediate_bytes(3).is_err());
    }

    #[test]
    fn min_activation_layer_finds_smallest() {
        let c = toy_chain();
        // l3: 64*2*2 = 256 elems, the smallest.
        assert_eq!(c.min_activation_layer(), 2);
    }
}
