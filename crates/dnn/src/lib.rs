//! # leime-dnn
//!
//! Chain-structured DNN models for the LEIME reproduction.
//!
//! The paper models a DNN as a chain `M = {l_1, …, l_m}` of convolutional
//! layers, each with a FLOP count `μ_{l_i}` and an intermediate activation
//! size `d_{l_i}` (§III-B2). A *candidate exit* — a classifier made of a
//! pooling layer, two fully connected layers and a softmax — may be attached
//! after any layer; choosing three of them turns the chain into a
//! multi-exit DNN (ME-DNN) partitioned into device / edge / cloud blocks.
//!
//! This crate provides:
//!
//! * [`Layer`] / [`DnnChain`]: the chain abstraction with exact FLOPs and
//!   activation-byte arithmetic derived from real architecture shapes,
//! * [`ExitSpec`] / [`exit_flops`]: the exit-classifier cost model,
//! * [`MultiExitDnn`] / [`ExitCombo`]: exit attachment and 3-block
//!   partitioning,
//! * [`ModelProfile`]: the serialisable per-layer `(FLOPs, bytes)` profile
//!   consumed by the exit-setting and offloading algorithms,
//! * [`zoo`]: faithful chain models of the paper's four networks — VGG-16,
//!   ResNet-34, Inception v3 and SqueezeNet-1.0 — at configurable input
//!   resolution.
//!
//! ```
//! use leime_dnn::zoo;
//!
//! let vgg = zoo::vgg16(32, 10);
//! assert_eq!(vgg.num_layers(), 13); // 13 conv layers
//! // Total forward cost is within the published ballpark for 32x32 inputs.
//! assert!(vgg.total_flops() > 1e8);
//! ```

mod chain;
mod error;
mod exit;
mod layer;
mod mednn;
mod profile;

pub mod zoo;

pub use chain::DnnChain;
pub use error::DnnError;
pub use exit::{exit_flops, ExitRates, ExitSpec};
pub use layer::{conv_flops, Layer, LayerKind};
pub use mednn::{BlockProfile, ExitCombo, MultiExitDnn, Partition};
pub use profile::{LayerProfile, ModelProfile};

/// Convenience alias for results returned by this crate.
pub type Result<T> = std::result::Result<T, DnnError>;

/// Bytes per activation element (f32).
pub const BYTES_PER_ELEM: f64 = 4.0;
