use crate::{exit_flops, DnnChain, DnnError, ExitRates, ExitSpec, Result};
use serde::{Deserialize, Serialize};

/// A First/Second/Third exit selection — the paper's
/// `E = {e_1, e_2, e_3}` with `e_3 = exit_m`.
///
/// Indices are 0-based chain-layer indices ("exit after layer `i`"); the
/// paper's 1-based `exit_k` is index `k-1`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct ExitCombo {
    /// First exit (device-side), after this layer index.
    pub first: usize,
    /// Second exit (edge-side), after this layer index.
    pub second: usize,
    /// Third exit (cloud-side); must be the last layer index `m-1`.
    pub third: usize,
}

impl ExitCombo {
    /// Creates and validates a combo against a chain of `m` layers.
    ///
    /// # Errors
    ///
    /// Returns [`DnnError::InvalidExitCombo`] unless
    /// `first < second < third == m-1`.
    pub fn new(first: usize, second: usize, third: usize, m: usize) -> Result<Self> {
        if m < 3 {
            return Err(DnnError::InvalidExitCombo {
                reason: format!("chain of {m} layers cannot host 3 exits"),
            });
        }
        if third != m - 1 {
            return Err(DnnError::InvalidExitCombo {
                reason: format!("third exit must be the final layer {} (got {third})", m - 1),
            });
        }
        if !(first < second && second < third) {
            return Err(DnnError::InvalidExitCombo {
                reason: format!("exits must be strictly increasing: {first}, {second}, {third}"),
            });
        }
        Ok(ExitCombo {
            first,
            second,
            third,
        })
    }

    /// The combo in the paper's 1-based exit numbering.
    pub fn to_one_based(self) -> (usize, usize, usize) {
        (self.first + 1, self.second + 1, self.third + 1)
    }
}

/// One of the three blocks a ME-DNN is partitioned into.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BlockProfile {
    /// Total FLOPs of the block's chain layers plus its exit classifier —
    /// the paper's `μ_k`.
    pub flops: f64,
    /// FLOPs of the exit classifier alone (`μ_{exit}` component).
    pub exit_classifier_flops: f64,
    /// Bytes leaving this block toward the next tier if the task did not
    /// exit (the paper's `d_1`, `d_2`; unused for the cloud block).
    pub boundary_bytes: f64,
}

/// A ME-DNN partitioned into device/edge/cloud blocks by an [`ExitCombo`].
///
/// Carries the paper's `[μ_1, μ_2, μ_3]` and `[d_0, d_1, d_2]` (Table I).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Partition {
    /// The generating exit selection.
    pub combo: ExitCombo,
    /// Device block: layers `0..=first` + First-exit classifier.
    pub device: BlockProfile,
    /// Edge block: layers `first+1..=second` + Second-exit classifier.
    pub edge: BlockProfile,
    /// Cloud block: layers `second+1..=third` + Third-exit classifier.
    pub cloud: BlockProfile,
    /// Raw input bytes `d_0`.
    pub input_bytes: f64,
}

impl Partition {
    /// `[μ_1, μ_2, μ_3]`.
    pub fn block_flops(&self) -> [f64; 3] {
        [self.device.flops, self.edge.flops, self.cloud.flops]
    }

    /// `[d_0, d_1, d_2]`.
    pub fn data_sizes(&self) -> [f64; 3] {
        [
            self.input_bytes,
            self.device.boundary_bytes,
            self.edge.boundary_bytes,
        ]
    }
}

/// A chain-structured DNN with candidate exits after every layer.
///
/// `MultiExitDnn` is the model-level object the exit-setting algorithm
/// searches over and the offloading model consumes (through
/// [`Partition`]).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MultiExitDnn {
    chain: DnnChain,
    spec: ExitSpec,
}

impl MultiExitDnn {
    /// Attaches candidate exits (one per layer) to a chain.
    pub fn new(chain: DnnChain, spec: ExitSpec) -> Self {
        MultiExitDnn { chain, spec }
    }

    /// The underlying chain.
    pub fn chain(&self) -> &DnnChain {
        &self.chain
    }

    /// The exit-classifier spec.
    pub fn spec(&self) -> ExitSpec {
        self.spec
    }

    /// Number of candidate exits (= number of chain layers `m`).
    pub fn num_exits(&self) -> usize {
        self.chain.num_layers()
    }

    /// FLOPs of the candidate exit classifier after layer `index` —
    /// `μ_{exit_i}`.
    ///
    /// # Errors
    ///
    /// Returns [`DnnError::IndexOutOfRange`] when `index` is not a layer.
    pub fn exit_classifier_flops(&self, index: usize) -> Result<f64> {
        let layer = self.chain.layer(index).ok_or(DnnError::IndexOutOfRange {
            what: "exit",
            index,
            len: self.chain.num_layers(),
        })?;
        Ok(exit_flops(layer, self.spec, self.chain.num_classes()))
    }

    /// Partitions the ME-DNN into three blocks at `combo`.
    ///
    /// Block `k` aggregates its chain layers plus the exit classifier that
    /// terminates it; boundary byte counts are the activations crossing
    /// device→edge (`d_1`) and edge→cloud (`d_2`).
    ///
    /// # Errors
    ///
    /// Returns [`DnnError::InvalidExitCombo`] if `combo` does not satisfy
    /// `first < second < third == m-1`.
    pub fn partition(&self, combo: ExitCombo) -> Result<Partition> {
        // Re-validate against *this* chain (combos are cheap to forge).
        let combo = ExitCombo::new(combo.first, combo.second, combo.third, self.num_exits())?;
        let e1 = self.exit_classifier_flops(combo.first)?;
        let e2 = self.exit_classifier_flops(combo.second)?;
        let e3 = self.exit_classifier_flops(combo.third)?;
        let device = BlockProfile {
            flops: self.chain.flops_range(0, combo.first + 1) + e1,
            exit_classifier_flops: e1,
            boundary_bytes: self.chain.intermediate_bytes(combo.first)?,
        };
        let edge = BlockProfile {
            flops: self.chain.flops_range(combo.first + 1, combo.second + 1) + e2,
            exit_classifier_flops: e2,
            boundary_bytes: self.chain.intermediate_bytes(combo.second)?,
        };
        let cloud = BlockProfile {
            flops: self.chain.flops_range(combo.second + 1, combo.third + 1) + e3,
            exit_classifier_flops: e3,
            boundary_bytes: 0.0,
        };
        Ok(Partition {
            combo,
            device,
            edge,
            cloud,
            input_bytes: self.chain.input_bytes(),
        })
    }

    /// Per-block exit probabilities `[σ_1, σ_2, σ_3]` for a combo under
    /// cumulative candidate rates.
    ///
    /// # Errors
    ///
    /// Returns [`DnnError::ExitRateMismatch`] if `rates` does not cover all
    /// candidates, or an index error if the combo is invalid.
    pub fn combo_rates(&self, combo: ExitCombo, rates: &ExitRates) -> Result<[f64; 3]> {
        if rates.len() != self.num_exits() {
            return Err(DnnError::ExitRateMismatch {
                expected: self.num_exits(),
                actual: rates.len(),
            });
        }
        Ok([
            rates.rate(combo.first)?,
            rates.rate(combo.second)?,
            rates.rate(combo.third)?,
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Layer, LayerKind};

    fn chain(m: usize) -> DnnChain {
        let layers = (0..m)
            .map(|i| Layer {
                name: format!("l{i}"),
                kind: LayerKind::Conv,
                flops: 100.0 * (i + 1) as f64,
                out_channels: 8,
                out_h: 4,
                out_w: 4,
            })
            .collect();
        DnnChain::new("toy", 3, 8, 8, 10, layers).unwrap()
    }

    #[test]
    fn combo_validation() {
        assert!(ExitCombo::new(0, 2, 4, 5).is_ok());
        assert!(ExitCombo::new(2, 2, 4, 5).is_err()); // not strictly increasing
        assert!(ExitCombo::new(0, 1, 3, 5).is_err()); // third not last
        assert!(ExitCombo::new(0, 1, 1, 2).is_err()); // chain too short
    }

    #[test]
    fn one_based_mapping() {
        let c = ExitCombo::new(0, 13, 15, 16).unwrap();
        assert_eq!(c.to_one_based(), (1, 14, 16)); // paper's Inception v3 setting
    }

    #[test]
    fn partition_flops_are_exhaustive() {
        let me = MultiExitDnn::new(chain(5), ExitSpec::default());
        let combo = ExitCombo::new(1, 3, 4, 5).unwrap();
        let p = me.partition(combo).unwrap();
        let layer_total = me.chain().total_flops();
        let exits: f64 = p.device.exit_classifier_flops
            + p.edge.exit_classifier_flops
            + p.cloud.exit_classifier_flops;
        let blocks: f64 = p.block_flops().iter().sum();
        assert!((blocks - (layer_total + exits)).abs() < 1e-9);
    }

    #[test]
    fn partition_boundaries() {
        let me = MultiExitDnn::new(chain(5), ExitSpec::default());
        let p = me.partition(ExitCombo::new(0, 2, 4, 5).unwrap()).unwrap();
        // All layers output 8*4*4 = 128 elems = 512 bytes.
        assert_eq!(p.device.boundary_bytes, 512.0);
        assert_eq!(p.edge.boundary_bytes, 512.0);
        assert_eq!(p.cloud.boundary_bytes, 0.0);
        assert_eq!(p.input_bytes, (3 * 8 * 8 * 4) as f64);
        assert_eq!(p.data_sizes(), [768.0, 512.0, 512.0]);
    }

    #[test]
    fn partition_rejects_forged_combo() {
        let me = MultiExitDnn::new(chain(5), ExitSpec::default());
        // Forged combo claiming third=9 on a 5-layer chain.
        let bad = ExitCombo {
            first: 0,
            second: 1,
            third: 9,
        };
        assert!(me.partition(bad).is_err());
    }

    #[test]
    fn combo_rates_lookup() {
        let me = MultiExitDnn::new(chain(5), ExitSpec::default());
        let rates = ExitRates::new(vec![0.1, 0.3, 0.5, 0.8, 1.0]).unwrap();
        let combo = ExitCombo::new(0, 2, 4, 5).unwrap();
        assert_eq!(me.combo_rates(combo, &rates).unwrap(), [0.1, 0.5, 1.0]);
        let short = ExitRates::new(vec![0.5, 1.0]).unwrap();
        assert!(me.combo_rates(combo, &short).is_err());
    }

    #[test]
    fn exit_classifier_flops_bounds() {
        let me = MultiExitDnn::new(chain(3), ExitSpec::default());
        assert!(me.exit_classifier_flops(2).is_ok());
        assert!(me.exit_classifier_flops(3).is_err());
    }
}
