use crate::{DeviceParams, SharedParams};

/// Per-slot cost evaluator for one device (Eq. 12–14 and the
/// drift-plus-penalty objective of Eq. 18–19).
///
/// All methods are parameterised by the offloading ratio `x ∈ [0, 1]`;
/// arrivals split into `A = (1−x)·k` local and `D = x·k` offloaded tasks.
#[derive(Debug, Clone, Copy)]
pub struct SlotCost {
    shared: SharedParams,
    device: DeviceParams,
    /// Device queue length `Q_i(t)` at the slot start.
    pub q: f64,
    /// Edge queue length `H_i(t)` at the slot start.
    pub h: f64,
    /// Edge resource share `p_i` of this device.
    pub p_share: f64,
}

impl SlotCost {
    /// Creates an evaluator for one device-slot.
    ///
    /// # Panics
    ///
    /// Panics if queue lengths are negative or `p_share` is outside
    /// `[0, 1]`.
    pub fn new(shared: SharedParams, device: DeviceParams, q: f64, h: f64, p_share: f64) -> Self {
        assert!(q >= 0.0 && h >= 0.0, "queue lengths must be non-negative");
        assert!(
            (0.0..=1.0).contains(&p_share),
            "p_share {p_share} outside [0, 1]"
        );
        SlotCost {
            shared,
            device,
            q,
            h,
            p_share,
        }
    }

    /// The shared parameters in use.
    pub fn shared(&self) -> SharedParams {
        self.shared
    }

    /// The device parameters in use.
    pub fn device(&self) -> DeviceParams {
        self.device
    }

    /// Edge FLOPS devoted to this device's *first-block* tasks,
    /// `F^e_{i,1}` (Eq. 9): the share `p_i F^e` is split between first- and
    /// second-block work in proportion to their demand.
    pub fn edge_first_block_flops(&self, x: f64) -> f64 {
        let s = &self.shared;
        let denom = x * s.mu1 + (1.0 - s.sigma1) * s.mu2;
        if denom <= 0.0 {
            return 0.0;
        }
        x * s.mu1 * self.p_share * s.edge_flops / denom
    }

    /// Device service quota `b_i(t) = F_i^d · τ / μ_1` (tasks per slot).
    pub fn device_quota(&self) -> f64 {
        self.device.flops * self.shared.slot_len_s / self.shared.mu1
    }

    /// Edge service quota `c_i(t) = F^e_{i,1} · τ / μ_1` (tasks per slot).
    pub fn edge_quota(&self, x: f64) -> f64 {
        self.edge_first_block_flops(x) * self.shared.slot_len_s / self.shared.mu1
    }

    /// Device-side slot cost `T_i^d(t)` (Eq. 12): backlog wait `C^d_1`,
    /// own processing + intra-batch queueing `C^d_2`, and the First-exit
    /// intermediate-data transmission `C^d_3`.
    pub fn t_device(&self, x: f64) -> f64 {
        let s = &self.shared;
        let d = &self.device;
        let a = (1.0 - x) * d.arrival_mean;
        if a <= 0.0 {
            return 0.0;
        }
        let per_task = s.mu1 / d.flops;
        let c1 = a * self.q * per_task;
        // A(A−1)/2 intra-batch queueing; clamped at 0 for fluid A < 1.
        let c2 = a * per_task + (a * (a - 1.0) / 2.0).max(0.0) * per_task;
        let c3 = (1.0 - s.sigma1) * a * (s.d1_bytes * 8.0 / d.bandwidth_bps + d.latency_s);
        c1 + c2 + c3
    }

    /// Edge-side slot cost `T_i^e(t)` (Eq. 13): raw-input transmission
    /// `C^e_1`, backlog wait `C^e_2`, own processing + intra-batch queueing
    /// `C^e_3`.
    ///
    /// Returns `f64::INFINITY` when tasks are offloaded (`x > 0`) but the
    /// device holds no edge share.
    pub fn t_edge(&self, x: f64) -> f64 {
        let s = &self.shared;
        let d = &self.device;
        let dd = x * d.arrival_mean;
        if dd <= 0.0 {
            return 0.0;
        }
        let f_e1 = self.edge_first_block_flops(x);
        if f_e1 <= 0.0 {
            return f64::INFINITY;
        }
        let per_task = s.mu1 / f_e1;
        let c1 = dd * (s.d0_bytes * 8.0 / d.bandwidth_bps + d.latency_s);
        let c2 = dd * self.h * per_task;
        let c3 = dd * per_task + (dd * (dd - 1.0) / 2.0).max(0.0) * per_task;
        c1 + c2 + c3
    }

    /// Total slot cost `Y_i(t) = T_i^d + T_i^e` (Eq. 14).
    pub fn y(&self, x: f64) -> f64 {
        self.t_device(x) + self.t_edge(x)
    }

    /// Drift-plus-penalty objective for this device (Eq. 19):
    /// `V·Y_i + Q_i·(A_i − b_i) + H_i·(D_i − c_i)`.
    pub fn drift_plus_penalty(&self, x: f64) -> f64 {
        let k = self.device.arrival_mean;
        let a = (1.0 - x) * k;
        let dd = x * k;
        self.shared.v * self.y(x)
            + self.q * (a - self.device_quota())
            + self.h * (dd - self.edge_quota(x))
    }

    /// A flattened evaluator for the inner solver loops: every
    /// `x`-independent subexpression is computed once here, so each
    /// objective evaluation costs ~3 divisions instead of ~8 and skips
    /// the constructor asserts.
    ///
    /// Bit-compatibility contract: every method of [`CostEval`] returns
    /// exactly the bits the corresponding [`SlotCost`] method returns
    /// (checked exhaustively by `eval_is_bit_identical_to_slot_cost`).
    /// Only whole parenthesized subtrees of the original expressions are
    /// hoisted — float arithmetic is not associative, so re-grouping
    /// anything else would change results and break the DESIGN.md §11
    /// byte-identical contract.
    pub fn eval(&self) -> CostEval {
        let s = &self.shared;
        let d = &self.device;
        CostEval {
            k: d.arrival_mean,
            q: self.q,
            h: self.h,
            v: s.v,
            per_task_dev: s.mu1 / d.flops,
            one_minus_sigma1: 1.0 - s.sigma1,
            tx1: s.d1_bytes * 8.0 / d.bandwidth_bps + d.latency_s,
            tx0: s.d0_bytes * 8.0 / d.bandwidth_bps + d.latency_s,
            mu1: s.mu1,
            p_share: self.p_share,
            edge_flops: s.edge_flops,
            edge2: (1.0 - s.sigma1) * s.mu2,
            slot_len_s: s.slot_len_s,
            device_quota: d.flops * s.slot_len_s / s.mu1,
        }
    }
}

/// Precomputed form of [`SlotCost`] for the solvers' inner loops; build
/// with [`SlotCost::eval`]. See there for the bit-compatibility contract.
/// Fields are `pub(crate)` so the batched solver can transpose them into
/// its lane-parallel layout; the contract covers that path too.
#[derive(Debug, Clone, Copy)]
pub struct CostEval {
    /// Arrival mean `k_i`.
    pub(crate) k: f64,
    pub(crate) q: f64,
    pub(crate) h: f64,
    pub(crate) v: f64,
    /// `μ_1 / F_i^d` — device seconds per task.
    pub(crate) per_task_dev: f64,
    /// `1 − σ_1`.
    pub(crate) one_minus_sigma1: f64,
    /// First-exit upload time `d_1·8/B + L` (t_device `C₃` inner term).
    pub(crate) tx1: f64,
    /// Raw-input upload time `d_0·8/B + L` (t_edge `C₁` inner term).
    pub(crate) tx0: f64,
    pub(crate) mu1: f64,
    pub(crate) p_share: f64,
    pub(crate) edge_flops: f64,
    /// `(1 − σ_1)·μ_2` — the x-independent half of the Eq. 9 denominator.
    pub(crate) edge2: f64,
    pub(crate) slot_len_s: f64,
    /// `F_i^d·τ/μ_1`, fully x-independent.
    pub(crate) device_quota: f64,
}

impl CostEval {
    /// Eq. 9 first-block edge FLOPS; bit-identical to
    /// [`SlotCost::edge_first_block_flops`].
    pub fn edge_first_block_flops(&self, x: f64) -> f64 {
        let denom = x * self.mu1 + self.edge2;
        if denom <= 0.0 {
            return 0.0;
        }
        x * self.mu1 * self.p_share * self.edge_flops / denom
    }

    /// Device service quota `b_i(t)` (precomputed — x-independent).
    pub fn device_quota(&self) -> f64 {
        self.device_quota
    }

    /// Edge service quota `c_i(t)`; bit-identical to
    /// [`SlotCost::edge_quota`].
    pub fn edge_quota(&self, x: f64) -> f64 {
        self.edge_quota_from(self.edge_first_block_flops(x))
    }

    fn edge_quota_from(&self, f_e1: f64) -> f64 {
        f_e1 * self.slot_len_s / self.mu1
    }

    /// Eq. 12 device-side cost; bit-identical to [`SlotCost::t_device`].
    pub fn t_device(&self, x: f64) -> f64 {
        let a = (1.0 - x) * self.k;
        if a <= 0.0 {
            return 0.0;
        }
        let c1 = a * self.q * self.per_task_dev;
        let c2 = a * self.per_task_dev + (a * (a - 1.0) / 2.0).max(0.0) * self.per_task_dev;
        let c3 = self.one_minus_sigma1 * a * self.tx1;
        c1 + c2 + c3
    }

    /// Eq. 13 edge-side cost; bit-identical to [`SlotCost::t_edge`].
    pub fn t_edge(&self, x: f64) -> f64 {
        self.t_edge_from(x, self.edge_first_block_flops(x))
    }

    fn t_edge_from(&self, x: f64, f_e1: f64) -> f64 {
        let dd = x * self.k;
        if dd <= 0.0 {
            return 0.0;
        }
        if f_e1 <= 0.0 {
            return f64::INFINITY;
        }
        let per_task = self.mu1 / f_e1;
        let c1 = dd * self.tx0;
        let c2 = dd * self.h * per_task;
        let c3 = dd * per_task + (dd * (dd - 1.0) / 2.0).max(0.0) * per_task;
        c1 + c2 + c3
    }

    /// Eq. 14 total cost; bit-identical to [`SlotCost::y`].
    pub fn y(&self, x: f64) -> f64 {
        self.t_device(x) + self.t_edge(x)
    }

    /// Eq. 19 objective; bit-identical to [`SlotCost::drift_plus_penalty`]
    /// while evaluating `F^e_{i,1}` once instead of twice per call.
    pub fn drift_plus_penalty(&self, x: f64) -> f64 {
        let a = (1.0 - x) * self.k;
        let dd = x * self.k;
        let f_e1 = self.edge_first_block_flops(x);
        self.v * (self.t_device(x) + self.t_edge_from(x, f_e1))
            + self.q * (a - self.device_quota)
            + self.h * (dd - self.edge_quota_from(f_e1))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn shared() -> SharedParams {
        SharedParams {
            slot_len_s: 1.0,
            v: 100.0,
            mu1: 2e8,
            mu2: 5e8,
            sigma1: 0.4,
            d0_bytes: 12_288.0,
            d1_bytes: 65_536.0,
            edge_flops: 40e9,
        }
    }

    fn cost(x_q: f64, h: f64) -> SlotCost {
        SlotCost::new(shared(), DeviceParams::raspberry_pi(10.0), x_q, h, 0.25)
    }

    #[test]
    fn t_device_zero_when_all_offloaded() {
        assert_eq!(cost(0.0, 0.0).t_device(1.0), 0.0);
    }

    #[test]
    fn t_edge_zero_when_none_offloaded() {
        assert_eq!(cost(0.0, 0.0).t_edge(0.0), 0.0);
    }

    #[test]
    fn t_device_decreases_in_x() {
        let c = cost(5.0, 0.0);
        let mut prev = f64::INFINITY;
        for i in 0..=10 {
            let x = i as f64 / 10.0;
            let t = c.t_device(x);
            assert!(t <= prev + 1e-12, "t_device not decreasing at x={x}");
            prev = t;
        }
    }

    #[test]
    fn t_edge_increases_in_x() {
        let c = cost(0.0, 5.0);
        let mut prev = 0.0;
        for i in 1..=10 {
            let x = i as f64 / 10.0;
            let t = c.t_edge(x);
            assert!(t >= prev - 1e-12, "t_edge not increasing at x={x}");
            prev = t;
        }
    }

    #[test]
    fn edge_first_block_split_matches_eq9() {
        let c = cost(0.0, 0.0);
        let s = shared();
        let x = 0.6;
        let f1 = c.edge_first_block_flops(x);
        // Check the proportionality F1/F2 = x*mu1 / ((1-sigma1)*mu2):
        let f_total = c.p_share * s.edge_flops;
        let f2 = f_total - f1;
        let want_ratio = x * s.mu1 / ((1.0 - s.sigma1) * s.mu2);
        assert!((f1 / f2 - want_ratio).abs() < 1e-9);
    }

    #[test]
    fn no_share_means_infinite_edge_cost() {
        let c = SlotCost::new(shared(), DeviceParams::raspberry_pi(10.0), 0.0, 0.0, 0.0);
        assert!(c.t_edge(0.5).is_infinite());
        assert_eq!(c.t_edge(0.0), 0.0);
    }

    #[test]
    fn backlog_raises_cost() {
        let empty = cost(0.0, 0.0);
        let backed = cost(20.0, 0.0);
        assert!(backed.t_device(0.0) > empty.t_device(0.0));
        let backed_edge = cost(0.0, 20.0);
        assert!(backed_edge.t_edge(0.5) > empty.t_edge(0.5));
    }

    #[test]
    fn quotas_match_formulas() {
        let c = cost(0.0, 0.0);
        assert!((c.device_quota() - 1.0e9 / 2e8).abs() < 1e-12);
        let f1 = c.edge_first_block_flops(0.5);
        assert!((c.edge_quota(0.5) - f1 / 2e8).abs() < 1e-9);
    }

    #[test]
    fn drift_penalty_composes() {
        let c = cost(3.0, 2.0);
        let x = 0.4;
        let manual = 100.0 * c.y(x)
            + 3.0 * ((1.0 - x) * 10.0 - c.device_quota())
            + 2.0 * (x * 10.0 - c.edge_quota(x));
        assert!((c.drift_plus_penalty(x) - manual).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "p_share")]
    fn rejects_bad_share() {
        SlotCost::new(shared(), DeviceParams::raspberry_pi(1.0), 0.0, 0.0, 1.5);
    }

    #[test]
    fn eval_is_bit_identical_to_slot_cost() {
        // The solvers run on CostEval, the rest of the system prices
        // realized slots with SlotCost, and DESIGN.md §11 compares
        // serialized output bytes — so every method pair must agree to
        // the bit, including the zero-share / zero-arrival edge cases,
        // across the whole x grid.
        let mut shared_grid = vec![shared()];
        let mut v_inf = shared();
        v_inf.v = f64::INFINITY;
        shared_grid.push(v_inf);
        let mut no_mu2 = shared();
        no_mu2.mu2 = 0.0;
        no_mu2.sigma1 = 1.0;
        shared_grid.push(no_mu2);
        for s in shared_grid {
            for k in [0.0, 0.5, 10.0, 200.0] {
                for &(q, h) in &[(0.0, 0.0), (3.0, 2.0), (50.0, 0.0), (0.0, 75.0)] {
                    for p_share in [0.0, 1e-3, 0.25, 1.0] {
                        let c = SlotCost::new(s, DeviceParams::raspberry_pi(k), q, h, p_share);
                        let e = c.eval();
                        assert_eq!(e.device_quota().to_bits(), c.device_quota().to_bits());
                        for i in 0..=64 {
                            let x = i as f64 / 64.0;
                            let pairs = [
                                (e.edge_first_block_flops(x), c.edge_first_block_flops(x)),
                                (e.edge_quota(x), c.edge_quota(x)),
                                (e.t_device(x), c.t_device(x)),
                                (e.t_edge(x), c.t_edge(x)),
                                (e.y(x), c.y(x)),
                                (e.drift_plus_penalty(x), c.drift_plus_penalty(x)),
                            ];
                            for (idx, (got, want)) in pairs.iter().enumerate() {
                                assert_eq!(
                                    got.to_bits(),
                                    want.to_bits(),
                                    "method {idx} diverged at x={x}, k={k}, q={q}, h={h}, \
                                     p={p_share} ({got} vs {want})"
                                );
                            }
                        }
                    }
                }
            }
        }
    }
}
