use crate::{DeviceParams, SharedParams};

/// Per-slot cost evaluator for one device (Eq. 12–14 and the
/// drift-plus-penalty objective of Eq. 18–19).
///
/// All methods are parameterised by the offloading ratio `x ∈ [0, 1]`;
/// arrivals split into `A = (1−x)·k` local and `D = x·k` offloaded tasks.
#[derive(Debug, Clone, Copy)]
pub struct SlotCost {
    shared: SharedParams,
    device: DeviceParams,
    /// Device queue length `Q_i(t)` at the slot start.
    pub q: f64,
    /// Edge queue length `H_i(t)` at the slot start.
    pub h: f64,
    /// Edge resource share `p_i` of this device.
    pub p_share: f64,
}

impl SlotCost {
    /// Creates an evaluator for one device-slot.
    ///
    /// # Panics
    ///
    /// Panics if queue lengths are negative or `p_share` is outside
    /// `[0, 1]`.
    pub fn new(shared: SharedParams, device: DeviceParams, q: f64, h: f64, p_share: f64) -> Self {
        assert!(q >= 0.0 && h >= 0.0, "queue lengths must be non-negative");
        assert!(
            (0.0..=1.0).contains(&p_share),
            "p_share {p_share} outside [0, 1]"
        );
        SlotCost {
            shared,
            device,
            q,
            h,
            p_share,
        }
    }

    /// The shared parameters in use.
    pub fn shared(&self) -> SharedParams {
        self.shared
    }

    /// The device parameters in use.
    pub fn device(&self) -> DeviceParams {
        self.device
    }

    /// Edge FLOPS devoted to this device's *first-block* tasks,
    /// `F^e_{i,1}` (Eq. 9): the share `p_i F^e` is split between first- and
    /// second-block work in proportion to their demand.
    pub fn edge_first_block_flops(&self, x: f64) -> f64 {
        let s = &self.shared;
        let denom = x * s.mu1 + (1.0 - s.sigma1) * s.mu2;
        if denom <= 0.0 {
            return 0.0;
        }
        x * s.mu1 * self.p_share * s.edge_flops / denom
    }

    /// Device service quota `b_i(t) = F_i^d · τ / μ_1` (tasks per slot).
    pub fn device_quota(&self) -> f64 {
        self.device.flops * self.shared.slot_len_s / self.shared.mu1
    }

    /// Edge service quota `c_i(t) = F^e_{i,1} · τ / μ_1` (tasks per slot).
    pub fn edge_quota(&self, x: f64) -> f64 {
        self.edge_first_block_flops(x) * self.shared.slot_len_s / self.shared.mu1
    }

    /// Device-side slot cost `T_i^d(t)` (Eq. 12): backlog wait `C^d_1`,
    /// own processing + intra-batch queueing `C^d_2`, and the First-exit
    /// intermediate-data transmission `C^d_3`.
    pub fn t_device(&self, x: f64) -> f64 {
        let s = &self.shared;
        let d = &self.device;
        let a = (1.0 - x) * d.arrival_mean;
        if a <= 0.0 {
            return 0.0;
        }
        let per_task = s.mu1 / d.flops;
        let c1 = a * self.q * per_task;
        // A(A−1)/2 intra-batch queueing; clamped at 0 for fluid A < 1.
        let c2 = a * per_task + (a * (a - 1.0) / 2.0).max(0.0) * per_task;
        let c3 = (1.0 - s.sigma1) * a * (s.d1_bytes * 8.0 / d.bandwidth_bps + d.latency_s);
        c1 + c2 + c3
    }

    /// Edge-side slot cost `T_i^e(t)` (Eq. 13): raw-input transmission
    /// `C^e_1`, backlog wait `C^e_2`, own processing + intra-batch queueing
    /// `C^e_3`.
    ///
    /// Returns `f64::INFINITY` when tasks are offloaded (`x > 0`) but the
    /// device holds no edge share.
    pub fn t_edge(&self, x: f64) -> f64 {
        let s = &self.shared;
        let d = &self.device;
        let dd = x * d.arrival_mean;
        if dd <= 0.0 {
            return 0.0;
        }
        let f_e1 = self.edge_first_block_flops(x);
        if f_e1 <= 0.0 {
            return f64::INFINITY;
        }
        let per_task = s.mu1 / f_e1;
        let c1 = dd * (s.d0_bytes * 8.0 / d.bandwidth_bps + d.latency_s);
        let c2 = dd * self.h * per_task;
        let c3 = dd * per_task + (dd * (dd - 1.0) / 2.0).max(0.0) * per_task;
        c1 + c2 + c3
    }

    /// Total slot cost `Y_i(t) = T_i^d + T_i^e` (Eq. 14).
    pub fn y(&self, x: f64) -> f64 {
        self.t_device(x) + self.t_edge(x)
    }

    /// Drift-plus-penalty objective for this device (Eq. 19):
    /// `V·Y_i + Q_i·(A_i − b_i) + H_i·(D_i − c_i)`.
    pub fn drift_plus_penalty(&self, x: f64) -> f64 {
        let k = self.device.arrival_mean;
        let a = (1.0 - x) * k;
        let dd = x * k;
        self.shared.v * self.y(x)
            + self.q * (a - self.device_quota())
            + self.h * (dd - self.edge_quota(x))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn shared() -> SharedParams {
        SharedParams {
            slot_len_s: 1.0,
            v: 100.0,
            mu1: 2e8,
            mu2: 5e8,
            sigma1: 0.4,
            d0_bytes: 12_288.0,
            d1_bytes: 65_536.0,
            edge_flops: 40e9,
        }
    }

    fn cost(x_q: f64, h: f64) -> SlotCost {
        SlotCost::new(shared(), DeviceParams::raspberry_pi(10.0), x_q, h, 0.25)
    }

    #[test]
    fn t_device_zero_when_all_offloaded() {
        assert_eq!(cost(0.0, 0.0).t_device(1.0), 0.0);
    }

    #[test]
    fn t_edge_zero_when_none_offloaded() {
        assert_eq!(cost(0.0, 0.0).t_edge(0.0), 0.0);
    }

    #[test]
    fn t_device_decreases_in_x() {
        let c = cost(5.0, 0.0);
        let mut prev = f64::INFINITY;
        for i in 0..=10 {
            let x = i as f64 / 10.0;
            let t = c.t_device(x);
            assert!(t <= prev + 1e-12, "t_device not decreasing at x={x}");
            prev = t;
        }
    }

    #[test]
    fn t_edge_increases_in_x() {
        let c = cost(0.0, 5.0);
        let mut prev = 0.0;
        for i in 1..=10 {
            let x = i as f64 / 10.0;
            let t = c.t_edge(x);
            assert!(t >= prev - 1e-12, "t_edge not increasing at x={x}");
            prev = t;
        }
    }

    #[test]
    fn edge_first_block_split_matches_eq9() {
        let c = cost(0.0, 0.0);
        let s = shared();
        let x = 0.6;
        let f1 = c.edge_first_block_flops(x);
        // Check the proportionality F1/F2 = x*mu1 / ((1-sigma1)*mu2):
        let f_total = c.p_share * s.edge_flops;
        let f2 = f_total - f1;
        let want_ratio = x * s.mu1 / ((1.0 - s.sigma1) * s.mu2);
        assert!((f1 / f2 - want_ratio).abs() < 1e-9);
    }

    #[test]
    fn no_share_means_infinite_edge_cost() {
        let c = SlotCost::new(shared(), DeviceParams::raspberry_pi(10.0), 0.0, 0.0, 0.0);
        assert!(c.t_edge(0.5).is_infinite());
        assert_eq!(c.t_edge(0.0), 0.0);
    }

    #[test]
    fn backlog_raises_cost() {
        let empty = cost(0.0, 0.0);
        let backed = cost(20.0, 0.0);
        assert!(backed.t_device(0.0) > empty.t_device(0.0));
        let backed_edge = cost(0.0, 20.0);
        assert!(backed_edge.t_edge(0.5) > empty.t_edge(0.5));
    }

    #[test]
    fn quotas_match_formulas() {
        let c = cost(0.0, 0.0);
        assert!((c.device_quota() - 1.0e9 / 2e8).abs() < 1e-12);
        let f1 = c.edge_first_block_flops(0.5);
        assert!((c.edge_quota(0.5) - f1 / 2e8).abs() < 1e-9);
    }

    #[test]
    fn drift_penalty_composes() {
        let c = cost(3.0, 2.0);
        let x = 0.4;
        let manual = 100.0 * c.y(x)
            + 3.0 * ((1.0 - x) * 10.0 - c.device_quota())
            + 2.0 * (x * 10.0 - c.edge_quota(x));
        assert!((c.drift_plus_penalty(x) - manual).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "p_share")]
    fn rejects_bad_share() {
        SlotCost::new(shared(), DeviceParams::raspberry_pi(1.0), 0.0, 0.0, 1.5);
    }
}
