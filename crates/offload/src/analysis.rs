//! Lyapunov drift analysis — the paper's Lemma 1 / Appendix C, made
//! executable.
//!
//! Lemma 1 bounds the conditional Lyapunov drift of the queue pair by
//!
//! ```text
//! Δ(Θ(t)) ≤ B + Q(t)·(A(t) − b(t)) + H(t)·(D(t) − c(t))
//! B = B₁ + B₂,
//! B₁ = max{ (A² + b²)/2 − b̃·A },  b̃ = min(Q, b)
//! B₂ = max{ (D² + c²)/2 − c̃·D },  c̃ = min(H, c)
//! ```
//!
//! This module computes the worst-case `B` for a device's parameter box
//! (used to instantiate Theorem 3's `B/V` gap numerically) and the exact
//! per-slot drift, so simulations can verify the lemma step by step.

use crate::{DeviceParams, QueuePair, SharedParams, SlotCost};

/// Exact Lyapunov drift of one queue-pair transition:
/// `L(Θ(t+1)) − L(Θ(t))` with `L = (Q² + H²)/2`.
pub fn drift(before: QueuePair, after: QueuePair) -> f64 {
    after.lyapunov() - before.lyapunov()
}

/// Lemma 1's per-slot bound evaluated at a concrete state and action:
/// `B + Q·(A − b) + H·(D − c)` with the *worst-case* `B` over the
/// device's arrival box (see [`b_constant`]).
// A slot snapshot is genuinely this wide (state + action + parameters).
#[allow(clippy::too_many_arguments)]
pub fn drift_bound(
    shared: SharedParams,
    device: DeviceParams,
    q: f64,
    h: f64,
    p_share: f64,
    x: f64,
    arrivals: f64,
    m_max: f64,
) -> f64 {
    let cost = SlotCost::new(shared, device, q, h, p_share);
    let a = (1.0 - x) * arrivals;
    let d = x * arrivals;
    let b = cost.device_quota();
    let c = cost.edge_quota(x);
    b_constant(shared, device, m_max) + q * (a - b) + h * (d - c)
}

/// The worst-case drift constant `B = B₁ + B₂` over the arrival box
/// `M(t) ∈ [0, m_max]` and offload ratio `x ∈ [0, 1]`.
///
/// Per Lemma 1, `B₁ = max{(A² + b²)/2 − b̃·A}`; the maximum over the box
/// is attained at the extremes, and dropping the (non-negative) `b̃·A`
/// rebate gives the safe closed form `B₁ ≤ (m_max² + b²)/2`, and
/// analogously `B₂ ≤ (m_max² + c_max²)/2` where `c_max` is the edge quota
/// at full offload with the whole edge.
///
/// # Panics
///
/// Panics if `m_max` is negative or non-finite.
pub fn b_constant(shared: SharedParams, device: DeviceParams, m_max: f64) -> f64 {
    assert!(
        m_max.is_finite() && m_max >= 0.0,
        "m_max must be non-negative, got {m_max}"
    );
    let cost = SlotCost::new(shared, device, 0.0, 0.0, 1.0);
    let b = cost.device_quota();
    let c_max = cost.edge_quota(1.0);
    (m_max * m_max + b * b) / 2.0 + (m_max * m_max + c_max * c_max) / 2.0
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn shared() -> SharedParams {
        SharedParams {
            slot_len_s: 1.0,
            v: 1e4,
            mu1: 2e8,
            mu2: 5e8,
            sigma1: 0.4,
            d0_bytes: 12_288.0,
            d1_bytes: 30_000.0,
            edge_flops: 12e9,
        }
    }

    #[test]
    fn drift_matches_lyapunov_difference() {
        let mut qp = QueuePair::new();
        qp.step(3.0, 4.0, 0.0, 0.0);
        let before = qp;
        qp.step(1.0, 2.0, 2.0, 3.0);
        // L before = (9 + 16)/2 = 12.5; after: Q = 2, H = 3 -> (4+9)/2 = 6.5.
        assert!((drift(before, qp) - (6.5 - 12.5)).abs() < 1e-12);
    }

    #[test]
    fn lemma1_holds_along_random_trajectories() {
        // Simulate the exact queue recursion under random arrivals and
        // actions; the measured drift must never exceed Lemma 1's bound.
        let mut rng = StdRng::seed_from_u64(4);
        let s = shared();
        let dev = DeviceParams::raspberry_pi(8.0);
        let m_max = 30.0;
        let mut qp = QueuePair::new();
        for _ in 0..2000 {
            let x: f64 = rng.gen_range(0.0..=1.0);
            let arrivals = rng.gen_range(0.0..m_max);
            let p = rng.gen_range(0.05..1.0);
            let cost = SlotCost::new(s, dev, qp.q(), qp.h(), p);
            let bound = drift_bound(s, dev, qp.q(), qp.h(), p, x, arrivals, m_max);
            let before = qp;
            qp.step(
                (1.0 - x) * arrivals,
                x * arrivals,
                cost.device_quota(),
                cost.edge_quota(x),
            );
            let measured = drift(before, qp);
            assert!(
                measured <= bound + 1e-6,
                "Lemma 1 violated: drift {measured} > bound {bound}"
            );
        }
    }

    #[test]
    fn b_constant_scales_with_arrival_box() {
        let s = shared();
        let dev = DeviceParams::raspberry_pi(8.0);
        let small = b_constant(s, dev, 10.0);
        let large = b_constant(s, dev, 100.0);
        assert!(large > small);
        // Quadratic growth in m_max dominates for large boxes.
        assert!(large / small > 10.0);
    }

    #[test]
    #[should_panic(expected = "m_max must be non-negative")]
    fn b_constant_validates() {
        b_constant(shared(), DeviceParams::raspberry_pi(1.0), -1.0);
    }
}
